package floc_test

import (
	"strings"
	"testing"

	"floc"
)

// endpointSink counts deliveries for the facade smoke tests.
type endpointSink struct{ n int }

func (e *endpointSink) Receive(net *floc.Network, pkt *floc.Packet) { e.n++ }

func TestFacadeRouterOnLink(t *testing.T) {
	router, err := floc.NewRouter(floc.DefaultRouterConfig(8e6, 100))
	if err != nil {
		t.Fatal(err)
	}
	net := floc.NewNetwork(1)
	sink := &endpointSink{}
	link, err := floc.NewLink("l", 8e6, 0.001, router, sink)
	if err != nil {
		t.Fatal(err)
	}
	path := floc.NewPathID(10, 1)
	var send func()
	send = func() {
		link.Send(net, &floc.Packet{
			ID: net.NextPacketID(), Src: 1, Dst: 2, Size: 1000,
			Kind: floc.KindUDP, Path: path,
		})
		if net.Now() < 2 {
			net.ScheduleIn(0.01, send)
		}
	}
	net.Schedule(0, send)
	net.Run(3)
	if sink.n == 0 {
		t.Fatal("nothing delivered through FLoc-protected link")
	}
	if len(router.PathInfos()) != 1 {
		t.Fatalf("paths = %d", len(router.PathInfos()))
	}
}

func TestFacadeBaselines(t *testing.T) {
	if _, err := floc.NewRED(100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := floc.NewREDPD(100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := floc.NewPushback(100, 1e6, 1); err != nil {
		t.Fatal(err)
	}
	if floc.NewFIFO(10) == nil {
		t.Fatal("nil FIFO")
	}
}

func TestFacadeTreeTopology(t *testing.T) {
	net := floc.NewNetwork(1)
	cfg := floc.DefaultTreeTopologyConfig()
	cfg.TargetRateBits = 10e6
	tree, err := floc.NewTreeTopology(net, cfg, floc.NewFIFO(100))
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 27 {
		t.Fatalf("leaves = %d", tree.NumLeaves())
	}
}

func TestFacadeInternetTopologyAndSim(t *testing.T) {
	tcfg := floc.DefaultInternetTopologyConfig(floc.JPN)
	tcfg.LegitSources = 500
	tcfg.AttackSources = 2000
	tcfg.TotalASes = 300
	tcfg.LegitASes = 40
	tcfg.AttackASes = 20
	topo, err := floc.GenerateInternetTopology(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := floc.DefaultInternetSimConfig(topo, floc.InetFLoc)
	scfg.CapacityPerTick = 500
	scfg.Ticks = 200
	scfg.WarmupTicks = 50
	sim, err := floc.NewInternetSim(scfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	total := res.Share[0] + res.Share[1] + res.Share[2]
	if total <= 0 || total > 1.01 {
		t.Fatalf("shares = %v", res.Share)
	}
}

func TestFacadeFig4(t *testing.T) {
	tab := floc.Fig4(10, 8)
	if !strings.Contains(tab.String(), "Fig.4") {
		t.Fatal("bad table")
	}
}

func TestFacadeScenario(t *testing.T) {
	sc := floc.DefaultScenario(floc.DefFLoc, floc.AttackCBR, 0.05)
	sc.Duration = 15
	sc.MeasureFrom = 5
	m, err := floc.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Utilization <= 0 {
		t.Fatal("zero utilization")
	}
}

func TestFacadeInetFigConfig(t *testing.T) {
	if _, err := floc.DefaultInetFigConfig("fig13", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := floc.DefaultInetFigConfig("fig99", 0.1); err == nil {
		t.Fatal("bad figure accepted")
	}
	if got := len(floc.InternetProfiles()); got != 3 {
		t.Fatalf("profiles = %d", got)
	}
}

func TestFacadeFigTopology(t *testing.T) {
	tab, err := floc.FigTopology(100, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
