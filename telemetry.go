package floc

import (
	"io"

	"floc/internal/telemetry"
)

// --- Observability: metrics registry, event trace, recorder ---

// Telemetry bundles a run's observability surfaces: the metrics registry,
// the bounded event trace, and the control-run time-series recorder.
// Attach one to a Router with Router.SetTelemetry.
type Telemetry = telemetry.Telemetry

// TelemetryOptions configures NewTelemetry.
type TelemetryOptions = telemetry.Options

// MetricsRegistry is a registry of named counters, gauges and fixed-bucket
// histograms with Prometheus-style text exposition (WriteText).
type MetricsRegistry = telemetry.Registry

// EventTrace is a bounded ring of pipeline events with an NDJSON exporter.
type EventTrace = telemetry.Trace

// TraceEvent is one typed, sim-time-stamped pipeline event.
type TraceEvent = telemetry.Event

// TraceEventType enumerates the pipeline decision points that emit events.
type TraceEventType = telemetry.EventType

// TelemetryRecorder accumulates per-path control-run samples and named
// time series.
type TelemetryRecorder = telemetry.Recorder

// TelemetryPathSample is one per-path control-run observation.
type TelemetryPathSample = telemetry.PathSample

// Trace event types.
const (
	EventPacketAdmitted       = telemetry.EventPacketAdmitted
	EventPacketDropped        = telemetry.EventPacketDropped
	EventFlowClassifiedAttack = telemetry.EventFlowClassifiedAttack
	EventPathAggregated       = telemetry.EventPathAggregated
	EventPathReleased         = telemetry.EventPathReleased
	EventPathExpired          = telemetry.EventPathExpired
	EventModeChanged          = telemetry.EventModeChanged
	EventControlRunCompleted  = telemetry.EventControlRunCompleted
)

// TelemetryCompiled reports whether telemetry emission is compiled in
// (false when built with the flocnotelemetry tag, the overhead baseline).
const TelemetryCompiled = telemetry.Compiled

// NewTelemetry builds a telemetry instance.
func NewTelemetry(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }

// ReadTraceNDJSON decodes an NDJSON event stream written by
// EventTrace.WriteNDJSON.
func ReadTraceNDJSON(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadNDJSON(r) }

// NewMetricsRegistry builds a standalone metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }
