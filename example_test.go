package floc_test

import (
	"fmt"

	"floc"
)

// ExampleNewPathID shows domain path identifiers: the AS path from a
// packet's origin domain to the measuring router's domain.
func ExampleNewPathID() {
	p := floc.NewPathID(7701, 3356, 2914)
	fmt.Println(p)
	fmt.Println("origin:", p.Origin())
	fmt.Println("shares with sibling:", p.SharedPostfix(floc.NewPathID(9505, 3356, 2914)))
	// Output:
	// S[7701-3356-2914]
	// origin: 7701
	// shares with sibling: 2
}

// ExampleNewRouter attaches FLoc to a link and inspects the per-domain
// state it builds from traffic.
func ExampleNewRouter() {
	router, err := floc.NewRouter(floc.DefaultRouterConfig(8e6, 100))
	if err != nil {
		panic(err)
	}
	// Drive the discipline directly: one conforming domain at 100 pkt/s
	// against a 1000 pkt/s service rate.
	path := floc.NewPathID(10, 1)
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += 0.01
		router.Enqueue(&floc.Packet{
			Src: 1, Dst: 2, Size: 1000, Kind: floc.KindUDP, Path: path,
		}, now)
		router.Dequeue(now)
	}
	info := router.PathInfos()[0]
	fmt.Printf("path %s: conformance %.1f, attack %v, %d flow\n",
		info.Key, info.Conformance, info.Attack, info.Flows)
	fmt.Println("drops:", router.TotalDrops())
	// Output:
	// path 10-1: conformance 1.0, attack false, 1 flow
	// drops: 0
}

// ExampleFig4 regenerates the paper's token-request model illustration.
func ExampleFig4() {
	table := floc.Fig4(10, 8)
	fmt.Println(table.Rows[0].Label, table.Rows[0].Values[0]) // unsynchronized is flat
	fmt.Println(table.Rows[len(table.Rows)-1].Label)
	// Output:
	// phase=0.00 60
	// utilization
}

// ExampleGenerateInternetTopology builds a synthetic Internet-scale
// topology with a CBL-like bot concentration.
func ExampleGenerateInternetTopology() {
	cfg := floc.DefaultInternetTopologyConfig(floc.JPN)
	cfg.TotalASes = 300
	cfg.LegitASes = 50
	cfg.AttackASes = 25
	cfg.LegitSources = 1000
	cfg.AttackSources = 5000
	topo, err := floc.GenerateInternetTopology(cfg)
	if err != nil {
		panic(err)
	}
	st := topo.Summarize()
	fmt.Println("ASes:", st.ASes)
	fmt.Println("attack ASes:", st.AttackASes)
	fmt.Println("bots concentrated:", st.BotsInTop5PercentASesFrac > 0.2)
	// Output:
	// ASes: 300
	// attack ASes: 25
	// bots concentrated: true
}
