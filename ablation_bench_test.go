// Ablation benchmarks for FLoc's design choices (DESIGN.md "design
// deviations" 3, 4 and 6): the same CBR attack scenario with individual
// mechanisms disabled, reporting the legitimate-path bandwidth share and
// the attack share as custom metrics. Compare against BenchmarkFig6b
// (full FLoc).
package floc_test

import (
	"testing"

	"floc"
)

func benchAblation(b *testing.B, mutate func(*floc.Scenario)) {
	b.Helper()
	var legit, attack float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(floc.DefFLoc, floc.AttackCBR)
		mutate(&sc)
		m, err := floc.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		legit = m.ClassShare(floc.ClassLegitLegit)
		attack = m.ClassShare(floc.ClassAttack)
	}
	b.ReportMetric(legit, "legit_share")
	b.ReportMetric(attack, "attack_share")
}

// BenchmarkAblationFull is the reference: all mechanisms on.
func BenchmarkAblationFull(b *testing.B) {
	benchAblation(b, func(sc *floc.Scenario) {})
}

// BenchmarkAblationNoPreferentialDrop: per-path token buckets only.
// Expect legitimate flows inside attack paths to lose their protection.
func BenchmarkAblationNoPreferentialDrop(b *testing.B) {
	benchAblation(b, func(sc *floc.Scenario) { sc.NoPreferentialDrop = true })
}

// BenchmarkAblationNoEscalation: attack flows pinned at fair share but
// never pushed below it. Expect a higher attack share at high rates.
func BenchmarkAblationNoEscalation(b *testing.B) {
	benchAblation(b, func(sc *floc.Scenario) { sc.NoEscalation = true })
}

// BenchmarkAblationWithAggregation: attack-path aggregation on
// (|S|max = 25). Expect a higher legitimate-path share.
func BenchmarkAblationWithAggregation(b *testing.B) {
	benchAblation(b, func(sc *floc.Scenario) { sc.SMax = 25 })
}

// BenchmarkAblationScalableMode runs FLoc with the full Section V-B
// efficient design (drop-ratio flow counting, probabilistic filter
// updates, probabilistic array selection). Outcomes should stay close to
// the reference: the scalable design trades memory/accesses, not
// protection.
func BenchmarkAblationScalableMode(b *testing.B) {
	benchAblation(b, func(sc *floc.Scenario) { sc.ScalableMode = true })
}
