module floc

go 1.22
