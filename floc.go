// Package floc is a reproduction of "FLoc: Dependable Link Access for
// Legitimate Traffic in Flooding Attacks" (Lee & Gligor, ICDCS 2010): a
// router subsystem that confines the effects of link-flooding attacks to
// the domains that originate them and provides differential bandwidth
// guarantees at a congested link.
//
// The package is a facade over the implementation:
//
//   - The FLoc router itself (token-bucket bandwidth guarantees per domain
//     path identifier, MTD-based attack-flow identification, preferential
//     drops, and attack/legitimate path aggregation) — NewRouter. The
//     router implements the simulator's queue-discipline interface and can
//     be attached to any link.
//   - The packet-level discrete-event simulator used by the functional
//     evaluation (paper Section VI) — NewNetwork, NewLink, topology
//     builders — together with TCP endpoints, attack traffic generators
//     and the baseline defenses (RED, RED-PD, Pushback).
//   - The Internet-scale discrete-tick simulator (Section VII) —
//     GenerateInternetTopology, NewInternetSim.
//   - The paper's experiments, one per figure — RunScenario and the
//     Fig* helpers re-exported in experiments.go.
//
// Everything is implemented from scratch on the Go standard library and
// is fully deterministic given a seed.
package floc

import (
	"floc/internal/core"
	"floc/internal/defense"
	"floc/internal/inetsim"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/topology"
)

// --- The FLoc router (the paper's contribution) ---

// RouterConfig parameterizes a FLoc router; see DefaultRouterConfig.
type RouterConfig = core.Config

// Router is the FLoc router subsystem. It implements Discipline: attach
// it to the link that needs dependable access guarantees.
type Router = core.Router

// PathInfo is the externally visible state of one origin path identifier.
type PathInfo = core.PathInfo

// BatchItem is one (packet, arrival time) pair for Router.EnqueueBatch.
type BatchItem = core.BatchItem

// DefaultRouterConfig returns the evaluation defaults for a link of
// linkRateBits bits/second with a buffer of capacity packets.
func DefaultRouterConfig(linkRateBits float64, capacity int) RouterConfig {
	return core.DefaultConfig(linkRateBits, capacity)
}

// NewRouter builds a FLoc router.
func NewRouter(cfg RouterConfig) (*Router, error) { return core.NewRouter(cfg) }

// --- Domain path identifiers ---

// ASN is an Autonomous System number.
type ASN = pathid.ASN

// PathID is a domain path identifier S_i = {AS_i, ..., AS_1} (origin
// first).
type PathID = pathid.PathID

// NewPathID builds a PathID from origin-first AS numbers.
func NewPathID(asns ...ASN) PathID { return pathid.New(asns...) }

// --- Discrete-event network simulator ---

// Network is the discrete-event simulation engine.
type Network = netsim.Network

// Link is a unidirectional link with a pluggable queue discipline.
type Link = netsim.Link

// Packet is one simulated packet.
type Packet = netsim.Packet

// Discipline is a link's queue management policy; Router, RED, REDPD and
// Pushback all implement it.
type Discipline = netsim.Discipline

// NewNetwork returns a simulation engine seeded deterministically.
func NewNetwork(seed uint64) *Network { return netsim.New(seed) }

// NewLink creates a link with rate in bits/second, propagation delay in
// seconds, queue discipline disc, delivering to dst.
// floc:unit rateBits bits/s
// floc:unit delay seconds
func NewLink(name string, rateBits, delay float64, disc Discipline, dst netsim.Endpoint) (*Link, error) {
	return netsim.NewLink(name, rateBits, delay, disc, dst)
}

// NewFIFO returns a plain bounded drop-tail queue (the no-defense
// baseline).
func NewFIFO(capacity int) *netsim.FIFO { return netsim.NewFIFO(capacity) }

// --- Baseline defenses (paper Section VI comparisons) ---

// NewRED returns a classic RED queue with standard parameters.
func NewRED(capacity int, seed uint64) (Discipline, error) {
	return defense.NewRED(defense.DefaultREDConfig(capacity, seed))
}

// NewREDPD returns a RED-PD discipline (per-flow preferential dropping of
// identified high-bandwidth flows).
func NewREDPD(capacity int, seed uint64) (Discipline, error) {
	return defense.NewREDPD(defense.DefaultREDPDConfig(capacity, seed))
}

// NewPushback returns an aggregate-congestion-control (Pushback)
// discipline for a link of linkRateBits.
// floc:unit linkRateBits bits/s
func NewPushback(capacity int, linkRateBits float64, seed uint64) (Discipline, error) {
	return defense.NewPushback(defense.DefaultPushbackConfig(capacity, linkRateBits, seed))
}

// --- Evaluation topologies ---

// TreeTopology is the functional-evaluation tree of paper Fig. 5.
type TreeTopology = topology.Tree

// TreeTopologyConfig parameterizes the tree.
type TreeTopologyConfig = topology.TreeConfig

// DefaultTreeTopologyConfig returns the paper's Fig. 5 parameters
// (height 3, degree 3, 500 Mb/s target link).
func DefaultTreeTopologyConfig() TreeTopologyConfig { return topology.DefaultTreeConfig() }

// NewTreeTopology builds the tree with disc as the flooded link's queue
// discipline.
func NewTreeTopology(net *Network, cfg TreeTopologyConfig, disc Discipline) (*TreeTopology, error) {
	return topology.NewTree(net, cfg, disc)
}

// InternetTopology is a synthetic Internet-scale AS topology (paper
// Section VII-A).
type InternetTopology = topology.Inet

// InternetProfile selects a topology flavor (FRoot, HRoot, JPN).
type InternetProfile = topology.Profile

// Internet topology profiles.
const (
	FRoot = topology.FRoot
	HRoot = topology.HRoot
	JPN   = topology.JPN
)

// GenerateInternetTopology builds a synthetic Internet-scale topology.
func GenerateInternetTopology(cfg topology.InetConfig) (*InternetTopology, error) {
	return topology.GenerateInet(cfg)
}

// DefaultInternetTopologyConfig returns the paper's Section VII setup.
func DefaultInternetTopologyConfig(p InternetProfile) topology.InetConfig {
	return topology.DefaultInetConfig(p)
}

// --- Internet-scale simulator ---

// InternetSim is the discrete-tick Internet-scale simulator (Section
// VII-B).
type InternetSim = inetsim.Sim

// InternetSimConfig parameterizes it.
type InternetSimConfig = inetsim.Config

// InternetSimResult is a run's measurement.
type InternetSimResult = inetsim.Result

// Internet-scale defense kinds.
const (
	InetNoDefense = inetsim.NoDefense
	InetFairFlow  = inetsim.FairFlow
	InetFLoc      = inetsim.FLoc
)

// DefaultInternetSimConfig returns the paper's Section VII parameters.
func DefaultInternetSimConfig(topo *InternetTopology, def inetsim.DefenseKind) InternetSimConfig {
	return inetsim.DefaultConfig(topo, def)
}

// NewInternetSim builds an Internet-scale simulation.
func NewInternetSim(cfg InternetSimConfig) (*InternetSim, error) { return inetsim.New(cfg) }

// Packet kinds carried by the simulator.
const (
	KindSYN    = netsim.KindSYN
	KindSYNACK = netsim.KindSYNACK
	KindData   = netsim.KindData
	KindACK    = netsim.KindACK
	KindUDP    = netsim.KindUDP
)

// DropReason classifies FLoc router drops.
type DropReason = core.DropReason

// FLoc drop reasons.
const (
	DropNoToken         = core.DropNoToken
	DropRandomThreshold = core.DropRandomThreshold
	DropPreferential    = core.DropPreferential
	DropBlocked         = core.DropBlocked
	DropOverflow        = core.DropOverflow
)

// RouterSnapshot is a point-in-time view of a Router's state
// (Router.Snapshot), with a human-readable String rendering.
type RouterSnapshot = core.Snapshot
