package floc

import (
	"floc/internal/experiments"
	"floc/internal/topology"
)

// --- The paper's experiments, one per evaluation figure ---

// Scenario fully describes a functional-evaluation run (Section VI).
type Scenario = experiments.Scenario

// Measurement is a functional run's collected metrics.
type Measurement = experiments.Measurement

// Table is a figure's data in printable (TSV) form.
type Table = experiments.Table

// TableRow is one labeled data row of a Table.
type TableRow = experiments.Row

// ReplicationColumns are the column names matching Replication.Row.
var ReplicationColumns = experiments.ReplicationColumns

// DefenseKind names a defense under evaluation.
type DefenseKind = experiments.DefenseKind

// AttackKind names an attack traffic model.
type AttackKind = experiments.AttackKind

// Defenses.
const (
	DefFLoc     = experiments.DefFLoc
	DefPushback = experiments.DefPushback
	DefREDPD    = experiments.DefREDPD
	DefRED      = experiments.DefRED
	DefDropTail = experiments.DefDropTail
)

// Attacks.
const (
	AttackNone    = experiments.AttackNone
	AttackTCPPop  = experiments.AttackTCPPop
	AttackCBR     = experiments.AttackCBR
	AttackShrew   = experiments.AttackShrew
	AttackCovert  = experiments.AttackCovert
	AttackOnOff   = experiments.AttackOnOff
	AttackRolling = experiments.AttackRolling
)

// Flow classes for differential-guarantee metrics.
const (
	ClassLegitLegit      = experiments.ClassLegitLegit
	ClassLegitAttackPath = experiments.ClassLegitAttackPath
	ClassAttack          = experiments.ClassAttack
)

// DefaultScenario returns the paper's base setup at the given scale
// (1.0 = the paper's 500 Mb/s, 810 legitimate sources, 360 bots).
func DefaultScenario(def DefenseKind, atk AttackKind, scale float64) Scenario {
	return experiments.DefaultScenario(def, atk, scale)
}

// RunScenario executes a functional-evaluation scenario.
func RunScenario(sc Scenario) (*Measurement, error) { return experiments.Run(sc) }

// Fig2 regenerates the service-vs-drop-rate motivation plot.
func Fig2(scale float64, seed uint64) (*Table, error) { return experiments.Fig2(scale, seed) }

// Fig3 regenerates the packet-size distribution.
func Fig3(scale float64, seed uint64) (*Table, error) { return experiments.Fig3(scale, seed) }

// Fig4 regenerates the token-request model illustration for n flows of
// peak window w.
// floc:unit w packets
func Fig4(n int, w float64) *Table { return experiments.Fig4(n, w) }

// Fig6 regenerates the attack-confinement time series for one attack
// kind ("tcp-pop", "cbr", "shrew").
func Fig6(kind AttackKind, scale float64, seed uint64) (*Table, *Measurement, error) {
	return experiments.Fig6(kind, scale, seed)
}

// Fig7 regenerates the bandwidth-robustness CDF comparison.
func Fig7(scale float64, rates []float64, seed uint64) (*Table, error) {
	return experiments.Fig7(scale, rates, seed)
}

// Fig8 regenerates the differential bandwidth-guarantee comparison.
func Fig8(scale float64, rates []float64, seed uint64) (*Table, error) {
	return experiments.Fig8(scale, rates, seed)
}

// Fig9 regenerates the legitimate-path-aggregation comparison.
func Fig9(scale float64, seed uint64) (*Table, error) { return experiments.Fig9(scale, seed) }

// Fig10 regenerates the covert-attack comparison.
func Fig10(scale float64, fanouts []int, seed uint64) (*Table, error) {
	return experiments.Fig10(scale, fanouts, seed)
}

// FigTimed runs the timed-attack (on-off / rolling) extension experiment.
func FigTimed(scale float64, seed uint64) (*Table, error) {
	return experiments.FigTimed(scale, seed)
}

// FigDeployment runs the incremental-deployment extension experiment.
func FigDeployment(scale float64, fractions []float64, seed uint64) (*Table, error) {
	return experiments.FigDeployment(scale, fractions, seed)
}

// InetFigConfig parameterizes the Internet-scale figures.
type InetFigConfig = experiments.InetFigConfig

// DefaultInetFigConfig returns the configuration for "fig13", "fig14" or
// "fig15" at the given scale.
func DefaultInetFigConfig(figure string, scale float64) (InetFigConfig, error) {
	return experiments.DefaultInetFigConfig(figure, scale)
}

// FigInternet regenerates an Internet-scale comparison (Figs. 13-15).
func FigInternet(cfg InetFigConfig) (*Table, error) { return experiments.FigInternet(cfg) }

// FigTopology summarizes the generated Internet topologies (Figs. 11-12).
func FigTopology(attackASes int, separated bool, seed uint64) (*Table, error) {
	return experiments.FigTopology(attackASes, separated, seed)
}

// Replication aggregates a scenario's metrics over several seeds.
type Replication = experiments.Replication

// Replicate runs a scenario once per seed and aggregates its
// differential-guarantee metrics (mean and standard deviation).
func Replicate(sc Scenario, seeds []uint64) (*Replication, error) {
	return experiments.Replicate(sc, seeds)
}

// InternetProfiles returns the three topology profiles in paper order.
func InternetProfiles() []InternetProfile {
	return []topology.Profile{topology.FRoot, topology.HRoot, topology.JPN}
}
