package dropfilter

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Filter {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func small(t *testing.T) *Filter {
	cfg := DefaultConfig()
	cfg.Bits = 10
	return mustNew(t, cfg)
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Arrays: 0, Bits: 10, TickSeconds: 0.01, TSMax: 15, DMax: 63},
		{Arrays: 4, Bits: 0, TickSeconds: 0.01, TSMax: 15, DMax: 63},
		{Arrays: 4, Bits: 31, TickSeconds: 0.01, TSMax: 15, DMax: 63},
		{Arrays: 4, Bits: 10, TickSeconds: 0, TSMax: 15, DMax: 63},
		{Arrays: 4, Bits: 10, TickSeconds: 0.01, TSMax: 0, DMax: 63},
		{Arrays: 4, Bits: 10, TickSeconds: 0.01, TSMax: 15, DMax: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestFlowHashDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for src := uint32(0); src < 100; src++ {
		for dst := uint32(0); dst < 10; dst++ {
			h := FlowHash(src, dst)
			if seen[h] {
				t.Fatalf("hash collision at (%d, %d)", src, dst)
			}
			seen[h] = true
		}
	}
	if FlowHash(1, 2) == FlowHash(2, 1) {
		t.Fatal("FlowHash symmetric in src/dst")
	}
}

func TestCleanFlowQueriesEmpty(t *testing.T) {
	f := small(t)
	s := f.Query(FlowHash(1, 2), 5.0, 0.5, 0)
	if s.TS != 0 || s.D != 0 {
		t.Fatalf("clean flow state = %+v", s)
	}
	if s.PrefDropProb() != 0 || s.Excess() != 0 {
		t.Fatal("clean flow has non-zero penalty")
	}
}

func TestSingleDropThenDecayClears(t *testing.T) {
	f := small(t)
	h := FlowHash(10, 20)
	const epoch = 1.0
	f.RecordDrop(h, 1.0, epoch, 0, 1)
	s := f.Query(h, 1.0, epoch, 0)
	if s.D != 0 || s.TS != 1 {
		t.Fatalf("after one drop: %+v", s)
	}
	if s.PrefDropProb() != 0 {
		t.Fatalf("single normal drop penalized: %v", s.PrefDropProb())
	}
	if f.Live() == 0 {
		t.Fatal("live count not incremented")
	}
	// One congestion epoch later the single (legitimate) drop is removed.
	s = f.Query(h, 2.1, epoch, 0)
	if s.D != 0 || s.TS != 0 {
		t.Fatalf("after decay: %+v", s)
	}
}

func TestAttackFlowAccumulates(t *testing.T) {
	f := small(t)
	h := FlowHash(30, 40)
	const epoch = 1.0
	// 5 drops within one epoch: d should reach 5.
	for i := 0; i < 5; i++ {
		f.RecordDrop(h, 1.0+float64(i)*0.1, epoch, 0, 1)
	}
	s := f.Query(h, 1.5, epoch, 0)
	if s.D != 4 {
		t.Fatalf("d = %d, want 4 (first drop per epoch is free)", s.D)
	}
	if s.Excess() != 4 {
		t.Fatalf("Excess = %v", s.Excess())
	}
	// Eq. V.1: P = 4/(1+4) = 0.8.
	if got := s.PrefDropProb(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("PrefDropProb = %v", got)
	}
}

func TestPrefDropProbFormula(t *testing.T) {
	cases := []struct {
		s    State
		want float64
	}{
		{State{TS: 0, D: 0}, 0},
		{State{TS: 5, D: 0}, 0},
		{State{TS: 10, D: 1}, 1.0 / 11},  // 1/(10+1)
		{State{TS: 4, D: 2}, 1.0 / 3},    // 2/(4+2)
		{State{TS: 1, D: 1}, 0.5},        // 1/(1+1)
		{State{TS: 16, D: 1}, 1.0 / 17},  // paper: P_e=6.25%% -> P_pd=5.88%%
		{State{TS: 1, D: 63}, 63.0 / 64}, // paper: 64x flow -> P_pd=0.984
		{State{TS: 0, D: 1}, 1},          // degenerate record
	}
	for _, tc := range cases {
		if got := tc.s.PrefDropProb(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PrefDropProb(%+v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestPrefDropProbMonotoneInD(t *testing.T) {
	prev := -1.0
	for d := uint32(0); d <= 63; d++ {
		p := State{TS: 10, D: d}.PrefDropProb()
		if p < prev {
			t.Fatalf("PrefDropProb not monotone at d=%d", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PrefDropProb out of range at d=%d: %v", d, p)
		}
		prev = p
	}
}

func TestPartialDecay(t *testing.T) {
	f := small(t)
	h := FlowHash(50, 60)
	const epoch = 1.0
	for i := 0; i < 10; i++ {
		f.RecordDrop(h, 1.0, epoch, 0, 1)
	}
	// 10 drops -> d=9 (first is free); 3 epochs later: d=9-3=6, ts+3.
	s := f.Query(h, 4.0, epoch, 0)
	if s.D != 6 {
		t.Fatalf("d after 3 epochs = %d, want 6", s.D)
	}
	if s.TS != 4 {
		t.Fatalf("ts after 3 epochs = %d, want 4", s.TS)
	}
}

func TestTSSaturates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bits = 10
	cfg.TSMax = 5
	f := mustNew(t, cfg)
	h := FlowHash(1, 1)
	f.RecordDrop(h, 0, 1.0, 0, 1)
	for i := 0; i < 50; i++ {
		f.RecordDrop(h, float64(i), 1.0, 0, 1)
	}
	s := f.Query(h, 50, 1.0, 0)
	if s.TS > 5 {
		t.Fatalf("ts = %d exceeded TSMax 5", s.TS)
	}
}

func TestDSaturates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bits = 10
	cfg.DMax = 7
	f := mustNew(t, cfg)
	h := FlowHash(2, 2)
	for i := 0; i < 100; i++ {
		f.RecordDrop(h, 1.0, 1.0, 0, 1)
	}
	if s := f.Query(h, 1.0, 1.0, 0); s.D != 7 {
		t.Fatalf("d = %d, want saturation at 7", s.D)
	}
}

func TestWeightedUpdate(t *testing.T) {
	f := small(t)
	h := FlowHash(3, 3)
	// Probabilistic update: one sampled drop with weight 4 counts as 4
	// drops, the first of which is the free per-epoch drop.
	f.RecordDrop(h, 1.0, 1.0, 0, 4)
	if s := f.Query(h, 1.0, 1.0, 0); s.D != 3 {
		t.Fatalf("weighted d = %d, want 3", s.D)
	}
	// A second weighted sample adds its full weight.
	f.RecordDrop(h, 1.0, 1.0, 0, 4)
	if s := f.Query(h, 1.0, 1.0, 0); s.D != 7 {
		t.Fatalf("weighted d = %d, want 7", s.D)
	}
	// Weight 0 is clamped to 1.
	f.RecordDrop(FlowHash(4, 4), 1.0, 1.0, 0, 0)
	if s := f.Query(FlowHash(4, 4), 1.0, 1.0, 0); s.D != 0 {
		t.Fatalf("zero-weight d = %d, want 0", s.D)
	}
}

func TestQueryDoesNotMutate(t *testing.T) {
	f := small(t)
	h := FlowHash(5, 5)
	for i := 0; i < 4; i++ {
		f.RecordDrop(h, 1.0, 1.0, 0, 1)
	}
	// Two decayed queries must return identical state.
	a := f.Query(h, 3.0, 1.0, 0)
	b := f.Query(h, 3.0, 1.0, 0)
	if a != b {
		t.Fatalf("query mutated state: %+v vs %+v", a, b)
	}
	// And the underlying record must still decay from its stored t_l.
	c := f.Query(h, 1.0, 1.0, 0)
	if c.D != 3 {
		t.Fatalf("stored record changed by query: %+v", c)
	}
}

func TestArraySelectionKDisjointFromFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bits = 10
	f := mustNew(t, cfg)
	h := FlowHash(6, 6)
	// Record twice with k=2, query with the same k=2: visible (d=1).
	f.RecordDrop(h, 1.0, 1.0, 2, 1)
	f.RecordDrop(h, 1.0, 1.0, 2, 1)
	if s := f.Query(h, 1.0, 1.0, 2); s.D != 1 {
		t.Fatalf("k=2 record invisible to k=2 query: %+v", s)
	}
	// Full query (k=0 -> all arrays) sees empty arrays -> clean.
	if s := f.Query(h, 1.0, 1.0, 0); s.D != 0 {
		t.Fatalf("full query of partial record = %+v, want clean", s)
	}
}

func TestReset(t *testing.T) {
	f := small(t)
	f.RecordDrop(FlowHash(7, 7), 1.0, 1.0, 0, 1)
	f.Reset()
	if f.Live() != 0 {
		t.Fatalf("Live after Reset = %d", f.Live())
	}
	if s := f.Query(FlowHash(7, 7), 1.0, 1.0, 0); s.D != 0 {
		t.Fatalf("record survived Reset: %+v", s)
	}
}

func TestFalsePositiveRatePaperNumbers(t *testing.T) {
	// Paper: m=4 arrays, b=24 bits, 0.5M flows -> 7.4e-7.
	got := FalsePositiveRate(500_000, 24, 4)
	if got < 5e-7 || got > 9e-7 {
		t.Fatalf("FPR(0.5M, 24, 4) = %v, want ~7.4e-7", got)
	}
	// 4M attack flows with the paper's mitigation bound ~1.12e-5: the raw
	// 4-array rate at 4M flows.
	got = FalsePositiveRate(4_000_000, 24, 4)
	if got < 1e-4 || got > 4e-3 {
		t.Fatalf("FPR(4M, 24, 4) = %v out of plausible range", got)
	}
	if FalsePositiveRate(0, 24, 4) != 0 {
		t.Fatal("FPR with n=0 should be 0")
	}
	if FalsePositiveRate(100, 0, 4) != 0 || FalsePositiveRate(100, 24, 0) != 0 {
		t.Fatal("FPR with invalid params should be 0")
	}
}

func TestFalsePositiveRateMonotone(t *testing.T) {
	prev := 0.0
	for n := 1000; n <= 1_000_000; n *= 10 {
		p := FalsePositiveRate(n, 20, 4)
		if p <= prev {
			t.Fatalf("FPR not increasing at n=%d", n)
		}
		prev = p
	}
	// More arrays => lower FPR.
	if FalsePositiveRate(100000, 20, 4) >= FalsePositiveRate(100000, 20, 2) {
		t.Fatal("more arrays did not reduce FPR")
	}
}

func TestSelectK(t *testing.T) {
	// Few attack flows: keep all arrays.
	if k := SelectK(1000, 100, 4, 10000); k != 4 {
		t.Fatalf("SelectK small = %d, want 4", k)
	}
	// Massive attack: restrict arrays.
	k := SelectK(1000, 1_000_000, 4, 300_000)
	if k < 1 || k > 1 {
		t.Fatalf("SelectK massive = %d, want 1", k)
	}
	// Mid-range: k between.
	k = SelectK(0, 100, 4, 50)
	if k != 2 {
		t.Fatalf("SelectK mid = %d, want 2", k)
	}
	if k := SelectK(10, 10, 0, 100); k != 1 {
		t.Fatalf("SelectK m=0 = %d, want 1", k)
	}
}

func TestLegitAndAttackSeparationScenario(t *testing.T) {
	// End-to-end behaviour check: a legitimate flow dropping once per
	// epoch keeps P_pd near 0; an attack flow dropping 8x per epoch gets a
	// high P_pd.
	f := small(t)
	legit, attack := FlowHash(100, 1), FlowHash(200, 1)
	const epoch = 0.5
	now := 0.0
	for e := 0; e < 10; e++ {
		now = float64(e) * epoch
		f.RecordDrop(legit, now, epoch, 0, 1)
		for i := 0; i < 8; i++ {
			f.RecordDrop(attack, now+float64(i)*0.01, epoch, 0, 1)
		}
	}
	ls := f.Query(legit, now, epoch, 0)
	as := f.Query(attack, now, epoch, 0)
	if lp, ap := ls.PrefDropProb(), as.PrefDropProb(); lp > 0.3 || ap < 0.7 {
		t.Fatalf("separation failed: legit P=%v attack P=%v", lp, ap)
	}
	if ls.Excess() >= as.Excess() {
		t.Fatalf("excess ordering wrong: %v vs %v", ls.Excess(), as.Excess())
	}
}

func TestMemoryBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bits = 10
	f := mustNew(t, cfg)
	if got := f.MemoryBytes(); got != 4*1024*8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestDecayNeverUnderflowsProperty(t *testing.T) {
	f := small(t)
	prop := func(ops []struct {
		Src, Dst uint16
		T        uint16
		W        uint8
	}) bool {
		for _, op := range ops {
			h := FlowHash(uint32(op.Src), uint32(op.Dst))
			now := float64(op.T) / 100
			f.RecordDrop(h, now, 0.5, 0, uint32(op.W%8))
			s := f.Query(h, now, 0.5, 0)
			if s.D > f.Config().DMax || s.TS > f.Config().TSMax {
				return false
			}
			p := s.PrefDropProb()
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
