package dropfilter

import "testing"

// FuzzFilterOps drives arbitrary interleavings of RecordDrop and Query
// and checks the filter's invariants: counters never exceed their
// saturation bounds and the preferential drop probability is always a
// probability.
func FuzzFilterOps(f *testing.F) {
	f.Add(uint32(1), uint32(2), 1.0, 0.5, 1, uint32(1))
	f.Add(uint32(7), uint32(9), 100.0, 0.01, 4, uint32(16))
	f.Add(uint32(0), uint32(0), 0.0, 0.0, 0, uint32(0))
	cfg := DefaultConfig()
	cfg.Bits = 8
	f.Fuzz(func(t *testing.T, src, dst uint32, now, epoch float64, k int, weight uint32) {
		filter, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if now < 0 {
			now = -now
		}
		if now > 1e9 {
			now = 1e9
		}
		if epoch < 0 {
			epoch = -epoch
		}
		if epoch > 1e6 {
			epoch = 1e6
		}
		h := FlowHash(src, dst)
		for i := 0; i < 8; i++ {
			filter.RecordDrop(h, now+float64(i)*epoch/3, epoch, k%8, weight%64)
			st := filter.Query(h, now+float64(i)*epoch/3, epoch, k%8)
			if st.D > cfg.DMax || st.TS > cfg.TSMax {
				t.Fatalf("saturation exceeded: %+v", st)
			}
			if p := st.PrefDropProb(); p < 0 || p > 1 {
				t.Fatalf("invalid probability %v", p)
			}
			if e := st.Excess(); e < 0 {
				t.Fatalf("negative excess %v", e)
			}
		}
	})
}
