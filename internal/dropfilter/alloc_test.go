package dropfilter

import "testing"

// RecordDrop and Query are on the router's per-drop path and carry the
// //floc:hotpath zero-allocation contract. These gates are also the
// regression lock for the arraySpan refactor: arraysFor used to build a
// fresh []int of array indices on every operation.

func TestZeroAllocRecordDrop(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const epoch = 0.1
	if avg := testing.AllocsPerRun(200, func() {
		f.RecordDrop(0x9e3779b97f4a7c15, 1.0, epoch, 2, 1)
	}); avg != 0 {
		t.Fatalf("RecordDrop allocates %.1f times per op, want 0", avg)
	}
}

func TestZeroAllocQuery(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const epoch = 0.1
	// Two drops: the first creates the record (the entitled one-per-epoch
	// drop), the second is the excess that Query must see.
	f.RecordDrop(0x9e3779b97f4a7c15, 1.0, epoch, 2, 1)
	f.RecordDrop(0x9e3779b97f4a7c15, 1.0, epoch, 2, 1)
	if avg := testing.AllocsPerRun(200, func() {
		st := f.Query(0x9e3779b97f4a7c15, 1.0, epoch, 2)
		if st.D == 0 {
			t.Fatal("recorded drop not visible")
		}
	}); avg != 0 {
		t.Fatalf("Query allocates %.1f times per op, want 0", avg)
	}
}

// TestArraysForSpan pins the arraySpan index walk to the semantics of the
// old slice-building arraysFor: same start array, same count, same
// wrap-around order.
func TestArraysForSpan(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := f.cfg.Arrays
	for _, k := range []int{0, 1, 2, 3, m, m + 1} {
		for _, h := range []uint64{0, 1, 0xdeadbeef, 1 << 17, 0xffffffffffffffff} {
			span := f.arraysFor(h, k)
			want := make([]int, 0, m)
			if k <= 0 || k >= m {
				for i := 0; i < m; i++ {
					want = append(want, i)
				}
			} else {
				start := int((h >> 17) % uint64(m))
				for j := 0; j < k; j++ {
					want = append(want, (start+j)%m)
				}
			}
			if span.n != len(want) {
				t.Fatalf("h=%#x k=%d: span.n = %d, want %d", h, k, span.n, len(want))
			}
			for j := 0; j < span.n; j++ {
				if got := span.index(j); got != want[j] {
					t.Fatalf("h=%#x k=%d: index(%d) = %d, want %d", h, k, j, got, want[j])
				}
			}
		}
	}
}

// BenchmarkFilterUpdate is the drop-filter family of the perf baseline
// (scripts/bench-snapshot.sh): ns/op for one RecordDrop with array
// subsetting active, over a spread of flow hashes.
func BenchmarkFilterUpdate(b *testing.B) {
	f, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const epoch = 0.1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		f.RecordDrop(h, 1.0, epoch, 2, 1)
	}
}

// BenchmarkFilterQuery complements the update benchmark with the read
// side the admission path takes per attack-path packet.
func BenchmarkFilterQuery(b *testing.B) {
	f, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const epoch = 0.1
	for i := 0; i < 1024; i++ {
		f.RecordDrop(uint64(i)*0x9e3779b97f4a7c15, 1.0, epoch, 2, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		_ = f.Query(h, 1.0, epoch, 2)
	}
}

// BenchmarkFilterLocality exercises the blocked layout under a working
// set far larger than L2, where the old per-array striding paid one
// cache miss per counter array and the blocked layout pays one or two
// for the whole record block. The hash sequence revisits each flow so
// both the create and the update paths are measured cold.
func BenchmarkFilterLocality(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Bits = 18 // 256Ki blocks * 32 B = 8 MiB, well past L2
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const epoch = 0.1
	const flows = 1 << 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A stride co-prime with the flow count scatters consecutive
		// accesses across the whole table, defeating the prefetcher.
		h := uint64(i%flows) * 0x9e3779b97f4a7c15
		f.RecordDrop(h, 1.0, epoch, 2, 1)
		_ = f.Query(h, 1.0, epoch, 2)
	}
}
