// Package dropfilter implements FLoc's scalable attack-flow accounting
// structure (paper Section V-B): a counting-Bloom-style filter that records
// only *dropped* packets, so routers can identify and preferentially drop
// attack flows without keeping per-flow state for the (much larger) set of
// all flows.
//
// Each record holds three fields per the paper:
//
//	t_s — the number of congestion epochs since the record was created
//	      (saturating; "sequence number"),
//	t_l — the last-update time, quantized to ticks of granularity t_base,
//	d   — the number of *extra* packet drops beyond the one-per-epoch a
//	      legitimate TCP flow experiences.
//
// A legitimate flow's occasional drop decays away (d decreases by one per
// elapsed congestion epoch) and the record self-clears; an attack flow's
// drops accumulate, and d/t_s approximates its excess send-rate factor.
// The preferential drop ratio of Eq. (V.1) is derived from (t_s, d).
package dropfilter

import (
	"fmt"
	"math"

	"floc/internal/invariant"
)

// Config parameterizes a Filter.
type Config struct {
	// Arrays is m, the number of hash arrays (paper example: 4).
	Arrays int
	// Bits is b: each array has 2^b record slots (paper example: 24;
	// simulations default to 16 to keep memory modest).
	Bits int
	// TickSeconds is t_base, the time quantization granularity
	// (paper example: 10 ms).
	TickSeconds float64 //floc:unit seconds
	// TSMax is the saturation value of t_s (paper: 4 bits -> 15).
	TSMax uint32
	// DMax is the saturation value of d. The paper's 2-bits-per-epoch
	// budget with t_s up to 15 bounds measurable excess at 2^k * t_s;
	// DMax plays the same role as a single cap.
	DMax uint32
}

// DefaultConfig returns the configuration used by the simulations.
func DefaultConfig() Config {
	return Config{Arrays: 4, Bits: 16, TickSeconds: 0.01, TSMax: 15, DMax: 63}
}

// record is one filter slot. A zero record is empty.
//
// The encoding is 8 bytes: t_l keeps full tick resolution, while t_s and
// d are 16-bit saturating counters (their configured caps — paper: 15 and
// 63 — fit with room to spare; New rejects caps beyond 65535). With m=4
// arrays a flow's whole record block is 32 contiguous bytes.
type record struct {
	tl uint32 // last update, in ticks
	ts uint16 // congestion epochs since creation (saturating at TSMax)
	d  uint16 // extra drops (saturating at DMax)
}

// Filter is the drop-record filter. It is not safe for concurrent use.
//
// Layout: the m per-array records of slot s are stored contiguously as a
// block recs[s*m : s*m+m] (a blocked counting Bloom filter, à la Putze et
// al.). One RecordDrop or Query therefore touches at most two cache lines
// instead of m scattered ones. The trade-off is the standard blocked-Bloom
// one — two flows that collide in the block index collide in every array —
// which slightly raises the false-positive rate at equal table size; the
// conservative min-read and decay semantics are unchanged.
type Filter struct {
	cfg  Config
	mask uint64
	recs []record // blocked: slot s, array i at recs[s*Arrays+i]
	live int      // number of non-empty records (approximate, for stats)

	// Cumulative operation counters, for telemetry.
	recordOps int64
	queryOps  int64
}

// New creates a Filter. It validates the configuration.
func New(cfg Config) (*Filter, error) {
	if cfg.Arrays < 1 {
		return nil, fmt.Errorf("dropfilter: Arrays %d < 1", cfg.Arrays)
	}
	if cfg.Bits < 1 || cfg.Bits > 30 {
		return nil, fmt.Errorf("dropfilter: Bits %d out of [1,30]", cfg.Bits)
	}
	if cfg.TickSeconds <= 0 {
		return nil, fmt.Errorf("dropfilter: non-positive tick %v", cfg.TickSeconds)
	}
	if cfg.TSMax < 1 || cfg.DMax < 1 {
		return nil, fmt.Errorf("dropfilter: TSMax/DMax must be >= 1")
	}
	if cfg.TSMax > 65535 || cfg.DMax > 65535 {
		return nil, fmt.Errorf("dropfilter: TSMax/DMax must fit 16 bits (<= 65535)")
	}
	size := 1 << cfg.Bits
	return &Filter{
		cfg:  cfg,
		mask: uint64(size - 1),
		recs: make([]record, size*cfg.Arrays),
	}, nil
}

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// MemoryBytes returns the memory footprint of the record arrays, for the
// Section V-B sizing analysis.
func (f *Filter) MemoryBytes() int {
	const recordSize = 8 // uint32 + 2 * uint16
	return f.cfg.Arrays * (1 << f.cfg.Bits) * recordSize
}

// Live returns the number of currently non-empty records across all
// arrays (records that decayed to empty are counted out lazily, so this is
// an upper bound between operations).
func (f *Filter) Live() int { return f.live }

// FlowHash hashes a flow identifier (source, destination) to the 64-bit
// value the filter indexes with (FNV-1a).
//
// floc:hotpath
func FlowHash(src, dst uint32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range [8]byte{
		byte(src >> 24), byte(src >> 16), byte(src >> 8), byte(src),
		byte(dst >> 24), byte(dst >> 16), byte(dst >> 8), byte(dst),
	} {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// blockBase returns the index into recs of flow h's record block: the m
// per-array records start here and are contiguous.
//
// floc:hotpath
func (f *Filter) blockBase(h uint64) uint64 {
	return (h & f.mask) * uint64(f.cfg.Arrays)
}

// arraySpan is the set of arrays a flow touches, as a value: start index,
// count, and modulus. It replaces a per-operation []int (RecordDrop and
// Query run per dropped packet, and a heap allocation each was the
// filter's entire steady-state garbage). Iterate with index(j), j in
// [0, n): the visiting order is identical to the slice it replaced —
// 0..m-1 when unrestricted, (start+j) mod m when restricted.
type arraySpan struct {
	start, n, m int
}

// index returns the j'th array of the span.
//
// floc:hotpath
func (s arraySpan) index(j int) int {
	i := s.start + j
	if i >= s.m {
		i -= s.m
	}
	return i
}

// arraysFor returns which arrays a flow touches when restricted to k of m
// (probabilistic array selection, Section V-B.5). k <= 0 or k >= m means
// all arrays.
//
// floc:hotpath
func (f *Filter) arraysFor(h uint64, k int) arraySpan {
	m := f.cfg.Arrays
	if k <= 0 || k >= m {
		return arraySpan{start: 0, n: m, m: m}
	}
	return arraySpan{start: int((h >> 17) % uint64(m)), n: k, m: m}
}

// ticks quantizes a time in seconds to filter ticks.
// floc:unit now seconds
//
// floc:hotpath
func (f *Filter) ticks(now float64) uint32 {
	if now <= 0 {
		return 0
	}
	return uint32(now / f.cfg.TickSeconds)
}

// decay applies the per-epoch aging of Section V-B.2 to a record in place:
// d decreases by one and t_s increases by one for every congestion epoch
// elapsed since t_l. If d reaches zero the record clears (a legitimate
// flow's normal drop is removed from the filter). epochTicks is the path's
// congestion epoch (W/2 * RTT) in ticks.
//
// floc:hotpath
func (f *Filter) decay(r *record, nowTicks, epochTicks uint32) {
	if r.ts == 0 && r.d == 0 {
		return // empty
	}
	if epochTicks == 0 {
		epochTicks = 1
	}
	if nowTicks <= r.tl {
		return
	}
	epochs := (nowTicks - r.tl) / epochTicks
	if epochs == 0 {
		return
	}
	if epochs >= uint32(r.d) {
		// Record fully decayed: clear.
		if r.ts != 0 || r.d != 0 {
			f.live--
		}
		*r = record{}
		return
	}
	r.d -= uint16(epochs) // epochs < d <= 65535, so the cast is exact
	ts := uint32(r.ts) + epochs
	if ts > f.cfg.TSMax {
		ts = f.cfg.TSMax
	}
	r.ts = uint16(ts)
	r.tl += epochs * epochTicks
}

// RecordDrop records one dropped packet of flow h at time now (seconds),
// where epoch is the flow's path congestion epoch (W/2*RTT) in seconds.
// k restricts the update to k of the m arrays (<=0 for all). weight is the
// probabilistic-update weight (Section V-B.4): the caller samples drops
// with probability 1/weight and passes the weight here so expectations are
// preserved; use 1 for exact recording.
// floc:unit now seconds
// floc:unit epoch seconds
//
// floc:hotpath
func (f *Filter) RecordDrop(h uint64, now, epoch float64, k int, weight uint32) {
	f.recordOps++
	if weight < 1 {
		weight = 1
	}
	nowTicks := f.ticks(now)
	epochTicks := f.ticks(epoch)
	if epochTicks == 0 {
		epochTicks = 1
	}
	base := f.blockBase(h)
	span := f.arraysFor(h, k)
	for j := 0; j < span.n; j++ {
		i := span.index(j)
		r := &f.recs[base+uint64(i)]
		f.decay(r, nowTicks, epochTicks)
		add := weight
		if r.ts == 0 && r.d == 0 {
			// Fresh record: created now, first epoch. The creating drop is
			// the one-per-epoch drop a legitimate flow is entitled to, so
			// it does not count toward d.
			r.ts = 1
			r.tl = nowTicks
			r.d = 0
			f.live++
			add = weight - 1
		}
		d := uint32(r.d) + add
		if d > f.cfg.DMax || d < uint32(r.d) {
			d = f.cfg.DMax
		}
		r.d = uint16(d) // d <= DMax <= 65535 by New's validation
		r.tl = nowTicks
		if invariant.Hot {
			// Saturation bounds of the Section V-B record encoding: t_s and
			// d must never exceed their field capacity, and a live record
			// always has ts >= 1 (the creation epoch).
			invariant.True("dropfilter.record.saturation",
				uint32(r.d) <= f.cfg.DMax && uint32(r.ts) <= f.cfg.TSMax && r.ts >= 1)
		}
	}
	if invariant.Hot {
		invariant.True("dropfilter.live", f.live >= 0 && f.live <= f.cfg.Arrays<<f.cfg.Bits)
	}
}

// State is a flow's aggregated drop record.
type State struct {
	// TS is t_s, congestion epochs since the record was created.
	TS uint32
	// D is d, the extra drops beyond one per epoch.
	D uint32
}

// Excess returns P_e, the flow's estimated excess send-rate factor
// (extra drops per congestion epoch).
//
// floc:eq V-B.2 (P_e = d/t_s)
// floc:unit return ratio
//
// floc:hotpath
func (s State) Excess() float64 {
	if s.TS == 0 {
		return 0
	}
	return float64(s.D) / float64(s.TS)
}

// PrefDropProb returns the preferential drop ratio of Eq. (V.1):
//
//	P_pd = d / (t_s + d)
//
// A flow with no extra drops is never preferentially dropped. For a flow
// sending alpha times its fair bandwidth, d grows to (alpha-1)*t_s, so
// P_pd -> 1 - 1/alpha and the flow's serviced rate alpha*(1-P_pd) is
// pinned at its fair share. This matches both numeric examples in the
// paper: t_s=16, d=1 gives P_e = 1/16 = 6.25% and P_pd = 1/17 = 5.88%;
// a 64x flow saturating d at 63 with t_s=1 gives P_pd = 63/64 = 0.984.
//
// floc:eq V.1 (P_pd = d/(t_s+d))
// floc:unit return ratio
//
// floc:hotpath
func (s State) PrefDropProb() float64 {
	if s.D == 0 {
		return 0
	}
	return float64(s.D) / (float64(s.TS) + float64(s.D))
}

// Query returns the flow's drop state at time now, applying decay
// read-consistently (without mutating the stored records) and taking the
// minimum d across the flow's arrays (the counting-Bloom conservative
// read). k must match the k used for RecordDrop for this flow's path.
// floc:unit now seconds
// floc:unit epoch seconds
//
// floc:hotpath
func (f *Filter) Query(h uint64, now, epoch float64, k int) State {
	f.queryOps++
	nowTicks := f.ticks(now)
	epochTicks := f.ticks(epoch)
	if epochTicks == 0 {
		epochTicks = 1
	}
	best := State{TS: math.MaxUint32, D: math.MaxUint32}
	base := f.blockBase(h)
	span := f.arraysFor(h, k)
	for j := 0; j < span.n; j++ {
		i := span.index(j)
		r := f.recs[base+uint64(i)] // copy; decay without storing
		f.decayCopy(&r, nowTicks, epochTicks)
		if r.ts == 0 && r.d == 0 {
			return State{} // any empty array proves the flow is clean
		}
		if uint32(r.d) < best.D {
			best = State{TS: uint32(r.ts), D: uint32(r.d)}
		}
	}
	if best.D == math.MaxUint32 {
		return State{}
	}
	if invariant.Hot {
		// The conservative read must respect the same saturation bounds as
		// the stored records, and the derived preferential drop ratio
		// (Eq. V.1) must be a probability.
		invariant.True("dropfilter.query.saturation",
			best.D <= f.cfg.DMax && best.TS <= f.cfg.TSMax)
		invariant.Conformance01("dropfilter.prefdrop", best.PrefDropProb())
		invariant.NonNegative("dropfilter.excess", best.Excess())
	}
	return best
}

// decayCopy is decay without live-count bookkeeping, for query-time copies.
//
// floc:hotpath
func (f *Filter) decayCopy(r *record, nowTicks, epochTicks uint32) {
	if r.ts == 0 && r.d == 0 {
		return
	}
	if nowTicks <= r.tl {
		return
	}
	epochs := (nowTicks - r.tl) / epochTicks
	if epochs == 0 {
		return
	}
	if epochs >= uint32(r.d) {
		*r = record{}
		return
	}
	r.d -= uint16(epochs)
	ts := uint32(r.ts) + epochs
	if ts > f.cfg.TSMax {
		ts = f.cfg.TSMax
	}
	r.ts = uint16(ts)
	r.tl += epochs * epochTicks
}

// Reset clears all records and the operation counters.
func (f *Filter) Reset() {
	for i := range f.recs {
		f.recs[i] = record{}
	}
	f.live = 0
	f.recordOps = 0
	f.queryOps = 0
}

// Counters returns the cumulative RecordDrop and Query operation counts
// since creation (or Reset), for telemetry.
func (f *Filter) Counters() (recordOps, queryOps int64) {
	return f.recordOps, f.queryOps
}

// FalsePositiveRate returns the probability that a clean flow collides
// with recorded flows in all of the k arrays it reads, with n flows
// recorded in arrays of 2^log2Slots slots (paper Section V-B.5):
//
//	P_fp = (1 - e^(-n/2^log2Slots))^k
//
// log2Slots is Config.Bits, the base-2 logarithm of the per-array table
// width — an exponent, not a data quantity measured in bits.
//
// floc:eq V-B.5 (false-positive rate)
// floc:unit return ratio
func FalsePositiveRate(n int, log2Slots, k int) float64 {
	if k < 1 || log2Slots < 1 || n <= 0 {
		return 0
	}
	load := float64(n) / float64(uint64(1)<<log2Slots)
	return math.Pow(1-math.Exp(-load), float64(k))
}

// SelectK returns the number of arrays k that flows of attack domains
// should update so the false-positive rate seen by legitimate flows stays
// below the rate implied by nThresh recorded flows: it finds the smallest
// k >= 1 such that the effective load n_legit + n_attack*k/m is <= nThresh,
// or 1 if even k=1 cannot satisfy it (Section V-B.5).
func SelectK(nLegit, nAttack, m, nThresh int) int {
	if m < 1 {
		return 1
	}
	for k := m; k >= 1; k-- {
		eff := nLegit + nAttack*k/m
		if eff <= nThresh {
			return k
		}
	}
	return 1
}
