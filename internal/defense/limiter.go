package defense

import (
	"math"

	"floc/internal/netsim"
)

// Limiter is a rate-limiting queue discipline installed at an *upstream*
// router by Pushback's propagation protocol: the congested router asks
// the routers feeding an identified aggregate to drop the aggregate's
// excess before it ever reaches the congested link. A Limiter with no
// rate set is transparent.
type Limiter struct {
	inner netsim.Discipline

	rateBits   float64 // 0 = unlimited
	tokens     float64
	lastRefill float64

	dropped     int
	offeredBits float64
}

var _ netsim.Discipline = (*Limiter)(nil)

// NewLimiter wraps inner with an (initially unlimited) rate limiter.
func NewLimiter(inner netsim.Discipline) *Limiter {
	return &Limiter{inner: inner}
}

// SetRateBits installs (or, with 0, removes) a rate limit in bits/second.
func (l *Limiter) SetRateBits(rate float64) {
	if rate <= 0 {
		l.rateBits = 0
		return
	}
	l.rateBits = rate
	// Grant a 100 ms burst allowance on (re)installation.
	l.tokens = math.Min(l.tokens, rate*0.1)
	if l.tokens <= 0 {
		l.tokens = rate * 0.05
	}
}

// RateBits returns the current limit (0 = unlimited).
func (l *Limiter) RateBits() float64 { return l.rateBits }

// Dropped returns packets dropped by the limiter itself.
func (l *Limiter) Dropped() int { return l.dropped }

// TakeOfferedBits returns the bits offered to the limiter since the last
// call and resets the counter — the "status" feedback a pushback
// upstream router reports to the congested router, which must size and
// release limits against the aggregate's true demand, not the
// post-limiting residue it sees locally.
func (l *Limiter) TakeOfferedBits() float64 {
	v := l.offeredBits
	l.offeredBits = 0
	return v
}

// Enqueue implements netsim.Discipline.
func (l *Limiter) Enqueue(pkt *netsim.Packet, now float64) bool {
	l.offeredBits += float64(pkt.Size * 8)
	if l.rateBits > 0 {
		l.tokens += (now - l.lastRefill) * l.rateBits
		maxTokens := l.rateBits * 0.1
		if l.tokens > maxTokens {
			l.tokens = maxTokens
		}
		l.lastRefill = now
		bits := float64(pkt.Size * 8)
		if l.tokens < bits {
			l.dropped++
			return false
		}
		l.tokens -= bits
	} else {
		l.lastRefill = now
	}
	return l.inner.Enqueue(pkt, now)
}

// Dequeue implements netsim.Discipline.
func (l *Limiter) Dequeue(now float64) *netsim.Packet { return l.inner.Dequeue(now) }

// Len implements netsim.Discipline.
func (l *Limiter) Len() int { return l.inner.Len() }
