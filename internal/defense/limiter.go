package defense

import (
	"floc/internal/netsim"
	"floc/internal/units"
)

// burstWindow is the burst allowance granted by rate limiters: a limiter
// admits up to one burstWindow's worth of traffic at the configured rate
// beyond its steady-state budget.
const burstWindow units.Seconds = 0.1

// Limiter is a rate-limiting queue discipline installed at an *upstream*
// router by Pushback's propagation protocol: the congested router asks
// the routers feeding an identified aggregate to drop the aggregate's
// excess before it ever reaches the congested link. A Limiter with no
// rate set is transparent.
type Limiter struct {
	inner netsim.Discipline

	rateBits   units.BitsPerSec // 0 = unlimited
	tokens     units.Bits
	lastRefill float64 //floc:unit seconds

	dropped     int
	offeredBits units.Bits
}

var _ netsim.Discipline = (*Limiter)(nil)

// NewLimiter wraps inner with an (initially unlimited) rate limiter.
func NewLimiter(inner netsim.Discipline) *Limiter {
	return &Limiter{inner: inner}
}

// SetRateBits installs (or, with 0, removes) a rate limit in bits/second.
func (l *Limiter) SetRateBits(rate units.BitsPerSec) {
	if rate <= 0 {
		l.rateBits = 0
		return
	}
	l.rateBits = rate
	// Grant a burst allowance on (re)installation: carry over accumulated
	// credit up to one full burst window at the new rate, and seed at
	// least half a window so a freshly installed limiter does not drop
	// the first packet it sees.
	full := rate.Times(burstWindow)
	if l.tokens > full {
		l.tokens = full
	}
	if l.tokens <= 0 {
		l.tokens = rate.Times(burstWindow / 2)
	}
}

// RateBits returns the current limit (0 = unlimited).
func (l *Limiter) RateBits() units.BitsPerSec { return l.rateBits }

// Dropped returns packets dropped by the limiter itself.
func (l *Limiter) Dropped() int { return l.dropped }

// TakeOfferedBits returns the bits offered to the limiter since the last
// call and resets the counter — the "status" feedback a pushback
// upstream router reports to the congested router, which must size and
// release limits against the aggregate's true demand, not the
// post-limiting residue it sees locally.
func (l *Limiter) TakeOfferedBits() units.Bits {
	v := l.offeredBits
	l.offeredBits = 0
	return v
}

// Enqueue implements netsim.Discipline.
// floc:unit now seconds
// floc:hotpath
func (l *Limiter) Enqueue(pkt *netsim.Packet, now float64) bool {
	bits := units.FromPacket(pkt.Size)
	l.offeredBits += bits
	if l.rateBits > 0 {
		l.tokens += l.rateBits.Times(units.Seconds(now - l.lastRefill))
		maxTokens := l.rateBits.Times(burstWindow)
		if l.tokens > maxTokens {
			l.tokens = maxTokens
		}
		l.lastRefill = now
		if l.tokens < bits {
			l.dropped++
			return false
		}
		l.tokens -= bits
	} else {
		l.lastRefill = now
	}
	return l.inner.Enqueue(pkt, now)
}

// Dequeue implements netsim.Discipline.
// floc:unit now seconds
func (l *Limiter) Dequeue(now float64) *netsim.Packet { return l.inner.Dequeue(now) }

// Len implements netsim.Discipline.
func (l *Limiter) Len() int { return l.inner.Len() }
