package defense

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

func pkt(src, dst uint32, size int, path pathid.PathID) *netsim.Packet {
	return &netsim.Packet{Src: src, Dst: dst, Size: size, Kind: netsim.KindUDP, Path: path}
}

// --- RED ---

func TestREDValidation(t *testing.T) {
	bad := []REDConfig{
		{Capacity: 0, MinTh: 1, MaxTh: 2, MaxP: 0.1, Wq: 0.002},
		{Capacity: 10, MinTh: 0, MaxTh: 8, MaxP: 0.1, Wq: 0.002},
		{Capacity: 10, MinTh: 8, MaxTh: 4, MaxP: 0.1, Wq: 0.002},
		{Capacity: 10, MinTh: 2, MaxTh: 20, MaxP: 0.1, Wq: 0.002},
		{Capacity: 10, MinTh: 2, MaxTh: 8, MaxP: 0, Wq: 0.002},
		{Capacity: 10, MinTh: 2, MaxTh: 8, MaxP: 1.5, Wq: 0.002},
		{Capacity: 10, MinTh: 2, MaxTh: 8, MaxP: 0.1, Wq: 0},
	}
	for i, cfg := range bad {
		if _, err := NewRED(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewRED(DefaultREDConfig(100, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestREDAdmitsBelowMinTh(t *testing.T) {
	r, err := NewRED(DefaultREDConfig(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Empty queue, low average: everything admitted.
	for i := 0; i < 10; i++ {
		if !r.Enqueue(pkt(1, 2, 1000, nil), 0) {
			t.Fatal("drop below min threshold")
		}
		r.Dequeue(0)
	}
	if r.Drops() != 0 {
		t.Fatalf("drops = %d", r.Drops())
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	r, err := NewRED(DefaultREDConfig(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Fill without draining: average climbs above max_th, forcing drops.
	drops := 0
	for i := 0; i < 5000; i++ {
		if !r.Enqueue(pkt(1, 2, 1000, nil), float64(i)*0.001) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops under overload")
	}
	if r.Len() > 50 {
		t.Fatalf("queue exceeded capacity: %d", r.Len())
	}
	if r.AvgQueue() <= 0 {
		t.Fatal("average queue not tracked")
	}
}

func TestREDEarlyDropsBeforeFull(t *testing.T) {
	cfg := DefaultREDConfig(100, 2)
	r, err := NewRED(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawEarly := false
	for i := 0; i < 20000; i++ {
		ok := r.Enqueue(pkt(1, 2, 1000, nil), float64(i)*0.0005)
		if !ok && r.Len() < 100 {
			sawEarly = true
			break
		}
		if i%3 == 0 {
			r.Dequeue(float64(i) * 0.0005)
		}
	}
	if !sawEarly {
		t.Fatal("RED never dropped early (before buffer full)")
	}
}

func TestREDIdleDecay(t *testing.T) {
	r, err := NewRED(DefaultREDConfig(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		r.Enqueue(pkt(1, 2, 1000, nil), 0.001*float64(i))
	}
	avgBusy := r.AvgQueue()
	// Drain fully, then come back much later: average must have decayed.
	for r.Dequeue(2.0) != nil {
	}
	r.Enqueue(pkt(1, 2, 1000, nil), 10.0)
	if r.AvgQueue() >= avgBusy {
		t.Fatalf("avg did not decay over idle: %v -> %v", avgBusy, r.AvgQueue())
	}
}

// --- RED-PD ---

func TestREDPDValidation(t *testing.T) {
	base := DefaultREDPDConfig(100, 1)
	mutations := []func(*REDPDConfig){
		func(c *REDPDConfig) { c.Interval = 0 },
		func(c *REDPDConfig) { c.HistoryLen = 0 },
		func(c *REDPDConfig) { c.IdentifyThreshold = 0 },
		func(c *REDPDConfig) { c.IdentifyThreshold = c.HistoryLen + 1 },
		func(c *REDPDConfig) { c.AssumedRTT = 0 },
		func(c *REDPDConfig) { c.RED.Capacity = 0 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := NewREDPD(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewREDPD(base); err != nil {
		t.Fatal(err)
	}
}

func TestREDPDMonitorsPersistentDropper(t *testing.T) {
	cfg := DefaultREDPDConfig(20, 1)
	cfg.Interval = 0.1
	r, err := NewREDPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aggressive := netsim.FlowID{Src: 9, Dst: 2}
	// Offer a high-rate flow into a tiny queue over many epochs; it keeps
	// experiencing drops, so it must become monitored with rising p.
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += 0.0002
		r.Enqueue(pkt(9, 2, 1000, nil), now)
		if i%4 == 0 {
			r.Dequeue(now)
		}
	}
	if r.Monitored() == 0 {
		t.Fatal("aggressive flow never monitored")
	}
	if p := r.MonitorProb(aggressive); p <= 0 {
		t.Fatalf("monitor probability = %v", p)
	}
	if r.PrefilterDrops() == 0 {
		t.Fatal("no prefilter drops")
	}
}

func TestREDPDReleasesQuietFlow(t *testing.T) {
	cfg := DefaultREDPDConfig(20, 1)
	cfg.Interval = 0.1
	r, err := NewREDPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 20000; i++ {
		now += 0.0002
		r.Enqueue(pkt(9, 2, 1000, nil), now)
		if i%4 == 0 {
			r.Dequeue(now)
		}
	}
	if r.Monitored() == 0 {
		t.Fatal("setup: flow not monitored")
	}
	// Flow goes quiet; idle traffic from another flow rolls the epochs.
	for i := 0; i < 5000; i++ {
		now += 0.001
		r.Enqueue(pkt(3, 2, 100, nil), now)
		r.Dequeue(now)
	}
	if r.Monitored() != 0 {
		t.Fatalf("monitored = %d after quiet period", r.Monitored())
	}
}

// --- Pushback ---

func TestPushbackValidation(t *testing.T) {
	base := DefaultPushbackConfig(100, 1e6, 1)
	mutations := []func(*PushbackConfig){
		func(c *PushbackConfig) { c.LinkRateBits = 0 },
		func(c *PushbackConfig) { c.Interval = 0 },
		func(c *PushbackConfig) { c.DropRateTrigger = 0 },
		func(c *PushbackConfig) { c.DropRateTrigger = 1 },
		func(c *PushbackConfig) { c.TargetUtil = 0 },
		func(c *PushbackConfig) { c.ReleaseFactor = 1 },
		func(c *PushbackConfig) { c.RED.Capacity = 0 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if _, err := NewPushback(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// floodPushback offers two aggregates (one 8x the other) into a small
// pushback-protected queue and returns the discipline.
func floodPushback(t *testing.T, trigger float64) (*Pushback, map[string]int) {
	t.Helper()
	cfg := DefaultPushbackConfig(50, 8e6, 1) // 8 Mb/s link
	cfg.Interval = 0.2
	cfg.DropRateTrigger = trigger
	pb, err := NewPushback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attackPath := pathid.New(7, 1)
	legitPath := pathid.New(8, 1)
	admitted := map[string]int{}
	now := 0.0
	// Attack: 16 Mb/s; legit: 2 Mb/s; capacity 8 Mb/s.
	for i := 0; i < 40000; i++ {
		now += 0.0005 // 2000 pkt/s of 1000B = 16 Mb/s for attack
		if pb.Enqueue(pkt(7, 2, 1000, attackPath), now) {
			admitted[attackPath.Key()]++
		}
		if i%8 == 0 {
			if pb.Enqueue(pkt(8, 2, 1000, legitPath), now) {
				admitted[legitPath.Key()]++
			}
		}
		pb.Dequeue(now) // drain at 2000 pkt/s... see below
	}
	return pb, admitted
}

func TestPushbackActivatesAndLimitsBiggestAggregate(t *testing.T) {
	pb, admitted := floodPushback(t, 0.1)
	if pb.Activations() == 0 {
		t.Fatal("ACC never activated under heavy overload")
	}
	if pb.LimiterDrops() == 0 {
		t.Fatal("limiter never dropped")
	}
	a := admitted[pathid.New(7, 1).Key()]
	l := admitted[pathid.New(8, 1).Key()]
	if l == 0 {
		t.Fatal("legitimate aggregate starved completely")
	}
	// The attack aggregate offered 8x the legit load; after limiting its
	// admitted share must be far below 8x.
	if float64(a) > 5*float64(l) {
		t.Fatalf("attack admitted %d vs legit %d: limiter ineffective", a, l)
	}
}

func TestPushbackInactiveBelowTrigger(t *testing.T) {
	cfg := DefaultPushbackConfig(1000, 8e6, 1)
	cfg.Interval = 0.2
	pb, err := NewPushback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Light load: no drops, no activation.
	now := 0.0
	for i := 0; i < 5000; i++ {
		now += 0.002
		pb.Enqueue(pkt(7, 2, 1000, pathid.New(7, 1)), now)
		pb.Dequeue(now)
	}
	if pb.Activations() != 0 {
		t.Fatalf("activated %d times without overload", pb.Activations())
	}
	if pb.LimitedAggregates() != 0 {
		t.Fatal("aggregates limited without overload")
	}
}

func TestPushbackReleasesAfterAttackEnds(t *testing.T) {
	pb, _ := floodPushback(t, 0.1)
	if pb.LimitedAggregates() == 0 {
		t.Fatal("setup: nothing limited")
	}
	// Attack stops; only light legit traffic continues. Limits loosen and
	// release.
	now := 25.0
	for i := 0; i < 20000; i++ {
		now += 0.002
		pb.Enqueue(pkt(8, 2, 1000, pathid.New(8, 1)), now)
		pb.Dequeue(now)
	}
	if pb.LimitedAggregates() != 0 {
		t.Fatalf("still %d limited aggregates after quiet period", pb.LimitedAggregates())
	}
}

func TestPushbackAggDepth(t *testing.T) {
	cfg := DefaultPushbackConfig(100, 1e6, 1)
	cfg.AggDepth = 1
	pb, err := NewPushback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two different origins sharing the last hop aggregate together.
	k1 := pb.aggKey(pkt(1, 2, 100, pathid.New(5, 3, 1)))
	k2 := pb.aggKey(pkt(1, 2, 100, pathid.New(6, 4, 1)))
	if k1 != k2 {
		t.Fatalf("depth-1 keys differ: %q vs %q", k1, k2)
	}
	cfg.AggDepth = 0
	pb2, err := NewPushback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pb2.aggKey(pkt(1, 2, 100, pathid.New(5, 3, 1))) == pb2.aggKey(pkt(1, 2, 100, pathid.New(6, 4, 1))) {
		t.Fatal("full-path keys collide")
	}
}

// --- Limiter / upstream pushback ---

func TestLimiterTransparentWhenUnlimited(t *testing.T) {
	l := NewLimiter(netsim.NewFIFO(10))
	for i := 0; i < 10; i++ {
		if !l.Enqueue(pkt(1, 2, 1000, nil), float64(i)*0.001) {
			t.Fatal("unlimited limiter dropped")
		}
		l.Dequeue(float64(i) * 0.001)
	}
	if l.Dropped() != 0 || l.RateBits() != 0 {
		t.Fatalf("dropped=%d rate=%v", l.Dropped(), l.RateBits())
	}
}

func TestLimiterEnforcesRate(t *testing.T) {
	l := NewLimiter(netsim.NewFIFO(10000))
	l.SetRateBits(1e6) // 1 Mb/s = 125 pkt/s of 1000 B
	admitted := 0
	now := 0.0
	for i := 0; i < 10000; i++ {
		now += 0.001 // offered: 1000 pkt/s = 8 Mb/s
		if l.Enqueue(pkt(1, 2, 1000, nil), now) {
			admitted++
		}
		l.Dequeue(now)
	}
	rate := float64(admitted) * 8000 / now
	if rate > 1.3e6 || rate < 0.6e6 {
		t.Fatalf("admitted rate = %v bits/s, want ~1e6", rate)
	}
	if l.Dropped() == 0 {
		t.Fatal("no limiter drops")
	}
	// Removing the limit restores transparency.
	l.SetRateBits(0)
	if !l.Enqueue(pkt(1, 2, 1000, nil), now+1) {
		t.Fatal("dropped after limit removal")
	}
}

func TestPushbackPropagatesUpstream(t *testing.T) {
	cfg := DefaultPushbackConfig(50, 8e6, 1)
	cfg.Interval = 0.2
	cfg.DropRateTrigger = 0.1
	pb, err := NewPushback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attackPath := pathid.New(7, 1)
	upstream := NewLimiter(netsim.NewFIFO(1000))
	pb.AttachUpstream(attackPath.Key(), upstream)

	// Flood through the upstream limiter into the pushback queue at
	// twice the service rate so ACC triggers.
	now := 0.0
	for i := 0; i < 40000; i++ {
		now += 0.0005
		p := pkt(7, 2, 1000, attackPath)
		if upstream.Enqueue(p, now) {
			upstream.Dequeue(now)
			pb.Enqueue(p, now)
		}
		if i%2 == 0 {
			pb.Dequeue(now)
		}
	}
	if pb.Activations() == 0 {
		t.Fatal("ACC never activated")
	}
	// The limit cycles: installed upstream, the upstream sheds, the
	// congested router clears, the limit loosens and releases, the flood
	// returns. Proof of propagation is that the *upstream* limiter shed
	// traffic at all.
	if upstream.Dropped() == 0 {
		t.Fatal("upstream limiter shed nothing: limit never propagated")
	}
	if pb.UpstreamDrops() != upstream.Dropped() {
		t.Fatal("UpstreamDrops accounting wrong")
	}

	// Attack ends: quiet traffic releases the limit upstream too.
	for i := 0; i < 20000; i++ {
		now += 0.002
		p := pkt(8, 2, 1000, pathid.New(8, 1))
		pb.Enqueue(p, now)
		pb.Dequeue(now)
	}
	if upstream.RateBits() != 0 {
		t.Fatalf("upstream limit not released: %v", upstream.RateBits())
	}
}

func TestREDPDPinsAtTargetNotBelow(t *testing.T) {
	// A monitored constant-rate flow ends near the TCP-friendly target
	// rate — not crushed far below it. This is the property that makes
	// RED-PD vulnerable to covert (headcount) attacks.
	cfg := DefaultREDPDConfig(50, 1)
	cfg.Interval = 0.2
	r, err := NewREDPD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	now := 0.0
	const offered = 2000.0 // pkt/s into a ~1000 pkt/s service
	for i := 0; i < 60000; i++ {
		now += 1 / offered
		if r.Enqueue(pkt(9, 2, 1000, nil), now) {
			admitted++
		}
		if i%2 == 0 {
			r.Dequeue(now)
		}
	}
	if r.Monitored() == 0 {
		t.Fatal("flow never monitored")
	}
	target := r.TargetRate()
	admittedRate := float64(admitted) / now
	// Within a factor ~3 of the target (the pre-filter and RED both act).
	if admittedRate < target/4 {
		t.Fatalf("flow crushed: admitted %v pkt/s vs target %v", admittedRate, target)
	}
}
