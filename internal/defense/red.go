// Package defense implements the baseline queue disciplines the paper
// compares FLoc against (Section VI): RED (the no-attack fairness
// reference), RED-PD (per-flow preferential dropping), and Pushback
// (aggregate-based congestion control).
//
// Each defense is a netsim.Discipline attached to the flooded link.
package defense

import (
	"fmt"
	"math"

	"floc/internal/netsim"
	"floc/internal/rng"
	"floc/internal/telemetry"
)

// REDConfig configures a RED queue (Floyd & Jacobson).
type REDConfig struct {
	// Capacity is the physical buffer size in packets.
	Capacity int
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate.
	Wq float64
	// Seed seeds the discipline's private random stream.
	Seed uint64
}

// DefaultREDConfig returns a standard parameterization for a buffer of
// capacity packets: min_th at 20%, max_th at 80%, max_p 0.1, w_q 0.002.
func DefaultREDConfig(capacity int, seed uint64) REDConfig {
	return REDConfig{
		Capacity: capacity,
		MinTh:    0.2 * float64(capacity),
		MaxTh:    0.8 * float64(capacity),
		MaxP:     0.1,
		Wq:       0.002,
		Seed:     seed,
	}
}

// RED is the classic random-early-detection queue.
type RED struct {
	cfg   REDConfig
	fifo  *netsim.FIFO
	rng   *rng.Source
	avg   float64
	count int // packets since last drop, for drop spreading
	// idleAt is when the queue went empty (for idle-time avg decay).
	idleAt float64
	idle   bool

	drops int
	met   *redMetrics // nil unless SetTelemetry attached a registry
}

var _ netsim.Discipline = (*RED)(nil)

// NewRED creates a RED queue.
func NewRED(cfg REDConfig) (*RED, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("defense: RED capacity %d < 1", cfg.Capacity)
	}
	if cfg.MinTh <= 0 || cfg.MaxTh <= cfg.MinTh || cfg.MaxTh > float64(cfg.Capacity) {
		return nil, fmt.Errorf("defense: RED thresholds (%v, %v) invalid for capacity %d",
			cfg.MinTh, cfg.MaxTh, cfg.Capacity)
	}
	if cfg.MaxP <= 0 || cfg.MaxP > 1 {
		return nil, fmt.Errorf("defense: RED MaxP %v out of (0,1]", cfg.MaxP)
	}
	if cfg.Wq <= 0 || cfg.Wq > 1 {
		return nil, fmt.Errorf("defense: RED Wq %v out of (0,1]", cfg.Wq)
	}
	return &RED{cfg: cfg, fifo: netsim.NewFIFO(cfg.Capacity), rng: rng.New(cfg.Seed), count: -1}, nil
}

// AvgQueue returns the current average queue estimate.
func (r *RED) AvgQueue() float64 { return r.avg }

// Drops returns the number of RED (early + overflow) drops.
func (r *RED) Drops() int { return r.drops }

// Enqueue implements netsim.Discipline.
func (r *RED) Enqueue(pkt *netsim.Packet, now float64) bool {
	q := float64(r.fifo.Len())
	if r.idle {
		// Decay the average over the idle period as if the queue drained
		// one packet per "typical" transmission time; we approximate with
		// a halving per idle second, which suffices for simulation.
		idleTime := now - r.idleAt
		r.avg *= math.Exp(-idleTime)
		r.idle = false
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*q

	drop := false
	switch {
	case r.avg < r.cfg.MinTh:
		r.count = -1
	case r.avg >= r.cfg.MaxTh:
		drop = true
		r.count = 0
	default:
		r.count++
		pb := r.cfg.MaxP * (r.avg - r.cfg.MinTh) / (r.cfg.MaxTh - r.cfg.MinTh)
		pa := pb / math.Max(1e-9, 1-float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rng.Float64() < pa {
			drop = true
			r.count = 0
		}
	}
	if telemetry.Compiled && r.met != nil {
		r.met.avgQueue.Set(r.avg)
	}
	if drop {
		r.drops++
		if telemetry.Compiled && r.met != nil {
			r.met.drops.Inc()
		}
		return false
	}
	if !r.fifo.Enqueue(pkt, now) {
		r.drops++
		if telemetry.Compiled && r.met != nil {
			r.met.drops.Inc()
		}
		r.count = 0
		return false
	}
	return true
}

// Dequeue implements netsim.Discipline.
func (r *RED) Dequeue(now float64) *netsim.Packet {
	pkt := r.fifo.Dequeue(now)
	if r.fifo.Len() == 0 {
		r.idle = true
		r.idleAt = now
	}
	return pkt
}

// Len implements netsim.Discipline.
func (r *RED) Len() int { return r.fifo.Len() }
