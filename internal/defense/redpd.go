package defense

import (
	"fmt"
	"math"

	"floc/internal/netsim"
)

// REDPDConfig configures a RED-PD queue (Mahajan, Floyd & Wetherall:
// "Controlling High-Bandwidth Flows at the Congested Router").
type REDPDConfig struct {
	// RED parameterizes the underlying queue.
	RED REDConfig
	// Interval is the drop-history epoch length in seconds.
	Interval float64
	// HistoryLen is the number of epochs of drop history kept (paper: ~5).
	HistoryLen int
	// IdentifyThreshold is the number of history epochs with drops that
	// flags a flow as high-bandwidth (paper: majority of the history).
	IdentifyThreshold int
	// AssumedRTT is the round-trip time RED-PD assumes when converting
	// the ambient drop probability into the TCP-friendly target rate
	// (the published scheme's R(p) = S/(RTT) * sqrt(3/(2p))).
	AssumedRTT float64
	// UnmonitorBelow releases a flow whose pre-filter probability decays
	// under this value.
	UnmonitorBelow float64
}

// DefaultREDPDConfig returns the parameterization used in the experiments.
func DefaultREDPDConfig(capacity int, seed uint64) REDPDConfig {
	return REDPDConfig{
		RED:               DefaultREDConfig(capacity, seed),
		Interval:          0.5,
		HistoryLen:        5,
		IdentifyThreshold: 3,
		AssumedRTT:        0.1,
		UnmonitorBelow:    0.005,
	}
}

// monitored is the per-monitored-flow state.
type monitored struct {
	p       float64 // pre-filter drop probability
	arrived float64 // packets offered this epoch
	rate    float64 // smoothed offered rate, packets/second
}

// REDPD is the RED-PD discipline: a RED queue plus a pre-filter that
// brings identified high-bandwidth flows down to the TCP-friendly target
// rate implied by the ambient drop probability. It deliberately does
// *not* push flows below that per-flow fair target — which is exactly
// why, as the FLoc paper argues, it cannot counter covert attacks that
// win by flow headcount.
type REDPD struct {
	cfg REDPDConfig
	red *RED

	epochStart float64
	// history[i] is the per-flow drop counts of epoch i (ring buffer).
	history []map[netsim.FlowID]int
	head    int
	current map[netsim.FlowID]int
	mon     map[netsim.FlowID]*monitored

	// Epoch-level ambient measurement.
	epochArrivals int
	epochDrops    int
	dropProb      float64 // EWMA of drops/arrivals

	prefilterDrops int
}

var _ netsim.Discipline = (*REDPD)(nil)

// NewREDPD creates a RED-PD discipline.
func NewREDPD(cfg REDPDConfig) (*REDPD, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("defense: RED-PD interval %v <= 0", cfg.Interval)
	}
	if cfg.HistoryLen < 1 {
		return nil, fmt.Errorf("defense: RED-PD history %d < 1", cfg.HistoryLen)
	}
	if cfg.IdentifyThreshold < 1 || cfg.IdentifyThreshold > cfg.HistoryLen {
		return nil, fmt.Errorf("defense: RED-PD identify threshold %d out of [1,%d]",
			cfg.IdentifyThreshold, cfg.HistoryLen)
	}
	if cfg.AssumedRTT <= 0 {
		return nil, fmt.Errorf("defense: RED-PD assumed RTT %v <= 0", cfg.AssumedRTT)
	}
	red, err := NewRED(cfg.RED)
	if err != nil {
		return nil, err
	}
	history := make([]map[netsim.FlowID]int, cfg.HistoryLen)
	for i := range history {
		history[i] = map[netsim.FlowID]int{}
	}
	return &REDPD{
		cfg:     cfg,
		red:     red,
		history: history,
		current: map[netsim.FlowID]int{},
		mon:     map[netsim.FlowID]*monitored{},
	}, nil
}

// Monitored returns the number of currently monitored flows.
func (r *REDPD) Monitored() int { return len(r.mon) }

// PrefilterDrops returns the number of pre-filter drops so far.
func (r *REDPD) PrefilterDrops() int { return r.prefilterDrops }

// MonitorProb returns the pre-filter probability for a flow (0 if not
// monitored), for tests and instrumentation.
func (r *REDPD) MonitorProb(f netsim.FlowID) float64 {
	if m, ok := r.mon[f]; ok {
		return m.p
	}
	return 0
}

// TargetRate returns the current TCP-friendly target rate in packets per
// second.
func (r *REDPD) TargetRate() float64 {
	p := r.dropProb
	if p < 0.001 {
		p = 0.001
	}
	return 1 / r.cfg.AssumedRTT * math.Sqrt(1.5/p)
}

// rollEpochs advances the drop-history ring to cover time now.
func (r *REDPD) rollEpochs(now float64) {
	for now-r.epochStart >= r.cfg.Interval {
		r.epochStart += r.cfg.Interval
		r.head = (r.head + 1) % r.cfg.HistoryLen
		r.history[r.head] = r.current
		r.current = map[netsim.FlowID]int{}
		r.adapt()
	}
}

// adapt runs the per-epoch identification and probability adjustment.
func (r *REDPD) adapt() {
	// Ambient drop probability.
	if r.epochArrivals > 0 {
		sample := float64(r.epochDrops) / float64(r.epochArrivals)
		r.dropProb = 0.3*sample + 0.7*r.dropProb
	}
	r.epochArrivals = 0
	r.epochDrops = 0

	// Identification: flows with drops in enough recent epochs.
	epochs := map[netsim.FlowID]int{}
	for _, h := range r.history {
		for f := range h {
			epochs[f]++
		}
	}
	for f, n := range epochs {
		if n >= r.cfg.IdentifyThreshold {
			if _, ok := r.mon[f]; !ok {
				r.mon[f] = &monitored{}
			}
		}
	}

	// Adjustment: pin monitored flows at the TCP-friendly target rate.
	target := r.TargetRate()
	for f, m := range r.mon {
		m.rate = 0.5*(m.arrived/r.cfg.Interval) + 0.5*m.rate
		m.arrived = 0
		if m.rate > target && target > 0 {
			m.p = 1 - target/m.rate
			if m.p > 0.98 {
				m.p = 0.98
			}
		} else {
			m.p /= 2
			if m.p < r.cfg.UnmonitorBelow && epochs[f] < r.cfg.IdentifyThreshold {
				delete(r.mon, f)
			}
		}
	}
}

// Enqueue implements netsim.Discipline.
func (r *REDPD) Enqueue(pkt *netsim.Packet, now float64) bool {
	r.rollEpochs(now)
	r.epochArrivals++
	flow := pkt.Flow()
	if m, ok := r.mon[flow]; ok {
		m.arrived++
		if r.red.rng.Float64() < m.p {
			r.prefilterDrops++
			r.current[flow]++
			r.epochDrops++
			return false
		}
	}
	if !r.red.Enqueue(pkt, now) {
		r.current[flow]++
		r.epochDrops++
		return false
	}
	return true
}

// Dequeue implements netsim.Discipline.
func (r *REDPD) Dequeue(now float64) *netsim.Packet { return r.red.Dequeue(now) }

// Len implements netsim.Discipline.
func (r *REDPD) Len() int { return r.red.Len() }
