package defense

import (
	"floc/internal/netsim"
	"floc/internal/units"
)

// passThrough is the identity discipline behind each bank limiter: it
// accepts every packet and holds nothing, so the wrapped Limiter acts as
// a pure admission gate — the packet's real queueing happens in the
// router the bank fronts.
type passThrough struct{}

var _ netsim.Discipline = passThrough{}

// floc:unit now seconds
func (passThrough) Enqueue(pkt *netsim.Packet, now float64) bool { return true }

// floc:unit now seconds
func (passThrough) Dequeue(now float64) *netsim.Packet { return nil }

func (passThrough) Len() int { return 0 }

// bankEntry pairs a limiter with its lease: a limit installed from a
// cluster peer's feedback expires expiresAt seconds into the arrival
// clock unless the peer refreshes it, so a dead downstream cannot wedge
// an upstream forever.
type bankEntry struct {
	lim       *Limiter
	expiresAt float64 //floc:unit seconds (0 = no expiry)
}

// LimiterBank holds per-path rate limits installed by the cluster
// control plane, keyed by interned path handle. It fronts admission: the
// dataplane consults Admit before handing a packet to the router, so a
// propagated pushback limit drops aggregate excess before it spends any
// of the congested link's budget — the FLoc deployment story of
// enforcement at multiple routers along the path.
//
// A bank is confined to one dataplane shard and accessed only from that
// shard's worker goroutine (installs arrive via the command barrier), so
// it needs no locks.
type LimiterBank struct {
	entries map[uint32]*bankEntry

	drops int
}

// NewLimiterBank returns an empty bank.
func NewLimiterBank() *LimiterBank {
	return &LimiterBank{entries: make(map[uint32]*bankEntry, 16)}
}

// Install sets (rate > 0) or releases (rate <= 0) the limit for a path
// handle. expiresAt is the arrival-clock deadline after which the limit
// lapses on its own (0 = never). Reinstalling refreshes the lease and
// re-seeds the limiter's burst allowance via SetRateBits.
// floc:unit expiresAt seconds
func (b *LimiterBank) Install(handle uint32, rate units.BitsPerSec, expiresAt float64) {
	if rate <= 0 {
		delete(b.entries, handle)
		return
	}
	e := b.entries[handle]
	if e == nil {
		e = &bankEntry{lim: NewLimiter(passThrough{})}
		b.entries[handle] = e
	}
	e.lim.SetRateBits(rate)
	e.expiresAt = expiresAt
}

// Admit runs the packet through the handle's limiter, if one is
// installed and unexpired. Handle 0 (the unknown path) and handles with
// no limit pass untouched; an expired limit is reaped lazily on first
// touch. Returns false when the limiter drops the packet.
// floc:unit now seconds
// floc:hotpath
func (b *LimiterBank) Admit(handle uint32, pkt *netsim.Packet, now float64) bool {
	if handle == 0 {
		return true
	}
	e := b.entries[handle]
	if e == nil {
		return true
	}
	if e.expiresAt > 0 && now >= e.expiresAt {
		delete(b.entries, handle)
		return true
	}
	if !e.lim.Enqueue(pkt, now) {
		b.drops++
		return false
	}
	return true
}

// Rate returns the handle's installed limit (0 = none installed or
// expired; expiry is checked but not reaped here).
// floc:unit now seconds
func (b *LimiterBank) Rate(handle uint32, now float64) units.BitsPerSec {
	e := b.entries[handle]
	if e == nil {
		return 0
	}
	if e.expiresAt > 0 && now >= e.expiresAt {
		return 0
	}
	return e.lim.RateBits()
}

// Sweep reaps every expired entry and returns the number removed. Admit
// reaps lazily; Sweep exists so idle paths' leases still lapse and the
// active-limit gauge stays honest.
// floc:unit now seconds
func (b *LimiterBank) Sweep(now float64) int {
	removed := 0
	for h, e := range b.entries {
		if e.expiresAt > 0 && now >= e.expiresAt {
			delete(b.entries, h)
			removed++
		}
	}
	return removed
}

// Active returns the number of installed (possibly expired but unswept)
// limits.
func (b *LimiterBank) Active() int { return len(b.entries) }

// Drops returns packets dropped by the bank's limiters via Admit.
// floc:hotpath
func (b *LimiterBank) Drops() int { return b.drops }
