package defense

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/units"
)

func bankPkt(size int) *netsim.Packet {
	return &netsim.Packet{Size: size}
}

func TestBankNoLimitPasses(t *testing.T) {
	b := NewLimiterBank()
	if !b.Admit(0, bankPkt(1500), 0) {
		t.Fatal("handle 0 must always pass")
	}
	if !b.Admit(7, bankPkt(1500), 0) {
		t.Fatal("handle with no limit must pass")
	}
	if b.Active() != 0 || b.Drops() != 0 {
		t.Fatalf("Active=%d Drops=%d, want 0/0", b.Active(), b.Drops())
	}
}

func TestBankLimitEnforced(t *testing.T) {
	b := NewLimiterBank()
	// 1 Mb/s with a 0.1 s burst window: 100 kb of burst ≈ 8 full-size
	// packets, then ~1 packet per 12 ms of arrival time.
	b.Install(3, 1_000_000, 0)
	if b.Active() != 1 {
		t.Fatalf("Active = %d, want 1", b.Active())
	}
	admitted, dropped := 0, 0
	for i := 0; i < 100; i++ {
		if b.Admit(3, bankPkt(1500), 0.001*float64(i)) {
			admitted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("offered 12 Mb/s against a 1 Mb/s limit, nothing dropped")
	}
	if admitted == 0 {
		t.Fatal("burst allowance should admit some packets")
	}
	if b.Drops() != dropped {
		t.Fatalf("Drops() = %d, want %d", b.Drops(), dropped)
	}
	// Unrelated handle is untouched.
	if !b.Admit(4, bankPkt(1500), 0.05) {
		t.Fatal("other handle must pass")
	}
}

func TestBankReleaseAndReinstall(t *testing.T) {
	b := NewLimiterBank()
	b.Install(3, 1_000_000, 0)
	b.Install(3, 0, 0) // release
	if b.Active() != 0 {
		t.Fatalf("Active = %d after release, want 0", b.Active())
	}
	if !b.Admit(3, bankPkt(1500), 0) {
		t.Fatal("released handle must pass")
	}
	b.Install(3, 2_000_000, 0)
	if got := b.Rate(3, 0); got != units.BitsPerSec(2_000_000) {
		t.Fatalf("Rate = %v, want 2e6", got)
	}
}

func TestBankLazyExpiry(t *testing.T) {
	b := NewLimiterBank()
	b.Install(5, 1, 2.0) // 1 bit/s: drops everything after the seed burst
	for i := 0; i < 4; i++ {
		b.Admit(5, bankPkt(1500), 1.0)
	}
	if b.Drops() == 0 {
		t.Fatal("1 bit/s limit should drop full-size packets")
	}
	if !b.Admit(5, bankPkt(1500), 2.5) {
		t.Fatal("expired limit must pass")
	}
	if b.Active() != 0 {
		t.Fatalf("Active = %d after lazy expiry, want 0", b.Active())
	}
	if got := b.Rate(5, 2.5); got != 0 {
		t.Fatalf("Rate after expiry = %v, want 0", got)
	}
}

func TestBankSweep(t *testing.T) {
	b := NewLimiterBank()
	b.Install(1, 1_000_000, 1.0)
	b.Install(2, 1_000_000, 5.0)
	b.Install(3, 1_000_000, 0) // no expiry
	if got := b.Sweep(2.0); got != 1 {
		t.Fatalf("Sweep removed %d, want 1", got)
	}
	if b.Active() != 2 {
		t.Fatalf("Active = %d after sweep, want 2", b.Active())
	}
	if got := b.Sweep(10.0); got != 1 {
		t.Fatalf("second Sweep removed %d, want 1", got)
	}
	if b.Active() != 1 {
		t.Fatalf("Active = %d, want 1 (the no-expiry entry)", b.Active())
	}
}

func TestBankRefreshExtendsLease(t *testing.T) {
	b := NewLimiterBank()
	b.Install(9, 1_000_000, 1.0)
	b.Install(9, 1_000_000, 3.0) // refresh before expiry
	if !b.Admit(9, bankPkt(100), 2.0) {
		t.Fatal("refreshed limit should still be live (and admit within burst)")
	}
	if b.Active() != 1 {
		t.Fatalf("Active = %d, want 1", b.Active())
	}
	if got := b.Sweep(2.0); got != 0 {
		t.Fatalf("Sweep removed %d, want 0", got)
	}
}

func TestZeroAllocBankAdmit(t *testing.T) {
	b := NewLimiterBank()
	b.Install(3, 100_000_000, 0)
	pkt := bankPkt(100)
	now := 0.0
	if avg := testing.AllocsPerRun(200, func() {
		now += 0.001
		b.Admit(3, pkt, now)
		b.Admit(0, pkt, now)
		b.Admit(99, pkt, now)
	}); avg != 0 {
		t.Fatalf("Admit allocates %.1f times per op, want 0", avg)
	}
}
