package defense

import (
	"fmt"
	"sort"

	"floc/internal/netsim"
	"floc/internal/telemetry"
	"floc/internal/units"
)

// PushbackConfig configures the Pushback (aggregate congestion control)
// discipline (Mahajan, Bellovin, Floyd et al., "Controlling High Bandwidth
// Aggregates in the Network").
//
// The congested router performs local ACC: sustained overload triggers
// identification of the highest-rate aggregates and installs
// per-aggregate rate limiters sized by water-filling so the admitted
// load fits the link. With AttachUpstream, limits are additionally
// propagated to rate limiters at the routers feeding those aggregates
// (the pushback protocol proper); at a single shared bottleneck this
// changes where the excess is shed, not the bottleneck's shares.
type PushbackConfig struct {
	// RED parameterizes the underlying queue.
	RED REDConfig
	// LinkRateBits is the protected link's capacity in bits/second.
	LinkRateBits float64 //floc:unit bits/s
	// Interval is the ACC review period in seconds.
	Interval float64 //floc:unit seconds
	// DropRateTrigger is the drop fraction over an interval that triggers
	// aggregate rate limiting.
	DropRateTrigger float64 //floc:unit ratio
	// TargetUtil is the fraction of link capacity the water-fill aims
	// to admit.
	TargetUtil float64 //floc:unit ratio
	// AggDepth is the path-postfix depth that defines an aggregate
	// (0 means the full path, i.e. per-origin-domain aggregates).
	AggDepth int
	// ReleaseFactor loosens limits each quiet interval; an aggregate is
	// released when its limit exceeds its demand.
	ReleaseFactor float64 //floc:unit ratio
}

// DefaultPushbackConfig returns the parameterization used in experiments.
// floc:unit linkRateBits bits/s
func DefaultPushbackConfig(capacity int, linkRateBits float64, seed uint64) PushbackConfig {
	return PushbackConfig{
		RED:             DefaultREDConfig(capacity, seed),
		LinkRateBits:    linkRateBits,
		Interval:        1.0,
		DropRateTrigger: 0.25,
		TargetUtil:      0.98,
		AggDepth:        0,
		ReleaseFactor:   1.25,
	}
}

// aggState tracks one aggregate's measurement and limiter.
type aggState struct {
	arrivedBits units.Bits // this interval
	limited     bool
	limitBits   units.BitsPerSec
	tokens      units.Bits // limiter bucket
	lastRefill  float64    //floc:unit seconds
}

// Pushback is the ACC discipline. With AttachUpstream it also models the
// pushback protocol proper: identified aggregates' limits are mirrored to
// rate limiters installed at the routers feeding them, so the excess is
// shed upstream instead of transiting to the congested link.
type Pushback struct {
	cfg PushbackConfig
	red *RED

	intervalStart float64 //floc:unit seconds
	aggs          map[string]*aggState
	arrivals      int //floc:unit packets
	drops         int //floc:unit packets

	upstream map[string]*Limiter

	limiterDrops int
	activations  int
	met          *pushbackMetrics // nil unless SetTelemetry attached a registry
}

var _ netsim.Discipline = (*Pushback)(nil)

// NewPushback creates the discipline.
func NewPushback(cfg PushbackConfig) (*Pushback, error) {
	if cfg.LinkRateBits <= 0 {
		return nil, fmt.Errorf("defense: pushback link rate %v <= 0", cfg.LinkRateBits)
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("defense: pushback interval %v <= 0", cfg.Interval)
	}
	if cfg.DropRateTrigger <= 0 || cfg.DropRateTrigger >= 1 {
		return nil, fmt.Errorf("defense: pushback trigger %v out of (0,1)", cfg.DropRateTrigger)
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		return nil, fmt.Errorf("defense: pushback target util %v out of (0,1]", cfg.TargetUtil)
	}
	if cfg.ReleaseFactor <= 1 {
		return nil, fmt.Errorf("defense: pushback release factor %v must exceed 1", cfg.ReleaseFactor)
	}
	red, err := NewRED(cfg.RED)
	if err != nil {
		return nil, err
	}
	return &Pushback{cfg: cfg, red: red, aggs: map[string]*aggState{}, upstream: map[string]*Limiter{}}, nil
}

// AttachUpstream registers the rate limiter sitting at the upstream
// router that feeds aggregate key. When ACC limits the aggregate, the
// limit is propagated to (and released from) this limiter — the pushback
// protocol of the paper's namesake scheme.
func (p *Pushback) AttachUpstream(key string, lim *Limiter) {
	p.upstream[key] = lim
}

// UpstreamDrops totals packets shed by propagated upstream limiters.
func (p *Pushback) UpstreamDrops() int {
	total := 0
	for _, lim := range p.upstream {
		total += lim.Dropped()
	}
	return total
}

// mirrorUpstream pushes an aggregate's current limit state upstream.
func (p *Pushback) mirrorUpstream(key string, a *aggState) {
	lim, ok := p.upstream[key]
	if !ok {
		return
	}
	if a.limited {
		lim.SetRateBits(a.limitBits)
	} else {
		lim.SetRateBits(0)
	}
}

// LimiterDrops returns packets dropped by aggregate rate limiters.
func (p *Pushback) LimiterDrops() int { return p.limiterDrops }

// Activations returns how many times ACC limit computation ran.
func (p *Pushback) Activations() int { return p.activations }

// LimitedAggregates returns the number of currently limited aggregates.
func (p *Pushback) LimitedAggregates() int {
	n := 0
	for _, a := range p.aggs {
		if a.limited {
			n++
		}
	}
	return n
}

// aggKey maps a packet to its aggregate.
func (p *Pushback) aggKey(pkt *netsim.Packet) string {
	if p.cfg.AggDepth <= 0 || p.cfg.AggDepth >= pkt.Path.Len() {
		if pkt.PathKey != "" {
			return pkt.PathKey
		}
		return pkt.Path.Key()
	}
	return pkt.Path.Postfix(p.cfg.AggDepth).Key()
}

// review runs at interval boundaries: decides on activation, recomputes
// limits, releases stale limiters, and resets measurement.
// floc:unit now seconds
func (p *Pushback) review(now float64) {
	// Fold in upstream status reports: a limited aggregate's demand is
	// what was *offered* upstream, not the residue that reached us.
	upstreamShed := units.Bits(0)
	for k, lim := range p.upstream {
		offered := lim.TakeOfferedBits()
		if a, ok := p.aggs[k]; ok && offered > a.arrivedBits {
			upstreamShed += offered - a.arrivedBits
			a.arrivedBits = offered
		}
	}
	dropFrac := 0.0
	if p.arrivals > 0 {
		// Upstream-shed traffic counts as dropped demand when deciding
		// whether congestion persists.
		//floclint:allow units reference-packet conversion: 8000 bits per full-size packet
		shedPkts := float64(upstreamShed) / 8000 //floc:unit packets
		dropFrac = (float64(p.drops) + shedPkts) / (float64(p.arrivals) + shedPkts)
	}
	if dropFrac > p.cfg.DropRateTrigger {
		p.computeLimits()
	} else {
		// Quiet interval: loosen existing limits; release those whose
		// limit now exceeds the aggregate's demand.
		for k, a := range p.aggs {
			if !a.limited {
				continue
			}
			a.limitBits = a.limitBits.Scale(p.cfg.ReleaseFactor)
			if a.limitBits > a.arrivedBits.Per(units.Seconds(p.cfg.Interval)) {
				a.limited = false
			}
			p.mirrorUpstream(k, a)
		}
	}
	// Reset interval measurement; forget idle aggregates.
	for k, a := range p.aggs {
		if !a.limited && a.arrivedBits == 0 {
			delete(p.aggs, k)
			continue
		}
		a.arrivedBits = 0
	}
	p.arrivals = 0
	p.drops = 0
	p.intervalStart = now
	if telemetry.Compiled && p.met != nil {
		p.met.limitedAggs.Set(float64(p.LimitedAggregates()))
	}
}

// computeLimits water-fills: caps the largest aggregates at a common limit
// L so the admitted total meets TargetUtil * LinkRateBits.
func (p *Pushback) computeLimits() {
	p.activations++
	if telemetry.Compiled && p.met != nil {
		p.met.activations.Inc()
	}
	type entry struct {
		key  string
		rate units.BitsPerSec // over the interval
	}
	entries := make([]entry, 0, len(p.aggs))
	total := units.BitsPerSec(0)
	for k, a := range p.aggs {
		r := a.arrivedBits.Per(units.Seconds(p.cfg.Interval))
		entries = append(entries, entry{key: k, rate: r})
		total += r
	}
	target := units.BitsPerSec(p.cfg.TargetUtil * p.cfg.LinkRateBits)
	if total <= target || len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].rate > entries[j].rate {
			return true
		}
		if entries[j].rate > entries[i].rate {
			return false
		}
		return entries[i].key < entries[j].key
	})
	// Water-fill: find k and L so that k*L + sum(rates below L) = target.
	suffix := make([]units.BitsPerSec, len(entries)+1)
	for i := len(entries) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + entries[i].rate
	}
	var limit units.BitsPerSec
	k := 0
	for k = 1; k <= len(entries); k++ {
		l := (target - suffix[k]).Scale(1 / float64(k))
		if k == len(entries) || l >= entries[k].rate {
			limit = l
			break
		}
	}
	if limit <= 0 {
		limit = target.Scale(1 / float64(len(entries)))
		k = len(entries)
	}
	for i := 0; i < k && i < len(entries); i++ {
		a := p.aggs[entries[i].key]
		a.limited = true
		a.limitBits = limit
		a.tokens = limit.Times(burstWindow)
		p.mirrorUpstream(entries[i].key, a)
	}
}

// Enqueue implements netsim.Discipline.
// floc:unit now seconds
func (p *Pushback) Enqueue(pkt *netsim.Packet, now float64) bool {
	if now-p.intervalStart >= p.cfg.Interval {
		p.review(now)
	}
	key := p.aggKey(pkt)
	a := p.aggs[key]
	if a == nil {
		a = &aggState{lastRefill: now}
		p.aggs[key] = a
	}
	bits := units.FromPacket(pkt.Size)
	a.arrivedBits += bits
	p.arrivals++

	if a.limited {
		// Refill the limiter bucket.
		a.tokens += a.limitBits.Times(units.Seconds(now - a.lastRefill))
		maxTokens := a.limitBits.Times(burstWindow)
		if a.tokens > maxTokens {
			a.tokens = maxTokens
		}
		a.lastRefill = now
		if a.tokens < bits {
			p.limiterDrops++
			p.drops++
			if telemetry.Compiled && p.met != nil {
				p.met.limiterDrops.Inc()
			}
			return false
		}
		a.tokens -= bits
	}
	if !p.red.Enqueue(pkt, now) {
		p.drops++
		return false
	}
	return true
}

// Dequeue implements netsim.Discipline.
// floc:unit now seconds
func (p *Pushback) Dequeue(now float64) *netsim.Packet { return p.red.Dequeue(now) }

// Len implements netsim.Discipline.
func (p *Pushback) Len() int { return p.red.Len() }
