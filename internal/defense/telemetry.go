package defense

import "floc/internal/telemetry"

// Optional registry wiring for the baseline disciplines, so experiment
// runs expose the same observability surface regardless of which defense
// guards the link. All emission is guarded by telemetry.Compiled plus a
// nil check, mirroring the core router's seam.

type redMetrics struct {
	drops    *telemetry.Counter
	avgQueue *telemetry.Gauge
}

// SetTelemetry attaches registry counters to the RED queue (nil detaches).
func (r *RED) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		r.met = nil
		return
	}
	r.met = &redMetrics{
		drops:    reg.Counter("floc_red_drops_total", "packets dropped by RED (early + overflow)", "packets"),
		avgQueue: reg.Gauge("floc_red_avg_queue", "RED average queue estimate", "packets"),
	}
}

type pushbackMetrics struct {
	limiterDrops *telemetry.Counter
	activations  *telemetry.Counter
	limitedAggs  *telemetry.Gauge
}

// SetTelemetry attaches registry counters to the Pushback discipline and
// its inner RED queue (nil detaches).
func (p *Pushback) SetTelemetry(reg *telemetry.Registry) {
	p.red.SetTelemetry(reg)
	if reg == nil {
		p.met = nil
		return
	}
	p.met = &pushbackMetrics{
		limiterDrops: reg.Counter("floc_pushback_limiter_drops_total", "packets shed by aggregate rate limiters", "packets"),
		activations:  reg.Counter("floc_pushback_activations_total", "ACC limit-computation runs", ""),
		limitedAggs:  reg.Gauge("floc_pushback_limited_aggregates", "aggregates currently rate-limited", ""),
	}
}
