//go:build flocinvariants

package invariant

// Hot enables the per-packet hot-path assertions. It is true only in
// builds tagged "flocinvariants"; call sites guard with
// `if invariant.Hot { ... }` so untagged builds compile the checks out.
const Hot = true
