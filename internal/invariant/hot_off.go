//go:build !flocinvariants

package invariant

// Hot is false in builds without the "flocinvariants" tag: hot-path
// assertions behind `if invariant.Hot` are eliminated at compile time.
const Hot = false
