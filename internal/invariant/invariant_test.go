package invariant

import (
	"math"
	"strings"
	"testing"
)

// capture installs a recording handler for the duration of the test and
// returns the slice of violations observed.
func capture(t *testing.T) *[]string {
	t.Helper()
	var got []string
	prev := SetHandler(func(msg string) { got = append(got, msg) })
	t.Cleanup(func() { SetHandler(prev) })
	return &got
}

func TestChecksPassOnValidValues(t *testing.T) {
	got := capture(t)
	Finite("f", 1.5)
	NonNegative("n", 0)
	Positive("p", 1e-12)
	Conformance01("c", 0)
	Conformance01("c", 1)
	Conformance01("c", 0.5)
	InRange("r", 3, 3, 3)
	TokensConserved("t", 10, 7, 3)
	TokensConserved("t", 0, 0, 0)
	True("b", true)
	if len(*got) != 0 {
		t.Fatalf("unexpected violations: %v", *got)
	}
}

func TestChecksFailOnInvalidValues(t *testing.T) {
	cases := []struct {
		name string
		run  func()
		want string
	}{
		{"finite-nan", func() { Finite("x", math.NaN()) }, "non-finite"},
		{"finite-inf", func() { Finite("x", math.Inf(1)) }, "non-finite"},
		{"nonneg", func() { NonNegative("x", -0.001) }, "negative"},
		{"nonneg-nan", func() { NonNegative("x", math.NaN()) }, "negative or non-finite"},
		{"positive", func() { Positive("x", 0) }, "non-positive"},
		{"conf-low", func() { Conformance01("x", -1e-9) }, "outside [0, 1]"},
		{"conf-high", func() { Conformance01("x", 1.0000001) }, "outside [0, 1]"},
		{"conf-nan", func() { Conformance01("x", math.NaN()) }, "outside [0, 1]"},
		{"range", func() { InRange("x", 5, 0, 4) }, "outside"},
		{"tokens-ledger", func() { TokensConserved("x", 10, 5, 3) }, "ledger"},
		{"tokens-neg", func() { TokensConserved("x", 1, -1, 2) }, "negative token"},
		{"true", func() { True("x", false) }, "condition violated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := capture(t)
			tc.run()
			if len(*got) != 1 {
				t.Fatalf("want 1 violation, got %v", *got)
			}
			if !strings.Contains((*got)[0], tc.want) {
				t.Fatalf("violation %q does not mention %q", (*got)[0], tc.want)
			}
			if !strings.Contains((*got)[0], "x") {
				t.Fatalf("violation %q does not name the checked value", (*got)[0])
			}
		})
	}
}

func TestTokensConservedToleratesFloatAccumulation(t *testing.T) {
	got := capture(t)
	// Simulate many small takes accumulated in different groupings.
	requested, granted, denied := 0.0, 0.0, 0.0
	for i := 0; i < 100000; i++ {
		n := 0.1 + float64(i%7)*0.3
		requested += n
		if i%3 == 0 {
			denied += n
		} else {
			granted += n
		}
	}
	TokensConserved("acc", requested, granted, denied)
	if len(*got) != 0 {
		t.Fatalf("float accumulation tripped the ledger check: %v", *got)
	}
}

func TestDefaultHandlerPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("default handler did not panic")
		}
		if !strings.Contains(r.(string), "invariant:") {
			t.Fatalf("panic value %v lacks invariant prefix", r)
		}
	}()
	True("boom", false)
}

func TestSetHandlerRestoresDefault(t *testing.T) {
	prev := SetHandler(func(string) {})
	SetHandler(nil) // nil restores the panicking default
	defer SetHandler(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("restored default handler did not panic")
		}
	}()
	True("boom", false)
}
