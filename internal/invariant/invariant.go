// Package invariant provides the runtime assertion layer backing FLoc's
// model-bound contracts: conformance EWMAs live in [0, 1] (Eq. IV.6),
// token-bucket accounting conserves tokens (Eqs. IV.1-IV.3), drop-filter
// counters respect their saturation bounds (Section V-B), and derived
// quantities (allocations, RTTs, MTDs) stay finite and non-negative.
//
// Checks come in two tiers:
//
//   - Always-on checks — a handful of float comparisons at state-transition
//     points (control ticks, plan changes, parameter recomputation). They
//     are cheap relative to the work they guard and run in every build.
//   - Hot-path checks — per-packet or per-slot assertions, gated behind the
//     Hot constant so that builds without the "flocinvariants" tag compile
//     them out entirely (the `if invariant.Hot { ... }` pattern is
//     dead-code-eliminated).
//
// A violation indicates the implementation drifted out of the paper's
// modeled state space; by default it panics so simulations fail loudly and
// deterministically at the first bad transition rather than producing
// silently wrong figures. Tests substitute a recording handler via
// SetHandler.
package invariant

import (
	"fmt"
	"math"
)

// handler receives a formatted description of each violation. The default
// panics; see SetHandler.
var handler = func(msg string) { panic("invariant: " + msg) }

// SetHandler replaces the violation handler and returns the previous one.
// Passing nil restores the default panicking handler. It is intended for
// tests that assert on (or tolerate) specific violations; simulations
// should leave the default in place.
func SetHandler(h func(violation string)) (prev func(string)) {
	prev = handler
	if h == nil {
		handler = func(msg string) { panic("invariant: " + msg) }
	} else {
		handler = h
	}
	return prev
}

// fail reports one violation through the current handler.
//
// floc:coldpath violation reporting formats once and then panics
func fail(format string, args ...any) {
	handler(fmt.Sprintf(format, args...))
}

// Finite checks that v is neither NaN nor infinite.
//
// floc:hotpath
func Finite(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		fail("%s: non-finite value %v", name, v)
	}
}

// NonNegative checks that v is a finite value >= 0. Negative MTDs,
// allocations, rates, or queue depths have no meaning in the model.
//
// floc:hotpath
func NonNegative(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		fail("%s: negative or non-finite value %v", name, v)
	}
}

// Positive checks that v is a finite value > 0.
//
// floc:hotpath
func Positive(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		fail("%s: non-positive or non-finite value %v", name, v)
	}
}

// Conformance01 checks that a conformance measure (Eq. IV.6) or any other
// probability-like quantity lies in [0, 1].
//
// floc:hotpath
func Conformance01(name string, v float64) {
	if math.IsNaN(v) || v < 0 || v > 1 {
		fail("%s: value %v outside [0, 1]", name, v)
	}
}

// InRange checks lo <= v <= hi.
//
// floc:hotpath
func InRange(name string, v, lo, hi float64) {
	if math.IsNaN(v) || v < lo || v > hi {
		fail("%s: value %v outside [%v, %v]", name, v, lo, hi)
	}
}

// TokensConserved checks the per-period token ledger of a bucket:
// every requested token is either granted or denied (requested ==
// granted + denied up to float accumulation error), and no component is
// negative. A drift here means admitted bandwidth no longer matches the
// computed allocation (Eqs. IV.1-IV.3).
//
// floc:hotpath
func TokensConserved(name string, requested, granted, denied float64) {
	if requested < 0 || granted < 0 || denied < 0 {
		fail("%s: negative token count (requested=%v granted=%v denied=%v)",
			name, requested, granted, denied)
		return
	}
	// The three sums accumulate the same Take amounts in different
	// groupings, so they can differ by float rounding only.
	tol := 1e-6 * math.Max(1, requested)
	if diff := math.Abs(requested - (granted + denied)); diff > tol {
		fail("%s: token ledger off by %v (requested=%v granted=%v denied=%v)",
			name, diff, requested, granted, denied)
	}
}

// True checks an arbitrary condition, for invariants that are not simple
// numeric ranges (e.g. saturating-counter bounds on integer fields).
//
// floc:hotpath
func True(name string, cond bool) {
	if !cond {
		fail("%s: condition violated", name)
	}
}
