package topology

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/tcp"
)

func smallTreeCfg() TreeConfig {
	cfg := DefaultTreeConfig()
	cfg.TargetRateBits = 10e6
	cfg.InnerRateBits = 100e6
	cfg.BufferPackets = 200
	cfg.NumServers = 3
	return cfg
}

func TestNewTreeValidation(t *testing.T) {
	net := netsim.New(1)
	if _, err := NewTree(net, TreeConfig{Height: 0, Degree: 3, TargetRateBits: 1e6}, netsim.NewFIFO(10)); err == nil {
		t.Fatal("height 0 accepted")
	}
	cfg := smallTreeCfg()
	cfg.TargetRateBits = 0
	if _, err := NewTree(net, cfg, netsim.NewFIFO(10)); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTree(net, smallTreeCfg(), nil); err == nil {
		t.Fatal("nil discipline accepted")
	}
}

func TestTreeShape(t *testing.T) {
	net := netsim.New(1)
	tr, err := NewTree(net, smallTreeCfg(), netsim.NewFIFO(100))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 27 {
		t.Fatalf("leaves = %d, want 27", tr.NumLeaves())
	}
	if len(tr.LeafPaths) != 27 {
		t.Fatalf("paths = %d", len(tr.LeafPaths))
	}
	seen := map[string]bool{}
	for _, p := range tr.LeafPaths {
		if p.Len() != 3 {
			t.Fatalf("path %v has length %d, want 3", p, p.Len())
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.Key()] = true
	}
	if len(tr.Servers) != 3 {
		t.Fatalf("servers = %d", len(tr.Servers))
	}
}

func TestTreePathsShareInfrastructure(t *testing.T) {
	net := netsim.New(1)
	tr, err := NewTree(net, smallTreeCfg(), netsim.NewFIFO(100))
	if err != nil {
		t.Fatal(err)
	}
	// Sibling leaves (0, 1, 2) share their two upper ASes.
	if tr.Path(0).SharedPostfix(tr.Path(1)) != 2 {
		t.Fatalf("siblings share %d hops: %v vs %v",
			tr.Path(0).SharedPostfix(tr.Path(1)), tr.Path(0), tr.Path(1))
	}
	// Leaves in different top-level subtrees share nothing.
	if tr.Path(0).SharedPostfix(tr.Path(26)) != 0 {
		t.Fatalf("distant leaves share hops: %v vs %v", tr.Path(0), tr.Path(26))
	}
}

func TestTreeEndToEndTCPTransfer(t *testing.T) {
	// A TCP flow from a leaf host to a server across the target link must
	// complete, proving forward and reverse routing work.
	net := netsim.New(3)
	tr, err := NewTree(net, smallTreeCfg(), netsim.NewFIFO(500))
	if err != nil {
		t.Fatal(err)
	}
	host, err := tr.AddHost(5)
	if err != nil {
		t.Fatal(err)
	}
	server := tr.Servers[0]
	src := tcp.NewSource(host, tcp.SourceConfig{
		Src: host.Addr, Dst: server.Addr, Path: tr.Path(5), TotalPackets: 200,
	})
	if err := host.Attach(server.Addr, src); err != nil {
		t.Fatal(err)
	}
	sink := tcp.NewSink(server, host.Addr, nil)
	if err := server.Attach(host.Addr, sink); err != nil {
		t.Fatal(err)
	}
	src.Start(net, 0)
	net.Run(60)
	if !src.Done() {
		t.Fatalf("transfer incomplete: sink got %d/200", sink.Expected())
	}
	// RTT sanity: ~5 forward hops and ~5 reverse hops of ~10 ms.
	if rtt := src.SRTT(); rtt < 0.03 || rtt > 0.4 {
		t.Fatalf("SRTT = %v, implausible for the tree", rtt)
	}
	if tr.Target.Stats().Delivered == 0 {
		t.Fatal("no packets crossed the target link")
	}
}

func TestTreeManyHostsDistinctAddrs(t *testing.T) {
	net := netsim.New(1)
	tr, err := NewTree(net, smallTreeCfg(), netsim.NewFIFO(100))
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[uint32]bool{}
	for leaf := 0; leaf < tr.NumLeaves(); leaf++ {
		for i := 0; i < 3; i++ {
			h, err := tr.AddHost(leaf)
			if err != nil {
				t.Fatal(err)
			}
			if addrs[h.Addr] {
				t.Fatalf("duplicate address %d", h.Addr)
			}
			addrs[h.Addr] = true
		}
	}
	if _, err := tr.AddHost(99); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestGenerateInetValidation(t *testing.T) {
	bad := []func(*InetConfig){
		func(c *InetConfig) { c.TotalASes = 10 },
		func(c *InetConfig) { c.LegitASes = 0 },
		func(c *InetConfig) { c.AttackASes = 0 },
		func(c *InetConfig) { c.LegitSources = 0 },
		func(c *InetConfig) { c.OverlapFrac = 1.5 },
	}
	for i, mut := range bad {
		cfg := DefaultInetConfig(FRoot)
		mut(&cfg)
		if _, err := GenerateInet(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func smallInetCfg(p Profile) InetConfig {
	cfg := DefaultInetConfig(p)
	cfg.TotalASes = 300
	cfg.LegitASes = 50
	cfg.AttackASes = 25
	cfg.LegitSources = 1000
	cfg.AttackSources = 5000
	return cfg
}

func TestGenerateInetStructure(t *testing.T) {
	in, err := GenerateInet(smallInetCfg(FRoot))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.ASes) != 300 {
		t.Fatalf("ASes = %d", len(in.ASes))
	}
	if len(in.Sources) != 6000 {
		t.Fatalf("sources = %d", len(in.Sources))
	}
	// Every AS path must walk parent links to the root.
	for i := range in.ASes {
		a := &in.ASes[i]
		if a.Path.Len() != a.Depth {
			t.Fatalf("AS %d: path length %d != depth %d", a.Num, a.Path.Len(), a.Depth)
		}
		if a.Path.Origin() != a.Num {
			t.Fatalf("AS %d: path origin %d", a.Num, a.Path.Origin())
		}
		last := a.Path[a.Path.Len()-1]
		if in.ASes[last-1].Parent != 0 {
			t.Fatalf("AS %d: path does not end at a root-adjacent AS", a.Num)
		}
	}
	st := in.Summarize()
	if st.AttackASes != 25 || st.LegitASes != 50 {
		t.Fatalf("stats = %+v", st)
	}
	// Source conservation.
	bots, legit := 0, 0
	for i := range in.ASes {
		bots += in.ASes[i].Bots
		legit += in.ASes[i].LegitHosts
	}
	if bots != 5000 || legit != 1000 {
		t.Fatalf("bots=%d legit=%d", bots, legit)
	}
}

func TestGenerateInetBotConcentration(t *testing.T) {
	in, err := GenerateInet(smallInetCfg(FRoot))
	if err != nil {
		t.Fatal(err)
	}
	st := in.Summarize()
	// CBL-like skew: the top 5% of attack ASes should hold a
	// disproportionate share of bots (far above the uniform 5%).
	if st.BotsInTop5PercentASesFrac < 0.2 {
		t.Fatalf("bot concentration %v too uniform", st.BotsInTop5PercentASesFrac)
	}
}

func TestGenerateInetOverlap(t *testing.T) {
	in, err := GenerateInet(smallInetCfg(FRoot))
	if err != nil {
		t.Fatal(err)
	}
	if in.Summarize().OverlapASes == 0 {
		t.Fatal("no overlap ASes despite OverlapFrac=0.3")
	}
	// Separated mode: no legit sources in attack ASes.
	cfg := smallInetCfg(FRoot)
	cfg.OverlapFrac = 0
	sep, err := GenerateInet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sep.Summarize().OverlapASes != 0 {
		t.Fatal("separated topology has overlap")
	}
}

func TestJPNAttackersFarther(t *testing.T) {
	fr, err := GenerateInet(smallInetCfg(FRoot))
	if err != nil {
		t.Fatal(err)
	}
	jp, err := GenerateInet(smallInetCfg(JPN))
	if err != nil {
		t.Fatal(err)
	}
	if jp.Summarize().MeanAttackDepth <= fr.Summarize().MeanAttackDepth {
		t.Fatalf("JPN attackers not farther: %v vs %v",
			jp.Summarize().MeanAttackDepth, fr.Summarize().MeanAttackDepth)
	}
}

func TestGenerateInetDeterministic(t *testing.T) {
	a, err := GenerateInet(smallInetCfg(HRoot))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateInet(smallInetCfg(HRoot))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != len(b.Sources) {
		t.Fatal("source counts differ")
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatalf("source %d differs", i)
		}
	}
}

func TestProfileString(t *testing.T) {
	if FRoot.String() != "f-root" || HRoot.String() != "h-root" || JPN.String() != "jpn" {
		t.Fatal("profile names wrong")
	}
	if Profile(9).String() != "Profile(9)" {
		t.Fatal("unknown profile name wrong")
	}
}

var _ = pathid.New // keep import if unused in some builds

func TestUplinkDiscHook(t *testing.T) {
	net := netsim.New(1)
	cfg := smallTreeCfg()
	var calls []int
	cfg.UplinkDisc = func(depth int, path pathid.PathID) netsim.Discipline {
		calls = append(calls, depth)
		if path.Len() != depth {
			t.Fatalf("path %v at depth %d", path, depth)
		}
		if depth == cfg.Height {
			return netsim.NewFIFO(7)
		}
		return nil // fall back to default
	}
	if _, err := NewTree(net, cfg, netsim.NewFIFO(10)); err != nil {
		t.Fatal(err)
	}
	// 3 + 9 + 27 uplinks.
	if len(calls) != 39 {
		t.Fatalf("hook called %d times, want 39", len(calls))
	}
}
