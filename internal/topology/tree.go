// Package topology builds the evaluation topologies of the paper: the
// height-3/degree-3 tree of the functional evaluation (Fig. 5), and the
// synthetic Internet-scale AS topologies of Section VII (Figs. 11-12),
// which stand in for the proprietary CAIDA Skitter / CBL / GeoLite
// datasets.
package topology

import (
	"fmt"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// TreeConfig describes the functional-evaluation tree (paper Fig. 5).
type TreeConfig struct {
	// Height and Degree shape the domain tree; the paper uses 3 and 3,
	// giving 27 leaf domains (paths).
	Height, Degree int
	// TargetRateBits is the flooded link's capacity (paper: 500 Mb/s).
	TargetRateBits float64 //floc:unit bits/s
	// InnerRateBits is the capacity of interior tree links; they must not
	// be the bottleneck (default: 4x the target link).
	InnerRateBits float64 //floc:unit bits/s
	// HopDelay is the per-link propagation delay in seconds.
	HopDelay float64 //floc:unit seconds
	// DelayJitterFrac perturbs each interior link's delay by up to this
	// fraction so paths have distinct RTTs.
	DelayJitterFrac float64 //floc:unit ratio
	// BufferPackets is the queue capacity of interior and reverse links.
	BufferPackets int
	// NumServers is how many destination hosts sit behind the target link
	// (covert-attack experiments connect to many destinations).
	NumServers int
	// UplinkDisc, when set, supplies the queue discipline for a domain
	// node's uplink (depth 1..Height, path = the node's identifier); nil
	// or a nil return falls back to a plain FIFO. Pushback-style
	// defenses use it to place rate limiters at upstream routers.
	UplinkDisc func(depth int, path pathid.PathID) netsim.Discipline
}

// DefaultTreeConfig returns the paper's Fig. 5 parameters.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{
		Height:          3,
		Degree:          3,
		TargetRateBits:  500e6,
		InnerRateBits:   2000e6,
		HopDelay:        0.01,
		DelayJitterFrac: 0.3,
		BufferPackets:   4000,
		NumServers:      25,
	}
}

// revHop is one step of a leaf's reverse (server-to-host) routing chain.
type revHop struct {
	router *netsim.Router
	link   *netsim.Link
}

// leafSite is the per-leaf-domain attachment state.
type leafSite struct {
	fwd      *netsim.Router
	rev      *netsim.Router
	revChain []revHop
	path     pathid.PathID
	hosts    int
}

// Tree is a built functional-evaluation topology.
type Tree struct {
	Net *netsim.Network
	// Target is the flooded link (its discipline is the defense under
	// test; measure deliveries with Target.DeliverHook).
	Target *netsim.Link
	// Servers are the destination hosts behind the target link.
	Servers []*netsim.Host
	// LeafPaths[i] is the path identifier of leaf domain i.
	LeafPaths []pathid.PathID

	cfg        TreeConfig
	root       *netsim.Router
	serverRtr  *netsim.Router
	reverseTop *netsim.Router
	sites      []*leafSite
	nextAddr   uint32
}

// NumLeaves returns the number of leaf domains.
func (t *Tree) NumLeaves() int { return len(t.sites) }

// NewTree builds the topology. disc becomes the target link's queue
// discipline (the defense under test).
func NewTree(net *netsim.Network, cfg TreeConfig, disc netsim.Discipline) (*Tree, error) {
	if cfg.Height < 1 || cfg.Degree < 1 {
		return nil, fmt.Errorf("topology: height/degree must be >= 1")
	}
	if cfg.TargetRateBits <= 0 {
		return nil, fmt.Errorf("topology: target rate %v <= 0", cfg.TargetRateBits)
	}
	if disc == nil {
		return nil, fmt.Errorf("topology: nil target discipline")
	}
	if cfg.InnerRateBits <= 0 {
		cfg.InnerRateBits = 4 * cfg.TargetRateBits
	}
	if cfg.BufferPackets < 10 {
		cfg.BufferPackets = 10
	}
	if cfg.NumServers < 1 {
		cfg.NumServers = 1
	}
	t := &Tree{Net: net, cfg: cfg, nextAddr: 1 << 20}

	// Server side: target link -> server router -> server hosts, with a
	// shared reverse link from the servers back into the domain tree.
	t.serverRtr = netsim.NewRouter("server-rtr")
	target, err := netsim.NewLink("target", cfg.TargetRateBits, cfg.HopDelay, disc, t.serverRtr)
	if err != nil {
		return nil, err
	}
	t.Target = target

	t.reverseTop = netsim.NewRouter("reverse-top")
	revLink, err := netsim.NewLink("reverse-top-link", cfg.InnerRateBits, cfg.HopDelay,
		netsim.NewFIFO(cfg.BufferPackets), t.reverseTop)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumServers; i++ {
		addr := uint32(1<<24) + uint32(i)
		h := netsim.NewHost(fmt.Sprintf("server-%d", i), addr)
		h.SetAccess(revLink)
		access, err := netsim.NewLink(fmt.Sprintf("server-access-%d", i),
			cfg.InnerRateBits, 0.0005, netsim.NewFIFO(cfg.BufferPackets), h)
		if err != nil {
			return nil, err
		}
		t.serverRtr.AddRoute(addr, access)
		t.Servers = append(t.Servers, h)
	}

	// Domain tree. Forward routers route up toward the target; reverse
	// routers route down toward hosts.
	t.root = netsim.NewRouter("R0")
	t.root.SetDefault(target)

	jitter := func() float64 {
		if cfg.DelayJitterFrac <= 0 {
			return 1
		}
		return 1 + cfg.DelayJitterFrac*(2*net.Rand().Float64()-1)
	}

	type nodeCtx struct {
		fwd      *netsim.Router
		rev      *netsim.Router
		revChain []revHop
		path     pathid.PathID
	}
	level := []nodeCtx{{fwd: t.root, rev: t.reverseTop}}
	asCounter := pathid.ASN(1)
	for depth := 1; depth <= cfg.Height; depth++ {
		var next []nodeCtx
		for _, parent := range level {
			for c := 0; c < cfg.Degree; c++ {
				as := asCounter
				asCounter++
				fwd := netsim.NewRouter(fmt.Sprintf("f%d", as))
				rev := netsim.NewRouter(fmt.Sprintf("r%d", as))
				d := cfg.HopDelay * jitter() //floc:unit seconds
				path := append(pathid.PathID{as}, parent.path...)
				var upDisc netsim.Discipline
				if cfg.UplinkDisc != nil {
					upDisc = cfg.UplinkDisc(depth, path)
				}
				if upDisc == nil {
					upDisc = netsim.NewFIFO(cfg.BufferPackets)
				}
				up, err := netsim.NewLink(fmt.Sprintf("up-%d", as), cfg.InnerRateBits,
					d, upDisc, parent.fwd)
				if err != nil {
					return nil, err
				}
				fwd.SetDefault(up)
				down, err := netsim.NewLink(fmt.Sprintf("down-%d", as), cfg.InnerRateBits,
					d, netsim.NewFIFO(cfg.BufferPackets), rev)
				if err != nil {
					return nil, err
				}
				chain := make([]revHop, len(parent.revChain), len(parent.revChain)+1)
				copy(chain, parent.revChain)
				chain = append(chain, revHop{router: parent.rev, link: down})
				next = append(next, nodeCtx{fwd: fwd, rev: rev, revChain: chain, path: path})
			}
		}
		level = next
	}
	for _, nc := range level {
		t.sites = append(t.sites, &leafSite{
			fwd: nc.fwd, rev: nc.rev, revChain: nc.revChain, path: nc.path,
		})
		t.LeafPaths = append(t.LeafPaths, nc.path)
	}
	return t, nil
}

// AddHost attaches a new host to leaf domain leafIdx and returns it. The
// host can reach every server, and reverse routing from the servers back
// to the host is installed along the tree.
func (t *Tree) AddHost(leafIdx int) (*netsim.Host, error) {
	if leafIdx < 0 || leafIdx >= len(t.sites) {
		return nil, fmt.Errorf("topology: leaf %d out of range [0,%d)", leafIdx, len(t.sites))
	}
	site := t.sites[leafIdx]
	addr := t.nextAddr
	t.nextAddr++
	site.hosts++
	h := netsim.NewHost(fmt.Sprintf("h%d-%d", leafIdx, site.hosts), addr)
	access, err := netsim.NewLink(fmt.Sprintf("acc-%d-%d", leafIdx, site.hosts),
		t.cfg.InnerRateBits, 0.001, netsim.NewFIFO(t.cfg.BufferPackets), site.fwd)
	if err != nil {
		return nil, err
	}
	h.SetAccess(access)
	back, err := netsim.NewLink(fmt.Sprintf("back-%d-%d", leafIdx, site.hosts),
		t.cfg.InnerRateBits, 0.001, netsim.NewFIFO(t.cfg.BufferPackets), h)
	if err != nil {
		return nil, err
	}
	for _, hop := range site.revChain {
		hop.router.AddRoute(addr, hop.link)
	}
	site.rev.AddRoute(addr, back)
	return h, nil
}

// Path returns leaf domain leafIdx's path identifier.
func (t *Tree) Path(leafIdx int) pathid.PathID { return t.sites[leafIdx].path }
