package topology

import (
	"fmt"

	"floc/internal/pathid"
	"floc/internal/rng"
)

// Profile selects an Internet-scale topology flavor. The three profiles
// stand in for the paper's three Skitter maps: they differ in route
// depth, branching, and how far from the target the attack domains sit
// (the paper observes that in the JPN map "most attack ASs are located
// farther from the destination and their paths are better separated").
type Profile int

// Topology profiles.
const (
	// FRoot mimics the f-root Skitter map: moderate depth, attackers
	// mixed through the core.
	FRoot Profile = iota + 1
	// HRoot mimics the h-root map: similar to f-root with deeper routes.
	HRoot
	// JPN mimics the JPN map: attack domains farther from the target and
	// better separated from legitimate ones.
	JPN
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case FRoot:
		return "f-root"
	case HRoot:
		return "h-root"
	case JPN:
		return "jpn"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// InetConfig parameterizes the Internet-scale topology generator
// (Section VII-A).
type InetConfig struct {
	Profile Profile
	// TotalASes is the number of ASes in the route tree (Skitter maps
	// hold hundreds of thousands of routes; the AS-level tree is much
	// smaller).
	TotalASes int
	// LegitASes and AttackASes are how many ASes host legitimate sources
	// (paper: 200) and attack sources (paper: 100 or 300).
	LegitASes, AttackASes int
	// LegitSources and AttackSources are the host counts (paper: 10,000
	// and 100,000).
	LegitSources, AttackSources int
	// OverlapFrac places this fraction of legitimate sources inside
	// attack ASes to observe differential guarantees (paper: 0.3).
	// Separated mode (Fig. 15) sets it to 0.
	OverlapFrac float64
	// BotSkew is the Zipf exponent of the bot distribution across attack
	// ASes, reproducing CBL's extreme non-uniformity ("95% of bot IPs in
	// 1.7% of ASes").
	BotSkew float64
	// PopSkew is the Zipf exponent of AS populations (GeoLite role):
	// legitimate sources are placed proportionally to AS population.
	PopSkew float64
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultInetConfig returns the paper's Section VII setup for a profile.
func DefaultInetConfig(p Profile) InetConfig {
	return InetConfig{
		Profile:       p,
		TotalASes:     1200,
		LegitASes:     200,
		AttackASes:    100,
		LegitSources:  10000,
		AttackSources: 100000,
		OverlapFrac:   0.3,
		BotSkew:       1.2,
		PopSkew:       1.0,
		Seed:          42,
	}
}

// AS is one autonomous system in the generated route tree.
type AS struct {
	// Num is the AS number (index + 1; the target is AS 0, the root).
	Num pathid.ASN
	// Parent is the next AS toward the target (0 for ASes adjacent to
	// the target's domain).
	Parent pathid.ASN
	// Depth is the AS-hop distance to the target.
	Depth int
	// Path is the domain path identifier of sources homed in this AS.
	Path pathid.PathID
	// Legit and Attack report whether the AS hosts legitimate or attack
	// sources (both possible: an "attack AS" with legitimate residents).
	Legit, Attack bool
	// LegitHosts and Bots count the sources homed here.
	LegitHosts, Bots int
}

// Source is one traffic source in the Internet-scale simulation.
type Source struct {
	// ASIdx indexes Inet.ASes.
	ASIdx int
	// Attack marks bots.
	Attack bool
}

// Inet is a generated Internet-scale topology.
type Inet struct {
	Cfg InetConfig
	// ASes[0] is the AS adjacent to the target... index i holds AS i+1.
	ASes []AS
	// Sources lists every traffic source.
	Sources []Source
	// MaxDepth is the deepest route.
	MaxDepth int
}

// profileShape returns (meanDepth, maxDepth, attackMinDepthFrac,
// rootBreadth) per profile. attackMinDepthFrac biases attack ASes to at
// least that fraction of max depth from the target; rootBreadth is the
// number of ASes adjacent to the target's domain (the routes of a
// Skitter map fan into the root server's domain through many peers).
func profileShape(p Profile) (meanDepth, maxDepth int, attackMinDepthFrac float64, rootBreadth int) {
	switch p {
	case HRoot:
		return 7, 14, 0.2, 6
	case JPN:
		return 6, 12, 0.55, 8
	default: // FRoot
		return 6, 12, 0.2, 8
	}
}

// GenerateInet builds a synthetic Internet-scale topology.
func GenerateInet(cfg InetConfig) (*Inet, error) {
	if cfg.TotalASes < cfg.LegitASes+1 || cfg.TotalASes < cfg.AttackASes+1 {
		return nil, fmt.Errorf("topology: TotalASes %d too small", cfg.TotalASes)
	}
	if cfg.LegitASes < 1 || cfg.AttackASes < 1 {
		return nil, fmt.Errorf("topology: need at least one legit and one attack AS")
	}
	if cfg.LegitSources < 1 || cfg.AttackSources < 1 {
		return nil, fmt.Errorf("topology: need sources")
	}
	if cfg.OverlapFrac < 0 || cfg.OverlapFrac > 1 {
		return nil, fmt.Errorf("topology: OverlapFrac %v out of [0,1]", cfg.OverlapFrac)
	}
	src := rng.New(cfg.Seed)
	meanDepth, maxDepth, attackMinFrac, rootBreadth := profileShape(cfg.Profile)

	inet := &Inet{Cfg: cfg, ASes: make([]AS, cfg.TotalASes)}

	// Grow a route tree by preferential attachment biased toward the
	// configured mean depth: each new AS attaches to a random existing AS
	// whose depth is below maxDepth-1, preferring depths near meanDepth.
	for i := range inet.ASes {
		as := &inet.ASes[i]
		as.Num = pathid.ASN(i + 1)
		if i < rootBreadth {
			as.Parent = 0
			as.Depth = 1
		} else {
			// Sample attachment points until one fits the depth budget.
			for tries := 0; ; tries++ {
				j := src.Intn(i)
				d := inet.ASes[j].Depth
				if d >= maxDepth {
					continue
				}
				// Acceptance probability shaped to hit meanDepth.
				accept := 1.0
				if d >= meanDepth {
					accept = 0.35
				}
				if tries > 32 || src.Float64() < accept {
					as.Parent = inet.ASes[j].Num
					as.Depth = d + 1
					break
				}
			}
		}
		if as.Depth > inet.MaxDepth {
			inet.MaxDepth = as.Depth
		}
	}
	// Build path identifiers (origin AS first, ending at the AS adjacent
	// to the target domain).
	for i := range inet.ASes {
		var path pathid.PathID
		cur := &inet.ASes[i]
		for {
			path = append(path, cur.Num)
			if cur.Parent == 0 {
				break
			}
			cur = &inet.ASes[cur.Parent-1]
		}
		inet.ASes[i].Path = path
	}

	// Attack AS selection: prefer ASes at depth >= attackMinFrac*max.
	minAttackDepth := int(attackMinFrac * float64(inet.MaxDepth))
	attackIdx := pickASes(src, inet, cfg.AttackASes, func(a *AS) bool {
		return a.Depth >= minAttackDepth
	})
	for _, i := range attackIdx {
		inet.ASes[i].Attack = true
	}

	// Legitimate AS selection: uniform over the tree; in Separated mode
	// (OverlapFrac == 0) exclude attack ASes.
	legitIdx := pickASes(src, inet, cfg.LegitASes, func(a *AS) bool {
		return cfg.OverlapFrac > 0 || !a.Attack
	})
	for _, i := range legitIdx {
		inet.ASes[i].Legit = true
	}

	// Bots: Zipf across attack ASes (CBL-like concentration).
	botZipf := rng.NewZipf(src, len(attackIdx), cfg.BotSkew)
	for b := 0; b < cfg.AttackSources; b++ {
		i := attackIdx[botZipf.Next()]
		inet.ASes[i].Bots++
		inet.Sources = append(inet.Sources, Source{ASIdx: i, Attack: true})
	}

	// Legitimate sources: a fraction into attack ASes (overlap), the rest
	// Zipf across legit ASes by population.
	popZipf := rng.NewZipf(src, len(legitIdx), cfg.PopSkew)
	overlap := int(cfg.OverlapFrac * float64(cfg.LegitSources))
	for h := 0; h < cfg.LegitSources; h++ {
		var i int
		if h < overlap {
			i = attackIdx[src.Intn(len(attackIdx))]
		} else {
			i = legitIdx[popZipf.Next()]
		}
		inet.ASes[i].LegitHosts++
		inet.Sources = append(inet.Sources, Source{ASIdx: i, Attack: false})
	}
	return inet, nil
}

// pickASes selects n distinct AS indices satisfying ok, falling back to
// unrestricted selection if the predicate leaves too few.
func pickASes(src *rng.Source, inet *Inet, n int, ok func(*AS) bool) []int {
	var eligible []int
	for i := range inet.ASes {
		if ok(&inet.ASes[i]) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) < n {
		eligible = eligible[:0]
		for i := range inet.ASes {
			eligible = append(eligible, i)
		}
	}
	src.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	return eligible[:n]
}

// Stats summarizes a generated topology for the Fig. 11/12 renderings.
type Stats struct {
	ASes, MaxDepth            int
	AttackASes, LegitASes     int
	OverlapASes               int // ASes hosting both bots and legit users
	MeanAttackDepth           float64
	MeanLegitDepth            float64
	BotsInTop5PercentASesFrac float64
}

// Summarize computes topology statistics.
func (in *Inet) Summarize() Stats {
	var s Stats
	s.ASes = len(in.ASes)
	s.MaxDepth = in.MaxDepth
	var attackDepthSum, legitDepthSum float64
	var botCounts []int
	totalBots := 0
	for i := range in.ASes {
		a := &in.ASes[i]
		if a.Attack {
			s.AttackASes++
			attackDepthSum += float64(a.Depth)
			botCounts = append(botCounts, a.Bots)
			totalBots += a.Bots
		}
		if a.Legit {
			s.LegitASes++
			legitDepthSum += float64(a.Depth)
		}
		if a.Bots > 0 && a.LegitHosts > 0 {
			s.OverlapASes++
		}
	}
	if s.AttackASes > 0 {
		s.MeanAttackDepth = attackDepthSum / float64(s.AttackASes)
	}
	if s.LegitASes > 0 {
		s.MeanLegitDepth = legitDepthSum / float64(s.LegitASes)
	}
	// Concentration: fraction of bots in the 5% most-infested attack ASes.
	if totalBots > 0 && len(botCounts) > 0 {
		sortDesc(botCounts)
		top := len(botCounts) / 20
		if top < 1 {
			top = 1
		}
		sum := 0
		for _, c := range botCounts[:top] {
			sum += c
		}
		s.BotsInTop5PercentASesFrac = float64(sum) / float64(totalBots)
	}
	return s
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
