package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Fatal("zero Running not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if math.Abs(r.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v", r.Sum())
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		sum := 0.0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
			r.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return r.N() == 0
		}
		mean := sum / float64(len(xs))
		return math.Abs(r.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.2)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should initialize: %v", e.Value())
	}
	e.Add(0)
	if math.Abs(e.Value()-8) > 1e-12 {
		t.Fatalf("EWMA after (10, 0) = %v, want 8", e.Value())
	}
	e.Set(3)
	if e.Value() != 3 {
		t.Fatal("Set did not take")
	}
}

func TestEWMAPanicsOnBadBeta(t *testing.T) {
	for _, beta := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", beta)
				}
			}()
			NewEWMA(beta)
		}()
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %v", e.Value())
	}
}

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.9, 90}, {1, 100},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFAtIsMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var c CDF
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
			c.Add(x)
		}
		if len(xs) < 2 {
			return true
		}
		probe := append([]float64(nil), xs...)
		sort.Float64s(probe)
		prev := -1.0
		for _, x := range probe {
			v := c.At(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.At(1) != 0 || c.Mean() != 0 || c.Points(5) != nil {
		t.Fatal("empty CDF should return zeros/nil")
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 1; i <= 10; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[4].X != 10 || pts[4].Y != 1 {
		t.Fatalf("last point %v, want (10, 1)", pts[4])
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(1.0)
	ts.Add(0.5, 10)
	ts.Add(0.9, 5)
	ts.Add(2.1, 7)
	bins := ts.Bins()
	if len(bins) != 3 {
		t.Fatalf("len(bins) = %d, want 3", len(bins))
	}
	if bins[0] != 15 || bins[1] != 0 || bins[2] != 7 {
		t.Fatalf("bins = %v", bins)
	}
	if ts.Total() != 22 {
		t.Fatalf("Total = %v", ts.Total())
	}
	if got := ts.RangeTotal(0, 1); got != 15 {
		t.Fatalf("RangeTotal(0,1) = %v", got)
	}
	if got := ts.RangeTotal(1, 3); got != 7 {
		t.Fatalf("RangeTotal(1,3) = %v", got)
	}
	if got := ts.RangeTotal(5, 2); got != 0 {
		t.Fatalf("inverted range = %v, want 0", got)
	}
	if got := ts.RangeTotal(0, 100); got != 22 {
		t.Fatalf("over-long range = %v, want 22", got)
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(0.5)
	ts.Add(-3, 2)
	if ts.Bins()[0] != 2 {
		t.Fatalf("negative time not clamped to bin 0: %v", ts.Bins())
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(2.0)
	ts.Add(1, 10)
	rate := ts.Rate()
	if rate[0] != 5 {
		t.Fatalf("Rate = %v, want [5]", rate)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5)  // clamps to bin 0
	h.Add(100) // clamps to last bin
	counts := h.Counts()
	if counts[0] != 2 || counts[9] != 2 {
		t.Fatalf("clamping failed: %v", counts)
	}
	if h.N() != 12 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestFormatRow(t *testing.T) {
	got := FormatRow("label", 1, 2.5)
	want := "label\t1.0000\t2.5000"
	if got != want {
		t.Fatalf("FormatRow = %q, want %q", got, want)
	}
}

func TestRunningStd(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(3)
	// Sample variance of {1,3} is 2; std = sqrt(2).
	if math.Abs(r.Std()-math.Sqrt2) > 1e-12 {
		t.Fatalf("Std = %v", r.Std())
	}
}

func TestCDFNAndMean(t *testing.T) {
	var c CDF
	c.Add(2)
	c.Add(4)
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Mean() != 3 {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if c.Quantile(2) != 4 { // q >= 1 clamps to max
		t.Fatalf("Quantile(2) = %v", c.Quantile(2))
	}
	if c.Quantile(-1) != 2 { // q <= 0 clamps to min
		t.Fatalf("Quantile(-1) = %v", c.Quantile(-1))
	}
}

func TestTimeSeriesBinWidthAndPanics(t *testing.T) {
	ts := NewTimeSeries(0.5)
	if ts.BinWidth() != 0.5 {
		t.Fatalf("BinWidth = %v", ts.BinWidth())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeSeries(0) did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(1, 1, 10) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid histogram accepted")
				}
			}()
			f()
		}()
	}
}
