// Package stats provides the measurement utilities shared by the simulators
// and the experiment harness: running moments, EWMAs, empirical CDFs,
// fixed-bin time series, and rate meters.
//
// All types are plain values with useful zero states where possible, and
// none of them allocate on the hot path once constructed.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates count, mean and variance of a stream of samples using
// Welford's online algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 if no samples were added.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample, or 0 if no samples were added.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 if no samples were added.
func (r *Running) Max() float64 { return r.max }

// Sum returns n*mean, the total of all samples.
func (r *Running) Sum() float64 { return float64(r.n) * r.mean }

// EWMA is an exponentially weighted moving average with smoothing factor
// beta: v' = beta*x + (1-beta)*v. The first sample initializes the average.
type EWMA struct {
	Beta  float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(beta float64) *EWMA {
	if beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("stats: EWMA beta %v out of (0,1]", beta))
	}
	return &EWMA{Beta: beta}
}

// Add incorporates one observation and returns the updated average.
// floc:hotpath
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.Beta*x + (1-e.Beta)*e.value
	return e.value
}

// Value returns the current average (0 before any sample).
// floc:hotpath
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
// floc:hotpath
func (e *EWMA) Initialized() bool { return e.init }

// Set forces the average to v and marks it initialized.
func (e *EWMA) Set(v float64) { e.value, e.init = v, true }

// CDF is an empirical cumulative distribution function over collected
// samples. The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-th empirical quantile (q in [0,1]) using the
// nearest-rank method. It returns 0 when no samples exist.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.samples[idx]
}

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns n evenly spaced (value, cumulative-fraction) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		pts = append(pts, Point{X: c.Quantile(q), Y: q})
	}
	return pts
}

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// TimeSeries accumulates values into fixed-width time bins, e.g. bandwidth
// per second. Bins start at time 0.
type TimeSeries struct {
	binWidth float64
	bins     []float64
}

// NewTimeSeries returns a TimeSeries with the given bin width (> 0).
func NewTimeSeries(binWidth float64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: TimeSeries bin width must be positive")
	}
	return &TimeSeries{binWidth: binWidth}
}

// Add accumulates value v at time t (t >= 0; negative times go to bin 0).
func (ts *TimeSeries) Add(t, v float64) {
	bin := 0
	if t > 0 {
		bin = int(t / ts.binWidth)
	}
	for bin >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[bin] += v
}

// BinWidth returns the configured bin width.
func (ts *TimeSeries) BinWidth() float64 { return ts.binWidth }

// Bins returns the accumulated per-bin totals. The returned slice is the
// internal buffer; callers must not modify it.
func (ts *TimeSeries) Bins() []float64 { return ts.bins }

// Rate returns per-bin totals divided by the bin width (a rate series).
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.bins))
	for i, v := range ts.bins {
		out[i] = v / ts.binWidth
	}
	return out
}

// Total returns the sum over all bins.
func (ts *TimeSeries) Total() float64 {
	sum := 0.0
	for _, v := range ts.bins {
		sum += v
	}
	return sum
}

// RangeTotal sums the value accumulated in [t0, t1) (aligned to bins).
func (ts *TimeSeries) RangeTotal(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	lo := int(t0 / ts.binWidth)
	hi := int(math.Ceil(t1 / ts.binWidth))
	if lo < 0 {
		lo = 0
	}
	if hi > len(ts.bins) {
		hi = len(ts.bins)
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += ts.bins[i]
	}
	return sum
}

// Histogram counts samples in fixed-width value bins over [lo, hi); values
// outside the range are clamped to the first/last bin.
type Histogram struct {
	lo, hi float64
	counts []int
	n      int
}

// NewHistogram returns a Histogram with nbins bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, nbins)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.n++
}

// Counts returns the per-bin counts (internal buffer; do not modify).
func (h *Histogram) Counts() []int { return h.counts }

// N returns the total number of samples.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// FormatRow renders a label followed by columns, tab-separated, for the
// experiment harnesses' plain-text table output.
func FormatRow(label string, cols ...float64) string {
	var b strings.Builder
	b.WriteString(label)
	for _, c := range cols {
		fmt.Fprintf(&b, "\t%.4f", c)
	}
	return b.String()
}
