package rng

import (
	"sync"
	"testing"
)

// TestSplitConcurrentUse exercises the documented concurrency pattern —
// a Source is not safe for sharing, so each goroutine gets its own child
// via Split — under the race detector, and checks that the concurrent
// draws match a sequential replay of the same split schedule (the
// determinism contract must survive parallel consumption).
func TestSplitConcurrentUse(t *testing.T) {
	const (
		workers = 8
		draws   = 10000
	)
	parent := New(42)
	children := make([]*Source, workers)
	for i := range children {
		children[i] = parent.Split()
	}

	sums := make([]uint64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s uint64
			for j := 0; j < draws; j++ {
				s += children[i].Uint64()
			}
			sums[i] = s
		}(i)
	}
	wg.Wait()

	replay := New(42)
	for i := 0; i < workers; i++ {
		child := replay.Split()
		var s uint64
		for j := 0; j < draws; j++ {
			s += child.Uint64()
		}
		if s != sums[i] {
			t.Fatalf("worker %d: concurrent sum %d != sequential replay %d", i, sums[i], s)
		}
	}
}
