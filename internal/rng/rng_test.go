package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestReseed(t *testing.T) {
	s := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	parentOut := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		parentOut[parent.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 200; i++ {
		if parentOut[child.Uint64()] {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("child stream collides with parent stream %d/200 times", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d appeared %d/70000 times, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestUint64nUniformProperty(t *testing.T) {
	s := New(8)
	f := func(n uint64) bool {
		if n == 0 {
			return true // skip; panics by contract
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(10)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(12)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate rank 50 by roughly 51x under alpha=1.
	if counts[0] < 10*counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// All mass within range and rank 0 is the mode.
	for r, c := range counts {
		if c > counts[0] {
			t.Fatalf("rank %d count %d exceeds rank 0 count %d", r, c, counts[0])
		}
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(New(13), 50, 0.8)
	for i := 1; i < len(z.cdf); i++ {
		if z.cdf[i] < z.cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if math.Abs(z.cdf[len(z.cdf)-1]-1) > 1e-12 {
		t.Fatalf("CDF does not end at 1: %v", z.cdf[len(z.cdf)-1])
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
