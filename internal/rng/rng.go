// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulators.
//
// All simulation components draw randomness from an *rng.Source seeded from
// the experiment configuration, so every run is exactly reproducible. The
// generator is xoshiro256**, which has a 256-bit state, passes BigCrush, and
// supports cheap "splitting": deriving independent child streams for
// sub-components (per-flow jitter, per-router drop thresholds, ...) without
// sharing state or locks.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// It is not safe for concurrent use; derive per-goroutine children with
// Split instead of sharing one Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64 state expansion,
// which guarantees a well-mixed non-zero initial state for any seed,
// including zero.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator state as if freshly created with New(seed).
func (s *Source) Reseed(seed uint64) {
	x := seed
	for i := range s.s {
		x = splitMix64(&x)
		s.s[i] = x
	}
}

// splitMix64 advances *x and returns the next SplitMix64 output.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
// floc:hotpath
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9

	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)

	return result
}

// floc:hotpath
func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one output.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
// floc:hotpath
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of the 128-bit product.
	thresh := -n % n
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32

	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse-CDF sampling.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal float64 via the Box-Muller polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, which
// exchanges the elements at indexes i and j (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^alpha. It precomputes the CDF once; use NewZipf for repeated
// sampling.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over [0, n) with exponent alpha > 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed sample in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
