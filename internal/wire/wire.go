// Package wire is the binary codec for the FLoc shim header — the
// on-the-wire form of the metadata the simulator carries on every
// netsim.Packet: protocol version, flags, packet kind, the variable-length
// domain path identifier stamped by the origin BGP speaker (paper Section
// III-A), the declared packet length, and the optional two-part flow
// capability (Section IV-B.3).
//
// The codec is the boundary where traffic that originated outside this
// process enters the reproduction, so Decode is strict: every field is
// bounds- and version-checked, malformed input maps to a typed error, and
// decoding arbitrary bytes never panics (enforced by FuzzWireDecode).
// MarshalAppend and Decode are allocation-free on the success path so the
// daemon's per-datagram cost is bounded by the header walk itself.
//
// Layout (big-endian, lengths in bytes):
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     flags (capability, attack ground truth, priority)
//	2       1     kind (netsim.PacketKind, 1..5)
//	3       1     path length p (number of domains, 0..16)
//	4       4     source address
//	8       4     destination address
//	12      2     packet length (bytes, > 0)
//	14      4*p   path identifier, origin domain first
//	14+4*p  17    capability C0 (8), C1 (8), slot (1) — iff FlagCapability
//
// An empty path (p = 0) is an unmarked packet; the router accounts it
// under its synthetic unknown path, exactly as in the simulator.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"floc/internal/capability"
	"floc/internal/netsim"
	"floc/internal/pathid"
)

// Version1 is the only wire version this codec speaks.
const Version1 = 1

// MaxPathLen bounds the number of domains a wire path identifier can
// carry. Measured AS paths are short (the paper's topologies stay under
// tree height 5); 16 leaves generous headroom while keeping the header
// and the decoder's fixed-size Path array small.
const MaxPathLen = 16

// Byte budget of the three header regions. headerFixedLen covers the
// fields every packet carries; capLen is the optional capability trailer.
const (
	headerFixedLen = 14                                     // bytes
	capLen         = 17                                     // bytes
	MaxEncodedLen  = headerFixedLen + 4*MaxPathLen + capLen // bytes
)

// Flags is the header flag byte.
type Flags uint8

// Flag bits. Unknown bits are a decode error: a header from a newer
// speaker must not be half-understood.
const (
	// FlagCapability marks the presence of the two-part capability trailer.
	FlagCapability Flags = 1 << 0
	// FlagAttack carries the ground-truth attack marker used only by
	// measurement and replay evaluation; no admission decision reads it
	// (mirrors netsim.Packet.Attack).
	FlagAttack Flags = 1 << 1
	// FlagPriority mirrors netsim.Packet.Priority for the per-flow
	// fairness baseline.
	FlagPriority Flags = 1 << 2

	knownFlags = FlagCapability | FlagAttack | FlagPriority
)

// Typed decode/marshal errors. Errors wrap these sentinels with detail;
// match with errors.Is.
var (
	// ErrShort reports a buffer too short for the declared header.
	ErrShort = errors.New("wire: buffer too short")
	// ErrVersion reports an unsupported wire version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrFlags reports unknown flag bits.
	ErrFlags = errors.New("wire: unknown flag bits")
	// ErrKind reports a packet kind outside the defined range.
	ErrKind = errors.New("wire: invalid packet kind")
	// ErrPathLen reports a path identifier longer than MaxPathLen.
	ErrPathLen = errors.New("wire: path length out of range")
	// ErrLength reports a zero declared packet length.
	ErrLength = errors.New("wire: invalid packet length")
	// ErrSlot reports a capability slot outside the encodable [0, 255].
	ErrSlot = errors.New("wire: capability slot out of range")
	// ErrHops reports a control-frame hop budget above MaxControlHops.
	ErrHops = errors.New("wire: control hop budget out of range")
	// ErrCount reports a control-frame record count outside
	// [1, MaxFeedbackRecords].
	ErrCount = errors.New("wire: control record count out of range")
	// ErrTTL reports a zero control-frame TTL.
	ErrTTL = errors.New("wire: zero control TTL")
)

// Header is the decoded FLoc shim header. Path identifiers live in a
// fixed-size array so decoding allocates nothing; PathLen says how many
// leading entries are valid. Cap is meaningful only when
// Flags&FlagCapability is set, and is zero otherwise so marshal∘decode is
// the identity on canonical headers.
type Header struct {
	Version uint8
	Flags   Flags
	Kind    netsim.PacketKind
	Src     uint32
	Dst     uint32
	Length  uint16 //floc:unit bytes
	PathLen uint8
	Path    [MaxPathLen]pathid.ASN
	Cap     capability.Capability
}

// Error constructors. Wrapping a sentinel goes through fmt, which has no
// place in the per-packet codec functions; the constructors fence that
// work off as sanctioned cold excursions (errors are the exceptional
// outcome — a flood of malformed packets pays for its own formatting).

// errValue wraps a sentinel with a single numeric detail.
//
// floc:coldpath error construction is off the codec fast path
func errValue(sentinel error, v int) error { return fmt.Errorf("%w: %d", sentinel, v) }

// errRange wraps a sentinel with a value/limit pair.
//
// floc:coldpath error construction is off the codec fast path
func errRange(sentinel error, v, limit int) error {
	return fmt.Errorf("%w: %d > %d", sentinel, v, limit)
}

// errShort reports a have/need buffer shortfall.
//
// floc:coldpath error construction is off the codec fast path
func errShort(have, need int) error { return fmt.Errorf("%w: %d < %d", ErrShort, have, need) }

// errBadFlags reports the offending unknown bits.
//
// floc:coldpath error construction is off the codec fast path
func errBadFlags(bad Flags) error { return fmt.Errorf("%w: %#02x", ErrFlags, uint8(bad)) }

// errZeroLength reports a zero declared length.
//
// floc:coldpath error construction is off the codec fast path
func errZeroLength() error { return fmt.Errorf("%w: zero", ErrLength) }

// errZeroTTL reports a zero control-frame TTL.
//
// floc:coldpath error construction is off the codec fast path
func errZeroTTL() error { return fmt.Errorf("%w: zero", ErrTTL) }

// EncodedLen returns the exact number of bytes MarshalAppend would write.
//
// floc:hotpath
func (h *Header) EncodedLen() int {
	n := headerFixedLen + 4*int(h.PathLen)
	if h.Flags&FlagCapability != 0 {
		n += capLen
	}
	return n
}

// validate checks the header's encodable range; shared by MarshalAppend
// (reject before writing) and Decode (reject foreign input).
//
// floc:hotpath
// floc:sanitizes
func (h *Header) validate() error {
	if h.Version != Version1 {
		return errValue(ErrVersion, int(h.Version))
	}
	if bad := h.Flags &^ knownFlags; bad != 0 {
		return errBadFlags(bad)
	}
	if h.Kind < netsim.KindSYN || h.Kind > netsim.KindUDP {
		return errValue(ErrKind, int(h.Kind))
	}
	if int(h.PathLen) > MaxPathLen {
		return errRange(ErrPathLen, int(h.PathLen), MaxPathLen)
	}
	if h.Length == 0 {
		return errZeroLength()
	}
	if h.Flags&FlagCapability != 0 && (h.Cap.Slot < 0 || h.Cap.Slot > 255) {
		return errValue(ErrSlot, h.Cap.Slot)
	}
	return nil
}

// MarshalAppend appends the encoded header to dst and returns the
// extended slice. It does not allocate when dst has spare capacity
// (allocate once with make([]byte, 0, wire.MaxEncodedLen) and reuse).
//
// floc:hotpath
func MarshalAppend(dst []byte, h *Header) ([]byte, error) {
	if err := h.validate(); err != nil {
		return dst, err
	}
	dst = append(dst, h.Version, uint8(h.Flags), uint8(h.Kind), h.PathLen)
	dst = binary.BigEndian.AppendUint32(dst, h.Src)
	dst = binary.BigEndian.AppendUint32(dst, h.Dst)
	dst = binary.BigEndian.AppendUint16(dst, h.Length)
	for i := 0; i < int(h.PathLen); i++ {
		dst = binary.BigEndian.AppendUint32(dst, uint32(h.Path[i]))
	}
	if h.Flags&FlagCapability != 0 {
		dst = binary.BigEndian.AppendUint64(dst, h.Cap.C0)
		dst = binary.BigEndian.AppendUint64(dst, h.Cap.C1)
		dst = append(dst, uint8(h.Cap.Slot))
	}
	return dst, nil
}

// Decode parses one header from the front of buf into h and returns the
// number of bytes consumed. Headers are self-delimiting, so captures can
// be decoded back-to-back from one buffer. On error it returns 0 and
// leaves h in an unspecified state; it never panics and never retains
// buf. Trailing bytes after the header are the caller's concern (a UDP
// datagram should contain exactly one header; a capture stream many).
//
// Decode is the module's validation boundary for wire bytes: buf is
// attacker-controlled until validateShallow range-checks the decoded
// fields, and a successful return hands the caller a vetted header.
//
// floc:hotpath
// floc:untrusted buf
// floc:sanitizes
func Decode(buf []byte, h *Header) (int, error) {
	if len(buf) < headerFixedLen {
		return 0, errShort(len(buf), headerFixedLen)
	}
	*h = Header{
		Version: buf[0],
		Flags:   Flags(buf[1]),
		Kind:    netsim.PacketKind(buf[2]),
		PathLen: buf[3],
		Src:     binary.BigEndian.Uint32(buf[4:8]),
		Dst:     binary.BigEndian.Uint32(buf[8:12]),
		Length:  binary.BigEndian.Uint16(buf[12:14]),
	}
	// Validate before trusting PathLen to size the remainder of the walk.
	if err := validateShallow(h); err != nil {
		return 0, err
	}
	n := headerFixedLen
	need := h.EncodedLen()
	if len(buf) < need {
		return 0, errShort(len(buf), need)
	}
	for i := 0; i < int(h.PathLen); i++ {
		h.Path[i] = pathid.ASN(binary.BigEndian.Uint32(buf[n : n+4]))
		n += 4
	}
	if h.Flags&FlagCapability != 0 {
		h.Cap.C0 = binary.BigEndian.Uint64(buf[n : n+8])
		h.Cap.C1 = binary.BigEndian.Uint64(buf[n+8 : n+16])
		h.Cap.Slot = int(buf[n+16])
		n += capLen
	}
	return n, nil
}

// validateShallow is validate minus the capability-slot check, which
// cannot fail on decode (one byte is always in range) and whose field is
// not yet populated when Decode calls this.
//
// floc:hotpath
// floc:sanitizes
func validateShallow(h *Header) error {
	if h.Version != Version1 {
		return errValue(ErrVersion, int(h.Version))
	}
	if bad := h.Flags &^ knownFlags; bad != 0 {
		return errBadFlags(bad)
	}
	if h.Kind < netsim.KindSYN || h.Kind > netsim.KindUDP {
		return errValue(ErrKind, int(h.Kind))
	}
	if int(h.PathLen) > MaxPathLen {
		return errRange(ErrPathLen, int(h.PathLen), MaxPathLen)
	}
	if h.Length == 0 {
		return errZeroLength()
	}
	return nil
}

// PathSlice returns the valid prefix of the path array. The slice aliases
// the header; copy it (or use PathID) to outlive h.
//
// floc:hotpath
func (h *Header) PathSlice() []pathid.ASN { return h.Path[:h.PathLen] }

// PathID returns a freshly allocated path identifier.
func (h *Header) PathID() pathid.PathID {
	return pathid.New(h.Path[:h.PathLen]...)
}

// FromPacket fills h from a simulator packet (the capture/daemon egress
// direction). The capability trailer is omitted: capabilities are issued
// by the measuring router, not carried by the simulator's packets.
//
// floc:hotpath
func FromPacket(h *Header, pkt *netsim.Packet) error {
	if len(pkt.Path) > MaxPathLen {
		return errRange(ErrPathLen, len(pkt.Path), MaxPathLen)
	}
	if pkt.Size <= 0 || pkt.Size > 0xffff {
		return errValue(ErrLength, pkt.Size)
	}
	*h = Header{
		Version: Version1,
		Kind:    pkt.Kind,
		Src:     pkt.Src,
		Dst:     pkt.Dst,
		Length:  uint16(pkt.Size),
		PathLen: uint8(len(pkt.Path)),
	}
	copy(h.Path[:], pkt.Path)
	if pkt.Attack {
		h.Flags |= FlagAttack
	}
	if pkt.Priority {
		h.Flags |= FlagPriority
	}
	return nil
}

// ToPacket fills pkt from the decoded header. The caller supplies the
// packet ID and the canonical path identifier, key, and router path
// handle (via an Interner, so hot decode paths share one PathID per
// distinct path instead of allocating per packet). handle may be 0
// (unknown); a non-zero handle lets the router admit the packet without
// hashing anything but the flow id.
//
// floc:hotpath
func (h *Header) ToPacket(pkt *netsim.Packet, id uint64, path pathid.PathID, key string, handle uint32) {
	*pkt = netsim.Packet{
		ID:         id,
		Src:        h.Src,
		Dst:        h.Dst,
		Size:       int(h.Length),
		Kind:       h.Kind,
		Path:       path,
		PathKey:    key,
		PathHandle: handle,
		Attack:     h.Flags&FlagAttack != 0,
		Priority:   h.Flags&FlagPriority != 0,
	}
}

// internerMax bounds the interner's table so adversarial path churn
// cannot grow it without limit; past the bound, Resolve falls back to
// per-call allocation (correct, just slower).
const internerMax = 1 << 16

// Interner canonicalizes decoded path identifiers: one PathID and one
// key string per distinct path, looked up allocation-free. Not safe for
// concurrent use — give each decoding goroutine its own.
type Interner struct {
	m   map[string]internEntry
	buf []byte
}

type internEntry struct {
	id     pathid.PathID
	key    string
	handle uint32 // router path handle, once bound
	bound  bool   // BindHandle ran for this entry (a 0 handle can be a valid binding)
}

// Resolved is ResolveFull's result: the canonical path identity plus the
// router handle binding, if BindHandle has recorded one.
type Resolved struct {
	ID     pathid.PathID
	Key    string
	Handle uint32
	Bound  bool
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]internEntry), buf: make([]byte, 0, 4*MaxPathLen)}
}

// Resolve returns the canonical PathID and key for h's path. Hits are
// allocation-free (the map probe with a string([]byte) key does not
// materialize the string); misses take the cold intern path.
//
// floc:hotpath
func (in *Interner) Resolve(h *Header) (pathid.PathID, string) {
	in.buf = in.buf[:0]
	for i := 0; i < int(h.PathLen); i++ {
		in.buf = binary.BigEndian.AppendUint32(in.buf, uint32(h.Path[i]))
	}
	//floclint:allow hotpath interning is the one sanctioned string probe at ingest; every later stage is handle-indexed
	if e, ok := in.m[string(in.buf)]; ok {
		return e.id, e.key
	}
	e := in.intern(h)
	return e.id, e.key
}

// ResolveFull is Resolve plus the entry's router-handle binding, for
// ingest loops that stamp Packet.PathHandle: resolve, and on !Bound
// intern the path with the router once (cold) and BindHandle the result.
//
// floc:hotpath
func (in *Interner) ResolveFull(h *Header) Resolved {
	in.buf = in.buf[:0]
	for i := 0; i < int(h.PathLen); i++ {
		in.buf = binary.BigEndian.AppendUint32(in.buf, uint32(h.Path[i]))
	}
	//floclint:allow hotpath interning is the one sanctioned string probe at ingest; every later stage is handle-indexed
	if e, ok := in.m[string(in.buf)]; ok {
		return Resolved{ID: e.id, Key: e.key, Handle: e.handle, Bound: e.bound}
	}
	e := in.intern(h)
	return Resolved{ID: e.id, Key: e.key}
}

// BindHandle records the router path handle for h's path, so subsequent
// ResolveFull calls return it. A no-op for paths past the interner bound
// (they re-resolve per call anyway).
//
// floc:coldpath handle binding happens once per path
func (in *Interner) BindHandle(h *Header, handle uint32) {
	in.buf = in.buf[:0]
	for i := 0; i < int(h.PathLen); i++ {
		in.buf = binary.BigEndian.AppendUint32(in.buf, uint32(h.Path[i]))
	}
	if e, ok := in.m[string(in.buf)]; ok {
		e.handle = handle
		e.bound = true
		in.m[string(in.buf)] = e
	}
}

// intern is Resolve's miss path: the first sighting of a path allocates
// its canonical PathID and key and (up to internerMax) remembers them.
//
// floc:coldpath first sighting of a path allocates its canonical entry
func (in *Interner) intern(h *Header) internEntry {
	id := h.PathID()
	e := internEntry{id: id, key: id.Key()}
	if len(in.m) < internerMax {
		in.m[string(in.buf)] = e
	}
	return e
}

// Len returns the number of interned paths, for tests and introspection.
func (in *Interner) Len() int { return len(in.m) }
