package wire

import "errors"

// ErrorKind classifies the codec's typed errors into a closed set, so
// tooling that aggregates malformed input (the capture reader's
// per-kind malformed-line counts, a future pushback-frame parser) can
// switch over the classification and be held exhaustive when the
// congestion-feedback frames add error shapes.
//
//floc:enum
type ErrorKind uint8

// Error kinds. ErrKindNone classifies nil and foreign errors;
// ErrKindFraming classifies capture-stream records broken before the
// codec ever saw bytes (bad NDJSON, bad hex).
const (
	ErrKindNone ErrorKind = iota
	ErrKindShort
	ErrKindVersion
	ErrKindFlags
	ErrKindKind
	ErrKindPathLen
	ErrKindLength
	ErrKindSlot
	ErrKindFraming
	ErrKindHops
	ErrKindCount
	ErrKindTTL
	NumErrorKinds //floc:enumbound
)

// String returns the kind's stable label, used as the reason tag on
// malformed-input counters.
func (k ErrorKind) String() string {
	switch k {
	case ErrKindNone:
		return "none"
	case ErrKindShort:
		return "short"
	case ErrKindVersion:
		return "version"
	case ErrKindFlags:
		return "flags"
	case ErrKindKind:
		return "kind"
	case ErrKindPathLen:
		return "pathlen"
	case ErrKindLength:
		return "length"
	case ErrKindSlot:
		return "slot"
	case ErrKindFraming:
		return "framing"
	case ErrKindHops:
		return "hops"
	case ErrKindCount:
		return "count"
	case ErrKindTTL:
		return "ttl"
	default:
		return "unknown"
	}
}

// KindOfError maps an error to its kind: the sentinel it wraps, or
// ErrKindNone for nil and errors from outside the codec.
func KindOfError(err error) ErrorKind {
	switch {
	case err == nil:
		return ErrKindNone
	case errors.Is(err, ErrShort):
		return ErrKindShort
	case errors.Is(err, ErrVersion):
		return ErrKindVersion
	case errors.Is(err, ErrFlags):
		return ErrKindFlags
	case errors.Is(err, ErrKind):
		return ErrKindKind
	case errors.Is(err, ErrPathLen):
		return ErrKindPathLen
	case errors.Is(err, ErrLength):
		return ErrKindLength
	case errors.Is(err, ErrSlot):
		return ErrKindSlot
	case errors.Is(err, ErrHops):
		return ErrKindHops
	case errors.Is(err, ErrCount):
		return ErrKindCount
	case errors.Is(err, ErrTTL):
		return ErrKindTTL
	default:
		return ErrKindNone
	}
}
