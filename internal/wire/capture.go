package wire

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// CaptureRecord is one line of an NDJSON capture: the packet's arrival
// time in virtual seconds and its hex-encoded wire header. The text form
// keeps captures hermetic, diffable, and greppable — the properties CI
// replay needs — at the cost of 2x+epsilon over raw binary.
type CaptureRecord struct {
	T    float64 `json:"t"` //floc:unit seconds
	Wire string  `json:"wire"`
}

// CaptureWriter writes NDJSON capture records.
type CaptureWriter struct {
	w     *bufio.Writer
	buf   []byte
	lastT float64 //floc:unit seconds
	n     int
}

// NewCaptureWriter returns a CaptureWriter on w. Call Flush when done.
func NewCaptureWriter(w io.Writer) *CaptureWriter {
	return &CaptureWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, MaxEncodedLen)}
}

// Write appends one record for h at time t. Records must be written in
// non-decreasing time order; Write rejects regressions so a capture is
// replayable as-is.
// floc:unit t seconds
func (cw *CaptureWriter) Write(t float64, h *Header) error {
	if cw.n > 0 && t < cw.lastT {
		return fmt.Errorf("wire: capture time %v before previous record %v", t, cw.lastT)
	}
	frame, err := MarshalAppend(cw.buf[:0], h)
	if err != nil {
		return err
	}
	line, err := json.Marshal(CaptureRecord{T: t, Wire: hex.EncodeToString(frame)})
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(line); err != nil {
		return err
	}
	if err := cw.w.WriteByte('\n'); err != nil {
		return err
	}
	cw.lastT = t
	cw.n++
	return nil
}

// Flush flushes buffered output.
func (cw *CaptureWriter) Flush() error { return cw.w.Flush() }

// Records returns how many records were written.
func (cw *CaptureWriter) Records() int { return cw.n }

// CaptureReader streams records out of an NDJSON capture. By default a
// malformed line fails the read; SkipMalformed switches to lenient mode,
// where bad lines are counted by error kind and skipped instead — what a
// long replay wants when one hand-edited line should not void the run.
type CaptureReader struct {
	sc        *bufio.Scanner
	line      int
	buf       []byte
	lenient   bool
	malformed [NumErrorKinds]int64
}

// NewCaptureReader returns a CaptureReader on r.
func NewCaptureReader(r io.Reader) *CaptureReader {
	sc := bufio.NewScanner(r)
	// A capture line is bounded by the header hex plus JSON framing, but
	// leave slack for hand-edited captures with extra fields.
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &CaptureReader{sc: sc, buf: make([]byte, MaxEncodedLen)}
}

// SkipMalformed switches the reader between strict (default: any bad
// line fails the read) and lenient (bad lines are counted and skipped).
func (cr *CaptureReader) SkipMalformed(on bool) { cr.lenient = on }

// Malformed returns the number of lines skipped in lenient mode.
func (cr *CaptureReader) Malformed() int64 {
	var n int64
	for _, c := range cr.malformed {
		n += c
	}
	return n
}

// MalformedByKind returns the per-ErrorKind counts of lines skipped in
// lenient mode; framing breakage (bad JSON, bad hex, trailing bytes)
// counts under ErrKindFraming.
func (cr *CaptureReader) MalformedByKind() [NumErrorKinds]int64 { return cr.malformed }

// decodeFrameHex hex-decodes one capture frame into dst, bounding the
// declared frame by the destination before touching it. The hex text is
// attacker-controlled; the returned count is not: hex.Decode writes at
// most len(dst) bytes and rejects partial or invalid digits.
//
// floc:untrusted s
// floc:sanitizes
func decodeFrameHex(dst []byte, s string) (int, error) {
	if len(s) > 2*len(dst) {
		return 0, fmt.Errorf("frame longer than any header (%d hex chars)", len(s))
	}
	return hex.Decode(dst, []byte(s))
}

// decodeLine parses one nonempty capture line into h, classifying any
// failure for the malformed counters.
//
// floc:untrusted raw
func (cr *CaptureReader) decodeLine(raw []byte, h *Header) (float64, ErrorKind, error) {
	var rec CaptureRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return 0, ErrKindFraming, fmt.Errorf("wire: capture line %d: %v", cr.line, err)
	}
	n, err := decodeFrameHex(cr.buf, rec.Wire)
	if err != nil {
		return 0, ErrKindFraming, fmt.Errorf("wire: capture line %d: %v", cr.line, err)
	}
	used, err := Decode(cr.buf[:n], h)
	if err != nil {
		return 0, KindOfError(err), fmt.Errorf("wire: capture line %d: %v", cr.line, err)
	}
	if used != n {
		return 0, ErrKindFraming, fmt.Errorf("wire: capture line %d: %d trailing bytes after header", cr.line, n-used)
	}
	return rec.T, ErrKindNone, nil
}

// Next decodes the next record into h and returns its arrival time.
// io.EOF signals a clean end of capture; any other error names the
// offending line (in lenient mode the line is counted and skipped
// instead).
// floc:unit t seconds
func (cr *CaptureReader) Next(h *Header) (t float64, err error) {
	for cr.sc.Scan() {
		cr.line++
		raw := cr.sc.Bytes() //floc:untrusted
		if len(raw) == 0 {
			continue
		}
		t, kind, err := cr.decodeLine(raw, h)
		if err == nil {
			return t, nil
		}
		if !cr.lenient {
			return 0, err
		}
		cr.malformed[kind]++
	}
	if err := cr.sc.Err(); err != nil {
		return 0, err
	}
	return 0, io.EOF
}

// Line returns the number of the last consumed capture line.
func (cr *CaptureReader) Line() int { return cr.line }
