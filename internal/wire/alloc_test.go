package wire

import (
	"testing"

	"floc/internal/netsim"
)

// The codec carries a zero-allocation contract on its //floc:hotpath
// functions: decode into a caller-owned Header, marshal into a
// caller-owned buffer, and steady-state interner hits must not touch the
// heap. floclint's hotpath rule enforces this statically; these gates
// enforce it against the compiler's actual escape analysis.

func TestZeroAllocDecode(t *testing.T) {
	h := sampleHeader()
	buf, err := MarshalAppend(nil, &h)
	if err != nil {
		t.Fatal(err)
	}
	var got Header
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := Decode(buf, &got); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Decode allocates %.1f times per op, want 0", avg)
	}
}

func TestZeroAllocMarshalAppend(t *testing.T) {
	h := sampleHeader()
	dst := make([]byte, 0, MaxEncodedLen)
	if avg := testing.AllocsPerRun(200, func() {
		out, err := MarshalAppend(dst[:0], &h)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty encoding")
		}
	}); avg != 0 {
		t.Fatalf("MarshalAppend allocates %.1f times per op, want 0", avg)
	}
}

func TestZeroAllocInternerResolve(t *testing.T) {
	h := sampleHeader()
	in := NewInterner()
	in.Resolve(&h) // first sighting interns (the sanctioned cold path)
	if avg := testing.AllocsPerRun(200, func() {
		if _, key := in.Resolve(&h); key == "" {
			t.Fatal("empty key")
		}
	}); avg != 0 {
		t.Fatalf("Interner.Resolve steady state allocates %.1f times per op, want 0", avg)
	}
}

func TestZeroAllocFromPacket(t *testing.T) {
	h := sampleHeader()
	var pkt netsim.Packet
	pkt.Size = int(h.Length)
	pkt.Kind = h.Kind
	var out Header
	if avg := testing.AllocsPerRun(200, func() {
		pkt2 := pkt
		if err := FromPacket(&out, &pkt2); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("FromPacket allocates %.1f times per op, want 0", avg)
	}
}

// BenchmarkWireDecode is the codec half of the perf baseline
// (scripts/bench-snapshot.sh): ns/op to decode one representative header
// with a path and capability trailer.
func BenchmarkWireDecode(b *testing.B) {
	h := sampleHeader()
	buf, err := MarshalAppend(nil, &h)
	if err != nil {
		b.Fatal(err)
	}
	var got Header
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf, &got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireMarshalAppend measures the encode direction into a
// recycled buffer, the shape flocd's transmit path uses.
func BenchmarkWireMarshalAppend(b *testing.B) {
	h := sampleHeader()
	dst := make([]byte, 0, MaxEncodedLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MarshalAppend(dst[:0], &h)
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}
