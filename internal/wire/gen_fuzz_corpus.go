//go:build ignore

// gen_fuzz_corpus.go regenerates the checked-in fuzz seed corpora under
// testdata/fuzz/. Run from the repo root:
//
//	go run ./internal/wire/gen_fuzz_corpus.go
//
// The seeds put the fuzzers' first executions on the interesting
// boundaries instead of the all-zero input: a minimal valid header, a
// max-length AS path, a capability trailer, and one input per typed
// decode-error shape (ErrShort, ErrVersion, ErrFlags, ErrKind,
// ErrPathLen, ErrLength). FuzzControlFrameDecode gets the same
// treatment for control frames: minimal and maximal valid frames plus
// one seed per typed error (ErrHops, ErrCount, ErrTTL, ...).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"floc/internal/capability"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/wire"
)

func marshal(h wire.Header) []byte {
	b, err := wire.MarshalAppend(nil, &h)
	if err != nil {
		log.Fatalf("marshal seed: %v", err)
	}
	return b
}

func writeSeed(dir, name, body string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	content := "go test fuzz v1\n" + body
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", filepath.Join(dir, name))
}

func bytesSeed(dir, name string, data []byte) {
	writeSeed(dir, name, "[]byte("+strconv.Quote(string(data))+")\n")
}

func main() {
	maxPath := wire.Header{
		Version: wire.Version1, Kind: netsim.KindData, Src: 0x0a000001,
		Dst: 0x0a000002, Length: 1500, PathLen: wire.MaxPathLen,
	}
	for i := 0; i < wire.MaxPathLen; i++ {
		maxPath.Path[i] = pathid.ASN(64 + i)
	}
	withCap := wire.Header{
		Version: wire.Version1, Flags: wire.FlagCapability | wire.FlagAttack,
		Kind: netsim.KindUDP, Src: 1, Dst: 2, Length: 0xffff, PathLen: 3,
		Cap: capability.Capability{C0: 0x1122334455667788, C1: 0x99aabbccddeeff00, Slot: 7},
	}
	withCap.Path[0], withCap.Path[1], withCap.Path[2] = 64, 7, 1

	valid := marshal(wire.Header{Version: wire.Version1, Kind: netsim.KindSYN, Length: 40})

	mutate := func(i int, v byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] = v
		return b
	}

	dir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzWireDecode")
	bytesSeed(dir, "valid-minimal", valid)
	bytesSeed(dir, "valid-max-path", marshal(maxPath))
	bytesSeed(dir, "valid-capability", marshal(withCap))
	bytesSeed(dir, "err-short-fixed", valid[:4])
	bytesSeed(dir, "err-short-trailer", marshal(withCap)[:20])
	bytesSeed(dir, "err-version", mutate(0, wire.Version1+1))
	bytesSeed(dir, "err-flags", mutate(1, 0x80))
	bytesSeed(dir, "err-kind", mutate(2, 0xff))
	bytesSeed(dir, "err-path-len", mutate(3, wire.MaxPathLen+1))
	bytesSeed(dir, "err-zero-length", func() []byte {
		b := append([]byte(nil), valid...)
		b[12], b[13] = 0, 0
		return b
	}())

	// FuzzWireRoundTrip takes decomposed canonical fields:
	// (flags, kind uint8, src, dst uint32, length uint16, pathLen uint8,
	//  c0, c1 uint64, slot uint8, pathSeed uint64).
	rt := func(flags, kind uint8, src, dst uint32, length uint16, pathLen uint8, c0, c1 uint64, slot uint8, seed uint64) string {
		return fmt.Sprintf(
			"uint8(%d)\nuint8(%d)\nuint32(%d)\nuint32(%d)\nuint16(%d)\nuint8(%d)\nuint64(%d)\nuint64(%d)\nuint8(%d)\nuint64(%d)\n",
			flags, kind, src, dst, length, pathLen, c0, c1, slot, seed)
	}
	dir = filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzWireRoundTrip")
	writeSeed(dir, "minimal", rt(0, 0, 1, 2, 40, 0, 0, 0, 0, 0))
	writeSeed(dir, "max-path", rt(0, 1, 0xffffffff, 0, 0xffff, wire.MaxPathLen, 0, 0, 0, 0x0123456789abcdef))
	writeSeed(dir, "capability", rt(uint8(wire.FlagCapability), 4, 10, 20, 1500, 3, ^uint64(0), 1, 255, 42))
	writeSeed(dir, "all-flags", rt(0xff, 3, 1, 1, 1, 1, 1, 1, 1, 1))
	writeSeed(dir, "zero-length-clamped", rt(0, 2, 0, 0, 0, 2, 0, 0, 0, 7))

	marshalControl := func(f wire.ControlFrame) []byte {
		b, err := wire.MarshalControlAppend(nil, &f)
		if err != nil {
			log.Fatalf("marshal control seed: %v", err)
		}
		return b
	}
	minimal := wire.ControlFrame{
		Version: wire.ControlVersion1, Kind: wire.ControlFeedback,
		Origin: 1, Seq: 1, TTLMillis: 1000, NumRecords: 1,
	}
	minimal.Records[0] = wire.FeedbackRecord{PathLen: 1, LimitBits: 1_000_000}
	minimal.Records[0].Path[0] = 100
	maximal := wire.ControlFrame{
		Version: wire.ControlVersion1, Kind: wire.ControlFeedback,
		Hops: wire.MaxControlHops, Origin: 0xffffffff, Seq: ^uint64(0),
		TTLMillis: 0xffff, NumRecords: wire.MaxFeedbackRecords,
	}
	for i := 0; i < wire.MaxFeedbackRecords; i++ {
		maximal.Records[i].PathLen = wire.MaxPathLen
		for j := 0; j < wire.MaxPathLen; j++ {
			maximal.Records[i].Path[j] = pathid.ASN(i*wire.MaxPathLen + j)
		}
		maximal.Records[i].LimitBits = uint64(i) << 20
	}
	release := minimal
	release.Records[0].LimitBits = 0

	cv := marshalControl(minimal)
	cmutate := func(i int, v byte) []byte {
		b := append([]byte(nil), cv...)
		b[i] = v
		return b
	}
	dir = filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzControlFrameDecode")
	bytesSeed(dir, "valid-minimal", cv)
	bytesSeed(dir, "valid-max", marshalControl(maximal))
	bytesSeed(dir, "valid-release", marshalControl(release))
	bytesSeed(dir, "err-short-fixed", cv[:6])
	bytesSeed(dir, "err-short-record", cv[:len(cv)-3])
	bytesSeed(dir, "err-version", cmutate(0, wire.Version1))
	bytesSeed(dir, "err-kind", cmutate(1, 0xee))
	bytesSeed(dir, "err-hops", cmutate(2, wire.MaxControlHops+1))
	bytesSeed(dir, "err-count-zero", cmutate(3, 0))
	bytesSeed(dir, "err-count-over", cmutate(3, wire.MaxFeedbackRecords+1))
	bytesSeed(dir, "err-ttl-zero", func() []byte {
		b := append([]byte(nil), cv...)
		b[16], b[17] = 0, 0
		return b
	}())
	bytesSeed(dir, "err-record-pathlen", cmutate(18, wire.MaxPathLen+1))
}
