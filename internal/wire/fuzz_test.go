package wire

import (
	"bytes"
	"testing"

	"floc/internal/capability"
	"floc/internal/netsim"
	"floc/internal/pathid"
)

// fuzzSeeds returns a few valid encoded headers so the corpus starts in
// the interesting region of the input space.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	hs := []Header{
		{Version: Version1, Kind: netsim.KindSYN, Length: 40},
		sampleHeader(),
		{Version: Version1, Flags: FlagPriority, Kind: netsim.KindData, Src: 1, Dst: 2, Length: 0xffff, PathLen: MaxPathLen},
	}
	out := make([][]byte, 0, len(hs))
	for i := range hs {
		b, err := MarshalAppend(nil, &hs[i])
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzWireDecode feeds arbitrary bytes to Decode. Decode must never
// panic, and anything it accepts must re-encode to exactly the bytes it
// consumed (decode is the partial inverse of marshal).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{Version1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		n, err := Decode(data, &h)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if n != h.EncodedLen() {
			t.Fatalf("consumed %d bytes but EncodedLen = %d", n, h.EncodedLen())
		}
		re, err := MarshalAppend(nil, &h)
		if err != nil {
			t.Fatalf("accepted header fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}

// FuzzWireRoundTrip builds a canonical header from fuzzed fields and
// checks marshal∘decode is the identity.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint32(1), uint32(2), uint16(40), uint8(0), uint64(0), uint64(0), uint8(0), uint64(0))
	f.Add(uint8(7), uint8(5), uint32(0xffffffff), uint32(0), uint16(0xffff), uint8(MaxPathLen), uint64(1), uint64(2), uint8(3), uint64(0x0123456789abcdef))
	f.Fuzz(func(t *testing.T, flags, kind uint8, src, dst uint32, length uint16, pathLen uint8, c0, c1 uint64, slot uint8, pathSeed uint64) {
		h := Header{
			Version: Version1,
			Flags:   Flags(flags) & knownFlags,
			Kind:    netsim.KindSYN + netsim.PacketKind(kind%5),
			Src:     src,
			Dst:     dst,
			Length:  length,
			PathLen: pathLen % (MaxPathLen + 1),
		}
		if h.Length == 0 {
			h.Length = 1
		}
		// Derive path entries from the seed with a cheap mix so distinct
		// seeds exercise distinct paths.
		x := pathSeed
		for i := 0; i < int(h.PathLen); i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Path[i] = pathid.ASN(uint32(x >> 32))
		}
		if h.Flags&FlagCapability != 0 {
			h.Cap = capability.Capability{C0: c0, C1: c1, Slot: int(slot)}
		}
		buf, err := MarshalAppend(nil, &h)
		if err != nil {
			t.Fatalf("canonical header rejected: %v (%+v)", err, h)
		}
		var got Header
		n, err := Decode(buf, &got)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d", n, len(buf))
		}
		if got != h {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
		}
	})
}
