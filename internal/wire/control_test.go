package wire

import (
	"bytes"
	"errors"
	"testing"

	"floc/internal/pathid"
	"floc/internal/units"
)

// sampleControlFrame is a representative feedback frame: several records
// with distinct path lengths, including a release (zero-limit) record and
// an unknown-path (zero-length) record.
func sampleControlFrame() ControlFrame {
	f := ControlFrame{
		Version:    ControlVersion1,
		Kind:       ControlFeedback,
		Hops:       2,
		Origin:     3,
		Seq:        41,
		TTLMillis:  1500,
		NumRecords: 4,
	}
	f.Records[0] = FeedbackRecord{PathLen: 3, LimitBits: 2_000_000}
	f.Records[0].Path[0], f.Records[0].Path[1], f.Records[0].Path[2] = 108, 12, 1
	f.Records[1] = FeedbackRecord{PathLen: 1, LimitBits: 0} // release
	f.Records[1].Path[0] = 42
	f.Records[2] = FeedbackRecord{PathLen: 0, LimitBits: 64_000} // unknown path
	f.Records[3] = FeedbackRecord{PathLen: MaxPathLen, LimitBits: ^uint64(0)}
	for i := 0; i < MaxPathLen; i++ {
		f.Records[3].Path[i] = pathid.ASN(200 + i)
	}
	return f
}

func TestControlRoundTrip(t *testing.T) {
	f := sampleControlFrame()
	buf, err := MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != f.ControlEncodedLen() {
		t.Fatalf("encoded %d bytes, ControlEncodedLen says %d", len(buf), f.ControlEncodedLen())
	}
	var got ControlFrame
	n, err := DecodeControl(buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got != f {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestControlTrailingBytesIgnored(t *testing.T) {
	f := sampleControlFrame()
	buf, err := MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xde, 0xad)
	var got ControlFrame
	n, err := DecodeControl(buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-2 {
		t.Fatalf("consumed %d, want %d", n, len(buf)-2)
	}
}

func TestControlDecodeErrors(t *testing.T) {
	f := sampleControlFrame()
	valid, err := MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(i int, v byte) []byte {
		b := append([]byte(nil), valid...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
		kind ErrorKind
	}{
		{"short-fixed", valid[:controlFixedLen-1], ErrShort, ErrKindShort},
		{"short-record", valid[:controlFixedLen+2], ErrShort, ErrKindShort},
		{"version", mutate(0, Version1), ErrVersion, ErrKindVersion},
		{"kind", mutate(1, 0xee), ErrKind, ErrKindKind},
		{"hops", mutate(2, MaxControlHops+1), ErrHops, ErrKindHops},
		{"count-zero", mutate(3, 0), ErrCount, ErrKindCount},
		{"count-over", mutate(3, MaxFeedbackRecords+1), ErrCount, ErrKindCount},
		{"ttl-zero", func() []byte {
			b := append([]byte(nil), valid...)
			b[16], b[17] = 0, 0
			return b
		}(), ErrTTL, ErrKindTTL},
		{"record-pathlen", mutate(controlFixedLen, MaxPathLen+1), ErrPathLen, ErrKindPathLen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got ControlFrame
			n, err := DecodeControl(tc.buf, &got)
			if n != 0 {
				t.Fatalf("consumed %d bytes on error", n)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if k := KindOfError(err); k != tc.kind {
				t.Fatalf("KindOfError = %v, want %v", k, tc.kind)
			}
		})
	}
}

func TestControlMarshalRejectsInvalid(t *testing.T) {
	f := sampleControlFrame()
	f.NumRecords = 0
	if _, err := MarshalControlAppend(nil, &f); !errors.Is(err, ErrCount) {
		t.Fatalf("zero records: %v, want ErrCount", err)
	}
	f = sampleControlFrame()
	f.Records[0].PathLen = MaxPathLen + 1
	if _, err := MarshalControlAppend(nil, &f); !errors.Is(err, ErrPathLen) {
		t.Fatalf("oversized record path: %v, want ErrPathLen", err)
	}
}

// Control frames and data headers must reject each other: a misdelivered
// datagram fails fast instead of being half-understood.
func TestControlAndDataCodecsDisjoint(t *testing.T) {
	f := sampleControlFrame()
	cb, err := MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	var h Header
	if _, err := Decode(cb, &h); !errors.Is(err, ErrVersion) {
		t.Fatalf("data Decode of control frame: %v, want ErrVersion", err)
	}
	h = sampleHeader()
	db, err := MarshalAppend(nil, &h)
	if err != nil {
		t.Fatal(err)
	}
	var g ControlFrame
	if _, err := DecodeControl(db, &g); !errors.Is(err, ErrVersion) {
		t.Fatalf("DecodeControl of data header: %v, want ErrVersion", err)
	}
}

func TestFeedbackRecordPathHelpers(t *testing.T) {
	var r FeedbackRecord
	path := pathid.New(7, 8, 9)
	if err := r.SetPath(path); err != nil {
		t.Fatal(err)
	}
	if got := r.PathID(); got.Key() != path.Key() {
		t.Fatalf("PathID = %s, want %s", got.Key(), path.Key())
	}
	long := make([]pathid.ASN, MaxPathLen+1)
	if err := r.SetPath(pathid.New(long...)); !errors.Is(err, ErrPathLen) {
		t.Fatalf("SetPath overlong: %v, want ErrPathLen", err)
	}
	r.LimitBits = 5_000_000
	if got := r.Limit(); got != units.BitsPerSec(5_000_000) {
		t.Fatalf("Limit = %v", got)
	}
}

func TestControlTTLSeconds(t *testing.T) {
	f := ControlFrame{TTLMillis: 2500}
	if got := f.TTL(); got < 2.4999 || got > 2.5001 {
		t.Fatalf("TTL = %v, want 2.5", got)
	}
}

func TestZeroAllocControlDecode(t *testing.T) {
	f := sampleControlFrame()
	buf, err := MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	var got ControlFrame
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := DecodeControl(buf, &got); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeControl allocates %.1f times per op, want 0", avg)
	}
}

func TestZeroAllocControlMarshalAppend(t *testing.T) {
	f := sampleControlFrame()
	dst := make([]byte, 0, MaxControlEncodedLen)
	if avg := testing.AllocsPerRun(200, func() {
		out, err := MarshalControlAppend(dst[:0], &f)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty encoding")
		}
	}); avg != 0 {
		t.Fatalf("MarshalControlAppend allocates %.1f times per op, want 0", avg)
	}
}

// BenchmarkControlEncode is the feedback-encode perf family
// (scripts/bench-snapshot.sh): ns/op to marshal one representative
// feedback frame into a recycled buffer, the shape the cluster sender
// uses on every publish and retry.
func BenchmarkControlEncode(b *testing.B) {
	f := sampleControlFrame()
	dst := make([]byte, 0, MaxControlEncodedLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MarshalControlAppend(dst[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}

// BenchmarkControlDecode measures the receive direction.
func BenchmarkControlDecode(b *testing.B) {
	f := sampleControlFrame()
	buf, err := MarshalControlAppend(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var got ControlFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeControl(buf, &got); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzControlFrameDecode feeds arbitrary bytes to DecodeControl. It must
// never panic, and anything it accepts must re-encode to exactly the
// bytes it consumed (decode is the partial inverse of marshal) — the
// same identity FuzzWireDecode enforces for data headers.
func FuzzControlFrameDecode(f *testing.F) {
	cf := sampleControlFrame()
	seed, err := MarshalControlAppend(nil, &cf)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{ControlVersion1, ControlFeedback, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var frame ControlFrame
		n, err := DecodeControl(data, &frame)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if n != frame.ControlEncodedLen() {
			t.Fatalf("consumed %d bytes but ControlEncodedLen = %d", n, frame.ControlEncodedLen())
		}
		re, err := MarshalControlAppend(nil, &frame)
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}
