package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"floc/internal/capability"
	"floc/internal/netsim"
	"floc/internal/pathid"
)

func sampleHeader() Header {
	h := Header{
		Version: Version1,
		Flags:   FlagCapability | FlagAttack,
		Kind:    netsim.KindUDP,
		Src:     0x0a000001,
		Dst:     0x0a000002,
		Length:  1500,
		PathLen: 3,
		Cap:     capability.Capability{C0: 0x1122334455667788, C1: 0x99aabbccddeeff00, Slot: 7},
	}
	h.Path[0], h.Path[1], h.Path[2] = 64, 7, 1
	return h
}

func TestRoundTrip(t *testing.T) {
	cases := []Header{
		sampleHeader(),
		{Version: Version1, Kind: netsim.KindSYN, Src: 1, Dst: 2, Length: 40, PathLen: 0},
		{Version: Version1, Flags: FlagPriority, Kind: netsim.KindData, Length: 1, PathLen: MaxPathLen},
	}
	for i, h := range cases {
		buf, err := MarshalAppend(nil, &h)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		if len(buf) != h.EncodedLen() {
			t.Fatalf("case %d: encoded %d bytes, EncodedLen says %d", i, len(buf), h.EncodedLen())
		}
		var got Header
		n, err := Decode(buf, &got)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: decode consumed %d of %d", i, n, len(buf))
		}
		if got != h {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, h)
		}
	}
}

func TestStreamDecode(t *testing.T) {
	// Headers are self-delimiting: three back-to-back headers decode in
	// sequence from one buffer.
	hs := []Header{sampleHeader(), {Version: Version1, Kind: netsim.KindACK, Length: 40}, sampleHeader()}
	var buf []byte
	for i := range hs {
		var err error
		buf, err = MarshalAppend(buf, &hs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i := range hs {
		var got Header
		n, err := Decode(buf[off:], &got)
		if err != nil {
			t.Fatalf("header %d: %v", i, err)
		}
		if got != hs[i] {
			t.Fatalf("header %d mismatch", i)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d", off, len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := MarshalAppend(nil, &Header{Version: Version1, Kind: netsim.KindUDP, Length: 100, PathLen: 2, Path: [MaxPathLen]pathid.ASN{9, 1}})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(i int, v byte) []byte {
		b := append([]byte(nil), good...)
		b[i] = v
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated-fixed", good[:headerFixedLen-1], ErrShort},
		{"truncated-path", good[:len(good)-1], ErrShort},
		{"version", mut(0, 9), ErrVersion},
		{"flags", mut(1, 0x80), ErrFlags},
		{"kind-zero", mut(2, 0), ErrKind},
		{"kind-high", mut(2, 200), ErrKind},
		{"pathlen", mut(3, MaxPathLen+1), ErrPathLen},
		{"length", func() []byte { b := mut(12, 0); b[13] = 0; return b }(), ErrLength},
	}
	for _, tc := range cases {
		var h Header
		if _, err := Decode(tc.buf, &h); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestMarshalErrors(t *testing.T) {
	base := sampleHeader()
	cases := []struct {
		name string
		mod  func(*Header)
		want error
	}{
		{"version", func(h *Header) { h.Version = 0 }, ErrVersion},
		{"flags", func(h *Header) { h.Flags |= 1 << 7 }, ErrFlags},
		{"kind", func(h *Header) { h.Kind = 0 }, ErrKind},
		{"pathlen", func(h *Header) { h.PathLen = MaxPathLen + 1 }, ErrPathLen},
		{"length", func(h *Header) { h.Length = 0 }, ErrLength},
		{"slot", func(h *Header) { h.Cap.Slot = 256 }, ErrSlot},
	}
	for _, tc := range cases {
		h := base
		tc.mod(&h)
		if _, err := MarshalAppend(nil, &h); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestMarshalDecodeAllocationFree(t *testing.T) {
	h := sampleHeader()
	buf := make([]byte, 0, MaxEncodedLen)
	frame, err := MarshalAppend(buf, &h)
	if err != nil {
		t.Fatal(err)
	}
	var got Header
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := MarshalAppend(buf[:0], &h); err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(frame, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("marshal+decode allocates %v times per op, want 0", allocs)
	}
}

func TestPacketConversion(t *testing.T) {
	pkt := netsim.Packet{
		ID: 42, Src: 5, Dst: 6, Size: 1000, Kind: netsim.KindData,
		Path: pathid.New(3, 2, 1), Attack: true, Priority: true,
	}
	var h Header
	if err := FromPacket(&h, &pkt); err != nil {
		t.Fatal(err)
	}
	if h.Flags&FlagAttack == 0 || h.Flags&FlagPriority == 0 {
		t.Fatalf("flags not carried: %08b", h.Flags)
	}
	var back netsim.Packet
	in := NewInterner()
	id, key := in.Resolve(&h)
	h.ToPacket(&back, 42, id, key, 7)
	if back.Src != pkt.Src || back.Dst != pkt.Dst || back.Size != pkt.Size ||
		back.Kind != pkt.Kind || !back.Path.Equal(pkt.Path) ||
		back.PathKey != "3-2-1" || back.PathHandle != 7 || !back.Attack || !back.Priority {
		t.Fatalf("conversion mismatch: %+v", back)
	}

	// Oversized fields are rejected on the way out.
	long := netsim.Packet{Size: 100, Kind: netsim.KindUDP, Path: make(pathid.PathID, MaxPathLen+1)}
	if err := FromPacket(&h, &long); !errors.Is(err, ErrPathLen) {
		t.Fatalf("long path: err = %v", err)
	}
	big := netsim.Packet{Size: 1 << 17, Kind: netsim.KindUDP}
	if err := FromPacket(&h, &big); !errors.Is(err, ErrLength) {
		t.Fatalf("oversize packet: err = %v", err)
	}
}

func TestInternerCanonicalizes(t *testing.T) {
	in := NewInterner()
	h := sampleHeader()
	id1, key1 := in.Resolve(&h)
	id2, key2 := in.Resolve(&h)
	if &id1[0] != &id2[0] {
		t.Fatal("interner returned distinct PathID allocations for one path")
	}
	if key1 != "64-7-1" || key2 != key1 {
		t.Fatalf("keys: %q, %q", key1, key2)
	}
	if in.Len() != 1 {
		t.Fatalf("interner holds %d entries, want 1", in.Len())
	}
	h.Path[0] = 65
	if _, key := in.Resolve(&h); key != "65-7-1" {
		t.Fatalf("second path key %q", key)
	}
	if in.Len() != 2 {
		t.Fatalf("interner holds %d entries, want 2", in.Len())
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCaptureWriter(&buf)
	hs := []Header{sampleHeader(), {Version: Version1, Kind: netsim.KindSYN, Length: 40}}
	times := []float64{0.5, 1.25}
	for i := range hs {
		if err := cw.Write(times[i], &hs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Write(0.1, &hs[0]); err == nil {
		t.Fatal("time regression accepted")
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.Records() != 2 {
		t.Fatalf("records = %d", cw.Records())
	}

	cr := NewCaptureReader(&buf)
	for i := range hs {
		var h Header
		tm, err := cr.Next(&h)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if tm != times[i] || h != hs[i] {
			t.Fatalf("record %d mismatch: t=%v h=%+v", i, tm, h)
		}
	}
	if _, err := cr.Next(new(Header)); err != io.EOF {
		t.Fatalf("tail err = %v, want EOF", err)
	}
}

func TestCaptureReaderRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"t":1,"wire":"zz"}`, // bad hex
		`{"t":1,"wire":"01"}`, // short frame
		`not json`,            // bad line
		`{"t":1,"wire":"` + strings.Repeat("00", MaxEncodedLen+1) + `"}`, // oversized frame
	}
	for _, line := range cases {
		cr := NewCaptureReader(strings.NewReader(line + "\n"))
		if _, err := cr.Next(new(Header)); err == nil || err == io.EOF {
			t.Errorf("line %q: err = %v, want decode error", line, err)
		}
	}
	// Trailing garbage after a valid header on one line is rejected.
	frame, err := MarshalAppend(nil, &Header{Version: Version1, Kind: netsim.KindUDP, Length: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := `{"t":1,"wire":"` + hexString(frame) + `00"}`
	cr := NewCaptureReader(strings.NewReader(rec + "\n"))
	if _, err := cr.Next(new(Header)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func hexString(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(b))
	for _, v := range b {
		out = append(out, digits[v>>4], digits[v&0xf])
	}
	return string(out)
}

// TestInternerAtBound churns the interner past internerMax distinct
// paths: the table must stop growing at the bound while Resolve keeps
// returning correct identifiers via the per-call fallback, and paths
// interned before the bound stay canonical.
func TestInternerAtBound(t *testing.T) {
	if testing.Short() {
		t.Skip("fills a 1<<16-entry table")
	}
	in := NewInterner()
	h := Header{Version: Version1, Kind: netsim.KindUDP, Length: 100, PathLen: 3}
	h.Path[2] = 1
	for i := 0; i < internerMax; i++ {
		h.Path[0] = pathid.ASN(i >> 8)
		h.Path[1] = pathid.ASN(i & 0xff)
		in.Resolve(&h)
	}
	if in.Len() != internerMax {
		t.Fatalf("interner holds %d entries after %d distinct paths, want %d", in.Len(), internerMax, internerMax)
	}

	// Past the bound: fresh paths still resolve correctly but are not
	// remembered.
	h.Path[0], h.Path[1] = 999, 42
	id, key := in.Resolve(&h)
	if key != "999-42-1" || !id.Equal(pathid.New(999, 42, 1)) {
		t.Fatalf("overflow path resolved to id=%v key=%q", id, key)
	}
	if in.Len() != internerMax {
		t.Fatalf("interner grew past the bound to %d entries", in.Len())
	}
	id2, key2 := in.Resolve(&h)
	if key2 != key || !id2.Equal(id) {
		t.Fatalf("overflow path unstable across calls: %q vs %q", key2, key)
	}
	if &id2[0] == &id[0] {
		t.Fatal("overflow path was interned despite a full table")
	}

	// Paths interned before the bound are unaffected by the churn.
	h.Path[0], h.Path[1] = 0, 7
	c1, ck := in.Resolve(&h)
	c2, _ := in.Resolve(&h)
	if ck != "0-7-1" || &c1[0] != &c2[0] {
		t.Fatalf("pre-bound path lost canonical identity: key=%q", ck)
	}
}

// TestInternerReinternStable re-resolves one path many times: the table
// must not grow and every call must return the same canonical backing
// array and key.
func TestInternerReinternStable(t *testing.T) {
	in := NewInterner()
	h := sampleHeader()
	id0, key0 := in.Resolve(&h)
	for i := 0; i < 1000; i++ {
		id, key := in.Resolve(&h)
		if &id[0] != &id0[0] || key != key0 {
			t.Fatalf("iteration %d: re-intern returned a new identity", i)
		}
	}
	if in.Len() != 1 {
		t.Fatalf("re-interning one path grew the table to %d entries", in.Len())
	}
}

// TestCaptureReaderLenientCounts exercises SkipMalformed at the wire
// level: bad lines are skipped and counted under the right ErrorKind
// while surrounding good records still decode.
func TestCaptureReaderLenientCounts(t *testing.T) {
	frame, err := MarshalAppend(nil, &Header{Version: Version1, Kind: netsim.KindUDP, Length: 9})
	if err != nil {
		t.Fatal(err)
	}
	good := `{"t":1,"wire":"` + hexString(frame) + `"}`
	bad := []string{
		`not json`,            // ErrKindFraming
		`{"t":1,"wire":"zz"}`, // ErrKindFraming (bad hex)
		`{"t":1,"wire":"ff` + strings.Repeat("00", 13) + `"}`, // ErrKindVersion
		`{"t":1,"wire":"01"}`, // ErrKindShort
	}
	input := good + "\n" + strings.Join(bad, "\n") + "\n" + good + "\n"

	cr := NewCaptureReader(strings.NewReader(input))
	cr.SkipMalformed(true)
	var h Header
	n := 0
	for {
		if _, err := cr.Next(&h); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("lenient reader surfaced error: %v", err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d records, want 2", n)
	}
	if got := cr.Malformed(); got != int64(len(bad)) {
		t.Fatalf("Malformed() = %d, want %d", got, len(bad))
	}
	byKind := cr.MalformedByKind()
	if byKind[ErrKindFraming] != 2 || byKind[ErrKindVersion] != 1 || byKind[ErrKindShort] != 1 {
		t.Fatalf("per-kind counts %v", byKind)
	}
}
