// Control frames are the flocd-to-flocd control plane's wire form: a
// flooded downstream router pushes per-path rate limits upstream as
// congestion-feedback records (NetFence's observation that the policing
// feedback must travel in-band to reach the enforcement points), and the
// upstream daemon installs them ahead of admission. The codec follows the
// data-header discipline exactly: fixed-size arrays so Decode allocates
// nothing, strict validation of every field, typed sentinel errors, and
// fuzz-enforced decode–reencode identity (FuzzControlFrameDecode).
//
// A control frame leads with ControlVersion1 (0xF1), deliberately
// disjoint from the data header's version byte, so a frame misdelivered
// to the data port (or vice versa) fails fast on either codec instead of
// being half-understood.
//
// Layout (big-endian, lengths in bytes):
//
//	offset  size  field
//	0       1     version (ControlVersion1)
//	1       1     kind (1 = congestion feedback)
//	2       1     hops: remaining upstream propagation budget (0..8)
//	3       1     record count n (1..32)
//	4       4     origin router ID
//	8       8     sequence number (monotone per origin)
//	16      2     TTL in milliseconds (> 0): installed limits expire
//	              TTL after application unless refreshed
//	18      ...   n feedback records
//
// Feedback record:
//
//	offset  size  field
//	0       1     path length p (0..16; 0 = the synthetic unknown path)
//	1       4*p   path identifier, origin domain first
//	1+4*p   8     rate limit in bits/second (0 = release the limit)
package wire

import (
	"encoding/binary"

	"floc/internal/pathid"
	"floc/internal/units"
)

// ControlVersion1 is the only control-frame version this codec speaks.
// It shares no value with Version1: the two codecs must never accept
// each other's frames.
const ControlVersion1 = 0xF1

// ControlFeedback is the only defined control frame kind: a batch of
// congestion-feedback records.
const ControlFeedback = 1

// MaxFeedbackRecords bounds the records one frame can carry; a larger
// limit set is split across frames by the sender.
const MaxFeedbackRecords = 32

// MaxControlHops bounds the upstream propagation budget, so a routing
// loop among misconfigured peers cannot circulate a frame forever.
const MaxControlHops = 8

// Byte budgets of the control regions.
const (
	controlFixedLen      = 18                                                // bytes
	recordFixedLen       = 9                                                 // bytes (path length + limit)
	maxRecordLen         = recordFixedLen + 4*MaxPathLen                     // bytes
	MaxControlEncodedLen = controlFixedLen + MaxFeedbackRecords*maxRecordLen // bytes
)

// FeedbackRecord is one per-path rate-limit directive. The path lives in
// a fixed-size array (like Header.Path) so decoding allocates nothing; a
// zero LimitBits releases any installed limit for the path.
type FeedbackRecord struct {
	PathLen   uint8
	Path      [MaxPathLen]pathid.ASN
	LimitBits uint64 //floc:unit bits/s
}

// SetPath copies a path identifier into the record's fixed array.
func (r *FeedbackRecord) SetPath(path pathid.PathID) error {
	if len(path) > MaxPathLen {
		return errRange(ErrPathLen, len(path), MaxPathLen)
	}
	r.PathLen = uint8(len(path))
	r.Path = [MaxPathLen]pathid.ASN{}
	copy(r.Path[:], path)
	return nil
}

// PathID returns a freshly allocated path identifier for the record.
func (r *FeedbackRecord) PathID() pathid.PathID {
	return pathid.New(r.Path[:r.PathLen]...)
}

// Limit returns the record's rate limit as a typed quantity.
func (r *FeedbackRecord) Limit() units.BitsPerSec {
	return units.BitsPerSec(r.LimitBits)
}

// ControlFrame is the decoded control frame. Records live in a fixed-size
// array so decoding allocates nothing; NumRecords says how many leading
// entries are valid. The struct is comparable, so tests can assert
// decode–reencode identity with ==.
type ControlFrame struct {
	Version   uint8
	Kind      uint8
	Hops      uint8
	Origin    uint32 // router ID of the advertising daemon
	Seq       uint64 // monotone per origin; stale sequences are never applied
	TTLMillis uint16 // limit lifetime in milliseconds after application

	NumRecords uint8
	Records    [MaxFeedbackRecords]FeedbackRecord
}

// TTL returns the frame's limit lifetime as seconds.
// floc:unit return seconds
func (f *ControlFrame) TTL() float64 { return float64(f.TTLMillis) / 1000 }

// ControlEncodedLen returns the exact number of bytes
// MarshalControlAppend would write.
// floc:hotpath
func (f *ControlFrame) ControlEncodedLen() int {
	n := controlFixedLen
	for i := 0; i < int(f.NumRecords); i++ {
		n += recordFixedLen + 4*int(f.Records[i].PathLen)
	}
	return n
}

// validateControl checks the frame's encodable range; shared by
// MarshalControlAppend (reject before writing) and DecodeControl (reject
// foreign input).
// floc:hotpath
// floc:sanitizes
func validateControl(f *ControlFrame) error {
	if f.Version != ControlVersion1 {
		return errValue(ErrVersion, int(f.Version))
	}
	if f.Kind != ControlFeedback {
		return errValue(ErrKind, int(f.Kind))
	}
	if f.Hops > MaxControlHops {
		return errRange(ErrHops, int(f.Hops), MaxControlHops)
	}
	if f.NumRecords == 0 || int(f.NumRecords) > MaxFeedbackRecords {
		return errRange(ErrCount, int(f.NumRecords), MaxFeedbackRecords)
	}
	if f.TTLMillis == 0 {
		return errZeroTTL()
	}
	return nil
}

// checkRecordPathLen range-checks one on-wire record path length; the
// per-record walk must not trust it as a loop bound before this.
// floc:hotpath
// floc:sanitizes
func checkRecordPathLen(p int) error {
	if p > MaxPathLen {
		return errRange(ErrPathLen, p, MaxPathLen)
	}
	return nil
}

// MarshalControlAppend appends the encoded frame to dst and returns the
// extended slice. It does not allocate when dst has spare capacity
// (allocate once with make([]byte, 0, wire.MaxControlEncodedLen) and
// reuse).
// floc:hotpath
func MarshalControlAppend(dst []byte, f *ControlFrame) ([]byte, error) {
	if err := validateControl(f); err != nil {
		return dst, err
	}
	for i := 0; i < int(f.NumRecords); i++ {
		if int(f.Records[i].PathLen) > MaxPathLen {
			return dst, errRange(ErrPathLen, int(f.Records[i].PathLen), MaxPathLen)
		}
	}
	dst = append(dst, f.Version, f.Kind, f.Hops, f.NumRecords)
	dst = binary.BigEndian.AppendUint32(dst, f.Origin)
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint16(dst, f.TTLMillis)
	for i := 0; i < int(f.NumRecords); i++ {
		r := &f.Records[i]
		dst = append(dst, r.PathLen)
		for j := 0; j < int(r.PathLen); j++ {
			dst = binary.BigEndian.AppendUint32(dst, uint32(r.Path[j]))
		}
		dst = binary.BigEndian.AppendUint64(dst, r.LimitBits)
	}
	return dst, nil
}

// DecodeControl parses one control frame from the front of buf into f and
// returns the number of bytes consumed. On error it returns 0 and leaves
// f in an unspecified state; it never panics and never retains buf.
// Trailing bytes are the caller's concern (a control datagram carries
// exactly one frame).
//
// DecodeControl is the validation boundary for control-channel bytes: buf
// is peer-controlled (and a peer may itself be fed by an attacker) until
// every field is range-checked.
//
// floc:hotpath
// floc:untrusted buf
// floc:sanitizes
func DecodeControl(buf []byte, f *ControlFrame) (int, error) {
	if len(buf) < controlFixedLen {
		return 0, errShort(len(buf), controlFixedLen)
	}
	*f = ControlFrame{
		Version:    buf[0],
		Kind:       buf[1],
		Hops:       buf[2],
		NumRecords: buf[3],
		Origin:     binary.BigEndian.Uint32(buf[4:8]),
		Seq:        binary.BigEndian.Uint64(buf[8:16]),
		TTLMillis:  binary.BigEndian.Uint16(buf[16:18]),
	}
	// Validate before trusting NumRecords to size the remainder of the
	// walk; per-record path lengths are checked as they are reached.
	if err := validateControl(f); err != nil {
		return 0, err
	}
	n := controlFixedLen
	for i := 0; i < int(f.NumRecords); i++ {
		if len(buf) < n+1 {
			return 0, errShort(len(buf), n+1)
		}
		p := int(buf[n])
		if err := checkRecordPathLen(p); err != nil {
			return 0, err
		}
		need := n + recordFixedLen + 4*p
		if len(buf) < need {
			return 0, errShort(len(buf), need)
		}
		r := &f.Records[i]
		r.PathLen = uint8(p)
		n++
		for j := 0; j < p; j++ {
			r.Path[j] = pathid.ASN(binary.BigEndian.Uint32(buf[n : n+4]))
			n += 4
		}
		r.LimitBits = binary.BigEndian.Uint64(buf[n : n+8])
		n += 8
	}
	return n, nil
}
