// Package tokenbucket implements FLoc's per-path-identifier token bucket
// (paper Section IV-A).
//
// Unlike a classical leaky bucket, FLoc's bucket is *periodic*: N tokens
// are generated at the start of each period T and any unused tokens of the
// previous period are removed. Requests within a period may be arbitrarily
// bursty; the aggregate only runs out of tokens if it requests more than N
// in one period. This shape matches the drop pattern the TCP model needs —
// at most the budgeted number of drops per period, spread one per period
// under the ideal unsynchronized model.
package tokenbucket

import (
	"fmt"

	"floc/internal/invariant"
)

// Bucket is a periodic token bucket. It is not safe for concurrent use.
type Bucket struct {
	period float64 //floc:unit seconds
	size   float64 //floc:unit tokens

	tokens      float64 //floc:unit tokens
	periodStart float64 //floc:unit seconds
	started     bool

	// Per-period measurement counters, reset on each refill.
	requested float64 //floc:unit tokens
	denied    float64 //floc:unit tokens

	// Cumulative counters since creation or last ResetStats.
	totalRequested float64 //floc:unit tokens
	totalGranted   float64 //floc:unit tokens
	totalDenied    float64 //floc:unit tokens
	totalPeriods   int
}

// New returns a bucket generating size tokens every period seconds.
// floc:unit period seconds
// floc:unit size tokens
func New(period, size float64) (*Bucket, error) {
	b := &Bucket{}
	if err := b.SetParams(period, size); err != nil {
		return nil, err
	}
	return b, nil
}

// SetParams reconfigures the bucket. The new parameters take effect at the
// next period rollover; the current period's remaining tokens are clamped
// to the new size.
// floc:unit period seconds
// floc:unit size tokens
// floc:coldpath reconfiguration happens at mode flips and control-run recomputation
func (b *Bucket) SetParams(period, size float64) error {
	if period <= 0 {
		return fmt.Errorf("tokenbucket: non-positive period %v", period)
	}
	if size <= 0 {
		return fmt.Errorf("tokenbucket: non-positive size %v", size)
	}
	b.period = period
	b.size = size
	if b.tokens > size {
		b.tokens = size
	}
	return nil
}

// Period returns the configured token generation period.
// floc:unit return seconds
func (b *Bucket) Period() float64 { return b.period }

// Size returns the configured tokens per period.
// floc:unit return tokens
func (b *Bucket) Size() float64 { return b.size }

// advance rolls the bucket forward to now, refilling at period boundaries.
// The guard is kept tiny and inlineable: in the steady state (many takes
// per period) it is one subtraction and one compare, so a caller issuing
// a burst of takes at the same timestamp pays the refill logic at most
// once. `now-periodStart < period` also covers stale calls (now before
// periodStart makes the difference negative), exactly like the two early
// returns the slow path retains.
// floc:unit now seconds
// floc:hotpath
func (b *Bucket) advance(now float64) {
	if b.started && now-b.periodStart < b.period {
		return
	}
	b.advanceSlow(now)
}

// advanceSlow initializes the bucket on first use and performs period
// rollovers.
// floc:unit now seconds
// floc:coldpath runs at most once per period boundary, not per take
func (b *Bucket) advanceSlow(now float64) {
	if !b.started {
		b.started = true
		b.periodStart = now
		b.tokens = b.size
		b.totalPeriods = 1
		return
	}
	if now < b.periodStart {
		return // time cannot go backwards; ignore stale calls
	}
	elapsed := now - b.periodStart
	if elapsed < b.period {
		return
	}
	periods := int(elapsed / b.period)
	b.periodStart += float64(periods) * b.period
	// Once per period rollover: the bucket must leave the old period with
	// a sane ledger before refilling.
	invariant.NonNegative("tokenbucket.tokens", b.tokens)
	invariant.InRange("tokenbucket.tokens", b.tokens, 0, b.size)
	b.tokens = b.size // unused tokens of previous periods are discarded
	b.totalPeriods += periods
	b.requested = 0
	b.denied = 0
}

// Take requests n tokens at time now. It returns true and consumes the
// tokens if the current period still has n available, false otherwise
// (consuming nothing).
// floc:unit now seconds
// floc:unit n tokens
// floc:hotpath
func (b *Bucket) Take(now, n float64) bool {
	b.advance(now)
	b.requested += n
	b.totalRequested += n
	granted := b.tokens >= n
	if granted {
		b.tokens -= n
		b.totalGranted += n
	} else {
		b.denied += n
		b.totalDenied += n
	}
	if invariant.Hot {
		// Token conservation (Eqs. IV.1-IV.3): every requested token is
		// either granted or denied, and granting never overdraws the bucket.
		invariant.TokensConserved("tokenbucket.ledger",
			b.totalRequested, b.totalGranted, b.totalDenied)
		invariant.NonNegative("tokenbucket.tokens", b.tokens)
	}
	return granted
}

// Available returns the tokens remaining in the period containing now.
// floc:unit now seconds
// floc:unit return tokens
func (b *Bucket) Available(now float64) float64 {
	b.advance(now)
	return b.tokens
}

// PeriodRequested returns the tokens requested so far in the current
// period (after advancing to now).
// floc:unit now seconds
// floc:unit return tokens
func (b *Bucket) PeriodRequested(now float64) float64 {
	b.advance(now)
	return b.requested
}

// Stats returns cumulative request/denial counts and the number of periods
// elapsed since creation (or ResetStats).
// floc:unit requested tokens
// floc:unit denied tokens
func (b *Bucket) Stats() (requested, denied float64, periods int) {
	return b.totalRequested, b.totalDenied, b.totalPeriods
}

// TotalGranted returns the cumulative tokens granted since creation (or
// ResetStats), completing the requested = granted + denied ledger for
// telemetry.
// floc:unit return tokens
func (b *Bucket) TotalGranted() float64 { return b.totalGranted }

// ResetStats zeroes the cumulative counters, e.g. at the start of a
// measurement interval.
func (b *Bucket) ResetStats() {
	b.totalRequested = 0
	b.totalGranted = 0
	b.totalDenied = 0
	b.totalPeriods = 0
	if b.started {
		b.totalPeriods = 1
	}
}

// Rate returns the long-run admitted rate implied by the configuration:
// size/period tokens per second.
// floc:unit return tokens/s
func (b *Bucket) Rate() float64 { return b.size / b.period }
