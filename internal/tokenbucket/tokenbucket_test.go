package tokenbucket

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, period, size float64) *Bucket {
	t.Helper()
	b, err := New(period, size)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ period, size float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -5},
	} {
		if _, err := New(tc.period, tc.size); err == nil {
			t.Errorf("New(%v, %v) accepted", tc.period, tc.size)
		}
	}
}

func TestTakeWithinPeriod(t *testing.T) {
	b := mustNew(t, 1.0, 10)
	for i := 0; i < 10; i++ {
		if !b.Take(0.5, 1) {
			t.Fatalf("take %d denied with tokens available", i)
		}
	}
	if b.Take(0.9, 1) {
		t.Fatal("11th take in one period admitted")
	}
	if got := b.Available(0.95); got != 0 {
		t.Fatalf("Available = %v", got)
	}
}

func TestPeriodRefillDiscardsUnused(t *testing.T) {
	b := mustNew(t, 1.0, 10)
	b.Take(0, 3) // 7 left
	// After rollover, exactly size tokens again — unused 7 do not carry.
	if got := b.Available(1.0); got != 10 {
		t.Fatalf("Available after rollover = %v, want 10", got)
	}
	// Burst of the full budget succeeds right at period start.
	if !b.Take(1.0, 10) {
		t.Fatal("full-size burst denied at period start")
	}
}

func TestMultiplePeriodsSkipped(t *testing.T) {
	b := mustNew(t, 0.5, 4)
	b.Take(0, 4)
	if b.Take(0.1, 1) {
		t.Fatal("over-budget take admitted")
	}
	// Jump 10 periods ahead.
	if !b.Take(5.0, 4) {
		t.Fatal("take after long idle denied")
	}
	_, _, periods := b.Stats()
	if periods != 11 {
		t.Fatalf("periods = %d, want 11", periods)
	}
}

func TestTimeGoingBackwardsIgnored(t *testing.T) {
	b := mustNew(t, 1.0, 5)
	b.Take(10, 5)
	if b.Take(9, 1) {
		t.Fatal("stale-time take refilled the bucket")
	}
}

func TestSetParams(t *testing.T) {
	b := mustNew(t, 1.0, 10)
	b.Take(0, 2) // 8 left
	if err := b.SetParams(1.0, 5); err != nil {
		t.Fatal(err)
	}
	// Remaining tokens clamped to the new, smaller size.
	if got := b.Available(0.5); got != 5 {
		t.Fatalf("Available after shrink = %v, want 5", got)
	}
	if err := b.SetParams(0, 5); err == nil {
		t.Fatal("bad period accepted")
	}
	if err := b.SetParams(1, -1); err == nil {
		t.Fatal("bad size accepted")
	}
	if b.Period() != 1.0 || b.Size() != 5 {
		t.Fatal("failed SetParams mutated state")
	}
}

func TestRate(t *testing.T) {
	b := mustNew(t, 0.25, 10)
	if got := b.Rate(); got != 40 {
		t.Fatalf("Rate = %v", got)
	}
}

func TestStatsAndReset(t *testing.T) {
	b := mustNew(t, 1.0, 2)
	b.Take(0, 1)
	b.Take(0, 1)
	b.Take(0, 1) // denied
	req, den, _ := b.Stats()
	if req != 3 || den != 1 {
		t.Fatalf("Stats = (%v, %v)", req, den)
	}
	b.ResetStats()
	req, den, periods := b.Stats()
	if req != 0 || den != 0 || periods != 1 {
		t.Fatalf("after reset: (%v, %v, %d)", req, den, periods)
	}
}

func TestPeriodRequested(t *testing.T) {
	b := mustNew(t, 1.0, 5)
	b.Take(0.1, 2)
	b.Take(0.2, 4) // denied, still counted as requested
	if got := b.PeriodRequested(0.3); got != 6 {
		t.Fatalf("PeriodRequested = %v", got)
	}
	if got := b.PeriodRequested(1.1); got != 0 {
		t.Fatalf("PeriodRequested after rollover = %v", got)
	}
}

// Property: over k whole periods, the number of admitted unit-tokens never
// exceeds k*size, no matter the request pattern.
func TestAdmissionBoundedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		const period, size = 1.0, 7.0
		b, err := New(period, size)
		if err != nil {
			return false
		}
		admitted := 0
		maxT := 0.0
		for _, raw := range times {
			tm := float64(raw) / 1000.0 // 0 .. 65.5 seconds, non-monotone ok
			if tm > maxT {
				maxT = tm
			}
			if b.Take(tm, 1) {
				admitted++
			}
		}
		periods := int(maxT/period) + 1
		return float64(admitted) <= float64(periods)*size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionalTokens(t *testing.T) {
	b := mustNew(t, 1.0, 1.5)
	if !b.Take(0, 1.5) {
		t.Fatal("fractional full take denied")
	}
	if b.Take(0.1, 0.1) {
		t.Fatal("empty bucket admitted fractional take")
	}
}
