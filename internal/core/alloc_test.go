package core

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// TestZeroAllocEnqueueBatch gates the router's steady-state admission
// path: once a path and its flow exist, running packets through
// EnqueueBatch (and draining the output queue) must not allocate. This is
// the dynamic counterpart of floclint's hotpath rule on Enqueue — the
// rule bans the constructs, this proves the escape analysis agrees.
func TestZeroAllocEnqueueBatch(t *testing.T) {
	r, err := NewRouter(DefaultConfig(1e9, 1024))
	if err != nil {
		t.Fatal(err)
	}
	path := pathid.New(7, 3, 1)
	key := path.Key()
	const now = 1.0

	items := make([]BatchItem, 8)
	pkts := make([]netsim.Packet, len(items))
	for i := range items {
		pkts[i] = netsim.Packet{
			ID: uint64(i), Src: 1, Dst: 2, Size: 1000,
			Kind: netsim.KindUDP, Path: path, PathKey: key,
		}
		items[i] = BatchItem{Pkt: &pkts[i], At: now}
	}

	// Warm up: first control run, path-state and flow-state creation, and
	// FIFO buffer growth all happen here, off the measured region.
	for i := 0; i < 64; i++ {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}

	if avg := testing.AllocsPerRun(100, func() {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}); avg != 0 {
		t.Fatalf("EnqueueBatch steady state allocates %.1f times per op, want 0", avg)
	}
}
