package core

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// TestZeroAllocEnqueueBatch gates the router's steady-state admission
// path: once a path and its flow exist, running packets through
// EnqueueBatch (and draining the output queue) must not allocate. This is
// the dynamic counterpart of floclint's hotpath rule on Enqueue — the
// rule bans the constructs, this proves the escape analysis agrees.
func TestZeroAllocEnqueueBatch(t *testing.T) {
	r, err := NewRouter(DefaultConfig(1e9, 1024))
	if err != nil {
		t.Fatal(err)
	}
	path := pathid.New(7, 3, 1)
	key := path.Key()
	const now = 1.0

	items := make([]BatchItem, 8)
	pkts := make([]netsim.Packet, len(items))
	for i := range items {
		pkts[i] = netsim.Packet{
			ID: uint64(i), Src: 1, Dst: 2, Size: 1000,
			Kind: netsim.KindUDP, Path: path, PathKey: key,
		}
		items[i] = BatchItem{Pkt: &pkts[i], At: now}
	}

	// Warm up: first control run, path-state and flow-state creation, and
	// FIFO buffer growth all happen here, off the measured region.
	for i := 0; i < 64; i++ {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}

	if avg := testing.AllocsPerRun(100, func() {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}); avg != 0 {
		t.Fatalf("EnqueueBatch steady state allocates %.1f times per op, want 0", avg)
	}
}

// TestZeroAllocEnqueueHandles gates the dense-handle admission path: with
// PathHandle stamped and enough distinct paths to defeat the last-key
// memo, steady state must resolve origins through the open-addressed
// path table and flows through the open-addressed flow table without a
// single allocation.
func TestZeroAllocEnqueueHandles(t *testing.T) {
	r, err := NewRouter(DefaultConfig(1e9, 1024))
	if err != nil {
		t.Fatal(err)
	}
	const nPaths = 16
	items := make([]BatchItem, nPaths)
	pkts := make([]netsim.Packet, nPaths)
	const now = 1.0
	for i := range items {
		path := pathid.New(pathid.ASN(100+i), 3, 1)
		pkts[i] = netsim.Packet{
			ID: uint64(i), Src: uint32(i), Dst: 2, Size: 1000,
			Kind: netsim.KindUDP, Path: path, PathKey: path.Key(),
			PathHandle: r.InternPath(path),
		}
		items[i] = BatchItem{Pkt: &pkts[i], At: now}
	}
	for i := 0; i < 64; i++ {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}); avg != 0 {
		t.Fatalf("handle-stamped steady state allocates %.1f times per op, want 0", avg)
	}
}

// TestZeroAllocCapabilitySlots gates the capability-mode accounting path:
// once a flow's slot is cached, acctKey must cost exactly one FlowHash —
// the slot table returns the cached slot and pre-salted hash with no
// allocation and no second hash.
func TestZeroAllocCapabilitySlots(t *testing.T) {
	cfg := DefaultConfig(1e9, 1024)
	cfg.NMax = 4
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := pathid.New(7, 3, 1)
	key := path.Key()
	handle := r.InternPath(path)
	const now = 1.0
	items := make([]BatchItem, 8)
	pkts := make([]netsim.Packet, len(items))
	for i := range items {
		pkts[i] = netsim.Packet{
			ID: uint64(i), Src: uint32(i % 4), Dst: uint32(1000 + i), Size: 1000,
			Kind: netsim.KindUDP, Path: path, PathKey: key, PathHandle: handle,
		}
		items[i] = BatchItem{Pkt: &pkts[i], At: now}
	}
	// Warm up: capability issue and slot-cache fill happen here.
	for i := 0; i < 64; i++ {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		r.EnqueueBatch(items)
		for r.Dequeue(now) != nil {
		}
	}); avg != 0 {
		t.Fatalf("capability-mode steady state allocates %.1f times per op, want 0", avg)
	}
}
