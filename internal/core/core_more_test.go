package core

import (
	"strings"
	"testing"
	"testing/quick"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// TestEstimateFlowsModeRoughlyTracks exercises the scalable flow-count
// estimator of Section V-B.1 (EstimateFlows): under a steady load whose
// drop ratio matches the TCP model, the estimated count should be within
// a small factor of the exact per-flow tracking.
func TestEstimateFlowsModeRoughlyTracks(t *testing.T) {
	exact := newTestRouter(t, nil)
	est := newTestRouter(t, func(c *Config) { c.EstimateFlows = true })
	path := pathid.New(7, 1)
	for _, r := range []*Router{exact, est} {
		d := &driver{r: r}
		for i := 0; i < 4000; i++ {
			var pkts []*netsim.Packet
			// 4 flows, 300 pkt/s each: path over-subscribes its 500
			// alloc so drops occur and the estimator has signal.
			for f := 0; f < 4; f++ {
				if i%2 == 0 {
					pkts = append(pkts, mkpkt(uint32(10+f), 2, 1000, path))
				}
				pkts = append(pkts, mkpkt(uint32(10+f), 2, 1000, path))
			}
			d.step(0.005, pkts, 5)
		}
	}
	// Both routers must at least have produced sane token parameters.
	for name, r := range map[string]*Router{"exact": exact, "estimate": est} {
		infos := r.PathInfos()
		if len(infos) != 1 {
			t.Fatalf("%s: paths = %d", name, len(infos))
		}
		if infos[0].Period <= 0 || infos[0].Bucket <= 0 {
			t.Fatalf("%s: degenerate params %+v", name, infos[0])
		}
	}
}

// TestProbabilisticUpdateStillSeparates verifies the sampled filter
// updates of Section V-B.4 preserve attack identification.
func TestProbabilisticUpdateStillSeparates(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.ProbabilisticUpdate = true })
	d := &driver{r: r}
	path := pathid.New(7, 1)
	other := pathid.New(8, 1)
	for i := 0; i < 4000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 16; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path))
		}
		pkts = append(pkts, mkpkt(3, 2, 1000, other))
		d.step(0.005, pkts, 10)
	}
	var info *PathInfo
	for i := range r.PathInfos() {
		p := r.PathInfos()[i]
		if p.Key == path.Key() {
			info = &p
		}
	}
	if info == nil || !info.Attack {
		t.Fatalf("attack path not flagged under probabilistic updates: %+v", info)
	}
	if info.AttackFlows == 0 {
		t.Fatal("hog flow not identified under probabilistic updates")
	}
}

// TestFilterKMode checks that restricting attack-path flows to k filter
// arrays (Section V-B.5) keeps identification working.
func TestFilterKMode(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.FilterK = 2 })
	d := &driver{r: r}
	path := pathid.New(7, 1)
	for i := 0; i < 4000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 16; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path))
		}
		d.step(0.005, pkts, 10)
	}
	infos := r.PathInfos()
	if len(infos) != 1 || !infos[0].Attack {
		t.Fatalf("attack path not flagged with FilterK=2: %+v", infos)
	}
}

// TestPacketConservation: every enqueued packet is either admitted (and
// eventually dequeued) or counted in exactly one drop bucket.
func TestPacketConservation(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	sent := 0
	dequeued := 0
	for i := 0; i < 3000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 8; j++ {
			pkts = append(pkts, mkpkt(uint32(j%3), 2, 1000, path))
			sent++
		}
		d.now += 0.005
		for _, pkt := range pkts {
			d.r.Enqueue(pkt, d.now)
		}
		for j := 0; j < 5; j++ {
			if d.r.Dequeue(d.now) != nil {
				dequeued++
			}
		}
	}
	// Drain the queue.
	for d.r.Dequeue(d.now) != nil {
		dequeued++
	}
	if got := int64(dequeued) + r.TotalDrops(); got != int64(sent) {
		t.Fatalf("conservation: sent %d, dequeued+dropped %d", sent, got)
	}
	if int64(dequeued) != r.Admitted() {
		t.Fatalf("admitted %d != dequeued %d", r.Admitted(), dequeued)
	}
}

// TestAggregatesStableAcrossControls: once formed, an unchanged attack
// population keeps the same aggregate (no plan churn).
func TestAggregatesStableAcrossControls(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.SMax = 4 })
	d := &driver{r: r}
	legit := []pathid.PathID{pathid.New(11, 1), pathid.New(12, 1), pathid.New(13, 1)}
	attack := []pathid.PathID{pathid.New(31, 20, 3), pathid.New(32, 20, 3), pathid.New(33, 20, 3)}
	var lastAggs string
	stableSince := -1
	for i := 0; i < 8000; i++ {
		var pkts []*netsim.Packet
		for j, p := range legit {
			if i%10 == 0 {
				pkts = append(pkts, mkpkt(uint32(100+j), 2, 1000, p))
			}
		}
		for j, p := range attack {
			for k := 0; k < 4; k++ {
				pkts = append(pkts, mkpkt(uint32(200+j), 2, 1000, p))
			}
		}
		d.step(0.005, pkts, 5)
		if i%200 == 0 && i > 4000 {
			sig := ""
			for k, members := range r.Aggregates() {
				sig += k + ":"
				for _, m := range members {
					sig += m + ","
				}
			}
			if sig != lastAggs {
				lastAggs = sig
				stableSince = i
			}
		}
	}
	if lastAggs == "" {
		t.Fatal("no aggregates formed")
	}
	if stableSince > 6000 {
		t.Fatalf("aggregation plan still churning at step %d", stableSince)
	}
}

// TestCovertSlotsAcrossPaths: n_max collapses per (source, slot) even
// when destinations differ, but distinct sources never share accounting
// identities.
func TestCovertSlotsAcrossPaths(t *testing.T) {
	r := newTestRouter(t, func(c *Config) { c.NMax = 2 })
	d := &driver{r: r}
	path := pathid.New(7, 1)
	for i := 0; i < 500; i++ {
		var pkts []*netsim.Packet
		for src := uint32(1); src <= 3; src++ {
			for dst := uint32(50); dst < 60; dst++ {
				pkts = append(pkts, mkpkt(src, dst, 1000, path))
			}
		}
		d.step(0.01, pkts, 20)
	}
	infos := r.PathInfos()
	if len(infos) != 1 {
		t.Fatalf("paths = %d", len(infos))
	}
	// 3 sources x at most 2 slots each.
	if infos[0].Flows > 6 {
		t.Fatalf("accounting flows = %d, want <= 6", infos[0].Flows)
	}
	if infos[0].Flows < 3 {
		t.Fatalf("accounting flows = %d: sources collapsed together", infos[0].Flows)
	}
}

// TestSYNPacketsNotPreferentiallyDropped: connection attempts must pass
// even on attack paths (otherwise misidentified flows could never
// reconnect).
func TestSYNPacketsNotPreferentiallyDropped(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	// Flood to flag the path.
	for i := 0; i < 2000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 16; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path))
		}
		d.step(0.005, pkts, 10)
	}
	// Now a fresh SYN on the attack path at an uncongested moment.
	for d.r.Dequeue(d.now) != nil {
	}
	syn := &netsim.Packet{Src: 9, Dst: 2, Size: 40, Kind: netsim.KindSYN, Path: path}
	d.now += 0.001
	if !r.Enqueue(syn, d.now) {
		t.Fatal("SYN dropped on idle queue")
	}
}

// TestRouterManyPathsScale is a smoke test that per-path state stays
// bounded with hundreds of paths.
func TestRouterManyPathsScale(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	for i := 0; i < 300; i++ {
		var pkts []*netsim.Packet
		for p := 0; p < 200; p++ {
			path := pathid.New(pathid.ASN(1000+p), pathid.ASN(p%10), 1)
			pkts = append(pkts, mkpkt(uint32(p), 2, 1000, path))
		}
		d.step(0.02, pkts, 130)
	}
	if got := len(r.PathInfos()); got != 200 {
		t.Fatalf("paths = %d, want 200", got)
	}
	if r.GuaranteedPathCount() != 200 {
		t.Fatalf("guaranteed = %d", r.GuaranteedPathCount())
	}
}

func TestDistinctDroppedFlows(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	// One hog (absorbing drops) plus idle-ish legit flows: the distinct
	// dropped-flow count should stay near 1 while the model, fed the
	// path's allocation and window, expects more.
	for i := 0; i < 3000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 12; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path))
		}
		if i%20 == 0 {
			pkts = append(pkts, mkpkt(2, 2, 1000, path), mkpkt(3, 2, 1000, path))
		}
		d.step(0.005, pkts, 8)
	}
	distinct, est := r.DistinctDroppedFlows(path.Key(), d.now)
	if distinct < 1 {
		t.Fatal("hog has no drop record")
	}
	if est <= 0 {
		t.Fatalf("model estimate = %v", est)
	}
	if distinct > 2 {
		t.Fatalf("distinct dropped flows = %d, want the hog (plus at most one)", distinct)
	}
	// Unknown path.
	if got, _ := r.DistinctDroppedFlows("nope", d.now); got != 0 {
		t.Fatalf("unknown path distinct = %d", got)
	}
}

func TestSnapshotReport(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	hog := pathid.New(7, 1)
	legit := pathid.New(8, 1)
	for i := 0; i < 2000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 16; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, hog))
		}
		pkts = append(pkts, mkpkt(2, 2, 1000, legit))
		d.step(0.005, pkts, 10)
	}
	snap := r.Snapshot()
	if snap.GuaranteedPaths != 2 || len(snap.Paths) != 2 {
		t.Fatalf("snapshot paths: %d / %d", snap.GuaranteedPaths, len(snap.Paths))
	}
	if snap.Admitted == 0 {
		t.Fatal("no admissions recorded")
	}
	total := int64(0)
	for _, v := range snap.Drops {
		total += v
	}
	if total != r.TotalDrops() {
		t.Fatalf("snapshot drops %d != %d", total, r.TotalDrops())
	}
	if snap.FilterMemoryBytes == 0 || snap.ControlRuns == 0 {
		t.Fatal("filter/control fields empty")
	}
	out := snap.String()
	for _, want := range []string{"FLoc router:", "7-1", "8-1", "preferential", "[A]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRouterNeverPanicsOnArbitraryStreams is a property-style robustness
// test: random packet streams (random sources, destinations, sizes,
// kinds, paths, times) must never panic the router and must preserve
// packet conservation.
func TestRouterNeverPanicsOnArbitraryStreams(t *testing.T) {
	f := func(ops []struct {
		Src, Dst uint16
		Size     uint16
		Kind     uint8
		PathA    uint8
		PathB    uint8
		Dt       uint16
	}) bool {
		r := newTestRouter(t, nil)
		now := 0.0
		sent, dequeued := 0, 0
		for _, op := range ops {
			now += float64(op.Dt) / 1e4
			pkt := &netsim.Packet{
				Src:  uint32(op.Src),
				Dst:  uint32(op.Dst),
				Size: int(op.Size%1500) + 40,
				Kind: netsim.PacketKind(op.Kind%5 + 1),
				Path: pathid.New(pathid.ASN(op.PathA%8)+1, pathid.ASN(op.PathB%4)+1),
			}
			r.Enqueue(pkt, now)
			sent++
			if op.Dt%3 == 0 {
				if r.Dequeue(now) != nil {
					dequeued++
				}
			}
		}
		for r.Dequeue(now) != nil {
			dequeued++
		}
		return int64(dequeued)+r.TotalDrops() == int64(sent) &&
			int64(dequeued) == r.Admitted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDropReasonNamesComplete(t *testing.T) {
	for r := DropReason(0); r < numDropReasons; r++ {
		if dropReasonNames[r] == "" {
			t.Fatalf("drop reason %d has no name", r)
		}
	}
	if len(dropReasonNames) != int(numDropReasons) {
		t.Fatalf("dropReasonNames has %d entries, want %d", len(dropReasonNames), numDropReasons)
	}
}

func TestLargePacketsNotStarvedByTinyBuckets(t *testing.T) {
	// Many flows shrink a path's per-period bucket below the cost of a
	// full 1500-byte packet (1.5 tokens); the bucket must stretch its
	// period instead of permanently rejecting such packets.
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	other := pathid.New(8, 1)
	admitted1500 := 0
	for i := 0; i < 6000; i++ {
		var pkts []*netsim.Packet
		// 30 flows of 1500-byte packets on one path, plus background
		// load keeping the router congested.
		for f := 0; f < 30; f++ {
			if i%10 == f%10 {
				pkts = append(pkts, mkpkt(uint32(100+f), 2, 1500, path))
			}
		}
		for j := 0; j < 8; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, other))
		}
		d.now += 0.005
		for _, pkt := range pkts {
			if d.r.Enqueue(pkt, d.now) && pkt.Size == 1500 {
				admitted1500++
			}
		}
		for j := 0; j < 7; j++ {
			d.r.Dequeue(d.now)
		}
	}
	if admitted1500 < 500 {
		t.Fatalf("1500-byte packets starved: %d admitted", admitted1500)
	}
}

func TestNormalizeBucket(t *testing.T) {
	p, sz := normalizeBucket(0.01, 0.5)
	if sz != 2 || p != 0.04 {
		t.Fatalf("normalizeBucket(0.01, 0.5) = (%v, %v)", p, sz)
	}
	// Rate preserved.
	if got := sz / p; got != 0.5/0.01 {
		t.Fatalf("rate changed: %v", got)
	}
	p, sz = normalizeBucket(0.01, 10)
	if sz != 10 || p != 0.01 {
		t.Fatal("large buckets must pass through")
	}
}

// TestTwoRoutersInSeries drives two FLoc routers back to back (the
// paper's model assumes one common bottleneck; a deployment will have
// several). The serial composition must stay live — no deadlock, no
// total starvation of the conforming path at either hop — and the
// flooding path must end up confined at least as tightly as the tighter
// of the two routers would confine it alone.
func TestTwoRoutersInSeries(t *testing.T) {
	a := newTestRouter(t, nil) // 1000 pkt/s service each
	b := newTestRouter(t, nil)
	hog := pathid.New(7, 1)
	legit := pathid.New(8, 1)
	now := 0.0
	admHog, admLegit := 0, 0
	for i := 0; i < 6000; i++ {
		now += 0.005
		var pkts []*netsim.Packet
		for j := 0; j < 8; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, hog)) // 1600 pkt/s
		}
		pkts = append(pkts, mkpkt(2, 2, 1000, legit), mkpkt(2, 2, 1000, legit)) // 400 pkt/s
		for _, pkt := range pkts {
			a.Enqueue(pkt, now)
		}
		// Router A services 5 packets per step into router B.
		for j := 0; j < 5; j++ {
			pkt := a.Dequeue(now)
			if pkt == nil {
				break
			}
			b.Enqueue(pkt, now)
		}
		// Router B services 5 packets per step to the destination.
		for j := 0; j < 5; j++ {
			pkt := b.Dequeue(now)
			if pkt == nil {
				break
			}
			if now > 10 {
				if pkt.Src == 1 {
					admHog++
				} else {
					admLegit++
				}
			}
		}
	}
	window := now - 10
	hogRate := float64(admHog) / window
	legitRate := float64(admLegit) / window
	if legitRate < 250 {
		t.Fatalf("legit path starved through serial routers: %v pkt/s of 400 offered", legitRate)
	}
	if hogRate > 700 {
		t.Fatalf("hog not confined through serial routers: %v pkt/s", hogRate)
	}
}
