package core

import (
	"bytes"
	"reflect"
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/rng"
	"floc/internal/telemetry"
)

// TestDifferentialHandleVsStringAdmission is the pinning test for the
// zero-hash hot path: a seeded randomized scenario is run twice, once
// through per-item Enqueue with string-keyed packets (PathHandle left
// zero, forcing the memo/hash resolution path) and once through
// EnqueueBatch with pre-interned dense handles stamped on every packet.
// The two routers must agree bit-for-bit — identical admission verdicts,
// identical Snapshot, identical telemetry registry text — because the
// handle is a pure lookup accelerator, never a semantic input.
func TestDifferentialHandleVsStringAdmission(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

func runDifferential(t *testing.T, seed uint64) {
	t.Helper()
	cfg := DefaultConfig(8e6, 64)
	cfg.Seed = seed
	strRouter, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdlRouter, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strTel := telemetry.New(telemetry.Options{TraceCapacity: 1 << 12})
	hdlTel := telemetry.New(telemetry.Options{TraceCapacity: 1 << 12})
	strRouter.SetTelemetry(strTel)
	hdlRouter.SetTelemetry(hdlTel)

	// A small path population with a few heavy hitters: enough paths to
	// exercise the open-addressed tables past their initial size, enough
	// skew to congest the link and cross every admission branch.
	src := rng.New(seed * 0x9e3779b97f4a7c15)
	const nPaths = 24
	paths := make([]pathid.PathID, nPaths)
	keys := make([]string, nPaths)
	handles := make([]uint32, nPaths)
	for i := range paths {
		paths[i] = pathid.New(pathid.ASN(100+i), pathid.ASN(i%4+1), 1)
		keys[i] = paths[i].Key()
		handles[i] = hdlRouter.InternPath(paths[i])
	}
	kinds := []netsim.PacketKind{
		netsim.KindUDP, netsim.KindUDP, netsim.KindUDP,
		netsim.KindSYN, netsim.KindData, netsim.KindACK,
	}

	now := 0.0
	id := uint64(0)
	for round := 0; round < 400; round++ {
		// Random chunk per round; arrivals cross control boundaries
		// (interval 0.5 s) several times over the run.
		chunk := 1 + src.Intn(32)
		// Fresh backing storage each round: the router keeps pointers to
		// admitted packets in its queue, so reusing a scratch slice would
		// mutate packets still in flight.
		batch := make([]BatchItem, 0, chunk)
		batchPkts := make([]netsim.Packet, 0, chunk)
		type arrival struct {
			pi   int
			src  uint32
			size int
			kind netsim.PacketKind
			at   float64
		}
		arrivals := make([]arrival, chunk)
		for j := range arrivals {
			now += 0.0002 + float64(src.Intn(5))*0.0002
			pi := src.Intn(nPaths)
			if src.Intn(3) == 0 {
				pi = nPaths - 1 // the flooder: a third of all traffic
			}
			arrivals[j] = arrival{
				pi:   pi,
				src:  uint32(pi*8 + src.Intn(6)),
				size: 200 + src.Intn(1300),
				kind: kinds[src.Intn(len(kinds))],
				at:   now,
			}
		}

		// String-keyed router: per-item Enqueue, fresh packet each time,
		// PathHandle deliberately left zero.
		strAdmitted := 0
		for _, a := range arrivals {
			id++
			pkt := &netsim.Packet{
				ID: id, Src: a.src, Dst: 9, Size: a.size,
				Kind: a.kind, Path: paths[a.pi], PathKey: keys[a.pi],
			}
			if strRouter.Enqueue(pkt, a.at) {
				strAdmitted++
			}
		}

		// Handle-carrying router: the same arrivals as one batch.
		id -= uint64(chunk)
		for _, a := range arrivals {
			id++
			batchPkts = append(batchPkts, netsim.Packet{
				ID: id, Src: a.src, Dst: 9, Size: a.size,
				Kind: a.kind, Path: paths[a.pi], PathKey: keys[a.pi],
				PathHandle: handles[a.pi],
			})
		}
		for j := range batchPkts {
			batch = append(batch, BatchItem{Pkt: &batchPkts[j], At: arrivals[j].at})
		}
		if hdlAdmitted := hdlRouter.EnqueueBatch(batch); hdlAdmitted != strAdmitted {
			t.Fatalf("round %d: handles admitted %d, strings admitted %d",
				round, hdlAdmitted, strAdmitted)
		}

		// Chunk-synchronized service keeps both queues congested
		// identically: drain roughly half the chunk each round.
		for d := 0; d < chunk/2; d++ {
			sp := strRouter.Dequeue(now)
			hp := hdlRouter.Dequeue(now)
			if (sp == nil) != (hp == nil) {
				t.Fatalf("round %d: dequeue divergence (string=%v handle=%v)",
					round, sp != nil, hp != nil)
			}
			if sp != nil && sp.ID != hp.ID {
				t.Fatalf("round %d: dequeued IDs diverge: %d vs %d", round, sp.ID, hp.ID)
			}
		}
	}

	if !reflect.DeepEqual(strRouter.Snapshot(), hdlRouter.Snapshot()) {
		t.Fatalf("snapshots diverged:\nstring:\n%shandle:\n%s",
			strRouter.Snapshot().String(), hdlRouter.Snapshot().String())
	}
	var strOut, hdlOut bytes.Buffer
	if err := strTel.Registry.WriteText(&strOut); err != nil {
		t.Fatal(err)
	}
	if err := hdlTel.Registry.WriteText(&hdlOut); err != nil {
		t.Fatal(err)
	}
	if strOut.String() != hdlOut.String() {
		t.Fatalf("telemetry tallies diverged:\nstring:\n%s\nhandle:\n%s",
			strOut.String(), hdlOut.String())
	}
}
