package core

import (
	"math"
	"sort"

	"floc/internal/invariant"
	"floc/internal/pathid"
	"floc/internal/telemetry"
	"floc/internal/tokenbucket"
)

// planAggregation recomputes the aggregation plan (paper Section IV-C)
// from the current leaf conformances: attack-path aggregation when the
// number of guaranteed identifiers exceeds |S|max, and (optionally)
// legitimate-path aggregation for proportional bandwidth allocation.
//
// The plan is recomputed statelessly each control tick; aggregate states
// (and their token buckets) are preserved across ticks when the plan is
// unchanged, keyed by the aggregation node.
// floc:unit now seconds
func (r *Router) planAggregation(now float64) {
	plan := map[string][]*pathState{}
	kind := map[string]aggKind{}

	if r.cfg.SMax > 0 && r.origins.size() > r.cfg.SMax {
		r.planAttackAggregation(plan, kind)
	}
	if r.cfg.LegitAggregation {
		r.planLegitAggregation(plan, kind)
	}

	sig := planSignature(plan)
	if sig == r.planSig {
		return
	}
	r.planSig = sig
	r.applyPlan(plan, kind, now)
}

type aggKind uint8

const (
	aggAttack aggKind = iota + 1
	aggLegit
)

// attackLeafSets returns, for each candidate inner tree node (deepest
// first), the attack origin paths available for aggregation beneath it.
func (r *Router) attackLeafSets(assigned map[string]bool) []aggCandidate {
	var cands []aggCandidate
	for _, node := range r.tree.InnerNodes() {
		var members []*pathState
		sum := 0.0
		for _, leaf := range node.Leaves() {
			ps := r.origins.lookup(leaf.Path().Key())
			if ps == nil || !leaf.Attack || assigned[ps.key] {
				continue
			}
			members = append(members, ps)
			sum += ps.conformance
		}
		if len(members) < 2 {
			continue
		}
		cands = append(cands, aggCandidate{
			node:    node,
			members: members,
			cost:    sum / float64(len(members)),
		})
	}
	return cands
}

// aggCandidate is one potential aggregation point.
type aggCandidate struct {
	node    *pathid.Node
	members []*pathState
	cost    float64
}

// planAttackAggregation implements the greedy Algorithm 1: aggregate
// attack paths at the nodes of minimum aggregation cost C^A (mean leaf
// conformance), preferring deeper nodes (longest postfix match, i.e.
// domains nearest the attack origins), until the number of guaranteed
// identifiers fits |S|max.
func (r *Router) planAttackAggregation(plan map[string][]*pathState, kind map[string]aggKind) {
	legit, attack := 0, 0
	r.origins.each(func(ps *pathState) {
		if ps.conformance < r.cfg.EThreshold {
			attack++
		} else {
			legit++
		}
	})
	// Paths that must disappear through aggregation.
	needed := attack - (r.cfg.SMax - legit)
	if needed <= 0 {
		return
	}

	assigned := map[string]bool{}
	for needed > 0 {
		cands := r.attackLeafSets(assigned)
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.cost < b.cost {
				return true
			}
			if b.cost < a.cost {
				return false
			}
			da, db := a.node.Depth(), b.node.Depth()
			if da != db {
				return da > db // prefer longest postfix match
			}
			return a.node.Path().Key() < b.node.Path().Key()
		})
		best := cands[0]
		key := "agg-A:" + best.node.Path().Key()
		plan[key] = best.members
		kind[key] = aggAttack
		for _, m := range best.members {
			assigned[m.key] = true
		}
		needed -= len(best.members) - 1
	}
}

// planLegitAggregation implements Section IV-C.2: aggregate sibling
// legitimate paths where the net conformance change C^L (Eq. IV.8) is
// non-positive, unless aggregation would raise any member path's
// bandwidth allocation by more than LegitAggGuard (the covert-attack
// guard).
func (r *Router) planLegitAggregation(plan map[string][]*pathState, kind map[string]aggKind) {
	assigned := map[string]bool{}
	for _, members := range plan {
		for _, m := range members {
			assigned[m.key] = true
		}
	}
	// Consider deeper nodes first so aggregation stays as local as
	// possible.
	nodes := r.tree.InnerNodes()
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := nodes[i].Depth(), nodes[j].Depth()
		if di != dj {
			return di > dj
		}
		return nodes[i].Path().Key() < nodes[j].Path().Key()
	})
	for _, node := range nodes {
		var members []*pathState
		ok := true
		for _, leaf := range node.Leaves() {
			ps := r.origins.lookup(leaf.Path().Key())
			if ps == nil {
				continue
			}
			if leaf.Attack || assigned[ps.key] {
				ok = false
				break
			}
			members = append(members, ps)
		}
		if !ok || len(members) < 2 {
			continue
		}
		if !r.legitAggregationBeneficial(members) {
			continue
		}
		key := "agg-L:" + node.Path().Key()
		plan[key] = members
		kind[key] = aggLegit
		for _, m := range members {
			assigned[m.key] = true
		}
	}
}

// legitAggregationBeneficial checks Eq. (IV.8) and the bandwidth-increase
// guard for a prospective legitimate aggregate.
//
// floc:eq IV.8
func (r *Router) legitAggregationBeneficial(members []*pathState) bool {
	k := float64(len(members))
	sumE, sumN, sumEN := 0.0, 0.0, 0.0
	minN, maxN := math.Inf(1), 0.0
	for _, m := range members {
		n := math.Max(1, float64(m.flows.len()))
		sumE += m.conformance
		sumN += n
		sumEN += m.conformance * n
		minN = math.Min(minN, n)
		maxN = math.Max(maxN, n)
	}
	// Aggregating equal-population paths is a no-op for per-flow
	// allocation (k shares over k*n flows); the point of legitimate-path
	// aggregation is to equalize flows across *differently* populated
	// domains, so only aggregate where a disparity exists.
	if maxN <= minN {
		return false
	}
	mean := sumE / k
	weighted := sumEN / sumN
	// C^L = mean - weighted; aggregate when the flow-weighted conformance
	// is at least the unweighted mean (non-positive net change).
	if mean-weighted > 1e-9 {
		return false
	}
	// Guard: member path j's allocation changes from one share to
	// k*n_j/sum(n) shares; reject if any member gains more than the
	// configured fraction.
	for _, m := range members {
		n := math.Max(1, float64(m.flows.len()))
		if k*n/sumN > 1+r.cfg.LegitAggGuard {
			return false
		}
	}
	return true
}

// applyPlan rebuilds the aggregate states to match the plan, preserving
// aggregates whose key (and hence aggregation point) is unchanged.
// floc:unit now seconds
func (r *Router) applyPlan(plan map[string][]*pathState, kind map[string]aggKind, now float64) {
	// Record the old membership before it is torn down so the telemetry
	// diff can emit PathAggregated/PathReleased transitions.
	var oldAgg map[string]string
	if telemetry.Compiled && r.tel != nil {
		oldAgg = make(map[string]string, r.origins.size())
		r.origins.each(func(ps *pathState) {
			if ps.aggregate != nil {
				oldAgg[ps.key] = ps.aggregate.key
			}
		})
	}
	r.origins.each(func(ps *pathState) {
		ps.aggregate = nil
	})
	old := r.aggs
	r.aggs = map[string]*pathState{}
	for key, members := range plan {
		sort.Slice(members, func(i, j int) bool { return members[i].key < members[j].key })
		agg := old[key]
		if agg == nil {
			bucket, _ := tokenbucket.New(r.cfg.ControlInterval,
				math.Max(1, r.cfg.linkRatePackets()*r.cfg.ControlInterval))
			agg = &pathState{
				key:         key,
				rtt:         newEWMA(),
				conformance: 1.0,
				bucket:      bucket,
			}
		}
		agg.members = members
		agg.shares = 1
		if kind[key] == aggLegit {
			agg.shares = len(members)
		}
		// Aggregate conformance: flow-weighted mean of members.
		sumN, sumEN := 0.0, 0.0
		for _, m := range members {
			m.aggregate = agg
			n := math.Max(1, float64(m.flows.len()))
			sumN += n
			sumEN += m.conformance * n
		}
		if sumN > 0 {
			agg.conformance = sumEN / sumN
		}
		// A flow-weighted mean of member conformances is itself a
		// conformance (Eq. IV.7 / IV.8 operate on [0, 1] values).
		invariant.Conformance01("core.agg.conformance", agg.conformance)
		r.aggs[key] = agg
	}

	if telemetry.Compiled && r.tel != nil {
		for _, key := range r.origins.sortedKeys() {
			ps := r.origins.lookup(key)
			newKey := ""
			if ps.aggregate != nil {
				newKey = ps.aggregate.key
			}
			prev := oldAgg[key]
			if prev == newKey {
				continue
			}
			if prev != "" {
				r.tel.Emit(telemetry.Event{
					Time: now, Type: telemetry.EventPathReleased,
					Path: key, Agg: prev,
				})
			}
			if newKey != "" {
				r.tel.Emit(telemetry.Event{
					Time: now, Type: telemetry.EventPathAggregated,
					Path: key, Agg: newKey,
				})
			}
		}
	}
}

// Aggregates returns the current aggregate identifiers and their member
// path keys, for instrumentation.
func (r *Router) Aggregates() map[string][]string {
	out := make(map[string][]string, len(r.aggs))
	for key, agg := range r.aggs {
		names := make([]string, len(agg.members))
		for i, m := range agg.members {
			names[i] = m.key
		}
		sort.Strings(names)
		out[key] = names
	}
	return out
}
