package core

import (
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// mkpkt builds a UDP packet on a path.
func mkpkt(src, dst uint32, size int, path pathid.PathID) *netsim.Packet {
	return &netsim.Packet{Src: src, Dst: dst, Size: size, Kind: netsim.KindUDP, Path: path}
}

// driver exercises a Router as a raw discipline: packet generators offer
// load, a service loop drains at the link rate.
type driver struct {
	r   *Router
	now float64
}

// step advances time by dt, first offering the given packets, then
// servicing n packets.
func (d *driver) step(dt float64, offered []*netsim.Packet, service int) (admitted int) {
	d.now += dt
	for _, pkt := range offered {
		if d.r.Enqueue(pkt, d.now) {
			admitted++
		}
	}
	for i := 0; i < service; i++ {
		if d.r.Dequeue(d.now) == nil {
			break
		}
	}
	return admitted
}

func newTestRouter(t *testing.T, mut func(*Config)) *Router {
	t.Helper()
	// 8 Mb/s link of 1000-byte packets = 1000 pkt/s; 100-packet buffer.
	cfg := DefaultConfig(8e6, 100)
	cfg.ControlInterval = 0.25
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.LinkRateBits = 0 },
		func(c *Config) { c.Capacity = 2 },
		func(c *Config) { c.PacketSize = 0 },
		func(c *Config) { c.QMinFrac = 0 },
		func(c *Config) { c.QMinFrac = 1 },
		func(c *Config) { c.EThreshold = 1.5 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.ControlInterval = 0 },
		func(c *Config) { c.RTTScale = 0 },
		func(c *Config) { c.DefaultRTT = 0 },
		func(c *Config) { c.FlowTimeout = 0 },
		func(c *Config) { c.NMax = -1 },
		func(c *Config) { c.Secret = nil },
		func(c *Config) { c.LegitAggGuard = -1 },
		func(c *Config) { c.Filter.Arrays = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig(8e6, 100)
		mut(&cfg)
		if _, err := NewRouter(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewRouter(DefaultConfig(8e6, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeUncongested: "uncongested", ModeCongested: "congested",
		ModeFlooding: "flooding", Mode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d: %q", m, m.String())
		}
	}
}

func TestUncongestedAdmitsEverything(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(5, 1)
	// 100 pkt/s offered into a 1000 pkt/s service: always uncongested.
	for i := 0; i < 500; i++ {
		adm := d.step(0.01, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 10)
		if adm != 1 {
			t.Fatalf("packet dropped at t=%v in uncongested mode", d.now)
		}
	}
	if r.TotalDrops() != 0 {
		t.Fatalf("drops = %d", r.TotalDrops())
	}
	if r.Mode() != ModeUncongested {
		t.Fatalf("mode = %v", r.Mode())
	}
}

func TestPathCreationAndEqualAllocation(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	paths := []pathid.PathID{pathid.New(4, 1), pathid.New(5, 1), pathid.New(6, 2)}
	for i := 0; i < 300; i++ {
		var pkts []*netsim.Packet
		for j, p := range paths {
			pkts = append(pkts, mkpkt(uint32(10+j), 2, 1000, p))
		}
		d.step(0.01, pkts, 5)
	}
	infos := r.PathInfos()
	if len(infos) != 3 {
		t.Fatalf("paths = %d", len(infos))
	}
	for _, info := range infos {
		if info.AllocPackets <= 0 {
			t.Fatalf("path %s has no allocation", info.Key)
		}
		if info.AllocPackets != infos[0].AllocPackets {
			t.Fatalf("unequal allocations: %+v", infos)
		}
		if info.Flows != 1 {
			t.Fatalf("path %s flows = %d", info.Key, info.Flows)
		}
		if info.Conformance < 0.9 {
			t.Fatalf("legit path conformance = %v", info.Conformance)
		}
	}
	if r.GuaranteedPathCount() != 3 {
		t.Fatalf("guaranteed = %d", r.GuaranteedPathCount())
	}
}

func TestOverloadedPathFlaggedAttack(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	hog := pathid.New(7, 1)
	legit := pathid.New(8, 1)
	// Service 1000 pkt/s. Hog path offers 1600 pkt/s, legit 100 pkt/s.
	for i := 0; i < 3000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 16; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, hog))
		}
		if i%10 == 0 {
			pkts = append(pkts, mkpkt(2, 2, 1000, legit))
		}
		d.step(0.01, pkts, 10)
	}
	var hogInfo, legitInfo *PathInfo
	for i := range r.PathInfos() {
		info := r.PathInfos()[i]
		switch info.Key {
		case hog.Key():
			hogInfo = &info
		case legit.Key():
			legitInfo = &info
		}
	}
	if hogInfo == nil || legitInfo == nil {
		t.Fatal("paths missing")
	}
	if !hogInfo.Attack {
		t.Fatalf("hog path not flagged: %+v", hogInfo)
	}
	if legitInfo.Attack {
		t.Fatalf("legit path flagged: %+v", legitInfo)
	}
	if r.TotalDrops() == 0 {
		t.Fatal("no drops under overload")
	}
}

func TestAttackConfinement(t *testing.T) {
	// The central FLoc property: an overloading path cannot take more
	// than its share; the conforming path keeps (almost) all of its own.
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	hog := pathid.New(7, 1)
	legit := pathid.New(8, 1)
	admHog, admLegit := 0, 0
	// Warm up 5 seconds, then measure 20 seconds.
	for phase, steps := range map[int]int{0: 500, 1: 2000} {
		for i := 0; i < steps; i++ {
			var hogPkts, legitPkts []*netsim.Packet
			// Hog: 1600 pkt/s; legit: 400 pkt/s; service 1000 pkt/s.
			for j := 0; j < 16; j++ {
				hogPkts = append(hogPkts, mkpkt(1, 2, 1000, hog))
			}
			for j := 0; j < 4; j++ {
				legitPkts = append(legitPkts, mkpkt(2, 2, 1000, legit))
			}
			a1 := d.step(0.005, hogPkts, 0)
			a2 := d.step(0.005, legitPkts, 10)
			if phase == 1 {
				admHog += a1
				admLegit += a2
			}
		}
	}
	// Fair share is 500 pkt/s each. The hog must not exceed ~1.3x its
	// share; the legit path offered 400 < 500 and must get most of it.
	hogRate := float64(admHog) / 20.0
	legitRate := float64(admLegit) / 20.0
	if hogRate > 700 {
		t.Fatalf("hog admitted %v pkt/s, exceeds confined share", hogRate)
	}
	if legitRate < 280 {
		t.Fatalf("legit admitted only %v pkt/s of 400 offered", legitRate)
	}
}

func TestPreferentialDropWithinPath(t *testing.T) {
	// One attack path carrying a responsive (AIMD-emulating) legitimate
	// flow and an unresponsive 8x hog: the hog must be penalized while
	// the responsive flow's penalty stays low — the paper's central
	// "no collateral damage for flows that respond to drops" claim.
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	other := pathid.New(8, 1)
	admFair, admHog := 0, 0
	fairRate := 200.0 // pkt/s, adapts like AIMD
	fairCredit := 0.0
	const dt = 0.005
	for i := 0; i < 6000; i++ {
		var pkts []*netsim.Packet
		// Hog flow (src 1): 1600 pkt/s, unresponsive.
		for j := 0; j < 8; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path))
		}
		// Responsive flow (src 2): sends at fairRate, halves on drop,
		// grows additively.
		fairCredit += fairRate * dt
		var fairPkts []*netsim.Packet
		for fairCredit >= 1 {
			fairCredit--
			fairPkts = append(fairPkts, mkpkt(2, 2, 1000, path))
		}
		// Another path keeps the link contended (src 3): 400 pkt/s.
		pkts = append(pkts, mkpkt(3, 2, 1000, other), mkpkt(3, 2, 1000, other))
		d.now += dt
		for _, pkt := range pkts {
			if d.r.Enqueue(pkt, d.now) && pkt.Src == 1 {
				admHog++
			}
		}
		for _, pkt := range fairPkts {
			if d.r.Enqueue(pkt, d.now) {
				admFair++
				fairRate += 1.0 * dt // additive increase
			} else {
				fairRate = mathMax(20, fairRate/2)
			}
		}
		for j := 0; j < 10; j++ {
			d.r.Dequeue(d.now)
		}
	}
	// The hog's measured excess must dominate the responsive flow's.
	hogExcess := r.FlowExcess(1, 2, path, d.now)
	fairExcess := r.FlowExcess(2, 2, path, d.now)
	if hogExcess < 2*fairExcess || hogExcess == 0 {
		t.Fatalf("excess separation failed: hog %v vs fair %v", hogExcess, fairExcess)
	}
	infos := r.PathInfos()
	var attackInfo *PathInfo
	for i := range infos {
		if infos[i].Key == path.Key() {
			attackInfo = &infos[i]
		}
	}
	if attackInfo == nil {
		t.Fatal("attack path missing")
	}
	if attackInfo.AttackFlows == 0 {
		t.Fatal("hog flow not identified as attack flow")
	}
	if attackInfo.Conformance > 0.9 {
		t.Fatalf("conformance did not fall: %v", attackInfo.Conformance)
	}
	if r.Drops(DropPreferential) == 0 {
		t.Fatal("no preferential drops")
	}
	_ = admFair
	_ = admHog
}

func TestAttackAggregationReducesPathCount(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.SMax = 6
		c.EThreshold = 0.5
	})
	d := &driver{r: r}
	// 8 paths: 4 legit (low rate), 4 attack (hogs sharing parent AS 20).
	legitPaths := []pathid.PathID{
		pathid.New(11, 1), pathid.New(12, 1), pathid.New(13, 2), pathid.New(14, 2),
	}
	attackPaths := []pathid.PathID{
		pathid.New(31, 20, 3), pathid.New(32, 20, 3), pathid.New(33, 20, 3), pathid.New(34, 21, 3),
	}
	for i := 0; i < 6000; i++ {
		var pkts []*netsim.Packet
		for j, p := range legitPaths {
			if i%10 == 0 {
				pkts = append(pkts, mkpkt(uint32(100+j), 2, 1000, p))
			}
		}
		for j, p := range attackPaths {
			for k := 0; k < 4; k++ {
				pkts = append(pkts, mkpkt(uint32(200+j), 2, 1000, p))
			}
		}
		d.step(0.005, pkts, 5)
	}
	if got := r.GuaranteedPathCount(); got > 6 {
		t.Fatalf("guaranteed paths = %d, want <= SMax 6", got)
	}
	aggs := r.Aggregates()
	if len(aggs) == 0 {
		t.Fatal("no aggregates formed")
	}
	// Aggregated paths must be attack paths, not legit ones.
	legitKeys := map[string]bool{}
	for _, p := range legitPaths {
		legitKeys[p.Key()] = true
	}
	for agg, members := range aggs {
		for _, m := range members {
			if legitKeys[m] {
				t.Fatalf("legit path %s swept into aggregate %s", m, agg)
			}
		}
	}
	// Aggregation prefers the deepest shared node: the three paths under
	// AS 20 should aggregate together.
	for _, members := range aggs {
		if len(members) >= 2 {
			return
		}
	}
	t.Fatal("no multi-member aggregate")
}

func TestLegitAggregationProportionalShares(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.LegitAggregation = true
	})
	d := &driver{r: r}
	// Sibling paths under AS 9 with 2 and 3 flows; one remote path.
	a := pathid.New(41, 9, 1)
	b := pathid.New(42, 9, 1)
	c := pathid.New(43, 5)
	// Gentle flows (50 pkt/s each, well under fair share) so none are
	// classified as attack flows.
	for i := 0; i < 1000; i++ {
		var pkts []*netsim.Packet
		for f := 0; f < 2; f++ {
			pkts = append(pkts, mkpkt(uint32(300+f), 2, 1000, a))
		}
		for f := 0; f < 3; f++ {
			pkts = append(pkts, mkpkt(uint32(310+f), 2, 1000, b))
		}
		pkts = append(pkts, mkpkt(320, 2, 1000, c))
		d.step(0.02, pkts, 20)
	}
	aggs := r.Aggregates()
	found := false
	for key, members := range aggs {
		if len(members) == 2 {
			found = true
			agg := r.aggs[key]
			if agg.shares != 2 {
				t.Fatalf("legit aggregate shares = %d, want 2", agg.shares)
			}
		}
	}
	if !found {
		t.Fatalf("siblings not aggregated: %v", aggs)
	}
}

func TestLegitAggregationGuardBlocksSkewedPaths(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.LegitAggregation = true
	})
	d := &driver{r: r}
	// Sibling paths with 1 and 8 flows: 2*8/9 = 1.78 > 1.5 -> blocked.
	a := pathid.New(41, 9, 1)
	b := pathid.New(42, 9, 1)
	for i := 0; i < 1000; i++ {
		var pkts []*netsim.Packet
		pkts = append(pkts, mkpkt(300, 2, 1000, a))
		for f := 0; f < 8; f++ {
			pkts = append(pkts, mkpkt(uint32(400+f), 2, 1000, b))
		}
		d.step(0.02, pkts, 20)
	}
	if len(r.Aggregates()) != 0 {
		t.Fatalf("skewed siblings aggregated: %v", r.Aggregates())
	}
}

func TestCovertFlowsCollapseUnderNMax(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.NMax = 2
	})
	d := &driver{r: r}
	path := pathid.New(7, 1)
	// One source, 20 destinations.
	for i := 0; i < 1000; i++ {
		var pkts []*netsim.Packet
		for dst := uint32(50); dst < 70; dst++ {
			pkts = append(pkts, mkpkt(1, dst, 1000, path))
		}
		d.step(0.01, pkts, 10)
	}
	infos := r.PathInfos()
	if len(infos) != 1 {
		t.Fatalf("paths = %d", len(infos))
	}
	if infos[0].Flows > 2 {
		t.Fatalf("covert flows not collapsed: %d accounting flows", infos[0].Flows)
	}
}

func TestFlowExpiry(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 1)
	d.step(0.01, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 1)
	if len(r.PathInfos()) != 1 {
		t.Fatal("path not created")
	}
	// Advance well past FlowTimeout with traffic on another path to drive
	// the control loop.
	other := pathid.New(8, 1)
	for i := 0; i < 1000; i++ {
		d.step(0.01, []*netsim.Packet{mkpkt(9, 2, 1000, other)}, 2)
	}
	for _, info := range r.PathInfos() {
		if info.Key == path.Key() {
			t.Fatalf("idle path still present: %+v", info)
		}
	}
}

func TestRTTMeasuredFromSYN(t *testing.T) {
	r := newTestRouter(t, nil)
	path := pathid.New(7, 1)
	syn := &netsim.Packet{Src: 1, Dst: 2, Size: 40, Kind: netsim.KindSYN, Path: path}
	r.Enqueue(syn, 1.0)
	r.Dequeue(1.0)
	data := &netsim.Packet{Src: 1, Dst: 2, Size: 1000, Kind: netsim.KindData, Path: path}
	r.Enqueue(data, 1.08)
	infos := r.PathInfos()
	if len(infos) != 1 {
		t.Fatal("path missing")
	}
	if rtt := infos[0].RTT; rtt < 0.079 || rtt > 0.081 {
		t.Fatalf("measured RTT = %v, want 0.08", rtt)
	}
}

func TestBlockedFlowsDropReason(t *testing.T) {
	r := newTestRouter(t, func(c *Config) {
		c.BlockExcess = 4 // low threshold for the test
	})
	d := &driver{r: r}
	path := pathid.New(7, 1)
	for i := 0; i < 4000; i++ {
		var pkts []*netsim.Packet
		for j := 0; j < 20; j++ {
			pkts = append(pkts, mkpkt(1, 2, 1000, path)) // 4000 pkt/s hog
		}
		d.step(0.005, pkts, 5)
	}
	if r.Drops(DropBlocked) == 0 {
		t.Fatal("extreme flow never blocked")
	}
}

func TestDropsAccessorBounds(t *testing.T) {
	r := newTestRouter(t, nil)
	if r.Drops(DropReason(250)) != 0 {
		t.Fatal("out-of-range reason should be 0")
	}
}

func mathMax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
