package core

import (
	"math"

	"floc/internal/telemetry"
)

// This file is the router's telemetry seam. All emission is guarded by
// `telemetry.Compiled && r.tel != nil`: with the flocnotelemetry build tag
// the branches are compiled out entirely (the overhead baseline), and in
// normal builds a router without SetTelemetry pays one predictable branch
// per decision point and allocates nothing.
//
// Telemetry is strictly passive: it never touches the RNG or any state the
// admission policy reads, so enabling it cannot change a simulation's
// outcome, only record it.

// routerMetrics holds registry handles resolved once at SetTelemetry time
// so the hot path never takes the registry lock.
type routerMetrics struct {
	arrived     *telemetry.Counter
	admitted    *telemetry.Counter
	drops       [numDropReasons]*telemetry.Counter
	controlRuns *telemetry.Counter

	queueLen        *telemetry.Gauge
	qmax            *telemetry.Gauge
	guaranteedPaths *telemetry.Gauge
	mode            *telemetry.Gauge
	filterLive      *telemetry.Gauge
	filterMem       *telemetry.Gauge

	// Drop-filter op counters advance by delta each control run; prev*
	// remember the last published cumulative values.
	filterRecordOps *telemetry.Counter
	filterQueryOps  *telemetry.Counter
	prevRecordOps   int64
	prevQueryOps    int64

	queueDelay      *telemetry.Histogram // seconds spent in the output queue
	bucketOccupancy *telemetry.Histogram // fraction of bucket tokens unused
	mtd             *telemetry.Histogram // reference mean time to drop
	conformance     *telemetry.Histogram // per-path conformance EWMA
}

func newRouterMetrics(reg *telemetry.Registry) *routerMetrics {
	m := &routerMetrics{
		arrived:     reg.Counter("floc_router_arrived_packets_total", "packets offered to the router", "packets"),
		admitted:    reg.Counter("floc_router_admitted_packets_total", "packets admitted to the output queue", "packets"),
		controlRuns: reg.Counter("floc_router_control_runs_total", "control-loop executions", ""),

		queueLen:        reg.Gauge("floc_router_queue_len", "output queue length at last control run", "packets"),
		qmax:            reg.Gauge("floc_router_qmax", "flooding threshold Q_max", "packets"),
		guaranteedPaths: reg.Gauge("floc_router_guaranteed_paths", "bandwidth-guaranteed path identifiers", ""),
		mode:            reg.Gauge("floc_router_mode", "queue mode (1=uncongested 2=congested 3=flooding)", ""),
		filterLive:      reg.Gauge("floc_filter_live_records", "live drop-filter records at last control run", ""),
		filterMem:       reg.Gauge("floc_filter_memory_bytes", "drop-filter memory footprint", "bytes"),

		filterRecordOps: reg.Counter("floc_filter_record_ops_total", "drop-filter RecordDrop operations", ""),
		filterQueryOps:  reg.Counter("floc_filter_query_ops_total", "drop-filter Query operations", ""),

		queueDelay: reg.Histogram("floc_router_queue_delay_seconds",
			"per-packet output-queue delay in sim-time", "seconds",
			[]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1}),
		bucketOccupancy: reg.Histogram("floc_router_bucket_occupancy",
			"unused fraction of each guaranteed path's token bucket at control runs", "ratio",
			[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}),
		mtd: reg.Histogram("floc_router_mtd_seconds",
			"reference mean time to drop per guaranteed path at control runs", "seconds",
			[]float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3}),
		conformance: reg.Histogram("floc_router_conformance",
			"conformance EWMA per guaranteed path at control runs", "ratio",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1}),
	}
	for reason := DropReason(0); reason < numDropReasons; reason++ {
		m.drops[reason] = reg.Counter(
			`floc_router_drops_total{reason="`+reason.String()+`"}`,
			"packets dropped by reason", "packets")
	}
	return m
}

// SetTelemetry attaches a telemetry instance to the router. Pass nil to
// detach. Attaching mid-run is allowed: queue-delay observations are
// skipped for packets already queued.
func (r *Router) SetTelemetry(tel *telemetry.Telemetry) {
	r.tel = tel
	r.met = nil
	r.delayQ = timeQueue{}
	if tel == nil {
		return
	}
	r.met = newRouterMetrics(tel.Registry)
	r.lastMode = r.Mode()
	// Packets already in the queue have unknown admit times; NaN entries
	// are skipped at dequeue.
	for i := 0; i < r.fifo.Len(); i++ {
		r.delayQ.push(math.NaN())
	}
	r.origins.each(func(ps *pathState) {
		r.bindPathCounters(ps)
	})
}

// Telemetry returns the attached telemetry instance (nil when disabled).
func (r *Router) Telemetry() *telemetry.Telemetry { return r.tel }

// bindPathCounters resolves an origin path's labeled registry counters.
func (r *Router) bindPathCounters(ps *pathState) {
	ps.telAdmitted = r.tel.Registry.Counter(
		`floc_path_admitted_packets_total{path="`+ps.key+`"}`,
		"packets admitted by origin path", "packets")
	ps.telDropped = r.tel.Registry.Counter(
		`floc_path_dropped_packets_total{path="`+ps.key+`"}`,
		"packets dropped by origin path", "packets")
}

// noteMode emits a ModeChanged event when the derived queue mode differs
// from the last observed one. Called after every enqueue/dequeue while
// telemetry is attached; mode is pure function of queue length and the
// thresholds, so this reconstructs every transition.
// floc:unit now seconds
// floc:hotpath
func (r *Router) noteMode(now float64) {
	m := r.Mode()
	if m == r.lastMode {
		return
	}
	r.lastMode = m
	r.met.mode.Set(float64(m))
	r.tel.Emit(telemetry.Event{
		Time:  now,
		Type:  telemetry.EventModeChanged,
		Mode:  m.String(),
		Value: float64(r.fifo.Len()),
	})
}

// sampleControl records the per-control-run observability: gauges,
// per-path histograms, recorder samples, and the ControlRunCompleted
// event. Iteration follows guaranteedPaths()' sorted order so the trace
// is deterministic.
// floc:unit now seconds
func (r *Router) sampleControl(now float64) {
	r.met.controlRuns.Inc()
	r.met.queueLen.Set(float64(r.fifo.Len()))
	r.met.qmax.Set(r.qmax)
	r.met.mode.Set(float64(r.Mode()))
	r.met.filterLive.Set(float64(r.filter.Live()))
	r.met.filterMem.Set(float64(r.filter.MemoryBytes()))
	recordOps, queryOps := r.filter.Counters()
	r.met.filterRecordOps.Add(recordOps - r.met.prevRecordOps)
	r.met.filterQueryOps.Add(queryOps - r.met.prevQueryOps)
	r.met.prevRecordOps = recordOps
	r.met.prevQueryOps = queryOps

	paths := r.guaranteedPaths()
	r.met.guaranteedPaths.Set(float64(len(paths)))
	for _, ps := range paths {
		if size := ps.bucket.Size(); size > 0 {
			//floclint:allow units tokens over bucket-size tokens is the occupancy fraction
			occupancy := ps.bucket.Available(now) / size //floc:unit ratio
			r.met.bucketOccupancy.Observe(occupancy)
		}
		r.met.mtd.Observe(ps.params.RefMTD)
		r.met.conformance.Observe(ps.conformance)
	}

	if r.tel.Recorder != nil {
		keys := r.origins.sortedKeys()
		for _, key := range keys {
			ps := r.origins.lookup(key)
			eff := ps.effective()
			s := telemetry.PathSample{
				Time:         now,
				Path:         ps.key,
				Attack:       ps.attack,
				Conformance:  ps.conformance,
				AllocPackets: eff.alloc,
				BucketSize:   eff.params.Bucket,
				Period:       eff.params.Period,
				Flows:        ps.flows.len(),
				AttackFlows:  ps.attackFlows,
				// Interval arrivals are metered on the effective (bucket-
				// owning) identifier; drops are the origin's cumulative
				// count.
				Arrived: eff.intervalArrived,
				Drops:   ps.droppedPkts,
			}
			if ps.aggregate != nil {
				s.Aggregate = ps.aggregate.key
			}
			r.tel.Recorder.Record(s)
			r.tel.Registry.Gauge(
				`floc_path_conformance{path="`+ps.key+`"}`,
				"conformance EWMA by origin path", "ratio").Set(ps.conformance)
		}
	}

	r.tel.Emit(telemetry.Event{
		Time:  now,
		Type:  telemetry.EventControlRunCompleted,
		Mode:  r.Mode().String(),
		Value: float64(r.controlRuns),
	})
}

// timeQueue mirrors the FIFO's order with the sim-time each packet was
// admitted, for the queue-delay histogram. Same head-index compaction
// trick as netsim.FIFO.
type timeQueue struct {
	buf  []float64 //floc:unit seconds
	head int
}

// floc:unit t seconds
// floc:hotpath
func (q *timeQueue) push(t float64) { q.buf = append(q.buf, t) }

// floc:unit return seconds
// floc:hotpath
func (q *timeQueue) pop() float64 {
	if q.head >= len(q.buf) {
		return math.NaN() // desynced (telemetry attached mid-run); skip
	}
	t := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return t
}
