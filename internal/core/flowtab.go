package core

import "floc/internal/netsim"

// This file holds the open-addressed per-flow state tables that replace
// the router's map[flowKey]*flowState and map[netsim.FlowID]uint32. Both
// are power-of-two tables with linear probing keyed by the 64-bit
// dropfilter.FlowHash the admission path computes anyway, so the Go map
// hasher never runs on the hot path. Neither table has tombstones: the
// flow table is rebuilt (compact) at control-run boundaries, the slot
// table never deletes (capability slots live for the run, as the map they
// replace did).

// flowEntry is one flow table slot; fs == nil marks it empty. The exact
// flowKey is stored and compared so hash collisions stay correct.
type flowEntry struct {
	hash uint64
	key  flowKey
	fs   *flowState
}

const flowTableMinSize = 8

// flowTable maps flow accounting identities to their state.
type flowTable struct {
	entries []flowEntry // power-of-two length, or nil before first put
	scratch []flowEntry // reused by compact
	n       int
}

// get returns the flow's state, or nil.
// floc:hotpath
func (t *flowTable) get(hash uint64, key flowKey) *flowState {
	if t.n == 0 {
		return nil
	}
	mask := uint64(len(t.entries) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.fs == nil {
			return nil
		}
		if e.hash == hash && e.key == key {
			return e.fs
		}
	}
}

// put inserts a new flow. The caller guarantees key is absent.
// floc:coldpath flow-state creation is a first-packet event
func (t *flowTable) put(hash uint64, key flowKey, fs *flowState) {
	if len(t.entries) == 0 {
		t.entries = make([]flowEntry, flowTableMinSize)
	} else if (t.n+1)*4 > len(t.entries)*3 {
		t.rebuild(len(t.entries) * 2)
	}
	t.insert(flowEntry{hash: hash, key: key, fs: fs})
	t.n++
}

// insert places an entry in the first empty probe slot. The load factor
// cap guarantees one exists.
func (t *flowTable) insert(e flowEntry) {
	mask := uint64(len(t.entries) - 1)
	for i := e.hash & mask; ; i = (i + 1) & mask {
		if t.entries[i].fs == nil {
			t.entries[i] = e
			return
		}
	}
}

// rebuild rehashes every live entry into a table of the given size.
func (t *flowTable) rebuild(size int) {
	old := t.entries
	t.entries = make([]flowEntry, size)
	for i := range old {
		if old[i].fs != nil {
			t.insert(old[i])
		}
	}
}

// len returns the number of live flows.
// floc:hotpath
func (t *flowTable) len() int { return t.n }

// each visits every live flow in table order (deterministic for a given
// operation history; callers must not depend on any particular order).
func (t *flowTable) each(fn func(key flowKey, fs *flowState)) {
	for i := range t.entries {
		if e := &t.entries[i]; e.fs != nil {
			fn(e.key, e.fs)
		}
	}
}

// compact calls keep exactly once per live flow, drops the rejected ones,
// and rebuilds the probe sequences (this is what makes the table
// tombstone-free: deletion only ever happens here, at control-run
// boundaries). The table shrinks when occupancy falls below 1/8.
// floc:coldpath flow expiry runs in the control loop
func (t *flowTable) compact(keep func(key flowKey, fs *flowState) bool) {
	if t.n == 0 {
		return
	}
	t.scratch = t.scratch[:0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.fs == nil {
			continue
		}
		if keep(e.key, e.fs) {
			t.scratch = append(t.scratch, *e)
		}
		*e = flowEntry{}
	}
	size := len(t.entries)
	for size > flowTableMinSize && len(t.scratch)*8 < size {
		size /= 2
	}
	if size != len(t.entries) {
		t.entries = make([]flowEntry, size)
	}
	t.n = len(t.scratch)
	for i := range t.scratch {
		t.insert(t.scratch[i])
	}
	for i := range t.scratch {
		t.scratch[i].fs = nil // release expired states to the GC
	}
}

// slotEntry is one capability-slot cache slot; slotPlus1 == 0 marks it
// empty. salted caches the pre-salted accounting hash so the per-packet
// path computes exactly one FlowHash.
type slotEntry struct {
	hash      uint64
	salted    uint64
	id        netsim.FlowID
	slotPlus1 uint32
}

// slotTable maps flow endpoints to their capability fan-out slot and
// pre-salted accounting hash. Entries are never removed, matching the map
// it replaces.
type slotTable struct {
	entries []slotEntry
	n       int
}

// get returns the flow's cached slot and salted hash.
// floc:hotpath
func (t *slotTable) get(hash uint64, id netsim.FlowID) (slot uint32, salted uint64, ok bool) {
	if t.n == 0 {
		return 0, 0, false
	}
	mask := uint64(len(t.entries) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		e := &t.entries[i]
		if e.slotPlus1 == 0 {
			return 0, 0, false
		}
		if e.hash == hash && e.id == id {
			return e.slotPlus1 - 1, e.salted, true
		}
	}
}

// put caches a freshly issued slot. The caller guarantees id is absent.
// floc:coldpath capability issue happens once per flow, not per packet
func (t *slotTable) put(hash uint64, id netsim.FlowID, slot uint32, salted uint64) {
	if len(t.entries) == 0 {
		t.entries = make([]slotEntry, flowTableMinSize)
	} else if (t.n+1)*4 > len(t.entries)*3 {
		old := t.entries
		t.entries = make([]slotEntry, len(old)*2)
		for i := range old {
			if old[i].slotPlus1 != 0 {
				t.reinsert(old[i])
			}
		}
	}
	t.reinsert(slotEntry{hash: hash, salted: salted, id: id, slotPlus1: slot + 1})
	t.n++
}

// reinsert places an entry in the first empty probe slot.
func (t *slotTable) reinsert(e slotEntry) {
	mask := uint64(len(t.entries) - 1)
	for i := e.hash & mask; ; i = (i + 1) & mask {
		if t.entries[i].slotPlus1 == 0 {
			t.entries[i] = e
			return
		}
	}
}
