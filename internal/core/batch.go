package core

import "floc/internal/netsim"

// BatchItem is one packet of an admission batch together with its arrival
// time. Times within a batch must be non-decreasing — the router's
// control loop and token buckets advance with the clock and cannot run
// backwards.
type BatchItem struct {
	Pkt *netsim.Packet
	At  float64 //floc:unit seconds
}

// EnqueueBatch runs a batch of arrivals through the admission path and
// returns how many were admitted. It is exactly equivalent to calling
// Enqueue per item in order; the batch form exists so callers that
// amortize per-batch overhead (the dataplane shards) have a single
// entry point, and so future batched fast paths have a seam to land in.
// floc:hotpath
func (r *Router) EnqueueBatch(items []BatchItem) int {
	admitted := 0
	for i := range items {
		if r.Enqueue(items[i].Pkt, items[i].At) {
			admitted++
		}
	}
	return admitted
}
