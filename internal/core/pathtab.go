package core

import (
	"sort"
	"sync/atomic"
)

// Path handles give the steady-state admission path an integer identity
// for origin paths, so the per-packet lookup is an array index instead of
// a string-keyed map probe. A handle packs a per-router tag into the high
// bits and a 1-based dense index into the low handleIndexBits; zero means
// "no handle". Handles are issued once per path (Router.InternPath or the
// first packet's originMiss) and never recycled: an expired path keeps
// its key→handle binding so a producer-cached handle can never silently
// alias a different path, it just re-creates state at the same index when
// traffic returns.
const (
	handleIndexBits = 20
	handleIndexMask = 1<<handleIndexBits - 1
	// maxPathHandles caps the dense state array. Paths beyond it (a
	// path-churn attack regime) fall into an overflow map with the old
	// delete-on-expiry semantics, bounding memory.
	maxPathHandles = handleIndexMask
)

// routerTagCounter issues a distinct tag per pathTable so a handle minted
// by one router is rejected — not misresolved — by every other.
var routerTagCounter atomic.Uint32

// pathTable is the router's origin-path index: a dense handle-indexed
// state array for the hot path plus a key→handle map and overflow map for
// the cold path (first packet, control plane, snapshots).
type pathTable struct {
	tag      uint32                // pre-shifted router tag, ORed into every handle
	byKey    map[string]uint32     // key → handle; bindings are never removed
	states   []*pathState          // 0-based by handle index; nil = expired or not yet created
	overflow map[string]*pathState // beyond maxPathHandles: plain map semantics
	live     int
}

func newPathTable() *pathTable {
	return &pathTable{
		tag:   routerTagCounter.Add(1) << handleIndexBits,
		byKey: map[string]uint32{},
	}
}

// byHandle resolves a handle to its live path state, or nil for foreign,
// out-of-range, or expired handles (all of which the caller treats as a
// cache miss).
// floc:hotpath
func (t *pathTable) byHandle(h uint32) *pathState {
	if h&^uint32(handleIndexMask) != t.tag {
		return nil
	}
	i := int(h&handleIndexMask) - 1
	if i < 0 || i >= len(t.states) {
		return nil
	}
	return t.states[i]
}

// intern binds key to a handle (issuing one on first sight) without
// creating any path state. Returns 0 when the dense space is exhausted.
// floc:coldpath handle binding happens once per path, not per packet
func (t *pathTable) intern(key string) uint32 {
	if h, ok := t.byKey[key]; ok {
		return h
	}
	if len(t.states) >= maxPathHandles {
		return 0
	}
	t.states = append(t.states, nil)
	h := t.tag | uint32(len(t.states))
	t.byKey[key] = h
	return h
}

// lookup returns the live state for key, or nil.
// floc:coldpath first-packet and control-plane lookups only
func (t *pathTable) lookup(key string) *pathState {
	if h, ok := t.byKey[key]; ok {
		return t.states[int(h&handleIndexMask)-1]
	}
	return t.overflow[key]
}

// put stores a freshly created state under key, assigning its handle.
// floc:coldpath path-state creation is a first-packet event
func (t *pathTable) put(key string, ps *pathState) {
	if h := t.intern(key); h != 0 {
		ps.handle = h
		t.states[int(h&handleIndexMask)-1] = ps
	} else {
		if t.overflow == nil {
			t.overflow = map[string]*pathState{}
		}
		t.overflow[key] = ps
	}
	t.live++
}

// remove expires a state. Dense entries keep their key→handle binding
// (see the package comment above); overflow entries are forgotten.
// floc:coldpath expiry runs in the control loop
func (t *pathTable) remove(ps *pathState) {
	if ps.handle != 0 {
		t.states[int(ps.handle&handleIndexMask)-1] = nil
	} else {
		delete(t.overflow, ps.key)
	}
	t.live--
}

// size returns the number of live states.
func (t *pathTable) size() int { return t.live }

// each visits every live state in unspecified order; callers needing
// determinism sort keys (sortedKeys) or sort what they collect. Removing
// the currently visited state from within fn is allowed.
func (t *pathTable) each(fn func(ps *pathState)) {
	for _, ps := range t.states {
		if ps != nil {
			fn(ps)
		}
	}
	for _, ps := range t.overflow {
		fn(ps)
	}
}

// sortedKeys returns the live states' keys in sorted order, for
// deterministic emission.
func (t *pathTable) sortedKeys() []string {
	keys := make([]string, 0, t.live)
	t.each(func(ps *pathState) { keys = append(keys, ps.key) })
	sort.Strings(keys)
	return keys
}
