package core

import (
	"math"
	"sort"
	"strings"

	"floc/internal/invariant"
	"floc/internal/stats"
	"floc/internal/tcpmodel"
	"floc/internal/telemetry"
)

// runControl is FLoc's periodic measurement and control loop: flow expiry,
// conformance updates (Eq. IV.6), aggregation (Section IV-C), token-bucket
// parameter recomputation (Eqs. IV.1-IV.3), and attack-path detection
// (Section IV-B.1).
// floc:unit now seconds
// floc:coldpath the periodic control loop runs once per interval, not per packet
func (r *Router) runControl(now float64) {
	interval := now - r.lastControl
	if r.controlRuns == 0 || interval <= 0 {
		interval = r.cfg.ControlInterval
	}
	r.lastControl = now
	r.controlRuns++

	// Expiry below may remove the memoized origin; drop the memo before
	// the pointer can dangle.
	r.lastKey, r.lastOrigin = "", nil

	r.expireFlows(now)
	r.updateConformance(now)
	r.planAggregation(now)
	r.recomputeParams(now, interval)

	if telemetry.Compiled && r.tel != nil {
		r.sampleControl(now)
	}
}

// expireFlows drops idle flows and empty origin paths, and rolls the
// per-flow admitted-rate meters.
// floc:unit now seconds
func (r *Router) expireFlows(now float64) {
	var expired []string
	var expiredPaths []*pathState
	r.origins.each(func(ps *pathState) {
		// compact both expires idle flows and rebuilds the open-addressed
		// probe sequences (the table's only deletion point).
		ps.flows.compact(func(_ flowKey, fs *flowState) bool {
			if now-fs.lastSeen > r.cfg.FlowTimeout {
				return false
			}
			fs.admittedRate = 0.5*(fs.admitted/r.cfg.ControlInterval) + 0.5*fs.admittedRate
			fs.arrivedRate = 0.5*(fs.arrived/r.cfg.ControlInterval) + 0.5*fs.arrivedRate
			fs.admitted = 0
			fs.arrived = 0
			// Escalate penalties for flows that keep over-subscribing
			// their fair share; relax as soon as they respond.
			if fair := r.fairShare(ps.effective()); fair > 0 && !r.cfg.DisableEscalation {
				if fs.arrivedRate > 1.2*fair {
					fs.escalation = math.Min(8, math.Max(1, fs.escalation)*1.25)
				} else {
					fs.escalation = math.Max(1, fs.escalation*0.7)
				}
			}
			return true
		})
		if ps.flows.len() == 0 && ps.arrivedTokens == 0 && now-ps.createdAt > r.cfg.FlowTimeout {
			expiredPaths = append(expiredPaths, ps)
		}
	})
	for _, ps := range expiredPaths {
		r.origins.remove(ps)
		r.tree.Remove(ps.id)
		if telemetry.Compiled && r.tel != nil {
			expired = append(expired, ps.key)
		}
	}
	if telemetry.Compiled && r.tel != nil && len(expired) > 0 {
		// The expiry walk is unordered; sort so the trace is deterministic.
		sort.Strings(expired)
		for _, key := range expired {
			r.tel.Emit(telemetry.Event{Time: now, Type: telemetry.EventPathExpired, Path: key})
		}
	}
}

// updateConformance counts attack flows per origin path via the drop
// filter and advances the conformance EWMA (Eq. IV.6).
//
// floc:eq IV.6
// floc:unit now seconds
func (r *Router) updateConformance(now float64) {
	type flagged struct {
		path string
		hash uint64
	}
	var newlyFlagged []flagged
	r.origins.each(func(ps *pathState) {
		eff := ps.effective()
		fair := r.fairShare(eff)
		attack := 0
		ps.flows.each(func(_ flowKey, fs *flowState) {
			st := r.filter.Query(fs.hash, now, r.epoch(eff), r.filterK(eff))
			// A flow is an attack flow if its drop record shows excess
			// drops (Section IV-B.2) or its offered rate persistently
			// exceeds its fair share (the signal Eq. IV.5's bound acts
			// on).
			isAttack := st.Excess() >= r.cfg.AttackExcessThreshold ||
				(fair > 0 && fs.arrivedRate > 1.5*fair)
			if isAttack {
				attack++
			}
			if telemetry.Compiled && r.tel != nil && isAttack && !fs.attackFlagged {
				newlyFlagged = append(newlyFlagged, flagged{path: ps.key, hash: fs.hash})
			}
			fs.attackFlagged = isAttack
		})
		ps.attackFlows = attack
		n := ps.flows.len()
		if n > 0 {
			sample := 1 - float64(attack)/float64(n)
			ps.conformance = r.cfg.Beta*sample + (1-r.cfg.Beta)*ps.conformance
		}
		// The conformance EWMA (Eq. IV.6) is a convex combination of values
		// in [0, 1]; leaving that interval means the measurement drifted out
		// of the modeled state space.
		invariant.Conformance01("core.conformance", ps.conformance)
		if ps.leaf != nil {
			ps.leaf.Conformance = ps.conformance
			ps.leaf.Flows = n
			ps.leaf.Attack = ps.conformance < r.cfg.EThreshold
		}
	})
	if telemetry.Compiled && r.tel != nil && len(newlyFlagged) > 0 {
		// Classification walks maps; sort (path, flow) so the trace is
		// deterministic.
		sort.Slice(newlyFlagged, func(i, j int) bool {
			if newlyFlagged[i].path != newlyFlagged[j].path {
				return newlyFlagged[i].path < newlyFlagged[j].path
			}
			return newlyFlagged[i].hash < newlyFlagged[j].hash
		})
		for _, f := range newlyFlagged {
			r.tel.Emit(telemetry.Event{
				Time: now,
				Type: telemetry.EventFlowClassifiedAttack,
				Path: f.path,
				Flow: f.hash,
			})
		}
	}
}

// rttOf returns a path's (scaled, under-estimated) RTT for parameter
// computation; aggregates use the flow-weighted mean of their members.
// floc:unit return seconds
// floc:hotpath
func (r *Router) rttOf(ps *pathState) float64 {
	raw := 0.0
	if ps.members == nil {
		if ps.rtt.Initialized() {
			raw = ps.rtt.Value()
		}
	} else {
		num, den := 0.0, 0.0
		for _, m := range ps.members {
			if !m.rtt.Initialized() {
				continue
			}
			w := math.Max(1, float64(m.flows.len()))
			num += m.rtt.Value() * w
			den += w
		}
		if den > 0 {
			raw = num / den
		}
	}
	if raw <= 0 {
		raw = r.cfg.DefaultRTT
	}
	return raw * r.cfg.RTTScale
}

// guaranteedPaths returns the current bandwidth-guaranteed identifiers:
// non-aggregated origin paths plus aggregates, deterministically ordered.
func (r *Router) guaranteedPaths() []*pathState {
	out := make([]*pathState, 0, r.origins.size()+len(r.aggs))
	r.origins.each(func(ps *pathState) {
		if ps.aggregate == nil {
			out = append(out, ps)
		}
	})
	for _, ps := range r.aggs {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// GuaranteedPathCount returns the number of bandwidth-guaranteed path
// identifiers (after aggregation).
func (r *Router) GuaranteedPathCount() int { return len(r.guaranteedPaths()) }

// recomputeParams refreshes every guaranteed path's bandwidth share,
// token-bucket parameters, attack-path flag, and the router's Q_max.
// floc:unit now seconds
// floc:unit interval seconds
func (r *Router) recomputeParams(now, interval float64) {
	paths := r.guaranteedPaths()
	if len(paths) == 0 {
		return
	}
	totalShares := 0
	for _, ps := range paths {
		totalShares += ps.shares
	}
	if totalShares == 0 {
		totalShares = len(paths)
	}
	linkPkts := r.cfg.linkRatePackets()
	sumBurst := 0.0

	for _, ps := range paths {
		// Smoothed request rate (tokens/second).
		rate := ps.arrivedTokens / interval
		if ps.lambda == 0 {
			ps.lambda = rate
		} else {
			ps.lambda = 0.5*rate + 0.5*ps.lambda
		}

		alloc := linkPkts * float64(ps.shares) / float64(totalShares)
		invariant.NonNegative("core.alloc", alloc)
		ps.alloc = alloc

		n := ps.flowCount()
		if r.cfg.EstimateFlows {
			n = r.estimateFlowCount(ps, alloc, interval)
		}
		if n < 1 {
			n = 1
		}
		rtt := r.rttOf(ps)
		invariant.Positive("core.rtt", rtt)
		params, err := tcpmodel.Compute(alloc, n, rtt)
		if err == nil {
			// The reference mean-time-to-drop n_i*T_Si and the bucket
			// parameters derived from Eqs. IV.1-IV.3 are all positive
			// quantities for positive inputs.
			invariant.NonNegative("core.mtd", params.RefMTD)
			invariant.Positive("core.period", params.Period)
			invariant.Positive("core.bucket", params.Bucket)
			invariant.True("core.burst",
				params.BucketBurst >= params.Bucket)
			ps.params = params
			size := params.BucketBurst
			if ps.bucketFlood {
				size = params.Bucket
			}
			period, size := normalizeBucket(params.Period, size)
			_ = ps.bucket.SetParams(period, size)
		}
		sumBurst += math.Sqrt(float64(n)) * ps.params.Window

		// Attack-path detection: the aggregate's mean drop interval fell
		// below the token period while the request rate exceeds the
		// allocation plus the reference drop rate.
		// The 10% margin keeps adaptive TCP aggregates, which probe just
		// above their allocation by design, from being misflagged.
		if ps.drops > 0 && ps.params.Period > 0 {
			meanDropInterval := interval / float64(ps.drops)
			//floclint:allow units one token per period is the reference drop rate (Sec. IV-B.1)
			overRate := ps.lambda > 1.1*alloc+1/ps.params.Period
			if meanDropInterval < ps.params.Period && overRate {
				ps.attack = true
			} else if !overRate {
				ps.attack = false
			}
		} else if ps.lambda <= alloc {
			ps.attack = false
		}
		for _, m := range ps.members {
			m.attack = ps.attack
		}

		ps.intervalArrived = ps.arrivedTokens
		ps.intervalDrops = ps.drops
		ps.arrivedTokens = 0
		ps.drops = 0
	}

	// Q_max = Q_min + sum over paths of sqrt(n_i) * W_i (Section V-A),
	// clamped to the physical buffer.
	qmax := r.qmin + sumBurst
	if qmax > float64(r.cfg.Capacity) {
		qmax = float64(r.cfg.Capacity)
	}
	if qmax < r.qmin+4 {
		qmax = r.qmin + 4
	}
	invariant.True("core.qmax", qmax >= r.qmin && !math.IsNaN(qmax))
	r.qmax = qmax
}

// estimateFlowCount implements the scalable flow counter of Section V-B.1:
// infer the steady-state peak window from the observed drop ratio, then
// n = 4*C*RTT/(3*W).
// floc:unit alloc packets/s
// floc:unit interval seconds
func (r *Router) estimateFlowCount(ps *pathState, alloc, interval float64) int {
	arrivals := ps.arrivedTokens
	if arrivals <= 0 || ps.drops == 0 {
		return ps.flowCount() // no signal this interval; keep exact count
	}
	//floclint:allow units drops per token arrived is the drop ratio of Sec. V-B.1
	gamma := float64(ps.drops) / arrivals //floc:unit ratio
	w := tcpmodel.WindowFromDropRatio(gamma)
	if math.IsInf(w, 1) {
		return ps.flowCount()
	}
	n := tcpmodel.EstimateFlows(alloc, r.rttOf(ps), w)
	if n < 1 {
		return 1
	}
	return int(n + 0.5)
}

// PathInfo is the externally visible state of one origin path identifier.
type PathInfo struct {
	// Key is the path identifier key.
	Key string
	// Conformance is E_Ri in [0, 1].
	Conformance float64 //floc:unit ratio
	// Attack reports the path's attack-path flag (inherited from its
	// aggregate when aggregated).
	Attack bool
	// Aggregated reports whether the path has been merged into an
	// aggregate identifier.
	Aggregated bool
	// AggregateKey names the aggregate (empty if not aggregated).
	AggregateKey string
	// Flows is the number of live flows.
	Flows int
	// AttackFlows is the number of flows flagged as attack flows.
	AttackFlows int
	// AllocPackets is the guaranteed bandwidth in packets/second of the
	// path's effective identifier.
	AllocPackets float64 //floc:unit packets/s
	// Period and Bucket are the token-bucket parameters of the effective
	// identifier.
	Period float64 //floc:unit seconds
	Bucket float64 //floc:unit tokens
	// RTT is the path's raw measured RTT estimate.
	RTT float64 //floc:unit seconds
	// AdmittedPackets and DroppedPackets are the path's cumulative
	// admission counters since creation (origin attribution: an
	// aggregated path still counts its own packets).
	AdmittedPackets int64 //floc:unit packets
	DroppedPackets  int64 //floc:unit packets
}

// PathInfos returns per-origin-path state, sorted by key.
func (r *Router) PathInfos() []PathInfo {
	keys := r.origins.sortedKeys()
	out := make([]PathInfo, 0, len(keys))
	for _, k := range keys {
		ps := r.origins.lookup(k)
		eff := ps.effective()
		info := PathInfo{
			Key:             ps.key,
			Conformance:     ps.conformance,
			Attack:          ps.attack,
			Aggregated:      ps.aggregate != nil,
			Flows:           ps.flows.len(),
			AttackFlows:     ps.attackFlows,
			AllocPackets:    eff.alloc,
			Period:          eff.params.Period,
			Bucket:          eff.params.Bucket,
			AdmittedPackets: ps.admittedPkts,
			DroppedPackets:  ps.droppedPkts,
		}
		if ps.aggregate != nil {
			info.AggregateKey = ps.aggregate.key
		}
		if ps.rtt.Initialized() {
			info.RTT = ps.rtt.Value()
		}
		out = append(out, info)
	}
	return out
}

// planSignature canonicalizes an aggregation plan for change detection.
func planSignature(plan map[string][]*pathState) string {
	keys := make([]string, 0, len(plan))
	for k := range plan {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		members := plan[k]
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.key
		}
		sort.Strings(names)
		b.WriteString(strings.Join(names, ","))
		b.WriteByte(';')
	}
	return b.String()
}

// newEWMA is a tiny helper so aggregate states get a fresh RTT estimator.
func newEWMA() *stats.EWMA { return stats.NewEWMA(0.3) }

// DistinctDroppedFlows returns how many distinct flows of a path have a
// live drop record, and the flow count the TCP model implies for the
// path's allocation and drop ratio (Section V-B.1). A distinct-dropped
// count far below the model's estimate indicates attack flows are
// absorbing drops that, under all-TCP traffic, would spread one per flow
// per congestion epoch ("If the number of distinct flows that have packet
// drops is less than the computed number of flows, there certainly exist
// attack flows").
// floc:unit now seconds
// floc:unit modelEstimate ratio
func (r *Router) DistinctDroppedFlows(pathKey string, now float64) (distinct int, modelEstimate float64) {
	ps := r.origins.lookup(pathKey)
	if ps == nil {
		return 0, 0
	}
	eff := ps.effective()
	ps.flows.each(func(_ flowKey, fs *flowState) {
		st := r.filter.Query(fs.hash, now, r.epoch(eff), r.filterK(eff))
		if st.TS > 0 || st.D > 0 {
			distinct++
		}
	})
	w := eff.params.Window
	if w <= 0 {
		return distinct, 0
	}
	return distinct, tcpmodel.EstimateFlows(eff.alloc, r.rttOf(eff), w)
}
