package core

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time view of the router's complete externally
// relevant state, for debugging, experiment post-mortems, and operator
// tooling.
type Snapshot struct {
	// Mode is the current queue mode.
	Mode Mode
	// QueueLen, QMin and QMax describe the buffer state.
	QueueLen int
	QMin     float64 //floc:unit packets
	QMax     float64 //floc:unit packets
	// GuaranteedPaths is the number of bandwidth-guaranteed identifiers.
	GuaranteedPaths int
	// Paths is the per-origin-path state.
	Paths []PathInfo
	// Aggregates maps aggregate keys to member path keys.
	Aggregates map[string][]string
	// Arrived, Admitted and Drops summarize lifetime counters.
	Arrived  int64
	Admitted int64
	Drops    map[string]int64
	// FilterLive is the number of live drop records.
	FilterLive int
	// FilterMemoryBytes is the drop filter's memory footprint.
	FilterMemoryBytes int
	// ControlRuns counts control-loop executions.
	ControlRuns int
}

// dropReasonNames maps reasons to stable labels. Being an array of
// [numDropReasons] rather than a map, adding a DropReason without a label
// leaves an empty string that the exhaustiveness test rejects — a reason
// can no longer silently vanish from reports.
var dropReasonNames = [numDropReasons]string{
	DropNoToken:         "no-token",
	DropRandomThreshold: "random-threshold",
	DropPreferential:    "preferential",
	DropBlocked:         "blocked",
	DropOverflow:        "overflow",
}

// String returns the reason's stable label, shared by Snapshot.Drops and
// the telemetry PacketDropped event's Reason field.
// floc:hotpath
func (d DropReason) String() string {
	if d < numDropReasons {
		return dropReasonNames[d]
	}
	return "unknown"
}

// ParseDropReason maps a stable label back to its DropReason.
func ParseDropReason(s string) (DropReason, bool) {
	for i, name := range dropReasonNames {
		if name == s {
			return DropReason(i), true
		}
	}
	return 0, false
}

// Snapshot captures the router's current state.
func (r *Router) Snapshot() Snapshot {
	drops := make(map[string]int64, int(numDropReasons))
	// Iterate the reasons, not the label table: every reason below
	// numDropReasons appears even if a label were missing.
	for reason := DropReason(0); reason < numDropReasons; reason++ {
		drops[reason.String()] = r.dropCounts[reason]
	}
	return Snapshot{
		Mode:              r.Mode(),
		QueueLen:          r.fifo.Len(),
		QMin:              r.qmin,
		QMax:              r.qmax,
		GuaranteedPaths:   r.GuaranteedPathCount(),
		Paths:             r.PathInfos(),
		Aggregates:        r.Aggregates(),
		Arrived:           r.arrived,
		Admitted:          r.admitted,
		Drops:             drops,
		FilterLive:        r.filter.Live(),
		FilterMemoryBytes: r.filter.MemoryBytes(),
		ControlRuns:       r.controlRuns,
	}
}

// String renders the snapshot as a human-readable report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FLoc router: mode=%s queue=%d (Qmin=%.0f Qmax=%.0f) paths=%d admitted=%d\n",
		s.Mode, s.QueueLen, s.QMin, s.QMax, s.GuaranteedPaths, s.Admitted)
	names := make([]string, 0, len(s.Drops))
	for name := range s.Drops {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("drops:")
	for _, name := range names {
		fmt.Fprintf(&b, " %s=%d", name, s.Drops[name])
	}
	fmt.Fprintf(&b, "\nfilter: live=%d mem=%dB control-runs=%d\n",
		s.FilterLive, s.FilterMemoryBytes, s.ControlRuns)
	for _, p := range s.Paths {
		flag := " "
		if p.Attack {
			flag = "A"
		}
		agg := ""
		if p.Aggregated {
			agg = " -> " + p.AggregateKey
		}
		fmt.Fprintf(&b, "  [%s] %-12s E=%.2f flows=%d(%d atk) alloc=%.0fpkt/s T=%.1fms rtt=%.0fms%s\n",
			flag, p.Key, p.Conformance, p.Flows, p.AttackFlows,
			p.AllocPackets, p.Period*1000, p.RTT*1000, agg)
	}
	aggKeys := make([]string, 0, len(s.Aggregates))
	for key := range s.Aggregates {
		aggKeys = append(aggKeys, key)
	}
	sort.Strings(aggKeys)
	for _, key := range aggKeys {
		fmt.Fprintf(&b, "  aggregate %s: %s\n", key, strings.Join(s.Aggregates[key], ", "))
	}
	return b.String()
}
