package core

import (
	"reflect"
	"testing"

	"floc/internal/pathid"
)

func TestEnqueueBatchMatchesPerItemEnqueue(t *testing.T) {
	cfg := DefaultConfig(8e6, 64)
	cfg.Seed = 7
	single, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Congest the link so the batch walks every admission branch.
	var items []BatchItem
	for i := 0; i < 4000; i++ {
		path := pathid.New(pathid.ASN(i%5+1), 1)
		items = append(items, BatchItem{
			Pkt: mkpkt(uint32(i%5+1), 9, 1000, path),
			At:  float64(i) * 0.0004,
		})
	}

	want := 0
	for i := range items {
		pkt := *items[i].Pkt
		if single.Enqueue(&pkt, items[i].At) {
			want++
		}
	}
	got := batched.EnqueueBatch(items)
	if got != want {
		t.Fatalf("EnqueueBatch admitted %d, per-item Enqueue admitted %d", got, want)
	}
	if !reflect.DeepEqual(batched.Snapshot(), single.Snapshot()) {
		t.Fatal("batched and per-item routers diverged")
	}
}
