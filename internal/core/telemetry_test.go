package core

import (
	"math"
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/telemetry"
)

// TestDropReasonExhaustiveness is the guard demanded by the label-table
// refactor: every DropReason below numDropReasons must carry a stable,
// unique, parseable label, and Snapshot must surface all of them even when
// a reason has never fired.
func TestDropReasonExhaustiveness(t *testing.T) {
	seen := map[string]DropReason{}
	for reason := DropReason(0); reason < numDropReasons; reason++ {
		label := reason.String()
		if label == "" || label == "unknown" {
			t.Fatalf("drop reason %d has no stable label", reason)
		}
		if prev, dup := seen[label]; dup {
			t.Fatalf("label %q reused by reasons %d and %d", label, prev, reason)
		}
		seen[label] = reason
		back, ok := ParseDropReason(label)
		if !ok || back != reason {
			t.Fatalf("ParseDropReason(%q) = %v, %v; want %v", label, back, ok, reason)
		}
	}
	if DropReason(250).String() != "unknown" {
		t.Fatal("out-of-range reason must stringify as unknown")
	}
	if _, ok := ParseDropReason("nonsense"); ok {
		t.Fatal("ParseDropReason must reject unknown labels")
	}

	r := newTestRouter(t, nil)
	snap := r.Snapshot()
	if len(snap.Drops) != int(numDropReasons) {
		t.Fatalf("Snapshot.Drops has %d entries, want %d", len(snap.Drops), numDropReasons)
	}
	for reason := DropReason(0); reason < numDropReasons; reason++ {
		if _, ok := snap.Drops[reason.String()]; !ok {
			t.Fatalf("Snapshot.Drops missing %q", reason.String())
		}
	}
}

// TestEveryDropReasonHasEventLabel ties the drop-reason labels to the
// telemetry event stream: a PacketDropped event's Reason must round-trip
// back to the originating DropReason.
func TestEveryDropReasonHasEventLabel(t *testing.T) {
	r := newTestRouter(t, nil)
	r.SetTelemetry(telemetry.New(telemetry.Options{TraceCapacity: 16}))
	d := &driver{r: r}
	path := pathid.New(7, 3)
	// Overflow the 100-packet buffer without servicing: guarantees at
	// least one drop event.
	for i := 0; i < 300; i++ {
		d.step(1e-4, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 0)
	}
	var sawDrop bool
	for _, e := range r.Telemetry().Trace.Events() {
		if e.Type != telemetry.EventPacketDropped {
			continue
		}
		sawDrop = true
		if _, ok := ParseDropReason(e.Reason); !ok {
			t.Fatalf("drop event reason %q does not parse", e.Reason)
		}
	}
	if !sawDrop {
		t.Fatal("expected at least one PacketDropped event")
	}
}

func TestTelemetryCountersMatchRouter(t *testing.T) {
	r := newTestRouter(t, nil)
	tel := telemetry.New(telemetry.Options{TraceCapacity: 1 << 16, Recorder: true})
	r.SetTelemetry(tel)
	d := &driver{r: r}
	pathA := pathid.New(7, 3)
	pathB := pathid.New(9, 4)
	for i := 0; i < 3000; i++ {
		d.step(5e-4, []*netsim.Packet{
			mkpkt(1, 2, 1000, pathA),
			mkpkt(3, 4, 1000, pathB),
		}, 1)
	}
	reg := tel.Registry
	if got, want := reg.CounterValue("floc_router_arrived_packets_total"), r.Snapshot().Arrived; got != want {
		t.Fatalf("arrived counter = %d, router = %d", got, want)
	}
	if got, want := reg.CounterValue("floc_router_admitted_packets_total"), r.Admitted(); got != want {
		t.Fatalf("admitted counter = %d, router = %d", got, want)
	}
	var dropSum int64
	for reason := DropReason(0); reason < numDropReasons; reason++ {
		c := reg.CounterValue(`floc_router_drops_total{reason="` + reason.String() + `"}`)
		if c != r.Drops(reason) {
			t.Fatalf("drop counter %q = %d, router = %d", reason.String(), c, r.Drops(reason))
		}
		dropSum += c
	}
	if dropSum != r.TotalDrops() {
		t.Fatalf("drop counters sum %d, router total %d", dropSum, r.TotalDrops())
	}

	// Per-path labeled counters and PathInfo cumulative counters agree.
	var admitted, dropped int64
	for _, p := range r.PathInfos() {
		a := reg.CounterValue(`floc_path_admitted_packets_total{path="` + p.Key + `"}`)
		dr := reg.CounterValue(`floc_path_dropped_packets_total{path="` + p.Key + `"}`)
		if a != p.AdmittedPackets || dr != p.DroppedPackets {
			t.Fatalf("path %s registry (%d,%d) != PathInfo (%d,%d)",
				p.Key, a, dr, p.AdmittedPackets, p.DroppedPackets)
		}
		admitted += a
		dropped += dr
	}
	if admitted != r.Admitted() || dropped != r.TotalDrops() {
		t.Fatalf("per-path sums (%d,%d) != router totals (%d,%d)",
			admitted, dropped, r.Admitted(), r.TotalDrops())
	}

	if reg.CounterValue("floc_router_control_runs_total") != int64(r.ControlRuns()) {
		t.Fatal("control-run counter out of sync")
	}
	if len(tel.Recorder.Samples()) == 0 {
		t.Fatal("recorder got no control-run samples")
	}
}

func TestModeChangedEvents(t *testing.T) {
	r := newTestRouter(t, nil)
	tel := telemetry.New(telemetry.Options{TraceCapacity: 1 << 16})
	r.SetTelemetry(tel)
	d := &driver{r: r}
	path := pathid.New(7, 3)
	// Fill without service to force uncongested -> congested -> flooding,
	// then drain back down.
	for i := 0; i < 200; i++ {
		d.step(1e-4, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 0)
	}
	for i := 0; i < 200; i++ {
		d.step(1e-3, nil, 2)
	}
	// Replay: mode starts uncongested; every transition is an event; the
	// final event state must match the router.
	mode := ModeUncongested.String()
	transitions := 0
	for _, e := range tel.Trace.Events() {
		if e.Type == telemetry.EventModeChanged {
			if e.Mode == mode {
				t.Fatalf("ModeChanged event to the same mode %q", mode)
			}
			mode = e.Mode
			transitions++
		}
	}
	if transitions < 2 {
		t.Fatalf("expected >= 2 mode transitions, got %d", transitions)
	}
	if mode != r.Mode().String() {
		t.Fatalf("replayed mode %q, router mode %q", mode, r.Mode())
	}
}

func TestQueueDelayObserved(t *testing.T) {
	r := newTestRouter(t, nil)
	tel := telemetry.New(telemetry.Options{})
	r.SetTelemetry(tel)
	d := &driver{r: r}
	path := pathid.New(7, 3)
	for i := 0; i < 50; i++ {
		d.step(1e-3, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 1)
	}
	// Histogram() is get-or-create, so this fetches the live histogram.
	h := tel.Registry.Histogram("floc_router_queue_delay_seconds", "", "", nil)
	if h.Count() == 0 {
		t.Fatal("queue delay histogram recorded no observations")
	}
	if h.Sum() < 0 {
		t.Fatalf("negative total delay %v", h.Sum())
	}
}

func TestSetTelemetryMidRunSkipsUnknownDelays(t *testing.T) {
	r := newTestRouter(t, nil)
	d := &driver{r: r}
	path := pathid.New(7, 3)
	// Queue 10 packets with telemetry off.
	d.step(1e-3, []*netsim.Packet{
		mkpkt(1, 2, 1000, path), mkpkt(1, 2, 1000, path), mkpkt(1, 2, 1000, path),
	}, 0)
	tel := telemetry.New(telemetry.Options{})
	r.SetTelemetry(tel)
	// Draining pre-attach packets must not panic or record bogus delays.
	for i := 0; i < 5; i++ {
		d.step(1e-3, nil, 1)
	}
	// One packet through after attach gives exactly one real observation.
	d.step(1e-3, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 0)
	d.step(1e-3, nil, 1)
	// Detach is clean too.
	r.SetTelemetry(nil)
	if r.Telemetry() != nil {
		t.Fatal("detach failed")
	}
	d.step(1e-3, []*netsim.Packet{mkpkt(1, 2, 1000, path)}, 1)
}

func TestTimeQueue(t *testing.T) {
	var q timeQueue
	if !math.IsNaN(q.pop()) {
		t.Fatal("empty pop must return NaN")
	}
	for i := 0; i < 200; i++ {
		q.push(float64(i))
	}
	for i := 0; i < 200; i++ {
		if got := q.pop(); got != float64(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
	if !math.IsNaN(q.pop()) {
		t.Fatal("exhausted pop must return NaN")
	}
}
