// Package core implements FLoc itself (paper Sections IV and V): the
// router subsystem that provides per-domain bandwidth guarantees via
// path-identifier token buckets, identifies attack flows by their
// mean-time-to-drop, preferentially drops attack traffic, and aggregates
// the path identifiers of contaminated domains.
//
// The Router type is a netsim.Discipline: attach it to the flooded link.
package core

import (
	"fmt"

	"floc/internal/dropfilter"
	"floc/internal/pathid"
)

// Config parameterizes a FLoc router.
type Config struct {
	// LinkRateBits is the protected link capacity in bits/second.
	LinkRateBits float64 //floc:unit bits/s
	// Capacity is the physical buffer size in packets.
	Capacity int //floc:unit packets
	// PacketSize is the reference full packet size in bytes; one token
	// admits one full-sized packet (Section III-D).
	PacketSize int
	// QMinFrac positions Q_min as a fraction of Capacity (paper: 0.2).
	QMinFrac float64 //floc:unit ratio
	// SMax is |S|max, the maximum number of bandwidth-guaranteed path
	// identifiers; 0 disables attack-path aggregation.
	SMax int
	// EThreshold is E_th: leaves with conformance below it form the
	// attack tree T^A.
	EThreshold float64 //floc:unit ratio
	// Beta is the conformance smoothing factor of Eq. (IV.6).
	Beta float64 //floc:unit ratio
	// ControlInterval is the period of the measurement/control loop
	// (parameter recomputation, conformance update, aggregation).
	ControlInterval float64 //floc:unit seconds
	// RTTScale deflates the measured average RTT to avoid over-estimates
	// (paper Section V-A: divide by 2).
	RTTScale float64 //floc:unit ratio
	// DefaultRTT seeds a path's RTT estimate before any measurement.
	DefaultRTT float64 //floc:unit seconds
	// FlowTimeout expires idle flows from the per-path flow count.
	FlowTimeout float64 //floc:unit seconds
	// NMax is the per-source capability fan-out limit (Section IV-B.3);
	// 0 disables the covert-attack countermeasure (flows are then
	// accounted individually by (src, dst)).
	NMax int
	// RouterAS is the router's own domain, the traffic tree root.
	RouterAS pathid.ASN
	// Secret keys the capability issuer.
	Secret []byte
	// Filter configures the drop-record filter.
	Filter dropfilter.Config
	// AttackExcessThreshold is the filter excess (extra drops per epoch)
	// at which a flow counts as an attack flow for conformance purposes.
	AttackExcessThreshold float64 //floc:unit ratio
	// BlockExcess outright blocks flows whose measured excess exceeds it
	// (Section V-B.3's "block those high-rate flows"); 0 disables.
	BlockExcess float64 //floc:unit ratio
	// LegitAggregation enables legitimate-path aggregation (Section
	// IV-C.2).
	LegitAggregation bool
	// LegitAggGuard is the maximal fractional increase of any member
	// path's bandwidth allocation permitted by legitimate-path
	// aggregation (paper: 0.5, i.e. +50%).
	LegitAggGuard float64 //floc:unit ratio
	// ProbabilisticUpdate enables the sampled filter updates of Section
	// V-B.4 (memory-access reduction). Off by default: exact updates.
	ProbabilisticUpdate bool
	// FilterK restricts flows of attack paths to k of the filter's m
	// arrays (Section V-B.5); 0 means all arrays.
	FilterK int
	// EstimateFlows uses the drop-ratio flow-count estimator of Section
	// V-B.1 instead of exact per-flow tracking (scalable mode ablation).
	EstimateFlows bool
	// DisablePreferentialDrop turns off the per-flow preferential drop
	// policy (ablation: per-path guarantees only).
	DisablePreferentialDrop bool
	// DisableEscalation turns off the non-responsiveness escalation
	// (ablation: flows are pinned at fair share but never below).
	DisableEscalation bool
	// Seed seeds the router's private random stream.
	Seed uint64
}

// DefaultConfig returns the configuration used throughout the functional
// evaluation, for a link of linkRateBits and a buffer of capacity packets.
func DefaultConfig(linkRateBits float64, capacity int) Config {
	filter := dropfilter.DefaultConfig()
	// The preferential-drop equilibrium needs d to reach (alpha-1)*t_s for
	// the strongest attack factor alpha (BlockExcess); a 10-bit counter
	// covers alpha = 64 at t_s = 15 (the paper instead rescales t_s).
	filter.DMax = 1023
	return Config{
		LinkRateBits:          linkRateBits,
		Capacity:              capacity,
		PacketSize:            1000,
		QMinFrac:              0.2,
		SMax:                  0,
		EThreshold:            0.5,
		Beta:                  0.2,
		ControlInterval:       0.5,
		RTTScale:              0.5,
		DefaultRTT:            0.2,
		FlowTimeout:           5.0,
		NMax:                  0,
		RouterAS:              0,
		Secret:                []byte("floc-router-secret"),
		Filter:                filter,
		AttackExcessThreshold: 0.5,
		BlockExcess:           64,
		LegitAggregation:      false,
		LegitAggGuard:         0.5,
		ProbabilisticUpdate:   false,
		FilterK:               0,
		EstimateFlows:         false,
	}
}

// validate checks the configuration.
func (c Config) validate() error {
	switch {
	case c.LinkRateBits <= 0:
		return fmt.Errorf("core: link rate %v <= 0", c.LinkRateBits)
	case c.Capacity < 4:
		return fmt.Errorf("core: capacity %d < 4", c.Capacity)
	case c.PacketSize <= 0:
		return fmt.Errorf("core: packet size %d <= 0", c.PacketSize)
	case c.QMinFrac <= 0 || c.QMinFrac >= 1:
		return fmt.Errorf("core: QMinFrac %v out of (0,1)", c.QMinFrac)
	case c.EThreshold < 0 || c.EThreshold > 1:
		return fmt.Errorf("core: EThreshold %v out of [0,1]", c.EThreshold)
	case c.Beta <= 0 || c.Beta > 1:
		return fmt.Errorf("core: Beta %v out of (0,1]", c.Beta)
	case c.ControlInterval <= 0:
		return fmt.Errorf("core: control interval %v <= 0", c.ControlInterval)
	case c.RTTScale <= 0 || c.RTTScale > 1:
		return fmt.Errorf("core: RTTScale %v out of (0,1]", c.RTTScale)
	case c.DefaultRTT <= 0:
		return fmt.Errorf("core: DefaultRTT %v <= 0", c.DefaultRTT)
	case c.FlowTimeout <= 0:
		return fmt.Errorf("core: FlowTimeout %v <= 0", c.FlowTimeout)
	case c.NMax < 0:
		return fmt.Errorf("core: NMax %d < 0", c.NMax)
	case len(c.Secret) == 0:
		return fmt.Errorf("core: empty secret")
	case c.LegitAggGuard < 0:
		return fmt.Errorf("core: LegitAggGuard %v < 0", c.LegitAggGuard)
	}
	return nil
}

// linkRatePackets returns the link capacity in reference packets/second.
// floc:unit return packets/s
func (c Config) linkRatePackets() float64 {
	//floclint:allow units bits-to-packets: 8*PacketSize is the bits in one reference packet
	return c.LinkRateBits / 8 / float64(c.PacketSize)
}
