package core

import (
	"math"

	"floc/internal/capability"
	"floc/internal/dropfilter"
	"floc/internal/invariant"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/rng"
	"floc/internal/stats"
	"floc/internal/tcpmodel"
	"floc/internal/telemetry"
	"floc/internal/tokenbucket"
)

// Mode is the router's queue operating mode (paper Section V-A). The
// set is closed: switches over it must be exhaustive.
//
//floc:enum
type Mode uint8

// Queue modes.
const (
	// ModeUncongested: Q_curr <= Q_min; all packets serviced.
	ModeUncongested Mode = iota + 1
	// ModeCongested: Q_min < Q_curr <= Q_max; token buckets with burst
	// size N' and neutral random-threshold drops.
	ModeCongested
	// ModeFlooding: Q_curr > Q_max; strict token buckets with size N.
	ModeFlooding
)

// String implements fmt.Stringer.
// floc:hotpath
func (m Mode) String() string {
	switch m {
	case ModeUncongested:
		return "uncongested"
	case ModeCongested:
		return "congested"
	case ModeFlooding:
		return "flooding"
	default:
		return "unknown"
	}
}

// DropReason classifies router drops, for instrumentation. The set is
// closed: switches over it must be exhaustive, and the label table in
// report.go is sized by numDropReasons so a new reason cannot ship
// without a label.
//
//floc:enum
type DropReason uint8

// Drop reasons.
const (
	// DropNoToken: token bucket empty in flooding mode.
	DropNoToken DropReason = iota
	// DropRandomThreshold: congested-mode neutral random drop.
	DropRandomThreshold
	// DropPreferential: attack-flow preferential drop (Eq. IV.5 / V.1).
	DropPreferential
	// DropBlocked: flow exceeded BlockExcess and is blocked outright.
	DropBlocked
	// DropOverflow: physical buffer full.
	DropOverflow
	numDropReasons //floc:enumbound
)

// flowKey is a flow's accounting identity: with NMax > 0 the id is the
// capability fan-out slot (covert flows collapse), otherwise the
// destination address.
type flowKey struct {
	src uint32
	id  uint32
}

// flowState is the per-active-flow record of the (non-scalable) exact
// tracking mode.
type flowState struct {
	lastSeen     float64 //floc:unit seconds
	synAt        float64 //floc:unit seconds
	awaitingData bool
	hash         uint64

	// admitted and arrived count tokens admitted/offered this control
	// interval; admittedRate and arrivedRate are the smoothed rates
	// (tokens/second). The arrival rate upper-bounds attack-path flows at
	// their fair share (Eq. IV.5's stated aim) and classifies attack
	// flows for the conformance measure.
	admitted     float64 //floc:unit tokens
	arrived      float64 //floc:unit tokens
	admittedRate float64 //floc:unit tokens/s
	arrivedRate  float64 //floc:unit tokens/s

	// escalation grows while the flow keeps offering more than its fair
	// share interval after interval — the paper's "aggressively
	// penalizes the flows whose MTDs keep decreasing (i.e., flows that
	// do not respond to packet drops)" — and decays once the flow
	// responds. Effective fair share = fair / escalation.
	escalation float64 //floc:unit ratio

	// attackFlagged tracks the last classification verdict so telemetry
	// emits FlowClassifiedAttack only on the transition into attack.
	attackFlagged bool
}

// offeredRate returns the flow's best current estimate of its send rate
// in tokens/second.
// floc:unit controlInterval seconds
// floc:unit return tokens/s
// floc:hotpath
func (fs *flowState) offeredRate(controlInterval float64) float64 {
	rate := fs.arrivedRate
	if cur := fs.arrived / controlInterval; cur > rate {
		rate = cur
	}
	return rate
}

// pathState holds everything the router knows about one path identifier —
// an origin (leaf) path, or an aggregate created by path aggregation.
type pathState struct {
	key string
	id  pathid.PathID
	// handle is the path's dense pathTable handle (0 for overflow paths
	// and aggregates).
	handle uint32
	leaf   *pathid.Node

	// members is non-nil for aggregates: the origin paths merged into it.
	members []*pathState
	// aggregate is non-nil on an origin path that has been aggregated.
	aggregate *pathState
	// shares is the number of equal bandwidth shares allocated (1 for
	// origin paths and attack aggregates; len(members) for legitimate
	// aggregates).
	shares int

	bucket      *tokenbucket.Bucket
	params      tcpmodel.Params
	bucketFlood bool    // bucket currently sized N (flooding) vs N' (congested)
	alloc       float64 //floc:unit packets/s

	rtt         *stats.EWMA
	conformance float64 //floc:unit ratio
	attack      bool

	flows       flowTable
	attackFlows int

	// Interval measurement (reset each control tick).
	arrivedTokens float64 //floc:unit tokens
	drops         int
	lambda        float64 //floc:unit tokens/s (smoothed request rate)

	// Previous interval's measurements, stashed by recomputeParams for
	// the telemetry recorder before the live counters reset.
	intervalArrived float64 //floc:unit tokens
	intervalDrops   int

	// Cumulative per-origin-path counters (always maintained; cheap).
	admittedPkts int64 //floc:unit packets
	droppedPkts  int64 //floc:unit packets

	// Pre-resolved registry handles, non-nil only while telemetry is
	// attached (origin paths only).
	telAdmitted *telemetry.Counter
	telDropped  *telemetry.Counter

	createdAt float64 //floc:unit seconds
}

// effective returns the path identifier that owns this path's bucket.
// floc:hotpath
func (p *pathState) effective() *pathState {
	if p.aggregate != nil {
		return p.aggregate
	}
	return p
}

// flowCount returns the number of live flows (aggregates sum members).
// floc:hotpath
func (p *pathState) flowCount() int {
	if p.members == nil {
		return p.flows.len()
	}
	n := 0
	for _, m := range p.members {
		n += m.flows.len()
	}
	return n
}

// Router is the FLoc router subsystem, attached to the flooded link as its
// queue discipline. Like the simulator it plugs into, it is
// single-threaded: not safe for concurrent use.
type Router struct {
	cfg Config
	rng *rng.Source

	fifo *netsim.FIFO
	qmin float64 //floc:unit packets
	qmax float64 //floc:unit packets

	tree    *pathid.Tree
	origins *pathTable            // origin paths, handle-indexed
	aggs    map[string]*pathState // by aggregate key

	// lastKey/lastOrigin memoize the last origin() resolution for packets
	// that carry a PathKey but no handle (producers reusing one key string
	// hit the pointer-equality fast path of the string compare). Cleared
	// every control run, before expiry can invalidate the pointer.
	lastKey    string
	lastOrigin *pathState

	filter *dropfilter.Filter
	issuer *capability.Issuer
	acct   *capability.Accountant
	slots  slotTable // capability slot cache

	lastControl float64 //floc:unit seconds
	controlRuns int
	planSig     string

	dropCounts [numDropReasons]int64
	admitted   int64
	arrived    int64
	epochFloor float64 //floc:unit seconds

	// Observability (see telemetry.go). tel/met are nil when detached;
	// lastMode backs the ModeChanged event edge detector.
	tel      *telemetry.Telemetry
	met      *routerMetrics
	lastMode Mode
	delayQ   timeQueue
}

var _ netsim.Discipline = (*Router)(nil)

// NewRouter builds a FLoc router from cfg.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	filter, err := dropfilter.New(cfg.Filter)
	if err != nil {
		return nil, err
	}
	var issuer *capability.Issuer
	var acct *capability.Accountant
	if cfg.NMax > 0 {
		issuer, err = capability.NewIssuer(cfg.Secret, cfg.NMax)
		if err != nil {
			return nil, err
		}
		acct = capability.NewAccountant(cfg.NMax)
	}
	qmin := cfg.QMinFrac * float64(cfg.Capacity)
	return &Router{
		cfg:        cfg,
		rng:        rng.New(cfg.Seed),
		fifo:       netsim.NewFIFO(cfg.Capacity),
		qmin:       qmin,
		qmax:       float64(cfg.Capacity),
		lastMode:   ModeUncongested,
		tree:       pathid.NewTree(cfg.RouterAS),
		origins:    newPathTable(),
		aggs:       map[string]*pathState{},
		filter:     filter,
		issuer:     issuer,
		acct:       acct,
		epochFloor: 2 * cfg.Filter.TickSeconds,
	}, nil
}

// Mode returns the current queue mode.
// floc:hotpath
func (r *Router) Mode() Mode {
	q := float64(r.fifo.Len())
	switch {
	case q <= r.qmin:
		return ModeUncongested
	case q <= r.qmax:
		return ModeCongested
	default:
		return ModeFlooding
	}
}

// Drops returns the drop count for a reason.
func (r *Router) Drops(reason DropReason) int64 {
	if reason >= numDropReasons {
		return 0
	}
	return r.dropCounts[reason]
}

// TotalDrops returns all drops.
func (r *Router) TotalDrops() int64 {
	var t int64
	for _, c := range r.dropCounts {
		t += c
	}
	return t
}

// Admitted returns the number of admitted packets.
func (r *Router) Admitted() int64 { return r.admitted }

// ControlRuns returns how many control-loop executions have happened.
func (r *Router) ControlRuns() int { return r.controlRuns }

// acctKey computes a packet's flow accounting identity and hash. One
// FlowHash per packet: in capability mode the slot table caches the
// pre-salted accounting hash alongside the slot.
// floc:hotpath
func (r *Router) acctKey(pkt *netsim.Packet) (flowKey, uint64) {
	if r.issuer == nil {
		k := flowKey{src: pkt.Src, id: pkt.Dst}
		return k, dropfilter.FlowHash(k.src, k.id)
	}
	fid := pkt.Flow()
	h := dropfilter.FlowHash(fid.Src, fid.Dst)
	slot, salted, ok := r.slots.get(h, fid)
	if !ok {
		slot, salted = r.openSlot(pkt, fid, h)
	}
	return flowKey{src: pkt.Src, id: slot}, salted
}

// openSlot issues a capability for a flow's first packet and caches its
// fan-out slot plus the salted accounting hash (salted so slot ids don't
// collide with destination addresses).
// floc:coldpath capability issue happens once per flow, not per packet
func (r *Router) openSlot(pkt *netsim.Packet, fid netsim.FlowID, h uint64) (uint32, uint64) {
	c := r.issuer.Issue(pkt.Src, pkt.Dst, pkt.Path)
	slot := uint32(c.Slot)
	salted := dropfilter.FlowHash(pkt.Src, slot^0x5a5a5a5a)
	r.slots.put(h, fid, slot, salted)
	r.acct.Open(pkt.Src, c)
	return slot, salted
}

// InternPath binds path to this router's dense integer handle and returns
// it (0 when the dense handle space is exhausted; such paths simply keep
// using string keys). Producers stamp the handle into Packet.PathHandle
// so steady-state admission needs no hashing at all. No path state is
// created: that stays lazy, on the first packet.
// floc:coldpath interning happens once per path per producer
func (r *Router) InternPath(path pathid.PathID) uint32 {
	return r.origins.intern(path.Key())
}

// origin returns (creating if necessary) the origin path state for pkt.
// Resolution order: dense handle (no hashing), last-key memo (string
// compare with a pointer-equality fast path), then the cold miss path.
// floc:unit now seconds
// floc:hotpath
func (r *Router) origin(pkt *netsim.Packet, now float64) *pathState {
	if h := pkt.PathHandle; h != 0 {
		if ps := r.origins.byHandle(h); ps != nil {
			if invariant.Hot && pkt.PathKey != "" {
				invariant.True("core.handle.binding", ps.key == pkt.PathKey)
			}
			return ps
		}
	}
	if pkt.PathKey != "" && pkt.PathKey == r.lastKey {
		return r.lastOrigin
	}
	return r.originMiss(pkt, now)
}

// originMiss is origin's slow path: packets without a precomputed key
// (which must render one) and the first packet of a path (which builds
// its state). Every resolution refreshes the last-key memo.
// floc:unit now seconds
// floc:coldpath key rendering and path-state creation happen off the keyed fast path
func (r *Router) originMiss(pkt *netsim.Packet, now float64) *pathState {
	key := pkt.PathKey
	if key == "" {
		key = pkt.Path.Key()
	}
	memoKey := key
	if ps := r.origins.lookup(key); ps != nil {
		r.lastKey, r.lastOrigin = memoKey, ps
		return ps
	}
	leaf, err := r.tree.Insert(pkt.Path)
	if err != nil {
		// Unmarked packet: account it under a synthetic unknown path.
		leaf, _ = r.tree.Insert(pathid.New(0))
		key = pathid.New(0).Key()
		if ps := r.origins.lookup(key); ps != nil {
			r.lastKey, r.lastOrigin = memoKey, ps
			return ps
		}
	}
	ps := &pathState{
		key:         key,
		id:          pkt.Path,
		leaf:        leaf,
		shares:      1,
		rtt:         stats.NewEWMA(0.3),
		conformance: 1.0,
		createdAt:   now,
	}
	leaf.Conformance = 1.0
	bucket, _ := tokenbucket.New(r.cfg.ControlInterval, math.Max(1, r.cfg.linkRatePackets()*r.cfg.ControlInterval))
	ps.bucket = bucket
	ps.params = tcpmodel.Params{Period: r.cfg.ControlInterval, RefMTD: r.cfg.DefaultRTT}
	r.origins.put(key, ps)
	r.lastKey, r.lastOrigin = memoKey, ps
	if telemetry.Compiled && r.tel != nil {
		r.bindPathCounters(ps)
	}
	return ps
}

// Enqueue implements netsim.Discipline: the FLoc packet admission policy.
// The queue-mode edge detector runs inside admit's and drop's telemetry
// blocks — every packet ends in exactly one of the two — so it sees the
// post-decision queue length without a wrapper call on the hot path.
// floc:unit now seconds
// floc:hotpath
func (r *Router) Enqueue(pkt *netsim.Packet, now float64) bool {
	if now-r.lastControl >= r.cfg.ControlInterval {
		r.runControl(now)
	}
	r.arrived++

	orig := r.origin(pkt, now)
	eff := orig.effective()

	// Flow accounting and RTT measurement on the origin path.
	key, hash := r.acctKey(pkt)
	fs := orig.flows.get(hash, key)
	if fs == nil {
		fs = &flowState{hash: hash}
		orig.flows.put(hash, key, fs)
	}
	fs.lastSeen = now
	//floc:nonexhaustive RTT sampling keys on SYN and first forward data; SYNACK/ACK travel the reverse path and never reach this router's measurement
	switch pkt.Kind {
	case netsim.KindSYN:
		fs.synAt = now
		fs.awaitingData = true
	case netsim.KindData, netsim.KindUDP:
		if fs.awaitingData {
			if sample := now - fs.synAt; sample > 0 {
				orig.rtt.Add(sample)
			}
			fs.awaitingData = false
		}
	}

	//floclint:allow units reference-packet conversion: byte size over PacketSize counts tokens (Sec. III-D)
	tokens := float64(pkt.Size) / float64(r.cfg.PacketSize) //floc:unit tokens
	if invariant.Hot {
		invariant.Positive("core.pkt.tokens", tokens)
	}
	eff.arrivedTokens += tokens
	if pkt.Kind == netsim.KindData || pkt.Kind == netsim.KindUDP {
		fs.arrived += tokens
	}

	qcur := float64(r.fifo.Len())

	// Early congested-mode entry for over-subscribing paths: the
	// uncongested threshold shrinks by min(1, C/lambda).
	qminEff := r.qmin
	if eff.lambda > 0 && eff.alloc > 0 && eff.lambda > eff.alloc {
		qminEff = r.qmin * (eff.alloc / eff.lambda)
	}

	if qcur <= qminEff {
		return r.admit(pkt, orig, eff, fs, tokens, now)
	}

	flooding := qcur > r.qmax
	r.sizeBucket(eff, flooding)

	// Preferential filtering of attack flows happens before token
	// consumption (Eq. IV.5): a preferentially dropped packet must not
	// waste a token that a legitimate flow of the same path could use.
	if r.preferentialDrop(pkt, orig, eff, fs, now) {
		return false
	}

	if flooding {
		if !eff.bucket.Take(now, tokens) {
			r.drop(pkt, orig, eff, fs, now, DropNoToken)
			return false
		}
		return r.admit(pkt, orig, eff, fs, tokens, now)
	}

	// Congested mode.
	if eff.bucket.Take(now, tokens) {
		return r.admit(pkt, orig, eff, fs, tokens, now)
	}
	// No token. The neutral random-threshold policy exists to spare
	// conforming flows unnecessary drops caused by under-estimated
	// token-bucket parameters (Section V-A). Flows of identified attack
	// paths that exceed their fair share get strict bucket enforcement
	// instead ("the activation of the token-bucket mechanism for attack
	// path identifiers early ... causes them to experience packet drops
	// before legitimate ones"); conforming flows within attack paths keep
	// the lenient policy, which is what lets a collapsed legitimate flow
	// climb back (no collateral damage).
	if eff.attack && fs.offeredRate(r.cfg.ControlInterval) > r.fairShare(eff) {
		r.drop(pkt, orig, eff, fs, now, DropNoToken)
		return false
	}
	qth := r.qmin + r.rng.Float64()*(r.qmax-r.qmin)
	if qcur > qth {
		r.drop(pkt, orig, eff, fs, now, DropRandomThreshold)
		return false
	}
	return r.admit(pkt, orig, eff, fs, tokens, now)
}

// sizeBucket switches a path's bucket between N' (congested) and N
// (flooding) as the router mode changes.
// floc:hotpath
func (r *Router) sizeBucket(eff *pathState, flooding bool) {
	if eff.bucketFlood == flooding {
		return
	}
	eff.bucketFlood = flooding
	size := eff.params.BucketBurst
	if flooding {
		size = eff.params.Bucket
	}
	if size <= 0 || eff.params.Period <= 0 {
		return
	}
	period, size := normalizeBucket(eff.params.Period, size)
	_ = eff.bucket.SetParams(period, size)
}

// minBucketTokens is the smallest usable bucket: it must fit the largest
// packet (a 1500-byte packet costs 1.5 reference tokens), or that packet
// could never be admitted under strict token enforcement.
const minBucketTokens = 2

// normalizeBucket floors the bucket at minBucketTokens while preserving
// the admitted rate (size/period) by stretching the period with it.
// floc:unit period seconds
// floc:unit size tokens
// floc:unit outPeriod seconds
// floc:unit outSize tokens
// floc:hotpath
func normalizeBucket(period, size float64) (outPeriod, outSize float64) {
	if size >= minBucketTokens {
		return period, size
	}
	//floclint:allow units minBucketTokens over size is a pure token ratio; the stretch keeps size/period fixed
	scale := minBucketTokens / size //floc:unit ratio
	return period * scale, minBucketTokens
}

// preferentialDrop applies the attack-flow preferential drop policy
// (Eq. IV.5 with the Section V-B drop-record filter). It returns true if
// the packet was dropped.
// floc:unit now seconds
// floc:hotpath
func (r *Router) preferentialDrop(pkt *netsim.Packet, orig, eff *pathState, fs *flowState, now float64) bool {
	if r.cfg.DisablePreferentialDrop {
		return false
	}
	if !eff.attack || (pkt.Kind != netsim.KindData && pkt.Kind != netsim.KindUDP) {
		return false
	}
	st := r.filter.Query(fs.hash, now, r.epoch(eff), r.filterK(eff))
	if r.cfg.BlockExcess > 0 && st.Excess() >= r.cfg.BlockExcess {
		r.drop(pkt, orig, eff, fs, now, DropBlocked)
		return true
	}
	p := st.PrefDropProb()
	// Fair-share upper bound (Eq. IV.5's aim: "upper bound their
	// throughput by their fair bandwidth allocation"): a flow of an
	// attack path whose offered rate exceeds its within-path fair share
	// is dropped with exactly the probability that pins its admitted
	// rate there. A responsive flow's rate falls below fair, its penalty
	// goes to zero, so misidentification never denies service.
	if fair := r.fairShare(eff); fair > 0 {
		if rate := fs.offeredRate(r.cfg.ControlInterval); rate > fair {
			esc := fs.escalation
			if esc < 1 {
				esc = 1
			}
			if p2 := 1 - fair/(esc*rate); p2 > p {
				p = p2
			}
		}
	}
	if invariant.Hot {
		// The combined preferential drop probability (Eq. IV.5 / V.1 plus
		// the fair-share bound) must remain a probability.
		invariant.Conformance01("core.prefdrop", p)
	}
	if p > 0 && r.rng.Float64() < p {
		r.drop(pkt, orig, eff, fs, now, DropPreferential)
		return true
	}
	return false
}

// fairShare returns the per-flow fair bandwidth (tokens/second) of a
// path identifier, floored at one packet per RTT: a responsive flow
// cannot run below that, so the penalty machinery never demands it.
// floc:unit return tokens/s
// floc:hotpath
func (r *Router) fairShare(eff *pathState) float64 {
	n := eff.flowCount()
	if n < 1 {
		n = 1
	}
	fair := eff.alloc / float64(n) //floc:unit tokens/s
	//floclint:allow units 1 packet per RTT fair-share floor (Sec. IV)
	if rtt := r.rttOf(eff); rtt > 0 && fair < 1/rtt {
		fair = 1 / rtt //floclint:allow units 1 packet per RTT fair-share floor (Sec. IV)
	}
	if invariant.Hot {
		invariant.NonNegative("core.fairshare", fair)
	}
	return fair
}

// FlowExcess returns the drop filter's excess estimate for a flow, for
// instrumentation and tests. It uses the flow's accounting identity.
// floc:unit now seconds
// floc:unit return ratio
func (r *Router) FlowExcess(src, dst uint32, path pathid.PathID, now float64) float64 {
	pkt := &netsim.Packet{Src: src, Dst: dst, Path: path}
	_, hash := r.acctKey(pkt)
	orig := r.origins.lookup(path.Key())
	if orig == nil {
		return 0
	}
	eff := orig.effective()
	return r.filter.Query(hash, now, r.epoch(eff), r.filterK(eff)).Excess()
}

// admit puts the packet on the physical queue and meters the flow.
// floc:unit tokens tokens
// floc:unit now seconds
// floc:hotpath
func (r *Router) admit(pkt *netsim.Packet, orig, eff *pathState, fs *flowState, tokens, now float64) bool {
	if !r.fifo.Enqueue(pkt, now) {
		// Physical overflow: the effective path still pays for it.
		r.drop(pkt, orig, eff, fs, now, DropOverflow)
		return false
	}
	r.admitted++
	orig.admittedPkts++
	if fs != nil && (pkt.Kind == netsim.KindData || pkt.Kind == netsim.KindUDP) {
		fs.admitted += tokens
	}
	if telemetry.Compiled && r.tel != nil {
		r.observeAdmit(orig, fs, now)
	}
	return true
}

// observeAdmit meters an admitted packet and emits its trace event. A
// separate method so admit's disabled-telemetry path pays one branch and
// keeps its pre-telemetry stack frame.
// floc:unit now seconds
// floc:hotpath
func (r *Router) observeAdmit(orig *pathState, fs *flowState, now float64) {
	// arrived == admitted + dropped, so metering it here and in drop
	// spares the admission body a separate telemetry branch per packet.
	r.met.arrived.Inc()
	r.met.admitted.Inc()
	orig.telAdmitted.Inc()
	r.delayQ.push(now)
	var flow uint64
	if fs != nil {
		flow = fs.hash
	}
	r.tel.Emit(telemetry.Event{
		Time: now,
		Type: telemetry.EventPacketAdmitted,
		Path: orig.key,
		Flow: flow,
	})
	r.noteMode(now)
}

// observeDrop meters a dropped packet and emits its trace event; the
// same frame-size consideration as observeAdmit applies.
// floc:unit now seconds
// floc:hotpath
func (r *Router) observeDrop(orig *pathState, fs *flowState, now float64, reason DropReason) {
	r.met.arrived.Inc()
	r.met.drops[reason].Inc()
	orig.telDropped.Inc()
	var flow uint64
	if fs != nil {
		flow = fs.hash
	}
	r.tel.Emit(telemetry.Event{
		Time:   now,
		Type:   telemetry.EventPacketDropped,
		Path:   orig.key,
		Flow:   flow,
		Reason: reason.String(),
	})
	r.noteMode(now)
}

// epoch returns a path's congestion epoch (W/2 * RTT == RefMTD) for the
// drop filter, floored to the filter tick.
// floc:unit return seconds
// floc:hotpath
func (r *Router) epoch(eff *pathState) float64 {
	e := eff.params.RefMTD
	if e < r.epochFloor {
		e = r.epochFloor
	}
	return e
}

// filterK returns the array-selection parameter for a path's flows.
// floc:hotpath
func (r *Router) filterK(eff *pathState) int {
	if eff.attack && r.cfg.FilterK > 0 {
		return r.cfg.FilterK
	}
	return 0
}

// drop records a packet drop against its flow and path. Per Section V-B,
// only drops on identified attack paths enter the drop-record filter: the
// filter exists to separate attack from legitimate flows *within* attack
// paths, and keeping legitimate paths out of it both bounds its size and
// spares their flows transient mis-measurement during ordinary congestion.
//
// Preferential (and block) drops are deliberately NOT recorded. The
// token-bucket drop process is what makes a flow's drop rate proportional
// to its send rate (the premise of Eq. IV.4); feeding the preferential
// drops back into the record would spiral every penalized flow to the
// filter's saturation point and push its admitted rate far below the fair
// share, instead of converging at the paper's equilibrium
// alpha*(1-P_pd) = 1 (admitted == fair share).
// floc:unit now seconds
// floc:hotpath
func (r *Router) drop(pkt *netsim.Packet, orig, eff *pathState, fs *flowState, now float64, reason DropReason) {
	r.dropCounts[reason]++
	eff.drops++
	orig.droppedPkts++
	if telemetry.Compiled && r.tel != nil {
		r.observeDrop(orig, fs, now, reason)
	}
	if reason == DropPreferential || reason == DropBlocked {
		return
	}
	if fs == nil || !eff.attack || (pkt.Kind != netsim.KindData && pkt.Kind != netsim.KindUDP) {
		return
	}
	weight := uint32(1)
	if r.cfg.ProbabilisticUpdate {
		st := r.filter.Query(fs.hash, now, r.epoch(eff), r.filterK(eff))
		w := st.D
		if w > 1 {
			if w > 16 {
				w = 16
			}
			if r.rng.Float64() >= 1/float64(w) {
				return // sampled out; expectation preserved via weight
			}
			weight = w
		}
	}
	r.filter.RecordDrop(fs.hash, now, r.epoch(eff), r.filterK(eff), weight)
}

// Dequeue implements netsim.Discipline.
// floc:unit now seconds
// floc:hotpath
func (r *Router) Dequeue(now float64) *netsim.Packet {
	pkt := r.fifo.Dequeue(now)
	if telemetry.Compiled && r.tel != nil && pkt != nil {
		r.observeDequeue(now)
	}
	return pkt
}

// observeDequeue records the dequeued packet's queue delay and runs the
// mode-edge detector; a separate method so Dequeue's disabled-telemetry
// path stays small.
// floc:unit now seconds
// floc:hotpath
func (r *Router) observeDequeue(now float64) {
	if at := r.delayQ.pop(); !math.IsNaN(at) {
		r.met.queueDelay.Observe(now - at)
	}
	r.noteMode(now)
}

// Len implements netsim.Discipline.
// floc:hotpath
func (r *Router) Len() int { return r.fifo.Len() }
