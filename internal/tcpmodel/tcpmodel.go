// Package tcpmodel implements the analytic TCP congestion-control model of
// FLoc (paper Section IV-A and V-B.1): the relations between a persistent
// TCP flow's peak congestion window, its round-trip time, its fair
// bandwidth share, and the token-bucket parameters that guarantee that
// bandwidth to the flow aggregate of a path identifier.
//
// Units: bandwidth is expressed in packets per second, RTT in seconds, and
// windows in packets. Converting to bits per second is the caller's
// business (multiply by packet size).
package tcpmodel

import (
	"fmt"
	"math"
)

// Epsilon is the bucket-increase factor of Eq. (IV.3). The paper sets it to
// sqrt(12), which bounds the peak aggregate token request of i.i.d.
// uniform-window flows with probability 99.77%.
const Epsilon = 3.4641016151377544 // sqrt(12)

// PeakWindow returns the peak congestion window W_i (packets) of a
// persistent TCP flow whose long-run throughput is bw packets/s at
// round-trip time rtt seconds.
//
// The model (paper Fig. 4) treats the window as uniform on [W/2, W], so the
// average window is (3/4)W and bw = (3/4)*W/RTT, giving W = 4*bw*RTT/3.
//
// floc:eq IV-A (W = 4*c*RTT/3)
// floc:unit bw packets/s
// floc:unit rtt seconds
// floc:unit return packets
func PeakWindow(bw, rtt float64) float64 {
	if bw <= 0 || rtt <= 0 {
		return 0
	}
	return 4 * bw * rtt / 3
}

// FlowBandwidth is the inverse of PeakWindow: the throughput in packets/s
// of a persistent TCP flow with peak window w packets and round-trip time
// rtt seconds.
//
// floc:eq IV-A (c = 3*W/(4*RTT))
// floc:unit w packets
// floc:unit rtt seconds
// floc:unit return packets/s
func FlowBandwidth(w, rtt float64) float64 {
	if rtt <= 0 {
		return 0
	}
	return 3 * w / (4 * rtt)
}

// Params are the token-bucket parameters computed for one path identifier.
type Params struct {
	// Period is the token generation period T_Si in seconds (Eq. IV.1).
	Period float64 //floc:unit seconds
	// Bucket is the ideal bucket size N_Si in tokens (packets), Eq. (IV.2).
	Bucket float64 //floc:unit tokens
	// BucketBurst is the burst-tolerant size N'_Si >= Bucket (Eq. IV.3)
	// used in congested (non-flooding) mode.
	BucketBurst float64 //floc:unit tokens
	// Window is the per-flow peak window W_i implied by the fair share.
	Window float64 //floc:unit packets
	// RefMTD is the reference mean-time-to-drop n_i*T_Si of a legitimate
	// flow of this path.
	RefMTD float64 //floc:unit seconds
}

// Compute derives the token-bucket parameters for a path identifier S_i
// that is guaranteed bandwidth c packets/s, carries n persistent TCP flows,
// and has average round-trip time rtt seconds.
//
// Derivation (paper Eqs. IV.1-IV.3): each flow's fair share is c/n, so its
// peak window is W = 4*(c/n)*rtt/3 and its mean time to drop is
// (W/2)*rtt. Spreading the n flows' drops uniformly gives the token period
// T = (W/2)*rtt/n = (2/3)*c*rtt^2/n^2 and the ideal bucket N = c*T. The
// burst-tolerant bucket is N' = (1 + Epsilon*sigma/mu)*N where sigma/mu is
// the coefficient of variation of the aggregate window of n i.i.d.
// uniform-[W/2, W] flows: (W/(4*sqrt(3)))*sqrt(n) / (n*(3/4)*W) =
// 1/(3*sqrt(3*n))... i.e. cv = 1/(sqrt(3*n) * ... ) — computed exactly
// below from the two moments rather than a collapsed constant.
//
// floc:eq IV.1 IV.2 IV.3
// floc:unit c packets/s
// floc:unit rtt seconds
func Compute(c float64, n int, rtt float64) (Params, error) {
	if c <= 0 {
		return Params{}, fmt.Errorf("tcpmodel: non-positive bandwidth %v", c)
	}
	if n <= 0 {
		return Params{}, fmt.Errorf("tcpmodel: non-positive flow count %d", n)
	}
	if rtt <= 0 {
		return Params{}, fmt.Errorf("tcpmodel: non-positive RTT %v", rtt)
	}
	nf := float64(n)
	w := PeakWindow(c/nf, rtt)
	//floclint:allow units W/2 counts RTTs per congestion epoch, so (W/2)*RTT/n is a time (Eq. IV.1)
	period := (w / 2) * rtt / nf //floc:unit seconds == (2/3)*c*rtt^2/n^2
	bucket := c * period

	// Coefficient of variation of the aggregate window request:
	// per-flow mean (3/4)W, per-flow sd W/(4*sqrt(3)); i.i.d. sum over n.
	muW := 0.75 * w
	sigmaW := w / (4 * math.Sqrt(3))
	cv := (sigmaW * math.Sqrt(nf)) / (muW * nf)
	burst := (1 + Epsilon*cv) * bucket

	return Params{
		Period:      period,
		Bucket:      bucket,
		BucketBurst: burst,
		Window:      w,
		RefMTD:      nf * period,
	}, nil
}

// SyncBucketFactor returns the bucket-size multiplier required to avoid
// link under-utilization when all n flows are fully synchronized: the paper
// shows that only 3/4 of generated tokens are consumable, so the bucket
// must grow by 1/3 (factor 4/3).
func SyncBucketFactor() float64 { return 4.0 / 3.0 }

// DropRatio returns gamma_Si, the expected fraction of a path's packets
// that are dropped when its flows run steady-state TCP congestion
// avoidance with peak window w (paper Section V-B.1):
//
//	gamma = 8 / (3*W*(W+2))
//
// One drop per congestion epoch over the (3/8)W(W+2) packets sent while
// the window climbs from W/2 to W.
//
// floc:eq V-B.1 (gamma = 8/(3*W*(W+2)))
// floc:unit w packets
// floc:unit return ratio
func DropRatio(w float64) float64 {
	if w <= 0 {
		return 1
	}
	//floclint:allow units the numerator counts drops (packets); drops per packets sent is a ratio
	return 8 / (3 * w * (w + 2))
}

// WindowFromDropRatio inverts DropRatio: given an observed drop ratio
// gamma, it returns the implied steady-state peak window (the positive root
// of 3*gamma*W^2 + 6*gamma*W - 8 = 0).
//
// floc:eq V-B.1 (inverse)
// floc:unit gamma ratio
// floc:unit return packets
func WindowFromDropRatio(gamma float64) float64 {
	if gamma <= 0 {
		return math.Inf(1)
	}
	if gamma >= 1 {
		return smallestWindow
	}
	//floclint:allow units inverse of DropRatio: the positive root is the window in packets
	w := (-6*gamma + math.Sqrt(36*gamma*gamma+96*gamma)) / (6 * gamma) //floc:unit packets
	if w < smallestWindow {
		return smallestWindow
	}
	return w
}

// smallestWindow is the minimum meaningful TCP window (packets).
const smallestWindow = 1

// DropRate returns delta_Si, the packet drop rate (drops/s) of a path
// aggregate with request rate lambda packets/s and drop ratio gamma.
//
// floc:eq V-B.1 (delta = lambda*gamma)
// floc:unit lambda packets/s
// floc:unit gamma ratio
// floc:unit return packets/s
func DropRate(lambda, gamma float64) float64 {
	if lambda <= 0 || gamma <= 0 {
		return 0
	}
	return lambda * gamma
}

// EstimateFlows estimates the number of TCP flows n_i sharing a path's
// bandwidth c packets/s at round-trip time rtt, given the steady-state peak
// window w inferred from the observed drop ratio: n = 4*c*rtt/(3*W).
// This is the router's scalable flow-counting primitive (Section V-B.1):
// it requires only the aggregate drop ratio, not per-flow state.
//
// floc:eq V-B.1 (n = 4*c*RTT/(3*W))
// floc:unit c packets/s
// floc:unit rtt seconds
// floc:unit w packets
// floc:unit return ratio
func EstimateFlows(c, rtt, w float64) float64 {
	if w <= 0 {
		return 0
	}
	return 4 * c * rtt / (3 * w)
}

// MTD returns the mean time to drop of a flow with peak window w and
// round-trip time rtt: (W/2)*RTT (one drop per half-window of RTTs). An
// MTD is a duration: non-positive or non-finite inputs yield 0, never a
// negative time.
//
// floc:eq IV-B (MTD = W/2 * RTT)
// floc:unit w packets
// floc:unit rtt seconds
// floc:unit return seconds
func MTD(w, rtt float64) float64 {
	if w <= 0 || rtt <= 0 {
		return 0
	}
	//floclint:allow units W/2 counts RTTs between drops, so (W/2)*RTT is a time (Eq. IV-B)
	return w / 2 * rtt
}

// SyncMode describes the degree of synchronization of a path's TCP flows,
// used by the Fig. 4 model illustration and by the bucket-sizing analysis.
type SyncMode int

// Synchronization degrees considered by the paper (Fig. 4).
const (
	// Unsynchronized flows have peak windows uniformly staggered in time.
	Unsynchronized SyncMode = iota + 1
	// Synchronized flows all peak and halve together.
	Synchronized
	// PartiallySynchronized flows drift in and out of phase.
	PartiallySynchronized
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	switch m {
	case Unsynchronized:
		return "unsynchronized"
	case Synchronized:
		return "synchronized"
	case PartiallySynchronized:
		return "partially-synchronized"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// AggregateRequest returns the instantaneous aggregate window (token
// request, in packets) of n flows with peak window w at normalized epoch
// phase t in [0, 1) under the given synchronization mode. One epoch is the
// W/2 RTTs between a flow's drops; phase advances linearly with time.
//
// The curves correspond to the lower graphs of paper Fig. 4.
// floc:unit w packets
// floc:unit t ratio
// floc:unit return packets
func AggregateRequest(mode SyncMode, n int, w float64, t float64) float64 {
	t -= math.Floor(t)
	nf := float64(n)
	switch mode {
	case Synchronized:
		// Every window climbs together from W/2 to W.
		return nf * (w/2 + w/2*t)
	case Unsynchronized:
		// Phases uniformly staggered: the sum is flat at the mean.
		return nf * 0.75 * w
	case PartiallySynchronized:
		// Half the flows in phase, half staggered: fluctuates with half
		// the synchronized amplitude around the mean.
		sync := nf / 2 * (w/2 + w/2*t)
		flat := nf / 2 * 0.75 * w
		return sync + flat
	default:
		return 0
	}
}

// UtilizationUnderSync returns the fraction of generated tokens consumed
// when the bucket holds exactly N_Si tokens per period, for each
// synchronization mode: 1.0 when unsynchronized, 3/4 when fully
// synchronized (paper Fig. 4 shaded area).
func UtilizationUnderSync(mode SyncMode) float64 {
	switch mode {
	case Synchronized:
		return 0.75
	case PartiallySynchronized:
		return 0.875
	default:
		return 1.0
	}
}
