package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(b)) }

func TestPeakWindowRoundTrip(t *testing.T) {
	f := func(bw, rtt float64) bool {
		if math.IsNaN(bw) || math.IsInf(bw, 0) || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
			return true
		}
		bw = 1 + math.Mod(math.Abs(bw), 1e6)
		rtt = 0.001 + math.Mod(math.Abs(rtt), 10)
		w := PeakWindow(bw, rtt)
		return almost(FlowBandwidth(w, rtt), bw, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowBandwidthZeroRTT(t *testing.T) {
	if got := FlowBandwidth(10, 0); got != 0 {
		t.Fatalf("FlowBandwidth with zero RTT = %v", got)
	}
}

func TestComputeMatchesClosedForms(t *testing.T) {
	// Eq. IV.1: T = (2/3)*C*RTT^2/n^2; Eq. IV.2: N = C*T.
	const c, rtt = 6250.0, 0.1 // 6250 pkts/s ~ 50 Mb/s of 1KB packets
	const n = 25
	p, err := Compute(c, n, rtt)
	if err != nil {
		t.Fatal(err)
	}
	wantT := (2.0 / 3.0) * c * rtt * rtt / (n * n)
	if !almost(p.Period, wantT, 1e-12) {
		t.Fatalf("Period = %v, want %v", p.Period, wantT)
	}
	if !almost(p.Bucket, c*wantT, 1e-12) {
		t.Fatalf("Bucket = %v, want %v", p.Bucket, c*wantT)
	}
	if !almost(p.RefMTD, n*wantT, 1e-12) {
		t.Fatalf("RefMTD = %v, want %v", p.RefMTD, float64(n)*wantT)
	}
	// Window consistency: W = 4*(c/n)*rtt/3 and RefMTD = (W/2)*rtt.
	wantW := 4 * (c / n) * rtt / 3
	if !almost(p.Window, wantW, 1e-12) {
		t.Fatalf("Window = %v, want %v", p.Window, wantW)
	}
	if !almost(p.RefMTD, p.Window/2*rtt, 1e-12) {
		t.Fatalf("RefMTD %v != (W/2)*RTT %v", p.RefMTD, p.Window/2*rtt)
	}
}

func TestComputeBurstBucketLargerAndShrinksWithN(t *testing.T) {
	prevRatio := math.Inf(1)
	for _, n := range []int{1, 4, 16, 64, 256} {
		p, err := Compute(1000, n, 0.08)
		if err != nil {
			t.Fatal(err)
		}
		if p.BucketBurst <= p.Bucket {
			t.Fatalf("n=%d: burst bucket %v not larger than ideal %v", n, p.BucketBurst, p.Bucket)
		}
		ratio := p.BucketBurst / p.Bucket
		if ratio >= prevRatio {
			t.Fatalf("n=%d: burst ratio %v did not shrink from %v", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestComputeBurstRatioFormula(t *testing.T) {
	// ratio - 1 = Epsilon * cv = sqrt(12) * (1/(4*sqrt(3))) / (0.75*sqrt(n))
	//           = (1/sqrt(n)) * sqrt(12)/(3*sqrt(3)) = 2/(3*sqrt(n)).
	for _, n := range []int{1, 9, 100} {
		p, err := Compute(500, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + 2.0/(3*math.Sqrt(float64(n)))
		if !almost(p.BucketBurst/p.Bucket, want, 1e-9) {
			t.Fatalf("n=%d: burst ratio %v, want %v", n, p.BucketBurst/p.Bucket, want)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	cases := []struct {
		c   float64
		n   int
		rtt float64
	}{
		{0, 1, 0.1}, {-1, 1, 0.1}, {1, 0, 0.1}, {1, -2, 0.1}, {1, 1, 0}, {1, 1, -0.5},
	}
	for _, tc := range cases {
		if _, err := Compute(tc.c, tc.n, tc.rtt); err == nil {
			t.Errorf("Compute(%v, %d, %v) did not error", tc.c, tc.n, tc.rtt)
		}
	}
}

func TestDropRatioKnownValues(t *testing.T) {
	// W=8: gamma = 8/(3*8*10) = 1/30.
	if got := DropRatio(8); !almost(got, 1.0/30.0, 1e-12) {
		t.Fatalf("DropRatio(8) = %v", got)
	}
	if got := DropRatio(0); got != 1 {
		t.Fatalf("DropRatio(0) = %v, want 1", got)
	}
	if got := DropRatio(-3); got != 1 {
		t.Fatalf("DropRatio(-3) = %v, want 1", got)
	}
}

func TestDropRatioMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for w := 1.0; w <= 1000; w *= 2 {
		g := DropRatio(w)
		if g >= prev {
			t.Fatalf("DropRatio not decreasing at W=%v", w)
		}
		prev = g
	}
}

func TestWindowFromDropRatioInvertsDropRatio(t *testing.T) {
	for _, w := range []float64{2, 5, 10, 40, 100, 500} {
		g := DropRatio(w)
		got := WindowFromDropRatio(g)
		if !almost(got, w, 1e-9) {
			t.Fatalf("WindowFromDropRatio(DropRatio(%v)) = %v", w, got)
		}
	}
}

func TestWindowFromDropRatioEdges(t *testing.T) {
	if got := WindowFromDropRatio(0); !math.IsInf(got, 1) {
		t.Fatalf("gamma=0 should give +Inf window, got %v", got)
	}
	if got := WindowFromDropRatio(1); got != smallestWindow {
		t.Fatalf("gamma=1 should clamp to smallest window, got %v", got)
	}
	if got := WindowFromDropRatio(2); got != smallestWindow {
		t.Fatalf("gamma>1 should clamp, got %v", got)
	}
}

func TestEstimateFlowsConsistentWithCompute(t *testing.T) {
	// If n flows share c at rtt with implied window W, EstimateFlows must
	// recover n from (c, rtt, W).
	for _, n := range []int{1, 10, 30, 120} {
		p, err := Compute(2000, n, 0.12)
		if err != nil {
			t.Fatal(err)
		}
		if got := EstimateFlows(2000, 0.12, p.Window); !almost(got, float64(n), 1e-9) {
			t.Fatalf("EstimateFlows = %v, want %d", got, n)
		}
	}
	if got := EstimateFlows(100, 0.1, 0); got != 0 {
		t.Fatalf("EstimateFlows with zero window = %v", got)
	}
}

func TestMTD(t *testing.T) {
	if got := MTD(20, 0.1); !almost(got, 1.0, 1e-12) {
		t.Fatalf("MTD(20, 0.1) = %v, want 1", got)
	}
}

func TestDropRate(t *testing.T) {
	if got := DropRate(1000, 0.01); got != 10 {
		t.Fatalf("DropRate = %v", got)
	}
}

func TestAggregateRequestUnsyncFlat(t *testing.T) {
	for _, phase := range []float64{0, 0.25, 0.5, 0.99} {
		got := AggregateRequest(Unsynchronized, 10, 8, phase)
		if !almost(got, 10*0.75*8, 1e-12) {
			t.Fatalf("unsync request at phase %v = %v", phase, got)
		}
	}
}

func TestAggregateRequestSyncRange(t *testing.T) {
	n, w := 10, 8.0
	lo := AggregateRequest(Synchronized, n, w, 0)
	hi := AggregateRequest(Synchronized, n, w, 0.999999)
	if !almost(lo, float64(n)*w/2, 1e-9) {
		t.Fatalf("sync min = %v, want %v", lo, float64(n)*w/2)
	}
	if !almost(hi, float64(n)*w, 1e-3) {
		t.Fatalf("sync max = %v, want ~%v", hi, float64(n)*w)
	}
	// Peak-to-trough ratio is 2, as the paper states.
	if !almost(hi/lo, 2, 1e-3) {
		t.Fatalf("sync peak/trough = %v, want 2", hi/lo)
	}
}

func TestAggregateRequestPartialBetween(t *testing.T) {
	n, w := 20, 16.0
	for _, phase := range []float64{0.1, 0.5, 0.9} {
		s := AggregateRequest(Synchronized, n, w, phase)
		u := AggregateRequest(Unsynchronized, n, w, phase)
		p := AggregateRequest(PartiallySynchronized, n, w, phase)
		lo, hi := math.Min(s, u), math.Max(s, u)
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("partial request %v outside [%v, %v] at phase %v", p, lo, hi, phase)
		}
	}
}

func TestAggregateRequestPhaseWraps(t *testing.T) {
	a := AggregateRequest(Synchronized, 5, 10, 0.25)
	b := AggregateRequest(Synchronized, 5, 10, 1.25)
	if !almost(a, b, 1e-12) {
		t.Fatalf("phase did not wrap: %v vs %v", a, b)
	}
}

func TestAggregateRequestUnknownMode(t *testing.T) {
	if got := AggregateRequest(SyncMode(0), 5, 10, 0.5); got != 0 {
		t.Fatalf("unknown mode = %v, want 0", got)
	}
}

func TestUtilizationUnderSync(t *testing.T) {
	if UtilizationUnderSync(Unsynchronized) != 1.0 {
		t.Fatal("unsync utilization != 1")
	}
	if UtilizationUnderSync(Synchronized) != 0.75 {
		t.Fatal("sync utilization != 3/4")
	}
	u := UtilizationUnderSync(PartiallySynchronized)
	if u <= 0.75 || u >= 1 {
		t.Fatalf("partial utilization %v not in (0.75, 1)", u)
	}
}

func TestSyncBucketFactor(t *testing.T) {
	if got := SyncBucketFactor(); !almost(got, 4.0/3.0, 1e-15) {
		t.Fatalf("SyncBucketFactor = %v", got)
	}
}

func TestSyncModeString(t *testing.T) {
	cases := map[SyncMode]string{
		Unsynchronized:        "unsynchronized",
		Synchronized:          "synchronized",
		PartiallySynchronized: "partially-synchronized",
		SyncMode(42):          "SyncMode(42)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), got, want)
		}
	}
}
