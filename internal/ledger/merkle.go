// Package ledger is FLoc's forensic evidence layer. The router's typed
// event trace is ultimately an accusation — "domain X is contaminated,
// these flows are attack flows" — and an accusation is only as good as
// the evidence chain behind it. This package seals the event stream
// into tamper-evident storage: events are batched into segments at
// control-run boundaries, each segment's canonical NDJSON lines are
// hashed into a Merkle tree, and the segment roots are chained into a
// compact append-only ledger file. Bulk event bytes rotate across
// numbered NDJSON files so the hot in-memory trace ring stays bounded
// while the full history survives on cheap storage.
//
// Verification (cmd/floctrace) recomputes every segment root from the
// raw stored bytes, checks the hash chain across segment records, and
// spot-checks per-event inclusion proofs — so a flipped byte, a
// reordered pair of events, or a truncated tail is detected and named.
// Replay then folds the verified events through the same reconstruction
// the replay-equals-snapshot test uses, turning that test into a
// forensic tool: "this Snapshot really is what these events produce."
package ledger

import "crypto/sha256"

// HashSize is the byte length of every hash in the ledger (SHA-256).
const HashSize = sha256.Size

// Hash is one ledger hash value.
type Hash = [HashSize]byte

// Leaf and interior nodes are domain-separated (RFC 6962 style) so an
// interior node can never be replayed as a leaf: without the prefix,
// an attacker who controls leaf content could splice a subtree in as
// a single "event" with the same root.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one canonical event line (without its trailing
// newline) as a Merkle leaf.
func LeafHash(line []byte) Hash {
	var buf [1]byte
	buf[0] = leafPrefix
	h := sha256.New()
	h.Write(buf[:])
	h.Write(line)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes into their parent.
func nodeHash(left, right Hash) Hash {
	var buf [1 + 2*HashSize]byte
	buf[0] = nodePrefix
	copy(buf[1:], left[:])
	copy(buf[1+HashSize:], right[:])
	return sha256.Sum256(buf[:])
}

// splitPoint returns the largest power of two strictly less than n
// (n >= 2): the left-subtree width of an RFC 6962 tree over n leaves.
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// RootOf computes the Merkle root over the leaf hashes in order. The
// empty tree hashes to the hash of the empty string under the leaf
// prefix, so "no events" still has a well-defined commitment.
func RootOf(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return LeafHash(nil)
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(RootOf(leaves[:k]), RootOf(leaves[k:]))
}

// Proof returns the inclusion proof for leaf index i among n leaves:
// the sibling hashes from the leaf up to the root, in verification
// order. Returns nil when i is out of range.
func Proof(leaves []Hash, i int) []Hash {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	return proofRec(leaves, i, make([]Hash, 0, 64))
}

func proofRec(leaves []Hash, i int, acc []Hash) []Hash {
	if len(leaves) == 1 {
		return acc
	}
	k := splitPoint(len(leaves))
	if i < k {
		acc = proofRec(leaves[:k], i, acc)
		return append(acc, RootOf(leaves[k:]))
	}
	acc = proofRec(leaves[k:], i-k, acc)
	return append(acc, RootOf(leaves[:k]))
}

// VerifyInclusion checks that leaf sits at index i of an n-leaf tree
// with the given root, using proof as produced by Proof (siblings
// ordered leaf-upward). The recompute walks the same split geometry as
// RootOf top-down, consuming the proof from its far end, so a proof
// transplanted to a different index or tree size fails.
func VerifyInclusion(leaf Hash, i, n int, proof []Hash, root Hash) bool {
	if i < 0 || i >= n {
		return false
	}
	got, ok := rootFromProof(leaf, i, n, proof)
	return ok && got == root
}

// rootFromProof recomputes the root a proof claims; ok is false when
// the proof length does not match the tree geometry exactly.
func rootFromProof(leaf Hash, i, n int, proof []Hash) (Hash, bool) {
	if n == 1 {
		return leaf, len(proof) == 0
	}
	if len(proof) == 0 {
		return leaf, false
	}
	sib := proof[len(proof)-1]
	rest := proof[:len(proof)-1]
	k := splitPoint(n)
	if i < k {
		sub, ok := rootFromProof(leaf, i, k, rest)
		return nodeHash(sub, sib), ok
	}
	sub, ok := rootFromProof(leaf, i-k, n-k, rest)
	return nodeHash(sib, sub), ok
}
