package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// On-disk layout of a ledger directory:
//
//	ledger.bin          append-only chained segment-root records
//	events-000001.ndjson  bulk canonical event lines, rotated by size
//	events-000002.ndjson  ...
//	snapshot.json       (optional) the run's final merged Snapshot
//
// The ledger file is a 12-byte header followed by fixed-size 88-byte
// records, one per sealed segment:
//
//	offset  size  field
//	0       4     segment index (0-based, must equal record position)
//	4       4     events-file number the segment's lines live in
//	8       4     event count
//	12      4     flags (bit 0: partial tail segment, sealed at Close
//	              without a closing control run)
//	16      8     control-run counter carried by the sealing event
//	24      32    Merkle root over the segment's canonical lines
//	56      32    chain hash: SHA-256(prev chain ‖ first 56 bytes)
//
// The chain hash of the last record is the ledger head. Publishing the
// head out-of-band (a log line, a monitoring system, another machine)
// anchors the whole history: any in-place edit, reorder, or mid-file
// truncation breaks either a segment root, the chain, or the
// events-file/ledger correspondence, and a tail truncation of *both*
// files is exposed by the anchored head no longer being derivable.

// Magic and version identify the ledger file format.
var ledgerMagic = [8]byte{'F', 'L', 'O', 'C', 'L', 'E', 'D', 'G'}

const (
	ledgerVersion = 1
	headerSize    = 12
	recordSize    = 88
	chainedSize   = recordSize - HashSize // bytes covered by the chain hash

	// FlagPartial marks a tail segment sealed at Close without a
	// closing ControlRunCompleted event.
	FlagPartial = 1 << 0

	// LedgerName and EventsPattern name the files inside a ledger dir.
	LedgerName    = "ledger.bin"
	EventsPattern = "events-%06d.ndjson"
	// SnapshotName is the conventional claimed-snapshot file.
	SnapshotName = "snapshot.json"

	// maxSegmentEvents bounds the per-segment event count accepted from
	// an untrusted ledger file, so a corrupt record cannot drive the
	// verifier into an absurd read loop.
	maxSegmentEvents = 1 << 28
)

// Record is one sealed segment's ledger entry.
type Record struct {
	Segment    uint32 // 0-based segment index
	File       uint32 // events-file number holding the segment's lines
	Events     uint32 // number of event lines in the segment
	Flags      uint32 // FlagPartial et al.
	ControlRun uint64 // control-run counter of the sealing event (0 if partial)
	Root       Hash   // Merkle root over the segment's canonical lines
	Chain      Hash   // SHA-256(prev chain ‖ encoded record sans chain)
}

// encodeInto writes the record into dst (>= recordSize bytes); the
// chain field must already be set.
func (r *Record) encodeInto(dst []byte) {
	binary.BigEndian.PutUint32(dst[0:], r.Segment)
	binary.BigEndian.PutUint32(dst[4:], r.File)
	binary.BigEndian.PutUint32(dst[8:], r.Events)
	binary.BigEndian.PutUint32(dst[12:], r.Flags)
	binary.BigEndian.PutUint64(dst[16:], r.ControlRun)
	copy(dst[24:], r.Root[:])
	copy(dst[56:], r.Chain[:])
}

// decodeRecord parses one fixed-size record.
func decodeRecord(src []byte, r *Record) {
	r.Segment = binary.BigEndian.Uint32(src[0:])
	r.File = binary.BigEndian.Uint32(src[4:])
	r.Events = binary.BigEndian.Uint32(src[8:])
	r.Flags = binary.BigEndian.Uint32(src[12:])
	r.ControlRun = binary.BigEndian.Uint64(src[16:])
	copy(r.Root[:], src[24:])
	copy(r.Chain[:], src[56:])
}

// chainSeed is the chain value "before" the first record: the hash of
// the file header, so even segment 0 is bound to the format version.
func chainSeed() Hash {
	var hdr [headerSize]byte
	copy(hdr[:], ledgerMagic[:])
	binary.BigEndian.PutUint16(hdr[8:], ledgerVersion)
	return sha256.Sum256(hdr[:])
}

// chainHash extends the chain over one record's covered bytes.
func chainHash(prev Hash, covered []byte) Hash {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(covered)
	var out Hash
	h.Sum(out[:0])
	return out
}

// ErrorKind discriminates verification failures.
//
//floc:enum
type ErrorKind uint8

const (
	// ErrBadHeader: the ledger file's magic or version is wrong.
	ErrBadHeader ErrorKind = iota
	// ErrBadRecord: a ledger record is internally inconsistent (index
	// out of sequence, file number not monotone, absurd event count).
	ErrBadRecord
	// ErrChainMismatch: a record's chain hash does not extend its
	// predecessor — the ledger was edited or spliced.
	ErrChainMismatch
	// ErrRootMismatch: a segment's recomputed Merkle root differs from
	// the sealed one — event bytes were altered or reordered.
	ErrRootMismatch
	// ErrSegmentTruncated: an events file ended before yielding the
	// segment's sealed event count.
	ErrSegmentTruncated
	// ErrTrailingEvents: event lines exist beyond what the ledger
	// seals — the ledger tail was truncated or events were appended.
	ErrTrailingEvents
	// ErrProofInvalid: a recomputed inclusion proof failed against the
	// sealed root (internal inconsistency in the proof machinery or a
	// mid-verification mutation of the stored bytes).
	ErrProofInvalid
	// ErrMissingFile: a file the ledger references does not exist.
	ErrMissingFile
	// ErrEventDecode: a sealed line is not a decodable telemetry event
	// (only checked when events are collected for replay).
	ErrEventDecode

	numErrorKinds //floc:enumbound
)

// errorKindNames is indexed by ErrorKind; the exhaustiveness test
// asserts every kind below numErrorKinds has a unique non-empty label.
var errorKindNames = [numErrorKinds]string{
	ErrBadHeader:        "bad-header",
	ErrBadRecord:        "bad-record",
	ErrChainMismatch:    "chain-mismatch",
	ErrRootMismatch:     "root-mismatch",
	ErrSegmentTruncated: "segment-truncated",
	ErrTrailingEvents:   "trailing-events",
	ErrProofInvalid:     "proof-invalid",
	ErrMissingFile:      "missing-file",
	ErrEventDecode:      "event-decode",
}

// NumErrorKinds returns the number of defined verification error kinds.
func NumErrorKinds() int { return int(numErrorKinds) }

// String returns the kind's stable label.
func (k ErrorKind) String() string {
	if k < numErrorKinds {
		return errorKindNames[k]
	}
	return fmt.Sprintf("ErrorKind(%d)", uint8(k))
}

// NoSegment is the VerifyError.Segment value for failures not
// attributable to a specific segment (e.g. a bad file header).
const NoSegment = ^uint32(0)

// VerifyError is a typed verification failure naming the offending
// segment, so tooling (and the tamper tests) can assert exactly what
// was detected and where.
type VerifyError struct {
	Kind    ErrorKind
	Segment uint32 // offending segment index, or NoSegment
	Detail  string
}

// Error renders "ledger: <kind> at segment N: detail".
func (e *VerifyError) Error() string {
	if e.Segment == NoSegment {
		return fmt.Sprintf("ledger: %s: %s", e.Kind, e.Detail)
	}
	return fmt.Sprintf("ledger: %s at segment %d: %s", e.Kind, e.Segment, e.Detail)
}

// verifyErrf builds a VerifyError with a formatted detail.
func verifyErrf(kind ErrorKind, segment uint32, format string, args ...any) *VerifyError {
	return &VerifyError{Kind: kind, Segment: segment, Detail: fmt.Sprintf(format, args...)}
}

// readLedger parses a ledger stream: header check, fixed-size records,
// chain recomputation, and structural sanity per record. It returns the
// records with their chains already validated.
func readLedger(r io.Reader) ([]Record, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, verifyErrf(ErrBadHeader, NoSegment, "reading header: %v", err)
	}
	if [8]byte(hdr[:8]) != ledgerMagic {
		return nil, verifyErrf(ErrBadHeader, NoSegment, "bad magic %q", hdr[:8])
	}
	if v := binary.BigEndian.Uint16(hdr[8:]); v != ledgerVersion {
		return nil, verifyErrf(ErrBadHeader, NoSegment, "unsupported version %d", v)
	}
	chain := chainSeed()
	var recs []Record
	var buf [recordSize]byte
	for i := 0; ; i++ {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, verifyErrf(ErrBadRecord, uint32(i), "short record: %v", err)
		}
		var rec Record
		decodeRecord(buf[:], &rec)
		if rec.Segment != uint32(i) {
			return nil, verifyErrf(ErrBadRecord, uint32(i),
				"record %d claims segment index %d", i, rec.Segment)
		}
		if rec.Events == 0 || rec.Events > maxSegmentEvents {
			return nil, verifyErrf(ErrBadRecord, uint32(i),
				"implausible event count %d", rec.Events)
		}
		if prevFile := fileOfPrev(recs); rec.File < prevFile || rec.File == 0 {
			return nil, verifyErrf(ErrBadRecord, uint32(i),
				"events-file number %d not monotone from %d", rec.File, prevFile)
		}
		chain = chainHash(chain, buf[:chainedSize])
		if chain != rec.Chain {
			return nil, verifyErrf(ErrChainMismatch, uint32(i),
				"chain hash does not extend segment %d's predecessor", i)
		}
		recs = append(recs, rec)
	}
}

// fileOfPrev returns the last record's events-file number (1 before any
// segment exists, since file numbering starts at 1).
func fileOfPrev(recs []Record) uint32 {
	if len(recs) == 0 {
		return 1
	}
	return recs[len(recs)-1].File
}
