package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"

	"floc/internal/core"
	"floc/internal/telemetry"
)

// ReplayResult is the router state reconstructed from an event stream —
// the forensic generalization of the replay-equals-snapshot test: fold
// the journal, then Diff against the Snapshot the run claims it ended
// in. Events may come from a single router (shard 0 throughout) or a
// sharded dataplane (per-shard streams interleaved arbitrarily); the
// fold keeps per-shard mode and control-run state and merges them the
// way dataplane.Engine merges shard snapshots.
type ReplayResult struct {
	Arrived  int64
	Admitted int64
	Dropped  int64

	AdmittedByPath map[string]int64
	DroppedByPath  map[string]int64
	DropsByReason  map[string]int64
	// Aggregates maps aggregate keys to sorted member path keys, as
	// reconstructed from aggregation/release/expiry transitions.
	Aggregates map[string][]string
	// Mode is the most severe final queue mode across shards.
	Mode core.Mode
	// ControlRuns sums each shard's last cumulative control-run count.
	ControlRuns int
	// Events is the number of events folded.
	Events int
}

// modeSeverity orders the queue-mode labels for the cross-shard merge.
func modeSeverity(label string) core.Mode {
	for _, m := range [3]core.Mode{core.ModeUncongested, core.ModeCongested, core.ModeFlooding} {
		if m.String() == label {
			return m
		}
	}
	return core.ModeUncongested
}

// Replay folds an event stream oldest-first into a ReplayResult.
func Replay(events []telemetry.Event) *ReplayResult {
	res := &ReplayResult{
		AdmittedByPath: map[string]int64{},
		DroppedByPath:  map[string]int64{},
		DropsByReason:  map[string]int64{},
		Aggregates:     map[string][]string{},
		Mode:           core.ModeUncongested,
		Events:         len(events),
	}
	member := map[string]string{}       // origin path -> aggregate key
	shardMode := map[uint32]core.Mode{} // shard -> last observed mode
	shardRuns := map[uint32]int64{}     // shard -> last cumulative control-run count
	for _, e := range events {
		switch e.Type {
		case telemetry.EventPacketAdmitted:
			res.Admitted++
			res.AdmittedByPath[e.Path]++
		case telemetry.EventPacketDropped:
			res.Dropped++
			res.DroppedByPath[e.Path]++
			res.DropsByReason[e.Reason]++
		case telemetry.EventPathExpired:
			// Expiry deletes the origin state: counters restart if the
			// path reappears, and the next plan rebuild drops it from
			// its aggregate without a release event.
			delete(res.AdmittedByPath, e.Path)
			delete(res.DroppedByPath, e.Path)
			delete(member, e.Path)
		case telemetry.EventPathAggregated:
			member[e.Path] = e.Agg
		case telemetry.EventPathReleased:
			if member[e.Path] == e.Agg {
				delete(member, e.Path)
			}
		case telemetry.EventModeChanged:
			shardMode[e.Shard] = modeSeverity(e.Mode)
		case telemetry.EventControlRunCompleted:
			shardRuns[e.Shard] = int64(e.Value)
		case telemetry.EventFlowClassifiedAttack:
			// Flow-level accusations carry no snapshot counterpart to
			// reconcile; they stand on their own inclusion proofs.
		case telemetry.EventFeedbackApplied:
			// Cluster limit installs gate admission *before* the router,
			// so they change no router counter the snapshot records; the
			// drops they cause never reach the router at all. Folded as a
			// no-op to keep replay-equals-snapshot exact.
		}
	}
	res.Arrived = res.Admitted + res.Dropped
	for path, agg := range member {
		res.Aggregates[agg] = append(res.Aggregates[agg], path)
	}
	for _, members := range res.Aggregates {
		sort.Strings(members)
	}
	for _, m := range shardMode {
		if m > res.Mode {
			res.Mode = m
		}
	}
	var runs int64
	for _, n := range shardRuns {
		runs += n
	}
	res.ControlRuns = int(runs)
	return res
}

// Diff compares the reconstruction against a claimed Snapshot and
// returns one human-readable line per disagreement (empty = the journal
// reproduces the claim exactly). The checks mirror the replay-equals-
// snapshot test: lifetime counters, per-reason drops both ways,
// per-path tallies both ways, aggregation membership, final mode, and
// control-run count.
func (r *ReplayResult) Diff(snap core.Snapshot) []string {
	var diffs []string
	addf := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if r.Admitted != snap.Admitted {
		addf("admitted: replayed %d, snapshot %d", r.Admitted, snap.Admitted)
	}
	if r.Arrived != snap.Arrived {
		addf("arrived: replayed %d, snapshot %d", r.Arrived, snap.Arrived)
	}
	for _, reason := range sortedKeys(snap.Drops) {
		if got, want := r.DropsByReason[reason], snap.Drops[reason]; got != want {
			addf("drops[%s]: replayed %d, snapshot %d", reason, got, want)
		}
	}
	for _, reason := range sortedKeys(r.DropsByReason) {
		if _, ok := snap.Drops[reason]; !ok {
			addf("drops[%s]: replayed %d, snapshot has no such reason", reason, r.DropsByReason[reason])
		}
	}
	snapPaths := map[string]bool{}
	for _, p := range snap.Paths {
		snapPaths[p.Key] = true
		if got := r.AdmittedByPath[p.Key]; got != p.AdmittedPackets {
			addf("path %s admitted: replayed %d, snapshot %d", p.Key, got, p.AdmittedPackets)
		}
		if got := r.DroppedByPath[p.Key]; got != p.DroppedPackets {
			addf("path %s dropped: replayed %d, snapshot %d", p.Key, got, p.DroppedPackets)
		}
	}
	for _, key := range sortedKeys(r.AdmittedByPath) {
		if !snapPaths[key] {
			addf("path %s admitted %d packets but is absent from the snapshot", key, r.AdmittedByPath[key])
		}
	}
	for _, key := range sortedKeys(r.DroppedByPath) {
		if !snapPaths[key] {
			addf("path %s dropped %d packets but is absent from the snapshot", key, r.DroppedByPath[key])
		}
	}
	snapAggs := snap.Aggregates
	if snapAggs == nil {
		snapAggs = map[string][]string{}
	}
	if !reflect.DeepEqual(r.Aggregates, snapAggs) {
		addf("aggregates: replayed %v, snapshot %v", r.Aggregates, snapAggs)
	}
	if r.Mode != snap.Mode {
		addf("mode: replayed %s, snapshot %s", r.Mode, snap.Mode)
	}
	if r.ControlRuns != snap.ControlRuns {
		addf("control runs: replayed %d, snapshot %d", r.ControlRuns, snap.ControlRuns)
	}
	return diffs
}

// sortedKeys returns m's keys sorted, for deterministic diff output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteSnapshot stores a claimed Snapshot as indented JSON (map keys
// sorted by encoding/json, so output is deterministic).
func WriteSnapshot(path string, snap core.Snapshot) error {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: encoding snapshot: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSnapshot loads a claimed Snapshot.
func ReadSnapshot(path string) (core.Snapshot, error) {
	var snap core.Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		return snap, fmt.Errorf("ledger: decoding snapshot %s: %w", path, err)
	}
	return snap, nil
}
