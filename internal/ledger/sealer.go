package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"floc/internal/telemetry"
)

// SealerOptions parameterizes a Sealer.
type SealerOptions struct {
	// RotateBytes rotates the bulk events file to the next number once
	// it exceeds this size (checked at segment boundaries, so a segment
	// is always contiguous within one file). 0 defaults to 8 MiB.
	RotateBytes int64 //floc:unit bytes
}

// Sealer is a telemetry.EventSink that seals the event stream into a
// ledger directory. Events buffer in memory until a ControlRunCompleted
// event closes the segment; sealing hashes each buffered canonical line
// into a Merkle tree, appends the chained segment record to ledger.bin,
// and spills the bulk lines to the current numbered events file.
//
// Emit is safe for concurrent use (the dataplane's shard routers all
// feed one Sealer), and I/O failures are sticky: the first error stops
// further sealing and is reported by Close/Err, because a forensic
// ledger that silently drops segments would be worse than none.
type Sealer struct {
	mu   sync.Mutex
	dir  string
	opts SealerOptions

	ledger *os.File
	lw     *bufio.Writer

	fileNum   uint32
	events    *os.File
	ew        *bufio.Writer
	fileBytes int64 //floc:unit bytes

	seg    uint32
	chain  Hash
	lines  []byte // pending canonical lines, each newline-terminated
	leaves []Hash
	count  uint32

	totalEvents int64
	err         error
}

// NewSealer creates the ledger directory (if needed) and the ledger and
// first events files inside it. An existing ledger.bin is refused: the
// ledger is evidence, and silently resealing over it would break the
// chain anchored by any previously published head.
func NewSealer(dir string, opts SealerOptions) (*Sealer, error) {
	if opts.RotateBytes <= 0 {
		opts.RotateBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	lf, err := os.OpenFile(filepath.Join(dir, LedgerName),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: refusing to reseal: %w", err)
	}
	s := &Sealer{
		dir:     dir,
		opts:    opts,
		ledger:  lf,
		lw:      bufio.NewWriter(lf),
		fileNum: 1,
		chain:   chainSeed(),
	}
	var hdr [headerSize]byte
	copy(hdr[:], ledgerMagic[:])
	hdr[8] = byte(ledgerVersion >> 8)
	hdr[9] = byte(ledgerVersion)
	if _, err := s.lw.Write(hdr[:]); err != nil {
		lf.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if err := s.openEvents(); err != nil {
		lf.Close()
		return nil, err
	}
	return s, nil
}

// openEvents opens the current numbered events file for writing.
func (s *Sealer) openEvents() error {
	f, err := os.OpenFile(filepath.Join(s.dir, fmt.Sprintf(EventsPattern, s.fileNum)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	s.events = f
	s.ew = bufio.NewWriter(f)
	s.fileBytes = 0
	return nil
}

// Emit implements telemetry.EventSink: buffer the event's canonical
// encoding, and seal the pending segment when a control run completes.
//
// floc:coldpath forensic sealing is an opt-in excursion; encoding and hashing evidence is its whole point and never runs when no ledger is attached
func (s *Sealer) Emit(e telemetry.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		s.err = fmt.Errorf("ledger: encoding event: %w", err)
		return
	}
	s.lines = append(s.lines, line...)
	s.lines = append(s.lines, '\n')
	s.leaves = append(s.leaves, LeafHash(line))
	s.count++
	s.totalEvents++
	if e.Type == telemetry.EventControlRunCompleted {
		s.seal(uint64(e.Value), 0)
	}
}

// seal closes the pending segment: rotate the events file if it grew
// past the budget, spill the buffered lines, and append the chained
// record. Caller holds s.mu.
//
// floc:coldpath sealing runs once per control-run boundary, never per packet
func (s *Sealer) seal(controlRun uint64, flags uint32) {
	if s.count == 0 || s.err != nil {
		return
	}
	if s.fileBytes >= s.opts.RotateBytes {
		s.rotate()
		if s.err != nil {
			return
		}
	}
	if _, err := s.ew.Write(s.lines); err != nil {
		s.err = fmt.Errorf("ledger: writing segment %d events: %w", s.seg, err)
		return
	}
	s.fileBytes += int64(len(s.lines))

	rec := Record{
		Segment:    s.seg,
		File:       s.fileNum,
		Events:     s.count,
		Flags:      flags,
		ControlRun: controlRun,
		Root:       RootOf(s.leaves),
	}
	var buf [recordSize]byte
	rec.encodeInto(buf[:])
	s.chain = chainHash(s.chain, buf[:chainedSize])
	rec.Chain = s.chain
	rec.encodeInto(buf[:])
	if _, err := s.lw.Write(buf[:]); err != nil {
		s.err = fmt.Errorf("ledger: appending segment %d record: %w", s.seg, err)
		return
	}
	// Flush both streams per segment: a crash loses at most the
	// unsealed tail, never a sealed segment's record/bytes pairing.
	if err := s.ew.Flush(); err != nil {
		s.err = fmt.Errorf("ledger: flushing events: %w", err)
		return
	}
	if err := s.lw.Flush(); err != nil {
		s.err = fmt.Errorf("ledger: flushing ledger: %w", err)
		return
	}
	s.seg++
	s.lines = s.lines[:0]
	s.leaves = s.leaves[:0]
	s.count = 0
}

// rotate advances to the next numbered events file. Caller holds s.mu.
//
// floc:coldpath rotation happens at most once per sealed segment
func (s *Sealer) rotate() {
	if err := s.ew.Flush(); err != nil {
		s.err = fmt.Errorf("ledger: flushing events: %w", err)
		return
	}
	if err := s.events.Close(); err != nil {
		s.err = fmt.Errorf("ledger: closing events file %d: %w", s.fileNum, err)
		return
	}
	s.fileNum++
	if err := s.openEvents(); err != nil {
		s.err = err
	}
}

// Close seals any trailing events as a partial segment (FlagPartial, no
// closing control run), flushes, and closes the files. It returns the
// first error the sealer hit, if any.
func (s *Sealer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seal(0, FlagPartial)
	if s.ew != nil {
		if err := s.ew.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("ledger: flushing events: %w", err)
		}
	}
	if s.events != nil {
		if err := s.events.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("ledger: closing events: %w", err)
		}
		s.events = nil
	}
	if s.lw != nil {
		if err := s.lw.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("ledger: flushing ledger: %w", err)
		}
	}
	if s.ledger != nil {
		if err := s.ledger.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("ledger: closing ledger: %w", err)
		}
		s.ledger = nil
	}
	return s.err
}

// Head returns the current chain head: the value to publish out-of-band
// to anchor the ledger.
func (s *Sealer) Head() Hash {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chain
}

// Segments returns how many segments have been sealed so far.
func (s *Sealer) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.seg)
}

// Events returns how many events the sealer has received.
func (s *Sealer) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalEvents
}

// Err returns the sealer's sticky error without closing it.
func (s *Sealer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
