package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// sealTampered seals a known three-segment run and returns its directory.
func sealTampered(t *testing.T) string {
	t.Helper()
	dir, _ := sealDir(t, SealerOptions{}, synthRun(3, 15, 0))
	return dir
}

// wantVerifyError runs Verify and asserts the typed failure names both
// the expected kind and segment.
func wantVerifyError(t *testing.T, dir string, kind ErrorKind, segment uint32) {
	t.Helper()
	_, err := Verify(dir)
	if err == nil {
		t.Fatal("Verify accepted a tampered ledger")
	}
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *VerifyError: %v", err, err)
	}
	if verr.Kind != kind {
		t.Fatalf("kind = %s, want %s (err: %v)", verr.Kind, kind, err)
	}
	if verr.Segment != segment {
		t.Fatalf("segment = %d, want %d (err: %v)", verr.Segment, segment, err)
	}
}

// segmentLineRange locates segment seg's line span within the events file.
func segmentLineRange(t *testing.T, dir string, seg uint32) (path string, first, count int) {
	t.Helper()
	lf, err := os.Open(filepath.Join(dir, LedgerName))
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	recs, err := readLedger(lf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Segment == seg {
			return filepath.Join(dir, "events-000001.ndjson"), first, int(rec.Events)
		}
		first += int(rec.Events)
	}
	t.Fatalf("segment %d not found", seg)
	return "", 0, 0
}

func TestTamperByteFlipDetected(t *testing.T) {
	dir := sealTampered(t)
	path, first, _ := segmentLineRange(t, dir, 1)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	// Flip one digit inside segment 1's first event (its "t" value), so
	// the line still parses but the bytes no longer match the sealed root.
	line := lines[first]
	i := bytes.LastIndexAny(line, "0123456789")
	line[i] = '0' + ('9'-(line[i]-'0'))%10
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrRootMismatch, 1)
}

func TestTamperReorderDetected(t *testing.T) {
	dir := sealTampered(t)
	path, first, count := segmentLineRange(t, dir, 2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if count < 2 {
		t.Fatal("segment too small to reorder")
	}
	lines[first], lines[first+1] = lines[first+1], lines[first]
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrRootMismatch, 2)
}

func TestTamperLedgerTailTruncated(t *testing.T) {
	dir := sealTampered(t)
	path := filepath.Join(dir, LedgerName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last record: its events become orphaned lines that no
	// sealed segment accounts for.
	if err := os.Truncate(path, fi.Size()-recordSize); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrTrailingEvents, 1)
}

func TestTamperEventsTailTruncated(t *testing.T) {
	dir := sealTampered(t)
	path := filepath.Join(dir, "events-000001.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	lines = lines[:len(lines)-3]
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrSegmentTruncated, 2)
}

func TestTamperLedgerRecordEdited(t *testing.T) {
	dir := sealTampered(t)
	path := filepath.Join(dir, LedgerName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 1's stored root: the chain hash covers
	// it, so the forgery is caught before any event is even read.
	b[headerSize+recordSize+24] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrChainMismatch, 1)
}

func TestTamperHeaderEdited(t *testing.T) {
	dir := sealTampered(t)
	path := filepath.Join(dir, LedgerName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrBadHeader, NoSegment)
}

func TestTamperEventsFileDeleted(t *testing.T) {
	dir := sealTampered(t)
	if err := os.Remove(filepath.Join(dir, "events-000001.ndjson")); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, dir, ErrMissingFile, NoSegment)
}

func TestTamperUndecodableEventOnlyFailsCollect(t *testing.T) {
	// Overwrite one line with same-length garbage that still hashes: the
	// root catches the byte change first. To isolate ErrEventDecode we
	// must reseal with a line that was garbage from the start — emulate
	// by sealing a crafted file through the internal APIs.
	dir := filepath.Join(t.TempDir(), "ledger")
	s, err := NewSealer(dir, SealerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Bypass Emit's marshalling: inject a raw non-JSON line.
	s.lines = append(s.lines, []byte("not-json\n")...)
	s.leaves = append(s.leaves, LeafHash([]byte("not-json")))
	s.count++
	s.seal(1, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("structural Verify should accept opaque lines: %v", err)
	}
	_, _, err = VerifyCollect(dir)
	var verr *VerifyError
	if !errors.As(err, &verr) || verr.Kind != ErrEventDecode || verr.Segment != 0 {
		t.Fatalf("VerifyCollect = %v, want event-decode at segment 0", err)
	}
}
