package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"floc/internal/telemetry"
)

// VerifyReport summarizes a successful verification.
type VerifyReport struct {
	Segments    int
	Events      int64
	Files       int
	ProofChecks int
	Head        Hash // final chain value; publish to anchor the ledger
}

// Verify checks a ledger directory end-to-end: header and record
// structure, the chain across records, every segment's recomputed
// Merkle root against its stored bytes, spot inclusion proofs per
// segment, and that no unsealed event lines trail the ledger. Any
// failure is a *VerifyError naming the offending segment.
func Verify(dir string) (*VerifyReport, error) {
	rep, _, err := walk(dir, false)
	return rep, err
}

// VerifyCollect is Verify plus decoding: the sealed events are returned
// oldest-first for replay, and an undecodable line is itself a
// verification failure (the canonical encoding must parse).
func VerifyCollect(dir string) (*VerifyReport, []telemetry.Event, error) {
	return walk(dir, true)
}

// eventsCursor reads event lines across the numbered bulk files in
// ledger order.
type eventsCursor struct {
	dir     string
	fileNum uint32
	f       *os.File
	sc      *bufio.Scanner
	opened  int
}

// open positions the cursor at the start of file n.
func (c *eventsCursor) open(n uint32) error {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
	f, err := os.Open(filepath.Join(c.dir, fmt.Sprintf(EventsPattern, n)))
	if err != nil {
		return verifyErrf(ErrMissingFile, NoSegment, "events file %d: %v", n, err)
	}
	c.f = f
	c.fileNum = n
	c.opened++
	c.sc = bufio.NewScanner(f)
	c.sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	return nil
}

// next returns the next line of the current file, or (nil, false) at
// EOF. Scanner errors surface as truncation of whoever asked.
func (c *eventsCursor) next() ([]byte, bool, error) {
	if c.sc.Scan() {
		return c.sc.Bytes(), true, nil
	}
	return nil, false, c.sc.Err()
}

func (c *eventsCursor) close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// walk drives the shared verification pass.
func walk(dir string, collect bool) (*VerifyReport, []telemetry.Event, error) {
	lf, err := os.Open(filepath.Join(dir, LedgerName))
	if err != nil {
		return nil, nil, verifyErrf(ErrMissingFile, NoSegment, "%v", err)
	}
	defer lf.Close()
	recs, err := readLedger(bufio.NewReader(lf))
	if err != nil {
		return nil, nil, err
	}

	cur := &eventsCursor{dir: dir}
	defer cur.close()
	if err := cur.open(1); err != nil {
		if len(recs) == 0 {
			// An empty ledger with no events file is a validly sealed
			// empty run only if the first file exists; require it, so a
			// deleted bulk file cannot masquerade as "no events".
			return nil, nil, err
		}
		return nil, nil, err
	}

	rep := &VerifyReport{Head: chainSeed()}
	var events []telemetry.Event
	leaves := make([]Hash, 0, 4096)
	for _, rec := range recs {
		// Advance to the record's file. Leftover lines in an earlier
		// file mean the stored bytes and the ledger disagree.
		for cur.fileNum < rec.File {
			if line, more, err := cur.next(); err != nil {
				return nil, nil, verifyErrf(ErrSegmentTruncated, rec.Segment,
					"reading events file %d: %v", cur.fileNum, err)
			} else if more {
				return nil, nil, verifyErrf(ErrTrailingEvents, rec.Segment,
					"events file %d holds lines (%q…) beyond its sealed segments", cur.fileNum, clip(line))
			}
			if err := cur.open(cur.fileNum + 1); err != nil {
				return nil, nil, err
			}
		}
		leaves = leaves[:0]
		for i := uint32(0); i < rec.Events; i++ {
			line, more, err := cur.next()
			if err != nil {
				return nil, nil, verifyErrf(ErrSegmentTruncated, rec.Segment,
					"reading events file %d: %v", cur.fileNum, err)
			}
			if !more {
				return nil, nil, verifyErrf(ErrSegmentTruncated, rec.Segment,
					"events file %d ended after %d of %d events", cur.fileNum, i, rec.Events)
			}
			leaves = append(leaves, LeafHash(line))
			if collect {
				var e telemetry.Event
				if err := json.Unmarshal(line, &e); err != nil {
					return nil, nil, verifyErrf(ErrEventDecode, rec.Segment,
						"event %d: %v", i, err)
				}
				events = append(events, e)
			}
		}
		if got := RootOf(leaves); got != rec.Root {
			return nil, nil, verifyErrf(ErrRootMismatch, rec.Segment,
				"recomputed root %x != sealed %x", got[:8], rec.Root[:8])
		}
		checks, err := proveSamples(rec, leaves)
		if err != nil {
			return nil, nil, err
		}
		rep.ProofChecks += checks
		rep.Events += int64(rec.Events)
		rep.Head = rec.Chain
	}

	// Nothing may trail the last sealed segment, in this or any later
	// numbered file: a truncated ledger tail leaves orphaned lines here.
	lastSeg := NoSegment
	if n := len(recs); n > 0 {
		lastSeg = recs[n-1].Segment
	}
	for {
		if line, more, err := cur.next(); err != nil {
			return nil, nil, verifyErrf(ErrSegmentTruncated, lastSeg,
				"reading events file %d: %v", cur.fileNum, err)
		} else if more {
			return nil, nil, verifyErrf(ErrTrailingEvents, lastSeg,
				"events file %d holds lines (%q…) beyond the sealed ledger", cur.fileNum, clip(line))
		}
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf(EventsPattern, cur.fileNum+1))); err != nil {
			break
		}
		if err := cur.open(cur.fileNum + 1); err != nil {
			return nil, nil, err
		}
	}

	rep.Segments = len(recs)
	rep.Files = cur.opened
	return rep, events, nil
}

// proveSamples exercises the inclusion-proof machinery on up to three
// distinct leaves per segment (first, middle, last). A failure here
// after the root already matched means Proof/VerifyInclusion disagree
// with RootOf about the same bytes — still reported as a typed error
// rather than trusted silently.
func proveSamples(rec Record, leaves []Hash) (int, error) {
	n := len(leaves)
	checks := 0
	prev := -1
	for _, i := range [3]int{0, n / 2, n - 1} {
		if i <= prev || i >= n {
			continue
		}
		prev = i
		if !VerifyInclusion(leaves[i], i, n, Proof(leaves, i), rec.Root) {
			return checks, verifyErrf(ErrProofInvalid, rec.Segment,
				"inclusion proof for leaf %d failed", i)
		}
		checks++
	}
	return checks, nil
}

// clip bounds a line excerpt for error messages.
func clip(line []byte) []byte {
	const max = 40
	if len(line) > max {
		return append(bytes.Clone(line[:max]), '.', '.', '.')
	}
	return line
}
