package ledger

import (
	"fmt"
	"path/filepath"
	"testing"

	"floc/internal/telemetry"
)

// synthRun emits count packet events per control run across runs control
// runs, closing each with a ControlRunCompleted carrying the cumulative
// run counter, plus tail extra events left unsealed until Close.
func synthRun(runs, count, tail int) []telemetry.Event {
	var events []telemetry.Event
	tick := 0.0
	for run := 1; run <= runs; run++ {
		for i := 0; i < count; i++ {
			tick += 0.001
			e := telemetry.Event{Time: tick, Type: telemetry.EventPacketAdmitted,
				Path: fmt.Sprintf("10-%d-1", i%4)}
			if i%5 == 4 {
				e.Type = telemetry.EventPacketDropped
				e.Reason = "no-token"
			}
			events = append(events, e)
		}
		tick += 0.001
		events = append(events, telemetry.Event{Time: tick,
			Type: telemetry.EventControlRunCompleted, Value: float64(run)})
	}
	for i := 0; i < tail; i++ {
		tick += 0.001
		events = append(events, telemetry.Event{Time: tick,
			Type: telemetry.EventPacketAdmitted, Path: "10-0-1"})
	}
	return events
}

// sealDir seals events into a fresh ledger under t.TempDir.
func sealDir(t *testing.T, opts SealerOptions, events []telemetry.Event) (string, Hash) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ledger")
	s, err := NewSealer(dir, opts)
	if err != nil {
		t.Fatalf("NewSealer: %v", err)
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir, s.Head()
}

func TestSealVerifyRoundTrip(t *testing.T) {
	events := synthRun(3, 20, 5)
	dir, head := sealDir(t, SealerOptions{}, events)

	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Segments != 4 { // 3 control-run segments + 1 partial tail
		t.Fatalf("segments = %d, want 4", rep.Segments)
	}
	if rep.Events != int64(len(events)) {
		t.Fatalf("events = %d, want %d", rep.Events, len(events))
	}
	if rep.Head != head {
		t.Fatalf("verified head %x != sealer head %x", rep.Head[:8], head[:8])
	}
	if rep.ProofChecks == 0 {
		t.Fatal("no inclusion proofs were checked")
	}

	_, got, err := VerifyCollect(dir)
	if err != nil {
		t.Fatalf("VerifyCollect: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("collected %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d round-trip mismatch: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestSealIsDeterministic(t *testing.T) {
	events := synthRun(2, 10, 0)
	_, h1 := sealDir(t, SealerOptions{}, events)
	_, h2 := sealDir(t, SealerOptions{}, events)
	if h1 != h2 {
		t.Fatalf("identical event streams sealed to different heads: %x != %x", h1[:8], h2[:8])
	}
	_, h3 := sealDir(t, SealerOptions{}, synthRun(2, 11, 0))
	if h3 == h1 {
		t.Fatal("different event streams sealed to the same head")
	}
}

func TestRotationSpansFiles(t *testing.T) {
	events := synthRun(8, 30, 0)
	dir, _ := sealDir(t, SealerOptions{RotateBytes: 512}, events)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Files < 3 {
		t.Fatalf("expected rotation across >= 3 files, got %d", rep.Files)
	}
	if rep.Segments != 8 {
		t.Fatalf("segments = %d, want 8", rep.Segments)
	}
}

func TestNoTailNoPartialSegment(t *testing.T) {
	dir, _ := sealDir(t, SealerOptions{}, synthRun(2, 5, 0))
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Segments != 2 {
		t.Fatalf("segments = %d, want 2 (no partial tail)", rep.Segments)
	}
}

func TestEmptyRunVerifies(t *testing.T) {
	dir, _ := sealDir(t, SealerOptions{}, nil)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Segments != 0 || rep.Events != 0 {
		t.Fatalf("empty run reported %d segments / %d events", rep.Segments, rep.Events)
	}
	if rep.Head != chainSeed() {
		t.Fatal("empty run's head must be the chain seed")
	}
}

func TestResealRefused(t *testing.T) {
	dir, _ := sealDir(t, SealerOptions{}, synthRun(1, 3, 0))
	if _, err := NewSealer(dir, SealerOptions{}); err == nil {
		t.Fatal("NewSealer over an existing ledger must refuse")
	}
}

func TestErrorKindLabels(t *testing.T) {
	seen := map[string]ErrorKind{}
	for k := ErrorKind(0); k < numErrorKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("ErrorKind %d has no label", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("label %q shared by kinds %d and %d", name, prev, k)
		}
		seen[name] = k
	}
	if got := ErrorKind(250).String(); got != "ErrorKind(250)" {
		t.Fatalf("out-of-range label = %q", got)
	}
}
