package ledger

import (
	"fmt"
	"testing"
)

// mkLeaves builds n distinct leaf hashes.
func mkLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	return leaves
}

func TestRootDeterministicAndOrderSensitive(t *testing.T) {
	leaves := mkLeaves(7)
	r1 := RootOf(leaves)
	r2 := RootOf(mkLeaves(7))
	if r1 != r2 {
		t.Fatal("root not deterministic over identical leaves")
	}
	swapped := mkLeaves(7)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if RootOf(swapped) == r1 {
		t.Fatal("root unchanged by leaf reorder")
	}
	if RootOf(nil) != LeafHash(nil) {
		t.Fatal("empty tree must hash to the empty leaf")
	}
}

func TestLeafNodeDomainSeparation(t *testing.T) {
	// A single-leaf tree's root is the leaf itself, but a two-leaf tree
	// over the same bytes must not collide with any leaf of those bytes:
	// the 0x00/0x01 prefixes keep the domains apart.
	l := LeafHash([]byte("x"))
	if nodeHash(l, l) == l {
		t.Fatal("interior node collided with leaf")
	}
}

func TestInclusionProofAllIndices(t *testing.T) {
	for n := 1; n <= 17; n++ {
		leaves := mkLeaves(n)
		root := RootOf(leaves)
		for i := 0; i < n; i++ {
			proof := Proof(leaves, i)
			if !VerifyInclusion(leaves[i], i, n, proof, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
		}
	}
}

func TestInclusionProofRejectsTampering(t *testing.T) {
	leaves := mkLeaves(11)
	root := RootOf(leaves)
	proof := Proof(leaves, 5)

	if VerifyInclusion(leaves[6], 5, 11, proof, root) {
		t.Fatal("accepted proof for the wrong leaf")
	}
	if VerifyInclusion(leaves[5], 6, 11, proof, root) {
		t.Fatal("accepted proof transplanted to another index")
	}
	// A claimed size with different geometry changes the proof length
	// the verifier demands. (Sizes sharing the leaf's split path, e.g.
	// 12 for index 5, recompute the same root — harmless, since the
	// root itself commits to the real tree.)
	if VerifyInclusion(leaves[5], 5, 8, proof, root) {
		t.Fatal("accepted proof against the wrong tree size")
	}
	if VerifyInclusion(leaves[5], 5, 11, proof[:len(proof)-1], root) {
		t.Fatal("accepted truncated proof")
	}
	if VerifyInclusion(leaves[5], 5, 11, append(append([]Hash(nil), proof...), Hash{}), root) {
		t.Fatal("accepted padded proof")
	}
	bad := append([]Hash(nil), proof...)
	bad[0][0] ^= 0xff
	if VerifyInclusion(leaves[5], 5, 11, bad, root) {
		t.Fatal("accepted corrupted sibling hash")
	}
	if Proof(leaves, -1) != nil || Proof(leaves, 11) != nil {
		t.Fatal("out-of-range proof request must return nil")
	}
	if VerifyInclusion(leaves[0], 0, 0, nil, root) {
		t.Fatal("accepted proof against an empty tree")
	}
}
