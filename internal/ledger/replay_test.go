package ledger

import (
	"strings"
	"testing"

	"floc/internal/core"
	"floc/internal/telemetry"
)

// shardedEvents builds an interleaved two-shard stream whose fold is
// known by construction.
func shardedEvents() []telemetry.Event {
	ev := func(typ telemetry.EventType, shard uint32, mut func(*telemetry.Event)) telemetry.Event {
		e := telemetry.Event{Type: typ, Shard: shard}
		if mut != nil {
			mut(&e)
		}
		return e
	}
	admit := func(shard uint32, path string) telemetry.Event {
		return ev(telemetry.EventPacketAdmitted, shard, func(e *telemetry.Event) { e.Path = path })
	}
	drop := func(shard uint32, path, reason string) telemetry.Event {
		return ev(telemetry.EventPacketDropped, shard, func(e *telemetry.Event) { e.Path, e.Reason = path, reason })
	}
	return []telemetry.Event{
		admit(0, "10-1-1"), admit(1, "10-2-1"), admit(0, "10-1-1"),
		drop(1, "10-2-1", "no-token"),
		ev(telemetry.EventPathAggregated, 0, func(e *telemetry.Event) { e.Path, e.Agg = "10-1-1", "10-1" }),
		ev(telemetry.EventPathAggregated, 0, func(e *telemetry.Event) { e.Path, e.Agg = "10-3-1", "10-1" }),
		ev(telemetry.EventPathReleased, 0, func(e *telemetry.Event) { e.Path, e.Agg = "10-3-1", "10-1" }),
		ev(telemetry.EventModeChanged, 0, func(e *telemetry.Event) { e.Mode = "congested" }),
		ev(telemetry.EventModeChanged, 1, func(e *telemetry.Event) { e.Mode = "flooding" }),
		ev(telemetry.EventModeChanged, 1, func(e *telemetry.Event) { e.Mode = "uncongested" }),
		ev(telemetry.EventControlRunCompleted, 0, func(e *telemetry.Event) { e.Value = 3 }),
		ev(telemetry.EventControlRunCompleted, 1, func(e *telemetry.Event) { e.Value = 2 }),
		admit(1, "10-2-1"),
	}
}

// matchingSnapshot is the Snapshot shardedEvents folds to.
func matchingSnapshot() core.Snapshot {
	return core.Snapshot{
		Mode:        core.ModeCongested, // max(congested, uncongested-last)
		Arrived:     5,
		Admitted:    4,
		Drops:       map[string]int64{"no-token": 1},
		ControlRuns: 5, // 3 (shard 0) + 2 (shard 1)
		Aggregates:  map[string][]string{"10-1": {"10-1-1"}},
		Paths: []core.PathInfo{
			{Key: "10-1-1", AdmittedPackets: 2},
			{Key: "10-2-1", AdmittedPackets: 2, DroppedPackets: 1},
		},
	}
}

func TestReplayFoldsShardedStream(t *testing.T) {
	res := Replay(shardedEvents())
	if res.Admitted != 4 || res.Dropped != 1 || res.Arrived != 5 {
		t.Fatalf("counters admitted=%d dropped=%d arrived=%d", res.Admitted, res.Dropped, res.Arrived)
	}
	if res.Mode != core.ModeCongested {
		t.Fatalf("mode = %s, want congested (max across shards' last modes)", res.Mode)
	}
	if res.ControlRuns != 5 {
		t.Fatalf("control runs = %d, want 5", res.ControlRuns)
	}
	if len(res.Aggregates["10-1"]) != 1 || res.Aggregates["10-1"][0] != "10-1-1" {
		t.Fatalf("aggregates = %v (release must remove 10-3-1)", res.Aggregates)
	}
	if diffs := res.Diff(matchingSnapshot()); len(diffs) != 0 {
		t.Fatalf("unexpected diffs: %v", diffs)
	}
}

func TestReplayDiffNamesDisagreements(t *testing.T) {
	res := Replay(shardedEvents())

	snap := matchingSnapshot()
	snap.Admitted = 7
	diffs := res.Diff(snap)
	if len(diffs) == 0 || !strings.Contains(diffs[0], "admitted") {
		t.Fatalf("forged admitted count not flagged: %v", diffs)
	}

	snap = matchingSnapshot()
	snap.Paths[0].DroppedPackets = 9
	if diffs := res.Diff(snap); len(diffs) != 1 || !strings.Contains(diffs[0], "10-1-1") {
		t.Fatalf("forged per-path drops not flagged: %v", diffs)
	}

	snap = matchingSnapshot()
	snap.Paths = snap.Paths[:1]
	if diffs := res.Diff(snap); len(diffs) == 0 {
		t.Fatal("path missing from snapshot not flagged")
	}

	snap = matchingSnapshot()
	snap.Drops["spoofed-reason"] = 2
	if diffs := res.Diff(snap); len(diffs) == 0 {
		t.Fatal("invented drop reason not flagged")
	}

	snap = matchingSnapshot()
	snap.Mode = core.ModeFlooding
	if diffs := res.Diff(snap); len(diffs) != 1 || !strings.Contains(diffs[0], "mode") {
		t.Fatalf("forged mode not flagged: %v", diffs)
	}
}

func TestReplayExpiryResetsPathState(t *testing.T) {
	events := []telemetry.Event{
		{Type: telemetry.EventPacketAdmitted, Path: "10-9-1"},
		{Type: telemetry.EventPathAggregated, Path: "10-9-1", Agg: "10-9"},
		{Type: telemetry.EventPathExpired, Path: "10-9-1"},
	}
	res := Replay(events)
	if len(res.AdmittedByPath) != 0 {
		t.Fatalf("expired path retained counters: %v", res.AdmittedByPath)
	}
	if len(res.Aggregates) != 0 {
		t.Fatalf("expired path retained aggregate membership: %v", res.Aggregates)
	}
	// Lifetime totals survive expiry, as in the router.
	if res.Admitted != 1 || res.Arrived != 1 {
		t.Fatalf("lifetime counters wrong: %+v", res)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := t.TempDir() + "/" + SnapshotName
	want := matchingSnapshot()
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if diffs := Replay(shardedEvents()).Diff(got); len(diffs) != 0 {
		t.Fatalf("snapshot changed across the round trip: %v", diffs)
	}
}
