package telemetry

// TraceDroppedMetric is the registry counter name for events lost to
// trace-ring wraparound. It is registered wherever a bounded trace is
// wired to a registry, so a clean run exports an explicit zero.
const TraceDroppedMetric = "floc_trace_dropped_events_total"

// Options configures a Telemetry instance.
type Options struct {
	// TraceCapacity is the event ring size; 0 disables the trace.
	TraceCapacity int
	// RecorderBinWidth is the recorder time-series bin width in seconds
	// (defaults to 1s when a recorder is enabled).
	RecorderBinWidth float64 //floc:unit seconds
	// Recorder enables the control-run time-series recorder.
	Recorder bool
}

// EventSink receives a copy of every emitted event, in emission order.
// It is the seam the forensic ledger plugs into: the bounded Trace ring
// keeps a recent window in memory, while a sink can stream the full
// event history somewhere durable. An implementation shared by several
// emitters (e.g. the dataplane's shard routers) must be safe for
// concurrent use; the Trace itself stays single-writer.
type EventSink interface {
	Emit(Event)
}

// Telemetry bundles the observability surfaces. A nil *Telemetry is
// the disabled state: producers guard emission with
// `if telemetry.Compiled && t != nil`, so a disabled pipeline takes a
// single predictable branch and allocates nothing.
type Telemetry struct {
	Registry *Registry
	Trace    *Trace    // nil unless Options.TraceCapacity > 0
	Recorder *Recorder // nil unless Options.Recorder
	Sink     EventSink // nil unless an event stream consumer is attached
}

// New returns a Telemetry with a fresh registry and, per opts, a trace
// ring and recorder. A trace created here counts its wraparound losses
// on the registry's TraceDroppedMetric counter.
func New(opts Options) *Telemetry {
	t := &Telemetry{Registry: NewRegistry()}
	if opts.TraceCapacity > 0 {
		t.Trace = NewTrace(opts.TraceCapacity)
		t.Trace.SetDropCounter(t.Registry.Counter(TraceDroppedMetric,
			"events lost to trace ring wraparound", "events"))
	}
	if opts.Recorder {
		t.Recorder = NewRecorder(opts.RecorderBinWidth)
	}
	return t
}

// Emit hands e to the trace ring and the sink, whichever are enabled.
// Safe on a nil receiver and with both disabled, so producers can call
// it unconditionally off the hot path. The nil fast path must stay
// inlinable — a disabled pipeline's whole budget is one predicted
// branch — so everything past the receiver check lives in emit.
// floc:hotpath
func (t *Telemetry) Emit(e Event) {
	if t == nil {
		return
	}
	t.emit(e)
}

// floc:hotpath
func (t *Telemetry) emit(e Event) {
	if t.Trace != nil {
		t.Trace.Add(e)
	}
	if t.Sink != nil {
		t.Sink.Emit(e)
	}
}
