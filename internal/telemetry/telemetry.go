package telemetry

// Options configures a Telemetry instance.
type Options struct {
	// TraceCapacity is the event ring size; 0 disables the trace.
	TraceCapacity int
	// RecorderBinWidth is the recorder time-series bin width in seconds
	// (defaults to 1s when a recorder is enabled).
	RecorderBinWidth float64 //floc:unit seconds
	// Recorder enables the control-run time-series recorder.
	Recorder bool
}

// Telemetry bundles the three observability surfaces. A nil *Telemetry is
// the disabled state: producers guard emission with
// `if telemetry.Compiled && t != nil`, so a disabled pipeline takes a
// single predictable branch and allocates nothing.
type Telemetry struct {
	Registry *Registry
	Trace    *Trace    // nil unless Options.TraceCapacity > 0
	Recorder *Recorder // nil unless Options.Recorder
}

// New returns a Telemetry with a fresh registry and, per opts, a trace
// ring and recorder.
func New(opts Options) *Telemetry {
	t := &Telemetry{Registry: NewRegistry()}
	if opts.TraceCapacity > 0 {
		t.Trace = NewTrace(opts.TraceCapacity)
	}
	if opts.Recorder {
		t.Recorder = NewRecorder(opts.RecorderBinWidth)
	}
	return t
}

// Emit appends e to the trace if tracing is enabled. Safe on a nil
// receiver and when the trace is disabled, so producers can call it
// unconditionally off the hot path.
// floc:hotpath
func (t *Telemetry) Emit(e Event) {
	if t == nil || t.Trace == nil {
		return
	}
	t.Trace.Add(e)
}
