package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestEventTypeLabelsExhaustive(t *testing.T) {
	seen := make(map[string]EventType)
	for i := 0; i < NumEventTypes(); i++ {
		et := EventType(i)
		name := et.String()
		if name == "" || strings.HasPrefix(name, "EventType(") {
			t.Fatalf("event type %d has no stable label", i)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("label %q reused by types %d and %d", name, prev, i)
		}
		seen[name] = et
		back, err := ParseEventType(name)
		if err != nil || back != et {
			t.Fatalf("ParseEventType(%q) = %v, %v; want %v", name, back, err, et)
		}
	}
	if _, err := ParseEventType("NoSuchEvent"); err == nil {
		t.Fatal("ParseEventType must reject unknown labels")
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Time: float64(i), Type: EventPacketAdmitted})
	}
	if tr.Len() != 4 || tr.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", tr.Len(), tr.Cap())
	}
	if tr.Total() != 10 || tr.Overwritten() != 6 {
		t.Fatalf("total/overwritten = %d/%d, want 10/6", tr.Total(), tr.Overwritten())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := float64(6 + i); e.Time != want {
			t.Fatalf("event %d time = %v, want %v (oldest-first after wrap)", i, e.Time, want)
		}
	}
}

func TestTracePartialFill(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(Event{Time: 1})
	tr.Add(Event{Time: 2})
	if tr.Overwritten() != 0 {
		t.Fatalf("overwritten = %d, want 0", tr.Overwritten())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Time != 1 || evs[1].Time != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	tr := NewTrace(16)
	in := []Event{
		{Time: 0.000125, Type: EventPacketAdmitted, Path: "10.0.0.0/8", Flow: 0xdeadbeefcafe},
		{Time: 0.5, Type: EventPacketDropped, Path: "10.0.0.0/8", Flow: 7, Reason: "no_token"},
		{Time: 1, Type: EventFlowClassifiedAttack, Path: "a/b", Flow: 42},
		{Time: 2, Type: EventPathAggregated, Path: "a/b", Agg: "agg:1"},
		{Time: 3, Type: EventPathReleased, Path: "a/b", Agg: "agg:1"},
		{Time: 4, Type: EventPathExpired, Path: "a/b"},
		{Time: 5, Type: EventModeChanged, Mode: "Flooding", Value: 900},
		{Time: 6, Type: EventControlRunCompleted, Value: 3},
	}
	for _, e := range in {
		tr.Add(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d round trip mismatch:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestReadNDJSONSkipsBlankRejectsGarbage(t *testing.T) {
	evs, err := ReadNDJSON(strings.NewReader("\n{\"t\":1,\"type\":\"PacketAdmitted\"}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
	if _, err := ReadNDJSON(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage line must error")
	}
	if _, err := ReadNDJSON(strings.NewReader(`{"t":1,"type":"Bogus"}` + "\n")); err == nil {
		t.Fatal("unknown event type must error")
	}
}

func TestEmitNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.Emit(Event{Type: EventPacketAdmitted}) // must not panic
	tel = New(Options{})
	tel.Emit(Event{Type: EventPacketAdmitted}) // trace disabled: no-op
	tel = New(Options{TraceCapacity: 2})
	tel.Emit(Event{Type: EventPacketAdmitted})
	if tel.Trace.Len() != 1 {
		t.Fatalf("trace len = %d, want 1", tel.Trace.Len())
	}
}
