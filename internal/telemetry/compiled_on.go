//go:build !flocnotelemetry

package telemetry

// Compiled is true in normal builds: instrumentation call sites guarded by
// `if telemetry.Compiled && ... ` stay live. Building with the
// "flocnotelemetry" tag flips it to false so the compiler eliminates every
// telemetry branch, giving the zero-overhead baseline the telemetry-overhead
// CI stage compares against.
const Compiled = true
