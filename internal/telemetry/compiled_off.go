//go:build flocnotelemetry

package telemetry

// Compiled is false in builds tagged "flocnotelemetry": telemetry branches
// guarded by `if telemetry.Compiled { ... }` are dead code and are removed
// at compile time. This build is the baseline for the overhead benchmark.
const Compiled = false
