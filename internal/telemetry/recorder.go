package telemetry

import (
	"sort"

	"floc/internal/stats"
)

// PathSample is one per-path observation taken at a control run. It
// replaces the ad-hoc per-path accumulation the experiment harness used to
// keep on the side: the recorder is the single source of truth for
// per-path allocation, drop, and conformance history.
type PathSample struct {
	Time         float64 //floc:unit seconds
	Path         string
	Aggregate    string // aggregate key, "" if regulated individually
	Attack       bool
	Conformance  float64 //floc:unit ratio
	AllocPackets float64 //floc:unit packets/s
	BucketSize   float64 //floc:unit tokens
	Period       float64 //floc:unit seconds
	Flows        int
	AttackFlows  int
	Arrived      float64 //floc:unit tokens
	Drops        int64   //floc:unit packets
}

// Recorder accumulates per-path control-run samples and named fixed-bin
// time series (e.g. delivered/dropped packets over sim-time). Single
// writer; reads are expected after the run finishes.
type Recorder struct {
	binWidth float64 //floc:unit seconds
	samples  []PathSample
	series   map[string]*stats.TimeSeries
}

// NewRecorder returns a recorder whose time series use the given bin
// width.
// floc:unit binWidth seconds
func NewRecorder(binWidth float64) *Recorder {
	if binWidth <= 0 {
		binWidth = 1
	}
	return &Recorder{binWidth: binWidth, series: make(map[string]*stats.TimeSeries)}
}

// BinWidth returns the time-series bin width.
// floc:unit return seconds
func (r *Recorder) BinWidth() float64 { return r.binWidth }

// Record appends one per-path sample.
func (r *Recorder) Record(s PathSample) { r.samples = append(r.samples, s) }

// Samples returns all samples in insertion order (shared slice; callers
// must not mutate).
func (r *Recorder) Samples() []PathSample { return r.samples }

// PathSamples returns the samples for one path key, in time order.
func (r *Recorder) PathSamples(path string) []PathSample {
	var out []PathSample
	for _, s := range r.samples {
		if s.Path == path {
			out = append(out, s)
		}
	}
	return out
}

// Paths returns the sorted set of path keys that appear in the samples.
func (r *Recorder) Paths() []string {
	seen := make(map[string]bool)
	for _, s := range r.samples {
		seen[s.Path] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Series returns the named time series, creating it on first use.
func (r *Recorder) Series(name string) *stats.TimeSeries {
	ts, ok := r.series[name]
	if !ok {
		ts = stats.NewTimeSeries(r.binWidth)
		r.series[name] = ts
	}
	return ts
}

// SeriesNames returns the sorted names of all series created so far.
func (r *Recorder) SeriesNames() []string {
	out := make([]string, 0, len(r.series))
	for k := range r.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
