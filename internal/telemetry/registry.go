// Package telemetry is FLoc's observability layer: a metrics registry cheap
// enough for the per-packet hot path, a bounded ring buffer of typed
// decision events with an NDJSON exporter, and a control-run time-series
// recorder. The pipeline (router, control loop, drop filter, defenses,
// experiment harness) emits into it; binaries surface it behind -metrics
// and -trace flags.
//
// Everything here is passive and deterministic: the package never reads
// clocks or random state, it only stamps what callers hand it (sim-time).
// Counters and gauges are safe for concurrent use; Trace and Recorder are
// single-writer like the simulator itself.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
// floc:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative for the exposition to stay
// monotone; this is not enforced on the hot path).
// floc:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. All methods are safe
// for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
// floc:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value stored (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with the Prometheus cumulative
// bucket convention: bucket i counts observations <= bounds[i], with an
// implicit +Inf bucket at the end. Observe is safe for concurrent use and
// allocation-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	sumBits atomic.Uint64 // CAS-updated float64 running sum
	n       atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
// floc:hotpath
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Bounds returns a copy of the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns the per-bucket (non-cumulative) counts; the final entry
// is the +Inf bucket.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind discriminates the exposition families; the text encoder
// switches over it and must render every kind.
//
//floc:enum
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

type metricMeta struct {
	kind metricKind
	help string
	unit string
}

// Registry is a get-or-create store of named metrics. Series names follow
// the Prometheus text convention: a bare family name
// ("floc_admitted_packets_total") or a family with a label set
// ("floc_drops_total{reason=\"no_token\"}"). Registration takes a lock;
// the returned handles are lock-free, so hot paths resolve their handles
// once up front.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]metricMeta
}

// NewRegistry returns a registry pre-stamped with the build-info gauge.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		families: make(map[string]metricMeta),
	}
	r.stampBuildInfo()
	return r
}

// stampBuildInfo registers the floc_build_info{version,go} identity
// gauge (value always 1) so every /metrics scrape names the binary that
// produced it. Version prefers the VCS revision over the module version
// ("(devel)" for an un-tagged local build); both are constant for the
// life of the process, so stamping at init keeps exposition text
// deterministic within a run.
func (r *Registry) stampBuildInfo() {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" {
			version = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	r.Gauge(`floc_build_info{version="`+version+`",go="`+runtime.Version()+`"}`,
		"build identity of this binary; value is always 1", "").Set(1)
}

// family strips a trailing {label="..."} block from a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help, unit string, kind metricKind) {
	fam := family(name)
	if m, ok := r.families[fam]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric family %q registered as %s and %s", fam, m.kind, kind))
		}
		return
	}
	r.families[fam] = metricMeta{kind: kind, help: help, unit: unit}
}

// Counter returns the counter registered under name, creating it with the
// given help text and unit label on first use. Unit is documentation (e.g.
// "packets", "bits/s"); dimension checking happens at the caller via
// //floc:unit annotations.
func (r *Registry) Counter(name, help, unit string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, unit, counterKind)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help, unit string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, unit, gaugeKind)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. Later calls ignore bounds.
func (r *Registry) Histogram(name, help, unit string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help, unit, histogramKind)
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// CounterValue returns the value of the named counter, or 0 if it was
// never registered. Intended for readers (reports, tests) that do not want
// to force-create series.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// GaugeValue returns the value of the named gauge, or 0 if absent.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	if g == nil {
		return 0
	}
	return g.Value()
}

// Names returns every registered series name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition format,
// series sorted by name so output is deterministic. Unit labels are folded
// into the HELP line as a "[unit]" suffix.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type series struct {
		name string
		kind metricKind
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	all := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		all = append(all, series{name: n, kind: counterKind, c: c})
	}
	for n, g := range r.gauges {
		all = append(all, series{name: n, kind: gaugeKind, g: g})
	}
	for n, h := range r.hists {
		all = append(all, series{name: n, kind: histogramKind, h: h})
	}
	fams := make(map[string]metricMeta, len(r.families))
	for f, m := range r.families {
		fams[f] = m
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	var b strings.Builder
	lastFam := ""
	for _, s := range all {
		fam := family(s.name)
		if fam != lastFam {
			meta := fams[fam]
			help := meta.help
			if meta.unit != "" {
				help += " [" + meta.unit + "]"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, meta.kind)
			lastFam = fam
		}
		switch s.kind {
		case counterKind:
			fmt.Fprintf(&b, "%s %d\n", s.name, s.c.Value())
		case gaugeKind:
			fmt.Fprintf(&b, "%s %s\n", s.name, formatFloat(s.g.Value()))
		case histogramKind:
			counts := s.h.Counts()
			bounds := s.h.Bounds()
			var cum int64
			for i, n := range counts {
				cum += n
				le := "+Inf"
				if i < len(bounds) {
					le = formatFloat(bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", s.name, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", s.name, formatFloat(s.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", s.name, s.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
