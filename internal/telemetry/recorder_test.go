package telemetry

import (
	"reflect"
	"testing"
)

func TestRecorderSamplesAndPaths(t *testing.T) {
	r := NewRecorder(0) // defaults to 1s bins
	if r.BinWidth() != 1 {
		t.Fatalf("default bin width = %v, want 1", r.BinWidth())
	}
	r.Record(PathSample{Time: 1, Path: "b", Conformance: 0.9})
	r.Record(PathSample{Time: 1, Path: "a", Conformance: 0.5})
	r.Record(PathSample{Time: 2, Path: "b", Conformance: 0.8, Attack: true})
	if got := r.Paths(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("paths = %v", got)
	}
	bs := r.PathSamples("b")
	if len(bs) != 2 || bs[0].Time != 1 || bs[1].Time != 2 || !bs[1].Attack {
		t.Fatalf("path samples = %+v", bs)
	}
	if len(r.Samples()) != 3 {
		t.Fatalf("samples = %d, want 3", len(r.Samples()))
	}
}

func TestRecorderSeries(t *testing.T) {
	r := NewRecorder(0.5)
	s := r.Series("delivered")
	if s != r.Series("delivered") {
		t.Fatal("same name must return same series")
	}
	s.Add(0.1, 1)
	s.Add(0.6, 1)
	if got := len(s.Bins()); got != 2 {
		t.Fatalf("bins = %d, want 2", got)
	}
	r.Series("dropped")
	if got := r.SeriesNames(); !reflect.DeepEqual(got, []string{"delivered", "dropped"}) {
		t.Fatalf("series names = %v", got)
	}
}

func TestCompiledDefault(t *testing.T) {
	if !Compiled {
		t.Skip("flocnotelemetry build: telemetry compiled out")
	}
}
