package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestConcurrentCounterIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("floc_test_total", "concurrent increment test", "packets")
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentHistogramAndGauge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("floc_test_hist", "concurrent histogram", "seconds", []float64{1, 2})
	g := reg.Gauge("floc_test_gauge", "concurrent gauge", "ratio")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
				g.Set(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("hist count = %d, want 4000", h.Count())
	}
	if math.Abs(h.Sum()-4000*1.5) > 1e-6 {
		t.Fatalf("hist sum = %v, want %v", h.Sum(), 4000*1.5)
	}
	if g.Value() != 0.5 {
		t.Fatalf("gauge = %v, want 0.5", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", "packets")
	b := reg.Counter("x_total", "ignored", "ignored")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Add(3)
	if reg.CounterValue("x_total") != 3 {
		t.Fatalf("CounterValue = %d, want 3", reg.CounterValue("x_total"))
	}
	if reg.CounterValue("absent") != 0 {
		t.Fatal("absent counter must read 0")
	}
	reg.Gauge("y", "y", "ratio").Set(2.5)
	if reg.GaugeValue("y") != 2.5 {
		t.Fatalf("GaugeValue = %v, want 2.5", reg.GaugeValue("y"))
	}
	if reg.GaugeValue("absent") != 0 {
		t.Fatal("absent gauge must read 0")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering gauge over counter family must panic")
		}
	}()
	reg.Gauge("m", "m", "")
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 1, 5}) // unsorted on purpose
	for _, v := range []float64{0.5, 1, 3, 5, 7, 11} {
		h.Observe(v)
	}
	// bounds sorted to [1 5 10]; buckets (<=1, <=5, <=10, +Inf)
	want := []int64{2, 2, 1, 1}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`floc_drops_total{reason="no_token"}`, "drops by reason", "packets").Add(4)
	reg.Counter(`floc_drops_total{reason="overflow"}`, "drops by reason", "packets").Add(2)
	reg.Gauge("floc_queue_len", "queue length", "packets").Set(17)
	reg.Histogram("floc_delay", "queue delay", "seconds", []float64{0.001, 0.01}).Observe(0.005)

	var a, b strings.Builder
	if err := reg.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteText must be deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE floc_drops_total counter",
		`floc_drops_total{reason="no_token"} 4`,
		`floc_drops_total{reason="overflow"} 2`,
		"# HELP floc_queue_len queue length [packets]",
		"floc_queue_len 17",
		`floc_delay_bucket{le="0.01"} 1`,
		`floc_delay_bucket{le="+Inf"} 1`,
		"floc_delay_sum 0.005",
		"floc_delay_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two labeled series.
	if strings.Count(out, "# TYPE floc_drops_total") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", "packets")
	g := reg.Gauge("g", "", "ratio")
	h := reg.Histogram("h", "", "seconds", []float64{1, 2, 4})
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(2) }); n != 0 {
		t.Fatalf("counter allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1.25) }); n != 0 {
		t.Fatalf("gauge allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(1.5) }); n != 0 {
		t.Fatalf("histogram allocates %v per op", n)
	}
}
