package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("floc_test_packets_total", "test packets", "packets").Add(3)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "floc_test_packets_total 3") {
		t.Fatalf("exposition missing counter:\n%s", body)
	}
}
