package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventType enumerates the pipeline decision points recorded in the trace.
type EventType uint8

const (
	// EventPacketAdmitted: a packet passed every filter and entered the
	// output queue.
	EventPacketAdmitted EventType = iota
	// EventPacketDropped: a packet was discarded; Reason carries the
	// router drop-reason label.
	EventPacketDropped
	// EventFlowClassifiedAttack: a flow was first classified as an attack
	// flow by the identification machinery (Section IV-B).
	EventFlowClassifiedAttack
	// EventPathAggregated: a path joined an aggregate (Section IV-C);
	// Agg carries the aggregate key.
	EventPathAggregated
	// EventPathReleased: a path left its aggregate and is regulated
	// individually again; Agg carries the former aggregate key.
	EventPathReleased
	// EventPathExpired: a path's flow state idled out and its accounting
	// was discarded.
	EventPathExpired
	// EventModeChanged: the output queue crossed Qmin/Qmax; Mode carries
	// the new mode label.
	EventModeChanged
	// EventControlRunCompleted: one control-loop run finished; Value
	// carries the cumulative run count.
	EventControlRunCompleted
	// EventFeedbackApplied: a cluster peer's congestion-feedback record
	// was installed as a per-path rate limit; Path carries the limited
	// path, Value the limit in bits/second (0 = released), and Peer the
	// advertising router's ID.
	EventFeedbackApplied

	numEventTypes
)

// eventTypeNames is indexed by EventType; the exhaustiveness test asserts
// every type below numEventTypes has a unique non-empty label.
var eventTypeNames = [numEventTypes]string{
	EventPacketAdmitted:       "PacketAdmitted",
	EventPacketDropped:        "PacketDropped",
	EventFlowClassifiedAttack: "FlowClassifiedAttack",
	EventPathAggregated:       "PathAggregated",
	EventPathReleased:         "PathReleased",
	EventPathExpired:          "PathExpired",
	EventModeChanged:          "ModeChanged",
	EventControlRunCompleted:  "ControlRunCompleted",
	EventFeedbackApplied:      "FeedbackApplied",
}

// NumEventTypes returns the number of defined event types.
func NumEventTypes() int { return int(numEventTypes) }

// String returns the stable wire label for t.
func (t EventType) String() string {
	if t < numEventTypes {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// ParseEventType maps a wire label back to its EventType.
func ParseEventType(s string) (EventType, error) {
	for i, name := range eventTypeNames {
		if name == s {
			return EventType(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event type %q", s)
}

// MarshalJSON encodes the type as its wire label.
func (t EventType) MarshalJSON() ([]byte, error) {
	if t >= numEventTypes {
		return nil, fmt.Errorf("telemetry: cannot marshal out-of-range event type %d", uint8(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a wire label.
func (t *EventType) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseEventType(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Event is one decision record. The struct is flat and comparable so that
// NDJSON round-trips can be checked with ==. Unused fields are omitted on
// the wire. The bytes json.Marshal produces for an Event are its
// *canonical encoding*: the ledger hashes exactly those bytes, so field
// order here is part of the evidence format (new fields append at the
// end, omitempty, never reorder).
type Event struct {
	Time   float64   `json:"t"` //floc:unit seconds
	Type   EventType `json:"type"`
	Path   string    `json:"path,omitempty"`   // origin path key
	Agg    string    `json:"agg,omitempty"`    // aggregate key
	Flow   uint64    `json:"flow,omitempty"`   // flow hash
	Reason string    `json:"reason,omitempty"` // drop reason label
	Mode   string    `json:"mode,omitempty"`   // queue mode label
	Value  float64   `json:"value,omitempty"`  // event-specific payload
	Shard  uint32    `json:"shard,omitempty"`  // dataplane shard index (0 in single-router runs)
	Peer   uint32    `json:"peer,omitempty"`   // advertising router ID (cluster feedback events)
}

// Trace is a bounded ring buffer of events. Once full, the oldest events
// are overwritten; Total and Overwritten report how much history was lost.
// It is single-writer, like the simulator loop that feeds it.
type Trace struct {
	buf     []Event
	next    int
	total   int64
	dropped *Counter // optional wraparound-loss counter (nil = uncounted)
}

// NewTrace returns a trace holding at most capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// SetDropCounter attaches a counter that is incremented once per event
// lost to ring wraparound, so bounded-trace losses surface on /metrics
// (TraceDroppedMetric) instead of vanishing silently. Pass nil to detach.
func (t *Trace) SetDropCounter(c *Counter) { t.dropped = c }

// Add appends one event, overwriting the oldest if the ring is full.
// floc:hotpath
func (t *Trace) Add(e Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		if t.dropped != nil {
			t.dropped.Inc()
		}
		t.buf[t.next] = e
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
		}
	}
	t.total++
}

// Len returns the number of events currently held.
func (t *Trace) Len() int { return len(t.buf) }

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return cap(t.buf) }

// Total returns the number of events ever added.
func (t *Trace) Total() int64 { return t.total }

// Overwritten returns how many events were lost to ring wraparound.
func (t *Trace) Overwritten() int64 { return t.total - int64(len(t.buf)) }

// Events returns the held events oldest-first as a fresh slice.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteNDJSON writes the held events oldest-first, one JSON object per
// line.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an NDJSON event stream produced by WriteNDJSON. Blank
// lines are skipped; any malformed line is an error.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("telemetry: NDJSON line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
