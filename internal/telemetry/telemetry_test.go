package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

type collectSink struct{ events []Event }

func (c *collectSink) Emit(e Event) { c.events = append(c.events, e) }

func TestTraceDropCounterCountsWraparound(t *testing.T) {
	tel := New(Options{TraceCapacity: 4})
	for i := 0; i < 10; i++ {
		tel.Emit(Event{Time: float64(i), Type: EventPacketAdmitted})
	}
	if got := tel.Registry.CounterValue(TraceDroppedMetric); got != 6 {
		t.Fatalf("%s = %d, want 6 (10 events into a 4-slot ring)", TraceDroppedMetric, got)
	}
	if tel.Trace.Overwritten() != 6 {
		t.Fatalf("Overwritten = %d, want 6", tel.Trace.Overwritten())
	}
}

func TestTraceDropCounterExportsZeroWhenClean(t *testing.T) {
	tel := New(Options{TraceCapacity: 16})
	tel.Emit(Event{Type: EventPacketAdmitted})
	var buf bytes.Buffer
	if err := tel.Registry.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), TraceDroppedMetric+" 0") {
		t.Fatalf("clean run must export an explicit zero drop counter:\n%s", buf.String())
	}
}

func TestEmitForwardsToTraceAndSink(t *testing.T) {
	sink := &collectSink{}
	tel := New(Options{TraceCapacity: 8})
	tel.Sink = sink
	tel.Emit(Event{Type: EventPacketDropped, Reason: "no-token"})
	if tel.Trace.Len() != 1 {
		t.Fatalf("trace len = %d, want 1", tel.Trace.Len())
	}
	if len(sink.events) != 1 || sink.events[0].Reason != "no-token" {
		t.Fatalf("sink got %+v", sink.events)
	}
}

func TestEmitSafeWhenDisabled(t *testing.T) {
	var tel *Telemetry
	tel.Emit(Event{Type: EventPacketAdmitted}) // nil receiver: no-op

	tel = New(Options{}) // no trace, no sink
	tel.Emit(Event{Type: EventPacketAdmitted})
	if tel.Trace != nil {
		t.Fatal("zero TraceCapacity must leave the trace disabled")
	}
}

func TestRegistryStampsBuildInfo(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `floc_build_info{version="`) || !strings.Contains(out, `go="go`) {
		t.Fatalf("registry must stamp floc_build_info with version and go labels:\n%s", out)
	}
}
