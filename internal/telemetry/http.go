package telemetry

import "net/http"

// Handler returns an http.Handler that serves the registry in Prometheus
// text exposition format. Safe for concurrent use: WriteText reads the
// atomic metric values without locking out writers.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
