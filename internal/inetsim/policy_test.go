package inetsim

import (
	"testing"

	"floc/internal/topology"
)

// tinySim builds a Sim over a minimal topology for policy unit tests.
func tinySim(t *testing.T, def DefenseKind) *Sim {
	t.Helper()
	cfg := topology.DefaultInetConfig(topology.FRoot)
	cfg.TotalASes = 60
	cfg.LegitASes = 10
	cfg.AttackASes = 5
	cfg.LegitSources = 40
	cfg.AttackSources = 200
	topo, err := topology.GenerateInet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig(topo, def)
	scfg.CapacityPerTick = 50
	scfg.Ticks = 100
	scfg.WarmupTicks = 20
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNDPolicyServesUpToCapacity(t *testing.T) {
	s := tinySim(t, NoDefense)
	queued := make([]int32, 120)
	for i := range queued {
		queued[i] = int32(i % len(s.flows))
	}
	served, wait := s.policy.admit(s, queued)
	if len(served) != 50 {
		t.Fatalf("served %d, want capacity 50", len(served))
	}
	if len(wait) != 70 {
		t.Fatalf("wait %d, want 70", len(wait))
	}
	// Under capacity: everything served.
	served, wait = s.policy.admit(s, queued[:30])
	if len(served) != 30 || len(wait) != 0 {
		t.Fatalf("underload served=%d wait=%d", len(served), len(wait))
	}
}

func TestFFPolicyPrioritizesLegit(t *testing.T) {
	s := tinySim(t, FairFlow)
	// Find one legit and many attack flows.
	var legit int32 = -1
	var bots []int32
	for i := range s.flows {
		if s.flows[i].class == Attack {
			bots = append(bots, int32(i))
		} else if legit < 0 {
			legit = int32(i)
		}
	}
	if legit < 0 || len(bots) == 0 {
		t.Fatal("missing flow classes")
	}
	// Queue: 200 attack packets from one bot (exhausting its budget) plus
	// 10 legit packets.
	var queued []int32
	for i := 0; i < 200; i++ {
		queued = append(queued, bots[0])
	}
	for i := 0; i < 10; i++ {
		queued = append(queued, legit)
	}
	served, _ := s.policy.admit(s, queued)
	legitServed := 0
	for _, fi := range served {
		if s.flows[fi].class != Attack {
			legitServed++
		}
	}
	if legitServed != 10 {
		t.Fatalf("legit served %d/10 under FF", legitServed)
	}
}

func TestFLocPolicyQuotasAndWorkConservation(t *testing.T) {
	s := tinySim(t, FLoc)
	p := s.policy.(*flocPolicy)
	if p.guaranteedPaths() == 0 {
		t.Fatal("no guaranteed paths")
	}
	// All packets from one AS's flows: first-pass quota plus
	// work-conserving overflow should serve up to capacity when the path
	// is not flagged.
	var flowsOfOneAS []int32
	as := s.flows[0].asIdx
	for i := range s.flows {
		if s.flows[i].asIdx == as {
			flowsOfOneAS = append(flowsOfOneAS, int32(i))
		}
	}
	var queued []int32
	for len(queued) < 80 {
		queued = append(queued, flowsOfOneAS[len(queued)%len(flowsOfOneAS)])
	}
	served, wait := p.admit(s, queued)
	if len(served) != 50 {
		t.Fatalf("work conservation failed: served %d of capacity 50", len(served))
	}
	if len(wait) != 30 {
		t.Fatalf("wait %d, want 30", len(wait))
	}
}

func TestFLocPolicyStrictOnAttackPaths(t *testing.T) {
	s := tinySim(t, FLoc)
	p := s.policy.(*flocPolicy)
	as := s.flows[0].asIdx
	pi := p.pathOf[as]
	p.paths[pi].attack = true
	var queued []int32
	for i := range s.flows {
		if s.flows[i].asIdx == as {
			for j := 0; j < 10; j++ {
				queued = append(queued, int32(i))
			}
		}
		if len(queued) >= 80 {
			break
		}
	}
	served, wait := p.admit(s, queued)
	quota := p.paths[pi].quota
	if float64(len(served)) > quota+1 {
		t.Fatalf("attack path served %d beyond quota %v", len(served), quota)
	}
	if len(wait) != 0 {
		t.Fatalf("attack-path overflow should drop, not wait: %d", len(wait))
	}
}

func TestFLocAggregationGroupsByPostfix(t *testing.T) {
	s := tinySim(t, FLoc)
	s.cfg.SMax = 5
	p := s.policy.(*flocPolicy)
	// Mark every populated AS as low-conformance and aggregate.
	for i := range p.conformEWMA {
		p.conformEWMA[i] = 0.1
	}
	before := p.guaranteedPaths()
	p.aggregate(s)
	after := p.guaranteedPaths()
	if after >= before {
		t.Fatalf("aggregation did not reduce paths: %d -> %d", before, after)
	}
	// Aggregates must only contain populated ASes, each assigned once.
	seen := map[int]bool{}
	for _, path := range p.paths {
		for _, as := range path.members {
			if seen[as] {
				t.Fatalf("AS %d in two paths", as)
			}
			seen[as] = true
		}
	}
}

func TestPlanSignatureStable(t *testing.T) {
	a := planSignature([][]int{{1, 2}, {5}})
	b := planSignature([][]int{{1, 2}, {5}})
	if a != b {
		t.Fatal("identical plans hash differently")
	}
	if planSignature([][]int{{1, 2, 5}}) == a {
		t.Fatal("different plans collide")
	}
	if planSignature(nil) != "" {
		t.Fatal("empty plan not empty")
	}
}

func TestHelpers(t *testing.T) {
	if minInt(2, 3) != 2 || maxInt(2, 3) != 3 {
		t.Fatal("int helpers")
	}
	if minf(1, 2) != 1 || maxf(1, 2) != 2 {
		t.Fatal("float32 helpers")
	}
	if maxFloat(1, 2) != 2 {
		t.Fatal("float helpers")
	}
	if string(appendInt(nil, 0)) != "0" || string(appendInt(nil, 123)) != "123" {
		t.Fatal("appendInt")
	}
}
