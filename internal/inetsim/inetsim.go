// Package inetsim is the Internet-scale discrete-tick simulator of paper
// Section VII-B: packets advance one router (AS) hop per tick, a router
// handles all packets that arrived during a tick at once, and drops are
// chosen uniformly at random among the tick's queued packets. With the
// paper's 5 ms tick, the 16000 packets/tick bottleneck corresponds to a
// 40 Gb/s (OC-768) link.
//
// The simulator scales to the paper's 110,000 sources by keeping flows,
// packets and queues in flat slices: a packet in flight is a single int32
// flow reference in its current link's buffer.
package inetsim

import (
	"fmt"

	"floc/internal/rng"
	"floc/internal/telemetry"
	"floc/internal/topology"
)

// DefenseKind selects the policy at the target link.
type DefenseKind string

// Target-link policies (paper Section VII-C).
const (
	// NoDefense is the "ND" baseline: a plain random-drop queue.
	NoDefense DefenseKind = "nd"
	// FairFlow is the "FF" baseline: legitimate packets get high
	// priority; attack packets get high priority only up to their
	// per-flow fair bandwidth.
	FairFlow DefenseKind = "ff"
	// FLoc applies per-domain quotas, per-flow preferential drops and
	// (optionally) attack-path aggregation at the target link.
	FLoc DefenseKind = "floc"
)

// Config parameterizes a run.
type Config struct {
	// Topology is the generated Internet topology.
	Topology *topology.Inet
	// Defense selects the target-link policy.
	Defense DefenseKind
	// SMax bounds the number of bandwidth-guaranteed paths for FLoc
	// (paper: 0 = no aggregation ("NA"), 200 ("A-200"), 100 ("A-100")).
	SMax int

	// CapacityPerTick is the target link's service capacity in packets
	// per tick (paper: 16000).
	CapacityPerTick int
	// InteriorFactor scales interior AS uplinks relative to the target
	// link; interior links are finite (heavily contaminated subtrees
	// clog their own uplinks, as the paper observes) but the target is
	// the bottleneck.
	InteriorFactor int
	// QueueFactor bounds each link's backlog at QueueFactor * capacity.
	QueueFactor int
	// Ticks and WarmupTicks control run length and the measurement
	// window (measurement covers ticks in [WarmupTicks, Ticks)).
	Ticks, WarmupTicks int
	// AttackRate is each bot's send rate in packets/tick.
	AttackRate float64
	// MaxWindow caps legitimate TCP windows (packets).
	MaxWindow float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns the paper's Section VII parameters for a
// topology.
func DefaultConfig(topo *topology.Inet, def DefenseKind) Config {
	return Config{
		Topology:        topo,
		Defense:         def,
		SMax:            0,
		CapacityPerTick: 16000,
		InteriorFactor:  4,
		QueueFactor:     2,
		Ticks:           600,
		WarmupTicks:     200,
		AttackRate:      0.64,
		MaxWindow:       64,
		Seed:            11,
	}
}

// Class indexes the measured traffic classes.
type Class int

// Traffic classes (paper Figs. 13-15).
const (
	// LegitLegit: legitimate flows of uncontaminated ASes.
	LegitLegit Class = iota
	// LegitAttack: legitimate flows of contaminated ASes.
	LegitAttack
	// Attack: bot flows.
	Attack
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case LegitLegit:
		return "legit/legit-AS"
	case LegitAttack:
		return "legit/attack-AS"
	case Attack:
		return "attack"
	default:
		return "unknown"
	}
}

// Result summarizes a run.
type Result struct {
	// Share[c] is class c's delivered traffic as a fraction of the
	// target link's capacity over the measurement window.
	Share [3]float64
	// Delivered[c] counts packets delivered to the destination.
	Delivered [3]int64
	// Injected counts packets sources emitted over the whole run.
	Injected int64
	// DroppedAtTarget and DroppedInTransit count drops.
	DroppedAtTarget, DroppedInTransit int64
	// GuaranteedPaths is FLoc's final guaranteed-identifier count.
	GuaranteedPaths int
}

// flow is one source's transport state.
type flow struct {
	asIdx int32
	class Class
	// TCP state (legitimate flows).
	cwnd      float32
	credit    float32
	rttTicks  int32
	phase     int32
	dropped   bool
	slowStart bool
	// attack rate (bots).
	rate float32
	// FLoc per-flow measurement.
	sent     float32 // packets injected this control period
	sentRate float32 // smoothed send rate (pkts/tick)
	escal    float32
}

// link is one AS's uplink toward the target.
type link struct {
	dstLink int32 // index of the next link toward the target; -1 = target link
	inbox   []int32
	next    []int32
	backlog []int32
}

// Sim is a configured simulation.
type Sim struct {
	cfg   Config
	rng   *rng.Source
	topo  *topology.Inet
	flows []flow
	links []link // links[i] = uplink of AS i+1... index == AS index
	// target is the final link into the destination.
	target targetLink

	res    Result
	tick   int
	policy policy
	met    *simMetrics // nil unless SetTelemetry attached a registry
}

// targetLink is the defended bottleneck.
type targetLink struct {
	inbox   []int32
	next    []int32
	backlog []int32
}

// policy decides, each tick, which of the target link's queued packets
// are serviced (delivered to the destination).
type policy interface {
	// admit receives the tick's queued packet flow-refs and returns the
	// serviced subset (length <= capacity) plus the packets it declined
	// only for lack of room (eligible to wait in the router buffer).
	// Packets dropped for cause (preferential drops, strict quota
	// enforcement) are reported via dropAtTarget and appear in neither
	// slice.
	admit(s *Sim, queued []int32) (served, wait []int32)
	// control runs periodic bookkeeping.
	control(s *Sim)
}

// New builds a simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("inetsim: nil topology")
	}
	if cfg.CapacityPerTick < 1 {
		return nil, fmt.Errorf("inetsim: capacity %d < 1", cfg.CapacityPerTick)
	}
	if cfg.Ticks <= cfg.WarmupTicks {
		return nil, fmt.Errorf("inetsim: ticks %d <= warmup %d", cfg.Ticks, cfg.WarmupTicks)
	}
	if cfg.QueueFactor < 1 {
		cfg.QueueFactor = 1
	}
	if cfg.InteriorFactor < 1 {
		cfg.InteriorFactor = 1
	}
	if cfg.AttackRate <= 0 {
		return nil, fmt.Errorf("inetsim: attack rate %v <= 0", cfg.AttackRate)
	}
	if cfg.MaxWindow < 1 {
		cfg.MaxWindow = 64
	}
	s := &Sim{cfg: cfg, rng: rng.New(cfg.Seed), topo: cfg.Topology}

	// Links: one uplink per AS, chained toward the target.
	ases := cfg.Topology.ASes
	s.links = make([]link, len(ases))
	for i := range ases {
		if ases[i].Parent == 0 {
			s.links[i].dstLink = -1
		} else {
			s.links[i].dstLink = int32(ases[i].Parent - 1)
		}
	}

	// Flows.
	s.flows = make([]flow, len(cfg.Topology.Sources))
	for i, src := range cfg.Topology.Sources {
		f := &s.flows[i]
		f.asIdx = int32(src.ASIdx)
		f.escal = 1
		// RTT: one tick per hop each way, minimum 2.
		depth := int32(ases[src.ASIdx].Depth)
		f.rttTicks = 2 * (depth + 1)
		if f.rttTicks < 2 {
			f.rttTicks = 2
		}
		f.phase = int32(s.rng.Intn(int(f.rttTicks)))
		if src.Attack {
			f.class = Attack
			f.rate = float32(cfg.AttackRate)
		} else {
			f.cwnd = 2
			f.slowStart = true
			if ases[src.ASIdx].Bots > 0 {
				f.class = LegitAttack
			} else {
				f.class = LegitLegit
			}
		}
	}

	switch cfg.Defense {
	case NoDefense:
		s.policy = &ndPolicy{}
	case FairFlow:
		s.policy = newFFPolicy(s)
	case FLoc:
		s.policy = newFLocPolicy(s)
	default:
		return nil, fmt.Errorf("inetsim: unknown defense %q", cfg.Defense)
	}
	return s, nil
}

// Run executes the simulation and returns the result.
func (s *Sim) Run() Result {
	for s.tick = 0; s.tick < s.cfg.Ticks; s.tick++ {
		s.inject()
		s.transit()
		s.serveTarget()
		s.advanceFlows()
		if s.tick%20 == 19 {
			s.policy.control(s)
			if telemetry.Compiled && s.met != nil {
				s.publishTelemetry()
			}
		}
	}
	if telemetry.Compiled && s.met != nil {
		s.publishTelemetry()
	}
	capacity := float64(s.cfg.CapacityPerTick) * float64(s.cfg.Ticks-s.cfg.WarmupTicks)
	for c := 0; c < int(numClasses); c++ {
		s.res.Share[c] = float64(s.res.Delivered[c]) / capacity
	}
	if fp, ok := s.policy.(*flocPolicy); ok {
		s.res.GuaranteedPaths = fp.guaranteedPaths()
	}
	return s.res
}

// inject adds each flow's packets for this tick into its AS's uplink.
func (s *Sim) inject() {
	for i := range s.flows {
		f := &s.flows[i]
		if f.class == Attack {
			f.credit += f.rate
		} else {
			f.credit += f.cwnd / float32(f.rttTicks)
		}
		for f.credit >= 1 {
			f.credit--
			l := &s.links[f.asIdx]
			l.inbox = append(l.inbox, int32(i))
			f.sent++
			s.res.Injected++
		}
	}
}

// transit moves packets one hop: each link serves up to capacity from its
// backlog+inbox into the downstream link's next-tick inbox, keeps a
// bounded backlog, and randomly drops the excess.
func (s *Sim) transit() {
	capacity := s.cfg.CapacityPerTick * s.cfg.InteriorFactor
	maxBacklog := capacity * s.cfg.QueueFactor
	for i := range s.links {
		l := &s.links[i]
		if len(l.inbox) == 0 && len(l.backlog) == 0 {
			continue
		}
		// Combined queue: backlog first (FIFO), then this tick's inbox.
		queued := append(l.backlog, l.inbox...)
		serve := queued
		if len(queued) > capacity {
			serve = queued[:capacity]
			rest := queued[capacity:]
			if len(rest) > maxBacklog {
				// Random drops among the excess (paper: random selection
				// among the tick's queued packets).
				s.rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
				dropped := rest[maxBacklog:]
				for _, fi := range dropped {
					s.dropInTransit(fi)
				}
				rest = rest[:maxBacklog]
			}
			l.backlog = append(l.backlog[:0:0], rest...)
		} else {
			l.backlog = l.backlog[:0]
		}
		// Forward the served packets.
		if l.dstLink < 0 {
			s.target.next = append(s.target.next, serve...)
		} else {
			dst := &s.links[l.dstLink]
			dst.next = append(dst.next, serve...)
		}
		l.inbox = l.inbox[:0]
	}
	// Swap next->inbox for all links and the target.
	for i := range s.links {
		l := &s.links[i]
		l.inbox, l.next = l.next, l.inbox[:0]
	}
	s.target.inbox, s.target.next = s.target.next, s.target.inbox[:0]
}

// serveTarget applies the defense policy to the target link's tick
// queue: the carried backlog plus this tick's arrivals. Unserved packets
// wait in the router buffer up to QueueFactor * capacity; the excess is
// dropped at random (paper VII-B: "a router randomly selects a packet
// from the all queued packets").
func (s *Sim) serveTarget() {
	queued := append(s.target.backlog, s.target.inbox...)
	s.target.inbox = s.target.inbox[:0]
	if len(queued) == 0 {
		s.target.backlog = s.target.backlog[:0]
		return
	}
	served, wait := s.policy.admit(s, queued)
	for _, fi := range served {
		f := &s.flows[fi]
		if s.tick >= s.cfg.WarmupTicks {
			s.res.Delivered[f.class]++
		}
	}
	s.res.DroppedAtTarget += int64(len(queued) - len(served) - len(wait))
	maxBacklog := s.cfg.CapacityPerTick * s.cfg.QueueFactor
	if len(wait) > maxBacklog {
		s.rng.Shuffle(len(wait), func(a, b int) { wait[a], wait[b] = wait[b], wait[a] })
		for _, fi := range wait[maxBacklog:] {
			s.dropAtTarget(fi)
		}
		s.res.DroppedAtTarget += int64(len(wait) - maxBacklog)
		wait = wait[:maxBacklog]
	}
	s.target.backlog = append(s.target.backlog[:0:0], wait...)
}

// dropInTransit records an interior-link drop and signals the flow.
func (s *Sim) dropInTransit(fi int32) {
	s.res.DroppedInTransit++
	f := &s.flows[fi]
	if f.class != Attack {
		f.dropped = true
	}
}

// dropAtTarget signals a flow about a target-link drop (policies call it).
func (s *Sim) dropAtTarget(fi int32) {
	f := &s.flows[fi]
	if f.class != Attack {
		f.dropped = true
	}
}

// advanceFlows runs the per-RTT TCP window update.
func (s *Sim) advanceFlows() {
	t := int32(s.tick)
	for i := range s.flows {
		f := &s.flows[i]
		if f.class == Attack {
			continue
		}
		if (t+f.phase)%f.rttTicks != 0 {
			continue
		}
		if f.dropped {
			f.cwnd /= 2
			if f.cwnd < 1 {
				f.cwnd = 1
			}
			f.dropped = false
			f.slowStart = false
		} else {
			if f.slowStart {
				f.cwnd *= 2
			} else {
				f.cwnd++
			}
			if f.cwnd > float32(s.cfg.MaxWindow) {
				f.cwnd = float32(s.cfg.MaxWindow)
			}
		}
	}
}

// Tick returns the current tick (for tests).
func (s *Sim) Tick() int { return s.tick }
