package inetsim

import "floc/internal/telemetry"

// simMetrics holds the registry handles for one simulation run. The
// Internet-scale simulator is tick-batched, so publication happens at the
// 20-tick control cadence (plus a final flush), never per packet: the
// counters advance by the delta accumulated in Result since the last
// publish.
type simMetrics struct {
	injected    *telemetry.Counter
	delivered   [numClasses]*telemetry.Counter
	dropTarget  *telemetry.Counter
	dropTransit *telemetry.Counter
	guaranteed  *telemetry.Gauge
	tick        *telemetry.Gauge

	prev Result // cumulative values at the last publish
}

// SetTelemetry attaches registry counters for this run, labeled by run
// (e.g. "f-root/FLoc-A200") so several simulations can share one registry.
// Pass nil to detach.
func (s *Sim) SetTelemetry(reg *telemetry.Registry, run string) {
	if reg == nil {
		s.met = nil
		return
	}
	label := `{run="` + run + `"}`
	m := &simMetrics{
		injected: reg.Counter("floc_inet_injected_packets_total"+label,
			"packets injected by all sources", "packets"),
		dropTarget: reg.Counter("floc_inet_dropped_target_packets_total"+label,
			"packets dropped at the target link", "packets"),
		dropTransit: reg.Counter("floc_inet_dropped_transit_packets_total"+label,
			"packets dropped on interior links", "packets"),
		guaranteed: reg.Gauge("floc_inet_guaranteed_paths"+label,
			"FLoc guaranteed identifiers (0 for other defenses)", ""),
		tick: reg.Gauge("floc_inet_tick"+label,
			"simulation tick at last publish", "ticks"),
	}
	for c := Class(0); c < numClasses; c++ {
		m.delivered[c] = reg.Counter(
			`floc_inet_delivered_packets_total{run="`+run+`",class="`+c.String()+`"}`,
			"packets delivered to the destination by class", "packets")
	}
	s.met = m
}

// publishTelemetry advances the registry counters by the Result delta
// accumulated since the last publish.
func (s *Sim) publishTelemetry() {
	m := s.met
	m.injected.Add(s.res.Injected - m.prev.Injected)
	m.dropTarget.Add(s.res.DroppedAtTarget - m.prev.DroppedAtTarget)
	m.dropTransit.Add(s.res.DroppedInTransit - m.prev.DroppedInTransit)
	for c := Class(0); c < numClasses; c++ {
		m.delivered[c].Add(s.res.Delivered[c] - m.prev.Delivered[c])
	}
	if fp, ok := s.policy.(*flocPolicy); ok {
		m.guaranteed.Set(float64(fp.guaranteedPaths()))
	}
	m.tick.Set(float64(s.tick))
	m.prev = s.res
}
