package inetsim

import (
	"testing"

	"floc/internal/topology"
)

// smallTopo builds a reduced Internet topology for fast tests.
func smallTopo(t *testing.T, profile topology.Profile, overlap float64) *topology.Inet {
	t.Helper()
	cfg := topology.DefaultInetConfig(profile)
	cfg.TotalASes = 250
	cfg.LegitASes = 40
	cfg.AttackASes = 20
	cfg.LegitSources = 800
	cfg.AttackSources = 6000
	cfg.OverlapFrac = overlap
	topo, err := topology.GenerateInet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// smallConfig shrinks capacity so the small topology still floods the
// target: 6000 bots * 0.64 = 3840 pkts/tick offered vs 1000 capacity.
func smallConfig(topo *topology.Inet, def DefenseKind) Config {
	cfg := DefaultConfig(topo, def)
	cfg.CapacityPerTick = 1000
	cfg.Ticks = 300
	cfg.WarmupTicks = 100
	return cfg
}

func TestNewValidation(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	cfg := smallConfig(topo, NoDefense)
	cfg.CapacityPerTick = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero capacity accepted")
	}
	cfg = smallConfig(topo, NoDefense)
	cfg.WarmupTicks = cfg.Ticks
	if _, err := New(cfg); err == nil {
		t.Fatal("warmup >= ticks accepted")
	}
	cfg = smallConfig(topo, "bogus")
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown defense accepted")
	}
	cfg = smallConfig(topo, NoDefense)
	cfg.AttackRate = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero attack rate accepted")
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestNoDefenseFloodDeniesLegit(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	res := run(t, smallConfig(topo, NoDefense))
	legit := res.Share[LegitLegit] + res.Share[LegitAttack]
	// Paper Fig. 13 "ND": legitimate flows are (almost) completely denied.
	if legit > 0.1 {
		t.Fatalf("legit share under no defense = %v, attack too weak", legit)
	}
	if res.Share[Attack] < 0.5 {
		t.Fatalf("attack share = %v under flood", res.Share[Attack])
	}
	if res.DroppedAtTarget == 0 {
		t.Fatal("no drops at flooded target")
	}
}

func TestFairFlowPartialProtection(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	nd := run(t, smallConfig(topo, NoDefense))
	ff := run(t, smallConfig(topo, FairFlow))
	ndLegit := nd.Share[LegitLegit] + nd.Share[LegitAttack]
	ffLegit := ff.Share[LegitLegit] + ff.Share[LegitAttack]
	// FF gives legitimate flows more than ND but far from full capacity
	// (paper: ~20%).
	if ffLegit <= ndLegit {
		t.Fatalf("FF did not improve on ND: %v vs %v", ffLegit, ndLegit)
	}
	if ffLegit > 0.6 {
		t.Fatalf("FF legit share suspiciously high: %v", ffLegit)
	}
}

func TestFLocLocalizesLargeScaleAttack(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	floc := run(t, smallConfig(topo, FLoc))
	ff := run(t, smallConfig(topo, FairFlow))
	flocLegit := floc.Share[LegitLegit] + floc.Share[LegitAttack]
	ffLegit := ff.Share[LegitLegit] + ff.Share[LegitAttack]
	// Paper Fig. 13: FLoc reaches ~70% legit share, far above FF.
	if flocLegit <= ffLegit {
		t.Fatalf("FLoc (%v) did not beat FF (%v)", flocLegit, ffLegit)
	}
	if flocLegit < 0.4 {
		t.Fatalf("FLoc legit share = %v, want >= 0.4", flocLegit)
	}
	// Legit flows in attack ASes are not denied (differential guarantee).
	if floc.Share[LegitAttack] <= 0 {
		t.Fatal("legit flows in attack ASes fully denied under FLoc")
	}
}

func TestFLocAggregationImprovesLegitPaths(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	na := run(t, smallConfig(topo, FLoc))

	cfgAgg := smallConfig(topo, FLoc)
	cfgAgg.SMax = 45 // below the ~60 active ASes: forces aggregation
	agg := run(t, cfgAgg)

	if agg.GuaranteedPaths == 0 || agg.GuaranteedPaths > 45+2 {
		t.Fatalf("guaranteed paths after aggregation = %d", agg.GuaranteedPaths)
	}
	if na.GuaranteedPaths <= agg.GuaranteedPaths {
		t.Fatalf("aggregation did not reduce paths: %d vs %d", na.GuaranteedPaths, agg.GuaranteedPaths)
	}
	// Paper: "As aggregation proceeds, legitimate flows in legitimate
	// paths get more bandwidth allocation".
	if agg.Share[LegitLegit] < na.Share[LegitLegit]*0.95 {
		t.Fatalf("aggregation hurt legit paths: %v vs %v", agg.Share[LegitLegit], na.Share[LegitLegit])
	}
}

func TestSeparatedTopologyImprovesLocalization(t *testing.T) {
	mixed := smallTopo(t, topology.FRoot, 0.3)
	separated := smallTopo(t, topology.FRoot, 0)
	rm := run(t, smallConfig(mixed, FLoc))
	rs := run(t, smallConfig(separated, FLoc))
	// With no legitimate residents in attack ASes, there is no
	// legit-in-attack-path traffic at all.
	if rs.Share[LegitAttack] != 0 {
		t.Fatalf("separated topology has legit-attack share %v", rs.Share[LegitAttack])
	}
	if rs.Share[LegitLegit] <= 0 {
		t.Fatal("separated legit share zero")
	}
	_ = rm
}

func TestDeterminism(t *testing.T) {
	topo := smallTopo(t, topology.HRoot, 0.3)
	a := run(t, smallConfig(topo, FLoc))
	// Regenerate an identical topology: GenerateInet is deterministic.
	topo2 := smallTopo(t, topology.HRoot, 0.3)
	b := run(t, smallConfig(topo2, FLoc))
	if a != b {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestClassString(t *testing.T) {
	if LegitLegit.String() == "" || LegitAttack.String() == "" || Attack.String() == "" {
		t.Fatal("class names empty")
	}
	if Class(9).String() != "unknown" {
		t.Fatal("unknown class name")
	}
}

func TestTCPFlowsAdaptInSim(t *testing.T) {
	// Without attack pressure (tiny attack rate), legit flows should
	// achieve healthy aggregate utilization.
	topo := smallTopo(t, topology.FRoot, 0.3)
	cfg := smallConfig(topo, NoDefense)
	cfg.AttackRate = 0.0001 // negligible
	res := run(t, cfg)
	legit := res.Share[LegitLegit] + res.Share[LegitAttack]
	if legit < 0.3 {
		t.Fatalf("legit utilization without attack = %v", legit)
	}
}

func TestInjectedCounted(t *testing.T) {
	topo := smallTopo(t, topology.FRoot, 0.3)
	res := run(t, smallConfig(topo, NoDefense))
	if res.Injected == 0 {
		t.Fatal("no injections counted")
	}
	// Everything delivered or dropped is bounded by what was injected.
	delivered := res.Delivered[0] + res.Delivered[1] + res.Delivered[2]
	if delivered > res.Injected {
		t.Fatalf("delivered %d > injected %d", delivered, res.Injected)
	}
	if res.DroppedAtTarget+res.DroppedInTransit > res.Injected {
		t.Fatalf("drops exceed injections")
	}
}
