package inetsim

import "sort"

// ndPolicy is the no-defense baseline: serve up to capacity, chosen
// uniformly at random among the tick's queued packets (paper VII-B), drop
// the rest.
type ndPolicy struct{}

func (*ndPolicy) control(*Sim) {}

func (*ndPolicy) admit(s *Sim, queued []int32) (served, wait []int32) {
	capacity := s.cfg.CapacityPerTick
	if len(queued) <= capacity {
		return queued, nil
	}
	s.rng.Shuffle(len(queued), func(a, b int) { queued[a], queued[b] = queued[b], queued[a] })
	return queued[:capacity], queued[capacity:]
}

// ffPolicy is the per-flow fairness baseline of Section VII-C: all
// legitimate packets are high priority; attack packets are high priority
// up to their per-flow fair bandwidth; normal-priority packets are served
// only with leftover capacity.
type ffPolicy struct {
	fairPerTick float64
	// hiCredit[flow] accumulates each attack flow's high-priority budget.
	hiCredit []float32
}

func newFFPolicy(s *Sim) *ffPolicy {
	p := &ffPolicy{hiCredit: make([]float32, len(s.flows))}
	p.control(s)
	return p
}

func (p *ffPolicy) control(s *Sim) {
	n := len(s.flows)
	if n == 0 {
		n = 1
	}
	p.fairPerTick = float64(s.cfg.CapacityPerTick) / float64(n)
}

func (p *ffPolicy) admit(s *Sim, queued []int32) (served, wait []int32) {
	capacity := s.cfg.CapacityPerTick
	// Refill attack flows' high-priority budgets.
	for i := range s.flows {
		if s.flows[i].class == Attack {
			p.hiCredit[i] += float32(p.fairPerTick)
			if p.hiCredit[i] > 4*float32(p.fairPerTick)+1 {
				p.hiCredit[i] = 4*float32(p.fairPerTick) + 1
			}
		}
	}
	hi := make([]int32, 0, len(queued))
	var lo []int32
	for _, fi := range queued {
		f := &s.flows[fi]
		if f.class != Attack {
			hi = append(hi, fi)
		} else if p.hiCredit[fi] >= 1 {
			p.hiCredit[fi]--
			hi = append(hi, fi)
		} else {
			lo = append(lo, fi)
		}
	}
	if len(hi) > capacity {
		s.rng.Shuffle(len(hi), func(a, b int) { hi[a], hi[b] = hi[b], hi[a] })
		// High-priority overflow waits; low priority is shed first.
		return hi[:capacity], hi[capacity:]
	}
	room := capacity - len(hi)
	if len(lo) > room {
		s.rng.Shuffle(len(lo), func(a, b int) { lo[a], lo[b] = lo[b], lo[a] })
		return append(hi, lo[:room]...), lo[room:]
	}
	return append(hi, lo...), nil
}

// flocPolicy is the tick-level FLoc variant: per-origin-domain quotas
// (with unused quota redistributed work-conservingly), per-flow
// preferential drops pinning over-fair flows of attack paths at their
// fair share with non-responsiveness escalation, conformance tracking,
// and attack-path aggregation under |S|max.
//
// It re-derives internal/core's mechanisms at tick granularity, exactly
// as the paper's own Internet-scale simulator re-implemented the ns-2
// router model coarsely.
type flocPolicy struct {
	// pathOf[asIdx] = current guaranteed-path index of the AS.
	pathOf []int32
	paths  []flocPath
	// conformEWMA[asIdx] is the AS's conformance measure (Eq. IV.6).
	conformEWMA []float64
	// planSig detects aggregation-plan changes so path state (attack
	// flags, lambda) survives control ticks with an unchanged plan.
	planSig string
}

// flocPath is one guaranteed path identifier (an origin AS or an
// aggregate of origin ASes).
type flocPath struct {
	flows       int
	quota       float64
	attack      bool
	used        float64
	arrived     float64
	lambda      float64
	conformance float64
	// members lists the AS indices merged into this path (single AS for
	// origin paths).
	members []int
}

func newFLocPolicy(s *Sim) *flocPolicy {
	p := &flocPolicy{
		pathOf:      make([]int32, len(s.topo.ASes)),
		conformEWMA: make([]float64, len(s.topo.ASes)),
	}
	for i := range p.conformEWMA {
		p.conformEWMA[i] = 1
	}
	p.rebuild(s, nil)
	return p
}

func (p *flocPolicy) guaranteedPaths() int { return len(p.paths) }

// rebuild assigns ASes to guaranteed paths. groups maps a group id to
// member AS indices for aggregation; ASes not in a group get their own
// path. Only ASes with sources participate.
func (p *flocPolicy) rebuild(s *Sim, groups [][]int) {
	p.paths = p.paths[:0]
	for i := range p.pathOf {
		p.pathOf[i] = -1
	}
	inGroup := map[int]bool{}
	for _, members := range groups {
		idx := int32(len(p.paths))
		p.paths = append(p.paths, flocPath{conformance: 1, members: members})
		for _, as := range members {
			p.pathOf[as] = idx
			inGroup[as] = true
		}
	}
	for i := range s.topo.ASes {
		a := &s.topo.ASes[i]
		if a.LegitHosts+a.Bots == 0 || inGroup[i] {
			continue
		}
		p.pathOf[i] = int32(len(p.paths))
		p.paths = append(p.paths, flocPath{conformance: 1, members: []int{i}})
	}
	// Count flows per path.
	for i := range s.flows {
		pi := p.pathOf[s.flows[i].asIdx]
		if pi >= 0 {
			p.paths[pi].flows++
		}
	}
	p.setQuotas(s)
}

func (p *flocPolicy) setQuotas(s *Sim) {
	if len(p.paths) == 0 {
		return
	}
	quota := float64(s.cfg.CapacityPerTick) / float64(len(p.paths))
	for i := range p.paths {
		p.paths[i].quota = quota
	}
}

// control updates per-flow rates, attack flags, conformance, and the
// aggregation plan.
func (p *flocPolicy) control(s *Sim) {
	const period = 20.0 // ticks between control runs (see Sim.Run)

	// Per-flow send rates and attack-flow classification.
	type asAgg struct{ flows, attack int }
	perAS := make([]asAgg, len(s.topo.ASes))
	for i := range s.flows {
		f := &s.flows[i]
		f.sentRate = 0.5*f.sentRate + 0.5*(f.sent/period)
		f.sent = 0
		pi := p.pathOf[f.asIdx]
		if pi < 0 {
			continue
		}
		path := &p.paths[pi]
		// A flow cannot be expected to run below one packet per RTT, no
		// matter how populous its domain: floor the fair share there so
		// responsive flows of large legitimate domains are never
		// classified as attack flows.
		fair := maxFloat(path.quota/float64(maxInt(path.flows, 1)), 1/float64(f.rttTicks))
		over := float64(f.sentRate) > 1.5*fair
		if over {
			f.escal = minf(8, maxf(1, f.escal)*1.25)
		} else {
			f.escal = maxf(1, f.escal*0.7)
		}
		perAS[f.asIdx].flows++
		if over {
			perAS[f.asIdx].attack++
		}
	}

	// Conformance EWMA per AS (Eq. IV.6, beta = 0.2).
	for i := range perAS {
		if perAS[i].flows == 0 {
			continue
		}
		sample := 1 - float64(perAS[i].attack)/float64(perAS[i].flows)
		p.conformEWMA[i] = 0.2*sample + 0.8*p.conformEWMA[i]
	}

	// Path conformance (flow-weighted member mean), lambda, and
	// attack-path detection: a path joins the attack tree only when it
	// both over-subscribes its quota and has low conformance (Section
	// IV-C) — an over-subscribed but fully conformant (populous,
	// responsive) domain keeps the lenient policy.
	for i := range p.paths {
		path := &p.paths[i]
		sumN, sumEN := 0.0, 0.0
		for _, as := range path.members {
			n := float64(s.topo.ASes[as].LegitHosts + s.topo.ASes[as].Bots)
			sumN += n
			sumEN += p.conformEWMA[as] * n
		}
		if sumN > 0 {
			path.conformance = sumEN / sumN
		}
		rate := path.arrived / period
		path.lambda = 0.5*rate + 0.5*path.lambda
		path.arrived = 0
		path.attack = path.lambda > 1.1*path.quota && path.conformance < 0.5
	}

	// Aggregation when the active path count exceeds SMax.
	if s.cfg.SMax > 0 {
		p.aggregate(s)
	}
}

// planSignature canonicalizes a grouping for change detection.
func planSignature(groups [][]int) string {
	var b []byte
	for _, g := range groups {
		for _, as := range g {
			b = appendInt(b, as)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// aggregate lifts low-conformance origin ASes into shared-parent groups
// (longest postfix first) until the guaranteed-path count fits SMax.
func (p *flocPolicy) aggregate(s *Sim) {
	active := 0
	var attackASes []int
	for i := range s.topo.ASes {
		if s.topo.ASes[i].LegitHosts+s.topo.ASes[i].Bots == 0 {
			continue
		}
		active++
		if p.conformEWMA[i] < 0.5 {
			attackASes = append(attackASes, i)
		}
	}
	if active <= s.cfg.SMax || len(attackASes) < 2 {
		return
	}
	need := active - s.cfg.SMax

	// Group attack ASes by progressively shorter postfixes of their
	// paths (nearest shared domains first).
	sort.Ints(attackASes)
	var groups [][]int
	assigned := map[int]bool{}
	for level := 1; need > 0 && level < s.topo.MaxDepth; level++ {
		byKey := map[string][]int{}
		for _, as := range attackASes {
			if assigned[as] {
				continue
			}
			path := s.topo.ASes[as].Path
			if path.Len() <= level {
				continue
			}
			key := path.Postfix(path.Len() - level).Key()
			byKey[key] = append(byKey[key], as)
		}
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			members := byKey[k]
			if len(members) < 2 || need <= 0 {
				continue
			}
			groups = append(groups, members)
			for _, as := range members {
				assigned[as] = true
			}
			need -= len(members) - 1
		}
	}
	if need > 0 {
		// Last resort: one global aggregate of all remaining attack ASes.
		var rest []int
		for _, as := range attackASes {
			if !assigned[as] {
				rest = append(rest, as)
			}
		}
		if len(rest) >= 2 {
			groups = append(groups, rest)
		}
	}
	if len(groups) == 0 {
		return
	}
	sig := planSignature(groups)
	if sig == p.planSig {
		return // unchanged plan: keep path state (attack flags, lambda)
	}
	p.planSig = sig
	p.rebuild(s, groups)
	// Fresh aggregates are built from low-conformance ASes: start them
	// flagged so their quota is strict from the first tick.
	for i := range groups {
		p.paths[i].attack = true
	}
}

// admit implements the per-tick FLoc service decision.
func (p *flocPolicy) admit(s *Sim, queued []int32) (served, wait []int32) {
	capacity := s.cfg.CapacityPerTick
	for i := range p.paths {
		p.paths[i].used = 0
	}
	served = make([]int32, 0, minInt(len(queued), capacity))
	var overflow []int32

	// Shuffle so quota contention within a tick is unbiased.
	s.rng.Shuffle(len(queued), func(a, b int) { queued[a], queued[b] = queued[b], queued[a] })

	for _, fi := range queued {
		f := &s.flows[fi]
		pi := p.pathOf[f.asIdx]
		if pi < 0 {
			overflow = append(overflow, fi)
			continue
		}
		path := &p.paths[pi]
		path.arrived++

		// Preferential drop: flows of attack paths offering more than
		// their (escalation-scaled) fair share.
		if path.attack {
			fair := maxFloat(path.quota/float64(maxInt(path.flows, 1)), 1/float64(f.rttTicks))
			rate := float64(f.sentRate)
			if rate > fair {
				pd := 1 - fair/(float64(f.escal)*rate)
				if s.rng.Float64() < pd {
					s.dropAtTarget(fi)
					continue
				}
			}
		}
		if path.used < path.quota && len(served) < capacity {
			path.used++
			served = append(served, fi)
			continue
		}
		overflow = append(overflow, fi)
	}
	// Work conservation: leftover capacity serves overflow FCFS, except
	// packets of attack paths (their quota is strict — Section V-A's
	// early/strict activation for attack identifiers). Non-attack
	// overflow beyond capacity waits in the router buffer.
	room := capacity - len(served)
	for _, fi := range overflow {
		f := &s.flows[fi]
		pi := p.pathOf[f.asIdx]
		if pi >= 0 && p.paths[pi].attack {
			s.dropAtTarget(fi)
			continue
		}
		if room > 0 {
			served = append(served, fi)
			room--
			continue
		}
		wait = append(wait, fi)
	}
	return served, wait
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
