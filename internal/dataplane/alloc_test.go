package dataplane

import (
	"testing"

	"floc/internal/netsim"
)

// The ring is crossed once per packet in each direction; its push and
// batched pop carry the //floc:hotpath zero-allocation contract.

func TestZeroAllocRingOps(t *testing.T) {
	r := newRing(64)
	var pkt netsim.Packet
	dst := make([]item, 16)
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			if !r.tryEnqueue(item{pkt: &pkt, at: 1.0}) {
				t.Fatal("ring unexpectedly full")
			}
		}
		if n := r.dequeueBatch(dst); n != 16 {
			t.Fatalf("dequeued %d of 16", n)
		}
	}); avg != 0 {
		t.Fatalf("ring push/pop allocates %.1f times per 16-packet cycle, want 0", avg)
	}
}
