package dataplane

import (
	"fmt"
	"sync/atomic"
	"testing"

	"floc/internal/core"
	"floc/internal/netsim"
	"floc/internal/pathid"
)

// BenchmarkDataplaneEnqueueSharded measures aggregate enqueue-to-admission
// throughput at 1/2/4/8 shards: GOMAXPROCS producer goroutines push CBR
// packets through the rings while the shard workers run admission. With
// BlockOnFull the producers are paced by the workers, so ns/op tracks the
// whole pipeline, not just ring contention; on a multi-core runner the
// per-shard routers run concurrently and ns/op drops with the shard count.
func BenchmarkDataplaneEnqueueSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rc := core.DefaultConfig(8e9, 1024) // 1M pkt/s: transmitter never the bottleneck
			rc.Seed = 1
			e, err := New(Config{Router: rc, Shards: shards, RingSize: 4096, BlockOnFull: true})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()

			// 64 distinct paths so every shard count gets work on all
			// shards; per-producer packet blocks are recycled (sizes are
			// constant, so in-flight reuse cannot corrupt accounting).
			paths := make([]pathid.PathID, 64)
			keys := make([]string, 64)
			handles := make([]uint32, 64)
			for i := range paths {
				paths[i] = pathid.New(pathid.ASN(1000+i), pathid.ASN(i%8), 1)
				keys[i] = paths[i].Key()
				// Pre-intern like the wire pipeline does: steady-state
				// admission is handle-indexed.
				handles[i] = e.InternPath(paths[i])
			}
			var producer atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				const block = 4096
				pkts := make([]netsim.Packet, block)
				p := uint64(producer.Add(1))
				i := uint64(0)
				for pb.Next() {
					pkt := &pkts[i%block]
					pi := (i*7 + p*13) % uint64(len(paths))
					*pkt = netsim.Packet{
						ID: i, Src: uint32(p), Dst: 1, Size: 1000,
						Kind: netsim.KindUDP, Path: paths[pi], PathKey: keys[pi],
						PathHandle: handles[pi],
					}
					e.Enqueue(pkt, 1.0)
					i++
				}
			})
			e.Drain()
			b.StopTimer()
		})
	}
}
