package dataplane

import (
	"sync/atomic"

	"floc/internal/netsim"
)

// item is one unit of shard work: a packet and its arrival time.
type item struct {
	pkt *netsim.Packet
	at  float64 //floc:unit seconds
}

// ring is a bounded multi-producer single-consumer queue (Vyukov's
// bounded MPMC design, used here with one consumer). Each slot carries a
// sequence number: producers claim a slot by CAS on the enqueue cursor
// and publish it by advancing the slot sequence; the consumer observes
// publication through the same sequence, so item handoff is properly
// ordered without locks. Capacity is a power of two so cursor-to-slot
// mapping is a mask.
type ring struct {
	mask  uint64
	slots []ringSlot
	enq   atomic.Uint64 // producer cursor (claimed, not yet necessarily published)
	deq   uint64        // consumer cursor; touched only by the consumer goroutine
}

type ringSlot struct {
	seq  atomic.Uint64
	item item
}

// newRing returns a ring of the given power-of-two size.
func newRing(size int) *ring {
	r := &ring{mask: uint64(size) - 1, slots: make([]ringSlot, size)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryEnqueue publishes one item. It returns false when the ring is full —
// the caller decides whether to drop (accounted) or back off.
// floc:hotpath
func (r *ring) tryEnqueue(it item) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.item = it
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			// Slot still holds an unconsumed item from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = r.enq.Load()
		}
	}
}

// dequeueBatch moves up to len(dst) published items into dst and returns
// how many it moved. Consumer-only.
// floc:hotpath
func (r *ring) dequeueBatch(dst []item) int {
	n := 0
	for n < len(dst) {
		pos := r.deq
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if int64(seq)-int64(pos+1) < 0 {
			break // next slot not yet published: ring (momentarily) empty
		}
		dst[n] = s.item
		s.item = item{} // drop the reference for GC
		s.seq.Store(pos + uint64(len(r.slots)))
		r.deq = pos + 1
		n++
	}
	return n
}

// empty reports whether the consumer has caught up with all published
// items. Consumer-side check; a concurrent producer can make it stale
// immediately.
// floc:hotpath
func (r *ring) empty() bool {
	s := &r.slots[r.deq&r.mask]
	return int64(s.seq.Load())-int64(r.deq+1) < 0
}

// occupancy reports how many claimed slots the consumer has not yet
// drained. Consumer-side health sample; the producer cursor counts
// claimed-but-unpublished slots too, so the value can over-read by the
// number of producers mid-publish (never under-read).
// floc:hotpath
func (r *ring) occupancy() int {
	return int(r.enq.Load() - r.deq)
}
