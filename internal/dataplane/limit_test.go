package dataplane

import (
	"sync"
	"testing"

	"floc/internal/core"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/telemetry"
)

// limitTestConfig is a small engine for limit-install tests.
func limitTestConfig(shards int) Config {
	return Config{
		Router:      core.DefaultConfig(1e9, 64*shards),
		Shards:      shards,
		RingSize:    256,
		BlockOnFull: true,
	}
}

func limitPkt(path pathid.PathID, handle uint32, size int) *netsim.Packet {
	return &netsim.Packet{
		Size:       size,
		Path:       path,
		PathKey:    path.Key(),
		PathHandle: handle,
	}
}

func TestInstallLimitDropsExcess(t *testing.T) {
	e, err := New(limitTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	victim := pathid.New(100, 10, 1)
	bystander := pathid.New(101, 11, 1)
	vh := e.InternPath(victim)
	bh := e.InternPath(bystander)
	if vh == 0 || bh == 0 {
		t.Fatalf("interning failed: %d %d", vh, bh)
	}

	// 1 Mb/s limit against ~12 Mb/s offered: most of the victim's
	// packets must die at the bank, none of the bystander's.
	if !e.InstallLimit(victim, 1_000_000, 0, 42, 0) {
		t.Fatal("InstallLimit failed")
	}
	if got := e.InstalledLimits(); got != 1 {
		t.Fatalf("InstalledLimits = %d, want 1", got)
	}

	for i := 0; i < 200; i++ {
		at := 0.001 * float64(i)
		e.Enqueue(limitPkt(victim, vh, 1500), at)
		e.Enqueue(limitPkt(bystander, bh, 1500), at)
	}
	e.Drain()

	st := e.Stats()
	if st.LimitDrops == 0 {
		t.Fatal("no limit drops despite 12x over the installed limit")
	}
	snap := e.Snapshot()
	var victimArrived, byArrived int64
	for _, p := range snap.Paths {
		n := p.AdmittedPackets + p.DroppedPackets
		switch p.Key {
		case victim.Key():
			victimArrived = n
		case bystander.Key():
			byArrived = n
		}
	}
	if byArrived != 200 {
		t.Fatalf("bystander: %d packets reached the router, want 200", byArrived)
	}
	if victimArrived+st.LimitDrops != 200 {
		t.Fatalf("victim: %d at router + %d limit drops != 200 offered", victimArrived, st.LimitDrops)
	}
	if victimArrived >= 200 {
		t.Fatalf("victim: all %d packets reached the router; limit had no effect", victimArrived)
	}
}

func TestInstallLimitReleaseAndExpiry(t *testing.T) {
	e, err := New(limitTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	path := pathid.New(7, 3, 1)
	if !e.InstallLimit(path, 5_000_000, 2.0, 1, 0) {
		t.Fatal("install failed")
	}
	if got := e.InstalledLimits(); got != 1 {
		t.Fatalf("InstalledLimits = %d, want 1", got)
	}
	// Release by rate 0.
	if !e.InstallLimit(path, 0, 0, 1, 0.5) {
		t.Fatal("release failed")
	}
	if got := e.InstalledLimits(); got != 0 {
		t.Fatalf("InstalledLimits after release = %d, want 0", got)
	}
	// Reinstall with a lease, then sweep past it.
	if !e.InstallLimit(path, 5_000_000, 2.0, 1, 1.0) {
		t.Fatal("reinstall failed")
	}
	e.SweepLimits(1.0)
	if got := e.InstalledLimits(); got != 1 {
		t.Fatalf("InstalledLimits before expiry = %d, want 1", got)
	}
	e.SweepLimits(3.0)
	if got := e.InstalledLimits(); got != 0 {
		t.Fatalf("InstalledLimits after expiry sweep = %d, want 0", got)
	}
	if !e.InstallLimit(nil, 1, 0, 1, 0) == false {
		t.Fatal("empty path must be rejected")
	}
}

func TestInstallLimitEmitsFeedbackApplied(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := limitTestConfig(1)
	cfg.Telemetry = reg
	cfg.TraceCapacity = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	path := pathid.New(9, 2, 1)
	if !e.InstallLimit(path, 3_000_000, 0, 77, 1.25) {
		t.Fatal("install failed")
	}
	e.Drain()
	var found bool
	for _, ev := range e.shards[0].router.Telemetry().Trace.Events() {
		if ev.Type == telemetry.EventFeedbackApplied {
			found = true
			if ev.Path != path.Key() || ev.Peer != 77 || ev.Value != 3_000_000 || ev.Time != 1.25 {
				t.Fatalf("FeedbackApplied fields wrong: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no FeedbackApplied event in the shard trace")
	}
	if v := reg.GaugeValue(`floc_cluster_installed_limits{shard="0"}`); v != 1 {
		t.Fatalf("installed-limits gauge = %v, want 1", v)
	}
}

// egressRecorder collects transmitted packets (engine-wide, so it locks).
type egressRecorder struct {
	mu   sync.Mutex
	pkts []*netsim.Packet
}

// floc:unit now seconds
func (r *egressRecorder) Emit(pkt *netsim.Packet, now float64) {
	r.mu.Lock()
	r.pkts = append(r.pkts, pkt)
	r.mu.Unlock()
}

func TestEgressSinkSeesTransmittedPackets(t *testing.T) {
	rec := &egressRecorder{}
	cfg := limitTestConfig(2)
	cfg.Egress = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := pathid.New(50, 5, 1)
	h := e.InternPath(path)
	for i := 0; i < 50; i++ {
		e.Enqueue(limitPkt(path, h, 1000), 0.001*float64(i))
	}
	e.Drain()
	e.Advance(10)
	e.Close()
	rec.mu.Lock()
	n := len(rec.pkts)
	rec.mu.Unlock()
	snap := e.Snapshot()
	if int64(n) != snap.Admitted {
		t.Fatalf("egress saw %d packets, router admitted %d", n, snap.Admitted)
	}
	if n == 0 {
		t.Fatal("nothing transmitted")
	}
}

// BenchmarkLimitInstall is the limit-install perf family
// (scripts/bench-snapshot.sh): ns/op for one InstallLimit barrier round
// trip into the owning shard, the rate at which a daemon can absorb
// cluster feedback records.
func BenchmarkLimitInstall(b *testing.B) {
	e, err := New(limitTestConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	path := pathid.New(100, 10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.InstallLimit(path, 1_000_000, 0, 1, 0) {
			b.Fatal("InstallLimit failed")
		}
	}
}
