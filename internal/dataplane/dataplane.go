// Package dataplane runs FLoc across multiple cores. An Engine partitions
// traffic by hashing each packet's path identifier onto one of N worker
// shards; every shard owns a private core.Router (configured with 1/N of
// the link rate and buffer) plus a bounded MPSC ring queue feeding it, so
// no router state is ever shared between goroutines. Producers — UDP
// readers, capture replay, benchmarks — enqueue concurrently; each worker
// drains its ring in batches through the router's batch-admission API and
// services the router's output queue against a virtual-time transmitter.
//
// Partitioning by path identifier is what makes the split faithful to the
// single-router semantics: FLoc's admission state (token buckets,
// conformance, flow tables, aggregation) is all keyed by origin path, so
// a path's packets always meet the same router and the same state. What
// the split cannot preserve is cross-path interaction through the shared
// physical buffer — each shard sees only its own queue when classifying
// uncongested/congested/flooding — which is the standard trade of sharded
// dataplanes (RSS spreads flows over queues the same way).
//
// Backpressure is explicit: when a shard's ring is full the engine either
// drops the packet and counts it (telemetry counter
// floc_dataplane_ring_full_drops_total plus Stats), or, in BlockOnFull
// mode, yields until the worker catches up. Nothing is ever dropped
// silently.
package dataplane

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"floc/internal/core"
	"floc/internal/defense"
	"floc/internal/invariant"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/telemetry"
	"floc/internal/units"
)

// PacketSink receives packets the virtual transmitter has finished
// sending — the engine's egress seam. A daemon forwarding traffic to a
// downstream flocd implements it with a socket writer. Each shard calls
// its sink from its own worker goroutine; implementations shared across
// shards must be safe for concurrent use.
type PacketSink interface {
	// Emit is called once per transmitted packet with the virtual time
	// the transmission completed.
	// floc:unit now seconds
	Emit(pkt *netsim.Packet, now float64)
}

// Config parameterizes an Engine.
type Config struct {
	// Router configures the aggregate router the shards jointly emulate.
	// Link rate and buffer capacity are divided across shards; all other
	// parameters are inherited verbatim. Shard i derives its RNG seed
	// from Router.Seed so runs are reproducible at any shard count
	// (shard 0 keeps the base seed: a 1-shard engine is bit-identical to
	// a plain core.Router).
	Router core.Config
	// Shards is the number of worker shards. Zero means "pick for me":
	// runtime.GOMAXPROCS(0), one shard per schedulable core. Negative is
	// rejected — it is always a caller bug, not a preference.
	Shards int
	// RingSize is the per-shard ring capacity in packets. It must be a
	// power of two (the ring maps cursors to slots with a mask); zero
	// defaults to 1024.
	RingSize int //floc:unit packets
	// Batch bounds how many packets a worker admits per ring drain; zero
	// defaults to 64.
	Batch int //floc:unit packets
	// BlockOnFull makes Enqueue yield until ring space frees instead of
	// dropping. Use for offline replay, where input has no real arrival
	// clock and losing packets to producer speed would be nonsense.
	BlockOnFull bool
	// Telemetry, when non-nil, receives the shard routers' metrics and
	// the engine's backpressure counters. Counters aggregate correctly
	// across shards (shared atomic handles); gauges are last-writer-wins
	// per control run and are only indicative under sharding.
	Telemetry *telemetry.Registry
	// TraceCapacity, when > 0, attaches a bounded event-trace ring of
	// that size to each shard router. Wraparound losses from every shard
	// count on the shared Telemetry counter
	// floc_trace_dropped_events_total. Requires Telemetry.
	TraceCapacity int
	// Sink, when non-nil, receives every shard router's emitted events
	// with Event.Shard stamped to the emitting shard — the seam the
	// forensic ledger sealer plugs into. The sink is shared by all shard
	// workers concurrently and must be safe for concurrent use. Requires
	// Telemetry.
	Sink telemetry.EventSink
	// Egress, when non-nil, receives every packet the shard transmitters
	// finish sending — the seam a multi-router deployment uses to forward
	// admitted traffic to the next flocd hop. Shared by all shard workers
	// concurrently; must be safe for concurrent use.
	Egress PacketSink
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	return c
}

// validate checks a resolved configuration.
func (c Config) validate() error {
	switch {
	case c.Shards <= 0:
		return fmt.Errorf("dataplane: shard count %d <= 0", c.Shards)
	case c.RingSize < 2 || c.RingSize&(c.RingSize-1) != 0:
		return fmt.Errorf("dataplane: ring size %d not a power of two >= 2", c.RingSize)
	case c.Batch <= 0:
		return fmt.Errorf("dataplane: batch %d <= 0", c.Batch)
	case c.Router.Capacity/c.Shards < 4:
		return fmt.Errorf("dataplane: capacity %d over %d shards leaves < 4 packets per shard",
			c.Router.Capacity, c.Shards)
	case c.TraceCapacity > 0 && c.Telemetry == nil:
		return fmt.Errorf("dataplane: TraceCapacity requires Telemetry")
	case c.Sink != nil && c.Telemetry == nil:
		return fmt.Errorf("dataplane: Sink requires Telemetry")
	}
	return nil
}

// Stats are the engine's own lifetime counters, distinct from router
// admission counters: they describe the ring boundary, not the policy.
type Stats struct {
	// Accepted counts packets that entered a shard ring.
	Accepted int64 //floc:unit packets
	// RingDrops counts packets dropped because a ring was full.
	RingDrops int64 //floc:unit packets
	// Processed counts packets the workers ran through admission.
	Processed int64 //floc:unit packets
	// LimitDrops counts packets dropped by cluster-installed per-path
	// limits before they reached router admission.
	LimitDrops int64 //floc:unit packets
}

// seedStride separates shard RNG streams (64-bit golden ratio, odd).
const seedStride = 0x9e3779b97f4a7c15

// admissionLatencyBounds are the fixed buckets for the per-shard batch
// admission latency histogram: 1µs to ~16ms in powers of four, wide
// enough to show a stall without per-observation allocation.
var admissionLatencyBounds = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, //floc:unit seconds
}

// shardSink stamps the emitting shard's index onto every event bound
// for the engine-wide sink, so ledger replay can reconstruct per-shard
// streams (mode transitions and control-run counts are per-shard state).
type shardSink struct {
	shard uint32
	dst   telemetry.EventSink
}

// floc:hotpath
func (s *shardSink) Emit(e telemetry.Event) {
	e.Shard = s.shard
	s.dst.Emit(e)
}

// Engine is the sharded dataplane. Enqueue is safe for concurrent use by
// any number of producers; Drain, Advance, Snapshot and Close serialize
// through an internal mutex and must not race with further Enqueues'
// expectations (see each method).
type Engine struct {
	cfg    Config
	shards []*shard

	ctl    sync.Mutex // serializes control-plane ops (Drain/Advance/Snapshot/Close)
	closed atomic.Bool
	wg     sync.WaitGroup
}

// shard is one worker: ring in, private router, virtual transmitter out.
type shard struct {
	ring   *ring
	router *core.Router

	wake     chan struct{} // 1-buffered doorbell
	sleeping atomic.Bool
	cmds     chan command
	stop     chan struct{}

	accepted  atomic.Int64
	ringDrops atomic.Int64
	processed atomic.Int64
	dropCtr   *telemetry.Counter // nil when telemetry is off

	// Cluster limit surface: installed-limit count and limiter drops,
	// published by the worker for lock-free external reads.
	limitCount   atomic.Int64
	limitDrops   atomic.Int64
	limitDropCtr *telemetry.Counter // nil when telemetry is off
	limitGauge   *telemetry.Gauge   // nil when telemetry is off

	// Health surface (nil when telemetry is off): batch admission wall-
	// clock latency and ring occupancy sampled after each drained batch.
	latHist  *telemetry.Histogram
	occGauge *telemetry.Gauge

	// Worker-owned state below; never touched by producers.
	buf       []item
	bi        []core.BatchItem
	free      float64              //floc:unit seconds
	rateBytes float64              //floc:unit bytes/s
	egress    PacketSink           // nil = no forwarding
	bank      *defense.LimiterBank // nil until the first limit install
	bankDrops int                  // bank.Drops() last published to counters
}

// cmdKind discriminates shard control commands; every kind a controller
// can send must be handled, or the sender blocks forever on done.
//
//floc:enum
type cmdKind uint8

const (
	cmdSync cmdKind = iota + 1
	cmdAdvance
	cmdSnapshot
	cmdIntern
	cmdLimit
	cmdSweep
)

type command struct {
	kind   cmdKind
	now    float64 //floc:unit seconds
	path   pathid.PathID
	snap   chan core.Snapshot
	handle chan uint32
	done   chan struct{}

	// cmdLimit payload.
	rate    units.BitsPerSec
	expires float64 //floc:unit seconds (0 = no expiry)
	peer    uint32  // advertising router ID, for the trace event
	ok      chan bool
}

// New builds an engine and starts its workers.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if invariant.Hot {
		invariant.Positive("dataplane.shards", float64(cfg.Shards))
		invariant.Positive("dataplane.ring-size", float64(cfg.RingSize))
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	n := cfg.Shards
	baseCap, remCap := cfg.Router.Capacity/n, cfg.Router.Capacity%n
	for i := 0; i < n; i++ {
		rc := cfg.Router
		rc.LinkRateBits = cfg.Router.LinkRateBits / float64(n)
		rc.Capacity = baseCap
		if i < remCap {
			rc.Capacity++
		}
		if i > 0 {
			rc.Seed = cfg.Router.Seed + uint64(i)*seedStride
		}
		router, err := core.NewRouter(rc)
		if err != nil {
			return nil, fmt.Errorf("dataplane: shard %d: %w", i, err)
		}
		sh := &shard{
			ring:   newRing(cfg.RingSize),
			router: router,
			wake:   make(chan struct{}, 1),
			cmds:   make(chan command),
			stop:   make(chan struct{}),
			buf:    make([]item, cfg.Batch),
			bi:     make([]core.BatchItem, 0, cfg.Batch),
			//floclint:allow units bits-to-bytes: per-shard transmitter rate, 8 bits per byte
			rateBytes: rc.LinkRateBits / 8,
		}
		if cfg.Telemetry != nil {
			tel := &telemetry.Telemetry{Registry: cfg.Telemetry}
			if cfg.TraceCapacity > 0 {
				tel.Trace = telemetry.NewTrace(cfg.TraceCapacity)
				// All shard traces share the one wraparound counter.
				tel.Trace.SetDropCounter(cfg.Telemetry.Counter(telemetry.TraceDroppedMetric,
					"events lost to trace ring wraparound", "events"))
			}
			if cfg.Sink != nil {
				tel.Sink = &shardSink{shard: uint32(i), dst: cfg.Sink}
			}
			router.SetTelemetry(tel)
			sh.dropCtr = cfg.Telemetry.Counter(
				fmt.Sprintf(`floc_dataplane_ring_full_drops_total{shard="%d"}`, i),
				"packets dropped at a full shard ring", "packets")
			sh.occGauge = cfg.Telemetry.Gauge(
				fmt.Sprintf(`floc_dataplane_ring_occupancy{shard="%d"}`, i),
				"shard ring occupancy after the last drained batch", "packets")
			sh.latHist = cfg.Telemetry.Histogram(
				fmt.Sprintf(`floc_dataplane_admission_batch_seconds{shard="%d"}`, i),
				"wall-clock time to admit one drained batch", "seconds",
				admissionLatencyBounds)
			sh.limitDropCtr = cfg.Telemetry.Counter(
				fmt.Sprintf(`floc_cluster_limit_dropped_total{shard="%d"}`, i),
				"packets dropped by cluster-installed path limits", "packets")
			sh.limitGauge = cfg.Telemetry.Gauge(
				fmt.Sprintf(`floc_cluster_installed_limits{shard="%d"}`, i),
				"active cluster-installed path limits", "")
		}
		sh.egress = cfg.Egress
		e.shards[i] = sh
	}
	for _, sh := range e.shards {
		e.wg.Add(1)
		go func(sh *shard) {
			defer e.wg.Done()
			sh.run()
		}(sh)
	}
	return e, nil
}

// Shards returns the resolved shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardOf returns the shard index a path identifier maps to. Exported so
// tests and traffic generators can construct shard-targeted workloads.
func (e *Engine) ShardOf(path pathid.PathID) int {
	return pathShard(path, len(e.shards))
}

// pathShard hashes a path identifier (FNV-1a over the big-endian domain
// sequence) onto [0, n). FNV is enough here: path identifiers are
// assigned by topology, not chosen by the attacker per-packet — a flow
// cannot re-shard itself by varying header bytes the router would reject.
// That argument only holds for validated paths, so the parameter is a
// declared taint sink: raw wire paths must pass a sanitizer first.
// floc:hotpath
// floc:sink path shard-hash
func pathShard(path pathid.PathID, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, as := range path {
		v := uint32(as)
		for shift := 24; shift >= 0; shift -= 8 {
			h ^= uint64(uint8(v >> shift))
			h *= prime64
		}
	}
	return int(h % uint64(n))
}

// Enqueue hands a packet to its shard. It returns true when the packet
// entered the ring; false means the ring was full and the packet was
// dropped (counted in Stats and telemetry) or the engine is closed. With
// BlockOnFull the full case yields and retries instead. The packet must
// not be mutated after a successful Enqueue.
// floc:unit now seconds
// floc:hotpath
func (e *Engine) Enqueue(pkt *netsim.Packet, now float64) bool {
	if e.closed.Load() {
		return false
	}
	sh := e.shards[pathShard(pkt.Path, len(e.shards))]
	it := item{pkt: pkt, at: now}
	for !sh.ring.tryEnqueue(it) {
		if !e.cfg.BlockOnFull {
			sh.ringDrops.Add(1)
			if sh.dropCtr != nil {
				sh.dropCtr.Inc()
			}
			return false
		}
		sh.ringWake()
		runtime.Gosched()
		if e.closed.Load() {
			return false
		}
	}
	sh.accepted.Add(1)
	sh.ringWake()
	return true
}

// ringWake rings the shard's doorbell if the worker is parked. The
// ordering argument: a producer publishes the item (sequential
// consistency of the slot sequence store) before loading sleeping, and
// the worker stores sleeping=true before its final emptiness check — so
// either the worker sees the item, or the producer sees sleeping and the
// buffered doorbell survives until the worker selects on it.
// floc:hotpath
func (sh *shard) ringWake() {
	if sh.sleeping.Load() {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// run is the worker loop: drain batches while there is work, handle
// control commands at quiescent points, park when idle.
func (sh *shard) run() {
	for {
		if n := sh.ring.dequeueBatch(sh.buf); n > 0 {
			sh.process(sh.buf[:n])
			select {
			case c := <-sh.cmds:
				sh.handle(c)
			default:
			}
			continue
		}
		select {
		case c := <-sh.cmds:
			sh.handle(c)
			continue
		default:
		}
		sh.sleeping.Store(true)
		if !sh.ring.empty() {
			sh.sleeping.Store(false)
			continue
		}
		select {
		case <-sh.wake:
			sh.sleeping.Store(false)
		case c := <-sh.cmds:
			sh.sleeping.Store(false)
			sh.handle(c)
		case <-sh.stop:
			sh.sleeping.Store(false)
			sh.drainAll()
			return
		}
	}
}

// process admits one batch. The router's virtual transmitter is serviced
// up to the batch head's arrival time first, so queue occupancy tracks
// arrival time the same way the simulator's event loop interleaves
// enqueues and dequeues.
// floc:hotpath
func (sh *shard) process(items []item) {
	var start time.Time
	if sh.latHist != nil {
		start = time.Now() //floclint:allow sim-time wall-clock batch latency is exactly what the health histogram measures
	}
	sh.serve(items[0].at)
	sh.bi = sh.bi[:0]
	if sh.bank == nil {
		for i := range items {
			sh.bi = append(sh.bi, core.BatchItem{Pkt: items[i].pkt, At: items[i].at})
		}
	} else {
		// Cluster-installed limits gate admission: a path over its
		// propagated budget is dropped here, before it spends any router
		// buffer — the upstream half of the pushback contract.
		for i := range items {
			if !sh.bank.Admit(items[i].pkt.PathHandle, items[i].pkt, items[i].at) {
				continue
			}
			sh.bi = append(sh.bi, core.BatchItem{Pkt: items[i].pkt, At: items[i].at})
		}
		if d := sh.bank.Drops(); d != sh.bankDrops {
			delta := int64(d - sh.bankDrops)
			sh.bankDrops = d
			sh.limitDrops.Add(delta)
			if sh.limitDropCtr != nil {
				sh.limitDropCtr.Add(delta)
			}
		}
	}
	if len(sh.bi) > 0 {
		sh.router.EnqueueBatch(sh.bi)
	}
	sh.processed.Add(int64(len(items)))
	if sh.latHist != nil {
		sh.latHist.Observe(time.Since(start).Seconds()) //floclint:allow sim-time wall-clock batch latency is exactly what the health histogram measures
		sh.occGauge.Set(float64(sh.ring.occupancy()))
	}
}

// serve drains the router's output queue through the shard's share of
// the link until the virtual transmitter catches up with now.
// floc:unit now seconds
// floc:hotpath
func (sh *shard) serve(now float64) {
	for sh.free <= now {
		pkt := sh.router.Dequeue(sh.free)
		if pkt == nil {
			sh.free = now
			return
		}
		sh.free += float64(pkt.Size) / sh.rateBytes
		if sh.egress != nil {
			sh.egress.Emit(pkt, sh.free)
		}
	}
}

// drainAll empties the ring completely (used before commands and at
// shutdown so barriers see every packet enqueued before them).
func (sh *shard) drainAll() {
	for {
		n := sh.ring.dequeueBatch(sh.buf)
		if n == 0 {
			return
		}
		sh.process(sh.buf[:n])
	}
}

// handle executes a control command at a quiescent point. Every command
// is a barrier: the ring is fully drained first.
func (sh *shard) handle(c command) {
	sh.drainAll()
	switch c.kind {
	case cmdSync:
		close(c.done)
	case cmdAdvance:
		sh.serve(c.now)
		close(c.done)
	case cmdSnapshot:
		c.snap <- sh.router.Snapshot()
	case cmdIntern:
		c.handle <- sh.router.InternPath(c.path)
	case cmdLimit:
		c.ok <- sh.installLimit(c)
	case cmdSweep:
		if sh.bank != nil {
			sh.bank.Sweep(c.now)
			sh.publishLimitCount()
		}
		close(c.done)
	}
}

// installLimit executes a cmdLimit barrier in worker context: intern the
// path on this shard's router (so the handle matches the one producers
// stamp into packets), install or release the limit, and emit the
// FeedbackApplied trace event from the worker — the shard trace is
// single-writer, so the event must not be added from the caller's
// goroutine.
func (sh *shard) installLimit(c command) bool {
	handle := sh.router.InternPath(c.path)
	if handle == 0 && len(c.path) > 0 {
		return false // handle space exhausted
	}
	if sh.bank == nil {
		if c.rate <= 0 {
			return true // releasing a limit that was never installed
		}
		sh.bank = defense.NewLimiterBank()
	}
	sh.bank.Install(handle, c.rate, c.expires)
	sh.bankDrops = sh.bank.Drops()
	sh.publishLimitCount()
	if telemetry.Compiled {
		if tel := sh.router.Telemetry(); tel != nil {
			tel.Emit(telemetry.Event{
				Time:  c.now,
				Type:  telemetry.EventFeedbackApplied,
				Path:  c.path.Key(),
				Value: float64(c.rate),
				Peer:  c.peer,
			})
		}
	}
	return true
}

// publishLimitCount refreshes the shard's installed-limit surface.
func (sh *shard) publishLimitCount() {
	n := int64(sh.bank.Active())
	sh.limitCount.Store(n)
	if sh.limitGauge != nil {
		sh.limitGauge.Set(float64(n))
	}
}

// InternPath binds path to a dense handle on the shard router that owns
// it and returns the handle (0 when the engine is closed or the router's
// handle space is exhausted). Producers stamp it into Packet.PathHandle;
// since Enqueue routes a path's packets to that same shard, the handle is
// always presented to the router that minted it. Cold: call once per
// path, not per packet.
func (e *Engine) InternPath(path pathid.PathID) uint32 {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Load() {
		return 0
	}
	sh := e.shards[pathShard(path, len(e.shards))]
	reply := make(chan uint32, 1)
	sh.cmds <- command{kind: cmdIntern, path: path, handle: reply}
	return <-reply
}

// InstallLimit installs (rate > 0) or releases (rate <= 0) a per-path
// rate limit on the shard that owns path, ahead of router admission —
// the application point for a cluster peer's congestion feedback.
// expiresAt is the arrival-clock deadline after which the limit lapses
// unless refreshed (0 = never); peer tags the FeedbackApplied trace
// event with the advertising router's ID; now stamps that event. The
// command is a barrier on the owning shard: packets enqueued
// happens-before the call are admitted under the old limit. Returns
// false when the engine is closed, the path is empty, or the shard
// router's handle space is exhausted. Cold: called per feedback record,
// never per packet.
// floc:unit expiresAt seconds
// floc:unit now seconds
func (e *Engine) InstallLimit(path pathid.PathID, rate units.BitsPerSec, expiresAt float64, peer uint32, now float64) bool {
	if len(path) == 0 {
		return false
	}
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Load() {
		return false
	}
	sh := e.shards[pathShard(path, len(e.shards))]
	reply := make(chan bool, 1)
	sh.cmds <- command{kind: cmdLimit, path: path, rate: rate, expires: expiresAt, peer: peer, now: now, ok: reply}
	return <-reply
}

// SweepLimits reaps expired cluster limits on every shard so the
// installed-limit gauge tracks lease expiry even on idle paths. Call
// periodically from the daemon's tick loop.
// floc:unit now seconds
func (e *Engine) SweepLimits(now float64) {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Load() {
		return
	}
	dones := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		dones[i] = make(chan struct{})
		sh.cmds <- command{kind: cmdSweep, now: now, done: dones[i]}
	}
	for _, d := range dones {
		<-d
	}
}

// InstalledLimits returns the engine-wide count of active cluster
// limits, as last published by the shard workers. Lock-free; safe to
// call from health handlers.
func (e *Engine) InstalledLimits() int {
	n := 0
	for _, sh := range e.shards {
		n += int(sh.limitCount.Load())
	}
	return n
}

// Drain blocks until every packet enqueued happens-before the call has
// been processed by its shard. Concurrent Enqueues are allowed but not
// waited for.
func (e *Engine) Drain() {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Load() {
		return
	}
	dones := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		dones[i] = make(chan struct{})
		sh.cmds <- command{kind: cmdSync, done: dones[i]}
	}
	for _, d := range dones {
		<-d
	}
}

// Advance drains all rings and services every shard's output queue up to
// virtual time now — the flush at end of input, when no further arrivals
// will drive the transmitters.
// floc:unit now seconds
func (e *Engine) Advance(now float64) {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Load() {
		return
	}
	dones := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		dones[i] = make(chan struct{})
		sh.cmds <- command{kind: cmdAdvance, now: now, done: dones[i]}
	}
	for _, d := range dones {
		<-d
	}
}

// Snapshot drains all rings and returns the deterministic merge of the
// per-shard router snapshots: counters and buffer state sum, per-path
// entries concatenate sorted by key (paths are disjoint across shards by
// construction), and the mode is the most severe of any shard's.
func (e *Engine) Snapshot() core.Snapshot {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	parts := make([]core.Snapshot, len(e.shards))
	if e.closed.Load() {
		// Workers are gone; routers are safe to read directly.
		for i, sh := range e.shards {
			parts[i] = sh.router.Snapshot()
		}
		return mergeSnapshots(parts)
	}
	replies := make([]chan core.Snapshot, len(e.shards))
	for i, sh := range e.shards {
		replies[i] = make(chan core.Snapshot, 1)
		sh.cmds <- command{kind: cmdSnapshot, snap: replies[i]}
	}
	for i := range replies {
		parts[i] = <-replies[i]
	}
	return mergeSnapshots(parts)
}

// mergeSnapshots folds per-shard snapshots into one aggregate view.
func mergeSnapshots(parts []core.Snapshot) core.Snapshot {
	out := core.Snapshot{
		Drops:      make(map[string]int64),
		Aggregates: make(map[string][]string),
	}
	for _, p := range parts {
		if p.Mode > out.Mode {
			out.Mode = p.Mode
		}
		out.QueueLen += p.QueueLen
		out.QMin += p.QMin
		out.QMax += p.QMax
		out.GuaranteedPaths += p.GuaranteedPaths
		out.Paths = append(out.Paths, p.Paths...)
		for key, members := range p.Aggregates {
			out.Aggregates[key] = append(out.Aggregates[key], members...)
		}
		out.Arrived += p.Arrived
		out.Admitted += p.Admitted
		for reason, n := range p.Drops {
			out.Drops[reason] += n
		}
		out.FilterLive += p.FilterLive
		out.FilterMemoryBytes += p.FilterMemoryBytes
		out.ControlRuns += p.ControlRuns
	}
	sort.Slice(out.Paths, func(i, j int) bool { return out.Paths[i].Key < out.Paths[j].Key })
	for key := range out.Aggregates {
		sort.Strings(out.Aggregates[key])
	}
	return out
}

// Stats returns the engine's ring-boundary counters.
func (e *Engine) Stats() Stats {
	var s Stats
	for _, sh := range e.shards {
		s.Accepted += sh.accepted.Load()
		s.RingDrops += sh.ringDrops.Load()
		s.Processed += sh.processed.Load()
		s.LimitDrops += sh.limitDrops.Load()
	}
	return s
}

// Close stops the workers after draining every ring. Enqueue returns
// false once Close has begun. Snapshot remains valid after Close.
func (e *Engine) Close() {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if e.closed.Swap(true) {
		return
	}
	for _, sh := range e.shards {
		close(sh.stop)
	}
	e.wg.Wait()
}
