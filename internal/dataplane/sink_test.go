package dataplane

import (
	"strings"
	"sync"
	"testing"

	"floc/internal/telemetry"
)

// lockedSink is a concurrency-safe event collector (the shard workers
// all emit into the engine sink concurrently).
type lockedSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (s *lockedSink) Emit(e telemetry.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *lockedSink) snapshot() []telemetry.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]telemetry.Event(nil), s.events...)
}

func TestSinkReceivesShardStampedEvents(t *testing.T) {
	sink := &lockedSink{}
	reg := telemetry.NewRegistry()
	sc := genScenario(12, 0.004, 2.0)
	e, err := New(Config{Router: testRouterConfig(), Shards: 2, BlockOnFull: true,
		Telemetry: reg, TraceCapacity: 1 << 16, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc {
		pkt := sc[i].pkt
		e.Enqueue(&pkt, sc[i].at)
	}
	e.Advance(3.0)
	snap := e.Snapshot()
	e.Close()

	events := sink.snapshot()
	if len(events) == 0 {
		t.Fatal("sink received no events")
	}
	var admitted, dropped int64
	shards := map[uint32]bool{}
	for _, ev := range events {
		shards[ev.Shard] = true
		switch ev.Type {
		case telemetry.EventPacketAdmitted:
			admitted++
		case telemetry.EventPacketDropped:
			dropped++
		}
	}
	for sh := range shards {
		if sh >= 2 {
			t.Fatalf("event stamped with shard %d on a 2-shard engine", sh)
		}
	}
	if admitted != snap.Admitted {
		t.Fatalf("sink saw %d admissions, snapshot says %d", admitted, snap.Admitted)
	}
	if got := snap.Arrived - snap.Admitted; dropped != got {
		t.Fatalf("sink saw %d drops, snapshot says %d", dropped, got)
	}
}

func TestSinkAndTraceRequireTelemetry(t *testing.T) {
	if _, err := New(Config{Router: testRouterConfig(), Shards: 1, Sink: &lockedSink{}}); err == nil {
		t.Fatal("Sink without Telemetry must be rejected")
	}
	if _, err := New(Config{Router: testRouterConfig(), Shards: 1, TraceCapacity: 64}); err == nil {
		t.Fatal("TraceCapacity without Telemetry must be rejected")
	}
}

func TestHealthSurfaceExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := genScenario(8, 0.004, 1.0)
	e, err := New(Config{Router: testRouterConfig(), Shards: 2, BlockOnFull: true,
		Telemetry: reg, TraceCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc {
		pkt := sc[i].pkt
		e.Enqueue(&pkt, sc[i].at)
	}
	e.Advance(2.0)
	e.Close()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		`floc_dataplane_ring_occupancy{shard="0"}`,
		`floc_dataplane_ring_occupancy{shard="1"}`,
		`floc_dataplane_admission_batch_seconds{shard="0"}`,
		telemetry.TraceDroppedMetric,
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	h := reg.Histogram(`floc_dataplane_admission_batch_seconds{shard="0"}`,
		"wall-clock time to admit one drained batch", "seconds", admissionLatencyBounds)
	if h.Count() == 0 {
		t.Fatal("admission latency histogram never observed a batch")
	}
}
