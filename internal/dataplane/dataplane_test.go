package dataplane

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"floc/internal/core"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/telemetry"
)

// arrival is one scripted packet arrival.
type arrival struct {
	pkt netsim.Packet
	at  float64 //floc:unit seconds
}

// genScenario scripts a deterministic CBR mix: each of nPaths paths sends
// a packet every interval seconds for the given duration. Path p's
// packets come from src p+1; sizes are fixed at 1000 bytes.
func genScenario(nPaths int, interval, duration float64) []arrival {
	var out []arrival
	id := uint64(0)
	for t := 0.0; t < duration; t += interval {
		for p := 0; p < nPaths; p++ {
			path := pathid.New(pathid.ASN(100+p), pathid.ASN(10+p%3), 1)
			id++
			out = append(out, arrival{
				at: t,
				pkt: netsim.Packet{
					ID: id, Src: uint32(p + 1), Dst: 9999, Size: 1000,
					Kind: netsim.KindUDP, Path: path, PathKey: path.Key(),
				},
			})
		}
	}
	return out
}

// runBaseline feeds the scenario through one core.Router with the same
// serve-then-enqueue interleaving a Batch=1 shard uses.
func runBaseline(t *testing.T, cfg core.Config, sc []arrival, end float64) core.Snapshot {
	t.Helper()
	r, err := core.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	//floclint:allow units bits-to-bytes: transmitter rate, 8 bits per byte
	rateBytes := cfg.LinkRateBits / 8
	free := 0.0
	serve := func(now float64) {
		for free <= now {
			pkt := r.Dequeue(free)
			if pkt == nil {
				free = now
				return
			}
			free += float64(pkt.Size) / rateBytes
		}
	}
	for i := range sc {
		pkt := sc[i].pkt
		serve(sc[i].at)
		r.Enqueue(&pkt, sc[i].at)
	}
	serve(end)
	return r.Snapshot()
}

// runEngine feeds the scenario through an engine and returns the merged
// snapshot after a full flush.
func runEngine(t *testing.T, cfg Config, sc []arrival, end float64) (core.Snapshot, Stats) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := range sc {
		pkt := sc[i].pkt
		e.Enqueue(&pkt, sc[i].at)
	}
	e.Advance(end)
	return e.Snapshot(), e.Stats()
}

func testRouterConfig() core.Config {
	cfg := core.DefaultConfig(8e6, 64) // 1000 packets/s aggregate
	cfg.Seed = 42
	return cfg
}

func TestConfigValidation(t *testing.T) {
	base := Config{Router: testRouterConfig()}
	cases := []struct {
		name string
		mod  func(*Config)
		ok   bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"negative-shards", func(c *Config) { c.Shards = -1 }, false},
		{"ring-not-pow2", func(c *Config) { c.Shards = 1; c.RingSize = 100 }, false},
		{"ring-one", func(c *Config) { c.Shards = 1; c.RingSize = 1 }, false},
		{"negative-batch", func(c *Config) { c.Shards = 1; c.Batch = -1 }, false},
		{"capacity-too-thin", func(c *Config) { c.Shards = 32 }, false},
		{"bad-router", func(c *Config) { c.Shards = 1; c.Router.Capacity = 2 }, false},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		e, err := New(cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
		if e != nil {
			if tc.name == "defaults" && e.Shards() != runtime.GOMAXPROCS(0) {
				t.Errorf("defaults: %d shards, want GOMAXPROCS %d", e.Shards(), runtime.GOMAXPROCS(0))
			}
			e.Close()
		}
	}
}

func TestOneShardMatchesSingleRouterExactly(t *testing.T) {
	// Congested scenario: 8 paths x ~250 pkt/s against a 1000 pkt/s link.
	rc := testRouterConfig()
	sc := genScenario(8, 0.004, 3.0)
	end := 3.5
	want := runBaseline(t, rc, sc, end)
	got, stats := runEngine(t, Config{
		Router: rc, Shards: 1, Batch: 1, BlockOnFull: true,
	}, sc, end)
	if int(stats.RingDrops) != 0 {
		t.Fatalf("ring drops %d under BlockOnFull", stats.RingDrops)
	}
	if stats.Processed != int64(len(sc)) {
		t.Fatalf("processed %d of %d", stats.Processed, len(sc))
	}
	if want.Drops["no-token"]+want.Drops["preferential"]+want.Drops["random-threshold"] == 0 {
		t.Fatal("scenario did not congest the baseline; test has no teeth")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("1-shard engine diverged from single router:\n got %+v\nwant %+v", got, want)
	}
}

// pathTally extracts per-path admit/drop counters.
func pathTally(s core.Snapshot) map[string][2]int64 {
	out := make(map[string][2]int64, len(s.Paths))
	for _, p := range s.Paths {
		out[p.Key] = [2]int64{p.AdmittedPackets, p.DroppedPackets}
	}
	return out
}

func TestShardCountInvariantTallies(t *testing.T) {
	// Shard-invariant scenario: 12 paths x 12.5 pkt/s against a 1000
	// pkt/s link, with a buffer large enough that even a 1/8 slice of it
	// keeps its Q_min above any same-tick arrival burst. Every shard then
	// stays uncongested and admits everything, so per-path tallies must
	// agree between the single-router baseline and any shard count. (A
	// congested scenario is deliberately not shard-invariant: each shard
	// classifies congestion against its own slice of the buffer — that
	// semantic difference is covered by the exact 1-shard test above.)
	rc := core.DefaultConfig(8e6, 512)
	rc.Seed = 42
	sc := genScenario(12, 0.08, 4.0)
	end := 5.0
	want := pathTally(runBaseline(t, rc, sc, end))

	var first core.Snapshot
	for _, shards := range []int{1, 8} {
		snap, stats := runEngine(t, Config{
			Router: rc, Shards: shards, BlockOnFull: true,
		}, sc, end)
		if got := pathTally(snap); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: per-path tallies diverge:\n got %v\nwant %v", shards, got, want)
		}
		if snap.Arrived != int64(len(sc)) || snap.Admitted != int64(len(sc)) {
			t.Fatalf("%d shards: arrived=%d admitted=%d, want both %d",
				shards, snap.Arrived, snap.Admitted, len(sc))
		}
		if stats.Processed != int64(len(sc)) || stats.RingDrops != 0 {
			t.Fatalf("%d shards: stats %+v", shards, stats)
		}
		if shards == 8 {
			first = snap
		}
	}

	// Determinism: the same 8-shard run replays to an identical merged
	// snapshot even though worker interleaving differs.
	again, _ := runEngine(t, Config{Router: rc, Shards: 8, BlockOnFull: true}, sc, end)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("8-shard merged snapshot not deterministic:\n run1 %+v\n run2 %+v", first, again)
	}
}

func TestShardingSpreadsPaths(t *testing.T) {
	e, err := New(Config{Router: testRouterConfig(), Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	hit := make([]int, 8)
	for p := 0; p < 256; p++ {
		path := pathid.New(pathid.ASN(p), 1)
		s := e.ShardOf(path)
		if s != pathShard(path, 8) {
			t.Fatal("ShardOf disagrees with pathShard")
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d never hit by 256 distinct paths: %v", s, hit)
		}
	}
	// Same path always maps to the same shard.
	p := pathid.New(7, 3, 1)
	if e.ShardOf(p) != e.ShardOf(pathid.New(7, 3, 1)) {
		t.Fatal("shard mapping not stable")
	}
}

func TestBackpressureAccounting(t *testing.T) {
	// Non-blocking mode with a minimal ring: every offered packet must be
	// accounted as either accepted or ring-dropped, never lost.
	reg := telemetry.NewRegistry()
	e, err := New(Config{Router: testRouterConfig(), Shards: 1, RingSize: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 20000
	accepted := 0
	for i := 0; i < offered; i++ {
		path := pathid.New(pathid.ASN(i%4), 1)
		pkt := &netsim.Packet{ID: uint64(i), Src: 1, Dst: 2, Size: 1000,
			Kind: netsim.KindUDP, Path: path, PathKey: path.Key()}
		if e.Enqueue(pkt, float64(i)*1e-5) {
			accepted++
		}
	}
	e.Drain()
	st := e.Stats()
	if st.Accepted != int64(accepted) {
		t.Fatalf("stats accepted %d, Enqueue said %d", st.Accepted, accepted)
	}
	if st.Accepted+st.RingDrops != offered {
		t.Fatalf("accounting leak: accepted %d + drops %d != offered %d",
			st.Accepted, st.RingDrops, offered)
	}
	if st.Processed != st.Accepted {
		t.Fatalf("processed %d != accepted %d after Drain", st.Processed, st.Accepted)
	}
	if got := reg.CounterValue(`floc_dataplane_ring_full_drops_total{shard="0"}`); got != st.RingDrops {
		t.Fatalf("telemetry ring-drop counter %d != stats %d", got, st.RingDrops)
	}
	e.Close()
	if e.Enqueue(&netsim.Packet{Size: 1, Kind: netsim.KindUDP}, 0) {
		t.Fatal("Enqueue accepted a packet after Close")
	}
}

func TestAdvanceFlushesQueues(t *testing.T) {
	rc := testRouterConfig()
	sc := genScenario(4, 0.01, 1.0)
	e, err := New(Config{Router: rc, Shards: 4, BlockOnFull: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := range sc {
		pkt := sc[i].pkt
		e.Enqueue(&pkt, sc[i].at)
	}
	e.Drain()
	e.Advance(1000)
	if snap := e.Snapshot(); snap.QueueLen != 0 {
		t.Fatalf("queue len %d after Advance far past end of input", snap.QueueLen)
	}
}

func TestTelemetryMergesAcrossShards(t *testing.T) {
	reg := telemetry.NewRegistry()
	rc := testRouterConfig()
	sc := genScenario(12, 0.04, 2.0)
	e, err := New(Config{Router: rc, Shards: 4, BlockOnFull: true, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc {
		pkt := sc[i].pkt
		e.Enqueue(&pkt, sc[i].at)
	}
	e.Advance(3.0)
	snap := e.Snapshot()
	e.Close()
	if got := reg.CounterValue("floc_router_arrived_packets_total"); got != snap.Arrived {
		t.Fatalf("registry arrived %d != merged snapshot %d", got, snap.Arrived)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "floc_router_arrived_packets_total") {
		t.Fatal("exposition text missing router counters")
	}
}
