package dataplane

import (
	"sync"
	"testing"

	"floc/internal/netsim"
)

func TestRingFIFOAndCapacity(t *testing.T) {
	r := newRing(4)
	pkts := make([]netsim.Packet, 5)
	for i := 0; i < 4; i++ {
		if !r.tryEnqueue(item{pkt: &pkts[i], at: float64(i)}) {
			t.Fatalf("enqueue %d failed on non-full ring", i)
		}
	}
	if r.tryEnqueue(item{pkt: &pkts[4]}) {
		t.Fatal("enqueue succeeded on a full ring")
	}
	buf := make([]item, 3)
	if n := r.dequeueBatch(buf); n != 3 {
		t.Fatalf("dequeued %d, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if buf[i].pkt != &pkts[i] || buf[i].at != float64(i) {
			t.Fatalf("slot %d out of order: %+v", i, buf[i])
		}
	}
	// Freed slots are reusable (wraparound).
	for i := 0; i < 3; i++ {
		if !r.tryEnqueue(item{pkt: &pkts[i]}) {
			t.Fatalf("re-enqueue %d failed after frees", i)
		}
	}
	if n := r.dequeueBatch(make([]item, 8)); n != 4 {
		t.Fatalf("final drain got %d, want 4", n)
	}
	if !r.empty() {
		t.Fatal("ring not empty after full drain")
	}
}

func TestRingConcurrentProducers(t *testing.T) {
	const (
		producers = 4
		perProd   = 10000
	)
	r := newRing(256)
	pkts := make([]netsim.Packet, producers*perProd)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				it := item{pkt: &pkts[p*perProd+i], at: float64(i)}
				for !r.tryEnqueue(it) {
				}
			}
		}(p)
	}
	seen := make(map[*netsim.Packet]bool, len(pkts))
	buf := make([]item, 64)
	for len(seen) < len(pkts) {
		n := r.dequeueBatch(buf)
		for i := 0; i < n; i++ {
			if seen[buf[i].pkt] {
				t.Fatalf("item delivered twice: %p", buf[i].pkt)
			}
			seen[buf[i].pkt] = true
		}
	}
	wg.Wait()
	if !r.empty() {
		t.Fatal("ring not empty after consuming every item")
	}
}
