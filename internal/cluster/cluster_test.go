package cluster

import (
	"sort"
	"testing"

	"floc/internal/core"
	"floc/internal/pathid"
	"floc/internal/rng"
	"floc/internal/telemetry"
	"floc/internal/units"
	"floc/internal/wire"
)

// fakeInstaller records InstallLimit calls.
type fakeInstaller struct {
	limits  map[string]units.BitsPerSec
	expires map[string]float64
	peers   map[string]uint32
	calls   int
}

func newFakeInstaller() *fakeInstaller {
	return &fakeInstaller{
		limits:  map[string]units.BitsPerSec{},
		expires: map[string]float64{},
		peers:   map[string]uint32{},
	}
}

// floc:unit expiresAt seconds
// floc:unit now seconds
func (in *fakeInstaller) InstallLimit(path pathid.PathID, rate units.BitsPerSec, expiresAt float64, peer uint32, now float64) bool {
	in.calls++
	key := path.Key()
	if rate <= 0 {
		delete(in.limits, key)
		delete(in.expires, key)
		return true
	}
	in.limits[key] = rate
	in.expires[key] = expiresAt
	in.peers[key] = peer
	return true
}

// queuedFrame is one in-flight frame in the lossy transport.
type queuedFrame struct {
	buf       []byte
	deliverAt float64
	order     int // tie-break for stable delivery order
}

// lossyTransport drops and delays frames deterministically from a
// seeded source. Frames that survive are delivered by the test loop via
// deliverDue.
type lossyTransport struct {
	src      *rng.Source
	dropProb float64
	now      float64
	queue    []queuedFrame
	sent     int
	dropped  int
	next     int
}

func (t *lossyTransport) Send(peer string, frame []byte) error {
	t.sent++
	if t.src.Float64() < t.dropProb {
		t.dropped++
		return nil // lost in flight: Send itself succeeded
	}
	// Deliver after 0, 1, or 2 extra steps: adjacent frames overtake
	// each other, exercising the reorder path.
	delay := float64(t.src.Intn(3)) * 0.1
	buf := append([]byte(nil), frame...)
	t.queue = append(t.queue, queuedFrame{buf: buf, deliverAt: t.now + delay, order: t.next})
	t.next++
	return nil
}

// deliverDue hands every due frame to dst in (deliverAt, send-order).
func (t *lossyTransport) deliverDue(dst *Node, now float64) {
	var due, rest []queuedFrame
	for _, q := range t.queue {
		if q.deliverAt <= now {
			due = append(due, q)
		} else {
			rest = append(rest, q)
		}
	}
	t.queue = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].deliverAt != due[j].deliverAt {
			return due[i].deliverAt < due[j].deliverAt
		}
		return due[i].order < due[j].order
	})
	for _, q := range due {
		if _, err := dst.HandleFrame(q.buf, now); err != nil {
			panic(err)
		}
	}
}

// floodSnapshot fabricates a snapshot where path key has the given
// cumulative counters and allocation.
func floodSnapshot(key string, admitted, dropped int64, allocPkts float64) core.Snapshot {
	return core.Snapshot{Paths: []core.PathInfo{{
		Key:             key,
		AllocPackets:    allocPkts,
		AdmittedPackets: admitted,
		DroppedPackets:  dropped,
	}}}
}

func downConfig(t *testing.T, tr Transport, reg *telemetry.Registry) Config {
	t.Helper()
	return Config{
		RouterID:   3,
		Peers:      []string{"up"},
		Transport:  tr,
		Installer:  newFakeInstaller(), // the flooded node's own upstream side is unused here
		PacketSize: 1000,
		Telemetry:  reg,
	}
}

// TestConvergenceUnderLossAndReorder is the satellite requirement:
// with half the control frames dropped and survivors reordered, the
// upstream limit still converges within the retry budget, and stale
// sequence numbers are never applied.
func TestConvergenceUnderLossAndReorder(t *testing.T) {
	const key = "100-10-1"
	for seed := uint64(1); seed <= 5; seed++ {
		tr := &lossyTransport{src: rng.New(seed), dropProb: 0.5}
		reg := telemetry.NewRegistry()
		down, err := New(downConfig(t, tr, reg))
		if err != nil {
			t.Fatal(err)
		}
		upInstall := newFakeInstaller()
		up, err := New(Config{
			RouterID:   2,
			Installer:  upInstall,
			PacketSize: 1000,
			Telemetry:  reg,
		})
		if err != nil {
			t.Fatal(err)
		}

		// 500 pkt/s allocation, 40% interval drops: the path is flooded
		// and advertised at 500*1000*8 = 4 Mb/s every publish.
		var admitted, dropped int64
		converged := -1.0
		for step := 0; step < 60; step++ {
			now := 0.1 * float64(step)
			tr.now = now
			if step%5 == 0 { // a control-interval publish every 0.5 s
				admitted += 300
				dropped += 200
				down.Publish(floodSnapshot(key, admitted, dropped, 500), now)
			}
			down.Tick(now)
			tr.deliverDue(up, now)
			if converged < 0 && upInstall.limits[key] == 4_000_000 {
				converged = now
			}
		}
		if converged < 0 {
			t.Fatalf("seed %d: limit never converged (sent %d, dropped %d)", seed, tr.sent, tr.dropped)
		}
		if upInstall.peers[key] != 3 {
			t.Fatalf("seed %d: limit attributed to origin %d, want 3", seed, upInstall.peers[key])
		}
		if tr.dropped == 0 {
			t.Fatalf("seed %d: loss model dropped nothing; test is vacuous", seed)
		}
		// Reordered duplicates must have been rejected, never applied:
		// every install seen by the upstream carries the same rate, so a
		// stale frame could only have re-applied identical state — catch
		// regressions through the stale counter instead.
		stale := reg.CounterValue(`floc_cluster_feedback_stale_dropped_total{peer="3"}`)
		applied := reg.CounterValue(`floc_cluster_feedback_applied_total{peer="3"}`)
		if applied == 0 {
			t.Fatalf("seed %d: applied counter is zero despite convergence", seed)
		}
		if stale+applied > int64(tr.sent-tr.dropped) {
			t.Fatalf("seed %d: stale(%d)+applied(%d) exceeds delivered frames(%d)",
				seed, stale, applied, tr.sent-tr.dropped)
		}
	}
}

// TestStaleSequenceNeverApplied delivers an older frame after a newer
// one and asserts its records are ignored.
func TestStaleSequenceNeverApplied(t *testing.T) {
	upInstall := newFakeInstaller()
	reg := telemetry.NewRegistry()
	up, err := New(Config{RouterID: 2, Installer: upInstall, PacketSize: 1000, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seq uint64, limit uint64) []byte {
		f := wire.ControlFrame{
			Version: wire.ControlVersion1, Kind: wire.ControlFeedback,
			Origin: 9, Seq: seq, TTLMillis: 2000, NumRecords: 1,
		}
		if err := f.Records[0].SetPath(pathid.New(100, 10, 1)); err != nil {
			t.Fatal(err)
		}
		f.Records[0].LimitBits = limit
		buf, err := wire.MarshalControlAppend(nil, &f)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if n, _ := up.HandleFrame(mk(2, 5_000_000), 1.0); n != 1 {
		t.Fatalf("fresh frame applied %d records, want 1", n)
	}
	if n, _ := up.HandleFrame(mk(1, 9_000_000), 1.1); n != 0 {
		t.Fatalf("stale frame applied %d records, want 0", n)
	}
	if got := upInstall.limits["100-10-1"]; got != 5_000_000 {
		t.Fatalf("limit = %v after stale frame, want the fresh frame's 5e6", got)
	}
	if v := reg.CounterValue(`floc_cluster_feedback_stale_dropped_total{peer="9"}`); v != 1 {
		t.Fatalf("stale counter = %d, want 1", v)
	}
	// A duplicate of the fresh frame is equally stale (seq equality).
	if n, _ := up.HandleFrame(mk(2, 7_000_000), 1.2); n != 0 {
		t.Fatal("duplicate frame must not be applied")
	}
}

// TestReleaseOnCalm asserts a calmed path is released with an explicit
// zero-limit record.
func TestReleaseOnCalm(t *testing.T) {
	tr := &lossyTransport{src: rng.New(7), dropProb: 0}
	down, err := New(downConfig(t, tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	upInstall := newFakeInstaller()
	up, err := New(Config{RouterID: 2, Installer: upInstall, PacketSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const key = "42-7-1"
	down.Publish(floodSnapshot(key, 1000, 0, 100), 0) // baseline
	down.Publish(floodSnapshot(key, 1300, 200, 100), 0.5)
	tr.now = 0.5
	tr.deliverDue(up, 0.6)
	if upInstall.limits[key] == 0 {
		t.Fatal("flooded path not limited")
	}
	// Calm interval: no drops at all.
	down.Publish(floodSnapshot(key, 1800, 200, 100), 1.0)
	tr.now = 1.0
	tr.deliverDue(up, 1.1)
	if _, limited := upInstall.limits[key]; limited {
		t.Fatal("calmed path still limited; release record missing or ignored")
	}
}

// TestRelayDecrementsHops drives a frame through a middle node and
// asserts re-origination, hop decrement, and termination at zero.
func TestRelayDecrementsHops(t *testing.T) {
	rootInstall := newFakeInstaller()
	root, err := New(Config{RouterID: 1, Installer: rootInstall, PacketSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rootTr := &lossyTransport{src: rng.New(1), dropProb: 0}
	midInstall := newFakeInstaller()
	mid, err := New(Config{
		RouterID: 2, Peers: []string{"root"}, Transport: rootTr,
		Installer: midInstall, PacketSize: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	f := wire.ControlFrame{
		Version: wire.ControlVersion1, Kind: wire.ControlFeedback,
		Hops: 1, Origin: 3, Seq: 1, TTLMillis: 2000, NumRecords: 1,
	}
	if err := f.Records[0].SetPath(pathid.New(100, 10, 1)); err != nil {
		t.Fatal(err)
	}
	f.Records[0].LimitBits = 2_000_000
	buf, err := wire.MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := mid.HandleFrame(buf, 0.5); n != 1 {
		t.Fatal("mid did not apply the leaf's record")
	}
	if len(rootTr.queue) != 1 {
		t.Fatalf("mid relayed %d frames, want 1", len(rootTr.queue))
	}
	var relayed wire.ControlFrame
	if _, err := wire.DecodeControl(rootTr.queue[0].buf, &relayed); err != nil {
		t.Fatal(err)
	}
	if relayed.Origin != 2 || relayed.Hops != 0 {
		t.Fatalf("relayed frame origin=%d hops=%d, want origin=2 hops=0", relayed.Origin, relayed.Hops)
	}
	if n, _ := root.HandleFrame(rootTr.queue[0].buf, 0.6); n != 1 {
		t.Fatal("root did not apply the relayed record")
	}
	if rootInstall.peers["100-10-1"] != 2 {
		t.Fatalf("root attributes limit to %d, want the relaying mid (2)", rootInstall.peers["100-10-1"])
	}
	// Hops exhausted: the root (were it mid-like) must not relay further.
	// Re-deliver to a node with peers and assert no send happens.
	tr2 := &lossyTransport{src: rng.New(2), dropProb: 0}
	end, err := New(Config{
		RouterID: 5, Peers: []string{"beyond"}, Transport: tr2,
		Installer: newFakeInstaller(), PacketSize: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := end.HandleFrame(rootTr.queue[0].buf, 0.7); err != nil {
		t.Fatal(err)
	}
	if tr2.sent != 0 {
		t.Fatalf("hops=0 frame was relayed %d times; budget not enforced", tr2.sent)
	}
}

// TestTickBackoffAndBudget asserts retransmit pacing: intervals double
// up to the cap and the frame is pruned after the budget.
func TestTickBackoffAndBudget(t *testing.T) {
	tr := &lossyTransport{src: rng.New(3), dropProb: 1.0} // every frame lost
	down, err := New(Config{
		RouterID: 3, Peers: []string{"up"}, Transport: tr,
		Installer: newFakeInstaller(), PacketSize: 1000,
		RetryBase: 0.1, RetryMax: 0.4, RetryBudget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	down.Publish(floodSnapshot("9-1", 1000, 0, 100), 0)
	down.Publish(floodSnapshot("9-1", 1100, 900, 100), 0.5)
	base := tr.sent // the initial send
	if base == 0 {
		t.Fatal("publish sent nothing")
	}
	// Backoff schedule from t=0.5: retries due at 0.6, 0.8, 1.2 (cap 0.4).
	resends := 0
	for _, now := range []float64{0.55, 0.6, 0.7, 0.8, 1.0, 1.2, 5.0, 10.0} {
		resends += down.Tick(now)
	}
	if resends != 3 {
		t.Fatalf("resent %d times, want exactly the budget of 3", resends)
	}
	if h := down.Health(10.0); h.PendingFrames != 0 {
		t.Fatalf("pending frames = %d after budget exhaustion, want 0", h.PendingFrames)
	}
}

// TestHealthSurface asserts the /healthz payload fields.
func TestHealthSurface(t *testing.T) {
	upInstall := newFakeInstaller()
	up, err := New(Config{RouterID: 2, Peers: []string{"a", "b"},
		Transport: &lossyTransport{src: rng.New(4)}, Installer: upInstall, PacketSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f := wire.ControlFrame{
		Version: wire.ControlVersion1, Kind: wire.ControlFeedback,
		Origin: 3, Seq: 11, TTLMillis: 2000, NumRecords: 1,
	}
	if err := f.Records[0].SetPath(pathid.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	f.Records[0].LimitBits = 1
	buf, err := wire.MarshalControlAppend(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.HandleFrame(buf, 2.0); err != nil {
		t.Fatal(err)
	}
	h := up.Health(3.5)
	if h.RouterID != 2 || h.Peers != 2 {
		t.Fatalf("health identity wrong: %+v", h)
	}
	if len(h.Feedback) != 1 || h.Feedback[0].Origin != 3 || h.Feedback[0].LastSeq != 11 {
		t.Fatalf("health feedback wrong: %+v", h.Feedback)
	}
	if got := h.Feedback[0].AgeSeconds; got < 1.499 || got > 1.501 {
		t.Fatalf("feedback age = %v, want 1.5", got)
	}
}
