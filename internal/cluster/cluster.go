// Package cluster is the flocd-to-flocd control plane: it generalizes
// the local pushback of internal/defense into a distributed protocol
// between routers in a deployment tree (paper §VII's multi-router
// story). A flooded downstream daemon computes per-path rate limits
// from its router's admission state and pushes them upstream as
// congestion-feedback control frames (internal/wire's ControlFrame);
// upstream daemons install the limits ahead of admission and relay the
// feedback further up, so the flood is confined hop by hop toward its
// origins — NetFence's in-band congestion-policing feedback realized
// over a UDP control channel.
//
// Reliability model: control frames ride UDP with no acks. Three
// mechanisms make that dependable enough for rate limits:
//
//   - every frame carries the origin's full current limit set, so any
//     one delivered frame reconverges the receiver (frames are state,
//     not deltas);
//   - the sender retransmits recent frames with capped exponential
//     backoff (Tick), and each periodic Publish re-advertises the set;
//   - sequence numbers make application idempotent and strictly
//     monotone per origin — a reordered or duplicated frame older than
//     the last applied one is dropped as stale, never applied.
//
// Installed limits carry a TTL lease: a dead downstream stops
// refreshing and its limits lapse on their own, so no failure can wedge
// an upstream forever.
//
// The package is deliberately clock-free and socket-free: every method
// takes `now` (the daemon's arrival clock) and I/O goes through the
// Transport and Installer seams, so protocol behavior is fully
// deterministic under test.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"floc/internal/core"
	"floc/internal/pathid"
	"floc/internal/telemetry"
	"floc/internal/units"
	"floc/internal/wire"
)

// Transport sends one encoded control frame to a peer's control
// address. Implementations are expected to be lossy (UDP); errors are
// counted, not retried synchronously.
type Transport interface {
	Send(peer string, frame []byte) error
}

// Installer applies one feedback record ahead of admission.
// dataplane.Engine satisfies it.
type Installer interface {
	// floc:unit expiresAt seconds
	// floc:unit now seconds
	InstallLimit(path pathid.PathID, rate units.BitsPerSec, expiresAt float64, peer uint32, now float64) bool
}

// Config parameterizes a cluster node.
type Config struct {
	// RouterID identifies this daemon in frame origins. Must be nonzero.
	RouterID uint32
	// Peers are the upstream control addresses feedback is pushed to.
	// Empty is allowed: a root-most daemon only receives.
	Peers []string
	// Transport carries frames to peers. Required when Peers is set.
	Transport Transport
	// Installer applies received feedback records. Required.
	Installer Installer
	// PacketSize is the reference packet size in bytes, used to convert
	// the router's packets/s allocations into bits/s limits. Must match
	// the router config.
	PacketSize int
	// DropFrac is the per-path interval drop fraction at which the path
	// is advertised as flooded (default 0.25). A path is released when
	// its drop fraction falls below half of DropFrac.
	DropFrac float64 //floc:unit ratio
	// MinLimitBits floors every advertised limit so a starving path is
	// never limited to zero by accident (default 64 kb/s).
	MinLimitBits units.BitsPerSec
	// TTL is the lease lifetime stamped on outgoing frames; installed
	// limits expire TTL seconds after application unless refreshed
	// (default 2.0, max 65.535 — it must fit the frame's uint16 millis).
	TTL float64 //floc:unit seconds
	// Hops is the propagation budget on originated frames: how many
	// further routers a frame may be relayed to (default 2, max
	// wire.MaxControlHops).
	Hops uint8
	// RetryBase and RetryMax bound the retransmit backoff (defaults
	// 0.1 s and 1.6 s); RetryBudget is the retransmit count per frame
	// (default 5).
	RetryBase   float64 //floc:unit seconds
	RetryMax    float64 //floc:unit seconds
	RetryBudget int
	// Telemetry, when non-nil, receives the feedback counters.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.DropFrac == 0 {
		c.DropFrac = 0.25
	}
	if c.MinLimitBits == 0 {
		c.MinLimitBits = 64_000
	}
	if c.TTL == 0 {
		c.TTL = 2.0
	}
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.RetryBase == 0 {
		c.RetryBase = 0.1
	}
	if c.RetryMax == 0 {
		c.RetryMax = 1.6
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 5
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.RouterID == 0:
		return fmt.Errorf("cluster: router ID must be nonzero")
	case c.Installer == nil:
		return fmt.Errorf("cluster: Installer is required")
	case len(c.Peers) > 0 && c.Transport == nil:
		return fmt.Errorf("cluster: Transport is required with peers")
	case c.PacketSize <= 0:
		return fmt.Errorf("cluster: packet size %d <= 0", c.PacketSize)
	case c.DropFrac <= 0 || c.DropFrac > 1:
		return fmt.Errorf("cluster: DropFrac %v out of (0,1]", c.DropFrac)
	case c.TTL <= 0 || c.TTL > 65.535:
		return fmt.Errorf("cluster: TTL %v out of (0, 65.535]", c.TTL)
	case c.Hops > wire.MaxControlHops:
		return fmt.Errorf("cluster: hop budget %d > %d", c.Hops, wire.MaxControlHops)
	case c.RetryBase <= 0 || c.RetryMax < c.RetryBase:
		return fmt.Errorf("cluster: retry backoff [%v, %v] invalid", c.RetryBase, c.RetryMax)
	case c.RetryBudget < 0:
		return fmt.Errorf("cluster: retry budget %d < 0", c.RetryBudget)
	}
	return nil
}

// pathCounts is the per-path cumulative baseline Publish diffs against.
type pathCounts struct {
	admitted int64
	dropped  int64
}

// pendingFrame is one in-flight frame awaiting its retransmits.
type pendingFrame struct {
	buf        []byte
	seq        uint64
	originated bool // built by Publish (superseded by the next Publish)
	retries    int
	interval   float64 //floc:unit seconds
	nextAt     float64 //floc:unit seconds
}

// maxPending bounds the retransmit queue; oldest entries fall off first
// (their state is superseded by everything after them anyway).
const maxPending = 8

// Node is one daemon's cluster endpoint: the downstream half computes
// and publishes feedback (Publish/Tick), the upstream half applies and
// relays received frames (HandleFrame). Safe for concurrent use; every
// method takes the daemon's arrival clock.
type Node struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	prev     map[string]pathCounts
	prevNow  float64 //floc:unit seconds
	havePrev bool
	active   map[string]bool // path key -> currently advertised as limited
	pend     []*pendingFrame
	lastSeq  map[uint32]uint64  // origin -> last applied sequence
	lastRecv map[uint32]float64 // origin -> arrival time of last applied frame
	sendErrs int64

	sentCtr    map[string]*telemetry.Counter
	appliedCtr map[uint32]*telemetry.Counter
	staleCtr   map[uint32]*telemetry.Counter
}

// New builds a cluster node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Node{
		cfg:        cfg,
		prev:       map[string]pathCounts{},
		active:     map[string]bool{},
		lastSeq:    map[uint32]uint64{},
		lastRecv:   map[uint32]float64{},
		sentCtr:    map[string]*telemetry.Counter{},
		appliedCtr: map[uint32]*telemetry.Counter{},
		staleCtr:   map[uint32]*telemetry.Counter{},
	}, nil
}

// RouterID returns the node's router ID.
func (n *Node) RouterID() uint32 { return n.cfg.RouterID }

// Peers returns the configured upstream control addresses.
func (n *Node) Peers() []string { return n.cfg.Peers }

// limitFor computes the limit advertised for a flooded path: the
// router's guaranteed allocation converted to bits/s, falling back to
// the measured admitted rate over the interval when the allocation is
// unknown, floored at MinLimitBits.
// floc:unit interval seconds
func (n *Node) limitFor(p core.PathInfo, admittedDelta int64, interval float64) units.BitsPerSec {
	bitsPerPkt := units.FromPacket(n.cfg.PacketSize)
	//floclint:allow units packets-to-bits: packets/s times bits per reference packet is the allocation in bits/s
	rate := units.BitsPerSec(p.AllocPackets * float64(bitsPerPkt))
	if rate <= 0 && interval > 0 {
		rate = (units.Bits(admittedDelta) * bitsPerPkt).Per(units.Seconds(interval))
	}
	if rate < n.cfg.MinLimitBits {
		rate = n.cfg.MinLimitBits
	}
	return rate
}

// Publish diffs snap against the previous snapshot, derives the current
// per-path limit set, and advertises it to every peer as one or more
// control frames. Paths whose interval drop fraction reaches DropFrac
// (or that the router marks as attack paths) are limited; previously
// limited paths that have calmed are released with an explicit
// zero-limit record. Returns the number of records sent. The first call
// only records the baseline.
// floc:unit now seconds
func (n *Node) Publish(snap core.Snapshot, now float64) int {
	n.mu.Lock()
	defer n.mu.Unlock()

	type rec struct {
		key  string
		path pathid.PathID
		rate units.BitsPerSec
	}
	var recs []rec
	seen := make(map[string]bool, len(snap.Paths))
	interval := now - n.prevNow
	next := make(map[string]pathCounts, len(snap.Paths))
	for _, p := range snap.Paths {
		seen[p.Key] = true
		cur := pathCounts{admitted: p.AdmittedPackets, dropped: p.DroppedPackets}
		next[p.Key] = cur
		if !n.havePrev {
			continue
		}
		base := n.prev[p.Key]
		arrived := (cur.admitted + cur.dropped) - (base.admitted + base.dropped)
		dropped := cur.dropped - base.dropped
		if arrived < 0 || dropped < 0 {
			// Counter reset (path expired and reappeared): new baseline.
			continue
		}
		dropFrac := 0.0
		if arrived > 0 {
			dropFrac = float64(dropped) / float64(arrived)
		}
		flooded := arrived > 0 && (dropFrac >= n.cfg.DropFrac || p.Attack)
		calm := dropFrac < n.cfg.DropFrac/2 && !p.Attack
		switch {
		case flooded || (n.active[p.Key] && !calm):
			path, err := pathid.Parse(p.Key)
			if err != nil || len(path) > wire.MaxPathLen {
				continue
			}
			recs = append(recs, rec{
				key:  p.Key,
				path: path,
				rate: n.limitFor(p, cur.admitted-base.admitted, interval),
			})
			n.active[p.Key] = true
		case n.active[p.Key] && calm:
			path, err := pathid.Parse(p.Key)
			if err == nil && len(path) <= wire.MaxPathLen {
				recs = append(recs, rec{key: p.Key, path: path, rate: 0})
			}
			delete(n.active, p.Key)
		}
	}
	// Paths that vanished from the snapshot while limited: release them
	// explicitly rather than waiting out the upstream TTL.
	var gone []string
	for key := range n.active {
		if !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		if path, err := pathid.Parse(key); err == nil && len(path) <= wire.MaxPathLen {
			recs = append(recs, rec{key: key, path: path, rate: 0})
		}
		delete(n.active, key)
	}
	n.prev = next
	n.prevNow = now
	n.havePrev = true
	if len(recs) == 0 || len(n.cfg.Peers) == 0 {
		return 0
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	// A new Publish carries the full current set: older originated
	// frames are superseded and must not be retransmitted.
	kept := n.pend[:0]
	for _, p := range n.pend {
		if !p.originated {
			kept = append(kept, p)
		}
	}
	n.pend = kept

	sent := 0
	for start := 0; start < len(recs); start += wire.MaxFeedbackRecords {
		chunk := recs[start:min(start+wire.MaxFeedbackRecords, len(recs))]
		f := wire.ControlFrame{
			Version:    wire.ControlVersion1,
			Kind:       wire.ControlFeedback,
			Hops:       n.cfg.Hops,
			Origin:     n.cfg.RouterID,
			Seq:        n.nextSeqLocked(),
			TTLMillis:  uint16(n.cfg.TTL * 1000),
			NumRecords: uint8(len(chunk)),
		}
		for i, r := range chunk {
			if err := f.Records[i].SetPath(r.path); err != nil {
				continue
			}
			f.Records[i].LimitBits = uint64(r.rate)
		}
		buf, err := wire.MarshalControlAppend(nil, &f)
		if err != nil {
			continue
		}
		n.sendLocked(buf)
		n.trackLocked(buf, f.Seq, true, now)
		sent += len(chunk)
	}
	return sent
}

// HandleFrame decodes and applies one received control frame: stale
// sequences are dropped whole, fresh records are installed through the
// Installer with a TTL lease, and — hop budget permitting — the records
// are relayed to this node's own peers under its own origin and
// sequence. Returns the number of records applied; the error is non-nil
// only for undecodable frames (classify it with wire.KindOfError).
// floc:unit now seconds
func (n *Node) HandleFrame(buf []byte, now float64) (int, error) {
	var f wire.ControlFrame
	if _, err := wire.DecodeControl(buf, &f); err != nil {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if f.Origin == n.cfg.RouterID {
		return 0, nil // own frame looped back
	}
	if last, ok := n.lastSeq[f.Origin]; ok && f.Seq <= last {
		n.staleCtrLocked(f.Origin).Inc()
		return 0, nil
	}
	n.lastSeq[f.Origin] = f.Seq
	n.lastRecv[f.Origin] = now
	applied := 0
	for i := 0; i < int(f.NumRecords); i++ {
		r := &f.Records[i]
		if r.PathLen == 0 {
			continue
		}
		if n.cfg.Installer.InstallLimit(r.PathID(), r.Limit(), now+f.TTL(), f.Origin, now) {
			applied++
		}
	}
	if applied > 0 {
		n.appliedCtrLocked(f.Origin).Add(int64(applied))
	}
	// Relay upstream with a decremented hop budget, re-originated so the
	// next hop's staleness tracking sees one monotone stream per sender.
	if f.Hops > 0 && len(n.cfg.Peers) > 0 {
		rf := f
		rf.Hops = f.Hops - 1
		rf.Origin = n.cfg.RouterID
		rf.Seq = n.nextSeqLocked()
		if rbuf, err := wire.MarshalControlAppend(nil, &rf); err == nil {
			n.sendLocked(rbuf)
			n.trackLocked(rbuf, rf.Seq, false, now)
		}
	}
	return applied, nil
}

// Tick retransmits due pending frames with capped exponential backoff
// and prunes frames that exhausted their retry budget. Call it
// periodically (the daemon's tick loop); returns the number of frames
// resent.
// floc:unit now seconds
func (n *Node) Tick(now float64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	resent := 0
	kept := n.pend[:0]
	for _, p := range n.pend {
		if now >= p.nextAt {
			n.sendLocked(p.buf)
			resent++
			p.retries++
			p.interval *= 2
			if p.interval > n.cfg.RetryMax {
				p.interval = n.cfg.RetryMax
			}
			p.nextAt = now + p.interval
		}
		if p.retries < n.cfg.RetryBudget {
			kept = append(kept, p)
		}
	}
	n.pend = kept
	return resent
}

// nextSeqLocked returns the next per-origin sequence number.
func (n *Node) nextSeqLocked() uint64 {
	n.seq++
	return n.seq
}

// sendLocked pushes one frame to every peer.
func (n *Node) sendLocked(buf []byte) {
	for _, peer := range n.cfg.Peers {
		if err := n.cfg.Transport.Send(peer, buf); err != nil {
			n.sendErrs++
			continue
		}
		n.sentCtrLocked(peer).Inc()
	}
}

// trackLocked queues a frame for retransmission.
// floc:unit now seconds
func (n *Node) trackLocked(buf []byte, seq uint64, originated bool, now float64) {
	if n.cfg.RetryBudget == 0 {
		return
	}
	n.pend = append(n.pend, &pendingFrame{
		buf:        buf,
		seq:        seq,
		originated: originated,
		retries:    0,
		interval:   n.cfg.RetryBase,
		nextAt:     now + n.cfg.RetryBase,
	})
	if len(n.pend) > maxPending {
		n.pend = n.pend[len(n.pend)-maxPending:]
	}
}

func (n *Node) sentCtrLocked(peer string) *telemetry.Counter {
	c := n.sentCtr[peer]
	if c == nil {
		c = n.counter(`floc_cluster_feedback_sent_total{peer="`+peer+`"}`,
			"control frames sent to an upstream peer", "frames")
		n.sentCtr[peer] = c
	}
	return c
}

func (n *Node) appliedCtrLocked(origin uint32) *telemetry.Counter {
	c := n.appliedCtr[origin]
	if c == nil {
		c = n.counter(fmt.Sprintf(`floc_cluster_feedback_applied_total{peer="%d"}`, origin),
			"feedback records applied, by advertising router", "records")
		n.appliedCtr[origin] = c
	}
	return c
}

func (n *Node) staleCtrLocked(origin uint32) *telemetry.Counter {
	c := n.staleCtr[origin]
	if c == nil {
		c = n.counter(fmt.Sprintf(`floc_cluster_feedback_stale_dropped_total{peer="%d"}`, origin),
			"control frames dropped as stale, by advertising router", "frames")
		n.staleCtr[origin] = c
	}
	return c
}

// counter resolves a registry counter, or a detached one when telemetry
// is off (so callers never branch).
func (n *Node) counter(name, help, unit string) *telemetry.Counter {
	if n.cfg.Telemetry != nil {
		return n.cfg.Telemetry.Counter(name, help, unit)
	}
	return telemetry.NewRegistry().Counter(name, help, unit)
}

// PeerFeedback is one downstream origin's receive state, for /healthz.
type PeerFeedback struct {
	Origin     uint32  `json:"origin"`
	LastSeq    uint64  `json:"last_seq"`
	AgeSeconds float64 `json:"age_seconds"` //floc:unit seconds
}

// Health is the node's /healthz surface.
type Health struct {
	RouterID      uint32         `json:"router_id"`
	Peers         int            `json:"peers"`
	Feedback      []PeerFeedback `json:"feedback,omitempty"`
	PendingFrames int            `json:"pending_frames"`
	SendErrors    int64          `json:"send_errors,omitempty"`
}

// Health reports the node's current state, feedback sorted by origin.
// floc:unit now seconds
func (n *Node) Health(now float64) Health {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := Health{
		RouterID:      n.cfg.RouterID,
		Peers:         len(n.cfg.Peers),
		PendingFrames: len(n.pend),
		SendErrors:    n.sendErrs,
	}
	for origin, at := range n.lastRecv {
		h.Feedback = append(h.Feedback, PeerFeedback{
			Origin:     origin,
			LastSeq:    n.lastSeq[origin],
			AgeSeconds: now - at,
		})
	}
	sort.Slice(h.Feedback, func(i, j int) bool { return h.Feedback[i].Origin < h.Feedback[j].Origin })
	return h
}
