// Package capability implements FLoc's network-layer flow capabilities
// (paper Sections III-A and IV-B.3).
//
// During connection establishment a router issues an authenticated flow
// identifier — a capability — that only the router itself can verify. The
// capability has two parts:
//
//	C0 = Hash(IP_s, IP_d,    S_i, K0)   — flow-identifier authenticity
//	C1 = Hash(IP_s, F(IP_d), S_i, K1)   — per-source fan-out control
//
// F maps the destination into one of n_max slots, so a source can hold at
// most n_max distinct C1 values through a given router. All of a source's
// concurrent flows that fall in one slot share a C1 and are accounted as a
// single (virtual) flow, which is how FLoc turns a covert attack's many
// "legitimate-looking" low-rate flows into one identifiable high-rate flow.
package capability

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"floc/internal/pathid"
)

// Capability is an issued flow capability.
type Capability struct {
	// C0 authenticates the exact flow (source, destination, path).
	C0 uint64
	// C1 authenticates the (source, destination-slot, path) aggregate used
	// for fan-out accounting.
	C1 uint64
	// Slot is F(IP_d), the fan-out slot in [0, n_max) that C1 covers.
	Slot int
}

// Issuer issues and verifies capabilities for one router. It holds the
// router's two secret keys and the configured fan-out limit n_max.
type Issuer struct {
	key0 []byte
	key1 []byte
	nmax int
}

// NewIssuer creates an Issuer with the router secret and fan-out limit
// nmax >= 1. The two per-purpose keys K0, K1 are derived from the secret.
func NewIssuer(secret []byte, nmax int) (*Issuer, error) {
	if nmax < 1 {
		return nil, fmt.Errorf("capability: nmax %d < 1", nmax)
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("capability: empty router secret")
	}
	derive := func(label byte) []byte {
		h := hmac.New(sha256.New, secret)
		h.Write([]byte{label})
		return h.Sum(nil)
	}
	return &Issuer{key0: derive(0), key1: derive(1), nmax: nmax}, nil
}

// NMax returns the configured per-source fan-out limit.
func (is *Issuer) NMax() int { return is.nmax }

// Issue creates the capability for flow (src, dst) over path p.
func (is *Issuer) Issue(src, dst uint32, p pathid.PathID) Capability {
	slot := is.slot(dst)
	return Capability{
		C0:   is.mac(is.key0, src, dst, p),
		C1:   is.mac(is.key1, src, uint32(slot), p),
		Slot: slot,
	}
}

// Verify checks that c is the capability this router would issue for
// (src, dst, p).
func (is *Issuer) Verify(c Capability, src, dst uint32, p pathid.PathID) bool {
	want := is.Issue(src, dst, p)
	return c.C0 == want.C0 && c.C1 == want.C1 && c.Slot == want.Slot
}

// slot computes F(IP_d): a keyed uniform mapping of the destination into
// [0, n_max).
func (is *Issuer) slot(dst uint32) int {
	h := hmac.New(sha256.New, is.key1)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], dst)
	h.Write(buf[:])
	v := binary.BigEndian.Uint64(h.Sum(nil)[:8])
	return int(v % uint64(is.nmax))
}

// mac computes the truncated HMAC over (a, b, path).
func (is *Issuer) mac(key []byte, a, b uint32, p pathid.PathID) uint64 {
	h := hmac.New(sha256.New, key)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], a)
	h.Write(buf[:])
	binary.BigEndian.PutUint32(buf[:], b)
	h.Write(buf[:])
	for _, as := range p {
		binary.BigEndian.PutUint32(buf[:], uint32(as))
		h.Write(buf[:])
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// FlowKey is the accounting identity of a flow at a router: all flows of a
// source that share a fan-out slot collapse to one key, implementing the
// covert-attack countermeasure of Section IV-B.3.
type FlowKey struct {
	Src  uint32
	C1   uint64
	Slot int
}

// Key returns the accounting key covered by capability c for source src.
func Key(src uint32, c Capability) FlowKey {
	return FlowKey{Src: src, C1: c.C1, Slot: c.Slot}
}

// Accountant tracks, per source, which fan-out slots are in use and rejects
// capability issuance beyond n_max concurrent destinations whose slots are
// all distinct — i.e. it limits the number of *capabilities* (virtual
// flows) a source can hold through the router.
type Accountant struct {
	nmax int
	// perSource maps a source to its active destination count per slot.
	perSource map[uint32]map[int]int
}

// NewAccountant returns an Accountant enforcing the issuer's n_max.
func NewAccountant(nmax int) *Accountant {
	if nmax < 1 {
		nmax = 1
	}
	return &Accountant{nmax: nmax, perSource: map[uint32]map[int]int{}}
}

// Open records a new flow for src in the capability's slot. It never
// rejects: the point of the slot construction is that excess flows pile
// into an existing slot and are rate-accounted together, not refused.
// It returns the number of flows now sharing the slot.
func (a *Accountant) Open(src uint32, c Capability) int {
	slots := a.perSource[src]
	if slots == nil {
		slots = map[int]int{}
		a.perSource[src] = slots
	}
	slots[c.Slot]++
	return slots[c.Slot]
}

// Close records flow termination.
func (a *Accountant) Close(src uint32, c Capability) {
	slots := a.perSource[src]
	if slots == nil {
		return
	}
	if slots[c.Slot] > 0 {
		slots[c.Slot]--
	}
	if slots[c.Slot] == 0 {
		delete(slots, c.Slot)
	}
	if len(slots) == 0 {
		delete(a.perSource, src)
	}
}

// ActiveSlots returns how many distinct fan-out slots src currently uses;
// it is bounded by n_max.
func (a *Accountant) ActiveSlots(src uint32) int { return len(a.perSource[src]) }

// SlotFlows returns how many concurrent flows of src share slot.
func (a *Accountant) SlotFlows(src uint32, slot int) int {
	return a.perSource[src][slot]
}

// Sources returns the number of sources with at least one open flow.
func (a *Accountant) Sources() int { return len(a.perSource) }
