package capability

import (
	"testing"

	"floc/internal/pathid"
)

// FuzzCapability drives issuance and verification of the two-part flow
// capability (C0, C1) with arbitrary secrets, fan-out limits, flow
// endpoints, and paths, checking the verification contract: issued
// capabilities verify, any tampered part fails, slots stay in [0, nmax),
// and the accountant's slot bookkeeping balances.
func FuzzCapability(f *testing.F) {
	f.Add([]byte("router-secret"), 4, uint32(0x0a000001), uint32(0x0a000002), []byte{1, 2, 3}, uint64(1))
	f.Add([]byte{0}, 1, uint32(0), uint32(0), []byte{}, uint64(0))
	f.Add([]byte("k"), 64, uint32(1), uint32(2), []byte{9, 9, 9, 9, 9, 9, 9, 9}, uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, secret []byte, nmax int, src, dst uint32, rawPath []byte, tamper uint64) {
		if len(secret) == 0 {
			secret = []byte{0xff}
		}
		nmax = nmax % 256
		if nmax < 1 {
			nmax = 1
		}
		is, err := NewIssuer(secret, nmax)
		if err != nil {
			t.Fatal(err)
		}
		asns := make([]pathid.ASN, 0, 8)
		for i := 0; i < len(rawPath) && i < 8; i++ {
			asns = append(asns, pathid.ASN(rawPath[i])+1)
		}
		path := pathid.New(asns...)

		c := is.Issue(src, dst, path)
		if c.Slot < 0 || c.Slot >= nmax {
			t.Fatalf("slot %d outside [0, %d)", c.Slot, nmax)
		}
		if !is.Verify(c, src, dst, path) {
			t.Fatal("issued capability failed verification")
		}
		if c2 := is.Issue(src, dst, path); c2 != c {
			t.Fatalf("issuance not deterministic: %+v vs %+v", c2, c)
		}

		// Tampering with either hash part must break verification.
		if tamper != 0 {
			bad := c
			bad.C0 ^= tamper
			if is.Verify(bad, src, dst, path) {
				t.Fatal("tampered C0 verified")
			}
			bad = c
			bad.C1 ^= tamper
			if is.Verify(bad, src, dst, path) {
				t.Fatal("tampered C1 verified")
			}
		}

		// A router holding a different secret must reject the capability.
		other := append(append([]byte{}, secret...), 'x')
		is2, err := NewIssuer(other, nmax)
		if err != nil {
			t.Fatal(err)
		}
		if is2.Verify(c, src, dst, path) {
			t.Fatal("capability verified under a different router secret")
		}

		// Accountant slot bookkeeping: opens accumulate in one slot,
		// active slots never exceed nmax, closes drain back to zero.
		acct := NewAccountant(nmax)
		if n := acct.Open(src, c); n != 1 {
			t.Fatalf("first open: slot flows = %d, want 1", n)
		}
		if n := acct.Open(src, c); n != 2 {
			t.Fatalf("second open: slot flows = %d, want 2", n)
		}
		if got := acct.ActiveSlots(src); got < 1 || got > nmax {
			t.Fatalf("active slots %d outside [1, %d]", got, nmax)
		}
		if got := acct.SlotFlows(src, c.Slot); got != 2 {
			t.Fatalf("slot flows = %d, want 2", got)
		}
		acct.Close(src, c)
		acct.Close(src, c)
		if got := acct.ActiveSlots(src); got != 0 {
			t.Fatalf("active slots %d after closing all flows, want 0", got)
		}
		if got := acct.Sources(); got != 0 {
			t.Fatalf("sources %d after closing all flows, want 0", got)
		}
		// Closing more than was opened must not underflow.
		acct.Close(src, c)
		if got := acct.SlotFlows(src, c.Slot); got != 0 {
			t.Fatalf("slot flows %d after excess close, want 0", got)
		}
	})
}
