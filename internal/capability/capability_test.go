package capability

import (
	"testing"
	"testing/quick"

	"floc/internal/pathid"
)

func newIssuer(t *testing.T, nmax int) *Issuer {
	t.Helper()
	is, err := NewIssuer([]byte("router-secret"), nmax)
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func TestNewIssuerValidation(t *testing.T) {
	if _, err := NewIssuer(nil, 2); err == nil {
		t.Fatal("empty secret accepted")
	}
	if _, err := NewIssuer([]byte("k"), 0); err == nil {
		t.Fatal("nmax=0 accepted")
	}
	is := newIssuer(t, 3)
	if is.NMax() != 3 {
		t.Fatalf("NMax = %d", is.NMax())
	}
}

func TestIssueVerifyRoundTrip(t *testing.T) {
	is := newIssuer(t, 4)
	p := pathid.New(7, 3, 1)
	c := is.Issue(100, 200, p)
	if !is.Verify(c, 100, 200, p) {
		t.Fatal("issued capability does not verify")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	is := newIssuer(t, 4)
	p := pathid.New(7, 3, 1)
	c := is.Issue(100, 200, p)

	bad := c
	bad.C0++
	if is.Verify(bad, 100, 200, p) {
		t.Fatal("tampered C0 verified")
	}
	bad = c
	bad.C1 ^= 1
	if is.Verify(bad, 100, 200, p) {
		t.Fatal("tampered C1 verified")
	}
	if is.Verify(c, 101, 200, p) {
		t.Fatal("wrong source verified")
	}
	if is.Verify(c, 100, 201, p) {
		t.Fatal("wrong destination verified")
	}
	if is.Verify(c, 100, 200, pathid.New(8, 3, 1)) {
		t.Fatal("wrong path verified")
	}
}

func TestDifferentRoutersDisagree(t *testing.T) {
	a, _ := NewIssuer([]byte("router-a"), 4)
	b, _ := NewIssuer([]byte("router-b"), 4)
	p := pathid.New(2, 1)
	c := a.Issue(5, 6, p)
	if b.Verify(c, 5, 6, p) {
		t.Fatal("capability from router A verified at router B")
	}
}

func TestSlotInRangeProperty(t *testing.T) {
	is := newIssuer(t, 5)
	f := func(src, dst uint32) bool {
		c := is.Issue(src, dst, pathid.New(1))
		return c.Slot >= 0 && c.Slot < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotDeterministicPerDestination(t *testing.T) {
	is := newIssuer(t, 4)
	p := pathid.New(3, 1)
	c1 := is.Issue(10, 77, p)
	c2 := is.Issue(10, 77, p)
	if c1 != c2 {
		t.Fatal("issuance not deterministic")
	}
	// Same source, same slot destination => same C1 even for another dst
	// mapping to the same slot. Find such a destination.
	for d := uint32(0); d < 10000; d++ {
		c := is.Issue(10, d, p)
		if d != 77 && c.Slot == c1.Slot {
			if c.C1 != c1.C1 {
				t.Fatalf("same slot, different C1: dst=%d", d)
			}
			if c.C0 == c1.C0 {
				t.Fatalf("different destinations share C0: dst=%d", d)
			}
			return
		}
	}
	t.Fatal("no slot-colliding destination found in 10000 tries (suspicious F)")
}

func TestSlotRoughlyUniform(t *testing.T) {
	is := newIssuer(t, 4)
	counts := make([]int, 4)
	for d := uint32(0); d < 4000; d++ {
		counts[is.Issue(1, d, pathid.New(1)).Slot]++
	}
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("slot %d has %d/4000 destinations, want ~1000", s, c)
		}
	}
}

func TestFanOutBoundedByNMax(t *testing.T) {
	const nmax = 2
	is := newIssuer(t, nmax)
	acct := NewAccountant(nmax)
	p := pathid.New(9, 1)
	// A covert source opening 20 destinations gets at most nmax slots.
	for d := uint32(0); d < 20; d++ {
		acct.Open(42, is.Issue(42, d, p))
	}
	if got := acct.ActiveSlots(42); got > nmax {
		t.Fatalf("ActiveSlots = %d > nmax %d", got, nmax)
	}
	// All 20 flows are accounted inside those slots.
	total := 0
	for s := 0; s < nmax; s++ {
		total += acct.SlotFlows(42, s)
	}
	if total != 20 {
		t.Fatalf("accounted flows = %d, want 20", total)
	}
}

func TestAccountantOpenClose(t *testing.T) {
	acct := NewAccountant(4)
	c := Capability{C1: 1, Slot: 2}
	if n := acct.Open(7, c); n != 1 {
		t.Fatalf("first Open = %d", n)
	}
	if n := acct.Open(7, c); n != 2 {
		t.Fatalf("second Open = %d", n)
	}
	if acct.Sources() != 1 {
		t.Fatalf("Sources = %d", acct.Sources())
	}
	acct.Close(7, c)
	if got := acct.SlotFlows(7, 2); got != 1 {
		t.Fatalf("after one Close, SlotFlows = %d", got)
	}
	acct.Close(7, c)
	if acct.ActiveSlots(7) != 0 || acct.Sources() != 0 {
		t.Fatal("fully closed source still tracked")
	}
	// Closing beyond zero or for unknown sources must be safe.
	acct.Close(7, c)
	acct.Close(99, c)
}

func TestAccountantNMaxClamped(t *testing.T) {
	acct := NewAccountant(0)
	if acct.nmax != 1 {
		t.Fatalf("nmax not clamped: %d", acct.nmax)
	}
}

func TestKey(t *testing.T) {
	c := Capability{C0: 1, C1: 2, Slot: 3}
	k := Key(9, c)
	if k.Src != 9 || k.C1 != 2 || k.Slot != 3 {
		t.Fatalf("Key = %+v", k)
	}
	// Keys are comparable and collapse same-slot flows.
	c2 := Capability{C0: 99, C1: 2, Slot: 3}
	if Key(9, c) != Key(9, c2) {
		t.Fatal("same-slot flows do not share a key")
	}
}
