// Package traffic implements the attack traffic generators of the paper's
// functional evaluation (Section VI): constant-bit-rate (CBR) flooders,
// low-rate synchronized Shrew sources, and covert multi-destination
// sources whose individual flows look legitimate.
//
// All generators emit UDP-kind packets (no congestion response), stamped
// with their origin's path identifier and the ground-truth Attack label
// used only by measurement code.
package traffic

import (
	"fmt"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// CBRConfig configures a constant-bit-rate source.
type CBRConfig struct {
	// Src and Dst are the flow endpoints.
	Src, Dst uint32
	// Path is the origin's path identifier.
	Path pathid.PathID
	// RateBits is the send rate in bits per second.
	RateBits float64
	// PacketSize is the packet size in bytes (default 1000).
	PacketSize int
	// Start and Stop bound the sending interval; Stop <= Start means
	// "until the simulation ends".
	Start, Stop float64
	// Attack is the ground-truth label (defaults to true in attack
	// scenarios; set explicitly).
	Attack bool
	// Jitter, in [0, 1), randomizes each inter-packet gap by the given
	// fraction to avoid artificial phase effects. 0 means none.
	Jitter float64
}

// CBR is a constant-bit-rate packet source.
type CBR struct {
	cfg     CBRConfig
	host    *netsim.Host
	gap     float64
	sent    int
	pathKey string
}

// NewCBR creates a CBR source on host.
func NewCBR(host *netsim.Host, cfg CBRConfig) (*CBR, error) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1000
	}
	if cfg.RateBits <= 0 {
		return nil, fmt.Errorf("traffic: CBR rate %v <= 0", cfg.RateBits)
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("traffic: CBR jitter %v out of [0,1)", cfg.Jitter)
	}
	gap := float64(cfg.PacketSize*8) / cfg.RateBits
	return &CBR{cfg: cfg, host: host, gap: gap, pathKey: cfg.Path.Key()}, nil
}

// Sent returns the number of packets emitted.
func (c *CBR) Sent() int { return c.sent }

// Start schedules the source's first packet.
func (c *CBR) Start(net *netsim.Network) {
	net.Schedule(c.cfg.Start, func() { c.emit(net) })
}

func (c *CBR) emit(net *netsim.Network) {
	if c.cfg.Stop > c.cfg.Start && net.Now() >= c.cfg.Stop {
		return
	}
	c.sent++
	c.host.Send(net, &netsim.Packet{
		ID: net.NextPacketID(), Src: c.cfg.Src, Dst: c.cfg.Dst,
		Size: c.cfg.PacketSize, Kind: netsim.KindUDP,
		Path: c.cfg.Path, PathKey: c.pathKey, Attack: c.cfg.Attack, SentAt: net.Now(),
	})
	gap := c.gap
	if c.cfg.Jitter > 0 {
		gap *= 1 + c.cfg.Jitter*(2*net.Rand().Float64()-1)
	}
	net.ScheduleIn(gap, func() { c.emit(net) })
}

// ShrewConfig configures a Shrew (low-rate, pulsed) attack source
// (Kuzmanovic & Knightly; paper Section VI-A). The source sends at
// BurstRateBits only during the first BurstFraction of every Period,
// synchronized across all sources started with the same phase.
type ShrewConfig struct {
	Src, Dst uint32
	Path     pathid.PathID
	// BurstRateBits is the in-burst send rate, bits/second.
	BurstRateBits float64
	// Period is the pulse period in seconds (the paper uses the flows'
	// RTT so drops synchronize with legitimate retransmissions).
	Period float64
	// BurstFraction is the on fraction of each period (paper: 0.25).
	BurstFraction float64
	// PacketSize in bytes (default 1000).
	PacketSize int
	// Start and Stop bound the attack; Stop <= Start means unbounded.
	Start, Stop float64
}

// Shrew is a pulsed on-off attack source.
type Shrew struct {
	cfg     ShrewConfig
	host    *netsim.Host
	gap     float64
	sent    int
	pathKey string
}

// NewShrew creates a Shrew source on host.
func NewShrew(host *netsim.Host, cfg ShrewConfig) (*Shrew, error) {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 1000
	}
	if cfg.BurstRateBits <= 0 {
		return nil, fmt.Errorf("traffic: shrew burst rate %v <= 0", cfg.BurstRateBits)
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("traffic: shrew period %v <= 0", cfg.Period)
	}
	if cfg.BurstFraction <= 0 || cfg.BurstFraction > 1 {
		return nil, fmt.Errorf("traffic: shrew burst fraction %v out of (0,1]", cfg.BurstFraction)
	}
	gap := float64(cfg.PacketSize*8) / cfg.BurstRateBits
	return &Shrew{cfg: cfg, host: host, gap: gap, pathKey: cfg.Path.Key()}, nil
}

// Sent returns the number of packets emitted.
func (s *Shrew) Sent() int { return s.sent }

// Start schedules the attack.
func (s *Shrew) Start(net *netsim.Network) {
	net.Schedule(s.cfg.Start, func() { s.emit(net) })
}

func (s *Shrew) emit(net *netsim.Network) {
	now := net.Now()
	if s.cfg.Stop > s.cfg.Start && now >= s.cfg.Stop {
		return
	}
	// Position within the current period, measured from attack start.
	phase := (now - s.cfg.Start) / s.cfg.Period
	phase -= float64(int(phase))
	if phase < s.cfg.BurstFraction {
		s.sent++
		s.host.Send(net, &netsim.Packet{
			ID: net.NextPacketID(), Src: s.cfg.Src, Dst: s.cfg.Dst,
			Size: s.cfg.PacketSize, Kind: netsim.KindUDP,
			Path: s.cfg.Path, PathKey: s.pathKey, Attack: true, SentAt: now,
		})
		net.ScheduleIn(s.gap, func() { s.emit(net) })
		return
	}
	// Off phase: sleep until the next period boundary. Guard against
	// floating-point boundaries landing at (or a few ULPs after) now,
	// which would re-enter emit with essentially no time progress.
	periodsDone := float64(int((now-s.cfg.Start)/s.cfg.Period)) + 1
	next := s.cfg.Start + periodsDone*s.cfg.Period
	if next-now < 1e-9 {
		next = now + s.cfg.Period
	}
	net.Schedule(next, func() { s.emit(net) })
}

// CovertConfig configures a covert attack source (paper Section IV-B.3 and
// VI-D): one source opens Fanout concurrent low-rate flows to distinct
// destinations, each individually indistinguishable from a legitimate flow.
type CovertConfig struct {
	Src uint32
	// Dsts are the destination addresses; one flow per destination.
	Dsts []uint32
	Path pathid.PathID
	// PerFlowRateBits is each flow's rate (paper: 0.2 Mb/s — exactly the
	// fair share, so each flow looks legitimate).
	PerFlowRateBits float64
	// PacketSize in bytes (default 1000).
	PacketSize  int
	Start, Stop float64
}

// Covert is a multi-destination covert attack source: a bundle of CBR
// flows from one source.
type Covert struct {
	flows []*CBR
}

// NewCovert creates the bundle.
func NewCovert(host *netsim.Host, cfg CovertConfig) (*Covert, error) {
	if len(cfg.Dsts) == 0 {
		return nil, fmt.Errorf("traffic: covert source with no destinations")
	}
	c := &Covert{}
	for i, dst := range cfg.Dsts {
		f, err := NewCBR(host, CBRConfig{
			Src: cfg.Src, Dst: dst, Path: cfg.Path,
			RateBits: cfg.PerFlowRateBits, PacketSize: cfg.PacketSize,
			// Stagger flow starts slightly so the bundle doesn't emit
			// perfectly phase-locked packets.
			Start: cfg.Start + float64(i)*0.001, Stop: cfg.Stop,
			Attack: true, Jitter: 0.1,
		})
		if err != nil {
			return nil, err
		}
		c.flows = append(c.flows, f)
	}
	return c, nil
}

// Start begins all of the bundle's flows.
func (c *Covert) Start(net *netsim.Network) {
	for _, f := range c.flows {
		f.Start(net)
	}
}

// Sent returns total packets emitted across all flows.
func (c *Covert) Sent() int {
	total := 0
	for _, f := range c.flows {
		total += f.Sent()
	}
	return total
}

// Flows returns the number of flows in the bundle.
func (c *Covert) Flows() int { return len(c.flows) }
