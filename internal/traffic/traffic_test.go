package traffic

import (
	"math"
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// sinkEP counts delivered packets per flow.
type sinkEP struct {
	count map[netsim.FlowID]int
	times []float64
}

func newSinkEP() *sinkEP { return &sinkEP{count: map[netsim.FlowID]int{}} }

func (s *sinkEP) Receive(net *netsim.Network, pkt *netsim.Packet) {
	s.count[pkt.Flow()]++
	s.times = append(s.times, net.Now())
}

func hostWithLink(t *testing.T, addr uint32, dst netsim.Endpoint) (*netsim.Host, *netsim.Link) {
	t.Helper()
	h := netsim.NewHost("h", addr)
	l, err := netsim.NewLink("l", 100e6, 0.001, netsim.NewFIFO(100000), dst)
	if err != nil {
		t.Fatal(err)
	}
	h.SetAccess(l)
	return h, l
}

func TestCBRValidation(t *testing.T) {
	h, _ := hostWithLink(t, 1, newSinkEP())
	if _, err := NewCBR(h, CBRConfig{RateBits: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewCBR(h, CBRConfig{RateBits: 1e6, Jitter: 1.5}); err == nil {
		t.Fatal("jitter >= 1 accepted")
	}
	if _, err := NewCBR(h, CBRConfig{RateBits: 1e6, Jitter: -0.1}); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

func TestCBRRateAccuracy(t *testing.T) {
	sink := newSinkEP()
	h, _ := hostWithLink(t, 1, sink)
	// 2 Mb/s of 1000-byte (8000-bit) packets = 250 packets/s for 4 s.
	c, err := NewCBR(h, CBRConfig{
		Src: 1, Dst: 2, Path: pathid.New(5, 1),
		RateBits: 2e6, Start: 0, Stop: 4, Attack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(3)
	c.Start(net)
	net.Run(10)
	got := c.Sent()
	if got < 990 || got > 1010 {
		t.Fatalf("sent %d packets, want ~1000", got)
	}
	if sink.count[netsim.FlowID{Src: 1, Dst: 2}] != got {
		t.Fatalf("delivered %d != sent %d", sink.count[netsim.FlowID{Src: 1, Dst: 2}], got)
	}
}

func TestCBRStopBound(t *testing.T) {
	sink := newSinkEP()
	h, _ := hostWithLink(t, 1, sink)
	c, err := NewCBR(h, CBRConfig{Src: 1, Dst: 2, RateBits: 8e5, Start: 1, Stop: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(3)
	c.Start(net)
	net.Run(10)
	for _, tm := range sink.times {
		if tm < 1.0 || tm > 2.1 {
			t.Fatalf("packet outside window at %v", tm)
		}
	}
	if c.Sent() == 0 {
		t.Fatal("nothing sent")
	}
}

func TestCBRJitterStillMeetsRate(t *testing.T) {
	h, _ := hostWithLink(t, 1, newSinkEP())
	c, err := NewCBR(h, CBRConfig{Src: 1, Dst: 2, RateBits: 1e6, Start: 0, Stop: 5, Jitter: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(9)
	c.Start(net)
	net.Run(10)
	// 1 Mb/s / 8000 bits = 125 pkt/s * 5 s = 625; jitter is zero-mean.
	if got := c.Sent(); got < 560 || got > 690 {
		t.Fatalf("sent %d, want ~625", got)
	}
}

func TestShrewValidation(t *testing.T) {
	h, _ := hostWithLink(t, 1, newSinkEP())
	bad := []ShrewConfig{
		{BurstRateBits: 0, Period: 1, BurstFraction: 0.25},
		{BurstRateBits: 1e6, Period: 0, BurstFraction: 0.25},
		{BurstRateBits: 1e6, Period: 1, BurstFraction: 0},
		{BurstRateBits: 1e6, Period: 1, BurstFraction: 1.1},
	}
	for i, cfg := range bad {
		if _, err := NewShrew(h, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestShrewPulsesOnlyInBurstWindow(t *testing.T) {
	sink := newSinkEP()
	h, _ := hostWithLink(t, 1, sink)
	s, err := NewShrew(h, ShrewConfig{
		Src: 1, Dst: 2, Path: pathid.New(5, 1),
		BurstRateBits: 8e6, Period: 1.0, BurstFraction: 0.25,
		Start: 0, Stop: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(4)
	s.Start(net)
	net.Run(20)
	if s.Sent() == 0 {
		t.Fatal("nothing sent")
	}
	for _, tm := range sink.times {
		// Emission time within each period must fall in the on-phase
		// (allow the delivery latency of ~1.1ms plus one gap).
		emit := tm - 0.0011
		phase := emit - math.Floor(emit)
		if phase > 0.26 && phase < 0.99 {
			t.Fatalf("packet emitted off-phase at %v (phase %v)", tm, phase)
		}
	}
	// Mean rate = burst rate * fraction: 8 Mb/s * 0.25 = 2 Mb/s
	// = 250 pkt/s * 10 s = 2500.
	if got := s.Sent(); got < 2300 || got > 2700 {
		t.Fatalf("sent %d, want ~2500", got)
	}
}

func TestShrewDutyCycleMeanRate(t *testing.T) {
	h, _ := hostWithLink(t, 1, newSinkEP())
	s, err := NewShrew(h, ShrewConfig{
		Src: 1, Dst: 2, BurstRateBits: 4e6, Period: 0.2, BurstFraction: 0.5,
		Start: 0, Stop: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(4)
	s.Start(net)
	net.Run(10)
	// 4 Mb/s * 0.5 duty = 2 Mb/s avg = 250 pkt/s * 4 s = 1000.
	if got := s.Sent(); got < 900 || got > 1100 {
		t.Fatalf("sent %d, want ~1000", got)
	}
}

func TestCovert(t *testing.T) {
	sink := newSinkEP()
	h, _ := hostWithLink(t, 1, sink)
	dsts := []uint32{10, 11, 12, 13, 14}
	c, err := NewCovert(h, CovertConfig{
		Src: 1, Dsts: dsts, Path: pathid.New(5, 1),
		PerFlowRateBits: 2e5, Start: 0, Stop: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Flows() != 5 {
		t.Fatalf("Flows = %d", c.Flows())
	}
	net := netsim.New(5)
	c.Start(net)
	net.Run(10)
	// Each flow: 0.2 Mb/s = 25 pkt/s * 5 s = 125.
	for _, d := range dsts {
		got := sink.count[netsim.FlowID{Src: 1, Dst: d}]
		if got < 100 || got > 150 {
			t.Fatalf("flow to %d delivered %d, want ~125", d, got)
		}
	}
	if c.Sent() < 500 {
		t.Fatalf("total sent %d", c.Sent())
	}
}

func TestCovertValidation(t *testing.T) {
	h, _ := hostWithLink(t, 1, newSinkEP())
	if _, err := NewCovert(h, CovertConfig{Src: 1}); err == nil {
		t.Fatal("no destinations accepted")
	}
	if _, err := NewCovert(h, CovertConfig{Src: 1, Dsts: []uint32{2}, PerFlowRateBits: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestAttackLabelPropagates(t *testing.T) {
	var sawAttack bool
	collect := &hookEP{fn: func(p *netsim.Packet) { sawAttack = sawAttack || p.Attack }}
	h, _ := hostWithLink(t, 1, collect)
	c, err := NewCBR(h, CBRConfig{Src: 1, Dst: 2, RateBits: 1e6, Stop: 0.1, Attack: true})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(6)
	c.Start(net)
	net.Run(1)
	if !sawAttack {
		t.Fatal("attack label lost")
	}
}

type hookEP struct{ fn func(*netsim.Packet) }

func (h *hookEP) Receive(_ *netsim.Network, pkt *netsim.Packet) { h.fn(pkt) }
