package netsim

import (
	"fmt"
	"strings"
	"testing"

	"floc/internal/pathid"
)

// collector is an Endpoint that records received packets.
type collector struct {
	pkts  []*Packet
	times []float64
}

func (c *collector) Receive(net *Network, pkt *Packet) {
	c.pkts = append(c.pkts, pkt)
	c.times = append(c.times, net.Now())
}

func mkPacket(id uint64, size int) *Packet {
	return &Packet{ID: id, Src: 1, Dst: 2, Size: size, Kind: KindData}
}

func TestEventOrdering(t *testing.T) {
	net := New(1)
	var order []int
	net.Schedule(2.0, func() { order = append(order, 2) })
	net.Schedule(1.0, func() { order = append(order, 1) })
	net.Schedule(1.0, func() { order = append(order, 11) }) // same time: FIFO
	net.Schedule(3.0, func() { order = append(order, 3) })
	net.Run(10)
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	net := New(1)
	fired := false
	net.Schedule(5.0, func() { fired = true })
	end := net.Run(2.0)
	if fired {
		t.Fatal("event beyond until fired")
	}
	if end != 2.0 {
		t.Fatalf("end = %v", end)
	}
	if net.Pending() != 1 {
		t.Fatalf("pending = %d", net.Pending())
	}
	net.Run(10)
	if !fired {
		t.Fatal("event did not fire on resumed run")
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	net := New(1)
	var at float64 = -1
	net.Schedule(1.0, func() {
		net.Schedule(0.5, func() { at = net.Now() }) // in the past
	})
	net.Run(10)
	if at != 1.0 {
		t.Fatalf("past event ran at %v, want clamped to 1.0", at)
	}
}

func TestStop(t *testing.T) {
	net := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		tm := float64(i)
		net.Schedule(tm, func() {
			count++
			if count == 3 {
				net.Stop()
			}
		})
	}
	net.Run(100)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestNextPacketIDUnique(t *testing.T) {
	net := New(1)
	a, b := net.NextPacketID(), net.NextPacketID()
	if a == b {
		t.Fatal("packet IDs collide")
	}
}

func TestLinkValidation(t *testing.T) {
	dst := &collector{}
	fifo := NewFIFO(10)
	cases := []struct {
		rate, delay float64
		disc        Discipline
		dst         Endpoint
	}{
		{0, 0.01, fifo, dst},
		{-5, 0.01, fifo, dst},
		{1e6, -1, fifo, dst},
		{1e6, 0.01, nil, dst},
		{1e6, 0.01, fifo, nil},
	}
	for i, tc := range cases {
		if _, err := NewLink("l", tc.rate, tc.delay, tc.disc, tc.dst); err == nil {
			t.Errorf("case %d: invalid link accepted", i)
		}
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	// 8000 bits/s = 1000 bytes/s; a 500-byte packet takes 0.5s to
	// serialize plus 0.1s propagation.
	dst := &collector{}
	l, err := NewLink("l", 8000, 0.1, NewFIFO(10), dst)
	if err != nil {
		t.Fatal(err)
	}
	net := New(1)
	net.Schedule(0, func() { l.Send(net, mkPacket(1, 500)) })
	net.Run(10)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	if got, want := dst.times[0], 0.6; got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	// Two packets sent simultaneously serialize one after the other.
	dst := &collector{}
	l, err := NewLink("l", 8000, 0, NewFIFO(10), dst)
	if err != nil {
		t.Fatal(err)
	}
	net := New(1)
	net.Schedule(0, func() {
		l.Send(net, mkPacket(1, 1000))
		l.Send(net, mkPacket(2, 1000))
	})
	net.Run(10)
	if len(dst.times) != 2 {
		t.Fatalf("delivered %d", len(dst.times))
	}
	if dst.times[0] != 1.0 || dst.times[1] != 2.0 {
		t.Fatalf("delivery times %v, want [1 2]", dst.times)
	}
	if dst.pkts[0].ID != 1 || dst.pkts[1].ID != 2 {
		t.Fatal("FIFO order violated")
	}
}

func TestLinkDropsWhenFull(t *testing.T) {
	dst := &collector{}
	l, err := NewLink("l", 8000, 0, NewFIFO(2), dst)
	if err != nil {
		t.Fatal(err)
	}
	var dropped []*Packet
	l.DropHook = func(pkt *Packet, _ float64) { dropped = append(dropped, pkt) }
	net := New(1)
	net.Schedule(0, func() {
		// First starts transmitting immediately (leaves the queue), two
		// queue up, fourth drops.
		for i := 1; i <= 4; i++ {
			l.Send(net, mkPacket(uint64(i), 1000))
		}
	})
	net.Run(10)
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.pkts))
	}
	if len(dropped) != 1 || dropped[0].ID != 4 {
		t.Fatalf("dropped %v", dropped)
	}
	st := l.Stats()
	if st.Dropped != 1 || st.Delivered != 3 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DeliveredBytes != 3000 {
		t.Fatalf("delivered bytes = %d", st.DeliveredBytes)
	}
}

func TestDeliverHook(t *testing.T) {
	dst := &collector{}
	l, err := NewLink("l", 8e6, 0.001, NewFIFO(10), dst)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	l.DeliverHook = func(pkt *Packet, now float64) { seen++ }
	net := New(1)
	net.Schedule(0, func() { l.Send(net, mkPacket(1, 100)) })
	net.Run(1)
	if seen != 1 {
		t.Fatalf("DeliverHook saw %d", seen)
	}
}

func TestLinkUtilizationNearCapacity(t *testing.T) {
	// Saturate a 1 Mb/s link for 10 seconds; delivered bytes must be close
	// to capacity and never above.
	dst := &collector{}
	l, err := NewLink("l", 1e6, 0, NewFIFO(50), dst)
	if err != nil {
		t.Fatal(err)
	}
	net := New(1)
	const pktSize = 1250 // 10000 bits
	var send func()
	sent := 0
	send = func() {
		l.Send(net, mkPacket(uint64(sent), pktSize))
		sent++
		if net.Now() < 10 {
			net.ScheduleIn(0.005, send) // 2 Mb/s offered load
		}
	}
	net.Schedule(0, send)
	net.Run(12)
	gotBits := float64(l.Stats().DeliveredBytes) * 8
	if gotBits > 1e6*12.01 {
		t.Fatalf("delivered %v bits exceeds capacity", gotBits)
	}
	if gotBits < 1e6*9.5 {
		t.Fatalf("delivered %v bits, link underutilized", gotBits)
	}
}

func TestFIFOCapClamped(t *testing.T) {
	f := NewFIFO(0)
	if f.Cap() != 1 {
		t.Fatalf("cap = %d", f.Cap())
	}
}

func TestFIFOLongRun(t *testing.T) {
	// Exercise the compaction path.
	f := NewFIFO(10)
	next := uint64(0)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 5; i++ {
			if !f.Enqueue(mkPacket(next, 100), 0) {
				t.Fatal("enqueue failed below cap")
			}
			next++
		}
		for i := 0; i < 5; i++ {
			p := f.Dequeue(0)
			if p == nil {
				t.Fatal("dequeue returned nil with items queued")
			}
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", f.Len())
	}
	if f.Dequeue(0) != nil {
		t.Fatal("empty dequeue returned a packet")
	}
}

func TestFIFOOrderPreservedAcrossCompaction(t *testing.T) {
	f := NewFIFO(1000)
	var want uint64
	id := uint64(0)
	for i := 0; i < 500; i++ {
		f.Enqueue(mkPacket(id, 1), 0)
		id++
	}
	for i := 0; i < 5000; i++ {
		p := f.Dequeue(0)
		if p.ID != want {
			t.Fatalf("order broken: got %d want %d", p.ID, want)
		}
		want++
		f.Enqueue(mkPacket(id, 1), 0)
		id++
	}
}

func TestRouterForwarding(t *testing.T) {
	a, b := &collector{}, &collector{}
	r := NewRouter("r")
	la, err := NewLink("to-a", 8e6, 0, NewFIFO(10), a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLink("to-b", 8e6, 0, NewFIFO(10), b)
	if err != nil {
		t.Fatal(err)
	}
	r.AddRoute(100, la)
	r.SetDefault(lb)
	net := New(1)
	net.Schedule(0, func() {
		r.Receive(net, &Packet{ID: 1, Dst: 100, Size: 100, Kind: KindData})
		r.Receive(net, &Packet{ID: 2, Dst: 999, Size: 100, Kind: KindData})
	})
	net.Run(1)
	if len(a.pkts) != 1 || a.pkts[0].ID != 1 {
		t.Fatalf("route to a: %v", a.pkts)
	}
	if len(b.pkts) != 1 || b.pkts[0].ID != 2 {
		t.Fatalf("default route: %v", b.pkts)
	}
}

func TestRouterUnroutableDropsSilently(t *testing.T) {
	r := NewRouter("r")
	net := New(1)
	// Must not panic.
	r.Receive(net, &Packet{ID: 1, Dst: 5, Size: 10})
}

type recordingAgent struct{ got []*Packet }

func (a *recordingAgent) Deliver(_ *Network, pkt *Packet) { a.got = append(a.got, pkt) }

func TestHostDispatchAndFactory(t *testing.T) {
	h := NewHost("server", 500)
	known := &recordingAgent{}
	if err := h.Attach(7, known); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(7, known); err == nil {
		t.Fatal("duplicate Attach accepted")
	}
	var created []uint32
	h.SetFactory(func(peer uint32) Agent {
		if peer == 13 {
			return nil // ignore
		}
		created = append(created, peer)
		return &recordingAgent{}
	})
	net := New(1)
	h.Receive(net, &Packet{Src: 7, Dst: 500})
	h.Receive(net, &Packet{Src: 8, Dst: 500})
	h.Receive(net, &Packet{Src: 8, Dst: 500})
	h.Receive(net, &Packet{Src: 13, Dst: 500})
	if len(known.got) != 1 {
		t.Fatalf("known agent got %d", len(known.got))
	}
	if len(created) != 1 || created[0] != 8 {
		t.Fatalf("factory created %v", created)
	}
	if got := h.Agent(8).(*recordingAgent); len(got.got) != 2 {
		t.Fatalf("factory agent got %d", len(got.got))
	}
	if h.Agent(13) != nil {
		t.Fatal("nil factory result cached")
	}
}

func TestHostSendWithoutAccessPanics(t *testing.T) {
	h := NewHost("h", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Send without access link did not panic")
		}
	}()
	h.Send(New(1), mkPacket(1, 10))
}

func TestHostNoFactoryIgnoresUnknown(t *testing.T) {
	h := NewHost("h", 1)
	h.Receive(New(1), &Packet{Src: 9}) // must not panic
}

func TestPacketFlowAndKindString(t *testing.T) {
	p := &Packet{Src: 3, Dst: 4, Path: pathid.New(1, 2)}
	if p.Flow() != (FlowID{Src: 3, Dst: 4}) {
		t.Fatalf("Flow = %+v", p.Flow())
	}
	kinds := map[PacketKind]string{
		KindSYN: "SYN", KindSYNACK: "SYNACK", KindData: "DATA",
		KindACK: "ACK", KindUDP: "UDP", PacketKind(99): "PacketKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// TestConservationThroughRouterChain: every packet sent into a chain of
// routers/links is either delivered or counted dropped, never duplicated
// or lost silently.
func TestConservationThroughRouterChain(t *testing.T) {
	net := New(5)
	final := &collector{}
	// chain: src -> l1 -> r1 -> l2 -> r2 -> l3 -> final (tight buffers).
	l3, err := NewLink("l3", 4e6, 0.001, NewFIFO(5), final)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRouter("r2")
	r2.SetDefault(l3)
	l2, err := NewLink("l2", 6e6, 0.001, NewFIFO(5), r2)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRouter("r1")
	r1.SetDefault(l2)
	l1, err := NewLink("l1", 50e6, 0.001, NewFIFO(5), r1)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	var send func()
	send = func() {
		l1.Send(net, mkPacket(uint64(sent), 1000))
		sent++
		if net.Now() < 5 {
			net.ScheduleIn(0.0008, send) // 10 Mb/s offered into 4 Mb/s tail
		}
	}
	net.Schedule(0, send)
	net.Run(20)

	dropped := l1.Stats().Dropped + l2.Stats().Dropped + l3.Stats().Dropped
	if len(final.pkts)+dropped != sent {
		t.Fatalf("conservation: sent %d, delivered %d + dropped %d",
			sent, len(final.pkts), dropped)
	}
	if dropped == 0 {
		t.Fatal("expected drops at the 4 Mb/s tail")
	}
	// No duplication.
	seen := map[uint64]bool{}
	for _, p := range final.pkts {
		if seen[p.ID] {
			t.Fatalf("packet %d duplicated", p.ID)
		}
		seen[p.ID] = true
	}
	// FIFO order preserved end to end.
	last := int64(-1)
	for _, p := range final.pkts {
		if int64(p.ID) < last {
			t.Fatal("reordering across links")
		}
		last = int64(p.ID)
	}
}

func TestLinkStatsDeliveredBytesMatch(t *testing.T) {
	dst := &collector{}
	l, err := NewLink("l", 8e6, 0, NewFIFO(100), dst)
	if err != nil {
		t.Fatal(err)
	}
	net := New(1)
	sizes := []int{40, 1000, 1300, 1500}
	total := 0
	net.Schedule(0, func() {
		for i, sz := range sizes {
			l.Send(net, mkPacket(uint64(i), sz))
			total += sz
		}
	})
	net.Run(1)
	if got := l.Stats().DeliveredBytes; got != int64(total) {
		t.Fatalf("DeliveredBytes = %d, want %d", got, total)
	}
}

// TestPacketKindRoundTrip checks that every defined kind survives the
// String/ParsePacketKind round trip, and that values outside the closed
// set are rejected rather than aliased onto a real kind.
func TestPacketKindRoundTrip(t *testing.T) {
	kinds := []PacketKind{KindSYN, KindSYNACK, KindData, KindACK, KindUDP}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "PacketKind(") {
			t.Errorf("kind %d has no name", uint8(k))
			continue
		}
		if seen[s] {
			t.Errorf("kind name %q not unique", s)
		}
		seen[s] = true
		got, ok := ParsePacketKind(s)
		if !ok || got != k {
			t.Errorf("ParsePacketKind(%q) = %v, %v; want %v, true", s, got, ok, k)
		}
	}
	for _, k := range []PacketKind{0, PacketKind(len(kinds) + 1), 99} {
		if s := k.String(); s != fmt.Sprintf("PacketKind(%d)", uint8(k)) {
			t.Errorf("out-of-range kind %d stringified as %q", uint8(k), s)
		}
	}
	for _, s := range []string{"", "syn", "BOGUS", "PacketKind(1)"} {
		if k, ok := ParsePacketKind(s); ok {
			t.Errorf("ParsePacketKind(%q) accepted as %v", s, k)
		}
	}
}
