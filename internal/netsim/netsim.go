// Package netsim is a discrete-event, packet-level network simulator: the
// substrate for FLoc's functional evaluation (paper Section VI), standing
// in for ns-2.
//
// The simulator models hosts, routers, and unidirectional links. Every
// link serializes packets at its configured rate, delays them by its
// propagation latency, and queues excess arrivals in a pluggable queue
// discipline — which is where FLoc and the baseline defenses (DropTail,
// RED, RED-PD, Pushback) attach.
//
// Determinism: all randomness is drawn from the Network's seeded rng
// stream, events at equal times fire in schedule order, and map iteration
// never influences event order.
package netsim

import (
	"container/heap"
	"fmt"

	"floc/internal/pathid"
	"floc/internal/rng"
)

// PacketKind discriminates the packet types the simulator carries. The
// set is closed: every switch over it must be exhaustive (or carry a
// reasoned //floc:nonexhaustive waiver), so the planned pushback
// control frames break every dispatch site when they add kinds.
//
//floc:enum
type PacketKind uint8

// Packet kinds.
const (
	// KindSYN is a TCP connection request (also FLoc's capability request).
	KindSYN PacketKind = iota + 1
	// KindSYNACK is the server's connection accept.
	KindSYNACK
	// KindData is a TCP data segment.
	KindData
	// KindACK is a TCP acknowledgment.
	KindACK
	// KindUDP is connectionless traffic (CBR, Shrew, covert attack flows).
	KindUDP
)

// String implements fmt.Stringer.
func (k PacketKind) String() string {
	switch k {
	case KindSYN:
		return "SYN"
	case KindSYNACK:
		return "SYNACK"
	case KindData:
		return "DATA"
	case KindACK:
		return "ACK"
	case KindUDP:
		return "UDP"
	default:
		return fmt.Sprintf("PacketKind(%d)", uint8(k))
	}
}

// ParsePacketKind inverts String for the defined kinds, reporting
// whether the name was one of them. Capture tooling round-trips kinds
// through their names.
func ParsePacketKind(s string) (PacketKind, bool) {
	switch s {
	case "SYN":
		return KindSYN, true
	case "SYNACK":
		return KindSYNACK, true
	case "DATA":
		return KindData, true
	case "ACK":
		return KindACK, true
	case "UDP":
		return KindUDP, true
	default:
		return 0, false
	}
}

// FlowID identifies a flow by its endpoints.
type FlowID struct {
	Src, Dst uint32
}

// Packet is one simulated packet. Packets are allocated once at the source
// and passed by pointer; they must not be mutated after being sent except
// by the owning endpoint when reusing retransmission buffers.
type Packet struct {
	ID   uint64
	Src  uint32
	Dst  uint32
	Size int //floc:unit bytes (including headers)
	Kind PacketKind
	Seq  int // data sequence number (packets, not bytes)
	Ack  int // cumulative acknowledgment

	// Path is the domain path identifier stamped by the origin domain's
	// BGP speaker (paper Section III-A).
	Path pathid.PathID
	// PathKey optionally caches Path.Key() so per-packet admission does
	// not re-stringify the path; sources that send many packets on one
	// path should set it.
	PathKey string
	// PathHandle optionally carries the dense integer handle a router
	// assigned to Path (core.Router.InternPath). Zero means unset. A
	// handle is local to the router that issued it — the router tags its
	// handles and ignores foreign ones, falling back to PathKey/Path —
	// so stamping it is always safe and makes steady-state admission
	// hash-free.
	PathHandle uint32

	// Attack is ground truth used only by measurement code; no defense
	// reads it.
	Attack bool

	// Priority marks high-priority packets for the per-flow fairness
	// baseline of Section VII-C.
	Priority bool

	// SentAt is the time the packet left its origin.
	SentAt float64 //floc:unit seconds
}

// Flow returns the packet's flow identity.
// floc:hotpath
func (p *Packet) Flow() FlowID { return FlowID{Src: p.Src, Dst: p.Dst} }

// Endpoint consumes packets delivered by a link.
type Endpoint interface {
	// Receive handles a packet arriving at this endpoint at net.Now().
	Receive(net *Network, pkt *Packet)
}

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Network is the simulation engine. Create one with New, attach links and
// endpoints, schedule initial events, then Run.
type Network struct {
	events  eventHeap
	now     float64
	nextSeq uint64
	nextPkt uint64
	rng     *rng.Source
	stopped bool
}

// New returns an empty network whose random stream is seeded with seed.
func New(seed uint64) *Network {
	return &Network{rng: rng.New(seed)}
}

// Now returns the current simulation time in seconds.
func (n *Network) Now() float64 { return n.now }

// Rand returns the network's deterministic random source.
func (n *Network) Rand() *rng.Source { return n.rng }

// NextPacketID returns a fresh unique packet ID.
func (n *Network) NextPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// Schedule runs fn at time at (>= Now; earlier times are clamped to Now).
func (n *Network) Schedule(at float64, fn func()) {
	if at < n.now {
		at = n.now
	}
	n.nextSeq++
	heap.Push(&n.events, event{at: at, seq: n.nextSeq, fn: fn})
}

// ScheduleIn runs fn after delay seconds.
func (n *Network) ScheduleIn(delay float64, fn func()) {
	n.Schedule(n.now+delay, fn)
}

// Run processes events until the queue empties or simulation time exceeds
// until. It returns the final simulation time.
func (n *Network) Run(until float64) float64 {
	n.stopped = false
	for len(n.events) > 0 && !n.stopped {
		ev := n.events[0]
		if ev.at > until {
			n.now = until
			break
		}
		heap.Pop(&n.events)
		n.now = ev.at
		ev.fn()
	}
	if n.now < until && len(n.events) == 0 {
		n.now = until
	}
	return n.now
}

// Stop halts Run after the current event.
func (n *Network) Stop() { n.stopped = true }

// Pending returns the number of scheduled events, for tests.
func (n *Network) Pending() int { return len(n.events) }
