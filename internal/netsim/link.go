package netsim

import "fmt"

// Discipline is a link's queue management policy — the attachment point
// for FLoc and the baseline defenses. Implementations are driven entirely
// by the owning link: Enqueue on every arrival, Dequeue when the
// transmitter frees up.
type Discipline interface {
	// Enqueue offers an arriving packet to the queue at time now. It
	// returns false to drop the packet. Implementations that drop other
	// (already-queued) packets instead must report them via the link's
	// drop hook themselves; the simple disciplines never do.
	Enqueue(pkt *Packet, now float64) bool
	// Dequeue returns the next packet to transmit, or nil when empty.
	Dequeue(now float64) *Packet
	// Len returns the number of queued packets.
	Len() int
}

// LinkStats aggregates a link's lifetime counters.
type LinkStats struct {
	Enqueued  int
	Dropped   int
	Delivered int
	// DeliveredBytes counts payload delivered to the far endpoint.
	DeliveredBytes int64
}

// Link is a unidirectional link: a queue discipline, a serializing
// transmitter of fixed rate, and a propagation delay, delivering to a
// destination endpoint.
type Link struct {
	Name string

	rate  float64 //floc:unit bytes/s
	delay float64 //floc:unit seconds
	disc  Discipline
	dst   Endpoint

	busy  bool
	stats LinkStats

	// DropHook, if set, observes every packet dropped at enqueue.
	DropHook func(pkt *Packet, now float64)
	// DeliverHook, if set, observes every packet delivered to dst. The
	// experiment harness uses this on the flooded link to measure
	// per-flow/per-path bandwidth.
	DeliverHook func(pkt *Packet, now float64)
}

// NewLink creates a link with rate in bits per second (as network links
// are usually specified), propagation delay in seconds, queue discipline
// disc, and destination dst.
// floc:unit rateBits bits/s
// floc:unit delay seconds
func NewLink(name string, rateBits float64, delay float64, disc Discipline, dst Endpoint) (*Link, error) {
	if rateBits <= 0 {
		return nil, fmt.Errorf("netsim: link %s: non-positive rate %v", name, rateBits)
	}
	if delay < 0 {
		return nil, fmt.Errorf("netsim: link %s: negative delay %v", name, delay)
	}
	if disc == nil {
		return nil, fmt.Errorf("netsim: link %s: nil discipline", name)
	}
	if dst == nil {
		return nil, fmt.Errorf("netsim: link %s: nil destination", name)
	}
	//floclint:allow units bits-to-bytes: the 8 converts the configured bits/s to the stored bytes/s
	return &Link{Name: name, rate: rateBits / 8, delay: delay, disc: disc, dst: dst}, nil
}

// RateBits returns the link rate in bits per second.
// floc:unit return bits/s
//
//floclint:allow units bytes-to-bits: the 8 converts the stored bytes/s to bits/s
func (l *Link) RateBits() float64 { return l.rate * 8 }

// Delay returns the propagation delay in seconds.
// floc:unit return seconds
func (l *Link) Delay() float64 { return l.delay }

// Discipline returns the link's queue discipline.
func (l *Link) Discipline() Discipline { return l.disc }

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of packets currently queued.
func (l *Link) QueueLen() int { return l.disc.Len() }

// Send offers pkt to the link at the current simulation time.
func (l *Link) Send(net *Network, pkt *Packet) {
	now := net.Now()
	if !l.disc.Enqueue(pkt, now) {
		l.stats.Dropped++
		if l.DropHook != nil {
			l.DropHook(pkt, now)
		}
		return
	}
	l.stats.Enqueued++
	if !l.busy {
		l.startTransmission(net)
	}
}

// startTransmission pulls the next packet and schedules its wire time.
func (l *Link) startTransmission(net *Network) {
	pkt := l.disc.Dequeue(net.Now())
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := float64(pkt.Size) / l.rate
	net.ScheduleIn(txTime, func() {
		// Serialization complete: packet enters the wire.
		net.ScheduleIn(l.delay, func() {
			l.stats.Delivered++
			l.stats.DeliveredBytes += int64(pkt.Size)
			if l.DeliverHook != nil {
				l.DeliverHook(pkt, net.Now())
			}
			l.dst.Receive(net, pkt)
		})
		l.startTransmission(net)
	})
}

// FIFO is a bounded drop-tail queue: the "no defense" baseline. Dequeue is
// amortized O(1) via a head index with periodic compaction.
type FIFO struct {
	q    []*Packet
	head int
	cap  int
}

var _ Discipline = (*FIFO)(nil)

// NewFIFO returns a drop-tail queue holding at most capacity packets.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		capacity = 1
	}
	return &FIFO{cap: capacity}
}

// Enqueue implements Discipline.
// floc:hotpath
func (f *FIFO) Enqueue(pkt *Packet, _ float64) bool {
	if f.Len() >= f.cap {
		return false
	}
	f.q = append(f.q, pkt)
	return true
}

// Dequeue implements Discipline.
// floc:hotpath
func (f *FIFO) Dequeue(_ float64) *Packet {
	if f.head >= len(f.q) {
		return nil
	}
	pkt := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		for i := n; i < len(f.q); i++ {
			f.q[i] = nil
		}
		f.q = f.q[:n]
		f.head = 0
	}
	return pkt
}

// Len implements Discipline.
// floc:hotpath
func (f *FIFO) Len() int { return len(f.q) - f.head }

// Cap returns the queue capacity in packets.
func (f *FIFO) Cap() int { return f.cap }
