package netsim

import "fmt"

// Router forwards packets by destination address using a static FIB with a
// default route. Routers are where defended links attach: the defense is
// the queue discipline of the router's outgoing link.
type Router struct {
	Name string
	fib  map[uint32]*Link
	def  *Link
}

var _ Endpoint = (*Router)(nil)

// NewRouter returns a router with an empty FIB and no default route.
func NewRouter(name string) *Router {
	return &Router{Name: name, fib: map[uint32]*Link{}}
}

// AddRoute installs a host route for dst.
func (r *Router) AddRoute(dst uint32, l *Link) { r.fib[dst] = l }

// SetDefault installs the default route.
func (r *Router) SetDefault(l *Link) { r.def = l }

// Route returns the outgoing link for dst, or nil if unroutable.
func (r *Router) Route(dst uint32) *Link {
	if l, ok := r.fib[dst]; ok {
		return l
	}
	return r.def
}

// Receive implements Endpoint by forwarding the packet.
func (r *Router) Receive(net *Network, pkt *Packet) {
	l := r.Route(pkt.Dst)
	if l == nil {
		// Unroutable packets vanish; experiments treat this as a
		// configuration error surfaced by tests.
		return
	}
	l.Send(net, pkt)
}

// Agent is a transport endpoint living on a Host: a TCP source or sink, or
// an attack traffic generator.
type Agent interface {
	// Deliver hands the agent a packet addressed to its host from its peer.
	Deliver(net *Network, pkt *Packet)
}

// AgentFactory creates an agent on demand for an unknown peer (e.g. a TCP
// sink when the first SYN of a new connection arrives). It may return nil
// to ignore the peer.
type AgentFactory func(peer uint32) Agent

// Host is an end system with one access link and a set of transport
// agents keyed by peer address.
type Host struct {
	Name string
	Addr uint32

	out     *Link
	agents  map[uint32]Agent
	factory AgentFactory
}

var _ Endpoint = (*Host)(nil)

// NewHost creates a host with address addr.
func NewHost(name string, addr uint32) *Host {
	return &Host{Name: name, Addr: addr, agents: map[uint32]Agent{}}
}

// SetAccess sets the host's outgoing access link.
func (h *Host) SetAccess(l *Link) { h.out = l }

// SetFactory installs the on-demand agent factory (for servers).
func (h *Host) SetFactory(f AgentFactory) { h.factory = f }

// Attach registers an agent for a peer address. It returns an error if the
// peer already has an agent.
func (h *Host) Attach(peer uint32, a Agent) error {
	if _, ok := h.agents[peer]; ok {
		return fmt.Errorf("netsim: host %s already has an agent for peer %d", h.Name, peer)
	}
	h.agents[peer] = a
	return nil
}

// Agent returns the agent registered for peer, or nil.
func (h *Host) Agent(peer uint32) Agent { return h.agents[peer] }

// Send transmits a packet out the host's access link.
func (h *Host) Send(net *Network, pkt *Packet) {
	if h.out == nil {
		panic(fmt.Sprintf("netsim: host %s has no access link", h.Name))
	}
	h.out.Send(net, pkt)
}

// Receive implements Endpoint by dispatching to the agent for the
// packet's source, creating one via the factory if needed.
func (h *Host) Receive(net *Network, pkt *Packet) {
	a, ok := h.agents[pkt.Src]
	if !ok {
		if h.factory == nil {
			return
		}
		a = h.factory(pkt.Src)
		if a == nil {
			return
		}
		h.agents[pkt.Src] = a
	}
	a.Deliver(net, pkt)
}
