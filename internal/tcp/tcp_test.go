package tcp

import (
	"math"
	"testing"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// pair is a two-host test topology:
//
//	client --access--> router --bottleneck--> server
//	server --reverse(fast)--> client
type pair struct {
	net        *netsim.Network
	client     *netsim.Host
	server     *netsim.Host
	bottle     *netsim.Link
	bottleneck *netsim.FIFO
}

const (
	clientAddr = 1
	serverAddr = 2
)

func newPair(t *testing.T, bottleneckBits float64, delay float64, bufPkts int) *pair {
	t.Helper()
	net := netsim.New(7)
	client := netsim.NewHost("client", clientAddr)
	server := netsim.NewHost("server", serverAddr)
	router := netsim.NewRouter("r")

	fifo := netsim.NewFIFO(bufPkts)
	bottle, err := netsim.NewLink("bottleneck", bottleneckBits, delay, fifo, server)
	if err != nil {
		t.Fatal(err)
	}
	router.SetDefault(bottle)

	access, err := netsim.NewLink("access", bottleneckBits*10, delay, netsim.NewFIFO(1000), router)
	if err != nil {
		t.Fatal(err)
	}
	client.SetAccess(access)

	reverse, err := netsim.NewLink("reverse", bottleneckBits*10, delay, netsim.NewFIFO(10000), client)
	if err != nil {
		t.Fatal(err)
	}
	server.SetAccess(reverse)

	return &pair{net: net, client: client, server: server, bottle: bottle, bottleneck: fifo}
}

func (p *pair) flow(t *testing.T, totalPkts int) (*Source, *Sink) {
	t.Helper()
	src := NewSource(p.client, SourceConfig{
		Src: clientAddr, Dst: serverAddr,
		Path:         pathid.New(10, 1),
		TotalPackets: totalPkts,
	})
	if err := p.client.Attach(serverAddr, src); err != nil {
		t.Fatal(err)
	}
	sink := NewSink(p.server, clientAddr, pathid.New(20, 2))
	if err := p.server.Attach(clientAddr, sink); err != nil {
		t.Fatal(err)
	}
	return src, sink
}

func TestTransferCompletesUncongested(t *testing.T) {
	p := newPair(t, 10e6, 0.01, 100)
	src, sink := p.flow(t, 100)
	src.Start(p.net, 0)
	p.net.Run(60)

	if !src.Done() {
		t.Fatalf("transfer not done; sndUna-ish sink.Expected=%d", sink.Expected())
	}
	if sink.GoodputPackets != 100 {
		t.Fatalf("goodput = %d packets, want 100", sink.GoodputPackets)
	}
	if src.Retransmits() != 0 {
		t.Fatalf("retransmits = %d on clean path", src.Retransmits())
	}
	if src.CompletedAt() <= 0 {
		t.Fatal("no completion time")
	}
}

func TestOnCompleteCallback(t *testing.T) {
	p := newPair(t, 10e6, 0.01, 100)
	var doneAt float64
	src := NewSource(p.client, SourceConfig{
		Src: clientAddr, Dst: serverAddr, Path: pathid.New(10, 1),
		TotalPackets: 10,
		OnComplete:   func(now float64) { doneAt = now },
	})
	if err := p.client.Attach(serverAddr, src); err != nil {
		t.Fatal(err)
	}
	if err := p.server.Attach(clientAddr, NewSink(p.server, clientAddr, nil)); err != nil {
		t.Fatal(err)
	}
	src.Start(p.net, 1.0)
	p.net.Run(30)
	if doneAt <= 1.0 {
		t.Fatalf("OnComplete at %v", doneAt)
	}
}

func TestSRTTEstimate(t *testing.T) {
	// One-way delay 25 ms on each of 2 forward hops + 25 ms reverse:
	// RTT = 2*0.025 (client->server via access+bottleneck) + 0.025 back,
	// plus serialization. SRTT should be within 2x of 75 ms.
	p := newPair(t, 10e6, 0.025, 100)
	src, _ := p.flow(t, 200)
	src.Start(p.net, 0)
	p.net.Run(60)
	if !src.Done() {
		t.Fatal("not done")
	}
	rtt := src.SRTT()
	if rtt < 0.05 || rtt > 0.2 {
		t.Fatalf("SRTT = %v, want ~0.075", rtt)
	}
}

func TestCongestionCausesRetransmitsButNoLoss(t *testing.T) {
	// Slow bottleneck, small buffer: heavy drops, yet the transfer must
	// complete with exact in-order delivery.
	p := newPair(t, 1e6, 0.01, 8)
	src, sink := p.flow(t, 500)
	src.Start(p.net, 0)
	p.net.Run(300)
	if !src.Done() {
		t.Fatalf("transfer stalled: delivered %d/500", sink.Expected())
	}
	if sink.GoodputPackets != 500 {
		t.Fatalf("goodput = %d, want exactly 500", sink.GoodputPackets)
	}
	if src.Retransmits() == 0 {
		t.Fatal("no retransmits despite tiny buffer")
	}
	if p.bottle.Stats().Dropped == 0 {
		t.Fatal("no drops at bottleneck")
	}
}

func TestCwndCapRespected(t *testing.T) {
	p := newPair(t, 100e6, 0.001, 1000)
	src := NewSource(p.client, SourceConfig{
		Src: clientAddr, Dst: serverAddr, Path: pathid.New(10, 1),
		TotalPackets: 0, MaxCwnd: 8,
	})
	if err := p.client.Attach(serverAddr, src); err != nil {
		t.Fatal(err)
	}
	if err := p.server.Attach(clientAddr, NewSink(p.server, clientAddr, nil)); err != nil {
		t.Fatal(err)
	}
	src.Start(p.net, 0)
	// Sample cwnd during the run.
	maxSeen := 0.0
	for i := 1; i <= 50; i++ {
		at := float64(i) * 0.1
		p.net.Schedule(at, func() {
			if src.Cwnd() > maxSeen {
				maxSeen = src.Cwnd()
			}
		})
	}
	p.net.Run(6)
	if maxSeen > 8 {
		t.Fatalf("cwnd reached %v, cap 8", maxSeen)
	}
	if src.Done() {
		t.Fatal("unbounded flow claims completion")
	}
	if src.SentData() == 0 {
		t.Fatal("persistent flow sent nothing")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two identical flows over one 2 Mb/s bottleneck: each should get
	// roughly half, and together they should keep the link busy.
	net := netsim.New(11)
	server := netsim.NewHost("server", serverAddr)
	router := netsim.NewRouter("r")
	rback := netsim.NewRouter("rback")
	fifo := netsim.NewFIFO(50)
	bottle, err := netsim.NewLink("bottleneck", 2e6, 0.01, fifo, server)
	if err != nil {
		t.Fatal(err)
	}
	router.SetDefault(bottle)
	reverse, err := netsim.NewLink("rev", 20e6, 0.01, netsim.NewFIFO(1000), rback)
	if err != nil {
		t.Fatal(err)
	}
	server.SetAccess(reverse)

	var sinks []*Sink
	for i := 0; i < 2; i++ {
		addr := uint32(100 + i)
		client := netsim.NewHost("c", addr)
		access, err := netsim.NewLink("a", 20e6, 0.005, netsim.NewFIFO(100), router)
		if err != nil {
			t.Fatal(err)
		}
		client.SetAccess(access)
		back, err := netsim.NewLink("back", 20e6, 0.005, netsim.NewFIFO(1000), client)
		if err != nil {
			t.Fatal(err)
		}
		rback.AddRoute(addr, back)

		src := NewSource(client, SourceConfig{
			Src: addr, Dst: serverAddr, Path: pathid.New(10, 1), TotalPackets: 0,
			// Cap windows below the buffer so neither deterministic flow
			// can monopolize the drop-tail queue (lockout).
			MaxCwnd: 12,
		})
		if err := client.Attach(serverAddr, src); err != nil {
			t.Fatal(err)
		}
		sink := NewSink(server, addr, nil)
		if err := server.Attach(addr, sink); err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, sink)
		src.Start(net, float64(i)*0.1)
	}

	net.Run(30)
	g0, g1 := float64(sinks[0].GoodputPackets), float64(sinks[1].GoodputPackets)
	if g0 == 0 || g1 == 0 {
		t.Fatalf("a flow starved: %v, %v", g0, g1)
	}
	ratio := g0 / g1
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair split: %v vs %v", g0, g1)
	}
	// Aggregate utilization: ~2 Mb/s for ~30 s = ~7500 packets of 1000 B;
	// expect at least half of that.
	if total := g0 + g1; total < 4000 {
		t.Fatalf("aggregate goodput too low: %v packets", total)
	}
	_ = math.Pi
}

func TestGoBackNRecoversFromWindowLoss(t *testing.T) {
	// Drop a whole window mid-transfer via a gate discipline, then
	// verify the source recovers promptly (go-back-N after RTO) instead
	// of one-hole-per-RTO crawling.
	net := netsim.New(21)
	client := netsim.NewHost("c", clientAddr)
	server := netsim.NewHost("s", serverAddr)
	router := netsim.NewRouter("r")

	gate := &gateDisc{inner: netsim.NewFIFO(100)}
	bottle, err := netsim.NewLink("b", 10e6, 0.01, gate, server)
	if err != nil {
		t.Fatal(err)
	}
	router.SetDefault(bottle)
	access, err := netsim.NewLink("a", 100e6, 0.005, netsim.NewFIFO(100), router)
	if err != nil {
		t.Fatal(err)
	}
	client.SetAccess(access)
	reverse, err := netsim.NewLink("rev", 100e6, 0.005, netsim.NewFIFO(1000), client)
	if err != nil {
		t.Fatal(err)
	}
	server.SetAccess(reverse)

	src := NewSource(client, SourceConfig{
		Src: clientAddr, Dst: serverAddr, Path: pathid.New(1), TotalPackets: 2000,
	})
	if err := client.Attach(serverAddr, src); err != nil {
		t.Fatal(err)
	}
	sink := NewSink(server, clientAddr, nil)
	if err := server.Attach(clientAddr, sink); err != nil {
		t.Fatal(err)
	}
	src.Start(net, 0)
	// Black-hole the forward path for 2 seconds mid-transfer.
	net.Schedule(1.0, func() { gate.blocked = true })
	net.Schedule(3.0, func() { gate.blocked = false })
	net.Run(60)
	if !src.Done() {
		t.Fatalf("transfer did not recover: %d/2000 delivered", sink.Expected())
	}
	if sink.GoodputPackets != 2000 {
		t.Fatalf("goodput = %d", sink.GoodputPackets)
	}
	// Recovery should take seconds, not tens of seconds.
	if src.CompletedAt() > 30 {
		t.Fatalf("recovery too slow: completed at %v", src.CompletedAt())
	}
}

// gateDisc drops everything while blocked.
type gateDisc struct {
	inner   *netsim.FIFO
	blocked bool
}

func (g *gateDisc) Enqueue(pkt *netsim.Packet, now float64) bool {
	if g.blocked {
		return false
	}
	return g.inner.Enqueue(pkt, now)
}
func (g *gateDisc) Dequeue(now float64) *netsim.Packet { return g.inner.Dequeue(now) }
func (g *gateDisc) Len() int                           { return g.inner.Len() }

func TestRTOBackoffResetsOnProgress(t *testing.T) {
	// After heavy loss and recovery, subsequent clean transfers must not
	// inherit a backed-off RTO: measured indirectly via completion time.
	p := newPair(t, 2e6, 0.01, 6)
	src, sink := p.flow(t, 1500)
	src.Start(p.net, 0)
	p.net.Run(120)
	if !src.Done() {
		t.Fatalf("stalled at %d/1500", sink.Expected())
	}
	// 1500 pkts * 8000 bits / 2 Mb/s = 6 s of pure transmission; allow
	// generous loss overhead but catch multi-RTO crawling.
	if src.CompletedAt() > 60 {
		t.Fatalf("completion at %v, RTO crawl suspected", src.CompletedAt())
	}
}

func TestSinkBuffersOutOfOrder(t *testing.T) {
	net := netsim.New(1)
	server := netsim.NewHost("s", serverAddr)
	client := netsim.NewHost("c", clientAddr)
	rev, err := netsim.NewLink("rev", 100e6, 0.001, netsim.NewFIFO(100), client)
	if err != nil {
		t.Fatal(err)
	}
	server.SetAccess(rev)
	sink := NewSink(server, clientAddr, nil)
	deliver := func(seq int) {
		sink.Deliver(net, &netsim.Packet{
			Src: clientAddr, Dst: serverAddr, Size: 1000,
			Kind: netsim.KindData, Seq: seq,
		})
	}
	deliver(0)
	deliver(2) // gap at 1
	deliver(3)
	if sink.Expected() != 1 {
		t.Fatalf("expected = %d, want 1", sink.Expected())
	}
	deliver(1) // fill the hole: cumulative jump to 4
	if sink.Expected() != 4 {
		t.Fatalf("expected = %d, want 4", sink.Expected())
	}
	if sink.GoodputPackets != 4 {
		t.Fatalf("goodput = %d", sink.GoodputPackets)
	}
	// Duplicate delivery does not double-count.
	deliver(2)
	if sink.GoodputPackets != 4 {
		t.Fatalf("duplicate counted: %d", sink.GoodputPackets)
	}
}
