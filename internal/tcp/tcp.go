// Package tcp implements per-packet TCP Reno endpoints for the netsim
// simulator: a Source that performs a SYN handshake, congestion avoidance
// with slow start, fast retransmit on triple duplicate ACKs, and
// retransmission timeouts; and a Sink that acknowledges cumulatively.
//
// The model is deliberately at the granularity the FLoc paper needs:
// sequence numbers count packets (not bytes), there is no SACK, and flow
// control is a fixed receive-window cap. What matters for the paper's
// evaluation — AIMD window dynamics, drop-driven rate adaptation, RTT
// dependence, and the SYN-to-first-data pattern FLoc uses to measure RTT —
// is all faithfully reproduced.
package tcp

import (
	"math"

	"floc/internal/netsim"
	"floc/internal/pathid"
)

// Sizes of simulated packets in bytes.
const (
	// CtlSize is the size of SYN, SYN-ACK and ACK packets.
	CtlSize = 40
	// DefaultDataSize is the default data packet size.
	DefaultDataSize = 1000
)

// Default protocol parameters.
const (
	defaultInitialCwnd = 2.0
	defaultMaxCwnd     = 64.0
	defaultInitialRTO  = 1.0
	minRTO             = 0.2
	maxRTO             = 8.0
)

// SourceConfig configures a TCP source.
type SourceConfig struct {
	// Src and Dst are the flow's endpoint addresses.
	Src, Dst uint32
	// Path is the domain path identifier stamped on every packet.
	Path pathid.PathID
	// TotalPackets is the transfer length in data packets; 0 means
	// unbounded (a persistent flow).
	TotalPackets int
	// DataSize is the data packet size in bytes (default DefaultDataSize).
	DataSize int
	// MaxCwnd caps the congestion window in packets (default 64).
	MaxCwnd float64
	// Attack labels the flow's packets as ground-truth attack traffic
	// (used by high-population TCP attack sources). No defense reads it.
	Attack bool
	// OnComplete, if set, runs when the last data packet is acknowledged.
	OnComplete func(now float64)
}

// Source is the sending TCP endpoint. It must be attached to a Host (as
// the agent for the destination address) and started with Start.
type Source struct {
	cfg     SourceConfig
	host    *netsim.Host
	pathKey string

	state    srcState
	cwnd     float64
	ssthresh float64
	nextSeq  int
	sndUna   int
	dupacks  int

	srtt     float64
	rttvar   float64
	rto      float64
	hasSRTT  bool
	rtoGen   uint64 // invalidates stale RTO timers
	rtoArmed bool

	sendTimes map[int]float64 // seq -> first-send time (Karn: deleted on rexmit)

	// Stats.
	sentData    int
	retransmits int
	completedAt float64
	startedAt   float64
	synSentAt   float64
}

type srcState uint8

const (
	stateIdle srcState = iota
	stateSYNSent
	stateEstablished
	stateDone
)

var _ netsim.Agent = (*Source)(nil)

// NewSource creates a TCP source on host for cfg. The caller must also
// Attach it to the host for peer cfg.Dst.
func NewSource(host *netsim.Host, cfg SourceConfig) *Source {
	if cfg.DataSize <= 0 {
		cfg.DataSize = DefaultDataSize
	}
	if cfg.MaxCwnd <= 0 {
		cfg.MaxCwnd = defaultMaxCwnd
	}
	return &Source{
		cfg:       cfg,
		host:      host,
		pathKey:   cfg.Path.Key(),
		cwnd:      defaultInitialCwnd,
		ssthresh:  cfg.MaxCwnd,
		rto:       defaultInitialRTO,
		sendTimes: map[int]float64{},
	}
}

// Start schedules connection establishment at time at.
func (s *Source) Start(net *netsim.Network, at float64) {
	net.Schedule(at, func() {
		if s.state != stateIdle {
			return
		}
		s.state = stateSYNSent
		s.startedAt = net.Now()
		s.sendSYN(net)
	})
}

func (s *Source) sendSYN(net *netsim.Network) {
	s.synSentAt = net.Now()
	s.host.Send(net, &netsim.Packet{
		ID: net.NextPacketID(), Src: s.cfg.Src, Dst: s.cfg.Dst,
		Size: CtlSize, Kind: netsim.KindSYN, Path: s.cfg.Path, PathKey: s.pathKey,
		Attack: s.cfg.Attack, SentAt: net.Now(),
	})
	// SYN retransmission timer.
	gen := s.bumpRTO()
	net.ScheduleIn(s.rto, func() { s.onRTO(net, gen) })
}

// Deliver implements netsim.Agent (packets from the peer arrive here).
func (s *Source) Deliver(net *netsim.Network, pkt *netsim.Packet) {
	//floc:nonexhaustive a source consumes only the reverse-path SYNACK/ACK; forward kinds are what it emits
	switch pkt.Kind {
	case netsim.KindSYNACK:
		if s.state != stateSYNSent {
			return
		}
		s.state = stateEstablished
		s.sampleRTT(net.Now() - s.synSentAt)
		s.disarmRTO()
		s.trySend(net)
	case netsim.KindACK:
		if s.state != stateEstablished {
			return
		}
		s.onACK(net, pkt.Ack)
	default:
		// Sources ignore stray data.
	}
}

// onACK processes a cumulative acknowledgment for all seq < ack.
func (s *Source) onACK(net *netsim.Network, ack int) {
	if ack > s.sndUna {
		newly := ack - s.sndUna
		// RTT sample from the highest newly acked, if never retransmitted.
		if t0, ok := s.sendTimes[ack-1]; ok {
			s.sampleRTT(net.Now() - t0)
		}
		for seq := s.sndUna; seq < ack; seq++ {
			delete(s.sendTimes, seq)
		}
		s.sndUna = ack
		s.dupacks = 0
		// Progress clears exponential backoff (the next timeout starts
		// from the smoothed estimate again).
		if s.hasSRTT {
			s.rto = clampRTO(s.srtt + 4*s.rttvar)
		}
		// Window growth: slow start below ssthresh, else congestion
		// avoidance (+1 per window per RTT).
		for i := 0; i < newly; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++
			} else {
				s.cwnd += 1 / s.cwnd
			}
			if s.cwnd > s.cfg.MaxCwnd {
				s.cwnd = s.cfg.MaxCwnd
			}
		}
		if s.cfg.TotalPackets > 0 && s.sndUna >= s.cfg.TotalPackets {
			s.finish(net)
			return
		}
		s.armRTO(net)
		s.trySend(net)
		return
	}
	// Duplicate ACK.
	s.dupacks++
	if s.dupacks == 3 {
		// Fast retransmit + (simplified) fast recovery.
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		s.retransmit(net, s.sndUna)
		s.armRTO(net)
	}
}

func (s *Source) finish(net *netsim.Network) {
	if s.state == stateDone {
		return
	}
	s.state = stateDone
	s.completedAt = net.Now()
	s.disarmRTO()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(net.Now())
	}
}

// trySend transmits new data while the window allows.
func (s *Source) trySend(net *netsim.Network) {
	for {
		inflight := s.nextSeq - s.sndUna
		if float64(inflight) >= s.cwnd {
			return
		}
		if s.cfg.TotalPackets > 0 && s.nextSeq >= s.cfg.TotalPackets {
			return
		}
		seq := s.nextSeq
		s.nextSeq++
		s.sendTimes[seq] = net.Now()
		s.sendData(net, seq)
	}
}

func (s *Source) sendData(net *netsim.Network, seq int) {
	s.sentData++
	s.host.Send(net, &netsim.Packet{
		ID: net.NextPacketID(), Src: s.cfg.Src, Dst: s.cfg.Dst,
		Size: s.cfg.DataSize, Kind: netsim.KindData, Seq: seq,
		Path: s.cfg.Path, PathKey: s.pathKey, Attack: s.cfg.Attack, SentAt: net.Now(),
	})
	if !s.rtoArmed {
		s.armRTO(net)
	}
}

func (s *Source) retransmit(net *netsim.Network, seq int) {
	s.retransmits++
	delete(s.sendTimes, seq) // Karn: never sample a retransmitted segment
	s.sendData(net, seq)
}

// sampleRTT updates SRTT/RTTVAR/RTO per RFC 6298.
func (s *Source) sampleRTT(sample float64) {
	if sample <= 0 {
		return
	}
	if !s.hasSRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasSRTT = true
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-sample)
		s.srtt = (1-alpha)*s.srtt + alpha*sample
	}
	s.rto = clampRTO(s.srtt + 4*s.rttvar)
}

func clampRTO(v float64) float64 {
	if v < minRTO {
		return minRTO
	}
	if v > maxRTO {
		return maxRTO
	}
	return v
}

// bumpRTO invalidates outstanding timers and returns the new generation.
func (s *Source) bumpRTO() uint64 {
	s.rtoGen++
	s.rtoArmed = true
	return s.rtoGen
}

func (s *Source) disarmRTO() {
	s.rtoGen++
	s.rtoArmed = false
}

// armRTO (re)starts the retransmission timer.
func (s *Source) armRTO(net *netsim.Network) {
	gen := s.bumpRTO()
	net.ScheduleIn(s.rto, func() { s.onRTO(net, gen) })
}

// onRTO fires when the retransmission timer expires.
func (s *Source) onRTO(net *netsim.Network, gen uint64) {
	if gen != s.rtoGen || s.state == stateDone {
		return
	}
	switch s.state {
	case stateSYNSent:
		s.rto = clampRTO(s.rto * 2)
		s.sendSYN(net)
	case stateEstablished:
		if s.nextSeq == s.sndUna {
			// Nothing outstanding.
			s.rtoArmed = false
			return
		}
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = 1
		s.dupacks = 0
		s.rto = clampRTO(s.rto * 2)
		// Go-back-N: after a timeout the sender assumes everything
		// unacknowledged was lost and rewinds its send point; slow start
		// re-clocks the rest (cumulative ACKs skip whatever the receiver
		// had buffered).
		s.retransmit(net, s.sndUna)
		s.nextSeq = s.sndUna + 1
		s.armRTO(net)
	default:
	}
}

// Cwnd returns the current congestion window in packets.
func (s *Source) Cwnd() float64 { return s.cwnd }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Source) SRTT() float64 { return s.srtt }

// Done reports whether the transfer completed.
func (s *Source) Done() bool { return s.state == stateDone }

// CompletedAt returns the completion time (0 if not done).
func (s *Source) CompletedAt() float64 { return s.completedAt }

// Retransmits returns the number of retransmitted data packets.
func (s *Source) Retransmits() int { return s.retransmits }

// SentData returns the number of data packet transmissions (including
// retransmissions).
func (s *Source) SentData() int { return s.sentData }

// Sink is the receiving TCP endpoint: it completes the handshake and sends
// one cumulative ACK per received data packet.
type Sink struct {
	addr    uint32
	peer    uint32
	host    *netsim.Host
	path    pathid.PathID // path identifier for the reverse direction
	pathKey string

	expected int
	buffered map[int]bool

	// GoodputPackets counts in-order data packets delivered to the
	// application.
	GoodputPackets int
	// GoodputBytes counts in-order data bytes.
	GoodputBytes int64
}

var _ netsim.Agent = (*Sink)(nil)

// NewSink creates a sink on host (address host.Addr) for packets from
// peer. Reverse-direction packets carry path identifier reversePath.
func NewSink(host *netsim.Host, peer uint32, reversePath pathid.PathID) *Sink {
	return &Sink{addr: host.Addr, peer: peer, host: host, path: reversePath, pathKey: reversePath.Key(), buffered: map[int]bool{}}
}

// Deliver implements netsim.Agent.
func (k *Sink) Deliver(net *netsim.Network, pkt *netsim.Packet) {
	//floc:nonexhaustive a sink answers the forward-path SYN/Data; reverse kinds and UDP are not addressed to it
	switch pkt.Kind {
	case netsim.KindSYN:
		k.send(net, netsim.KindSYNACK, 0)
	case netsim.KindData:
		if pkt.Seq == k.expected {
			k.expected++
			k.GoodputPackets++
			k.GoodputBytes += int64(pkt.Size)
			for k.buffered[k.expected] {
				delete(k.buffered, k.expected)
				k.expected++
				k.GoodputPackets++
				k.GoodputBytes += int64(pkt.Size)
			}
		} else if pkt.Seq > k.expected {
			k.buffered[pkt.Seq] = true
		}
		k.send(net, netsim.KindACK, k.expected)
	default:
	}
}

func (k *Sink) send(net *netsim.Network, kind netsim.PacketKind, ack int) {
	k.host.Send(net, &netsim.Packet{
		ID: net.NextPacketID(), Src: k.addr, Dst: k.peer,
		Size: CtlSize, Kind: kind, Ack: ack, Path: k.path, PathKey: k.pathKey,
		SentAt: net.Now(),
	})
}

// Expected returns the next expected sequence number (== in-order packets
// received).
func (k *Sink) Expected() int { return k.expected }
