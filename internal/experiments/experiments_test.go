package experiments

import (
	"strings"
	"testing"
)

// testScale keeps experiment tests fast: a 50 Mb/s target link, 3 legit
// sources per leaf, 6 bots per attack leaf.
const testScale = 0.1

// skipIfShort marks a test that runs a full (multi-second) simulation.
// The race gate in scripts/check.sh uses -short because race
// instrumentation slows these runs ~15x, blowing the package timeout;
// the simulations themselves are single-threaded, so they add no race
// coverage beyond what the fast tests already exercise.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full simulation run; skipped in -short mode")
	}
}

func shortScenario(def DefenseKind, atk AttackKind) Scenario {
	sc := DefaultScenario(def, atk, testScale)
	sc.Duration = 30
	sc.MeasureFrom = 10
	return sc
}

func TestRunValidation(t *testing.T) {
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.Scale = 0
	if _, err := Run(sc); err == nil {
		t.Fatal("zero scale accepted")
	}
	sc = shortScenario(DefFLoc, AttackCBR)
	sc.Duration = 5
	sc.MeasureFrom = 10
	if _, err := Run(sc); err == nil {
		t.Fatal("inverted window accepted")
	}
	sc = shortScenario("bogus", AttackCBR)
	if _, err := Run(sc); err == nil {
		t.Fatal("unknown defense accepted")
	}
	sc = shortScenario(DefFLoc, "bogus")
	if _, err := Run(sc); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestNoAttackBaselineHealthy(t *testing.T) {
	skipIfShort(t)
	m, err := Run(shortScenario(DefRED, AttackNone))
	if err != nil {
		t.Fatal(err)
	}
	if m.Utilization < 0.7 {
		t.Fatalf("no-attack utilization = %v", m.Utilization)
	}
	if got := m.ClassShare(ClassAttack); got != 0 {
		t.Fatalf("attack share without attack = %v", got)
	}
	cdf := m.FlowBandwidthCDF(ClassLegitLegit)
	if cdf.N() < 50 {
		t.Fatalf("too few measured flows: %d", cdf.N())
	}
	// Fair share is ~0.617 Mb/s per flow; the median should be in a
	// plausible band around it.
	if med := cdf.Quantile(0.5); med < 0.2e6 || med > 1.5e6 {
		t.Fatalf("median flow bandwidth = %v", med)
	}
}

func TestFLocConfinesCBRAttack(t *testing.T) {
	skipIfShort(t)
	floc, err := Run(shortScenario(DefFLoc, AttackCBR))
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Run(shortScenario(DefDropTail, AttackCBR))
	if err != nil {
		t.Fatal(err)
	}
	// No defense: the 144% overload CBR attack takes essentially the
	// whole link.
	if nd.ClassShare(ClassLegitLegit) > 0.15 {
		t.Fatalf("droptail legit share = %v, attack too weak", nd.ClassShare(ClassLegitLegit))
	}
	// FLoc: legitimate paths keep the great majority of the link (paper
	// Fig. 8: ~84%).
	if got := floc.ClassShare(ClassLegitLegit); got < 0.6 {
		t.Fatalf("FLoc legit share = %v, want >= 0.6", got)
	}
	// Attack flows confined well below their offered 144%.
	if got := floc.ClassShare(ClassAttack); got > 0.3 {
		t.Fatalf("FLoc attack share = %v, want <= 0.3", got)
	}
	if floc.Utilization < 0.8 {
		t.Fatalf("FLoc wastes the link: utilization %v", floc.Utilization)
	}
}

func TestFLocDifferentialGuaranteesWithinAttackPaths(t *testing.T) {
	skipIfShort(t)
	m, err := Run(shortScenario(DefFLoc, AttackCBR))
	if err != nil {
		t.Fatal(err)
	}
	legit := m.FlowBandwidthCDF(ClassLegitAttackPath)
	attack := m.FlowBandwidthCDF(ClassAttack)
	if legit.N() == 0 || attack.N() == 0 {
		t.Fatalf("missing flows: legit=%d attack=%d", legit.N(), attack.N())
	}
	// Paper: "legitimate flows of contaminated domains are guaranteed
	// substantially higher bandwidth than attack flows" (per flow).
	if legit.Mean() <= attack.Mean() {
		t.Fatalf("per-flow differential failed: legit %v <= attack %v", legit.Mean(), attack.Mean())
	}
	// And no legitimate flow is denied service outright.
	if legit.Quantile(0.1) <= 0 {
		t.Fatalf("some legit attack-path flows fully starved: p10=%v", legit.Quantile(0.1))
	}
}

func TestFLocAttackPathsFlagged(t *testing.T) {
	skipIfShort(t)
	m, err := Run(shortScenario(DefFLoc, AttackCBR))
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, p := range m.FLocPaths {
		if p.Attack {
			flagged[p.Key] = true
		}
	}
	for key := range m.AttackPathKeys {
		if !flagged[key] {
			t.Errorf("contaminated path %s not flagged", key)
		}
	}
	// At most one transiently misflagged legitimate path.
	extra := 0
	for key := range flagged {
		if !m.AttackPathKeys[key] {
			extra++
		}
	}
	if extra > 2 {
		t.Fatalf("%d legitimate paths misflagged", extra)
	}
}

func TestFLocShrewHandledLikeCBR(t *testing.T) {
	skipIfShort(t)
	shrew, err := Run(shortScenario(DefFLoc, AttackShrew))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the Shrew attack is handled at least as well as the CBR
	// attack" — legit share stays high.
	if got := shrew.ClassShare(ClassLegitLegit); got < 0.55 {
		t.Fatalf("FLoc legit share under Shrew = %v", got)
	}
}

func TestFLocHighPopulationTCPEqualPaths(t *testing.T) {
	skipIfShort(t)
	m, err := Run(shortScenario(DefFLoc, AttackTCPPop))
	if err != nil {
		t.Fatal(err)
	}
	// Per-path bandwidths should be nearly identical regardless of
	// population (paper Fig. 6(a)): compare mean path bandwidth of
	// attack vs legit paths over the window.
	var legitSum, atkSum float64
	var legitN, atkN int
	for key := range m.PerPathBits {
		bw := m.PathBandwidth(key, 10, 30)
		if m.AttackPathKeys[key] {
			atkSum += bw
			atkN++
		} else {
			legitSum += bw
			legitN++
		}
	}
	if legitN == 0 || atkN == 0 {
		t.Fatal("paths missing")
	}
	legitMean, atkMean := legitSum/float64(legitN), atkSum/float64(atkN)
	ratio := atkMean / legitMean
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("per-path bandwidth not equalized: attack/legit = %v", ratio)
	}
}

func TestFLocAggregationUnderSMax(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.SMax = 25
	m, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FLocAggregates) == 0 {
		t.Fatal("no aggregates despite SMax=25 and 27 paths")
	}
	aggregated := 0
	for _, members := range m.FLocAggregates {
		aggregated += len(members)
		for _, member := range members {
			if !m.AttackPathKeys[member] {
				t.Errorf("legit path %s aggregated", member)
			}
		}
	}
	if aggregated < 2 {
		t.Fatalf("only %d paths aggregated", aggregated)
	}
}

func TestCovertAttackCountermeasure(t *testing.T) {
	skipIfShort(t)
	// Fanout 8 at 0.2 Mb/s per flow: each source sends 1.6 Mb/s spread
	// over 8 "legitimate-looking" flows.
	base := shortScenario(DefFLoc, AttackCovert)
	base.AttackRateBits = 0.2e6
	base.CovertFanout = 8

	withNMax := base
	withNMax.NMax = 2
	protected, err := Run(withNMax)
	if err != nil {
		t.Fatal(err)
	}
	unprotected, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// The n_max capability restriction must reduce the covert attack's
	// take.
	pa, ua := protected.ClassShare(ClassAttack), unprotected.ClassShare(ClassAttack)
	if pa >= ua {
		t.Fatalf("n_max did not help: attack share %v (nmax=2) vs %v (off)", pa, ua)
	}
	legit := protected.ClassShare(ClassLegitLegit) + protected.ClassShare(ClassLegitAttackPath)
	if legit < 0.5 {
		t.Fatalf("legit share under covert attack with nmax: %v", legit)
	}
}

func TestFig4ModelTable(t *testing.T) {
	tab := Fig4(10, 8)
	if len(tab.Rows) != 22 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "Fig.4") || !strings.Contains(out, "utilization") {
		t.Fatalf("bad rendering:\n%s", out)
	}
	// Unsynchronized column is flat; synchronized ranges [nW/2, nW].
	first, last := tab.Rows[0], tab.Rows[19]
	if first.Values[0] != last.Values[0] {
		t.Fatal("unsync request not flat")
	}
	if first.Values[1] >= last.Values[1] {
		t.Fatal("sync request not increasing")
	}
}

func TestFig2And3Smoke(t *testing.T) {
	skipIfShort(t)
	t2, err := Fig2(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 10 {
		t.Fatalf("fig2 rows = %d", len(t2.Rows))
	}
	// Service rate must dwarf drop rate for legitimate TCP (paper Fig. 2).
	var svc, drop float64
	for _, r := range t2.Rows {
		svc += r.Values[0]
		drop += r.Values[1]
	}
	if svc <= 10*drop {
		t.Fatalf("service %v not >> drops %v", svc, drop)
	}

	t3, err := Fig3(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) < 2 {
		t.Fatalf("fig3 rows = %d", len(t3.Rows))
	}
	// The distribution must include both control-sized and full-sized
	// packets.
	var small, big bool
	for _, r := range t3.Rows {
		if r.Values[0] < 100 {
			small = true
		}
		if r.Values[0] > 1200 {
			big = true
		}
	}
	if !small || !big {
		t.Fatalf("size mix missing: small=%v big=%v", small, big)
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(30, 0.1) != 3 || scaleCount(30, 1) != 30 || scaleCount(1, 0.01) != 1 {
		t.Fatal("scaleCount wrong")
	}
}

func TestAttackLeaves(t *testing.T) {
	leaves := attackLeavesFor(27)
	if len(leaves) != 6 {
		t.Fatalf("attack leaves = %v", leaves)
	}
	if len(attackLeavesFor(3)) != 2 || len(attackLeavesFor(1)) != 1 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestFlowClassString(t *testing.T) {
	if ClassLegitLegit.String() == "" || ClassAttack.String() == "" ||
		ClassLegitAttackPath.String() == "" || FlowClass(9).String() != "unknown" {
		t.Fatal("class strings wrong")
	}
}

func TestFigInternetSmoke(t *testing.T) {
	cfg, err := DefaultInetFigConfig("fig13", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profiles = cfg.Profiles[:1]
	cfg.Ticks = 200
	cfg.WarmupTicks = 80
	tab, err := FigInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(InetScenarios()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Shape: FLoc-NA legit share beats ND's.
	var nd, na float64
	for _, r := range tab.Rows {
		legit := r.Values[0] + r.Values[1]
		switch {
		case len(r.Label) >= 2 && r.Label[len(r.Label)-2:] == "ND":
			nd = legit
		case len(r.Label) >= 7 && r.Label[len(r.Label)-7:] == "FLoc-NA":
			na = legit
		}
	}
	if na <= nd {
		t.Fatalf("FLoc-NA (%v) did not beat ND (%v)", na, nd)
	}
	// Invalid scale rejected.
	cfg.Scale = 0
	if _, err := FigInternet(cfg); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestFigInternetConfigs(t *testing.T) {
	for _, fig := range []string{"fig13", "fig14", "fig15"} {
		cfg, err := DefaultInetFigConfig(fig, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if fig == "fig14" && cfg.AttackASes != 300 {
			t.Fatalf("fig14 attack ASes = %d", cfg.AttackASes)
		}
		if fig == "fig15" && !cfg.Separated {
			t.Fatal("fig15 not separated")
		}
	}
	if _, err := DefaultInetFigConfig("fig1", 0.1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigTopologySmoke(t *testing.T) {
	tab, err := FigTopology(100, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[2] != 100 {
			t.Fatalf("attack ASes = %v", r.Values[2])
		}
	}
}

func TestAblationFlagsPlumbed(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.NoPreferentialDrop = true
	sc.NoEscalation = true
	m, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Without preferential drops, per-path guarantees still confine the
	// attack to roughly its aggregate path allocation (6/27).
	if got := m.ClassShare(ClassAttack); got > 0.35 {
		t.Fatalf("attack share without pref drops = %v", got)
	}
	if got := m.ClassShare(ClassLegitLegit); got < 0.5 {
		t.Fatalf("legit share without pref drops = %v", got)
	}
}

func TestPushbackUpstreamPropagation(t *testing.T) {
	skipIfShort(t)
	local := shortScenario(DefPushback, AttackCBR)
	lm, err := Run(local)
	if err != nil {
		t.Fatal(err)
	}
	up := local
	up.PushbackUpstream = true
	um, err := Run(up)
	if err != nil {
		t.Fatal(err)
	}
	if lm.PushbackUpstreamDrops != 0 {
		t.Fatalf("local mode reports upstream drops: %d", lm.PushbackUpstreamDrops)
	}
	if um.PushbackUpstreamDrops == 0 {
		t.Fatal("upstream mode shed nothing upstream")
	}
	// Shedding upstream must not make the bottleneck outcome worse for
	// legitimate traffic.
	if um.ClassShare(ClassLegitLegit) < lm.ClassShare(ClassLegitLegit)*0.7 {
		t.Fatalf("upstream mode hurt legit share: %v vs %v",
			um.ClassShare(ClassLegitLegit), lm.ClassShare(ClassLegitLegit))
	}
}

func TestTimedAttacksHandled(t *testing.T) {
	skipIfShort(t)
	// FLoc's MTD-based identification keys on behaviour, not sustained
	// volume, so timed attacks must not do materially better against it
	// than the steady CBR attack.
	for _, atk := range []AttackKind{AttackOnOff, AttackRolling} {
		m, err := Run(shortScenario(DefFLoc, atk))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.ClassShare(ClassLegitLegit); got < 0.55 {
			t.Fatalf("FLoc legit share under %s = %v", atk, got)
		}
		// The long-run attack average equals the CBR attack's; the
		// admitted share must stay bounded.
		if got := m.ClassShare(ClassAttack); got > 0.35 {
			t.Fatalf("attack share under %s = %v", atk, got)
		}
	}
}

func TestReplicate(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.Duration = 15
	sc.MeasureFrom = 5
	rep, err := Replicate(sc, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Share[ClassLegitLegit].N() != 3 {
		t.Fatalf("runs = %d", rep.Share[ClassLegitLegit].N())
	}
	if rep.Share[ClassLegitLegit].Mean() <= 0 {
		t.Fatal("zero legit share across seeds")
	}
	row := rep.Row("floc")
	if len(row.Values) != len(ReplicationColumns) {
		t.Fatalf("row width %d != %d", len(row.Values), len(ReplicationColumns))
	}
	if _, err := Replicate(sc, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestTableJSON(t *testing.T) {
	tab := Fig4(4, 8)
	out, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `"title"`) || !strings.Contains(s, `"rows"`) {
		t.Fatalf("bad JSON: %s", s[:120])
	}
}

func TestScalableModePreservesConfinement(t *testing.T) {
	skipIfShort(t)
	// The Section V-B efficient design must preserve the headline
	// confinement result within a modest margin of the exact mode.
	exact, err := Run(shortScenario(DefFLoc, AttackCBR))
	if err != nil {
		t.Fatal(err)
	}
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.ScalableMode = true
	scalable, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	e, s := exact.ClassShare(ClassLegitLegit), scalable.ClassShare(ClassLegitLegit)
	if s < e-0.2 {
		t.Fatalf("scalable mode lost confinement: %v vs exact %v", s, e)
	}
	if scalable.ClassShare(ClassAttack) > 0.4 {
		t.Fatalf("scalable mode attack share %v", scalable.ClassShare(ClassAttack))
	}
}

func TestFLocNoAttackFairnessComparableToRED(t *testing.T) {
	skipIfShort(t)
	// Paper Fig. 7: "FLoc provides per-flow fairness comparable to that
	// of the RED queue in the normal (no-attack) case".
	red, err := Run(shortScenario(DefRED, AttackNone))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Run(shortScenario(DefFLoc, AttackNone))
	if err != nil {
		t.Fatal(err)
	}
	rc, fc := red.FlowBandwidthCDF(ClassLegitLegit), fl.FlowBandwidthCDF(ClassLegitLegit)
	if fc.N() == 0 {
		t.Fatal("no FLoc flows measured")
	}
	// Medians within 35% of each other and utilization comparable.
	ratio := fc.Quantile(0.5) / rc.Quantile(0.5)
	if ratio < 0.65 || ratio > 1.55 {
		t.Fatalf("median ratio FLoc/RED = %v", ratio)
	}
	if fl.Utilization < red.Utilization-0.15 {
		t.Fatalf("FLoc wastes capacity without attack: %v vs %v", fl.Utilization, red.Utilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.Duration = 15
	sc.MeasureFrom = 5
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []FlowClass{ClassLegitLegit, ClassLegitAttackPath, ClassAttack} {
		if a.ClassShare(cls) != b.ClassShare(cls) {
			t.Fatalf("%v share differs across identical runs: %v vs %v",
				cls, a.ClassShare(cls), b.ClassShare(cls))
		}
	}
	if a.Utilization != b.Utilization {
		t.Fatalf("utilization differs: %v vs %v", a.Utilization, b.Utilization)
	}
	if len(a.FlowBits) != len(b.FlowBits) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.FlowBits), len(b.FlowBits))
	}
	for f, bits := range a.FlowBits {
		if b.FlowBits[f] != bits {
			t.Fatalf("flow %v bits differ", f)
		}
	}
}
