package experiments

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"floc/internal/core"
	"floc/internal/telemetry"
)

// TestTraceReplayMatchesSnapshot is the observability acceptance test: a
// full FLoc attack run with the event trace enabled must emit an NDJSON
// stream from which the per-domain admission counters, the aggregation
// membership, and the final queue mode reconstruct *exactly* — the trace
// is a faithful journal of the run, not a sampled approximation.
func TestTraceReplayMatchesSnapshot(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.SMax = 25 // force attack-path aggregation so transitions appear
	sc.TraceCapacity = 1 << 20
	m, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Tel.Trace
	if tr == nil {
		t.Fatal("TraceCapacity set but no trace attached")
	}
	if tr.Overwritten() != 0 {
		t.Fatalf("trace overwrote %d events; replay would be incomplete", tr.Overwritten())
	}

	// Round-trip through the NDJSON exporter: the replay below reads only
	// the decoded stream, never the in-memory ring.
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != tr.Len() {
		t.Fatalf("round-trip lost events: %d decoded, %d in ring", len(events), tr.Len())
	}

	snap := m.FLocSnapshot

	var admitted, dropped int64
	admittedByPath := map[string]int64{}
	droppedByPath := map[string]int64{}
	dropsByReason := map[string]int64{}
	member := map[string]string{} // origin path -> aggregate key
	mode := core.ModeUncongested.String()
	lastControlRun := 0.0
	for _, e := range events {
		switch e.Type {
		case telemetry.EventPacketAdmitted:
			admitted++
			admittedByPath[e.Path]++
		case telemetry.EventPacketDropped:
			dropped++
			droppedByPath[e.Path]++
			dropsByReason[e.Reason]++
		case telemetry.EventPathExpired:
			// Expiry deletes the origin state: counters restart if the
			// path reappears, and the next plan rebuild drops it from
			// its aggregate without a release event.
			delete(admittedByPath, e.Path)
			delete(droppedByPath, e.Path)
			delete(member, e.Path)
		case telemetry.EventPathAggregated:
			member[e.Path] = e.Agg
		case telemetry.EventPathReleased:
			if member[e.Path] == e.Agg {
				delete(member, e.Path)
			}
		case telemetry.EventModeChanged:
			mode = e.Mode
		case telemetry.EventControlRunCompleted:
			lastControlRun = e.Value
		}
	}

	// Lifetime counters.
	if admitted != snap.Admitted {
		t.Errorf("replayed admitted = %d, snapshot %d", admitted, snap.Admitted)
	}
	if admitted+dropped != snap.Arrived {
		t.Errorf("replayed arrived = %d, snapshot %d", admitted+dropped, snap.Arrived)
	}
	for reason, want := range snap.Drops {
		if got := dropsByReason[reason]; got != want {
			t.Errorf("replayed drops[%s] = %d, snapshot %d", reason, got, want)
		}
	}
	for reason := range dropsByReason {
		if _, ok := snap.Drops[reason]; !ok {
			t.Errorf("replayed unknown drop reason %q", reason)
		}
	}

	// Per-domain counters: every live path's tallies must match, and the
	// replay must not have invented or retained extra domains.
	snapPaths := map[string]bool{}
	for _, p := range snap.Paths {
		snapPaths[p.Key] = true
		if got := admittedByPath[p.Key]; got != p.AdmittedPackets {
			t.Errorf("path %s: replayed admitted = %d, snapshot %d", p.Key, got, p.AdmittedPackets)
		}
		if got := droppedByPath[p.Key]; got != p.DroppedPackets {
			t.Errorf("path %s: replayed dropped = %d, snapshot %d", p.Key, got, p.DroppedPackets)
		}
	}
	for key := range admittedByPath {
		if !snapPaths[key] {
			t.Errorf("replayed path %s absent from snapshot", key)
		}
	}
	for key := range droppedByPath {
		if !snapPaths[key] {
			t.Errorf("replayed dropped-path %s absent from snapshot", key)
		}
	}

	// Aggregation membership reconstructed from the transition events.
	replayAggs := map[string][]string{}
	for path, agg := range member {
		replayAggs[agg] = append(replayAggs[agg], path)
	}
	for _, members := range replayAggs {
		sort.Strings(members)
	}
	if len(replayAggs) == 0 {
		t.Error("no aggregation transitions replayed despite SMax pressure")
	}
	if !reflect.DeepEqual(replayAggs, snap.Aggregates) {
		t.Errorf("replayed aggregates = %v, snapshot %v", replayAggs, snap.Aggregates)
	}

	// Final mode and control-run count.
	if mode != snap.Mode.String() {
		t.Errorf("replayed mode = %s, snapshot %s", mode, snap.Mode)
	}
	if int(lastControlRun) != snap.ControlRuns {
		t.Errorf("last ControlRunCompleted run = %v, snapshot %d", lastControlRun, snap.ControlRuns)
	}
}
