package experiments

import (
	"bytes"
	"strings"
	"testing"

	"floc/internal/ledger"
	"floc/internal/telemetry"
)

// TestTraceReplayMatchesSnapshot is the observability acceptance test: a
// full FLoc attack run with the event trace enabled must emit an NDJSON
// stream from which the per-domain admission counters, the aggregation
// membership, and the final queue mode reconstruct *exactly* — the trace
// is a faithful journal of the run, not a sampled approximation. The
// reconstruction itself is ledger.Replay/Diff, the same fold floctrace
// uses on sealed evidence, so this test also pins the forensic tool to
// the live router's semantics.
func TestTraceReplayMatchesSnapshot(t *testing.T) {
	skipIfShort(t)
	sc := shortScenario(DefFLoc, AttackCBR)
	sc.SMax = 25 // force attack-path aggregation so transitions appear
	sc.TraceCapacity = 1 << 20
	m, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Tel.Trace
	if tr == nil {
		t.Fatal("TraceCapacity set but no trace attached")
	}
	if tr.Overwritten() != 0 {
		t.Fatalf("trace overwrote %d events; replay would be incomplete", tr.Overwritten())
	}

	// Round-trip through the NDJSON exporter: the replay below reads only
	// the decoded stream, never the in-memory ring.
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != tr.Len() {
		t.Fatalf("round-trip lost events: %d decoded, %d in ring", len(events), tr.Len())
	}

	res := ledger.Replay(events)
	if len(res.Aggregates) == 0 {
		t.Error("no aggregation transitions replayed despite SMax pressure")
	}
	if diffs := res.Diff(m.FLocSnapshot); len(diffs) != 0 {
		t.Errorf("replayed events do not reproduce the snapshot:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}
