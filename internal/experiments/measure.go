package experiments

import (
	"floc/internal/core"
	"floc/internal/netsim"
	"floc/internal/stats"
	"floc/internal/telemetry"
	"floc/internal/topology"
	"floc/internal/units"
)

// FlowClass categorizes a flow for the differential-guarantee metrics.
type FlowClass uint8

// Flow classes (paper Figs. 8, 13-15).
const (
	// ClassLegitLegit: legitimate flow from an uncontaminated domain.
	ClassLegitLegit FlowClass = iota + 1
	// ClassLegitAttackPath: legitimate flow from a contaminated domain.
	ClassLegitAttackPath
	// ClassAttack: attack flow.
	ClassAttack
)

// String implements fmt.Stringer.
func (c FlowClass) String() string {
	switch c {
	case ClassLegitLegit:
		return "legit/legit-path"
	case ClassLegitAttackPath:
		return "legit/attack-path"
	case ClassAttack:
		return "attack"
	default:
		return "unknown"
	}
}

// Recorder series names for the target-link tallies (Fig. 2).
const (
	// SeriesService counts packets serviced per second at the target link.
	SeriesService = "target_service"
	// SeriesDrop counts packets dropped per second at the target link.
	SeriesDrop = "target_drop"
)

// Measurement collects everything the figures need from one run, by
// observing deliveries over the target link.
type Measurement struct {
	// Tel is the run's telemetry: the registry and recorder are always on
	// (the recorder's series are the source of truth for the target-link
	// tallies below); the event trace is enabled by Scenario.TraceCapacity.
	Tel *telemetry.Telemetry

	// PerPathBits accumulates delivered payload bits per path identifier
	// in 1-second bins (full run, for Fig. 6 time series).
	PerPathBits map[string]*stats.TimeSeries
	// FlowBits accumulates per-flow delivered bits within the
	// measurement window.
	FlowBits map[netsim.FlowID]float64 //floc:unit bits
	// FlowClasses labels each observed flow.
	FlowClasses map[netsim.FlowID]FlowClass
	// FlowPaths records each observed flow's path identifier key.
	FlowPaths map[netsim.FlowID]string
	// ClassBits accumulates per-class delivered bits within the window.
	ClassBits map[FlowClass]float64 //floc:unit bits
	// SizeHist counts delivered packet sizes over the whole run (Fig. 3).
	SizeHist *stats.Histogram

	// Filled by finish:

	// TargetBits is the target link capacity.
	TargetBits float64 //floc:unit bits/s
	// Window is the measurement window length in seconds.
	Window float64 //floc:unit seconds
	// Utilization is delivered bits in the window / capacity.
	Utilization float64 //floc:unit ratio
	// AttackPathKeys marks the contaminated domains' path keys.
	AttackPathKeys map[string]bool
	// LeafKeys[i] is leaf domain i's path identifier key.
	LeafKeys []string
	// FLocPaths snapshots FLoc's per-path state at the end (nil for
	// other defenses).
	FLocPaths []core.PathInfo
	// FLocAggregates snapshots FLoc's aggregates.
	FLocAggregates map[string][]string
	// FLocSnapshot is FLoc's end-of-run counter snapshot (zero value for
	// other defenses).
	FLocSnapshot core.Snapshot
	// PushbackUpstreamDrops counts packets shed by propagated upstream
	// limiters (Pushback with upstream propagation only).
	PushbackUpstreamDrops int

	measureFrom, measureTo float64 //floc:unit seconds
}

// newMeasurement wires delivery/drop hooks onto the tree's target link.
// traceCap > 0 additionally enables the event trace ring.
// floc:unit from seconds
// floc:unit to seconds
func newMeasurement(tree *topology.Tree, attackLeaves []int, from, to float64, traceCap int) *Measurement {
	m := &Measurement{
		Tel: telemetry.New(telemetry.Options{
			TraceCapacity:    traceCap,
			Recorder:         true,
			RecorderBinWidth: 1.0,
		}),
		PerPathBits:    map[string]*stats.TimeSeries{},
		FlowBits:       map[netsim.FlowID]float64{},
		FlowClasses:    map[netsim.FlowID]FlowClass{},
		FlowPaths:      map[netsim.FlowID]string{},
		ClassBits:      map[FlowClass]float64{},
		SizeHist:       stats.NewHistogram(0, 1600, 40),
		AttackPathKeys: map[string]bool{},
		measureFrom:    from,
		measureTo:      to,
	}
	for _, leaf := range attackLeaves {
		m.AttackPathKeys[tree.Path(leaf).Key()] = true
	}
	for i := 0; i < tree.NumLeaves(); i++ {
		m.LeafKeys = append(m.LeafKeys, tree.Path(i).Key())
	}
	m.TargetBits = tree.Target.RateBits()

	// Target-link tallies live in the telemetry recorder and registry; the
	// handles are resolved once so the hooks stay allocation-free.
	serviceSeries := m.Tel.Recorder.Series(SeriesService)
	dropSeries := m.Tel.Recorder.Series(SeriesDrop)
	delivered := m.Tel.Registry.Counter("floc_target_delivered_packets_total",
		"packets serviced by the target link", "packets")
	droppedAtTarget := m.Tel.Registry.Counter("floc_target_dropped_packets_total",
		"packets dropped at the target link", "packets")

	tree.Target.DeliverHook = func(pkt *netsim.Packet, now float64) {
		serviceSeries.Add(now, 1)
		delivered.Inc()
		m.SizeHist.Add(float64(pkt.Size))
		if pkt.Kind != netsim.KindData && pkt.Kind != netsim.KindUDP {
			return
		}
		bits := float64(units.FromPacket(pkt.Size))
		key := pkt.PathKey
		if key == "" {
			key = pkt.Path.Key()
		}
		ts := m.PerPathBits[key]
		if ts == nil {
			ts = stats.NewTimeSeries(1.0)
			m.PerPathBits[key] = ts
		}
		ts.Add(now, bits)

		if now < m.measureFrom || now > m.measureTo {
			return
		}
		flow := pkt.Flow()
		if _, ok := m.FlowClasses[flow]; !ok {
			m.FlowClasses[flow] = m.classify(pkt, key)
			m.FlowPaths[flow] = key
		}
		m.FlowBits[flow] += bits
		m.ClassBits[m.FlowClasses[flow]] += bits
	}
	tree.Target.DropHook = func(pkt *netsim.Packet, now float64) {
		dropSeries.Add(now, 1)
		droppedAtTarget.Inc()
	}
	return m
}

// ServiceBins returns per-second packets serviced at the target link.
func (m *Measurement) ServiceBins() []float64 { return m.Tel.Recorder.Series(SeriesService).Bins() }

// DropBins returns per-second packets dropped at the target link.
func (m *Measurement) DropBins() []float64 { return m.Tel.Recorder.Series(SeriesDrop).Bins() }

// DeliveredPackets returns the registry's target-link service count.
// floc:unit return packets
func (m *Measurement) DeliveredPackets() int64 {
	return m.Tel.Registry.CounterValue("floc_target_delivered_packets_total")
}

// DroppedPackets returns the registry's target-link drop count.
// floc:unit return packets
func (m *Measurement) DroppedPackets() int64 {
	return m.Tel.Registry.CounterValue("floc_target_dropped_packets_total")
}

func (m *Measurement) classify(pkt *netsim.Packet, pathKey string) FlowClass {
	switch {
	case pkt.Attack:
		return ClassAttack
	case m.AttackPathKeys[pathKey]:
		return ClassLegitAttackPath
	default:
		return ClassLegitLegit
	}
}

// finish computes derived metrics after the run.
func (m *Measurement) finish(sc Scenario, flocRtr *core.Router) {
	m.Window = m.measureTo - m.measureFrom
	total := 0.0 //floc:unit bits
	for _, bits := range m.ClassBits {
		total += bits
	}
	if m.TargetBits > 0 && m.Window > 0 {
		m.Utilization = total / (m.TargetBits * m.Window)
	}
	if flocRtr != nil {
		m.FLocPaths = flocRtr.PathInfos()
		m.FLocAggregates = flocRtr.Aggregates()
		m.FLocSnapshot = flocRtr.Snapshot()
	}
	_ = sc
}

// ClassShare returns a class's fraction of link capacity over the window.
// floc:unit return ratio
func (m *Measurement) ClassShare(c FlowClass) float64 {
	if m.TargetBits <= 0 || m.Window <= 0 {
		return 0
	}
	return m.ClassBits[c] / (m.TargetBits * m.Window)
}

// FlowBandwidthCDF returns the per-flow delivered-bandwidth CDF (bits/s
// over the window) for flows of the given class.
func (m *Measurement) FlowBandwidthCDF(c FlowClass) *stats.CDF {
	cdf := &stats.CDF{}
	for flow, bits := range m.FlowBits {
		if m.FlowClasses[flow] == c && m.Window > 0 {
			cdf.Add(bits / m.Window)
		}
	}
	return cdf
}

// FlowBandwidthCDFForPaths returns the per-flow bandwidth CDF restricted
// to flows of the given class whose path key satisfies keep.
func (m *Measurement) FlowBandwidthCDFForPaths(c FlowClass, keep func(pathKey string) bool) *stats.CDF {
	cdf := &stats.CDF{}
	for flow, bits := range m.FlowBits {
		if m.FlowClasses[flow] == c && keep(m.FlowPaths[flow]) && m.Window > 0 {
			cdf.Add(bits / m.Window)
		}
	}
	return cdf
}

// PathBandwidth returns a path's mean delivered bandwidth (bits/s) over
// [from, to].
// floc:unit from seconds
// floc:unit to seconds
// floc:unit return bits/s
func (m *Measurement) PathBandwidth(pathKey string, from, to float64) float64 {
	ts := m.PerPathBits[pathKey]
	if ts == nil || to <= from {
		return 0
	}
	return ts.RangeTotal(from, to) / (to - from)
}

// MeanPathSeries averages the per-second bandwidth series (bits/s) over
// the given path keys, up to maxSeconds bins.
func (m *Measurement) MeanPathSeries(keys []string, maxSeconds int) []float64 {
	out := make([]float64, maxSeconds)
	if len(keys) == 0 {
		return out
	}
	for _, key := range keys {
		ts := m.PerPathBits[key]
		if ts == nil {
			continue
		}
		bins := ts.Bins()
		for i := 0; i < maxSeconds && i < len(bins); i++ {
			out[i] += bins[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(keys))
	}
	return out
}
