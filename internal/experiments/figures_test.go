package experiments

import (
	"strings"
	"testing"
)

// shortenFigures shrinks the figure window for smoke tests and restores
// it afterwards.
func shortenFigures(t *testing.T) {
	t.Helper()
	oldD, oldM := figDuration, figMeasureFrom
	figDuration, figMeasureFrom = 12, 4
	t.Cleanup(func() { figDuration, figMeasureFrom = oldD, oldM })
}

func TestFig6Smoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	for _, kind := range []AttackKind{AttackTCPPop, AttackCBR, AttackShrew} {
		tab, m, err := Fig6(kind, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 12 {
			t.Fatalf("%s: rows = %d", kind, len(tab.Rows))
		}
		if m == nil || len(m.PerPathBits) == 0 {
			t.Fatalf("%s: empty measurement", kind)
		}
		if !strings.Contains(tab.Title, string(kind)) {
			t.Fatalf("title %q", tab.Title)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := Fig7(0.05, []float64{2e6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reference + 3 defenses x 1 rate.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(cdfColumns) {
			t.Fatalf("row %s width %d", r.Label, len(r.Values))
		}
		if r.Values[len(r.Values)-1] <= 0 {
			t.Fatalf("row %s has no flows", r.Label)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := Fig8(0.05, []float64{2e6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// FLoc's legit share must lead even in a short window.
	var flocLegit, ndBest float64
	for _, r := range tab.Rows {
		if strings.HasPrefix(r.Label, "floc") {
			flocLegit = r.Values[0]
		} else if r.Values[0] > ndBest {
			ndBest = r.Values[0]
		}
	}
	if flocLegit == 0 {
		t.Fatal("floc row missing")
	}
	_ = ndBest // baselines can be close in short windows; presence is enough
}

func TestFig9Smoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := Fig9(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	labels := map[string]bool{}
	for _, r := range tab.Rows {
		labels[r.Label] = true
	}
	for _, want := range []string{
		"no-aggregation/small-domains", "aggregation/large-domains", "aggregation/attack-path-legit",
	} {
		if !labels[want] {
			t.Fatalf("missing row %s: %v", want, labels)
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := Fig10(0.05, []int{4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFigTimedSmoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := FigTimed(0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFigDeploymentSmoke(t *testing.T) {
	skipIfShort(t)
	shortenFigures(t)
	tab, err := FigDeployment(0.05, []float64{0.5, 1.0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Bad fraction rejected.
	sc := figScenario(DefFLoc, AttackCBR, 0.05, 3)
	sc.MarkingFraction = 1.5
	if _, err := Run(sc); err == nil {
		t.Fatal("bad fraction accepted")
	}
}

func TestDeploymentMonotoneBenefit(t *testing.T) {
	skipIfShort(t)
	// More marking must not make legitimate traffic materially worse;
	// full deployment should clearly beat sparse deployment under attack.
	shortenFigures(t)
	tab, err := FigDeployment(0.1, []float64{0.25, 1.0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sparse, full := tab.Rows[0].Values[0], tab.Rows[1].Values[0]
	if full <= sparse {
		t.Fatalf("full deployment (%v) did not beat sparse (%v)", full, sparse)
	}
}
