// Package experiments defines the paper's evaluation scenarios (Sections
// VI and VII) as runnable, parameterized experiments: one function per
// figure, each returning the data series the figure plots.
//
// Scale: every functional experiment takes a Scale factor that shrinks
// the topology (hosts and link rates together), preserving per-flow fair
// shares and attack-to-capacity ratios, so tests and benchmarks can run
// the same scenarios in seconds while `cmd/flocsim` reproduces the
// paper's full size.
package experiments

import (
	"fmt"

	"floc/internal/core"
	"floc/internal/defense"
	"floc/internal/netsim"
	"floc/internal/pathid"
	"floc/internal/tcp"
	"floc/internal/topology"
	"floc/internal/traffic"
)

// DefenseKind names the queue discipline protecting the target link.
type DefenseKind string

// Defenses under evaluation.
const (
	// DefFLoc is the paper's contribution.
	DefFLoc DefenseKind = "floc"
	// DefPushback is aggregate-based local ACC.
	DefPushback DefenseKind = "pushback"
	// DefREDPD is per-flow preferential dropping.
	DefREDPD DefenseKind = "red-pd"
	// DefRED is a plain RED queue (the no-attack fairness reference).
	DefRED DefenseKind = "red"
	// DefDropTail is no defense at all.
	DefDropTail DefenseKind = "droptail"
)

// AttackKind names the attack traffic model (Section VI-A).
type AttackKind string

// Attack models.
const (
	// AttackNone runs only legitimate traffic.
	AttackNone AttackKind = "none"
	// AttackTCPPop is the high-population TCP attack: extra TCP sources
	// in contaminated domains.
	AttackTCPPop AttackKind = "tcp-pop"
	// AttackCBR is constant-bit-rate flooding.
	AttackCBR AttackKind = "cbr"
	// AttackShrew is the pulsed low-rate attack.
	AttackShrew AttackKind = "shrew"
	// AttackCovert is the multi-destination covert attack.
	AttackCovert AttackKind = "covert"
	// AttackOnOff is the timed on-off attack of Section II: bots
	// synchronously alternate seconds-long full-rate bursts with silence
	// to evade defenses that react to sustained overload.
	AttackOnOff AttackKind = "on-off"
	// AttackRolling is the timed rolling attack of Section II: the
	// contaminated domains take turns attacking, moving the flood's
	// origin before location-based filters converge.
	AttackRolling AttackKind = "rolling"
)

// Scenario fully describes one functional-evaluation run.
type Scenario struct {
	Defense DefenseKind
	Attack  AttackKind

	// Scale shrinks hosts and link rates together (1.0 = paper scale:
	// 500 Mb/s target, 30 legit sources/leaf, 60 bots/attack leaf).
	Scale float64
	// AttackRateBits is the per-bot rate for CBR/Shrew, and the per-flow
	// rate for covert attacks (paper: 2.0 Mb/s CBR, 0.2 Mb/s covert).
	AttackRateBits float64
	// CovertFanout is the number of concurrent destinations per covert
	// source (paper: 1..20).
	CovertFanout int

	// SMax enables FLoc attack-path aggregation when > 0 (paper: 25).
	SMax int
	// LegitAgg enables FLoc legitimate-path aggregation.
	LegitAgg bool
	// NMax enables FLoc's covert countermeasure (paper: 2).
	NMax int
	// SmallLeaves lists leaf domains given half the legitimate sources
	// (the Fig. 9 scenario).
	SmallLeaves []int
	// DataSizes, when set, assigns legitimate sources data packet sizes
	// round-robin (the Fig. 3 packet-size-mix scenario).
	DataSizes []int
	// NoPreferentialDrop and NoEscalation are FLoc ablations.
	NoPreferentialDrop, NoEscalation bool
	// PushbackUpstream propagates Pushback's aggregate limits to rate
	// limiters at the leaf-domain uplinks (the pushback protocol
	// proper), instead of enforcing only at the congested router.
	PushbackUpstream bool
	// ScalableMode enables the full Section V-B efficient design at
	// once: drop-ratio flow counting, probabilistic filter updates, and
	// probabilistic array selection (k=2 of 4).
	ScalableMode bool
	// MarkingFraction is the fraction of leaf domains whose BGP speakers
	// stamp path identifiers (Section III-A: marking "can be adopted by
	// individual domains independently and incrementally"). Domains that
	// do not mark send unmarked packets, which the router lumps into one
	// shared identifier. 0 means 1.0 (full deployment).
	MarkingFraction float64

	// TraceCapacity, when > 0, enables the telemetry event trace with a
	// ring of that many events (the registry and recorder are always on).
	TraceCapacity int

	// Duration is total simulated seconds (paper: 80); measurement covers
	// [MeasureFrom, Duration] (paper: 20..80).
	Duration    float64
	MeasureFrom float64

	Seed uint64
}

// DefaultScenario returns the paper's base setup at the given scale.
func DefaultScenario(def DefenseKind, atk AttackKind, scale float64) Scenario {
	return Scenario{
		Defense:        def,
		Attack:         atk,
		Scale:          scale,
		AttackRateBits: 2e6,
		CovertFanout:   1,
		Duration:       80,
		MeasureFrom:    20,
		Seed:           7,
	}
}

// Fixed scenario constants (paper Section VI).
const (
	paperTargetBits   = 500e6
	paperLegitPerLeaf = 30
	paperBotsPerLeaf  = 60
	paperFilePackets  = 12000 // 12 MB of 1000-byte packets
	bufferSecs        = 0.064 // target buffer: 64 ms worth of packets
)

// attackLeavesFor returns the six contaminated leaf domains: three pairs
// of siblings, so attack-path aggregation has shared parents to use.
func attackLeavesFor(numLeaves int) []int {
	if numLeaves >= 27 {
		return []int{3, 4, 12, 13, 21, 22}
	}
	// Degenerate small trees: first two leaves.
	if numLeaves >= 2 {
		return []int{0, 1}
	}
	return []int{0}
}

// built is a fully constructed scenario ready to run.
type built struct {
	sc       Scenario
	net      *netsim.Network
	tree     *topology.Tree
	meas     *Measurement
	flocRtr  *core.Router      // nil unless Defense == DefFLoc
	pushback *defense.Pushback // nil unless Defense == DefPushback
	red      *defense.RED      // nil unless Defense == DefRED
	// unmarkedLeaf reports whether a leaf domain does not deploy path
	// marking (nil = full deployment).
	unmarkedLeaf func(leaf int) bool
}

// unmarkedPath is the shared identifier the router attributes unmarked
// traffic to.
var unmarkedPath = pathid.New(0)

// pathOf returns the path identifier leaf-domain sources stamp (or the
// shared unmarked identifier under partial deployment).
func (b *built) pathOf(leaf int) pathid.PathID {
	if b.unmarkedLeaf != nil && b.unmarkedLeaf(leaf) {
		return unmarkedPath
	}
	return b.tree.Path(leaf)
}

// build constructs the network, defense, sources and measurement hooks.
func build(sc Scenario) (*built, error) {
	if sc.Scale <= 0 || sc.Scale > 1 {
		return nil, fmt.Errorf("experiments: scale %v out of (0,1]", sc.Scale)
	}
	if sc.MarkingFraction < 0 || sc.MarkingFraction > 1 {
		return nil, fmt.Errorf("experiments: marking fraction %v out of [0,1]", sc.MarkingFraction)
	}
	if sc.Duration <= sc.MeasureFrom {
		return nil, fmt.Errorf("experiments: duration %v <= measure-from %v", sc.Duration, sc.MeasureFrom)
	}
	net := netsim.New(sc.Seed)

	targetBits := paperTargetBits * sc.Scale //floc:unit bits/s
	bufPkts := int(targetBits * bufferSecs / 8 / 1000)
	if bufPkts < 50 {
		bufPkts = 50
	}

	b := &built{sc: sc, net: net}
	disc, err := b.buildDefense(targetBits, bufPkts)
	if err != nil {
		return nil, err
	}

	treeCfg := topology.DefaultTreeConfig()
	treeCfg.TargetRateBits = targetBits
	treeCfg.InnerRateBits = 4 * targetBits
	treeCfg.BufferPackets = bufPkts * 4
	treeCfg.NumServers = 25
	if sc.PushbackUpstream && b.pushback != nil {
		pb := b.pushback
		treeCfg.UplinkDisc = func(depth int, path pathid.PathID) netsim.Discipline {
			if depth != treeCfg.Height {
				return nil // limiters only at leaf-domain uplinks
			}
			lim := defense.NewLimiter(netsim.NewFIFO(treeCfg.BufferPackets))
			pb.AttachUpstream(path.Key(), lim)
			return lim
		}
	}
	tree, err := topology.NewTree(net, treeCfg, disc)
	if err != nil {
		return nil, err
	}
	b.tree = tree

	attackLeaves := attackLeavesFor(tree.NumLeaves())
	smallLeaf := map[int]bool{}
	for _, l := range sc.SmallLeaves {
		smallLeaf[l] = true
	}

	b.meas = newMeasurement(tree, attackLeaves, sc.MeasureFrom, sc.Duration, sc.TraceCapacity)

	// Every defense that exposes a telemetry seam shares the run's registry
	// so figures and dumps read one surface regardless of the discipline.
	switch {
	case b.flocRtr != nil:
		b.flocRtr.SetTelemetry(b.meas.Tel)
	case b.pushback != nil:
		b.pushback.SetTelemetry(b.meas.Tel.Registry)
	case b.red != nil:
		b.red.SetTelemetry(b.meas.Tel.Registry)
	}

	// Incremental deployment: only the first MarkingFraction of leaf
	// domains stamp path identifiers; the rest send unmarked traffic that
	// the router can only attribute to a single shared identifier.
	if sc.MarkingFraction > 0 && sc.MarkingFraction < 1 {
		marked := int(sc.MarkingFraction*float64(tree.NumLeaves()) + 0.5)
		b.unmarkedLeaf = func(leaf int) bool { return leaf >= marked }
	}

	// Legitimate sources: persistent TCP transfers started in [0, 5).
	legitPerLeaf := scaleCount(paperLegitPerLeaf, sc.Scale)
	serverIdx := 0
	legitIdx := 0
	for leaf := 0; leaf < tree.NumLeaves(); leaf++ {
		n := legitPerLeaf
		if smallLeaf[leaf] {
			n = (legitPerLeaf + 1) / 2
		}
		for i := 0; i < n; i++ {
			if err := b.addLegitTCP(leaf, &serverIdx, legitIdx); err != nil {
				return nil, err
			}
			legitIdx++
		}
	}

	// Attack sources.
	botsPerLeaf := scaleCount(paperBotsPerLeaf, sc.Scale)
	if sc.Attack != AttackNone {
		for _, leaf := range attackLeaves {
			for i := 0; i < botsPerLeaf; i++ {
				if err := b.addBot(leaf, &serverIdx); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

// attackGroupOf returns a leaf's position among the attack leaves (its
// rotation slot in the rolling attack).
func attackGroupOf(tree *topology.Tree, leaf int) int {
	for i, l := range attackLeavesFor(tree.NumLeaves()) {
		if l == leaf {
			return i
		}
	}
	return 0
}

// scaleCount scales a host count, keeping at least 1.
func scaleCount(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// buildDefense constructs the discipline for the target link.
// floc:unit targetBits bits/s
func (b *built) buildDefense(targetBits float64, bufPkts int) (netsim.Discipline, error) {
	sc := b.sc
	switch sc.Defense {
	case DefDropTail:
		return netsim.NewFIFO(bufPkts), nil
	case DefRED:
		r, err := defense.NewRED(defense.DefaultREDConfig(bufPkts, sc.Seed+1))
		if err != nil {
			return nil, err
		}
		b.red = r
		return r, nil
	case DefREDPD:
		return defense.NewREDPD(defense.DefaultREDPDConfig(bufPkts, sc.Seed+1))
	case DefPushback:
		pb, err := defense.NewPushback(defense.DefaultPushbackConfig(bufPkts, targetBits, sc.Seed+1))
		if err != nil {
			return nil, err
		}
		b.pushback = pb
		return pb, nil
	case DefFLoc:
		cfg := core.DefaultConfig(targetBits, bufPkts)
		cfg.SMax = sc.SMax
		cfg.LegitAggregation = sc.LegitAgg
		cfg.NMax = sc.NMax
		cfg.Seed = sc.Seed + 1
		cfg.DisablePreferentialDrop = sc.NoPreferentialDrop
		cfg.DisableEscalation = sc.NoEscalation
		if sc.ScalableMode {
			cfg.EstimateFlows = true
			cfg.ProbabilisticUpdate = true
			cfg.FilterK = 2
		}
		r, err := core.NewRouter(cfg)
		if err != nil {
			return nil, err
		}
		b.flocRtr = r
		return r, nil
	default:
		return nil, fmt.Errorf("experiments: unknown defense %q", sc.Defense)
	}
}

// addLegitTCP attaches one legitimate persistent TCP source at a leaf.
func (b *built) addLegitTCP(leaf int, serverIdx *int, legitIdx int) error {
	host, err := b.tree.AddHost(leaf)
	if err != nil {
		return err
	}
	server := b.tree.Servers[*serverIdx%len(b.tree.Servers)]
	*serverIdx++
	dataSize := 0 // default
	if len(b.sc.DataSizes) > 0 {
		dataSize = b.sc.DataSizes[legitIdx%len(b.sc.DataSizes)]
	}
	src := tcp.NewSource(host, tcp.SourceConfig{
		Src: host.Addr, Dst: server.Addr, Path: b.pathOf(leaf),
		TotalPackets: paperFilePackets, DataSize: dataSize,
	})
	if err := host.Attach(server.Addr, src); err != nil {
		return err
	}
	sink := tcp.NewSink(server, host.Addr, nil)
	if err := server.Attach(host.Addr, sink); err != nil {
		return err
	}
	src.Start(b.net, 5*b.net.Rand().Float64())
	return nil
}

// addBot attaches one attack source of the scenario's kind at a leaf.
func (b *built) addBot(leaf int, serverIdx *int) error {
	host, err := b.tree.AddHost(leaf)
	if err != nil {
		return err
	}
	server := b.tree.Servers[*serverIdx%len(b.tree.Servers)]
	*serverIdx++
	path := b.pathOf(leaf)
	sc := b.sc
	switch sc.Attack {
	case AttackTCPPop:
		src := tcp.NewSource(host, tcp.SourceConfig{
			Src: host.Addr, Dst: server.Addr, Path: path,
			TotalPackets: 0, Attack: true,
		})
		if err := host.Attach(server.Addr, src); err != nil {
			return err
		}
		sink := tcp.NewSink(server, host.Addr, nil)
		if err := server.Attach(host.Addr, sink); err != nil {
			return err
		}
		src.Start(b.net, 5*b.net.Rand().Float64())
	case AttackCBR:
		cbr, err := traffic.NewCBR(host, traffic.CBRConfig{
			Src: host.Addr, Dst: server.Addr, Path: path,
			RateBits: sc.AttackRateBits, Attack: true, Jitter: 0.1,
			Start: b.net.Rand().Float64(),
		})
		if err != nil {
			return err
		}
		cbr.Start(b.net)
	case AttackShrew:
		// Pulse period matched to typical legitimate RTT (~0.1 s),
		// synchronized across bots (same start phase).
		sh, err := traffic.NewShrew(host, traffic.ShrewConfig{
			Src: host.Addr, Dst: server.Addr, Path: path,
			BurstRateBits: sc.AttackRateBits * 4, Period: 0.1, BurstFraction: 0.25,
			Start: 0,
		})
		if err != nil {
			return err
		}
		sh.Start(b.net)
	case AttackOnOff:
		// Seconds-scale synchronized on-off bursts at 4x the nominal rate
		// (same long-run average as the CBR attack) to whipsaw defenses
		// that trigger on sustained drop rates.
		sh, err := traffic.NewShrew(host, traffic.ShrewConfig{
			Src: host.Addr, Dst: server.Addr, Path: path,
			BurstRateBits: sc.AttackRateBits * 4, Period: 8.0, BurstFraction: 0.25,
			Start: 0,
		})
		if err != nil {
			return err
		}
		sh.Start(b.net)
	case AttackRolling:
		// The contaminated domains attack in rotation: each leaf's bots
		// are on for one slot of the cycle, at a rate that keeps the
		// long-run average equal to the CBR attack. The flood's origin
		// moves before location-based filters converge.
		groups := len(attackLeavesFor(b.tree.NumLeaves()))
		slot := 6.0
		sh, err := traffic.NewShrew(host, traffic.ShrewConfig{
			Src: host.Addr, Dst: server.Addr, Path: path,
			BurstRateBits: sc.AttackRateBits * float64(groups),
			Period:        slot * float64(groups),
			BurstFraction: 1.0 / float64(groups),
			Start:         float64(attackGroupOf(b.tree, leaf)) * slot,
		})
		if err != nil {
			return err
		}
		sh.Start(b.net)
	case AttackCovert:
		fan := sc.CovertFanout
		if fan < 1 {
			fan = 1
		}
		dsts := make([]uint32, 0, fan)
		for i := 0; i < fan; i++ {
			dsts = append(dsts, b.tree.Servers[(*serverIdx+i)%len(b.tree.Servers)].Addr)
		}
		cv, err := traffic.NewCovert(host, traffic.CovertConfig{
			Src: host.Addr, Dsts: dsts, Path: path,
			PerFlowRateBits: sc.AttackRateBits,
			Start:           b.net.Rand().Float64(),
		})
		if err != nil {
			return err
		}
		cv.Start(b.net)
	default:
		return fmt.Errorf("experiments: unknown attack %q", sc.Attack)
	}
	return nil
}

// Run executes the scenario and returns its measurement.
func Run(sc Scenario) (*Measurement, error) {
	b, err := build(sc)
	if err != nil {
		return nil, err
	}
	b.net.Run(sc.Duration)
	b.meas.finish(b.sc, b.flocRtr)
	if b.pushback != nil {
		b.meas.PushbackUpstreamDrops = b.pushback.UpstreamDrops()
	}
	return b.meas, nil
}
