package experiments

import (
	"fmt"

	"floc/internal/stats"
)

// Replication aggregates one scenario's class shares over several seeds.
type Replication struct {
	// Seeds are the seeds that were run.
	Seeds []uint64
	// Share[class] collects the per-run shares.
	Share map[FlowClass]*stats.Running
	// Utilization collects per-run utilization.
	Utilization stats.Running
}

// Replicate runs the scenario once per seed and aggregates the
// differential-guarantee metrics, for confidence reporting: simulation
// conclusions should never rest on a single seed.
func Replicate(sc Scenario, seeds []uint64) (*Replication, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	rep := &Replication{
		Seeds: seeds,
		Share: map[FlowClass]*stats.Running{
			ClassLegitLegit:      {},
			ClassLegitAttackPath: {},
			ClassAttack:          {},
		},
	}
	for _, seed := range seeds {
		run := sc
		run.Seed = seed
		m, err := Run(run)
		if err != nil {
			return nil, err
		}
		for class, agg := range rep.Share {
			agg.Add(m.ClassShare(class))
		}
		rep.Utilization.Add(m.Utilization)
	}
	return rep, nil
}

// Row renders the replication as a table row: mean and standard deviation
// of each class share plus utilization.
func (r *Replication) Row(label string) Row {
	return Row{
		Label: label,
		Values: []float64{
			r.Share[ClassLegitLegit].Mean(), r.Share[ClassLegitLegit].Std(),
			r.Share[ClassLegitAttackPath].Mean(), r.Share[ClassLegitAttackPath].Std(),
			r.Share[ClassAttack].Mean(), r.Share[ClassAttack].Std(),
			r.Utilization.Mean(),
		},
	}
}

// ReplicationColumns are the column names matching Replication.Row.
var ReplicationColumns = []string{
	"legit_mean", "legit_std",
	"legit_atk_mean", "legit_atk_std",
	"attack_mean", "attack_std",
	"util_mean",
}
