package experiments

import (
	"fmt"

	"floc/internal/inetsim"
	"floc/internal/telemetry"
	"floc/internal/topology"
)

// InetScenario names the defense variants of the paper's Internet-scale
// figures: no defense, per-flow fairness, and FLoc without aggregation
// and with |S|max 200 / 100.
type InetScenario struct {
	Label   string
	Defense inetsim.DefenseKind
	SMax    int
}

// InetScenarios returns the five variants of Figs. 13-15.
func InetScenarios() []InetScenario {
	return []InetScenario{
		{Label: "ND", Defense: inetsim.NoDefense},
		{Label: "FF", Defense: inetsim.FairFlow},
		{Label: "FLoc-NA", Defense: inetsim.FLoc, SMax: 0},
		{Label: "FLoc-A200", Defense: inetsim.FLoc, SMax: 200},
		{Label: "FLoc-A100", Defense: inetsim.FLoc, SMax: 100},
	}
}

// InetConfig parameterizes the Internet-scale experiments.
type InetFigConfig struct {
	// Profiles are the topology flavors to run (paper: f-root, h-root,
	// jpn).
	Profiles []topology.Profile
	// AttackASes is the attacker dispersion (paper: 100 for Fig. 13,
	// 300 for Fig. 14).
	AttackASes int
	// Separated removes legitimate sources from attack ASes (Fig. 15).
	Separated bool
	// Scale shrinks source counts and link capacity together (1.0 =
	// paper scale: 10k legit, 100k bots, 16000 pkts/tick).
	Scale float64
	// Ticks and WarmupTicks control the run length; 0 uses defaults.
	Ticks, WarmupTicks int
	Seed               uint64
	// Registry, when non-nil, receives each simulation's counters labeled
	// by "profile/variant" run.
	Registry *telemetry.Registry
}

// DefaultInetFigConfig returns the configuration for one of the paper's
// Internet figures ("fig13", "fig14", "fig15") at the given scale.
func DefaultInetFigConfig(figure string, scale float64) (InetFigConfig, error) {
	cfg := InetFigConfig{
		Profiles: []topology.Profile{topology.FRoot, topology.HRoot, topology.JPN},
		Scale:    scale,
		Seed:     42,
	}
	switch figure {
	case "fig13":
		cfg.AttackASes = 100
	case "fig14":
		cfg.AttackASes = 300
	case "fig15":
		cfg.AttackASes = 100
		cfg.Separated = true
	default:
		return cfg, fmt.Errorf("experiments: unknown Internet figure %q", figure)
	}
	return cfg, nil
}

// FigInternet runs the Internet-scale comparison: for each topology
// profile and defense variant, the share of the target link used by
// legitimate flows of legitimate ASes, legitimate flows of attack ASes,
// and attack flows (paper Figs. 13, 14, 15).
func FigInternet(cfg InetFigConfig) (*Table, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("experiments: scale %v out of (0,1]", cfg.Scale)
	}
	t := &Table{
		Title: fmt.Sprintf("Internet-scale: attack ASes=%d separated=%v (fractions of link capacity)",
			cfg.AttackASes, cfg.Separated),
		Columns: []string{"legit_legitAS", "legit_attackAS", "attack", "guaranteed_paths"},
	}
	for _, profile := range cfg.Profiles {
		tcfg := topology.DefaultInetConfig(profile)
		tcfg.AttackASes = cfg.AttackASes
		tcfg.LegitSources = scaleCount(tcfg.LegitSources, cfg.Scale)
		tcfg.AttackSources = scaleCount(tcfg.AttackSources, cfg.Scale)
		tcfg.Seed = cfg.Seed
		if cfg.Separated {
			tcfg.OverlapFrac = 0
		}
		topo, err := topology.GenerateInet(tcfg)
		if err != nil {
			return nil, err
		}
		for _, sc := range InetScenarios() {
			scfg := inetsim.DefaultConfig(topo, sc.Defense)
			scfg.SMax = sc.SMax
			scfg.CapacityPerTick = scaleCount(scfg.CapacityPerTick, cfg.Scale)
			scfg.Seed = cfg.Seed + 1
			if cfg.Ticks > 0 {
				scfg.Ticks = cfg.Ticks
			}
			if cfg.WarmupTicks > 0 {
				scfg.WarmupTicks = cfg.WarmupTicks
			}
			sim, err := inetsim.New(scfg)
			if err != nil {
				return nil, err
			}
			if cfg.Registry != nil {
				sim.SetTelemetry(cfg.Registry, fmt.Sprintf("%s/%s", profile, sc.Label))
			}
			res := sim.Run()
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/%s", profile, sc.Label),
				Values: []float64{
					res.Share[inetsim.LegitLegit],
					res.Share[inetsim.LegitAttack],
					res.Share[inetsim.Attack],
					float64(res.GuaranteedPaths),
				},
			})
		}
	}
	return t, nil
}

// FigTopology summarizes the generated topologies (the data behind the
// paper's Fig. 11/12 renderings).
func FigTopology(attackASes int, separated bool, seed uint64) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Topology summary: attack ASes=%d separated=%v", attackASes, separated),
		Columns: []string{"ases", "max_depth", "attack_ases", "legit_ases", "overlap_ases", "mean_attack_depth", "mean_legit_depth", "bots_top5pct_frac"},
	}
	for _, profile := range []topology.Profile{topology.FRoot, topology.HRoot, topology.JPN} {
		cfg := topology.DefaultInetConfig(profile)
		cfg.AttackASes = attackASes
		cfg.Seed = seed
		if separated {
			cfg.OverlapFrac = 0
		}
		topo, err := topology.GenerateInet(cfg)
		if err != nil {
			return nil, err
		}
		st := topo.Summarize()
		t.Rows = append(t.Rows, Row{
			Label: profile.String(),
			Values: []float64{
				float64(st.ASes), float64(st.MaxDepth),
				float64(st.AttackASes), float64(st.LegitASes), float64(st.OverlapASes),
				st.MeanAttackDepth, st.MeanLegitDepth, st.BotsInTop5PercentASesFrac,
			},
		})
	}
	return t, nil
}
