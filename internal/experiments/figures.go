package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"floc/internal/stats"
	"floc/internal/tcpmodel"
)

// Table is a figure's data in printable form: one row per series point.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one labeled data row.
type Row struct {
	Label  string
	Values []float64
}

// String renders the table as TSV with a title and header line.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte('\t')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(stats.FormatRow(r.Label, r.Values...))
		b.WriteByte('\n')
	}
	return b.String()
}

// figDuration and figMeasureFrom parameterize the figure scenarios'
// simulated window (paper: 80 s, measured over 20-80 s); the figure
// smoke tests shorten them.
var figDuration, figMeasureFrom = 80.0, 20.0

// figScenario is DefaultScenario with the figure window applied.
func figScenario(def DefenseKind, atk AttackKind, scale float64, seed uint64) Scenario {
	sc := DefaultScenario(def, atk, scale)
	sc.Seed = seed
	sc.Duration = figDuration
	sc.MeasureFrom = figMeasureFrom
	return sc
}

// quantiles reported for CDF-style figures.
var cdfQuantiles = []float64{0.1, 0.25, 0.5, 0.75, 0.9}

func cdfRow(label string, cdf *stats.CDF) Row {
	vals := make([]float64, 0, len(cdfQuantiles)+2)
	for _, q := range cdfQuantiles {
		vals = append(vals, cdf.Quantile(q)/1e6) // Mb/s
	}
	vals = append(vals, cdf.Mean()/1e6, float64(cdf.N()))
	return Row{Label: label, Values: vals}
}

var cdfColumns = []string{"p10_mbps", "p25_mbps", "p50_mbps", "p75_mbps", "p90_mbps", "mean_mbps", "flows"}

// Fig2 reproduces the motivation plot: packet service rate vs drop rate
// at a congested link carrying only legitimate TCP traffic (no defense).
func Fig2(scale float64, seed uint64) (*Table, error) {
	sc := DefaultScenario(DefDropTail, AttackNone, scale)
	sc.Seed = seed
	sc.Duration = 40
	sc.MeasureFrom = 5
	m, err := Run(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig.2: packet service rate vs drop rate (pkts/s), legitimate TCP only",
		Columns: []string{"service_pps", "drop_pps", "drop_ratio"},
	}
	service, drops := m.ServiceBins(), m.DropBins()
	for i := 0; i < len(service); i++ {
		d := 0.0
		if i < len(drops) {
			d = drops[i]
		}
		ratio := 0.0
		if service[i]+d > 0 {
			ratio = d / (service[i] + d)
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("t=%d", i), Values: []float64{service[i], d, ratio}})
	}
	return t, nil
}

// Fig3 reproduces the packet-size distribution: full-sized (1.5 KB)
// packets, VPN-tunneled (1.3 KB) packets, and 40-byte control packets.
func Fig3(scale float64, seed uint64) (*Table, error) {
	sc := DefaultScenario(DefDropTail, AttackNone, scale)
	sc.Seed = seed
	sc.Duration = 30
	sc.MeasureFrom = 5
	sc.DataSizes = []int{1500, 1500, 1500, 1300}
	m, err := Run(sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig.3: delivered packet size distribution",
		Columns: []string{"size_bytes", "fraction"},
	}
	counts := m.SizeHist.Counts()
	total := float64(m.SizeHist.N())
	for i, c := range counts {
		if c == 0 {
			continue
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("bin%02d", i),
			Values: []float64{m.SizeHist.BinCenter(i), float64(c) / total},
		})
	}
	return t, nil
}

// Fig4 reproduces the token-request model illustration: the aggregate
// window (token request) of n flows across one congestion epoch for each
// synchronization mode, plus achievable utilization.
// floc:unit w packets
func Fig4(n int, w float64) *Table {
	t := &Table{
		Title:   "Fig.4: aggregate token request vs epoch phase (packets)",
		Columns: []string{"unsynchronized", "synchronized", "partial"},
	}
	for i := 0; i <= 20; i++ {
		phase := float64(i) / 20
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("phase=%.2f", phase),
			Values: []float64{
				tcpmodel.AggregateRequest(tcpmodel.Unsynchronized, n, w, phase),
				tcpmodel.AggregateRequest(tcpmodel.Synchronized, n, w, phase),
				tcpmodel.AggregateRequest(tcpmodel.PartiallySynchronized, n, w, phase),
			},
		})
	}
	t.Rows = append(t.Rows, Row{
		Label: "utilization",
		Values: []float64{
			tcpmodel.UtilizationUnderSync(tcpmodel.Unsynchronized),
			tcpmodel.UtilizationUnderSync(tcpmodel.Synchronized),
			tcpmodel.UtilizationUnderSync(tcpmodel.PartiallySynchronized),
		},
	})
	return t
}

// Fig6 reproduces the attack-confinement time series: per-second mean
// bandwidth (Mb/s) of legitimate-path and attack-path identifiers under
// FLoc for one attack kind ("tcp-pop", "cbr", or "shrew").
func Fig6(kind AttackKind, scale float64, seed uint64) (*Table, *Measurement, error) {
	sc := figScenario(DefFLoc, kind, scale, seed)
	m, err := Run(sc)
	if err != nil {
		return nil, nil, err
	}
	var legitKeys, attackKeys []string
	for key := range m.PerPathBits {
		if m.AttackPathKeys[key] {
			attackKeys = append(attackKeys, key)
		} else {
			legitKeys = append(legitKeys, key)
		}
	}
	// Map order would otherwise set the float summation order inside
	// MeanPathSeries, perturbing regenerated results at the ulp level.
	sort.Strings(legitKeys)
	sort.Strings(attackKeys)
	secs := int(sc.Duration)
	legitSeries := m.MeanPathSeries(legitKeys, secs)
	attackSeries := m.MeanPathSeries(attackKeys, secs)
	t := &Table{
		Title:   fmt.Sprintf("Fig.6 (%s): per-path bandwidth under FLoc (Mb/s)", kind),
		Columns: []string{"legit_path_mean_mbps", "attack_path_mean_mbps"},
	}
	for i := 0; i < secs; i++ {
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("t=%d", i),
			Values: []float64{legitSeries[i] / 1e6, attackSeries[i] / 1e6},
		})
	}
	return t, m, nil
}

// Fig7 reproduces the robustness CDFs: the distribution of per-flow
// bandwidth of legitimate-path flows under CBR attacks of varying
// strength, for FLoc, Pushback and RED-PD, plus the no-attack RED
// reference.
func Fig7(scale float64, rates []float64, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Fig.7: legit-path flow bandwidth distribution under CBR attack",
		Columns: cdfColumns,
	}
	ref := figScenario(DefRED, AttackNone, scale, seed)
	m, err := Run(ref)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, cdfRow("red/no-attack", m.FlowBandwidthCDF(ClassLegitLegit)))

	for _, def := range []DefenseKind{DefFLoc, DefPushback, DefREDPD} {
		for _, rate := range rates {
			sc := figScenario(def, AttackCBR, scale, seed)
			sc.AttackRateBits = rate
			m, err := Run(sc)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s/%.1fMbps", def, rate/1e6)
			t.Rows = append(t.Rows, cdfRow(label, m.FlowBandwidthCDF(ClassLegitLegit)))
		}
	}
	return t, nil
}

// Fig8 reproduces the differential-guarantee comparison: the share of
// link bandwidth used by legit-path flows, legitimate flows of attack
// paths, and attack flows, per defense and per-bot attack rate, with
// FLoc's attack-path aggregation enabled (|S|max = 25).
func Fig8(scale float64, rates []float64, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Fig.8: bandwidth shares by class (fraction of link capacity)",
		Columns: []string{"legit_path", "legit_in_attack_path", "attack", "utilization"},
	}
	for _, def := range []DefenseKind{DefFLoc, DefPushback, DefREDPD} {
		for _, rate := range rates {
			sc := figScenario(def, AttackCBR, scale, seed)
			sc.AttackRateBits = rate
			if def == DefFLoc {
				sc.SMax = 25
			}
			m, err := Run(sc)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/%.1fMbps", def, rate/1e6),
				Values: []float64{
					m.ClassShare(ClassLegitLegit),
					m.ClassShare(ClassLegitAttackPath),
					m.ClassShare(ClassAttack),
					m.Utilization,
				},
			})
		}
	}
	return t, nil
}

// Fig9 reproduces legitimate-path aggregation: per-flow bandwidth of
// legit-path flows with and without aggregation when a third of the
// uncontaminated domains have half as many sources.
func Fig9(scale float64, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Fig.9: legit-path aggregation and per-flow fairness",
		Columns: cdfColumns,
	}
	for _, agg := range []bool{false, true} {
		sc := figScenario(DefFLoc, AttackCBR, scale, seed)
		sc.SMax = 25
		sc.LegitAgg = agg
		// Three uncontaminated domains get half the sources, one per
		// sibling group so each sits next to full-size domains (the
		// paper does not specify the placement; mixed-population sibling
		// groups are what proportional-share aggregation equalizes).
		sc.SmallLeaves = []int{0, 6, 9}
		m, err := Run(sc)
		if err != nil {
			return nil, err
		}
		label := "no-aggregation"
		if agg {
			label = "aggregation"
		}
		// The paper's Fig. 9 point is the two bands: flows of the
		// half-populated domains get ~2x the bandwidth of the rest until
		// aggregation equalizes them. Report the bands separately.
		smallKeys := map[string]bool{}
		for _, leaf := range sc.SmallLeaves {
			smallKeys[m.LeafKeys[leaf]] = true
		}
		small := m.FlowBandwidthCDFForPaths(ClassLegitLegit, func(k string) bool { return smallKeys[k] })
		large := m.FlowBandwidthCDFForPaths(ClassLegitLegit, func(k string) bool { return !smallKeys[k] })
		t.Rows = append(t.Rows, cdfRow(label+"/small-domains", small))
		t.Rows = append(t.Rows, cdfRow(label+"/large-domains", large))
		t.Rows = append(t.Rows, cdfRow(label+"/all", m.FlowBandwidthCDF(ClassLegitLegit)))
		t.Rows = append(t.Rows, cdfRow(label+"/attack-path-legit", m.FlowBandwidthCDF(ClassLegitAttackPath)))
	}
	return t, nil
}

// Fig10 reproduces the covert-attack comparison: bandwidth shares of
// legitimate vs attack traffic as each attack source raises its number
// of concurrent low-rate (0.2 Mb/s) flows, under FLoc (n_max = 2),
// Pushback, and RED-PD.
func Fig10(scale float64, fanouts []int, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Fig.10: covert attack - bandwidth shares vs per-source fanout",
		Columns: []string{"legit_share", "attack_share", "utilization"},
	}
	for _, def := range []DefenseKind{DefFLoc, DefPushback, DefREDPD} {
		for _, fan := range fanouts {
			sc := figScenario(def, AttackCovert, scale, seed)
			sc.AttackRateBits = 0.2e6
			sc.CovertFanout = fan
			if def == DefFLoc {
				sc.NMax = 2
			}
			m, err := Run(sc)
			if err != nil {
				return nil, err
			}
			legit := m.ClassShare(ClassLegitLegit) + m.ClassShare(ClassLegitAttackPath)
			t.Rows = append(t.Rows, Row{
				Label:  fmt.Sprintf("%s/fanout=%d", def, fan),
				Values: []float64{legit, m.ClassShare(ClassAttack), m.Utilization},
			})
		}
	}
	return t, nil
}

// FigTimed is an extension experiment beyond the paper's evaluation: the
// timed attacks its Related Work singles out as defeating
// filter-installing defenses (Section II — "a bot network changes attack
// strength (e.g., on-off attacks) or location (e.g., rolling attacks) in
// a coordinated manner to avoid detection"). It compares FLoc, Pushback
// and RED-PD under the steady CBR reference, a synchronized on-off
// attack, and a rolling attack that moves between contaminated domains.
func FigTimed(scale float64, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Extension: timed (on-off / rolling) attacks - bandwidth shares",
		Columns: []string{"legit_path", "legit_in_attack_path", "attack", "utilization"},
	}
	for _, def := range []DefenseKind{DefFLoc, DefPushback, DefREDPD} {
		for _, atk := range []AttackKind{AttackCBR, AttackOnOff, AttackRolling} {
			sc := figScenario(def, atk, scale, seed)
			m, err := Run(sc)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s/%s", def, atk),
				Values: []float64{
					m.ClassShare(ClassLegitLegit),
					m.ClassShare(ClassLegitAttackPath),
					m.ClassShare(ClassAttack),
					m.Utilization,
				},
			})
		}
	}
	return t, nil
}

// MarshalJSON renders the table as a JSON object with title, columns and
// rows, for plotting pipelines.
func (t *Table) MarshalJSON() ([]byte, error) {
	type row struct {
		Label  string    `json:"label"`
		Values []float64 `json:"values"`
	}
	rows := make([]row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = row{Label: r.Label, Values: r.Values}
	}
	return json.Marshal(struct {
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []row    `json:"rows"`
	}{t.Title, t.Columns, rows})
}

// FigDeployment is an extension experiment: FLoc under *incremental
// deployment* of path marking (Section III-A claims markings "can be
// adopted by individual domains independently and incrementally" but the
// paper does not evaluate partial deployment). A fraction of leaf
// domains stamp identifiers; the rest are lumped into one shared
// unmarked identifier, which competes as a single path.
func FigDeployment(scale float64, fractions []float64, seed uint64) (*Table, error) {
	t := &Table{
		Title:   "Extension: FLoc under partial path-marking deployment (CBR attack)",
		Columns: []string{"legit_total", "attack", "utilization"},
	}
	for _, frac := range fractions {
		sc := figScenario(DefFLoc, AttackCBR, scale, seed)
		sc.MarkingFraction = frac
		m, err := Run(sc)
		if err != nil {
			return nil, err
		}
		legit := m.ClassShare(ClassLegitLegit) + m.ClassShare(ClassLegitAttackPath)
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("marking=%.0f%%", frac*100),
			Values: []float64{legit, m.ClassShare(ClassAttack), m.Utilization},
		})
	}
	return t, nil
}
