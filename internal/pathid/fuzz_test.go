package pathid

import "testing"

// FuzzTreeOps inserts and removes arbitrary paths and checks structural
// invariants: leaves reconstruct to their inserted identifiers, and
// removal prunes without breaking other paths.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{9, 9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, removeIdx uint8) {
		tr := NewTree(0)
		var paths []PathID
		for i := 0; i+2 < len(raw) && len(paths) < 16; i += 3 {
			p := New(ASN(raw[i])+1, ASN(raw[i+1])+1, ASN(raw[i+2])+1)
			if _, err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			return
		}
		// Every leaf must reconstruct to some inserted path.
		inserted := map[string]bool{}
		for _, p := range paths {
			inserted[p.Key()] = true
		}
		for _, leaf := range tr.Leaves() {
			if !inserted[leaf.Path().Key()] {
				t.Fatalf("leaf %v not inserted", leaf.Path())
			}
		}
		// Remove one path; the others must survive.
		victim := paths[int(removeIdx)%len(paths)]
		tr.Remove(victim)
		for _, p := range paths {
			if p.Key() == victim.Key() {
				continue
			}
			if tr.Leaf(p) == nil {
				t.Fatalf("removing %v destroyed %v", victim, p)
			}
		}
	})
}
