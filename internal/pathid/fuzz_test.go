package pathid

import "testing"

// FuzzTreeOps inserts and removes arbitrary paths and checks structural
// invariants: leaves reconstruct to their inserted identifiers, and
// removal prunes without breaking other paths.
// FuzzParseKey drives Parse with arbitrary strings and checks the
// Key/Parse roundtrip contract in both directions: a successful parse
// reproduces its input exactly via Key, parses never panic, and every
// parsed path is insertable into a tree and reconstructible from its
// leaf.
func FuzzParseKey(f *testing.F) {
	f.Add("64-7-1")
	f.Add("0")
	f.Add("4294967295")
	f.Add("1-2-3-4-5-6-7-8")
	f.Add("")
	f.Add("a-b")
	f.Add("1--2")
	f.Add("01")
	f.Add("+1")
	f.Add("-1")
	f.Add("4294967296")
	f.Fuzz(func(t *testing.T, key string) {
		p, err := Parse(key)
		if err != nil {
			return // invalid inputs only need to be rejected cleanly
		}
		if len(p) == 0 {
			t.Fatalf("Parse(%q) succeeded with an empty path", key)
		}
		if got := p.Key(); got != key {
			t.Fatalf("Parse(%q).Key() = %q, want the input back", key, got)
		}
		back, err := Parse(p.Key())
		if err != nil || !back.Equal(p) {
			t.Fatalf("re-parsing %q gave %v, %v", p.Key(), back, err)
		}
		tr := NewTree(0)
		leaf, err := tr.Insert(p)
		if err != nil {
			t.Fatalf("inserting parsed path %v: %v", p, err)
		}
		if !leaf.Path().Equal(p) {
			t.Fatalf("leaf reconstructs to %v, want %v", leaf.Path(), p)
		}
	})
}

func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{9, 9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, removeIdx uint8) {
		tr := NewTree(0)
		var paths []PathID
		for i := 0; i+2 < len(raw) && len(paths) < 16; i += 3 {
			p := New(ASN(raw[i])+1, ASN(raw[i+1])+1, ASN(raw[i+2])+1)
			if _, err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, p)
		}
		if len(paths) == 0 {
			return
		}
		// Every leaf must reconstruct to some inserted path.
		inserted := map[string]bool{}
		for _, p := range paths {
			inserted[p.Key()] = true
		}
		for _, leaf := range tr.Leaves() {
			if !inserted[leaf.Path().Key()] {
				t.Fatalf("leaf %v not inserted", leaf.Path())
			}
		}
		// Remove one path; the others must survive.
		victim := paths[int(removeIdx)%len(paths)]
		tr.Remove(victim)
		for _, p := range paths {
			if p.Key() == victim.Key() {
				continue
			}
			if tr.Leaf(p) == nil {
				t.Fatalf("removing %v destroyed %v", victim, p)
			}
		}
	})
}
