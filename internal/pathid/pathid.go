// Package pathid implements FLoc's domain path identifiers (paper Section
// III-A) and the traffic tree a congested router builds over the path
// identifiers of its active flows (Section IV-C).
//
// A path identifier names the sequence of domains (Autonomous Systems) a
// packet traverses from its origin domain to the domain of the measuring
// router. It is written once by the BGP speaker of the origin domain, so a
// congested router can attribute every packet to its origin domain and to
// every intermediate domain on its way.
package pathid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is an Autonomous System number.
type ASN uint32

// PathID is a domain path identifier S_i = {AS_i, ..., AS_1}: element 0 is
// the origin domain, the last element is the domain adjacent to the
// measuring router. A PathID is immutable once built; treat it as a value.
type PathID []ASN

// New builds a PathID from origin-first AS numbers.
func New(asns ...ASN) PathID {
	p := make(PathID, len(asns))
	copy(p, asns)
	return p
}

// Origin returns the origin domain (the first element), or 0 for an empty
// path.
func (p PathID) Origin() ASN {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// Len returns the number of domains on the path.
func (p PathID) Len() int { return len(p) }

// Key returns a canonical string form usable as a map key.
func (p PathID) Key() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	for i, as := range p {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.FormatUint(uint64(as), 10))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (p PathID) String() string { return "S[" + p.Key() + "]" }

// Parse parses the canonical Key form ("64-7-1") back into a PathID. It
// is the strict inverse of Key: it accepts exactly the strings Key
// produces for non-empty paths (decimal AS numbers without leading
// zeros, joined by '-'), so Parse(p.Key()) == p and parsed.Key() == s.
//
// floc:untrusted s
// floc:sanitizes
func Parse(s string) (PathID, error) {
	if s == "" {
		return nil, fmt.Errorf("pathid: empty path key")
	}
	parts := strings.Split(s, "-")
	//floclint:allow taint split yields at most one part per input byte, so the allocation is bounded by len(s)
	p := make(PathID, len(parts))
	for i, part := range parts {
		if part != "0" && strings.HasPrefix(part, "0") {
			return nil, fmt.Errorf("pathid: non-canonical AS number %q in key %q", part, s)
		}
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pathid: bad AS number %q in key %q", part, s)
		}
		p[i] = ASN(v)
	}
	return p, nil
}

// Equal reports whether two path identifiers are identical.
func (p PathID) Equal(q PathID) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Postfix returns the n domains nearest to the measuring router (the last
// n elements). If n >= len(p), it returns p itself. Aggregating a set of
// paths at depth n replaces each with its Postfix(n).
func (p PathID) Postfix(n int) PathID {
	if n >= len(p) {
		return p
	}
	if n <= 0 {
		return PathID{}
	}
	return p[len(p)-n:]
}

// SharedPostfix returns the number of trailing domains p and q share; this
// is the tree depth at which the two paths merge on their way to the
// router.
func (p PathID) SharedPostfix(q PathID) int {
	n := 0
	for n < len(p) && n < len(q) && p[len(p)-1-n] == q[len(q)-1-n] {
		n++
	}
	return n
}

// Node is one domain in a router's traffic tree. The root represents the
// measuring router's own domain; leaves are origin domains of active paths.
// Exported measurement fields are maintained by the FLoc core.
type Node struct {
	AS       ASN
	Parent   *Node
	Children map[ASN]*Node

	// Conformance is the node's path-conformance measure E_Ri in [0, 1]
	// (Eq. IV.6), meaningful on leaves; inner nodes hold derived values.
	Conformance float64
	// Flows is the number of active flows whose paths traverse this node.
	Flows int
	// Attack marks the node as part of the attack tree T^A (leaf
	// conformance below the threshold E_th).
	Attack bool
	// AggregatedAt is non-nil when this leaf's path has been aggregated
	// into the identifier rooted at that ancestor node.
	AggregatedAt *Node
}

// Depth returns the number of edges from the node to the root.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Path returns the PathID from this node's subtree origin-side end...
// Specifically, it reconstructs the identifier of the (possibly aggregated)
// path that terminates at the root: the node's AS first if it is a leaf,
// then each ancestor's AS up to (but excluding) the root.
func (n *Node) Path() PathID {
	var rev []ASN
	for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
		rev = append(rev, cur.AS)
	}
	return PathID(rev)
}

// Leaves returns all leaves of the subtree rooted at n, in deterministic
// (AS-sorted) order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// walk visits the subtree in depth-first, AS-sorted order.
func (n *Node) walk(visit func(*Node)) {
	visit(n)
	if len(n.Children) == 0 {
		return
	}
	asns := make([]ASN, 0, len(n.Children))
	for as := range n.Children {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, as := range asns {
		n.Children[as].walk(visit)
	}
}

// MeanLeafConformance returns the average Conformance of the subtree's
// leaves — the aggregation cost C^A(R_i) of paper Eq. (IV.7) — and the
// number of leaves. It returns (0, 0) for a childless inner node.
//
// floc:eq IV.7
func (n *Node) MeanLeafConformance() (mean float64, leaves int) {
	ls := n.Leaves()
	if len(ls) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, l := range ls {
		sum += l.Conformance
	}
	return sum / float64(len(ls)), len(ls)
}

// Tree is a router's traffic tree T_R0 over the path identifiers of its
// active flows. The zero value is not usable; call NewTree.
type Tree struct {
	root   *Node
	leaves map[string]*Node // PathID key -> leaf
}

// NewTree returns an empty traffic tree whose root represents the
// measuring router's domain.
func NewTree(rootAS ASN) *Tree {
	return &Tree{
		root:   &Node{AS: rootAS, Children: map[ASN]*Node{}},
		leaves: map[string]*Node{},
	}
}

// Root returns the tree root.
func (t *Tree) Root() *Node { return t.root }

// Insert adds a path identifier to the tree (idempotently) and returns its
// leaf node. Paths are inserted router-side first: the last element of the
// PathID becomes a child of the root.
func (t *Tree) Insert(p PathID) (*Node, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("pathid: cannot insert empty path")
	}
	if leaf, ok := t.leaves[p.Key()]; ok {
		return leaf, nil
	}
	cur := t.root
	for i := len(p) - 1; i >= 0; i-- {
		as := p[i]
		next, ok := cur.Children[as]
		if !ok {
			next = &Node{AS: as, Parent: cur, Children: map[ASN]*Node{}}
			cur.Children[as] = next
		}
		cur = next
	}
	t.leaves[p.Key()] = cur
	return cur, nil
}

// Leaf returns the leaf node for a path identifier, or nil if absent.
func (t *Tree) Leaf(p PathID) *Node { return t.leaves[p.Key()] }

// Leaves returns all leaves in deterministic order. A childless root is
// not a leaf: an empty tree has no paths.
func (t *Tree) Leaves() []*Node {
	if t.root.IsLeaf() {
		return nil
	}
	return t.root.Leaves()
}

// NumLeaves returns the number of distinct inserted paths.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// InnerNodes returns all non-root, non-leaf nodes in deterministic order —
// the aggregation candidate set C of Algorithm 1.
func (t *Tree) InnerNodes() []*Node {
	var out []*Node
	t.root.walk(func(m *Node) {
		if m != t.root && !m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// Remove deletes a path's leaf and prunes now-empty ancestors.
func (t *Tree) Remove(p PathID) {
	leaf, ok := t.leaves[p.Key()]
	if !ok {
		return
	}
	delete(t.leaves, p.Key())
	cur := leaf
	for cur != nil && cur != t.root && cur.IsLeaf() {
		parent := cur.Parent
		if parent != nil {
			delete(parent.Children, cur.AS)
		}
		cur = parent
	}
}
