package pathid

import (
	"testing"
	"testing/quick"
)

func TestPathIDBasics(t *testing.T) {
	p := New(7, 3, 1)
	if p.Origin() != 7 {
		t.Fatalf("Origin = %d", p.Origin())
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Key() != "7-3-1" {
		t.Fatalf("Key = %q", p.Key())
	}
	if p.String() != "S[7-3-1]" {
		t.Fatalf("String = %q", p.String())
	}
	if PathID(nil).Origin() != 0 || PathID(nil).Key() != "" {
		t.Fatal("empty path accessors wrong")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b PathID
		want bool
	}{
		{New(1, 2), New(1, 2), true},
		{New(1, 2), New(1, 3), false},
		{New(1, 2), New(1, 2, 3), false},
		{New(), New(), true},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%v.Equal(%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestPostfix(t *testing.T) {
	p := New(9, 5, 3, 1)
	if got := p.Postfix(2); !got.Equal(New(3, 1)) {
		t.Fatalf("Postfix(2) = %v", got)
	}
	if got := p.Postfix(10); !got.Equal(p) {
		t.Fatalf("Postfix(10) = %v", got)
	}
	if got := p.Postfix(0); got.Len() != 0 {
		t.Fatalf("Postfix(0) = %v", got)
	}
	if got := p.Postfix(-1); got.Len() != 0 {
		t.Fatalf("Postfix(-1) = %v", got)
	}
}

func TestSharedPostfix(t *testing.T) {
	cases := []struct {
		a, b PathID
		want int
	}{
		{New(9, 5, 3, 1), New(8, 5, 3, 1), 3},
		{New(9, 5, 3, 1), New(9, 5, 3, 1), 4},
		{New(1, 2), New(3, 4), 0},
		{New(2, 1), New(7, 6, 2, 1), 2},
		{New(), New(1), 0},
	}
	for _, tc := range cases {
		if got := tc.a.SharedPostfix(tc.b); got != tc.want {
			t.Errorf("SharedPostfix(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSharedPostfixSymmetric(t *testing.T) {
	f := func(a, b []uint32) bool {
		pa, pb := make(PathID, len(a)), make(PathID, len(b))
		for i, v := range a {
			pa[i] = ASN(v % 16)
		}
		for i, v := range b {
			pb[i] = ASN(v % 16)
		}
		return pa.SharedPostfix(pb) == pb.SharedPostfix(pa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeInsertAndStructure(t *testing.T) {
	tr := NewTree(0)
	paths := []PathID{
		New(4, 2, 1),
		New(5, 2, 1),
		New(6, 3, 1),
		New(7, 1),
	}
	for _, p := range paths {
		if _, err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumLeaves() != 4 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	// Root has exactly one child: AS 1 (the domain adjacent to the router).
	if len(tr.Root().Children) != 1 {
		t.Fatalf("root children = %d", len(tr.Root().Children))
	}
	as1 := tr.Root().Children[1]
	if as1 == nil || len(as1.Children) != 3 { // 2, 3, 7
		t.Fatalf("AS1 children wrong: %v", as1)
	}
	leaf := tr.Leaf(New(4, 2, 1))
	if leaf == nil || leaf.AS != 4 || !leaf.IsLeaf() {
		t.Fatalf("leaf lookup failed: %+v", leaf)
	}
	if leaf.Depth() != 3 {
		t.Fatalf("leaf depth = %d", leaf.Depth())
	}
	if got := leaf.Path(); !got.Equal(New(4, 2, 1)) {
		t.Fatalf("leaf.Path() = %v", got)
	}
}

func TestTreeInsertIdempotent(t *testing.T) {
	tr := NewTree(0)
	a, err := tr.Insert(New(4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Insert(New(4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("re-insert created a new leaf")
	}
	if tr.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
}

func TestTreeInsertEmptyErrors(t *testing.T) {
	tr := NewTree(0)
	if _, err := tr.Insert(New()); err == nil {
		t.Fatal("inserting empty path did not error")
	}
}

func TestTreeLeavesDeterministicOrder(t *testing.T) {
	build := func() []string {
		tr := NewTree(0)
		for _, p := range []PathID{New(9, 1), New(3, 1), New(5, 2), New(4, 2)} {
			tr.Insert(p)
		}
		var keys []string
		for _, l := range tr.Leaves() {
			keys = append(keys, l.Path().Key())
		}
		return keys
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a, b)
		}
	}
	want := []string{"3-1", "9-1", "4-2", "5-2"}
	for i, k := range want {
		if a[i] != k {
			t.Fatalf("leaf order = %v, want %v", a, want)
		}
	}
}

func TestInnerNodes(t *testing.T) {
	tr := NewTree(0)
	tr.Insert(New(4, 2, 1))
	tr.Insert(New(5, 2, 1))
	tr.Insert(New(6, 1))
	inner := tr.InnerNodes()
	// Inner (non-root, non-leaf) nodes: AS1, AS2.
	if len(inner) != 2 {
		t.Fatalf("inner nodes = %d, want 2", len(inner))
	}
	if inner[0].AS != 1 || inner[1].AS != 2 {
		t.Fatalf("inner = [%d %d]", inner[0].AS, inner[1].AS)
	}
}

func TestMeanLeafConformance(t *testing.T) {
	tr := NewTree(0)
	l1, _ := tr.Insert(New(4, 2, 1))
	l2, _ := tr.Insert(New(5, 2, 1))
	l1.Conformance = 0.2
	l2.Conformance = 0.8
	as2 := tr.Root().Children[1].Children[2]
	mean, n := as2.MeanLeafConformance()
	if n != 2 || mean != 0.5 {
		t.Fatalf("MeanLeafConformance = (%v, %d)", mean, n)
	}
	// A leaf's own mean is its conformance.
	mean, n = l1.MeanLeafConformance()
	if n != 1 || mean != 0.2 {
		t.Fatalf("leaf MeanLeafConformance = (%v, %d)", mean, n)
	}
}

func TestTreeRemove(t *testing.T) {
	tr := NewTree(0)
	tr.Insert(New(4, 2, 1))
	tr.Insert(New(5, 2, 1))
	tr.Remove(New(4, 2, 1))
	if tr.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	if tr.Leaf(New(4, 2, 1)) != nil {
		t.Fatal("removed leaf still present")
	}
	// AS2 must still exist (it still has child 5).
	if tr.Root().Children[1].Children[2] == nil {
		t.Fatal("shared ancestor pruned too eagerly")
	}
	tr.Remove(New(5, 2, 1))
	if len(tr.Root().Children) != 0 {
		t.Fatal("empty ancestors not pruned")
	}
	// Removing a non-existent path is a no-op.
	tr.Remove(New(9, 9))
}

func TestTreeRemoveKeepsRootAlive(t *testing.T) {
	tr := NewTree(0)
	tr.Insert(New(3, 1))
	tr.Remove(New(3, 1))
	if tr.Root() == nil {
		t.Fatal("root destroyed")
	}
	if _, err := tr.Insert(New(3, 1)); err != nil {
		t.Fatalf("re-insert after full removal failed: %v", err)
	}
}

func TestLeafPathReconstructionProperty(t *testing.T) {
	f := func(raw [][3]byte) bool {
		tr := NewTree(0)
		inserted := map[string]bool{}
		for _, r := range raw {
			p := New(ASN(r[0])+1, ASN(r[1])+1, ASN(r[2])+1)
			if _, err := tr.Insert(p); err != nil {
				return false
			}
			inserted[p.Key()] = true
		}
		// Reconstruction must recover every inserted path exactly, and the
		// number of leaves equals the number of distinct paths, except
		// that a path that is a strict postfix of another stops being a
		// leaf; our generator uses fixed length 3, so that cannot happen.
		if tr.NumLeaves() != len(inserted) {
			return false
		}
		for _, l := range tr.Leaves() {
			if !inserted[l.Path().Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
