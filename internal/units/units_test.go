package units

import "testing"

func TestFromPacket(t *testing.T) {
	if got := FromPacket(1000); got != 8000 {
		t.Fatalf("FromPacket(1000) = %v, want 8000", got)
	}
	if got := FromPacket(0); got != 0 {
		t.Fatalf("FromPacket(0) = %v, want 0", got)
	}
}

func TestBitsPer(t *testing.T) {
	if got := Bits(8000).Per(2); got != 4000 {
		t.Fatalf("Bits(8000).Per(2) = %v, want 4000", got)
	}
	if got := Bits(8000).Per(0); got != 0 {
		t.Fatalf("Bits(8000).Per(0) = %v, want 0", got)
	}
	if got := Bits(8000).Per(-1); got != 0 {
		t.Fatalf("Bits(8000).Per(-1) = %v, want 0", got)
	}
}

func TestBitsPerSecTimes(t *testing.T) {
	if got := BitsPerSec(1e6).Times(0.1); got != 1e5 {
		t.Fatalf("BitsPerSec(1e6).Times(0.1) = %v, want 1e5", got)
	}
	if got := BitsPerSec(1e6).Times(-0.1); got != 0 {
		t.Fatalf("BitsPerSec(1e6).Times(-0.1) = %v, want 0", got)
	}
}

func TestScale(t *testing.T) {
	if got := BitsPerSec(1000).Scale(0.5); got != 500 {
		t.Fatalf("Scale(0.5) = %v, want 500", got)
	}
}

func TestPacketsPerSecTimes(t *testing.T) {
	if got := PacketsPerSec(125).Times(2); got != 250 {
		t.Fatalf("PacketsPerSec(125).Times(2) = %v, want 250", got)
	}
	if got := PacketsPerSec(125).Times(0); got != 0 {
		t.Fatalf("PacketsPerSec(125).Times(0) = %v, want 0", got)
	}
}

// TestRoundTrip checks rate/amount composition is consistent.
func TestRoundTrip(t *testing.T) {
	amount := FromPacket(1500)
	rate := amount.Per(0.5)
	back := rate.Times(0.5)
	if back != amount {
		t.Fatalf("round trip: %v != %v", back, amount)
	}
}
