// Package units is FLoc's typed-quantity layer: defined float64 types for
// the physical dimensions the paper's equations mix (bits, bits/second,
// packets/second, seconds), so that the Go compiler rejects the unit slips
// — adding a rate to an amount, treating a byte count as a bit count —
// that untyped float64 arithmetic hides.
//
// The package pairs with cmd/floclint's "units" rule: hot paths use these
// types directly (compiler-checked); cooler seams carry //floc:unit
// directives on plain float64s (lint-checked). The dimension vocabulary
// shared by both is documented in DESIGN.md ("Static analysis").
//
// FromPacket is the single blessed bytes→bits conversion. Code outside
// this package must not hand-roll `size * 8`: the repeated inline factor
// is exactly the seam where packets, bytes, and bits were historically
// confused, and floclint flags it when the result flows into an annotated
// bits sink.
package units

// Bits is an amount of data in bits.
type Bits float64

// BitsPerSec is a data rate in bits per second.
type BitsPerSec float64

// PacketsPerSec is a packet (or token: one token admits one reference
// packet, Section III-D) rate in packets per second.
type PacketsPerSec float64

// Seconds is a duration in seconds of simulation time.
type Seconds float64

// bitsPerByte is the one place in the repository where the 8 lives.
const bitsPerByte = 8

// FromPacket returns the wire size of a packet of sizeBytes bytes, in
// bits. It is the single blessed bytes→bits conversion; every discipline
// that meters traffic volume goes through it.
// floc:hotpath
func FromPacket(sizeBytes int) Bits { return Bits(sizeBytes) * bitsPerByte }

// Per returns the rate that delivers b bits in t seconds. A non-positive
// duration yields 0: amounts observed over an empty window carry no rate.
func (b Bits) Per(t Seconds) BitsPerSec {
	if t <= 0 {
		return 0
	}
	return BitsPerSec(float64(b) / float64(t))
}

// Times returns the amount accumulated at rate r over t seconds.
// floc:hotpath
func (r BitsPerSec) Times(t Seconds) Bits {
	if t <= 0 {
		return 0
	}
	return Bits(float64(r) * float64(t))
}

// Scale returns the rate scaled by the dimensionless factor f (water-fill
// shares, release factors, utilization targets).
func (r BitsPerSec) Scale(f float64) BitsPerSec { return BitsPerSec(float64(r) * f) }

// Times returns the packet count accumulated at rate r over t seconds.
func (r PacketsPerSec) Times(t Seconds) float64 {
	if t <= 0 {
		return 0
	}
	return float64(r) * float64(t)
}
