// Quickstart: attach a FLoc router to a link, drive mixed legitimate and
// attack traffic through it, and inspect the per-domain state FLoc
// builds — path identifiers, conformance, attack flags, and token-bucket
// parameters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"floc"
)

// sink consumes delivered packets and counts them per path.
type sink struct {
	perPath map[string]int
}

func (s *sink) Receive(net *floc.Network, pkt *floc.Packet) {
	s.perPath[pkt.Path.Key()]++
}

func main() {
	// A 8 Mb/s link protected by FLoc with a 100-packet buffer.
	router, err := floc.NewRouter(floc.DefaultRouterConfig(8e6, 100))
	if err != nil {
		log.Fatal(err)
	}
	net := floc.NewNetwork(1)
	dst := &sink{perPath: map[string]int{}}
	link, err := floc.NewLink("protected", 8e6, 0.01, router, dst)
	if err != nil {
		log.Fatal(err)
	}

	// Two domains contend for the 1000 pkt/s link: domain 10 offers
	// exactly its guaranteed 500 pkt/s share, domain 20 floods with
	// 1500 pkt/s. FLoc keeps domain 10 whole; the flooder is identified
	// (low conformance, attack flag) and penalized, taking only what is
	// left over.
	good := floc.NewPathID(10, 1)
	bad := floc.NewPathID(20, 1)
	emit := func(src uint32, path floc.PathID, gap float64) {
		var send func()
		send = func() {
			link.Send(net, &floc.Packet{
				ID: net.NextPacketID(), Src: src, Dst: 99, Size: 1000,
				Kind: floc.KindUDP, Path: path, SentAt: net.Now(),
			})
			if net.Now() < 20 {
				net.ScheduleIn(gap, send)
			}
		}
		net.Schedule(0, send)
	}
	emit(1, good, 1.0/500)
	emit(2, bad, 1.0/1500)

	net.Run(20)

	fmt.Println("FLoc per-path state after 20 simulated seconds:")
	for _, info := range router.PathInfos() {
		fmt.Printf("  path %-6s conformance=%.2f attack=%-5v alloc=%.0f pkt/s  T=%.1f ms\n",
			info.Key, info.Conformance, info.Attack, info.AllocPackets, info.Period*1000)
	}
	fmt.Println("\nDelivered packets per domain over 20 s (10000 = full share):")
	fmt.Printf("  conforming domain %s: %d\n", good.Key(), dst.perPath[good.Key()])
	fmt.Printf("  flooding   domain %s: %d\n", bad.Key(), dst.perPath[bad.Key()])
	fmt.Printf("\nDrops: %d total (%d preferential)\n",
		router.TotalDrops(), router.Drops(floc.DropPreferential))
}
