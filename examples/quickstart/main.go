// Quickstart: attach a FLoc router to a link, drive mixed legitimate and
// attack traffic through it, and inspect the per-domain state FLoc
// builds — path identifiers, conformance, attack flags, and token-bucket
// parameters — through the telemetry registry and event trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"floc"
)

// sink consumes delivered packets; the per-domain counts come from the
// router's telemetry registry, not from a side tally.
type sink struct{}

func (s *sink) Receive(net *floc.Network, pkt *floc.Packet) {}

func main() {
	// A 8 Mb/s link protected by FLoc with a 100-packet buffer.
	router, err := floc.NewRouter(floc.DefaultRouterConfig(8e6, 100))
	if err != nil {
		log.Fatal(err)
	}
	// The telemetry instance is the run's observability surface: atomic
	// registry counters at every admission decision plus a bounded ring
	// of typed events (mode changes, aggregations, classifications).
	tel := floc.NewTelemetry(floc.TelemetryOptions{TraceCapacity: 1 << 16})
	router.SetTelemetry(tel)

	net := floc.NewNetwork(1)
	link, err := floc.NewLink("protected", 8e6, 0.01, router, &sink{})
	if err != nil {
		log.Fatal(err)
	}

	// Two domains contend for the 1000 pkt/s link: domain 10 offers
	// exactly its guaranteed 500 pkt/s share, domain 20 floods with
	// 1500 pkt/s. FLoc keeps domain 10 whole; the flooder is identified
	// (low conformance, attack flag) and penalized, taking only what is
	// left over.
	good := floc.NewPathID(10, 1)
	bad := floc.NewPathID(20, 1)
	emit := func(src uint32, path floc.PathID, gap float64) {
		var send func()
		send = func() {
			link.Send(net, &floc.Packet{
				ID: net.NextPacketID(), Src: src, Dst: 99, Size: 1000,
				Kind: floc.KindUDP, Path: path, SentAt: net.Now(),
			})
			if net.Now() < 20 {
				net.ScheduleIn(gap, send)
			}
		}
		net.Schedule(0, send)
	}
	emit(1, good, 1.0/500)
	emit(2, bad, 1.0/1500)

	net.Run(20)

	fmt.Println("FLoc per-path state after 20 simulated seconds:")
	for _, info := range router.PathInfos() {
		fmt.Printf("  path %-6s conformance=%.2f attack=%-5v alloc=%.0f pkt/s  T=%.1f ms\n",
			info.Key, info.Conformance, info.Attack, info.AllocPackets, info.Period*1000)
	}

	reg := tel.Registry
	admitted := func(path string) int64 {
		return reg.CounterValue(`floc_path_admitted_packets_total{path="` + path + `"}`)
	}
	fmt.Println("\nAdmitted packets per domain over 20 s (10000 = full share):")
	fmt.Printf("  conforming domain %s: %d\n", good.Key(), admitted(good.Key()))
	fmt.Printf("  flooding   domain %s: %d\n", bad.Key(), admitted(bad.Key()))
	fmt.Printf("\nDrops: %d total (%d preferential)\n",
		router.TotalDrops(),
		reg.CounterValue(`floc_router_drops_total{reason="preferential"}`))

	// The event trace journals every pipeline transition; count the
	// queue-mode changes as a taste of what a replay can reconstruct.
	modeChanges := 0
	for _, e := range tel.Trace.Events() {
		if e.Type == floc.EventModeChanged {
			modeChanges++
		}
	}
	fmt.Printf("trace: %d events, %d queue-mode changes\n", tel.Trace.Len(), modeChanges)
}
