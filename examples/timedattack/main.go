// Timed attacks (an extension beyond the paper's evaluation): the
// on-off and rolling attacks the paper's Related Work names as defeating
// defenses that chase sustained per-location volume. Bots either pulse
// in unison (on-off) or take turns attacking from different domains
// (rolling), keeping the same long-run volume as the steady CBR attack.
//
// FLoc identifies attack flows by their drop behaviour rather than by
// sustained volume at a location, so the timed variants gain little.
//
// Run with: go run ./examples/timedattack
package main

import (
	"fmt"
	"log"

	"floc"
)

func main() {
	const scale = 0.1
	for _, def := range []floc.DefenseKind{floc.DefFLoc, floc.DefPushback} {
		for _, atk := range []floc.AttackKind{floc.AttackCBR, floc.AttackOnOff, floc.AttackRolling} {
			sc := floc.DefaultScenario(def, atk, scale)
			sc.Duration = 40
			sc.MeasureFrom = 10
			m, err := floc.RunScenario(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %-8s legit=%5.1f%%  attack=%5.1f%%\n",
				def, atk, 100*m.ClassShare(floc.ClassLegitLegit), 100*m.ClassShare(floc.ClassAttack))
		}
		fmt.Println()
	}
}
