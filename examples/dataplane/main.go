// Dataplane example: run FLoc across every core. Packets are encoded to
// the wire shim header, decoded back (the same boundary flocd's UDP and
// replay paths cross), and pushed concurrently into the sharded engine —
// a flooding domain at 10x the legitimate rate against a congested link.
// The merged snapshot shows the flooder confined while legitimate
// domains keep their shares, exactly as with a single router.
//
// Run with: go run ./examples/dataplane
package main

import (
	"fmt"
	"log"

	"floc"
)

func main() {
	// An 8 Mb/s link (1000 full packets/s) with a 512-packet buffer,
	// sharded over the machine's cores (Shards: 0 = one per core).
	cfg := floc.DefaultRouterConfig(8e6, 512)
	cfg.Seed = 7
	reg := floc.NewMetricsRegistry()
	engine, err := floc.NewDataplane(floc.DataplaneConfig{
		Router:      cfg,
		BlockOnFull: true, // replay pacing: never drop at the ring
		Telemetry:   reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Five legitimate domains at 100 pkt/s each plus one flooder at
	// 1000 pkt/s: 1500 pkt/s offered against 1000 pkt/s of link.
	paths := make([]floc.PathID, 6)
	for i := range paths {
		paths[i] = floc.NewPathID(floc.ASN(100+i), floc.ASN(10+i%2), 1)
	}
	id := uint64(0)
	for step := 0; step < 3000; step++ {
		now := float64(step) * 0.01 // 30 virtual seconds
		for p, path := range paths {
			reps := 1
			if p == len(paths)-1 {
				reps = 10
			}
			for r := 0; r < reps; r++ {
				// Round-trip through the wire codec, as flocd would.
				h := floc.WireHeader{
					Version: floc.WireVersion1,
					Kind:    floc.KindUDP,
					Src:     uint32(p + 1),
					Dst:     9999,
					Length:  1000,
					PathLen: uint8(len(path)),
				}
				copy(h.Path[:], path)
				frame, err := floc.MarshalWire(nil, &h)
				if err != nil {
					log.Fatal(err)
				}
				var dec floc.WireHeader
				if _, err := floc.DecodeWire(frame, &dec); err != nil {
					log.Fatal(err)
				}
				id++
				pkt := &floc.Packet{
					ID: id, Src: dec.Src, Dst: dec.Dst, Size: int(dec.Length),
					Kind: dec.Kind, Path: path, PathKey: path.Key(),
				}
				engine.Enqueue(pkt, now)
			}
		}
	}
	engine.Advance(35)
	snap := engine.Snapshot()
	engine.Close()

	fmt.Printf("dataplane: %d shards, mode=%s, %d arrived, %d admitted\n",
		engine.Shards(), snap.Mode, snap.Arrived, snap.Admitted)
	for _, p := range snap.Paths {
		total := p.AdmittedPackets + p.DroppedPackets
		fmt.Printf("  %-12s admitted %5d / %5d (%.0f%%)\n",
			p.Key, p.AdmittedPackets, total, 100*float64(p.AdmittedPackets)/float64(total))
	}
	st := engine.Stats()
	fmt.Printf("ring boundary: accepted=%d drops=%d processed=%d\n",
		st.Accepted, st.RingDrops, st.Processed)
}
