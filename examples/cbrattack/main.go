// CBR flooding attack (paper Section VI-A/B): 27 domains send persistent
// TCP transfers across a shared target link while bots in six
// contaminated domains flood it with constant-bit-rate traffic at 144%
// of link capacity. The example compares FLoc against no defense and
// prints the differential bandwidth shares the paper's Fig. 8 reports.
//
// Run with: go run ./examples/cbrattack
package main

import (
	"fmt"
	"log"

	"floc"
)

func main() {
	// 1/10 of the paper's scale: 50 Mb/s target link, 81 legitimate TCP
	// sources, 36 bots at 2 Mb/s each.
	const scale = 0.1

	for _, def := range []floc.DefenseKind{floc.DefDropTail, floc.DefFLoc} {
		sc := floc.DefaultScenario(def, floc.AttackCBR, scale)
		sc.Duration = 40
		sc.MeasureFrom = 15
		m, err := floc.RunScenario(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s legit-paths=%5.1f%%  legit-in-attack-paths=%4.1f%%  attack=%5.1f%%  utilization=%5.1f%%\n",
			def,
			100*m.ClassShare(floc.ClassLegitLegit),
			100*m.ClassShare(floc.ClassLegitAttackPath),
			100*m.ClassShare(floc.ClassAttack),
			100*m.Utilization)
		if def == floc.DefFLoc {
			legit := m.FlowBandwidthCDF(floc.ClassLegitAttackPath)
			attack := m.FlowBandwidthCDF(floc.ClassAttack)
			fmt.Printf("          within contaminated domains, per-flow mean: legit %.2f Mb/s vs attack %.2f Mb/s\n",
				legit.Mean()/1e6, attack.Mean()/1e6)
		}
	}
}
