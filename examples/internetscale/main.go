// Internet-scale attack (paper Section VII): a synthetic AS-level
// topology with a CBL-like non-uniform bot distribution floods a 40 Gb/s
// class target link. The example compares no defense, per-flow fairness,
// and FLoc with and without attack-path aggregation — the paper's
// Fig. 13 comparison — at 1/10 scale.
//
// Run with: go run ./examples/internetscale
package main

import (
	"fmt"
	"log"

	"floc"
)

func main() {
	tcfg := floc.DefaultInternetTopologyConfig(floc.FRoot)
	tcfg.LegitSources /= 10
	tcfg.AttackSources /= 10
	topo, err := floc.GenerateInternetTopology(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	st := topo.Summarize()
	fmt.Printf("topology: %d ASes, %d attack ASes, %.0f%% of bots in the top 5%% of attack ASes\n\n",
		st.ASes, st.AttackASes, 100*st.BotsInTop5PercentASesFrac)

	run := func(label string, def string, smax int) {
		cfg := floc.DefaultInternetSimConfig(topo, floc.InetNoDefense)
		switch def {
		case "ff":
			cfg = floc.DefaultInternetSimConfig(topo, floc.InetFairFlow)
		case "floc":
			cfg = floc.DefaultInternetSimConfig(topo, floc.InetFLoc)
		}
		cfg.SMax = smax
		cfg.CapacityPerTick /= 10
		sim, err := floc.NewInternetSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()
		fmt.Printf("%-10s legit(legit-AS)=%5.1f%%  legit(attack-AS)=%4.1f%%  attack=%5.1f%%\n",
			label, 100*res.Share[0], 100*res.Share[1], 100*res.Share[2])
	}
	run("ND", "nd", 0)
	run("FF", "ff", 0)
	run("FLoc-NA", "floc", 0)
	run("FLoc-A100", "floc", 100)
}
