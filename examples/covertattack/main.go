// Covert attack (paper Sections IV-B.3 and VI-D): each bot opens many
// concurrent low-rate flows to distinct destinations; individually every
// flow looks legitimate, collectively they flood the link. FLoc's
// capability construction maps all of a source's destinations into n_max
// fan-out slots, so the bundle is accounted — and penalized — as a
// high-rate flow.
//
// Run with: go run ./examples/covertattack
package main

import (
	"fmt"
	"log"

	"floc"
)

func main() {
	const scale = 0.1
	const fanout = 8 // 8 flows x 0.2 Mb/s per bot = 1.6 Mb/s per bot

	for _, nmax := range []int{0, 2} {
		sc := floc.DefaultScenario(floc.DefFLoc, floc.AttackCovert, scale)
		sc.AttackRateBits = 0.2e6
		sc.CovertFanout = fanout
		sc.NMax = nmax
		sc.Duration = 40
		sc.MeasureFrom = 15
		m, err := floc.RunScenario(sc)
		if err != nil {
			log.Fatal(err)
		}
		label := "without n_max"
		if nmax > 0 {
			label = fmt.Sprintf("with n_max=%d   ", nmax)
		}
		legit := m.ClassShare(floc.ClassLegitLegit) + m.ClassShare(floc.ClassLegitAttackPath)
		fmt.Printf("%s  legit=%5.1f%%  covert-attack=%5.1f%%\n",
			label, 100*legit, 100*m.ClassShare(floc.ClassAttack))
	}
}
