package floc

import (
	"floc/internal/dataplane"
	"floc/internal/wire"
)

// --- Wire codec (the FLoc shim header, package wire) ---

// WireHeader is the decoded FLoc shim header: version, flags, packet
// kind, variable-length domain path identifier, declared length, and the
// optional two-part flow capability.
type WireHeader = wire.Header

// WireFlags is the shim header flag byte.
type WireFlags = wire.Flags

// Wire header flag bits and limits.
const (
	WireVersion1       = wire.Version1
	WireFlagCapability = wire.FlagCapability
	WireFlagAttack     = wire.FlagAttack
	WireFlagPriority   = wire.FlagPriority
	WireMaxPathLen     = wire.MaxPathLen
	WireMaxEncodedLen  = wire.MaxEncodedLen
)

// MarshalWire appends h's encoding to dst (allocation-free with spare
// capacity).
func MarshalWire(dst []byte, h *WireHeader) ([]byte, error) {
	return wire.MarshalAppend(dst, h)
}

// DecodeWire parses one header from the front of buf and returns the
// bytes consumed. Malformed input maps to the wire package's typed
// errors; decoding never panics.
func DecodeWire(buf []byte, h *WireHeader) (int, error) {
	return wire.Decode(buf, h)
}

// --- Sharded multi-core dataplane ---

// Dataplane is the sharded engine: traffic is partitioned by path
// identifier across per-core FLoc routers behind bounded MPSC rings.
type Dataplane = dataplane.Engine

// DataplaneConfig parameterizes a Dataplane; zero Shards means one per
// schedulable core.
type DataplaneConfig = dataplane.Config

// DataplaneStats are the engine's ring-boundary counters.
type DataplaneStats = dataplane.Stats

// NewDataplane builds a sharded dataplane engine and starts its workers.
func NewDataplane(cfg DataplaneConfig) (*Dataplane, error) { return dataplane.New(cfg) }
