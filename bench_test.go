// Benchmarks regenerating every figure of the paper's evaluation, one
// bench per figure, at a reduced scale that preserves every rate ratio
// (per-flow fair shares, attack-to-capacity ratios). Run the cmd/flocsim
// and cmd/inetsim binaries at -scale 1.0 for paper-scale numbers; run
// these with
//
//	go test -bench=. -benchmem
//
// for quick regeneration and performance tracking. Each bench reports
// the figure's headline metric as a custom benchmark metric so shape
// regressions are visible in benchmark output.
package floc_test

import (
	"fmt"
	"testing"

	"floc"
)

// benchScale keeps one iteration around a second.
const benchScale = 0.05

func benchScenario(def floc.DefenseKind, atk floc.AttackKind) floc.Scenario {
	sc := floc.DefaultScenario(def, atk, benchScale)
	sc.Duration = 25
	sc.MeasureFrom = 10
	return sc
}

// BenchmarkFig2 regenerates the service-vs-drop-rate motivation data.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := floc.Fig2(benchScale, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the packet-size distribution.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := floc.Fig3(benchScale, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the token-request model curves.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := floc.Fig4(10, 8); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchFig6 runs one attack-confinement scenario and reports the mean
// legitimate-path share.
func benchFig6(b *testing.B, kind floc.AttackKind) {
	b.Helper()
	var share float64
	for i := 0; i < b.N; i++ {
		m, err := floc.RunScenario(benchScenario(floc.DefFLoc, kind))
		if err != nil {
			b.Fatal(err)
		}
		share = m.ClassShare(floc.ClassLegitLegit)
	}
	b.ReportMetric(share, "legit_share")
}

// BenchmarkFig6a: high-population TCP attack confinement.
func BenchmarkFig6a(b *testing.B) { benchFig6(b, floc.AttackTCPPop) }

// BenchmarkFig6b: CBR attack confinement.
func BenchmarkFig6b(b *testing.B) { benchFig6(b, floc.AttackCBR) }

// BenchmarkFig6c: Shrew attack confinement.
func BenchmarkFig6c(b *testing.B) { benchFig6(b, floc.AttackShrew) }

// BenchmarkFig7 regenerates the robustness CDF comparison (one attack
// rate per defense to keep iterations bounded).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScenario(floc.DefFLoc, floc.AttackCBR)
		m, err := floc.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		cdf := m.FlowBandwidthCDF(floc.ClassLegitLegit)
		if i == b.N-1 {
			b.ReportMetric(cdf.Quantile(0.5)/1e6, "p50_mbps")
		}
	}
}

// BenchmarkFig8 regenerates the differential-guarantee comparison at one
// attack rate for all three defenses.
func BenchmarkFig8(b *testing.B) {
	var legit float64
	for i := 0; i < b.N; i++ {
		for _, def := range []floc.DefenseKind{floc.DefFLoc, floc.DefPushback, floc.DefREDPD} {
			sc := benchScenario(def, floc.AttackCBR)
			if def == floc.DefFLoc {
				sc.SMax = 25
			}
			m, err := floc.RunScenario(sc)
			if err != nil {
				b.Fatal(err)
			}
			if def == floc.DefFLoc {
				legit = m.ClassShare(floc.ClassLegitLegit)
			}
		}
	}
	b.ReportMetric(legit, "floc_legit_share")
}

// BenchmarkFig9 regenerates the legitimate-path aggregation comparison.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScenario(floc.DefFLoc, floc.AttackCBR)
		sc.SMax = 25
		sc.LegitAgg = true
		sc.SmallLeaves = []int{6, 7, 8}
		if _, err := floc.RunScenario(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the covert-attack comparison at one fanout.
func BenchmarkFig10(b *testing.B) {
	var legit float64
	for i := 0; i < b.N; i++ {
		sc := benchScenario(floc.DefFLoc, floc.AttackCovert)
		sc.AttackRateBits = 0.2e6
		sc.CovertFanout = 8
		sc.NMax = 2
		m, err := floc.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		legit = m.ClassShare(floc.ClassLegitLegit) + m.ClassShare(floc.ClassLegitAttackPath)
	}
	b.ReportMetric(legit, "legit_share")
}

// BenchmarkTopogen regenerates the Fig. 11/12 topology summaries.
func BenchmarkTopogen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := floc.FigTopology(100, false, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInet runs one Internet-scale figure at reduced scale.
func benchInet(b *testing.B, figure string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg, err := floc.DefaultInetFigConfig(figure, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Profiles = cfg.Profiles[:1] // one profile per iteration
		cfg.Ticks = 300
		cfg.WarmupTicks = 100
		tab, err := floc.FigInternet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig13: Internet-scale, attackers in 100 ASes.
func BenchmarkFig13(b *testing.B) { benchInet(b, "fig13") }

// BenchmarkFig14: Internet-scale, attackers in 300 ASes.
func BenchmarkFig14(b *testing.B) { benchInet(b, "fig14") }

// BenchmarkFig15: Internet-scale, separated legitimate/attack ASes.
func BenchmarkFig15(b *testing.B) { benchInet(b, "fig15") }

// BenchmarkFLocRouterEnqueue measures the router's per-packet cost on a
// steady stream (the data-plane hot path). The router is driven through
// the Discipline interface exactly as a Link invokes it, so the numbers
// reflect the simulator's real call pattern (and build tags cannot skew
// the comparison via call-site inlining).
func BenchmarkFLocRouterEnqueue(b *testing.B) {
	r, err := floc.NewRouter(floc.DefaultRouterConfig(1e9, 1000))
	if err != nil {
		b.Fatal(err)
	}
	var q floc.Discipline = r
	path := floc.NewPathID(7, 3, 1)
	pkt := &floc.Packet{Src: 1, Dst: 2, Size: 1000, Kind: floc.KindUDP, Path: path, PathKey: path.Key()}
	pkt.PathHandle = r.InternPath(path) // producers stamp handles, as the wire pipeline does
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 8e-6 // 125k packets/s
		q.Enqueue(pkt, now)
		q.Dequeue(now)
	}
}

// BenchmarkFLocRouterEnqueueBatch measures the handle-stamped batched
// admission path at the dataplane's batch sizes. Items rotate over enough
// distinct paths to defeat the router's last-key memo, so the numbers
// reflect the open-addressed table probes rather than the memo hit.
func BenchmarkFLocRouterEnqueueBatch(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			r, err := floc.NewRouter(floc.DefaultRouterConfig(1e9, 1000))
			if err != nil {
				b.Fatal(err)
			}
			const nPaths = 8
			paths := make([]floc.PathID, nPaths)
			keys := make([]string, nPaths)
			handles := make([]uint32, nPaths)
			for i := range paths {
				paths[i] = floc.NewPathID(floc.ASN(100+i), 3, 1)
				keys[i] = paths[i].Key()
				handles[i] = r.InternPath(paths[i])
			}
			pkts := make([]floc.Packet, size)
			items := make([]floc.BatchItem, size)
			now := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				for j := range items {
					now += 8e-6
					pi := (i + j) % nPaths
					pkts[j] = floc.Packet{
						ID: uint64(i + j), Src: uint32(j), Dst: 2, Size: 1000,
						Kind: floc.KindUDP, Path: paths[pi], PathKey: keys[pi],
						PathHandle: handles[pi],
					}
					items[j] = floc.BatchItem{Pkt: &pkts[j], At: now}
				}
				r.EnqueueBatch(items)
				for j := 0; j < size; j++ {
					r.Dequeue(now)
				}
			}
		})
	}
}

// BenchmarkFLocRouterEnqueueTelemetry is the same hot path with a full
// telemetry instance attached (registry counters, queue-delay histogram,
// event trace), showing the enabled-path cost. The disabled-path cost —
// the one the CI overhead gate bounds — is BenchmarkFLocRouterEnqueue in
// the default build versus the same bench under -tags flocnotelemetry.
func BenchmarkFLocRouterEnqueueTelemetry(b *testing.B) {
	r, err := floc.NewRouter(floc.DefaultRouterConfig(1e9, 1000))
	if err != nil {
		b.Fatal(err)
	}
	r.SetTelemetry(floc.NewTelemetry(floc.TelemetryOptions{TraceCapacity: 1 << 16}))
	var q floc.Discipline = r
	path := floc.NewPathID(7, 3, 1)
	pkt := &floc.Packet{Src: 1, Dst: 2, Size: 1000, Kind: floc.KindUDP, Path: path, PathKey: path.Key()}
	pkt.PathHandle = r.InternPath(path)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 8e-6 // 125k packets/s
		q.Enqueue(pkt, now)
		q.Dequeue(now)
	}
}

// BenchmarkNetsimThroughput measures raw simulator event throughput: a
// saturated link with a self-rescheduling source (two events per packet
// plus delivery).
func BenchmarkNetsimThroughput(b *testing.B) {
	net := floc.NewNetwork(1)
	link, err := floc.NewLink("l", 1e9, 0.001, floc.NewFIFO(1000), &endpointSink{})
	if err != nil {
		b.Fatal(err)
	}
	pkt := &floc.Packet{Src: 1, Dst: 2, Size: 1000, Kind: floc.KindUDP}
	sent := 0
	var send func()
	send = func() {
		link.Send(net, pkt)
		sent++
		if sent < b.N {
			net.ScheduleIn(8e-6, send)
		}
	}
	b.ResetTimer()
	net.Schedule(0, send)
	net.Run(1e18)
	if link.Stats().Delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkFLocControlLoop measures the control loop with 200 active
// paths and 1000 flows.
func BenchmarkFLocControlLoop(b *testing.B) {
	r, err := floc.NewRouter(floc.DefaultRouterConfig(1e9, 2000))
	if err != nil {
		b.Fatal(err)
	}
	now := 0.0
	paths := make([]floc.PathID, 200)
	keys := make([]string, 200)
	for i := range paths {
		paths[i] = floc.NewPathID(floc.ASN(100+i), floc.ASN(i%10), 1)
		keys[i] = paths[i].Key()
	}
	// Populate 5 flows per path.
	for i, p := range paths {
		for f := 0; f < 5; f++ {
			pkt := &floc.Packet{
				Src: uint32(i*10 + f), Dst: 2, Size: 1000,
				Kind: floc.KindUDP, Path: p, PathKey: keys[i],
			}
			r.Enqueue(pkt, now)
			r.Dequeue(now)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration crosses a control boundary (interval 0.5 s).
		now += 0.51
		pkt := &floc.Packet{Src: 1, Dst: 2, Size: 1000, Kind: floc.KindUDP, Path: paths[0], PathKey: keys[0]}
		r.Enqueue(pkt, now)
		r.Dequeue(now)
	}
}
