package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floc/internal/core"
	"floc/internal/ledger"
	"floc/internal/telemetry"
)

// writeTrace dumps events as NDJSON, the same framing a trace ring dump
// or flocd ledger uses.
func writeTrace(t *testing.T, path string, events []telemetry.Event) {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// traceEvents is a small single-router stream: two admits, one drop, one
// control run, plus an unsealed tail admit.
func traceEvents() []telemetry.Event {
	return []telemetry.Event{
		{Time: 0.1, Type: telemetry.EventPacketAdmitted, Path: "100-10-1"},
		{Time: 0.2, Type: telemetry.EventPacketAdmitted, Path: "100-10-1"},
		{Time: 0.3, Type: telemetry.EventPacketDropped, Path: "108-12-1", Reason: "no-token"},
		{Time: 0.4, Type: telemetry.EventControlRunCompleted, Value: 1},
		{Time: 0.5, Type: telemetry.EventPacketAdmitted, Path: "100-10-1"},
	}
}

// claimedSnapshot is the Snapshot traceEvents folds to.
func claimedSnapshot() core.Snapshot {
	return core.Snapshot{
		Mode:        core.ModeUncongested,
		Arrived:     4,
		Admitted:    3,
		Drops:       map[string]int64{"no-token": 1},
		ControlRuns: 1,
		Paths: []core.PathInfo{
			{Key: "100-10-1", AdmittedPackets: 3},
			{Key: "108-12-1", DroppedPackets: 1},
		},
	}
}

func sealAndVerify(t *testing.T) (dir string) {
	t.Helper()
	base := t.TempDir()
	trace := filepath.Join(base, "events.ndjson")
	dir = filepath.Join(base, "ledger")
	writeTrace(t, trace, traceEvents())

	var out bytes.Buffer
	if err := run([]string{"seal", "-trace", trace, "-out", dir}, &out); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if !strings.Contains(out.String(), "sealed 5 events into 2 segments") {
		t.Fatalf("seal output: %q", out.String())
	}
	return dir
}

func TestSealVerifyReplayPipeline(t *testing.T) {
	dir := sealAndVerify(t)

	var out bytes.Buffer
	if err := run([]string{"verify", "-ledger", dir}, &out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "verified 2 segments, 5 events") ||
		!strings.Contains(out.String(), "head ") {
		t.Fatalf("verify output: %q", out.String())
	}

	snapPath := filepath.Join(dir, ledger.SnapshotName)
	if err := ledger.WriteSnapshot(snapPath, claimedSnapshot()); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"replay", "-ledger", dir}, &out); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out.String(), "replay matches claimed snapshot") {
		t.Fatalf("replay output: %q", out.String())
	}
}

func TestReplayRejectsForgedSnapshot(t *testing.T) {
	dir := sealAndVerify(t)
	forged := claimedSnapshot()
	forged.Admitted = 30
	forged.Arrived = 31
	if err := ledger.WriteSnapshot(filepath.Join(dir, ledger.SnapshotName), forged); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"replay", "-ledger", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "admitted") {
		t.Fatalf("forged snapshot not rejected: %v", err)
	}
}

func TestVerifyNamesTamperedSegment(t *testing.T) {
	dir := sealAndVerify(t)
	path := filepath.Join(dir, "events-000001.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first event (segment 0).
	i := bytes.IndexByte(b, '1')
	b[i] = '2'
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"verify", "-ledger", dir}, &out)
	var verr *ledger.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("verify error is %T, want *ledger.VerifyError: %v", err, err)
	}
	if verr.Kind != ledger.ErrRootMismatch || verr.Segment != 0 {
		t.Fatalf("verify error = %v, want root-mismatch at segment 0", err)
	}
	if !strings.Contains(err.Error(), "root-mismatch at segment 0") {
		t.Fatalf("error text must name the segment: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no subcommand must error")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("unknown subcommand must error")
	}
	if err := run([]string{"verify"}, &out); err == nil {
		t.Fatal("verify without -ledger must error")
	}
	if err := run([]string{"seal"}, &out); err == nil {
		t.Fatal("seal without -out must error")
	}
	if err := run([]string{"replay"}, &out); err == nil {
		t.Fatal("replay without -ledger must error")
	}
}
