// Command floctrace is the forensic toolchain for FLoc event-trace
// ledgers (package ledger): sealing an event stream into tamper-evident
// storage, verifying a sealed ledger byte-for-byte, and replaying the
// sealed events against the Snapshot the run claims to have ended in.
//
//	floctrace seal   -trace events.ndjson -out ledgerdir
//	floctrace verify -ledger ledgerdir
//	floctrace replay -ledger ledgerdir [-snapshot snapshot.json]
//
// verify recomputes every segment's Merkle root from the stored bytes,
// checks the record hash chain and spot inclusion proofs, and fails with
// a typed error naming the offending segment. replay is verify plus the
// replay-equals-snapshot fold: the sealed events are decoded and folded
// into the router state they imply, and any disagreement with the
// claimed snapshot is printed one line per field. Exit status is 0 only
// when everything checks out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"floc/internal/ledger"
	"floc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "floctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: floctrace <seal|verify|replay> [flags]")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "seal":
		return runSeal(rest, out)
	case "verify":
		return runVerify(rest, out)
	case "replay":
		return runReplay(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want seal, verify, or replay)", cmd)
	}
}

// runSeal seals an NDJSON event stream (e.g. a dumped trace ring) into a
// fresh ledger directory, segmenting at control-run boundaries exactly
// like live sealing in flocd.
func runSeal(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("seal", flag.ContinueOnError)
	trace := fs.String("trace", "", "NDJSON event stream to seal (default stdin)")
	dir := fs.String("out", "", "ledger directory to create (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("seal: -out is required")
	}
	in := os.Stdin
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := telemetry.ReadNDJSON(in)
	if err != nil {
		return fmt.Errorf("seal: %w", err)
	}
	s, err := ledger.NewSealer(*dir, ledger.SealerOptions{})
	if err != nil {
		return err
	}
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		return err
	}
	head := s.Head()
	fmt.Fprintf(out, "sealed %d events into %d segments in %s\nhead %x\n",
		s.Events(), s.Segments(), *dir, head[:])
	return nil
}

// runVerify checks a ledger end-to-end and prints the report.
func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	dir := fs.String("ledger", "", "ledger directory to verify (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify: -ledger is required")
	}
	rep, err := ledger.Verify(*dir)
	if err != nil {
		return err
	}
	printReport(out, rep)
	return nil
}

// runReplay verifies, decodes, folds, and diffs against the claimed
// snapshot. Any diff is an error: the evidence does not support the claim.
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	dir := fs.String("ledger", "", "ledger directory to replay (required)")
	snapPath := fs.String("snapshot", "", "claimed snapshot JSON (default <ledger>/"+ledger.SnapshotName+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("replay: -ledger is required")
	}
	if *snapPath == "" {
		*snapPath = filepath.Join(*dir, ledger.SnapshotName)
	}
	rep, events, err := ledger.VerifyCollect(*dir)
	if err != nil {
		return err
	}
	printReport(out, rep)
	snap, err := ledger.ReadSnapshot(*snapPath)
	if err != nil {
		return err
	}
	res := ledger.Replay(events)
	if diffs := res.Diff(snap); len(diffs) != 0 {
		return fmt.Errorf("replayed events do not reproduce the claimed snapshot:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	fmt.Fprintf(out, "replay matches claimed snapshot: %d events -> admitted %d, dropped %d, %d control runs, mode %s\n",
		res.Events, res.Admitted, res.Dropped, res.ControlRuns, res.Mode)
	return nil
}

// printReport renders a verification report, head last so the anchor
// value is the easiest line to copy out.
func printReport(out io.Writer, rep *ledger.VerifyReport) {
	fmt.Fprintf(out, "verified %d segments, %d events, %d files, %d inclusion proofs\nhead %x\n",
		rep.Segments, rep.Events, rep.Files, rep.ProofChecks, rep.Head[:])
}
