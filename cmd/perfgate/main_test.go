package main

import (
	"strings"
	"testing"
)

const baseSnap = `{
  "schema": "floc-bench-snapshot/v1",
  "benchmarks": {
    "router_enqueue": {"bench": "BenchmarkFLocRouterEnqueue", "ns_per_op": 30.0},
    "dataplane_sharded": [
      {"shards": 1, "ns_per_op": 130.0, "mpps": 7.692},
      {"shards": 4, "ns_per_op": 120.0, "mpps": 8.333}
    ],
    "wire_decode": {"bench": "BenchmarkWireDecode", "ns_per_op": 21.0}
  }
}`

func run(t *testing.T, oldJSON, newJSON string, pct float64) (regressions, notes []string) {
	t.Helper()
	regressions, notes, err := compare([]byte(oldJSON), []byte(newJSON), pct)
	if err != nil {
		t.Fatal(err)
	}
	return regressions, notes
}

func TestWithinBudgetPasses(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap, "30.0", "32.0") // +6.7% < 10%
	if regs, _ := run(t, baseSnap, newSnap, 10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestNsRegressionFails(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap, `"ns_per_op": 30.0`, `"ns_per_op": 40.0`)
	regs, _ := run(t, baseSnap, newSnap, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "router_enqueue") {
		t.Fatalf("want one router_enqueue regression, got %v", regs)
	}
}

func TestMppsRegressionFails(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap, `"mpps": 7.692`, `"mpps": 6.0`)
	regs, _ := run(t, baseSnap, newSnap, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "dataplane_sharded{shards=1} mpps") {
		t.Fatalf("want one shards=1 mpps regression, got %v", regs)
	}
}

func TestThresholdOverride(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap, `"ns_per_op": 30.0`, `"ns_per_op": 33.0`) // +10%
	if regs, _ := run(t, baseSnap, newSnap, 25); len(regs) != 0 {
		t.Fatalf("+10%% must pass a 25%% budget, got %v", regs)
	}
	if regs, _ := run(t, baseSnap, newSnap, 5); len(regs) != 1 {
		t.Fatalf("+10%% must fail a 5%% budget, got %v", regs)
	}
}

func TestDroppedFamilyFails(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap,
		`    "wire_decode": {"bench": "BenchmarkWireDecode", "ns_per_op": 21.0}`,
		`    "wire_decode_renamed": {"bench": "BenchmarkWireDecode", "ns_per_op": 21.0}`)
	regs, notes := run(t, baseSnap, newSnap, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "wire_decode: family dropped") {
		t.Fatalf("want dropped-family regression, got %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "wire_decode_renamed") {
		t.Fatalf("want new-family note, got %v", notes)
	}
}

func TestNewFamilySkipped(t *testing.T) {
	newSnap := strings.Replace(baseSnap, `"benchmarks": {`,
		`"benchmarks": {
    "router_enqueue_batch": [{"batch": 16, "ns_per_op": 12.0}],`, 1)
	regs, notes := run(t, baseSnap, newSnap, 10)
	if len(regs) != 0 {
		t.Fatalf("additions are not regressions, got %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "router_enqueue_batch") {
		t.Fatalf("want one new-family note, got %v", notes)
	}
}

func TestDroppedArrayEntryFails(t *testing.T) {
	newSnap := strings.ReplaceAll(baseSnap,
		`      {"shards": 4, "ns_per_op": 120.0, "mpps": 8.333}`,
		`      {"shards": 8, "ns_per_op": 120.0, "mpps": 8.333}`)
	regs, _ := run(t, baseSnap, newSnap, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "shards=4}: entry dropped") {
		t.Fatalf("want dropped-entry regression, got %v", regs)
	}
}

func TestSchemaMismatchErrors(t *testing.T) {
	bad := strings.ReplaceAll(baseSnap, "floc-bench-snapshot/v1", "floc-bench-snapshot/v2")
	if _, _, err := compare([]byte(baseSnap), []byte(bad), 10); err == nil {
		t.Fatal("schema mismatch must be an error")
	}
}
