// Command perfgate compares two bench-snapshot JSON files (the
// scripts/bench-snapshot.sh format) and fails when the new snapshot has
// regressed past a percentage threshold. It is the enforcement half of
// the repo's perf trajectory: BENCH_*.json files record where the hot
// path has been, and check.sh's perf-gate stage refuses changes that
// fall more than -pct percent behind the latest committed snapshot.
//
//	perfgate -old BENCH_1.json -new /tmp/fresh.json -pct 10
//
// Comparison rules, per family under "benchmarks":
//
//   - Flat families ({"ns_per_op": ...}) compare ns/op; higher is worse.
//   - Array families compare entry-by-entry, matched on the family's
//     parameter key ("shards", "batch"): ns/op higher-is-worse, and
//     "mpps" lower-is-worse where present.
//   - Families or entries present only in the new snapshot are additions,
//     not regressions; families present only in the old snapshot are
//     reported as dropped coverage and fail the gate (a family silently
//     disappearing is how regressions hide).
//
// Exit status 0 when every family is within budget, 1 on any regression
// or dropped family, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline snapshot (required)")
		newPath = flag.String("new", "", "candidate snapshot (required)")
		pct     = flag.Float64("pct", 10, "allowed regression in percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -old and -new are required")
		os.Exit(2)
	}
	oldRaw, err := os.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	newRaw, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	regressions, notes, err := compare(oldRaw, newRaw, *pct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	for _, n := range notes {
		fmt.Printf("perfgate: %s\n", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Printf("perfgate: REGRESSION %s\n", r)
		}
		fmt.Printf("perfgate: %d regression(s) past the %.1f%% budget (%s -> %s)\n",
			len(regressions), *pct, *oldPath, *newPath)
		os.Exit(1)
	}
	fmt.Printf("perfgate: ok, every family within %.1f%% of %s\n", *pct, *oldPath)
}

// snapshot is the subset of the bench-snapshot schema the gate reads.
type snapshot struct {
	Schema     string                     `json:"schema"`
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
}

// entry is one measurement: a flat family decodes to exactly one, an
// array family to one per parameter point.
type entry struct {
	Shards  *float64 `json:"shards"`
	Batch   *float64 `json:"batch"`
	NsPerOp float64  `json:"ns_per_op"`
	Mpps    *float64 `json:"mpps"`
}

// param returns the entry's parameter axis as "name=value", "" for flat
// families.
func (e entry) param() string {
	switch {
	case e.Shards != nil:
		return fmt.Sprintf("shards=%g", *e.Shards)
	case e.Batch != nil:
		return fmt.Sprintf("batch=%g", *e.Batch)
	}
	return ""
}

// compare diffs two snapshots and returns the regression and note lines.
func compare(oldRaw, newRaw []byte, pct float64) (regressions, notes []string, err error) {
	var oldSnap, newSnap snapshot
	if err := json.Unmarshal(oldRaw, &oldSnap); err != nil {
		return nil, nil, fmt.Errorf("old snapshot: %w", err)
	}
	if err := json.Unmarshal(newRaw, &newSnap); err != nil {
		return nil, nil, fmt.Errorf("new snapshot: %w", err)
	}
	if oldSnap.Schema != newSnap.Schema {
		return nil, nil, fmt.Errorf("schema mismatch: %q vs %q", oldSnap.Schema, newSnap.Schema)
	}

	families := make([]string, 0, len(oldSnap.Benchmarks))
	for name := range oldSnap.Benchmarks {
		families = append(families, name)
	}
	sort.Strings(families)

	for _, name := range families {
		newFam, ok := newSnap.Benchmarks[name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: family dropped from the new snapshot", name))
			continue
		}
		oldEntries, err := famEntries(oldSnap.Benchmarks[name])
		if err != nil {
			return nil, nil, fmt.Errorf("old %s: %w", name, err)
		}
		newEntries, err := famEntries(newFam)
		if err != nil {
			return nil, nil, fmt.Errorf("new %s: %w", name, err)
		}
		byParam := map[string]entry{}
		for _, e := range newEntries {
			byParam[e.param()] = e
		}
		for _, oldE := range oldEntries {
			newE, ok := byParam[oldE.param()]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s{%s}: entry dropped from the new snapshot", name, oldE.param()))
				continue
			}
			label := name
			if p := oldE.param(); p != "" {
				label = name + "{" + p + "}"
			}
			regressions = append(regressions,
				checkMetric(label, "ns/op", oldE.NsPerOp, newE.NsPerOp, pct, true)...)
			if oldE.Mpps != nil && newE.Mpps != nil {
				regressions = append(regressions,
					checkMetric(label, "mpps", *oldE.Mpps, *newE.Mpps, pct, false)...)
			}
		}
	}

	for name := range newSnap.Benchmarks {
		if _, ok := oldSnap.Benchmarks[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new family, no baseline to compare", name))
		}
	}
	sort.Strings(notes)
	return regressions, notes, nil
}

// famEntries decodes one family value: a single object or an array.
func famEntries(raw json.RawMessage) ([]entry, error) {
	var one entry
	if err := json.Unmarshal(raw, &one); err == nil {
		return []entry{one}, nil
	}
	var many []entry
	if err := json.Unmarshal(raw, &many); err != nil {
		return nil, err
	}
	return many, nil
}

// checkMetric compares one metric: with higherWorse, the budget is
// new <= old*(1+pct/100); otherwise new >= old*(1-pct/100).
func checkMetric(label, metric string, old, cur, pct float64, higherWorse bool) []string {
	if old <= 0 {
		return nil // malformed or absent baseline point: nothing to hold to
	}
	delta := (cur - old) / old * 100
	breached := higherWorse && delta > pct || !higherWorse && -delta > pct
	if !breached {
		return nil
	}
	return []string{fmt.Sprintf("%s %s %.2f -> %.2f (%+.1f%%, past the %.1f%% budget)",
		label, metric, old, cur, delta, pct)}
}
