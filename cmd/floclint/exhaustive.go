package main

// The exhaustive rule: closed-enum switch coverage.
//
// The repo's dispatch enums — netsim.PacketKind, core drop reasons and
// router modes, wire error kinds, dataplane command kinds — are closed
// sets the paper's semantics depend on, and each grows when a protocol
// surface grows (the planned in-band pushback frames add packet kinds,
// a congestion-feedback frame adds wire error shapes). A type marked
// with a //floc:enum directive declares the set closed; every switch
// over it must then name every member, so adding a member breaks the
// build at every dispatch site instead of silently falling through a
// default.
//
// Members are the package-level constants of the marked type, collected
// syntactically per module (iota blocks inherit the type of the previous
// spec, mirroring Go's const-repetition rule). A count sentinel like
// numDropReasons is excluded with //floc:enumbound on its line.
//
// A default clause does NOT satisfy the rule: defaults are for the
// out-of-range values a cast can produce, not for members. A switch
// that deliberately handles a subset carries
// //floc:nonexhaustive <reason> on (or directly above) the switch line;
// the reason is mandatory, as with //floc:coldpath.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustiveness directives.
const (
	enumDirective          = "floc:enum"
	enumBoundDirective     = "floc:enumbound"
	nonexhaustiveDirective = "floc:nonexhaustive"
)

// enumTable carries the module-wide enum declarations: which named types
// are marked closed, and the constant members of every candidate type
// (collected unconditionally so marks and const blocks may live in
// different files).
type enumTable struct {
	marked  map[string]bool     // "pkgpath.Type" -> //floc:enum seen
	members map[string][]string // "pkgpath.Type" -> const names in decl order
}

func newEnumTable() *enumTable {
	return &enumTable{marked: map[string]bool{}, members: map[string][]string{}}
}

// membersOf returns the member names of a marked enum, nil when the type
// is not a marked enum (or has no collected constants).
func (t *enumTable) membersOf(key string) []string {
	if !t.marked[key] {
		return nil
	}
	return t.members[key]
}

// hasBareDirective reports whether a comment line carries the directive
// with no requirement on trailing text (the directive must start the
// line, as with every floc: directive).
func hasBareDirective(text, dir string) bool {
	return taintDirectiveFields(text, dir) != nil
}

// collectEnumDecls scans one parsed file for //floc:enum type marks and
// typed constant declarations, filling tbl. Purely syntactic.
func collectEnumDecls(pkgPath string, f *ast.File, tbl *enumTable) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		switch gd.Tok {
		case token.TYPE:
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(gd.Specs) == 1 {
					groups = append(groups, gd.Doc)
				}
				for _, group := range groups {
					if group == nil {
						continue
					}
					for _, c := range group.List {
						if hasBareDirective(c.Text, enumDirective) {
							tbl.marked[pkgPath+"."+ts.Name.Name] = true
						}
					}
				}
			}
		case token.CONST:
			collectEnumConsts(pkgPath, gd, tbl)
		}
	}
}

// collectEnumConsts walks one const block tracking the implied type of
// each spec: an explicit type sets it, a spec with neither type nor
// values repeats the previous spec (Go's const-repetition rule, the iota
// idiom), and a spec with values but no type is untyped and clears it.
func collectEnumConsts(pkgPath string, gd *ast.GenDecl, tbl *enumTable) {
	curType := ""
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case vs.Type != nil:
			if id, ok := vs.Type.(*ast.Ident); ok {
				curType = id.Name
			} else {
				curType = "" // qualified or composite type: not a local enum
			}
		case len(vs.Values) > 0:
			curType = "" // untyped constant expression
		}
		if curType == "" {
			continue
		}
		if enumBoundMarked(vs) {
			continue // count sentinel: one past the last member
		}
		key := pkgPath + "." + curType
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			tbl.members[key] = append(tbl.members[key], name.Name)
		}
	}
}

// enumBoundMarked reports whether the spec's doc or trailing comment
// carries //floc:enumbound.
func enumBoundMarked(vs *ast.ValueSpec) bool {
	for _, group := range []*ast.CommentGroup{vs.Doc, vs.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if hasBareDirective(c.Text, enumBoundDirective) {
				return true
			}
		}
	}
	return false
}

// collectWaivers maps source lines carrying //floc:nonexhaustive to the
// waiver's reason text, reporting directives with no reason (a waiver
// must say why the subset is the contract).
func (l *linter) collectWaivers(f *ast.File) map[int]string {
	out := map[int]string{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			fields := taintDirectiveFields(c.Text, nonexhaustiveDirective)
			if fields == nil {
				continue
			}
			line := l.fset.Position(c.Pos()).Line
			reason := strings.Join(fields, " ")
			if reason == "" {
				l.report(c.Pos(), RuleExhaustive,
					"//floc:nonexhaustive needs a reason (why is handling a subset of the enum the contract here?)")
			}
			out[line] = reason
		}
	}
	return out
}

// checkExhaustive runs the exhaustive rule over one file: every switch
// whose tag is a marked enum type must cover every member or carry a
// reasoned waiver.
func (l *linter) checkExhaustive(f *ast.File) {
	waivers := l.collectWaivers(f)
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		t := l.info.Types[sw.Tag].Type
		key := namedKeyOf(t)
		if key == "" {
			return true
		}
		members := l.enums.membersOf(key)
		if len(members) == 0 {
			return true
		}
		line := l.fset.Position(sw.Switch).Line
		for _, wl := range []int{line, line - 1} {
			if reason, ok := waivers[wl]; ok && reason != "" {
				return true // reasoned waiver
			}
		}
		covered := l.coveredConsts(sw)
		var missing []string
		for _, m := range members {
			if !covered[m] {
				missing = append(missing, m)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			l.report(sw.Switch, RuleExhaustive,
				"switch over %s does not cover %s; add the cases or waive with //floc:nonexhaustive <reason>",
				key, strings.Join(missing, ", "))
		}
		return true
	})
}

// coveredConsts collects the constant names the switch's cases resolve
// to. Non-constant case expressions cover nothing.
func (l *linter) coveredConsts(sw *ast.SwitchStmt) map[string]bool {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch e := unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			if cst, ok := l.info.Uses[id].(*types.Const); ok {
				covered[cst.Name()] = true
			}
		}
	}
	return covered
}

// namedKeyOf returns "pkgpath.Name" for a named (possibly aliased) type,
// "" otherwise.
func namedKeyOf(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
