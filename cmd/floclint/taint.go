package main

// The taint rule: provenance tracking for attacker-controlled wire input.
//
// Every enforcement decision FLoc makes is driven by fields an attacker
// chooses on the wire — path identifiers, packet kinds, capability slots,
// declared lengths — and Optimal Filtering's core observation is that
// state sized or indexed by attacker-observable fields is itself an
// attack vector. The rule makes "validate before you trust" a statically
// checked contract: a value derived from a //floc:untrusted source must
// pass through a //floc:sanitizes function before it flows into
//
//   - an array/slice index or slice bound,
//   - a make size/capacity argument,
//   - a loop bound (the condition of a for statement),
//   - a map key (unbounded attacker-keyed state growth), or
//   - a parameter annotated //floc:sink <name> <what> (e.g. the
//     dataplane's shard-hash input).
//
// Taint propagates forward in statement order through assignments,
// arithmetic, field selects, conversions, and intra-module call/return
// boundaries, using the same module-wide syntactic directive table as the
// units and hotpath rules. Calls to functions outside the directive
// system (stdlib, dynamic) propagate conservatively: if any argument is
// tainted, the results are tainted and pointer-shaped arguments are
// treated as tainted out-parameters (this is how json.Unmarshal spreads a
// capture line's taint into the decoded record).
//
// Granularity is per-object: assigning a tainted value to a variable (or
// through a pointer) taints the whole variable; reads of any field or
// element of a tainted value are tainted. Storing into a single field or
// element of an already-clean aggregate does not re-taint it — that is
// the validate-then-fill idiom wire.Decode uses (header fields are
// range-checked before the path walk is trusted). A sanitizer call
// clears the taint of its argument roots and receiver and returns clean
// results; the rule does not verify that the sanitizer's error result is
// checked (that contract stays with the sanitizer's own tests, as with
// eq-guard).
//
// The rule is deliberately shallow where the type system already bounds
// the blast radius: ranging over a tainted slice yields tainted values
// but a clean index (the iteration is bounded by the real length), and
// len/cap of a tainted value is tainted (a declared length is exactly
// the field an attacker lies about).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint directives.
const (
	untrustedDirective = "floc:untrusted"
	sanitizesDirective = "floc:sanitizes"
	sinkDirective      = "floc:sink"
)

// taintFunc is one function's taint contract.
type taintFunc struct {
	// untrusted holds parameter names, named-result names, and "return"
	// (the first result) that carry attacker-controlled data.
	untrusted map[string]bool
	// sanitizes marks the function as a validation boundary.
	sanitizes bool
	// sinks maps parameter names to a short description of the sink the
	// parameter feeds (e.g. "shard-hash input").
	sinks map[string]string
}

// taintTable carries the module-wide taint directives, collected
// syntactically alongside the units and hotpath tables.
type taintTable struct {
	funcs  map[string]*taintFunc // "pkgpath.[Recv.]Func"
	fields map[string]bool       // "pkgpath.Type.Field" -> untrusted
}

func newTaintTable() *taintTable {
	return &taintTable{funcs: map[string]*taintFunc{}, fields: map[string]bool{}}
}

// taintDirectiveFields returns the tokens following directive dir on a
// comment line, nil when the line does not carry it. The directive must
// start the comment line, exactly as with floc:unit; an inline "//"
// starts a trailing comment and ends the directive's arguments.
func taintDirectiveFields(text, dir string) []string {
	t := strings.TrimSpace(strings.TrimLeft(text, "/"))
	if !strings.HasPrefix(t, dir) {
		return nil
	}
	rest := t[len(dir):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. "floc:untrustedx"
	}
	fields := strings.Fields(rest)
	for i, f := range fields {
		if strings.HasPrefix(f, "//") {
			fields = fields[:i]
			break
		}
	}
	if fields == nil {
		return []string{}
	}
	return fields
}

// collectTaintDecls scans one parsed file for taint directives, filling
// tbl. Purely syntactic, like collectUnitDecls.
func collectTaintDecls(pkgPath string, f *ast.File, tbl *taintTable) {
	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			collectFuncTaint(pkgPath, decl, tbl)
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectFieldTaint(pkgPath, ts.Name.Name, st, tbl)
			}
		}
	}
}

// collectFuncTaint reads "floc:untrusted <name>...", "floc:sanitizes",
// and "floc:sink <name> <what>" lines from a function's doc comment.
func collectFuncTaint(pkgPath string, fn *ast.FuncDecl, tbl *taintTable) {
	if fn.Doc == nil {
		return
	}
	var tf *taintFunc
	ensure := func() *taintFunc {
		if tf == nil {
			tf = &taintFunc{untrusted: map[string]bool{}, sinks: map[string]string{}}
		}
		return tf
	}
	for _, c := range fn.Doc.List {
		if fields := taintDirectiveFields(c.Text, untrustedDirective); fields != nil {
			for _, name := range fields {
				ensure().untrusted[name] = true
			}
		}
		if fields := taintDirectiveFields(c.Text, sanitizesDirective); fields != nil {
			ensure().sanitizes = true
		}
		if fields := taintDirectiveFields(c.Text, sinkDirective); len(fields) >= 2 {
			ensure().sinks[fields[0]] = strings.Join(fields[1:], " ")
		}
	}
	if tf != nil {
		tbl.funcs[funcKeyFor(pkgPath, recvTypeName(fn.Recv), fn.Name.Name)] = tf
	}
}

// collectFieldTaint reads bare "//floc:untrusted" trailing or doc
// comments on struct fields.
func collectFieldTaint(pkgPath, typeName string, st *ast.StructType, tbl *taintTable) {
	for _, field := range st.Fields.List {
		marked := false
		for _, group := range []*ast.CommentGroup{field.Comment, field.Doc} {
			if group == nil {
				continue
			}
			for _, c := range group.List {
				if taintDirectiveFields(c.Text, untrustedDirective) != nil {
					marked = true
				}
			}
		}
		if !marked {
			continue
		}
		for _, name := range field.Names {
			tbl.fields[pkgPath+"."+typeName+"."+name.Name] = true
		}
	}
}

// collectTaintLines maps source lines carrying a bare trailing
// "//floc:untrusted" directive (the local-variable form) to true.
func collectTaintLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			if fields := taintDirectiveFields(c.Text, untrustedDirective); fields != nil && len(fields) == 0 {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// checkTaintDirectives reports malformed floc:sink directives: the form
// is "floc:sink <param> <what...>" and a sink without a description (or
// a name) cannot be reported usefully at call sites.
func (l *linter) checkTaintDirectives(f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			fields := taintDirectiveFields(c.Text, sinkDirective)
			if fields != nil && len(fields) < 2 {
				l.report(c.Pos(), RuleTaint,
					"malformed floc:sink directive %q; want \"floc:sink <param> <what>\"",
					strings.TrimSpace(c.Text))
			}
		}
	}
}

// taintVal is the abstract taint state of an expression: whether it is
// derived from an untrusted source, and which source (for diagnostics).
type taintVal struct {
	on  bool
	src string
}

var cleanVal = taintVal{}

func taintFrom(src string) taintVal { return taintVal{on: true, src: src} }

// join merges two taint states, keeping the first source seen.
func (a taintVal) join(b taintVal) taintVal {
	if a.on {
		return a
	}
	return b
}

// taintChecker propagates taint through one function body in statement
// order, in the style of unitsChecker.
type taintChecker struct {
	l          *linter
	tbl        *taintTable
	taintLines map[int]bool
	env        map[types.Object]taintVal
	// cleaned marks objects a //floc:sanitizes call validated: field
	// selects on a cleaned object no longer consult the //floc:untrusted
	// field table (the h.validate() idiom).
	cleaned map[types.Object]bool
}

// checkTaint runs the taint rule over one file's function bodies.
func (l *linter) checkTaint(f *ast.File) {
	l.checkTaintDirectives(f)
	taintLines := collectTaintLines(l.fset, f)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c := &taintChecker{
			l:          l,
			tbl:        l.taint,
			taintLines: taintLines,
			env:        map[types.Object]taintVal{},
			cleaned:    map[types.Object]bool{},
		}
		key := funcKeyFor(l.pkgPath, recvTypeName(fn.Recv), fn.Name.Name)
		c.seedSignature(fn, l.taint.funcs[key])
		c.stmt(fn.Body)
	}
}

// seedSignature taints the parameters the function's own directives
// declare untrusted. Sink parameters stay clean: inside the sink's body
// the flow is the function's sanctioned business.
func (c *taintChecker) seedSignature(fn *ast.FuncDecl, tf *taintFunc) {
	if tf == nil || len(tf.untrusted) == 0 {
		return
	}
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if !tf.untrusted[name.Name] {
					continue
				}
				if obj := c.l.info.Defs[name]; obj != nil {
					c.env[obj] = taintFrom("parameter " + name.Name)
				}
			}
		}
	}
	seed(fn.Type.Params)
	seed(fn.Recv)
}

// ---- statements ----

func (c *taintChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.DeclStmt:
		c.declStmt(s)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			if v := c.expr(s.Cond); v.on {
				c.l.report(s.Cond.Pos(), RuleTaint,
					"loop bound derived from untrusted input (%s); validate it through a //floc:sanitizes function first", v.src)
			}
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		for _, sub := range s.Body {
			c.stmt(sub)
		}
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		for _, sub := range s.Body {
			c.stmt(sub)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// declStmt handles `var x = v` declarations, honoring a trailing
// //floc:untrusted directive on the spec's line.
func (c *taintChecker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		lineTaint := c.taintLines[c.l.fset.Position(vs.Pos()).Line]
		var vals []taintVal
		for _, v := range vs.Values {
			vals = append(vals, c.expr(v))
		}
		for i, name := range vs.Names {
			obj := c.l.info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			v := cleanVal
			if i < len(vals) {
				v = vals[i]
			}
			if lineTaint {
				v = taintFrom(name.Name)
			}
			c.env[obj] = v
		}
	}
}

// assign handles = / := / op= statements.
func (c *taintChecker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		// Op-assigns mix the operand into the target: x += tainted
		// taints x.
		lv := c.expr(s.Lhs[0])
		rv := c.expr(s.Rhs[0])
		if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				c.env[obj] = lv.join(rv)
			}
		}
		return
	}
	var vals []taintVal
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = c.tupleVals(s.Rhs[0], len(s.Lhs))
	} else {
		for _, r := range s.Rhs {
			vals = append(vals, c.expr(r))
		}
	}
	lineTaint := c.taintLines[c.l.fset.Position(s.Pos()).Line]
	for i, lhs := range s.Lhs {
		v := cleanVal
		if i < len(vals) {
			v = vals[i]
		}
		c.assignOne(lhs, v, lineTaint)
	}
}

// assignOne records one assignment target's new taint. Whole-value
// targets (identifiers, pointer dereferences) take the source's taint;
// stores into a field or element of an aggregate do not re-taint the
// aggregate (the validate-then-fill idiom), though their index
// expressions are still checked as sinks by the expr walk.
func (c *taintChecker) assignOne(lhs ast.Expr, v taintVal, lineTaint bool) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := c.objOf(lhs)
		if obj == nil {
			return
		}
		if lineTaint {
			v = taintFrom(lhs.Name)
		}
		c.env[obj] = v
	case *ast.StarExpr:
		if obj := c.rootObj(lhs.X); obj != nil {
			if lineTaint {
				v = taintFrom(obj.Name())
			}
			c.env[obj] = v
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		c.expr(lhs) // sink checks on the index path; no re-taint
	}
}

// tupleVals evaluates a multi-value rhs (call, comma-ok) into n values.
func (c *taintChecker) tupleVals(rhs ast.Expr, n int) []taintVal {
	vals := make([]taintVal, n)
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		c.callInto(call, vals)
		return vals
	}
	v := c.expr(rhs) // comma-ok idioms: value then bool
	vals[0] = v
	if len(vals) > 1 {
		vals[1] = cleanVal
	}
	return vals
}

// rangeStmt seeds the loop variables from the ranged container: values
// of a tainted container are tainted; slice indices are clean (bounded
// by the container's real length), map keys of a tainted map are
// tainted (the attacker chose them).
func (c *taintChecker) rangeStmt(s *ast.RangeStmt) {
	cv := c.expr(s.X)
	keyVal, valVal := cleanVal, cv
	if t := c.l.info.Types[s.X].Type; t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			keyVal, valVal = cv, cv
		case *types.Chan:
			keyVal, valVal = cv, cleanVal
		case *types.Basic: // integer or string range
			keyVal, valVal = cleanVal, cleanVal
		}
	}
	c.rangeVar(s.Key, keyVal)
	c.rangeVar(s.Value, valVal)
	c.stmt(s.Body)
}

func (c *taintChecker) rangeVar(e ast.Expr, v taintVal) {
	if e == nil {
		return
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := c.objOf(id); obj != nil {
		c.env[obj] = v
	}
}

// ---- expressions ----

// expr evaluates an expression's taint, reporting sink violations in its
// subexpressions along the way.
func (c *taintChecker) expr(e ast.Expr) taintVal {
	switch e := e.(type) {
	case nil:
		return cleanVal
	case *ast.BasicLit:
		return cleanVal
	case *ast.Ident:
		if v, ok := c.env[c.objOf(e)]; ok {
			return v
		}
		return cleanVal
	case *ast.ParenExpr:
		return c.expr(e.X)
	case *ast.UnaryExpr:
		return c.expr(e.X)
	case *ast.StarExpr:
		return c.expr(e.X)
	case *ast.BinaryExpr:
		lv := c.expr(e.X)
		rv := c.expr(e.Y)
		return lv.join(rv)
	case *ast.CallExpr:
		vals := make([]taintVal, 1)
		c.callInto(e, vals)
		return vals[0]
	case *ast.SelectorExpr:
		return c.selector(e)
	case *ast.IndexExpr:
		return c.index(e)
	case *ast.IndexListExpr:
		for _, idx := range e.Indices {
			c.expr(idx)
		}
		return c.expr(e.X)
	case *ast.SliceExpr:
		for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
			if bound == nil {
				continue
			}
			if v := c.expr(bound); v.on {
				c.l.report(bound.Pos(), RuleTaint,
					"slice bound derived from untrusted input (%s); validate it through a //floc:sanitizes function first", v.src)
			}
		}
		return c.expr(e.X)
	case *ast.TypeAssertExpr:
		return c.expr(e.X)
	case *ast.CompositeLit:
		v := cleanVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = v.join(c.expr(el))
		}
		return v
	case *ast.FuncLit:
		// Closures share the enclosing environment: captures carry their
		// taint in, and sink uses inside the literal are checked inline.
		c.stmt(e.Body)
		return cleanVal
	case *ast.KeyValueExpr:
		return c.expr(e.Value)
	default:
		return cleanVal
	}
}

func (c *taintChecker) objOf(id *ast.Ident) types.Object {
	if obj := c.l.info.Defs[id]; obj != nil {
		return obj
	}
	return c.l.info.Uses[id]
}

// rootObj unwraps an addressable chain (&x, *x, x.f, x[i], x[:]) to the
// variable at its root, nil when there is none.
func (c *taintChecker) rootObj(e ast.Expr) types.Object {
	for {
		switch t := unparen(e).(type) {
		case *ast.Ident:
			if v, ok := c.objOf(t).(*types.Var); ok {
				return v
			}
			return nil
		case *ast.UnaryExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			if _, ok := c.l.info.Selections[t]; !ok {
				return nil // package-qualified
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// selector evaluates x.f: tainted when the base value is tainted or the
// field carries a //floc:untrusted directive.
func (c *taintChecker) selector(e *ast.SelectorExpr) taintVal {
	sel, ok := c.l.info.Selections[e]
	if !ok {
		return cleanVal // package-qualified identifier
	}
	base := c.expr(e.X)
	if sel.Kind() != types.FieldVal {
		return base // method value: receiver taint rides along
	}
	if base.on {
		return base
	}
	if key, ok := c.fieldKeyOfSelection(sel); ok && c.tbl.fields[key] {
		if obj := c.rootObj(e.X); obj != nil && c.cleaned[obj] {
			return cleanVal // validated by a //floc:sanitizes call
		}
		return taintFrom("field " + e.Sel.Name)
	}
	return cleanVal
}

// fieldKeyOfSelection resolves a field selection to its table key,
// walking the selection's index path so embedded structs resolve to the
// field's direct owner (same walk as the units rule).
func (c *taintChecker) fieldKeyOfSelection(s *types.Selection) (string, bool) {
	t := s.Recv()
	idx := s.Index()
	for k, i := range idx {
		st := underlyingStruct(t)
		if st == nil || i >= st.NumFields() {
			return "", false
		}
		fld := st.Field(i)
		if k == len(idx)-1 {
			owner := namedName(t)
			if owner == "" || fld.Pkg() == nil {
				return "", false
			}
			return fld.Pkg().Path() + "." + owner + "." + fld.Name(), true
		}
		t = fld.Type()
	}
	return "", false
}

// index evaluates x[i], reporting tainted indexes and map keys.
func (c *taintChecker) index(e *ast.IndexExpr) taintVal {
	iv := c.expr(e.Index)
	bv := c.expr(e.X)
	if iv.on {
		if t := c.l.info.Types[e.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				c.l.report(e.Index.Pos(), RuleTaint,
					"map key derived from untrusted input (%s): attacker-chosen keys grow filter state without bound; validate through a //floc:sanitizes function first", iv.src)
			} else {
				c.l.report(e.Index.Pos(), RuleTaint,
					"index derived from untrusted input (%s); validate it through a //floc:sanitizes function first", iv.src)
			}
		}
	}
	return bv // element of a tainted container is tainted
}

// ---- calls ----

// callInto evaluates a call, filling vals with the per-result taint.
func (c *taintChecker) callInto(e *ast.CallExpr, vals []taintVal) {
	for i := range vals {
		vals[i] = cleanVal
	}
	// Conversion: T(x) preserves x's taint.
	if tv, ok := c.l.info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) == 1 {
			vals[0] = c.expr(e.Args[0])
		}
		return
	}
	// Builtins.
	if id, ok := unparen(e.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.l.info.Uses[id].(*types.Builtin); isBuiltin {
			c.builtin(id.Name, e, vals)
			return
		}
	}

	// Receiver taint (method calls) counts as an argument.
	recvTaint := cleanVal
	if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := c.l.info.Selections[sel]; isSel {
			recvTaint = c.expr(sel.X)
		}
	}
	argTaint := make([]taintVal, len(e.Args))
	anyTaint := recvTaint
	for i, a := range e.Args {
		argTaint[i] = c.expr(a)
		anyTaint = anyTaint.join(argTaint[i])
	}

	fn := c.calleeFuncTaint(e.Fun)
	var tf *taintFunc
	if fn != nil {
		tf = c.tbl.funcs[c.taintKeyOf(fn)]
	}

	if tf != nil {
		c.checkSinkArgs(e, fn, tf, argTaint)
		if tf.sanitizes {
			// The sanitizer validated what it was given: clear the
			// argument roots and receiver, return clean results.
			for _, a := range e.Args {
				if obj := c.rootObj(a); obj != nil {
					c.env[obj] = cleanVal
					c.cleaned[obj] = true
				}
			}
			if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
				if obj := c.rootObj(sel.X); obj != nil {
					c.env[obj] = cleanVal
					c.cleaned[obj] = true
				}
			}
			return
		}
		if len(tf.untrusted) > 0 {
			c.untrustedResults(fn, tf, vals)
			return
		}
	}

	// Unannotated or dynamic callee: conservative pass-through. Tainted
	// input means tainted results, and pointer-shaped arguments are
	// treated as out-parameters the callee may have filled from the
	// tainted input (json.Unmarshal, hex.Decode).
	if !anyTaint.on {
		return
	}
	for i := range vals {
		vals[i] = anyTaint
	}
	for i, a := range e.Args {
		if argTaint[i].on {
			continue // already a source, not an out-parameter
		}
		if !pointerish(c.l.info.Types[a].Type) {
			continue
		}
		if obj := c.rootObj(a); obj != nil {
			c.env[obj] = anyTaint
		}
	}
}

// builtin handles builtin calls: make sizes are sinks, len/cap of a
// tainted value is tainted (a declared length is attacker-controlled),
// append propagates.
func (c *taintChecker) builtin(name string, e *ast.CallExpr, vals []taintVal) {
	switch name {
	case "make":
		for _, a := range e.Args[1:] {
			if v := c.expr(a); v.on {
				c.l.report(a.Pos(), RuleTaint,
					"make size derived from untrusted input (%s): attacker-sized allocation; validate it through a //floc:sanitizes function first", v.src)
			}
		}
	case "len", "cap":
		if len(e.Args) == 1 {
			vals[0] = c.expr(e.Args[0])
		}
	case "append":
		v := cleanVal
		for _, a := range e.Args {
			v = v.join(c.expr(a))
		}
		vals[0] = v
	default:
		for _, a := range e.Args {
			c.expr(a)
		}
	}
}

// checkSinkArgs reports tainted values passed to //floc:sink parameters.
func (c *taintChecker) checkSinkArgs(e *ast.CallExpr, fn *types.Func, tf *taintFunc, argTaint []taintVal) {
	if len(tf.sinks) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := range e.Args {
		if !argTaint[i].on {
			continue
		}
		name := paramName(sig, i)
		what, isSink := tf.sinks[name]
		if !isSink {
			continue
		}
		c.l.report(e.Args[i].Pos(), RuleTaint,
			"untrusted value (%s) flows into %s parameter %q of %s; validate it through a //floc:sanitizes function first",
			argTaint[i].src, what, name, fn.Name())
	}
}

// untrustedResults taints the call's results the callee's directives
// declare untrusted ("return" for the first, or named-result names).
func (c *taintChecker) untrustedResults(fn *types.Func, tf *taintFunc, vals []taintVal) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(vals); i++ {
		name := res.At(i).Name()
		if (name != "" && tf.untrusted[name]) || (i == 0 && tf.untrusted["return"]) {
			vals[i] = taintFrom(fn.Name() + " result")
		}
	}
}

// calleeFuncTaint resolves the called function object without
// re-evaluating the receiver (callInto already did).
func (c *taintChecker) calleeFuncTaint(fun ast.Expr) *types.Func {
	switch fun := unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := c.l.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.l.info.Uses[fun.Sel].(*types.Func)
		return fn
	default:
		return nil
	}
}

// taintKeyOf builds the annotation-table key for a resolved function.
func (c *taintChecker) taintKeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recvName := ""
	if recv := sig.Recv(); recv != nil {
		recvName = namedName(recv.Type())
		if recvName == "" {
			return ""
		}
	}
	return funcKeyFor(fn.Pkg().Path(), recvName, fn.Name())
}

// pointerish reports whether a value of type t aliases storage the
// callee can write through: pointers, slices, and maps.
func pointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
