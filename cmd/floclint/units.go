package main

// The units rule: dimensional analysis for the paper's quantities.
//
// FLoc's equations mix packets, packets/s, bits, bits/s, bytes, seconds,
// tokens, and dimensionless ratios, and a unit slip at a package seam
// (tcpmodel works in packets/s, defense and measurement in bits/s)
// silently corrupts the bandwidth-guarantee results. Struct fields,
// function parameters, results, and locals declare their dimension with a
// //floc:unit directive; this pass propagates dimensions through
// assignments, arithmetic, and call boundaries, and reports:
//
//   - additions/subtractions of values with different dimensions,
//   - comparisons across dimensions,
//   - annotated sinks (params, struct fields, results) receiving a value
//     of a known different dimension,
//   - plain float64 identifiers of unknown dimension flowing into an
//     annotated parameter (the comment-only-units hazard), and
//   - malformed directives.
//
// Types of floc/internal/units (Bits, BitsPerSec, PacketsPerSec, Seconds)
// carry their dimension in the type system; conversions to them are the
// blessed re-dimensioning points (still checked when the operand's
// dimension is known). Constants are dimensionless scalars that adapt to
// either operand. packets and tokens share a base dimension: one token
// admits one reference-size packet (paper Section III-D).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unitDirective introduces a dimension annotation:
//
//	//floc:unit <dim>              on a struct field or a local's := line
//	// floc:unit <name> <dim>      in a function doc comment, where <name>
//	//                             is a parameter or named-result name, or
//	//                             "return" for the first result
const unitDirective = "floc:unit"

// dim is an exponent vector over the base dimensions. The zero dim is
// dimensionless ("ratio"). packets and tokens share the packet base.
type dim struct {
	bit, byt, packet, second int8
}

// dimByName is the directive vocabulary.
var dimByName = map[string]dim{
	"bits":      {bit: 1},
	"bytes":     {byt: 1},
	"packets":   {packet: 1},
	"tokens":    {packet: 1},
	"seconds":   {second: 1},
	"ratio":     {},
	"bits/s":    {bit: 1, second: -1},
	"bytes/s":   {byt: 1, second: -1},
	"packets/s": {packet: 1, second: -1},
	"tokens/s":  {packet: 1, second: -1},
}

// canonicalDimNames maps common vectors back to a directive name for
// diagnostics, preferring the packet spelling over the token alias.
var canonicalDimNames = map[dim]string{
	{bit: 1}:                "bits",
	{byt: 1}:                "bytes",
	{packet: 1}:             "packets",
	{second: 1}:             "seconds",
	{}:                      "ratio",
	{bit: 1, second: -1}:    "bits/s",
	{byt: 1, second: -1}:    "bytes/s",
	{packet: 1, second: -1}: "packets/s",
}

func (d dim) mul(o dim) dim {
	return dim{d.bit + o.bit, d.byt + o.byt, d.packet + o.packet, d.second + o.second}
}

func (d dim) div(o dim) dim {
	return dim{d.bit - o.bit, d.byt - o.byt, d.packet - o.packet, d.second - o.second}
}

// String renders the dimension for diagnostics: a directive name when one
// matches, else a num/den exponent form like "packet*s" or "1/packet^2".
func (d dim) String() string {
	if name, ok := canonicalDimNames[d]; ok {
		return name
	}
	bases := []struct {
		name string
		exp  int8
	}{{"bit", d.bit}, {"byte", d.byt}, {"packet", d.packet}, {"s", d.second}}
	var num, den []string
	for _, b := range bases {
		switch {
		case b.exp > 0:
			num = append(num, expStr(b.name, b.exp))
		case b.exp < 0:
			den = append(den, expStr(b.name, -b.exp))
		}
	}
	n := strings.Join(num, "*")
	if n == "" {
		n = "1"
	}
	if len(den) == 0 {
		return n
	}
	return n + "/" + strings.Join(den, "*")
}

func expStr(name string, exp int8) string {
	if exp == 1 {
		return name
	}
	return fmt.Sprintf("%s^%d", name, exp)
}

// unitVal is the abstract value of an expression.
type unitVal struct {
	kind uvKind
	d    dim
}

type uvKind uint8

const (
	// uvUnknown: no dimension information; compatible everywhere except
	// the bare-identifier-into-annotated-parameter check.
	uvUnknown uvKind = iota
	// uvAny: a constant or integer count; a dimensionless scalar that
	// adapts to the other operand.
	uvAny
	// uvDim: a known dimension.
	uvDim
)

var (
	unknownVal = unitVal{kind: uvUnknown}
	anyVal     = unitVal{kind: uvAny}
)

func dimVal(d dim) unitVal { return unitVal{kind: uvDim, d: d} }

// unitsPkgPath is the typed-quantity package whose named types carry
// dimensions in the type system.
const unitsPkgPath = "floc/internal/units"

var unitsTypeDims = map[string]dim{
	"Bits":          {bit: 1},
	"BitsPerSec":    {bit: 1, second: -1},
	"PacketsPerSec": {packet: 1, second: -1},
	"Seconds":       {second: 1},
}

// dimOfType returns the dimension a named internal/units type carries.
func dimOfType(t types.Type) (dim, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return dim{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return dim{}, false
	}
	d, ok := unitsTypeDims[obj.Name()]
	return d, ok
}

// unitTable holds the //floc:unit annotations of every module package,
// collected syntactically so directives of dependency packages are visible
// when linting their importers (export data carries no comments).
type unitTable struct {
	// funcs maps "pkgpath.[Recv.]Func" to per-name dims: parameter names,
	// named-result names, and "return" for the first result.
	funcs map[string]map[string]dim
	// fields maps "pkgpath.Type.Field" to the field's dim. For map- and
	// slice-typed fields the dim describes the element values.
	fields map[string]dim
}

func newUnitTable() *unitTable {
	return &unitTable{funcs: map[string]map[string]dim{}, fields: map[string]dim{}}
}

func funcKeyFor(pkgPath, recvName, name string) string {
	if recvName != "" {
		return pkgPath + "." + recvName + "." + name
	}
	return pkgPath + "." + name
}

// recvTypeName extracts the receiver's base type name from an AST
// receiver field ("" for generic or unresolvable receivers).
func recvTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// directiveFields returns the whitespace-separated tokens following a
// unit directive, or nil if the comment carries none. The directive must
// start the comment line ("//floc:unit ..." or "// floc:unit ..."); prose
// that merely mentions floc:unit does not annotate.
func directiveFields(text string) []string {
	t := strings.TrimSpace(strings.TrimLeft(text, "/"))
	if !strings.HasPrefix(t, unitDirective) {
		return nil
	}
	rest := t[len(unitDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. "floc:unitx"; not this directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return []string{}
	}
	return fields
}

// collectUnitDecls scans one parsed file for field and function
// directives, filling tbl. It is purely syntactic: no type information.
func collectUnitDecls(pkgPath string, f *ast.File, tbl *unitTable) {
	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			collectFuncUnits(pkgPath, decl, tbl)
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectFieldUnits(pkgPath, ts.Name.Name, st, tbl)
			}
		}
	}
}

// collectFuncUnits reads "floc:unit <name> <dim>" lines from a function's
// doc comment.
func collectFuncUnits(pkgPath string, fn *ast.FuncDecl, tbl *unitTable) {
	if fn.Doc == nil {
		return
	}
	var named map[string]dim
	for _, c := range fn.Doc.List {
		fields := directiveFields(c.Text)
		if len(fields) < 2 {
			continue
		}
		d, ok := dimByName[fields[1]]
		if !ok {
			continue // reported by checkUnitDirectives in linted packages
		}
		if named == nil {
			named = map[string]dim{}
		}
		named[fields[0]] = d
	}
	if named != nil {
		key := funcKeyFor(pkgPath, recvTypeName(fn.Recv), fn.Name.Name)
		tbl.funcs[key] = named
	}
}

// collectFieldUnits reads "floc:unit <dim>" trailing or doc comments on
// struct fields.
func collectFieldUnits(pkgPath, typeName string, st *ast.StructType, tbl *unitTable) {
	for _, field := range st.Fields.List {
		d, ok := fieldDirective(field)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			tbl.fields[pkgPath+"."+typeName+"."+name.Name] = d
		}
	}
}

func fieldDirective(field *ast.Field) (dim, bool) {
	for _, group := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			fields := directiveFields(c.Text)
			if len(fields) == 0 {
				continue
			}
			if d, ok := dimByName[fields[0]]; ok {
				return d, true
			}
		}
	}
	return dim{}, false
}

// collectLineDims maps source lines carrying a trailing field-form
// directive ("//floc:unit <dim>") to the declared dim, for local variable
// declarations.
func collectLineDims(fset *token.FileSet, f *ast.File) map[int]dim {
	out := map[int]dim{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			fields := directiveFields(c.Text)
			if len(fields) == 0 {
				continue
			}
			if d, ok := dimByName[fields[0]]; ok {
				out[fset.Position(c.Pos()).Line] = d
			}
		}
	}
	return out
}

// checkUnitDirectives reports malformed directives: a floc:unit comment
// whose tokens parse neither as the field/local form (<dim>) nor as the
// function-doc form (<name> <dim>).
func (l *linter) checkUnitDirectives(f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			fields := directiveFields(c.Text)
			if fields == nil {
				continue
			}
			ok := false
			if len(fields) >= 1 {
				_, ok = dimByName[fields[0]]
			}
			if !ok && len(fields) >= 2 {
				_, ok = dimByName[fields[1]]
			}
			if !ok {
				l.report(c.Pos(), RuleUnits,
					"malformed floc:unit directive %q; want \"floc:unit <dim>\" or \"floc:unit <name> <dim>\" with <dim> one of packets, packets/s, bits, bits/s, bytes, bytes/s, seconds, tokens, tokens/s, ratio",
					strings.TrimSpace(c.Text))
			}
		}
	}
}

// unitsChecker propagates dimensions through one function body.
type unitsChecker struct {
	l        *linter
	tbl      *unitTable
	pkgPath  string
	lineDims map[int]dim

	// declared pins a variable's dimension (annotated params, named
	// results, and directive-carrying locals); env tracks inferred dims.
	declared map[types.Object]dim
	env      map[types.Object]unitVal

	// results is a stack of per-result dims of the enclosing function
	// literals/declaration, innermost last.
	results [][]*dim
}

// checkUnits runs the units rule over one file's function bodies.
func (l *linter) checkUnits(f *ast.File) {
	l.checkUnitDirectives(f)
	lineDims := collectLineDims(l.fset, f)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c := &unitsChecker{
			l:        l,
			tbl:      l.tbl,
			pkgPath:  l.pkgPath,
			lineDims: lineDims,
			declared: map[types.Object]dim{},
			env:      map[types.Object]unitVal{},
		}
		key := funcKeyFor(l.pkgPath, recvTypeName(fn.Recv), fn.Name.Name)
		c.seedSignature(fn.Type, c.tbl.funcs[key])
		c.results = append(c.results, c.resultDims(fn.Type, c.tbl.funcs[key]))
		c.stmt(fn.Body)
	}
}

// seedSignature pins annotated (or units-typed) parameters and named
// results.
func (c *unitsChecker) seedSignature(ft *ast.FuncType, named map[string]dim) {
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := c.l.info.Defs[name]
				if obj == nil {
					continue
				}
				if d, ok := named[name.Name]; ok {
					c.declared[obj] = d
					continue
				}
				if d, ok := dimOfType(obj.Type()); ok {
					c.declared[obj] = d
				}
			}
		}
	}
	seed(ft.Params)
	seed(ft.Results)
}

// resultDims computes the per-result expected dims of a signature:
// directive by result name (or "return" for the first), else the dim the
// result's units type carries.
func (c *unitsChecker) resultDims(ft *ast.FuncType, named map[string]dim) []*dim {
	if ft.Results == nil {
		return nil
	}
	var out []*dim
	for _, field := range ft.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			var rd *dim
			if i < len(field.Names) {
				if d, ok := named[field.Names[i].Name]; ok {
					rd = &d
				}
			}
			if rd == nil && len(out) == 0 {
				if d, ok := named["return"]; ok {
					rd = &d
				}
			}
			if rd == nil {
				if t := c.l.info.Types[field.Type].Type; t != nil {
					if d, ok := dimOfType(t); ok {
						rd = &d
					}
				}
			}
			out = append(out, rd)
		}
	}
	return out
}

// ---- statements ----

func (c *unitsChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.DeclStmt:
		c.declStmt(s)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		for _, sub := range s.Body {
			c.stmt(sub)
		}
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		for _, sub := range s.Body {
			c.stmt(sub)
		}
	case *ast.ReturnStmt:
		c.ret(s)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// declStmt handles `var x T = v` declarations, honoring a trailing
// //floc:unit directive on the spec's line.
func (c *unitsChecker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		lineDim, hasLineDim := c.lineDims[c.l.fset.Position(vs.Pos()).Line]
		var vals []unitVal
		for _, v := range vs.Values {
			vals = append(vals, c.expr(v))
		}
		for i, name := range vs.Names {
			obj := c.l.info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			v := unknownVal
			if i < len(vals) {
				v = vals[i]
			}
			if hasLineDim {
				c.declared[obj] = lineDim
				c.checkDeclared(name.Pos(), name.Name, lineDim, v)
				continue
			}
			if d, ok := dimOfType(obj.Type()); ok {
				c.declared[obj] = d
				c.checkDeclared(name.Pos(), name.Name, d, v)
				continue
			}
			c.env[obj] = v
		}
	}
}

func (c *unitsChecker) checkDeclared(pos token.Pos, name string, d dim, v unitVal) {
	if v.kind == uvDim && v.d != d {
		c.l.report(pos, RuleUnits,
			"%s is declared %s but assigned a %s value", name, d, v.d)
	}
}

// assign handles = / := / op= statements.
func (c *unitsChecker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		lv := c.lvalDim(s.Lhs[0])
		rv := c.expr(s.Rhs[0])
		if lv.kind == uvDim && rv.kind == uvDim && lv.d != rv.d {
			op := "add"
			if s.Tok == token.SUB_ASSIGN {
				op = "subtract"
			}
			c.l.report(s.TokPos, RuleUnits, "cannot %s %s to %s", op, rv.d, lv.d)
		}
		return
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		// The target's dimension changes by the operand's; fields keep
		// their declared dim (the idiom is scaling by a ratio), locals are
		// re-inferred.
		lv := c.lvalDim(s.Lhs[0])
		rv := c.expr(s.Rhs[0])
		if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				if _, pinned := c.declared[obj]; !pinned {
					c.env[obj] = c.composeMulDiv(s.Tok == token.MUL_ASSIGN, lv, rv)
				}
			}
		}
		return
	default:
		for _, r := range s.Rhs {
			c.expr(r)
		}
		return
	}

	// Plain or defining assignment.
	var vals []unitVal
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = c.tupleVals(s.Rhs[0], len(s.Lhs))
	} else {
		for _, r := range s.Rhs {
			vals = append(vals, c.expr(r))
		}
	}
	lineDim, hasLineDim := c.lineDims[c.l.fset.Position(s.Pos()).Line]
	for i, lhs := range s.Lhs {
		v := unknownVal
		if i < len(vals) {
			v = vals[i]
		}
		c.assignOne(lhs, v, s.Tok == token.DEFINE, lineDim, hasLineDim)
	}
}

// assignOne records or checks one assignment target.
func (c *unitsChecker) assignOne(lhs ast.Expr, v unitVal, define bool, lineDim dim, hasLineDim bool) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := c.objOf(lhs)
		if obj == nil {
			return
		}
		if hasLineDim && define {
			c.declared[obj] = lineDim
			c.checkDeclared(lhs.Pos(), lhs.Name, lineDim, v)
			return
		}
		if d, ok := c.declared[obj]; ok {
			c.checkDeclared(lhs.Pos(), lhs.Name, d, v)
			return
		}
		if d, ok := dimOfType(obj.Type()); ok {
			c.declared[obj] = d
			c.checkDeclared(lhs.Pos(), lhs.Name, d, v)
			return
		}
		c.env[obj] = v
	case *ast.SelectorExpr:
		lv := c.expr(lhs)
		if lv.kind == uvDim && v.kind == uvDim && lv.d != v.d {
			c.l.report(lhs.Sel.Pos(), RuleUnits,
				"field %s holds %s but is assigned a %s value", lhs.Sel.Name, lv.d, v.d)
		}
	case *ast.IndexExpr:
		lv := c.expr(lhs)
		if lv.kind == uvDim && v.kind == uvDim && lv.d != v.d {
			c.l.report(lhs.Pos(), RuleUnits,
				"element holds %s but is assigned a %s value", lv.d, v.d)
		}
	case *ast.StarExpr:
		c.expr(lhs.X)
	}
}

// lvalDim evaluates an assignment target's current dimension.
func (c *unitsChecker) lvalDim(lhs ast.Expr) unitVal { return c.expr(lhs) }

// tupleVals evaluates a multi-value rhs (call, comma-ok) into n values.
func (c *unitsChecker) tupleVals(rhs ast.Expr, n int) []unitVal {
	vals := make([]unitVal, n)
	for i := range vals {
		vals[i] = unknownVal
	}
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		c.callTuple(call, vals)
		return vals
	}
	vals[0] = c.expr(rhs) // comma-ok idioms: value, then bool
	return vals
}

// ret checks return expressions against the enclosing signature.
func (c *unitsChecker) ret(s *ast.ReturnStmt) {
	var want []*dim
	if len(c.results) > 0 {
		want = c.results[len(c.results)-1]
	}
	for i, e := range s.Results {
		v := c.expr(e)
		if len(s.Results) != len(want) || i >= len(want) || want[i] == nil {
			continue
		}
		if v.kind == uvDim && v.d != *want[i] {
			c.l.report(e.Pos(), RuleUnits,
				"return value has dimension %s, want %s", v.d, *want[i])
		}
	}
}

// rangeStmt seeds the loop variables from the ranged container.
func (c *unitsChecker) rangeStmt(s *ast.RangeStmt) {
	cv := c.expr(s.X)
	keyVal, valVal := anyVal, cv
	if t := c.l.info.Types[s.X].Type; t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			keyVal = unknownVal // field dims describe map values, not keys
		case *types.Chan:
			keyVal = cv
			valVal = unknownVal
		case *types.Basic: // string or integer range
			keyVal, valVal = anyVal, anyVal
		}
	}
	c.rangeVar(s.Key, keyVal)
	c.rangeVar(s.Value, valVal)
	c.stmt(s.Body)
}

func (c *unitsChecker) rangeVar(e ast.Expr, v unitVal) {
	if e == nil {
		return
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := c.objOf(id)
	if obj == nil {
		return
	}
	if d, ok := c.declared[obj]; ok {
		c.checkDeclared(id.Pos(), id.Name, d, v)
		return
	}
	c.env[obj] = v
}

// ---- expressions ----

// expr evaluates an expression's dimension, reporting violations found in
// its subexpressions along the way.
func (c *unitsChecker) expr(e ast.Expr) unitVal {
	switch e := e.(type) {
	case *ast.BasicLit:
		return anyVal
	case *ast.Ident:
		return c.ident(e)
	case *ast.ParenExpr:
		return c.expr(e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			return c.expr(e.X)
		default:
			c.expr(e.X)
			return unknownVal
		}
	case *ast.BinaryExpr:
		return c.binary(e)
	case *ast.CallExpr:
		return c.call(e)
	case *ast.SelectorExpr:
		return c.selector(e)
	case *ast.IndexExpr:
		c.expr(e.Index)
		return c.expr(e.X) // element dim: field dims describe elements
	case *ast.IndexListExpr:
		for _, idx := range e.Indices {
			c.expr(idx)
		}
		return c.expr(e.X)
	case *ast.StarExpr:
		return c.expr(e.X)
	case *ast.SliceExpr:
		for _, sub := range []ast.Expr{e.Low, e.High, e.Max} {
			if sub != nil {
				c.expr(sub)
			}
		}
		return c.expr(e.X)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
		return unknownVal
	case *ast.CompositeLit:
		return c.compositeLit(e)
	case *ast.FuncLit:
		c.funcLit(e)
		return unknownVal
	case *ast.KeyValueExpr:
		c.expr(e.Value)
		return unknownVal
	default:
		return unknownVal
	}
}

func (c *unitsChecker) objOf(id *ast.Ident) types.Object {
	if obj := c.l.info.Defs[id]; obj != nil {
		return obj
	}
	return c.l.info.Uses[id]
}

func (c *unitsChecker) ident(e *ast.Ident) unitVal {
	obj := c.objOf(e)
	switch obj := obj.(type) {
	case *types.Const:
		if d, ok := dimOfType(obj.Type()); ok {
			return dimVal(d)
		}
		return anyVal
	case *types.Var:
		if d, ok := c.declared[obj]; ok {
			return dimVal(d)
		}
		if v, ok := c.env[obj]; ok {
			return v
		}
		if d, ok := dimOfType(obj.Type()); ok {
			return dimVal(d)
		}
	case *types.Nil:
		return anyVal
	}
	return unknownVal
}

func (c *unitsChecker) binary(e *ast.BinaryExpr) unitVal {
	lv := c.expr(e.X)
	rv := c.expr(e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		if !c.isNumeric(e) {
			return unknownVal // string concatenation
		}
		if lv.kind == uvDim && rv.kind == uvDim && lv.d != rv.d {
			op := "add"
			if e.Op == token.SUB {
				op = "subtract"
			}
			c.l.report(e.OpPos, RuleUnits, "cannot %s %s and %s", op, lv.d, rv.d)
			return unknownVal
		}
		switch {
		case lv.kind == uvDim:
			return lv
		case rv.kind == uvDim:
			return rv
		case lv.kind == uvAny && rv.kind == uvAny:
			return anyVal
		default:
			return unknownVal
		}
	case token.MUL:
		return c.composeMulDiv(true, lv, rv)
	case token.QUO:
		return c.composeMulDiv(false, lv, rv)
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		if lv.kind == uvDim && rv.kind == uvDim && lv.d != rv.d {
			c.l.report(e.OpPos, RuleUnits,
				"comparison between %s and %s values", lv.d, rv.d)
		}
		return unknownVal
	default:
		return unknownVal
	}
}

func (c *unitsChecker) isNumeric(e ast.Expr) bool {
	t := c.l.info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// composeMulDiv multiplies or divides dimensions. A scalar (constant or
// count) is neutral; an unknown operand poisons the result.
func (c *unitsChecker) composeMulDiv(mul bool, lv, rv unitVal) unitVal {
	switch {
	case lv.kind == uvDim && rv.kind == uvDim:
		if mul {
			return dimVal(lv.d.mul(rv.d))
		}
		return dimVal(lv.d.div(rv.d))
	case lv.kind == uvDim && rv.kind == uvAny:
		return lv
	case lv.kind == uvAny && rv.kind == uvDim:
		if mul {
			return rv
		}
		return dimVal(dim{}.div(rv.d))
	case lv.kind == uvAny && rv.kind == uvAny:
		return anyVal
	default:
		return unknownVal
	}
}

func (c *unitsChecker) selector(e *ast.SelectorExpr) unitVal {
	if s, ok := c.l.info.Selections[e]; ok {
		c.expr(e.X)
		if s.Kind() != types.FieldVal {
			return unknownVal
		}
		if d, ok := c.fieldDimOfSelection(s); ok {
			return dimVal(d)
		}
		if d, ok := dimOfType(s.Obj().Type()); ok {
			return dimVal(d)
		}
		return unknownVal
	}
	// Package-qualified identifier.
	switch obj := c.l.info.Uses[e.Sel].(type) {
	case *types.Const:
		if d, ok := dimOfType(obj.Type()); ok {
			return dimVal(d)
		}
		return anyVal
	case *types.Var:
		if d, ok := dimOfType(obj.Type()); ok {
			return dimVal(d)
		}
	}
	return unknownVal
}

// fieldDimOfSelection resolves a field selection to its annotation,
// walking the selection's index path so embedded structs resolve to the
// field's direct owner.
func (c *unitsChecker) fieldDimOfSelection(s *types.Selection) (dim, bool) {
	t := s.Recv()
	idx := s.Index()
	for k, i := range idx {
		st := underlyingStruct(t)
		if st == nil || i >= st.NumFields() {
			return dim{}, false
		}
		fld := st.Field(i)
		if k == len(idx)-1 {
			owner := namedName(t)
			if owner == "" || fld.Pkg() == nil {
				return dim{}, false
			}
			d, ok := c.tbl.fields[fld.Pkg().Path()+"."+owner+"."+fld.Name()]
			return d, ok
		}
		t = fld.Type()
	}
	return dim{}, false
}

func underlyingStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// fieldDimByIndex resolves a struct field's annotation by position, for
// composite literals.
func (c *unitsChecker) fieldDim(t types.Type, fld *types.Var) (dim, bool) {
	owner := namedName(t)
	if owner == "" || fld.Pkg() == nil {
		return dim{}, false
	}
	if d, ok := c.tbl.fields[fld.Pkg().Path()+"."+owner+"."+fld.Name()]; ok {
		return d, true
	}
	return dimOfType(fld.Type())
}

func (c *unitsChecker) compositeLit(e *ast.CompositeLit) unitVal {
	t := c.l.info.Types[e].Type
	st := underlyingStruct(t)
	if st == nil {
		for _, el := range e.Elts {
			c.expr(el)
		}
		return unknownVal
	}
	for i, el := range e.Elts {
		var fld *types.Var
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if key, ok := kv.Key.(*ast.Ident); ok {
				for j := 0; j < st.NumFields(); j++ {
					if st.Field(j).Name() == key.Name {
						fld = st.Field(j)
						break
					}
				}
			}
		} else if i < st.NumFields() {
			fld = st.Field(i)
		}
		v := c.expr(val)
		if fld == nil {
			continue
		}
		if d, ok := c.fieldDim(t, fld); ok && v.kind == uvDim && v.d != d {
			c.l.report(val.Pos(), RuleUnits,
				"field %s holds %s but is assigned a %s value", fld.Name(), d, v.d)
		}
	}
	return unknownVal
}

func (c *unitsChecker) funcLit(e *ast.FuncLit) {
	c.seedSignature(e.Type, nil)
	c.results = append(c.results, c.resultDims(e.Type, nil))
	c.stmt(e.Body)
	c.results = c.results[:len(c.results)-1]
}

// ---- calls ----

// call evaluates a call or conversion, checking annotated parameters.
func (c *unitsChecker) call(e *ast.CallExpr) unitVal {
	vals := make([]unitVal, 1)
	c.callInto(e, vals)
	return vals[0]
}

// callTuple evaluates a call used in a multi-value context.
func (c *unitsChecker) callTuple(e *ast.CallExpr, vals []unitVal) {
	c.callInto(e, vals)
}

func (c *unitsChecker) callInto(e *ast.CallExpr, vals []unitVal) {
	for i := range vals {
		vals[i] = unknownVal
	}
	// Conversion?
	if tv, ok := c.l.info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) != 1 {
			return
		}
		vals[0] = c.conversion(e, tv.Type)
		return
	}
	// Builtin?
	if id, ok := unparen(e.Fun).(*ast.Ident); ok {
		if _, ok := c.l.info.Uses[id].(*types.Builtin); ok {
			for _, a := range e.Args {
				c.expr(a)
			}
			if id.Name == "len" || id.Name == "cap" {
				vals[0] = anyVal
			}
			return
		}
	}
	fn := c.calleeFunc(e.Fun)
	var sig *types.Signature
	var named map[string]dim
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
		named = c.tbl.funcs[c.funcKeyOf(fn)]
	}
	for i, a := range e.Args {
		av := c.expr(a)
		pd := paramDim(sig, named, i)
		if pd == nil {
			continue
		}
		pname := paramName(sig, i)
		if av.kind == uvDim && av.d != *pd {
			c.l.report(a.Pos(), RuleUnits,
				"argument %q of %s wants %s, got %s", pname, fn.Name(), *pd, av.d)
			continue
		}
		if av.kind == uvUnknown && c.isBareFloatIdent(a) {
			c.l.report(a.Pos(), RuleUnits,
				"unannotated value %q flows into parameter %q of %s (%s); add a floc:unit directive or use internal/units types",
				unparen(a).(*ast.Ident).Name, pname, fn.Name(), *pd)
		}
	}
	if sig == nil {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(vals); i++ {
		if named != nil {
			if name := res.At(i).Name(); name != "" {
				if d, ok := named[name]; ok {
					vals[i] = dimVal(d)
					continue
				}
			}
			if i == 0 {
				if d, ok := named["return"]; ok {
					vals[0] = dimVal(d)
					continue
				}
			}
		}
		if d, ok := dimOfType(res.At(i).Type()); ok {
			vals[i] = dimVal(d)
		}
	}
}

// conversion handles T(x): units-type targets are the blessed
// re-dimensioning points (checked when x's dim is known); other numeric
// conversions preserve the operand's dimension, with unannotated integer
// counts becoming dimensionless scalars.
func (c *unitsChecker) conversion(e *ast.CallExpr, target types.Type) unitVal {
	inner := c.expr(e.Args[0])
	if d, ok := dimOfType(target); ok {
		if inner.kind == uvDim && inner.d != d {
			c.l.report(e.Pos(), RuleUnits,
				"conversion to %s from a %s value", target.String(), inner.d)
		}
		return dimVal(d)
	}
	switch inner.kind {
	case uvDim:
		return inner
	case uvAny:
		return anyVal
	}
	if t := c.l.info.Types[e.Args[0]].Type; t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return anyVal // unannotated integer counts are scalars
		}
	}
	return unknownVal
}

// calleeFunc resolves the called function object, evaluating the callee
// expression's receiver chain for checks along the way.
func (c *unitsChecker) calleeFunc(fun ast.Expr) *types.Func {
	switch fun := unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := c.l.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if _, isSel := c.l.info.Selections[fun]; isSel {
			c.expr(fun.X) // method call: check the receiver expression
		}
		fn, _ := c.l.info.Uses[fun.Sel].(*types.Func)
		return fn
	default:
		c.expr(fun)
		return nil
	}
}

// funcKeyOf builds the annotation-table key for a resolved function.
func (c *unitsChecker) funcKeyOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recvName := ""
	if recv := sig.Recv(); recv != nil {
		recvName = namedName(recv.Type())
		if recvName == "" {
			return ""
		}
	}
	return funcKeyFor(fn.Pkg().Path(), recvName, fn.Name())
}

// paramDim returns the annotated dim of parameter i, or nil.
func paramDim(sig *types.Signature, named map[string]dim, i int) *dim {
	if sig == nil || named == nil {
		return nil
	}
	params := sig.Params()
	idx := i
	if sig.Variadic() && idx >= params.Len()-1 {
		idx = params.Len() - 1
	}
	if idx < 0 || idx >= params.Len() {
		return nil
	}
	name := params.At(idx).Name()
	if name == "" {
		return nil
	}
	if d, ok := named[name]; ok {
		return &d
	}
	return nil
}

func paramName(sig *types.Signature, i int) string {
	params := sig.Params()
	idx := i
	if sig.Variadic() && idx >= params.Len()-1 {
		idx = params.Len() - 1
	}
	if idx < 0 || idx >= params.Len() {
		return "?"
	}
	return params.At(idx).Name()
}

// isBareFloatIdent reports whether the argument is a plain float64
// identifier — the shape of the comment-only-units hazard the rule exists
// to catch. Composite expressions are checked through their parts;
// integer counts and constants are scalars.
func (c *unitsChecker) isBareFloatIdent(a ast.Expr) bool {
	id, ok := unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.objOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
