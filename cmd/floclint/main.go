// Command floclint is the FLoc repository's custom static analyzer. It
// enforces repo-specific contracts that go vet and the type system cannot
// see, all of which protect the determinism and model-bound guarantees the
// simulations depend on (see DESIGN.md, "Determinism & invariants"):
//
//	sim-time   — no wall-clock time (time.Now, time.Since, timers) and no
//	             math/rand in simulation code; time flows through the sim
//	             clock and randomness through internal/rng, so runs are
//	             bit-for-bit reproducible.
//	float-eq   — no ==/!= between two non-constant floating-point
//	             expressions; comparisons against constants (sentinels
//	             like 0) are allowed.
//	map-order  — no map iteration whose body appends to an outer slice or
//	             writes output, unless the function sorts afterwards; map
//	             order is randomized per run and would leak into results.
//	eq-guard   — functions annotated with a "floc:eq" comment (paper
//	             equation implementations) must guard their inputs: a
//	             constant comparison, math.IsNaN/IsInf, or an
//	             internal/invariant assertion.
//	units      — dimensional analysis over //floc:unit directives and the
//	             internal/units types: additions, comparisons, and calls
//	             must agree on packets, bits, bytes, seconds, tokens, and
//	             their rates; see DESIGN.md for the directive grammar.
//	atomics    — any struct field passed by address to a sync/atomic
//	             function must be accessed atomically everywhere in the
//	             package; structs containing atomic state must not be
//	             copied; 64-bit function-style atomic fields must sit at
//	             8-byte-aligned offsets under 32-bit layout.
//	hotpath    — functions annotated //floc:hotpath (the per-packet path)
//	             must avoid allocation-prone constructs (map iteration,
//	             defer, fmt/string concatenation, interface boxing,
//	             escaping closures, make/new, un-preallocated append),
//	             and every module callee must be annotated //floc:hotpath
//	             or //floc:coldpath <reason>; see DESIGN.md.
//	taint      — values derived from //floc:untrusted sources (wire
//	             bytes, capture lines, UDP payloads) must pass through a
//	             //floc:sanitizes function before reaching an
//	             array/slice index, slice bound, make size, loop bound,
//	             map key, or //floc:sink parameter; see DESIGN.md.
//	exhaustive — switches over //floc:enum types must cover every member
//	             (count sentinels excluded via //floc:enumbound) or
//	             carry //floc:nonexhaustive <reason>; a default clause
//	             does not satisfy the rule.
//
// A finding can be suppressed, with justification, by a trailing or
// preceding comment: //floclint:allow <rule> [reason].
//
// floclint is built on the standard library only (go/ast, go/parser,
// go/types); package loading shells out to `go list -export` and resolves
// imports from the build cache's export data.
//
// Usage:
//
//	go run ./cmd/floclint [-json] ./...
//
// -json switches the findings stream to machine-readable NDJSON (one
// {"file","line","col","rule","msg"} object per finding), for CI
// annotation tooling; the human file:line:col text form stays the
// default and is what the GitHub Actions problem matcher parses.
//
// Exit status is 0 when clean, 1 when findings were reported, 2 on errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

func main() {
	fixtures := flag.String("fixtures", "",
		"verify the fixture corpus under this directory: lint each fixture package and compare findings against its // WANT markers")
	jsonOut := flag.Bool("json", false,
		"emit findings as NDJSON ({\"file\",\"line\",\"col\",\"rule\",\"msg\"} per line) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: floclint [-json] [-fixtures dir] [packages]\n\nFLoc repo-specific static analysis; see package doc for rules.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	failed := false
	if *fixtures != "" {
		mismatches, counts, err := verifyCorpus(*fixtures)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floclint:", err)
			os.Exit(2)
		}
		for _, m := range mismatches {
			fmt.Println(m)
		}
		fmt.Println(formatRuleCounts(counts))
		failed = len(mismatches) > 0
	}
	if len(patterns) == 0 && *fixtures == "" {
		patterns = []string{"./..."}
	}
	if len(patterns) > 0 {
		diags, err := runLint(patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floclint:", err)
			os.Exit(2)
		}
		if *jsonOut {
			if err := writeJSONFindings(os.Stdout, diags); err != nil {
				fmt.Fprintln(os.Stderr, "floclint:", err)
				os.Exit(2)
			}
		} else {
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Rule, d.Msg)
			}
		}
		failed = failed || len(diags) > 0
	}
	if failed {
		os.Exit(1)
	}
}

// listPkg is the subset of `go list -json` output floclint consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -export -deps` over the patterns and
// decodes the package stream. -export populates each package's build-cache
// export-data file, which is what lets a stdlib-only tool type-check
// against compiled dependencies; -deps pulls in the transitive closure so
// every import can be resolved.
func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, via the stdlib gc importer's lookup hook.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// runLint loads, type-checks, and lints every package matching the
// patterns (dependencies are loaded but not linted), returning findings
// sorted by position.
func runLint(patterns []string) ([]Diagnostic, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// The units, hotpath, taint, and exhaustive rules need their //floc:
	// directives from every module package in the closure, linted or not:
	// export data carries no comments, so dependency annotations are
	// collected by a syntax-only parse here.
	tbl, hot, taint, enums, err := collectDirectiveTables(pkgs)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var all []Diagnostic
	for _, p := range targets {
		diags, err := lintOne(fset, imp, p, tbl, hot, taint, enums)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all, nil
}

// collectDirectiveTables syntax-parses every non-standard package in the
// load closure and gathers its //floc:unit, //floc:hotpath, taint
// (//floc:untrusted, //floc:sanitizes, //floc:sink), and //floc:enum
// directives in one pass.
func collectDirectiveTables(pkgs []*listPkg) (*unitTable, *hotTable, *taintTable, *enumTable, error) {
	tbl := newUnitTable()
	hot := newHotTable()
	taint := newTaintTable()
	enums := newEnumTable()
	cfset := token.NewFileSet()
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		hot.pkgs[p.ImportPath] = true
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(cfset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			collectUnitDecls(p.ImportPath, f, tbl)
			collectHotDecls(p.ImportPath, f, hot)
			collectTaintDecls(p.ImportPath, f, taint)
			collectEnumDecls(p.ImportPath, f, enums)
		}
	}
	return tbl, hot, taint, enums, nil
}

// lintOne parses and type-checks one package and runs the rules over it.
// Only non-test Go files are linted: tests are free to use wall-clock
// time, and the determinism contract covers simulation code only.
func lintOne(fset *token.FileSet, imp types.Importer, p *listPkg, tbl *unitTable, hot *hotTable, taint *taintTable, enums *enumTable) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return lintPackage(fset, files, info, p.ImportPath, tbl, hot, taint, enums), nil
}

// jsonFinding is the NDJSON shape of one -json finding, matching the
// problem-matcher fields CI consumes.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// writeJSONFindings emits one JSON object per finding, one per line.
func writeJSONFindings(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		f := jsonFinding{
			File: d.Pos.Filename,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Rule: d.Rule,
			Msg:  d.Msg,
		}
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}
