// Package telemetryclean exercises the same observability boundary as
// the telemetry fixture with correctly dimensioned values: annotated
// quantities propagate through the registry, trace, and recorder APIs
// without findings.
package telemetryclean

import tel "floc/internal/telemetry"

// Stamp records an admitted-packet event at sim-time now.
// floc:unit now seconds
func Stamp(t *tel.Telemetry, now float64) {
	t.Emit(tel.Event{Time: now, Type: tel.EventPacketAdmitted, Path: "10-1"})
}

// Sample records one control-run observation with each quantity in its
// declared dimension.
// floc:unit now seconds
// floc:unit period seconds
// floc:unit alloc packets/s
// floc:unit bucket tokens
// floc:unit conf ratio
func Sample(rec *tel.Recorder, now, period, alloc, bucket, conf float64) {
	rec.Record(tel.PathSample{
		Time:         now,
		Path:         "10-1",
		Conformance:  conf,
		AllocPackets: alloc,
		BucketSize:   bucket,
		Period:       period,
	})
}

// Span derives the recorder's covered time from its bin width: a
// duration scaled by a dimensionless count stays a duration.
// floc:unit return seconds
func Span(rec *tel.Recorder, bins int) float64 {
	return rec.BinWidth() * float64(bins)
}

// Observe feeds an annotated duration into a delay histogram and reads
// the accumulated sum back.
// floc:unit delay seconds
func Observe(reg *tel.Registry, delay float64) float64 {
	h := reg.Histogram("queue_delay_seconds", "per-packet delay", "seconds",
		[]float64{0.01, 0.1})
	h.Observe(delay)
	return h.Sum()
}
