// Package floateq seeds violations of the float-eq rule: ==/!= between
// non-constant floating-point expressions.
package floateq

import "math"

// Rate is a named float type; comparisons through it must still be caught.
type Rate float64

// Equal compares two floats exactly.
func Equal(a, b float64) bool {
	return a == b // WANT float-eq
}

// Changed compares two named-type floats exactly.
func Changed(a, b Rate) bool {
	return a != b // WANT float-eq
}

// TieBreak is the sort-comparator idiom the rule exists to catch.
func TieBreak(x, y, kx, ky float64) bool {
	if x != y { // WANT float-eq
		return x < y
	}
	return kx < ky
}

// SentinelOK compares against constants — allowed.
func SentinelOK(a float64) bool {
	return a == 0 || a != 1.5 || a == math.Pi
}

// EpsilonOK is the sanctioned pattern.
func EpsilonOK(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Suppressed carries a justified allow directive and must not be reported.
func Suppressed(a, b float64) bool {
	return a == b //floclint:allow float-eq exact bit-pattern comparison intended
}

// IntsOK compares integers — not the rule's business.
func IntsOK(a, b int) bool {
	return a == b
}
