// Package wire seeds units-rule violations over the wire codec's
// vocabulary: encoded header lengths in bytes, declared packet lengths,
// link budgets in bits, and the byte/bit boundary a codec constantly
// walks.
package wire

// Header mimics the codec's length bookkeeping.
type Header struct {
	Length  float64 //floc:unit bytes
	PathLen float64 //floc:unit packets
}

// FrameOverhead adds a bit budget to a byte length.
// floc:unit fixed bytes
// floc:unit budget bits
func FrameOverhead(fixed, budget float64) float64 {
	return fixed + budget // WANT units
}

// FitsDatagram compares an encoded byte length against a link budget in
// bits without converting.
// floc:unit encoded bytes
// floc:unit budget bits
func FitsDatagram(encoded, budget float64) bool {
	return encoded < budget // WANT units
}

// WireBits scales bytes by 8 and claims the result is still bytes:
// scaling by a constant does not re-dimension, conversions do.
// floc:unit encoded bytes
func WireBits(encoded float64) float64 {
	b := encoded * 8 //floc:unit bytes/s // WANT units
	return b
}

// SerializeTime divides a byte length by a bit rate and claims seconds;
// the quotient is bytes·s/bit, not time.
// floc:unit frame bytes
// floc:unit rate bits/s
// floc:unit return seconds
func SerializeTime(frame, rate float64) float64 {
	return frame / rate // WANT units
}

// HeaderBudget accumulates per-packet byte lengths into a bits total.
// floc:unit frame bytes
func HeaderBudget(frame float64) float64 {
	var total float64 //floc:unit bits
	total += frame    // WANT units
	return total
}

// DeclareLength stores a wire byte length into a header field annotated
// with a different dimension.
// floc:unit n packets
func DeclareLength(h *Header, n float64) {
	h.Length = n // WANT units
}
