// Package wireclean exercises idiomatic codec-side dimensioned code that
// must produce zero findings: byte lengths compose with byte lengths,
// service times come from byte-denominated rates, and the one deliberate
// bits-to-bytes conversion is suppressed with a justification.
package wireclean

// Frame carries the codec's annotated length bookkeeping.
type Frame struct {
	Fixed   float64 //floc:unit bytes
	Path    float64 //floc:unit bytes
	Trailer float64 //floc:unit bytes
}

// EncodedLen sums the three header regions.
// floc:unit return bytes
func EncodedLen(f *Frame) float64 {
	return f.Fixed + f.Path + f.Trailer
}

// PathBytes scales a domain count into bytes at 4 bytes per entry; the
// integer count is a dimensionless scalar.
// floc:unit return bytes
func PathBytes(f *Frame, entries int) float64 {
	return f.Path * float64(entries)
}

// ServiceTime divides a byte length by a byte rate: the dimensions
// cancel to seconds.
// floc:unit frame bytes
// floc:unit rateBytes bytes/s
// floc:unit return seconds
func ServiceTime(frame, rateBytes float64) float64 {
	return frame / rateBytes
}

// RateBytes converts a link rate from bits/s to bytes/s; the deliberate
// re-dimension is suppressed where it happens.
// floc:unit rateBits bits/s
// floc:unit return bytes/s
func RateBytes(rateBits float64) float64 {
	//floclint:allow units bits-to-bytes: 8 bits per byte
	return rateBits / 8
}

// Throughput composes a byte rate over an interval into a byte total.
// floc:unit rateBytes bytes/s
// floc:unit dt seconds
// floc:unit return bytes
func Throughput(rateBytes, dt float64) float64 {
	return rateBytes * dt
}

// FitsBudget compares like with like after converting the budget once.
// floc:unit encoded bytes
// floc:unit budgetBits bits
func FitsBudget(encoded, budgetBits float64) bool {
	budget := RateBytesAmount(budgetBits)
	return encoded <= budget
}

// RateBytesAmount converts a bit amount to bytes.
// floc:unit budgetBits bits
// floc:unit return bytes
func RateBytesAmount(budgetBits float64) float64 {
	//floclint:allow units bits-to-bytes: 8 bits per byte
	return budgetBits / 8
}
