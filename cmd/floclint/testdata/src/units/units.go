// Package units seeds violations of the units rule: dimensional analysis
// over unit directives and the floc/internal/units types. Every dimension
// of the vocabulary appears, plus composition through * and /, call and
// return boundaries, field sinks, blessed casts, and the allow directive.
package units

import "floc/internal/units"

// Config carries annotated rate-plane fields.
type Config struct {
	LinkRate float64 //floc:unit bits/s
	Interval float64 //floc:unit seconds
	Budget   float64 //floc:unit bits
}

//floc:unit furlongs // WANT units
var Bogus float64

// AddRateToAmount adds a rate to an amount.
// floc:unit rate bits/s
// floc:unit amount bits
func AddRateToAmount(rate, amount float64) float64 {
	return rate + amount // WANT units
}

// SubSeconds subtracts a packet count from a duration.
// floc:unit t seconds
// floc:unit n packets
func SubSeconds(t, n float64) float64 {
	return t - n // WANT units
}

// CompareBytesBits compares a byte count with a bit count.
// floc:unit b bytes
// floc:unit x bits
func CompareBytesBits(b, x float64) bool {
	return b > x // WANT units
}

// SpendTokens compares a token count against a byte count.
// floc:unit toks tokens
// floc:unit b bytes
func SpendTokens(toks, b float64) bool {
	return toks < b // WANT units
}

// LinkBytes adds a byte rate to a bit rate.
// floc:unit br bytes/s
// floc:unit xr bits/s
func LinkBytes(br, xr float64) float64 {
	return br + xr // WANT units
}

// BadBudget multiplies a rate by a rate and claims the result is bits.
// floc:unit r bits/s
// floc:unit t seconds
// floc:unit return bits
func BadBudget(r, t float64) float64 {
	return r * r // WANT units
}

// RefillRate multiplies tokens by seconds and claims a token rate.
// floc:unit toks tokens
// floc:unit dt seconds
// floc:unit return tokens/s
func RefillRate(toks, dt float64) float64 {
	return toks * dt // WANT units
}

// Frequency compares an inverse duration against a packet rate: 1/s is
// not packets/s.
// floc:unit t seconds
// floc:unit pps packets/s
func Frequency(t, pps float64) bool {
	return 1/t > pps // WANT units
}

// Refill adds a dimensionless share to a composed token rate.
// floc:unit toks tokens
// floc:unit dt seconds
// floc:unit share ratio
func Refill(toks, dt, share float64) float64 {
	return toks/dt + share // WANT units
}

// Mislabel declares a local with the wrong unit: scaling by a constant
// does not re-dimension, conversions do.
// floc:unit size bytes
func Mislabel(size float64) float64 {
	b := size * 8 //floc:unit bits // WANT units
	return b
}

// Accumulate adds a duration into a bits accumulator.
// floc:unit dt seconds
func Accumulate(dt float64) float64 {
	var total float64 //floc:unit bits
	total += dt       // WANT units
	return total
}

// WrongReturn declares packets but returns the interval on one path.
// floc:unit n packets
// floc:unit dt seconds
// floc:unit return packets
func WrongReturn(n, dt float64) float64 {
	if n > 0 {
		return n
	}
	return dt // WANT units
}

// Consume is an annotated sink.
// floc:unit amount bits
func Consume(amount float64) {}

// CallWrongDim passes a duration where bits are wanted.
// floc:unit dt seconds
func CallWrongDim(dt float64) {
	Consume(dt) // WANT units
}

// CallSink passes an unannotated float64 into an annotated sink.
func CallSink() {
	x := someMeasurement()
	Consume(x) // WANT units
}

func someMeasurement() float64 { return 42 }

// FillConfig mis-assigns annotated fields through a composite literal and
// a selector.
// floc:unit rate bits/s
// floc:unit dt seconds
func FillConfig(rate, dt float64) Config {
	c := Config{LinkRate: dt} // WANT units
	c.Budget = rate           // WANT units
	c.Interval = dt
	return c
}

// BadCast converts a duration into units.Bits: casts into the typed layer
// are blessed re-dimensioning points, but a known mismatch still reports.
// floc:unit dt seconds
func BadCast(dt float64) units.Bits {
	return units.Bits(dt) // WANT units
}

// MixTyped leaks a typed rate into untyped arithmetic against an amount.
// floc:unit amount bits
func MixTyped(r units.BitsPerSec, amount float64) float64 {
	return float64(r) + amount // WANT units
}

// Floor uses the paper's 1-packet-per-RTT fair-share floor; the
// re-dimension is deliberate and suppressed.
// floc:unit rtt seconds
// floc:unit return packets/s
func Floor(rtt float64) float64 {
	//floclint:allow units 1 packet per RTT fair-share floor (Sec. IV)
	return 1 / rtt
}
