// Package taint seeds violations of the taint rule: every sink class
// (index, slice bound, make size, loop bound, map key, annotated sink
// parameter), every propagation edge (assignment, arithmetic, field
// select, conversion, call/return, conservative external out-params,
// len of a tainted value), the local //floc:untrusted form, a malformed
// sink directive, and the allow escape hatch.
package taint

// pickSlot indexes a table with a wire-chosen slot.
//
// floc:untrusted slot
func pickSlot(table []int, slot int) int {
	return table[slot] // WANT taint
}

// cut reslices a buffer by a declared length.
//
// floc:untrusted n
func cut(b []byte, n int) []byte {
	return b[:n] // WANT taint
}

// alloc sizes an allocation from the wire.
//
// floc:untrusted n
func alloc(n int) []byte {
	return make([]byte, n) // WANT taint
}

// walk loops up to a wire-declared count.
//
// floc:untrusted n
func walk(n int) int {
	t := 0
	for i := 0; i < n; i++ { // WANT taint
		t += i
	}
	return t
}

// track keys a map with an attacker-chosen identifier.
//
// floc:untrusted id
func track(m map[string]int, id string) int {
	return m[id] // WANT taint
}

// derive shows taint riding through := and arithmetic.
//
// floc:untrusted n
func derive(b []byte, n int) byte {
	off := n*2 + 1
	return b[off] // WANT taint
}

// header shows that len of a tainted buffer is tainted: a declared
// length is exactly the field an attacker lies about.
//
// floc:untrusted payload
func header(table []byte, payload []byte) byte {
	return table[len(payload)] // WANT taint
}

// Frame is a decoded wire frame; Slot comes straight off the wire.
type Frame struct {
	Slot int //floc:untrusted
	Data []byte
}

// useFrame indexes with an untrusted field of an otherwise clean value.
func useFrame(table []int, f Frame) int {
	return table[f.Slot] // WANT taint
}

// readSlot models a decoder whose result is attacker-controlled.
//
// floc:untrusted return
func readSlot() int { return 7 }

// useRead shows taint crossing an intra-module call/return boundary.
func useRead(table []int) int {
	return table[readSlot()] // WANT taint
}

// record is the unmarshal target for the out-param case.
type record struct{ N int }

// fill is unannotated: the conservative rule treats its pointer-shaped
// argument as an out-parameter filled from the tainted input, the way
// json.Unmarshal spreads a capture line into its record.
func fill(dst *record, src []byte) {
	if len(src) > 0 {
		dst.N = int(src[0])
	}
}

// parse sizes an allocation from a field an external decoder filled.
//
// floc:untrusted line
func parse(line []byte) []int {
	var rec record
	fill(&rec, line)
	return make([]int, rec.N) // WANT taint
}

// shardOf hashes a path to a shard index.
//
// floc:sink path shard-hash
func shardOf(path string, n int) int {
	h := 0
	for i := 0; i < len(path); i++ {
		h = h*31 + int(path[i])
	}
	if h < 0 {
		h = -h
	}
	return h % n
}

// route feeds a raw wire path into the shard hash.
//
// floc:untrusted p
func route(p string, n int) int {
	return shardOf(p, n) // WANT taint
}

// badSink declares a sink without saying what it feeds.
//
// floc:sink path // WANT taint
func badSink(path string) {}

// readEnvInt models any clean local read.
func readEnvInt() int { return 3 }

// fromEnv marks a local untrusted at its declaration site.
func fromEnv(table []int) int {
	slot := readEnvInt() //floc:untrusted
	return table[slot]   // WANT taint
}

// bounded range-checks inline and suppresses with justification: the
// allow directive exists for flows the checker cannot see are safe.
//
// floc:untrusted n
func bounded(b []byte, n int) byte {
	if n < 0 || n >= len(b) {
		return 0
	}
	//floclint:allow taint n is range-checked against len(b) above
	return b[n]
}
