// Package maporder seeds violations of the map-order rule: map iteration
// order leaking into slices or output.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// LeakKeys accumulates map keys in iteration order and never sorts.
func LeakKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // WANT map-order
	}
	return out
}

// PrintLeak emits output in map iteration order.
func PrintLeak(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // WANT map-order
	}
}

// BuildLeak accumulates a string in map iteration order.
func BuildLeak(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // WANT map-order
	}
	return b.String()
}

// SortedAfter collects then sorts — the sanctioned idiom, not flagged.
func SortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LocalAppend appends only to a loop-local slice — per-iteration state,
// no cross-iteration order, not flagged.
func LocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, v*2)
		}
		total += len(doubled)
	}
	return total
}

// MapWrite writes into another map — order-independent, not flagged.
func MapWrite(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// SliceRange iterates a slice, not a map — not flagged.
func SliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
