// Package timeviol seeds violations of the sim-time rule: wall-clock
// reads and math/rand usage in simulation code.
package timeviol

import (
	"math/rand" // WANT sim-time
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() float64 {
	t0 := time.Now()    // WANT sim-time
	d := time.Since(t0) // WANT sim-time
	return d.Seconds()
}

// Wait schedules on the wall clock.
func Wait() {
	time.Sleep(time.Millisecond)   // WANT sim-time
	<-time.After(time.Millisecond) // WANT sim-time
}

// Jitter draws from the global, unseeded generator.
func Jitter() float64 {
	return rand.Float64()
}

// FixedDuration only does duration arithmetic — no wall-clock read, so
// this must NOT be flagged.
func FixedDuration() time.Duration {
	return 3 * time.Second
}
