// Package eqguard seeds violations of the eq-guard rule: paper-equation
// functions (floc:eq annotation) without input guards.
package eqguard

import "math"

// Unguarded multiplies blindly: NaN, Inf, and negative inputs flow
// straight through.
//
// floc:eq IX.1 (test fixture)
func Unguarded(w, rtt float64) float64 { // WANT eq-guard
	return w / 2 * rtt
}

// ConstGuarded rejects non-positive input before computing.
//
// floc:eq IX.2 (test fixture)
func ConstGuarded(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return 8 / (3 * w * (w + 2))
}

// NaNGuarded screens non-finite input explicitly.
//
// floc:eq IX.3 (test fixture)
func NaNGuarded(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x * x
}

// Unannotated has no floc:eq directive, so the rule leaves it alone even
// without guards.
func Unannotated(w, rtt float64) float64 {
	return w / 2 * rtt
}
