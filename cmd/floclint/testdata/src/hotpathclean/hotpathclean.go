// Package hotpathclean exercises near-misses of the hotpath rule that
// must yield zero findings: the banned constructs in unannotated
// functions, sanctioned cold excursions, and the allocation-free idioms
// hot code is expected to use instead.
package hotpathclean

// buf owns preallocated scratch storage; note that prose mentioning the
// floc:hotpath directive mid-sentence does not annotate anything.
type buf struct {
	scratch []int
}

// fill appends into struct-owned storage after a length reset: no fresh
// slice, no growth in steady state.
//
// floc:hotpath
func (b *buf) fill(src []int) {
	b.scratch = b.scratch[:0]
	for _, v := range src {
		b.scratch = append(b.scratch, v)
	}
}

// grow is the cold allocation site backing the hot path.
//
// floc:coldpath backing storage is grown off the per-packet path
func grow(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// lookup takes the sanctioned cold excursion on the slow case.
//
// floc:hotpath
func (b *buf) lookup(i int) int {
	if i >= len(b.scratch) {
		b.scratch = grow(i + 1)
	}
	return b.scratch[i]
}

// double calls only annotated-hot module code.
//
// floc:hotpath
func double(x int) int { return addSelf(x) }

// addSelf is a hot leaf.
//
// floc:hotpath
func addSelf(x int) int { return x + x }

// tag concatenates compile-time constants: folded, no runtime concat.
//
// floc:hotpath
func tag() string {
	const prefix = "floc"
	return prefix + "-hot"
}

// store hands a pointer to an interface slot: pointer-shaped, no boxing.
//
// floc:hotpath
func store(p *buf) any {
	return p
}

// denseLookup indexes by integer handle: no hashing, no finding.
//
// floc:hotpath
func denseLookup(table []int, byID map[uint32]int, h uint32) int {
	if int(h) < len(table) {
		return table[h]
	}
	return byID[h]
}

// ingest is the sanctioned string probe at the cold/hot boundary, waived
// with a justified allow comment.
//
// floc:hotpath
func ingest(m map[string]uint32, k string) uint32 {
	//floclint:allow hotpath interning probe mints the dense handle
	return m[k]
}

// helper is unannotated and free to use every construct the rule bans in
// hot functions.
func helper(m map[string]int) int {
	defer func() {}()
	out := make([]int, 0)
	out = append(out, len(m))
	n := 0
	for _, v := range m {
		n += v
	}
	return n + out[0]
}
