package hotpathclean

// eventSink mirrors the telemetry sink seam: hot emitters call through
// an interface, so the lint cannot (and must not) chase into whatever
// cold implementation is plugged in behind it.
type eventSink interface {
	emit(v int)
}

// emitter owns its sink; the hot path is one field read plus an
// interface call.
type emitter struct {
	sink eventSink
}

// emit forwards a decision record. Interface method calls are exempt
// from the callee-annotation requirement: the dispatch target is not
// knowable statically, and the sanctioned implementations are cold.
//
// floc:hotpath
func (e *emitter) emit(v int) {
	if e.sink != nil {
		e.sink.emit(v)
	}
}

// sealSegment is the cold implementation behind the sink: hashing and
// encoding evidence belongs here, off the per-packet path.
//
// floc:coldpath sealing runs once per control-run boundary, never per packet
func sealSegment(lines [][]byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, line := range lines {
		for _, b := range line {
			h = (h ^ uint64(b)) * 1099511628211
		}
	}
	return h
}

// flush takes the sanctioned cold excursion at a segment boundary.
//
// floc:hotpath
func flush(pending [][]byte, boundary bool) uint64 {
	if boundary {
		return sealSegment(pending)
	}
	return 0
}
