// Package unitsclean exercises idiomatic dimensioned code that must
// produce zero findings: scalar constants adapt to either operand,
// integer counts are dimensionless, tokens and packets share a base
// dimension, and * and / compose dimensions correctly.
package unitsclean

import "floc/internal/units"

// Path carries annotated fields, including a map whose directive
// describes the element values.
type Path struct {
	Alloc   float64            //floc:unit packets/s
	RTT     float64            //floc:unit seconds
	Arrived float64            //floc:unit tokens
	Flows   map[string]float64 //floc:unit bits
}

// Window computes a window in packets from a rate and an RTT.
// floc:unit return packets
func Window(p *Path) float64 {
	return p.Alloc * p.RTT
}

// Fair splits an allocation among n flows; the integer count converts to
// a dimensionless scalar.
// floc:unit alloc packets/s
// floc:unit return packets/s
func Fair(alloc float64, n int) float64 {
	if n <= 0 {
		return alloc
	}
	return alloc / float64(n)
}

// Admit adds packet credit to a token gauge: one token admits one
// reference packet, so the dimensions agree.
// floc:unit credit packets
func Admit(p *Path, credit float64) {
	p.Arrived += credit
}

// TotalBits sums per-flow bit counts out of the annotated map.
// floc:unit return bits
func TotalBits(p *Path) float64 {
	var total float64 //floc:unit bits
	for _, b := range p.Flows {
		total += b
	}
	return total
}

// Typed goes through the typed layer: conversions into and between the
// units types carry their dimensions in the type system.
func Typed(sizeBytes int, dt units.Seconds) units.BitsPerSec {
	amount := units.FromPacket(sizeBytes)
	return amount.Per(dt)
}

// Scaled applies a dimensionless utilization to a typed rate.
// floc:unit util ratio
func Scaled(r units.BitsPerSec, util float64) units.BitsPerSec {
	return r.Scale(util)
}

// Deadline mixes constants into homogeneous comparisons.
// floc:unit t seconds
// floc:unit horizon seconds
func Deadline(t, horizon float64) bool {
	return t+0.5*horizon < 2*horizon
}
