// Package clean exercises near-miss patterns of every floclint rule
// without violating any of them; the negative test asserts zero findings.
package clean

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Conformance is a named float used in sanctioned comparisons.
type Conformance float64

// Classify compares only against constants.
func Classify(e Conformance) string {
	if e == 0 {
		return "dead"
	}
	if e < 0.5 {
		return "attack"
	}
	return "legit"
}

// Close uses an epsilon instead of float equality.
func Close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}

// Render iterates a map in sorted key order and emits deterministically.
func Render(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%.3f\n", k, m[k])
	}
	return b.String()
}

// Mean is a guarded equation implementation.
//
// floc:eq IX.0 (test fixture)
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
