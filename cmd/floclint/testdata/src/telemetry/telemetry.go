// Package telemetry seeds violations of the units rule at the
// observability boundary: the telemetry package's annotated fields and
// parameters (Event.Time, the PathSample quantities, the recorder bin
// width) must reject mis-dimensioned values from importing packages.
package telemetry

import tel "floc/internal/telemetry"

// StampPackets stamps an event with a packet count instead of sim-time.
// floc:unit pkts packets
func StampPackets(pkts float64) tel.Event {
	return tel.Event{Time: pkts} // WANT units
}

// SampleAllocFromPeriod fills the packets/s allocation with a duration.
// floc:unit period seconds
func SampleAllocFromPeriod(period float64) tel.PathSample {
	return tel.PathSample{AllocPackets: period} // WANT units
}

// SampleSwapped assigns a conformance ratio into the token-bucket size.
// floc:unit conf ratio
func SampleSwapped(conf float64) tel.PathSample {
	var s tel.PathSample
	s.BucketSize = conf // WANT units
	return s
}

// BinWidthFromRate configures the recorder bin width with a rate.
// floc:unit rate bits/s
func BinWidthFromRate(rate float64) *tel.Recorder {
	return tel.NewRecorder(rate) // WANT units
}

// OptionsFromTokens sets the bin-width option from a token count.
// floc:unit toks tokens
func OptionsFromTokens(toks float64) tel.Options {
	return tel.Options{RecorderBinWidth: toks} // WANT units
}

// ElapsedMinusBins subtracts a packet count from the recorder bin width.
// floc:unit n packets
func ElapsedMinusBins(r *tel.Recorder, n float64) float64 {
	return r.BinWidth() - n // WANT units
}
