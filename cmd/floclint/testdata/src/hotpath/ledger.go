package hotpath

// digest is a stand-in for a hashing helper: module code with no
// hot/cold annotation.
func digest(line []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range line {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// admitAndSeal hashes evidence directly on the admission path instead of
// handing the bytes to a cold sealer: the unannotated callee is the
// finding that proves hashing leaked onto the hot path.
//
// floc:hotpath
func admitAndSeal(line []byte) uint64 {
	return digest(line) // WANT hotpath
}

// admitAndBuffer grows a fresh evidence buffer per packet.
//
// floc:hotpath
func admitAndBuffer(line []byte) []byte {
	buf := make([]byte, 0, len(line)) // WANT hotpath
	return append(buf, line...)
}
