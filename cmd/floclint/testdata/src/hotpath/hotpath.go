// Package hotpath seeds violations of the hotpath rule: every banned
// construct inside //floc:hotpath functions, the callee-annotation
// requirement, and malformed directives.
package hotpath

import "fmt"

// sumAll iterates a map on the hot path.
//
// floc:hotpath
func sumAll(m map[string]int) int {
	t := 0
	for _, v := range m { // WANT hotpath
		t += v
	}
	return t
}

// bump is hot so deferred's defer is the only finding there.
//
// floc:hotpath
func bump(p *int) { *p++ }

// deferred schedules work with defer.
//
// floc:hotpath
func deferred(done *int) {
	defer bump(done) // WANT hotpath
}

// format calls fmt on the per-packet path.
//
// floc:hotpath
func format(n int) {
	fmt.Println(n) // WANT hotpath
}

// concat builds a string at runtime.
//
// floc:hotpath
func concat(a, b string) string {
	return a + b // WANT hotpath
}

// sink is hot and takes an interface parameter.
//
// floc:hotpath
func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// box passes a concrete int where sink wants an interface.
//
// floc:hotpath
func box(n int) int {
	return sink(n) // WANT hotpath
}

// assignBox boxes through a plain assignment.
//
// floc:hotpath
func assignBox(n int) any {
	var v any
	v = n // WANT hotpath
	return v
}

// returnBox boxes a concrete value into an interface result.
//
// floc:hotpath
func returnBox(n int) any {
	return n // WANT hotpath
}

// capture builds a closure over a local.
//
// floc:hotpath
func capture(n int) func() int {
	f := func() int { return n } // WANT hotpath
	return f
}

// scratch allocates a fresh slice per call.
//
// floc:hotpath
func scratch(k int) []int {
	idx := make([]int, k) // WANT hotpath
	return idx
}

// collect grows an un-preallocated local slice.
//
// floc:hotpath
func collect(src []int) []int {
	var out []int
	for _, v := range src {
		out = append(out, v) // WANT hotpath
	}
	return out
}

// probe indexes a string-keyed map per call.
//
// floc:hotpath
func probe(m map[string]int, k string) int {
	return m[k] // WANT hotpath
}

// probeWrite hashes the key on the store side too.
//
// floc:hotpath
func probeWrite(m map[string]uint32, k string, v uint32) {
	m[k] = v // WANT hotpath
}

// helper is in this module but carries no annotation.
func helper(n int) int { return n * 2 }

// dispatch calls an unannotated module function.
//
// floc:hotpath
func dispatch(n int) int {
	return helper(n) // WANT hotpath
}

// badCold leaves the hot path without saying why.
//
// floc:coldpath
func badCold() {} // WANT hotpath

// conflicted claims both sides of the contract.
//
// floc:hotpath
// floc:coldpath because it cannot make up its mind
func conflicted() {} // WANT hotpath

// slowPath is a sanctioned cold excursion.
//
// floc:coldpath table construction happens once per miss
func slowPath(n int) []int { return make([]int, n) }

// lookup dips into the sanctioned cold path: no finding on that call.
//
// floc:hotpath
func lookup(n int) int {
	if n < 0 {
		t := slowPath(-n)
		return t[0]
	}
	return n
}
