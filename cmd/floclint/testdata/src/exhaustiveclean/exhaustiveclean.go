// Package exhaustiveclean exercises the exhaustive rule's clean paths:
// full coverage with multi-expression cases, the count-sentinel
// exclusion, a same-line waiver with a reason, switches over unmarked
// types, and tagless switches. The linter must report nothing here.
package exhaustiveclean

// State is a closed enum with an iota block and a count sentinel.
//
// floc:enum
type State uint8

// State members.
const (
	StateIdle State = iota
	StateOpen
	StateDraining
	StateClosed
	numStates //floc:enumbound
)

// next covers every member, two per case.
func next(s State) State {
	switch s {
	case StateIdle, StateOpen:
		return StateDraining
	case StateDraining, StateClosed:
		return StateClosed
	}
	return StateIdle
}

// name covers every member and keeps a default for cast garbage.
func name(s State) string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOpen:
		return "open"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	default:
		return "?"
	}
}

// isLive waives on the switch line itself: the subset is the contract.
func isLive(s State) bool {
	switch s { //floc:nonexhaustive only the two live states matter here
	case StateOpen, StateDraining:
		return true
	}
	return false
}

// loose is unmarked; partial coverage over it is fine.
type loose int

const (
	looseA loose = iota
	looseB
	looseC
)

func overLoose(l loose) bool {
	switch l {
	case looseA:
		return true
	}
	return false
}

// tagless switches are plain if-chains and out of scope.
func tagless(s State) int {
	switch {
	case s == StateIdle:
		return 0
	default:
		return 1
	}
}
