// Package taintclean exercises the taint rule's clean paths: sanitizer
// calls clearing arguments, receivers, and field directives; the
// validate-then-fill decode idiom; range indices over tainted buffers;
// and constant indexing into tainted containers. The linter must report
// nothing here.
package taintclean

// Header mirrors the wire header idiom: the declared path length is
// attacker-controlled until validate range-checks it.
type Header struct {
	PathLen int //floc:untrusted
}

// validate range-checks the header's declared fields.
//
// floc:sanitizes
func (h *Header) validate(max int) bool {
	return h.PathLen >= 0 && h.PathLen <= max
}

// useHeader indexes with the field only after the sanitizer ran.
func useHeader(h Header, table []int) int {
	if !h.validate(len(table) - 1) {
		return 0
	}
	return table[h.PathLen]
}

// checkLen validates a declared length against the buffer size.
//
// floc:sanitizes
func checkLen(n, max int) bool { return n >= 0 && n < max }

// decode parses a frame the way wire.Decode does: the declared count is
// tainted until checkLen blesses it, then bounds the element walk; the
// member store into the clean output does not re-taint it
// (validate-then-fill).
//
// floc:untrusted b
func decode(b []byte, out *record) bool {
	if len(b) < 2 {
		return false
	}
	n := int(b[0])
	if !checkLen(n, len(b)) {
		return false
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += int(b[1+i])
	}
	out.Sum = sum
	return true
}

// record is decode's validated output.
type record struct{ Sum int }

// sum shows that ranging over a tainted buffer yields clean indices:
// the iteration is bounded by the buffer's real length, not a declared
// one.
//
// floc:untrusted b
func sum(table []int, b []byte) int {
	t := 0
	for i, v := range b {
		t += table[i] + int(v)
	}
	return t
}

// first indexes a tainted buffer with a constant: the index is the
// trusted side, the container is not a sink.
//
// floc:untrusted b
func first(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// clampSlot is a value-returning sanitizer; its result is clean.
//
// floc:sanitizes
func clampSlot(n, max int) int {
	if n < 0 || n >= max {
		return 0
	}
	return n
}

// useClamped routes a wire slot through the clamp before indexing.
//
// floc:untrusted slot
func useClamped(table []int, slot int) int {
	return table[clampSlot(slot, len(table))]
}
