// Package atomicsclean exercises near-misses of the atomics rule that
// must yield zero findings: wrapper-typed atomics accessed through their
// methods, plain fields that are simply never atomic, composite-literal
// construction, pointer passing, and an aligned 64-bit atomic field.
package atomicsclean

import "sync/atomic"

// counters is all wrapper-typed: the types encapsulate the access
// discipline, and pointer receivers never copy them.
type counters struct {
	hits  atomic.Int64
	drops atomic.Int64
}

func (c *counters) hit()        { c.hits.Add(1) }
func (c *counters) read() int64 { return c.hits.Load() }

// ring mixes a function-style atomic producer cursor (offset 0, aligned)
// with plain single-consumer fields the rule must leave alone: only enq
// is held to the atomic discipline.
type ring struct {
	enq  uint64
	deq  uint64
	item int
}

func (r *ring) push() { atomic.AddUint64(&r.enq, 1) }

func (r *ring) pop() uint64 {
	r.deq++ // plain consumer cursor: never passed to sync/atomic
	return atomic.LoadUint64(&r.enq)
}

// newRing constructs behind a pointer; &composite-literal is not a copy.
func newRing() *ring { return &ring{} }

// fresh constructs a value from a composite literal: creating state is
// not copying live state.
func fresh() *counters {
	c := counters{}
	return &c
}

// observe reads through a pointer.
func observe(c *counters) int64 { return c.read() }
