// Package atomics seeds violations of the atomics rule: mixed
// atomic/plain field access, by-value copies of structs carrying atomic
// state, and a 64-bit atomic field at a misaligned offset.
package atomics

import "sync/atomic"

// counters is updated atomically on the hot path; both fields land in
// the audit set, and both are 8-byte aligned.
type counters struct {
	hits  int64
	drops int64
}

func (c *counters) hit()  { atomic.AddInt64(&c.hits, 1) }
func (c *counters) drop() { atomic.AddInt64(&c.drops, 1) }

// snapshot reads one field atomically and the other with a plain load.
func (c *counters) snapshot() (int64, int64) {
	return c.hits, atomic.LoadInt64(&c.drops) // WANT atomics
}

// reset mixes a plain store with an atomic one.
func (c *counters) reset() {
	c.hits = 0 // WANT atomics
	atomic.StoreInt64(&c.drops, 0)
}

// copyOut copies the live struct by value (and returns it by value).
func copyOut(c *counters) counters { // WANT atomics
	snap := *c // WANT atomics
	return snap
}

// consume takes the atomic-bearing struct by value.
func consume(c counters) int64 { // WANT atomics
	return atomic.LoadInt64(&c.hits)
}

// passByValue hands a dereferenced copy to a callee.
func passByValue(c *counters) int64 {
	return consume(*c) // WANT atomics
}

// gauge wraps a typed atomic; the wrapper encapsulates access but still
// must not be copied.
type gauge struct {
	v atomic.Int64
}

// leak returns the gauge by value.
func leak(g *gauge) gauge { // WANT atomics
	return *g
}

// sum copies each gauge into the range value variable.
func sum(gs []gauge) int64 {
	var total int64
	for _, g := range gs { // WANT atomics
		total += g.v.Load()
	}
	return total
}

// misaligned puts a 64-bit function-style atomic after a 4-byte field:
// offset 4 under 32-bit layout, where atomic.AddInt64 faults.
type misaligned struct {
	ready int32
	count int64 // WANT atomics
}

func (m *misaligned) add() { atomic.AddInt64(&m.count, 1) }
