// Package exhaustive seeds violations of the exhaustive rule: switches
// over a //floc:enum type that omit members, a default clause standing
// in for coverage (it does not count), a reasonless waiver, and member
// collection across separate const blocks.
package exhaustive

// Kind dispatches frame handling; the set is closed by contract.
//
// floc:enum
type Kind uint8

// Kind members; numKinds is a count sentinel, not a member.
const (
	KindA Kind = iota + 1
	KindB
	KindC
	numKinds //floc:enumbound
)

// missing omits KindC.
func missing(k Kind) int {
	switch k { // WANT exhaustive
	case KindA:
		return 1
	case KindB:
		return 2
	}
	return 0
}

// defaulted hides missing members behind a default: defaults are for
// out-of-range cast values, not members, so this still reports.
func defaulted(k Kind) int {
	switch k { // WANT exhaustive
	case KindA:
		return 1
	default:
		return 0
	}
}

// unreasoned waives without saying why: the reason is mandatory, and
// the reasonless waiver does not suppress the coverage finding either.
func unreasoned(k Kind) int {
	//floc:nonexhaustive // WANT exhaustive
	switch k { // WANT exhaustive
	case KindA:
		return 1
	}
	return 0
}

// Reason labels drop causes.
//
// floc:enum
type Reason int

// Core reasons.
const (
	ReasonNone Reason = iota
	ReasonOverflow
)

// ReasonFiltered extends the set from a separate const block: members
// are collected across blocks, so this switch is short one member.
const ReasonFiltered Reason = 7

// overReason misses the extension member.
func overReason(r Reason) string {
	switch r { // WANT exhaustive
	case ReasonNone, ReasonOverflow:
		return "ok"
	}
	return ""
}

// covered names every Kind member; the default for cast garbage is
// fine on top of full coverage.
func covered(k Kind) int {
	switch k {
	case KindA, KindB:
		return 1
	case KindC:
		return 2
	default:
		return 0
	}
}

// subset deliberately handles the handshake kinds only, with a reason.
func subset(k Kind) int {
	//floc:nonexhaustive payload kinds are dispatched by the data path
	switch k {
	case KindA:
		return 1
	}
	return 0
}

// plain is not marked //floc:enum: partial switches over it are not
// the rule's business.
type plain int

const (
	p1 plain = iota
	p2
)

func overPlain(p plain) int {
	switch p {
	case p1:
		return 1
	}
	return 0
}
