package main

// The hotpath rule: allocation discipline for per-packet code.
//
// Functions annotated //floc:hotpath are the per-packet path (wire
// decode/encode, router admission, ring push/pop, shard dispatch). Under
// flood they run millions of times per second, so a single heap
// allocation per call turns the defense itself into the bottleneck
// (NetFence makes the same argument for in-network defenses generally).
// Inside a hotpath function the rule bans the allocation-prone constructs
// the compiler will not reliably optimize away:
//
//   - map iteration (hides hashing work and defeats preallocation),
//   - string-keyed map indexing (hashes the whole key per packet; hot
//     state belongs in dense handle-indexed tables),
//   - defer (allocates a defer record in non-open-coded cases and runs
//     cold logic on the hot path),
//   - fmt.* calls and non-constant string concatenation,
//   - interface boxing of non-pointer-shaped values (call arguments,
//     assignments, returns, and conversions),
//   - closures that capture local state and escape,
//   - make/new (every call is a heap allocation unless proven otherwise;
//     hoist to a cold constructor or reuse caller-provided storage), and
//   - append to a fresh, un-preallocated slice declared in the function.
//
// Annotation is propagated by requirement, not inference: every call from
// a hotpath function to a function in this module must name its side of
// the contract — //floc:hotpath (checked the same way) or
// //floc:coldpath <reason> (a sanctioned cold excursion: error
// construction, slow-path creation, the control loop). Calls to
// unannotated module functions are findings. Standard-library calls and
// dynamic calls (interface methods, func values) are outside the
// directive system and only their visible construct use (fmt, boxing at
// the call site) is checked. Arguments to //floc:coldpath callees are
// exempt from the boxing check: boxing on the way out of the hot path is
// the cold callee's business (e.g. invariant failure reporting).
//
// The static claims are cross-checked dynamically by
// testing.AllocsPerRun gates (TestZeroAlloc* in the hot packages).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	hotpathDirective  = "floc:hotpath"
	coldpathDirective = "floc:coldpath"
)

// hotClass is a function's position in the hot/cold annotation system.
type hotClass uint8

const (
	hotNone hotClass = iota // unannotated
	hotHot                  // //floc:hotpath: body checked, callable from hot code
	hotCold                 // //floc:coldpath: sanctioned cold excursion
)

// hotTable carries the module-wide //floc:hotpath///floc:coldpath
// annotations (export data has no comments, so dependency annotations are
// collected by the same syntax-only parse as the units table) plus the
// set of module package paths, which bounds the annotation requirement:
// only calls into module code must be annotated.
type hotTable struct {
	funcs map[string]hotClass // "pkgpath.[Recv.]Func" -> class
	pkgs  map[string]bool     // non-standard package paths in the load closure
}

func newHotTable() *hotTable {
	return &hotTable{funcs: map[string]hotClass{}, pkgs: map[string]bool{}}
}

// hotDirectiveOf classifies one comment line: the directive must start
// the line (after "//" and space), exactly as with floc:unit and floc:eq.
func hotDirectiveOf(text string) hotClass {
	t := strings.TrimSpace(strings.TrimLeft(text, "/"))
	for dir, class := range map[string]hotClass{hotpathDirective: hotHot, coldpathDirective: hotCold} {
		if !strings.HasPrefix(t, dir) {
			continue
		}
		rest := t[len(dir):]
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return class
		}
	}
	return hotNone
}

// hotClassOfDoc scans a doc comment for hot/cold directives. conflict is
// true when both appear.
func hotClassOfDoc(doc *ast.CommentGroup) (class hotClass, conflict bool) {
	if doc == nil {
		return hotNone, false
	}
	for _, c := range doc.List {
		switch hotDirectiveOf(c.Text) {
		case hotHot:
			if class == hotCold {
				conflict = true
			}
			class = hotHot
		case hotCold:
			if class == hotHot {
				conflict = true
			} else if class == hotNone {
				class = hotCold
			}
		}
	}
	return class, conflict
}

// collectHotDecls scans one parsed file for hot/cold directives, filling
// tbl. Purely syntactic, like collectUnitDecls.
func collectHotDecls(pkgPath string, f *ast.File, tbl *hotTable) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		class, _ := hotClassOfDoc(fn.Doc)
		if class == hotNone {
			continue
		}
		tbl.funcs[funcKeyFor(pkgPath, recvTypeName(fn.Recv), fn.Name.Name)] = class
	}
}

// hotKeyOf builds the table key for a resolved callee.
func hotKeyOf(fn *types.Func) string {
	fn = fn.Origin()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return funcKeyFor(fn.Pkg().Path(), recv, fn.Name())
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating: pointers, channels, maps, funcs, unsafe pointers.
// Interfaces are included because interface-to-interface assignment does
// not re-box.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// checkHotpath enforces the hotpath bans on one annotated function (rule
// hotpath).
func (l *linter) checkHotpath(fn *ast.FuncDecl) {
	class, conflict := hotClassOfDoc(fn.Doc)
	if conflict {
		l.report(fn.Name.Pos(), RuleHotpath,
			"%s carries both //floc:hotpath and //floc:coldpath; pick one side of the contract", fn.Name.Name)
	}
	if class == hotCold {
		// Cold bodies are unchecked, but the excursion must be justified.
		if !coldReasonGiven(fn.Doc) {
			l.report(fn.Name.Pos(), RuleHotpath,
				"//floc:coldpath on %s needs a reason (why is leaving the hot path sanctioned here?)", fn.Name.Name)
		}
		return
	}
	if class != hotHot || fn.Body == nil {
		return
	}

	fresh := l.freshSliceVars(fn.Body)
	invoked := immediatelyInvoked(fn.Body)
	var results *types.Tuple
	if obj, ok := l.info.Defs[fn.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			l.report(n.Pos(), RuleHotpath,
				"defer in //floc:hotpath function %s: defer records and deferred work do not belong on the per-packet path", fn.Name.Name)
		case *ast.RangeStmt:
			if t := typeOf(l.info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					l.report(n.Pos(), RuleHotpath,
						"map iteration in //floc:hotpath function %s: hashing and randomized order do not belong on the per-packet path", fn.Name.Name)
				}
			}
		case *ast.IndexExpr:
			l.checkHotIndex(fn, n)
		case *ast.BinaryExpr:
			l.checkHotConcat(fn, n)
		case *ast.AssignStmt:
			l.checkHotAssign(fn, n)
		case *ast.ReturnStmt:
			l.checkHotReturn(fn, n, results)
		case *ast.CallExpr:
			l.checkHotCall(fn, n, fresh)
		case *ast.FuncLit:
			if invoked[n] {
				return true // runs inline; its body is walked like the rest
			}
			if caps := l.capturedVars(n); len(caps) > 0 {
				l.report(n.Pos(), RuleHotpath,
					"closure capturing %s escapes from //floc:hotpath function %s: captured variables move to the heap",
					strings.Join(caps, ", "), fn.Name.Name)
				return false
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkHotIndex flags string-keyed map lookups: every one hashes the
// whole key string. Steady-state per-packet code must index dense
// tables by integer handle; a string probe is only sanctioned at the
// ingest boundary where the handle is minted (waived with
// //floclint:allow hotpath there).
func (l *linter) checkHotIndex(fn *ast.FuncDecl, ix *ast.IndexExpr) {
	t := typeOf(l.info, ix.X)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	l.report(ix.Pos(), RuleHotpath,
		"string-keyed map index in //floc:hotpath function %s hashes the key on every packet; intern to a dense handle in a cold constructor",
		fn.Name.Name)
}

// coldReasonGiven reports whether any coldpath directive line carries
// justification text after the directive.
func coldReasonGiven(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		t := strings.TrimSpace(strings.TrimLeft(c.Text, "/"))
		if strings.HasPrefix(t, coldpathDirective) {
			if rest := strings.TrimSpace(t[len(coldpathDirective):]); rest != "" {
				return true
			}
		}
	}
	return false
}

// typeOf returns the type of an expression, nil when untyped.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	return info.Types[e].Type
}

// checkHotConcat flags non-constant string concatenation.
func (l *linter) checkHotConcat(fn *ast.FuncDecl, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv := l.info.Types[be]
	if tv.Value != nil || tv.Type == nil {
		return // compile-time constant result: no runtime concat
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	l.report(be.OpPos, RuleHotpath,
		"string concatenation in //floc:hotpath function %s allocates; precompute in a cold constructor", fn.Name.Name)
}

// checkHotAssign flags += string concatenation and interface boxing
// through plain assignment.
func (l *linter) checkHotAssign(fn *ast.FuncDecl, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if t := typeOf(l.info, as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				l.report(as.TokPos, RuleHotpath,
					"string concatenation in //floc:hotpath function %s allocates; precompute in a cold constructor", fn.Name.Name)
			}
		}
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := typeOf(l.info, lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		l.reportBoxing(fn, as.Rhs[i], "assignment")
	}
}

// checkHotReturn flags boxing a concrete value into an interface result.
func (l *linter) checkHotReturn(fn *ast.FuncDecl, rs *ast.ReturnStmt, results *types.Tuple) {
	if results == nil || len(rs.Results) != results.Len() {
		return // bare return or single multi-value call: nothing boxes here
	}
	for i, e := range rs.Results {
		if types.IsInterface(results.At(i).Type()) {
			l.reportBoxing(fn, e, "return")
		}
	}
}

// reportBoxing flags expr if storing it into an interface slot allocates.
func (l *linter) reportBoxing(fn *ast.FuncDecl, expr ast.Expr, context string) {
	t := typeOf(l.info, unparen(expr))
	if pointerShaped(t) {
		return
	}
	l.report(expr.Pos(), RuleHotpath,
		"%s boxes a non-pointer %s into an interface in //floc:hotpath function %s: boxing allocates",
		context, types.TypeString(t, nil), fn.Name.Name)
}

// checkHotCall is the per-call-site part of the rule: fmt bans, make/new
// bans, un-preallocated append, callee annotation propagation, and
// argument boxing.
func (l *linter) checkHotCall(fn *ast.FuncDecl, call *ast.CallExpr, fresh map[*types.Var]bool) {
	fun := unparen(call.Fun)

	// Conversions: T(x) boxes when T is an interface type.
	if tv, ok := l.info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			l.reportBoxing(fn, call.Args[0], "conversion")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := l.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				l.report(call.Pos(), RuleHotpath,
					"%s in //floc:hotpath function %s allocates on every call; hoist to a cold constructor or reuse caller-provided storage",
					id.Name, fn.Name.Name)
			case "append":
				l.checkHotAppend(fn, call, fresh)
			}
			return
		}
	}

	// fmt.* never belongs on the hot path (reflection + boxing + output).
	if sel, ok := fun.(*ast.SelectorExpr); ok && l.pkgNameOf(sel.X) == "fmt" {
		l.report(call.Pos(), RuleHotpath,
			"fmt.%s in //floc:hotpath function %s: formatting allocates and reflects; move it behind a //floc:coldpath helper",
			sel.Sel.Name, fn.Name.Name)
		return
	}

	callee := l.calleeOf(call)
	class := hotNone
	switch {
	case callee == nil:
		// Dynamic call (func value, method value): outside the directive
		// system; only the visible construct use around it is checked.
	case calleeIsInterfaceMethod(callee):
		// Dynamic dispatch: cannot be annotated; argument boxing below
		// still applies.
	case callee.Pkg() != nil && l.hot.pkgs[callee.Pkg().Path()]:
		class = l.hot.funcs[hotKeyOf(callee)]
		if class == hotNone {
			l.report(call.Pos(), RuleHotpath,
				"call to %s from //floc:hotpath function %s: callee is in this module but carries neither //floc:hotpath nor //floc:coldpath",
				callee.FullName(), fn.Name.Name)
		}
	}
	if class == hotCold {
		return // sanctioned cold excursion: boxing on the way out is its business
	}
	l.checkArgBoxing(fn, call, callee)
}

// checkArgBoxing flags concrete non-pointer values passed to interface
// parameters (including variadic ...any style parameters).
func (l *linter) checkArgBoxing(fn *ast.FuncDecl, call *ast.CallExpr, callee *types.Func) {
	var sig *types.Signature
	if callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	} else if t := typeOf(l.info, call.Fun); t != nil {
		sig, _ = t.Underlying().(*types.Signature)
	}
	if sig == nil || call.Ellipsis.IsValid() {
		return // slice passed through as-is: no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		l.reportBoxing(fn, arg, "argument")
	}
}

// checkHotAppend flags appends whose destination is a fresh slice local
// with no preallocated backing: every growth step allocates.
func (l *linter) checkHotAppend(fn *ast.FuncDecl, call *ast.CallExpr, fresh map[*types.Var]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := l.info.Uses[id]
	if obj == nil {
		obj = l.info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && fresh[v] {
		l.report(call.Pos(), RuleHotpath,
			"append to un-preallocated slice %s in //floc:hotpath function %s grows by reallocation; append into caller-provided or struct-owned storage",
			v.Name(), fn.Name.Name)
	}
}

// freshSliceVars collects locals declared as nil or empty slices: `var x
// []T` and `x := []T{}`. Appending to them inside a hotpath function
// always reallocates.
func (l *linter) freshSliceVars(body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := l.info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				fresh[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if cl, ok := unparen(n.Rhs[i]).(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					mark(id)
				}
			}
		}
		return true
	})
	return fresh
}

// immediatelyInvoked returns the function literals in call-function
// position: they run inline and never escape.
func immediatelyInvoked(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fl, ok := unparen(call.Fun).(*ast.FuncLit); ok {
				out[fl] = true
			}
		}
		return true
	})
	return out
}

// capturedVars lists the local variables a function literal closes over
// (used inside, declared outside, not package-level), sorted by first use.
func (l *linter) capturedVars(fl *ast.FuncLit) []string {
	var out []string
	seen := map[*types.Var]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := l.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() < fl.End() {
			return true // declared inside the literal
		}
		if scope := v.Parent(); scope == nil || scope.Parent() == types.Universe {
			return true // package-level: no capture
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

// calleeOf resolves a call's static callee, nil for dynamic calls.
func (l *linter) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := l.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := l.info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeIsInterfaceMethod reports whether fn is declared on an interface.
func calleeIsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}
