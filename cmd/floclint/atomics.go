package main

// The atomics rule: mixed atomic/plain access, lock-by-copy, and 64-bit
// alignment hazards.
//
// The dataplane publishes counters and parking flags across goroutines
// with sync/atomic. Three mistakes survive go vet and the race detector's
// sampling and all three have bitten real lock-free code:
//
//  1. Mixed access: a field updated with atomic.AddInt64 on the hot path
//     but read with a plain load in a snapshot function is a data race
//     and can observe torn or stale values. Any struct field that appears
//     as &s.f in a sync/atomic call anywhere in the package must be
//     accessed atomically everywhere in the package.
//  2. Copying: assigning or passing a struct that contains atomic state
//     (a function-style atomic field or an atomic.Int64-style wrapper) by
//     value duplicates state that must stay unique; updates to the copy
//     are silently lost. Composite literals are exempt: constructing a
//     fresh value is not copying live state.
//  3. Alignment: the 64-bit function-style atomics (atomic.AddInt64 and
//     friends) fault on 32-bit platforms unless the operand is 8-byte
//     aligned, which the compiler only guarantees for the first word of
//     an allocation. The rule computes field offsets under 32-bit (GOARCH
//     386) layout and flags 64-bit atomic fields at unaligned offsets.
//     The atomic.Int64/Uint64 wrapper types are exempt: they embed
//     align64 and are guaranteed aligned everywhere, which is also the
//     recommended fix.
//
// Wrapper-typed fields (atomic.Bool, atomic.Int64, ...) cannot be
// accessed non-atomically (the representation is unexported), so only
// checks 2 applies to them.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicPkgFuncs maps sync/atomic function names whose first argument is
// the address of the atomic variable to whether they operate on 64 bits.
var atomicPkgFuncs = map[string]bool{
	"AddInt32": false, "AddInt64": true, "AddUint32": false, "AddUint64": true, "AddUintptr": false,
	"CompareAndSwapInt32": false, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": false, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": false,
	"CompareAndSwapPointer": false,
	"LoadInt32":             false, "LoadInt64": true, "LoadUint32": false, "LoadUint64": true,
	"LoadUintptr": false, "LoadPointer": false,
	"StoreInt32": false, "StoreInt64": true, "StoreUint32": false, "StoreUint64": true,
	"StoreUintptr": false, "StorePointer": false,
	"SwapInt32": false, "SwapInt64": true, "SwapUint32": false, "SwapUint64": true,
	"SwapUintptr": false, "SwapPointer": false,
}

// atomicWrapperNames are the sync/atomic types that encapsulate their
// access discipline.
var atomicWrapperNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true,
	"Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicWrapper reports whether t is one of sync/atomic's typed
// atomics (possibly generic, like atomic.Pointer[T]).
func isAtomicWrapper(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicWrapperNames[obj.Name()]
}

// atomicAudit is the per-package state of the atomics rule.
type atomicAudit struct {
	// fields used as &s.f arguments to sync/atomic functions, with the
	// name of one such function for diagnostics and whether any use was
	// 64-bit.
	fields map[*types.Var]*atomicUse
	// selector nodes that are the sanctioned &s.f of an atomic call.
	sanctioned map[*ast.SelectorExpr]bool
}

type atomicUse struct {
	fn        string // e.g. "AddInt64"
	sixtyFour bool
}

// checkAtomics runs the atomics rule over all files of the package: a
// collection pass finds atomically-accessed fields, then the checking
// passes flag plain accesses, copies, and misaligned 64-bit fields.
func (l *linter) checkAtomics(files []*ast.File) {
	audit := &atomicAudit{
		fields:     map[*types.Var]*atomicUse{},
		sanctioned: map[*ast.SelectorExpr]bool{},
	}
	for _, f := range files {
		l.collectAtomicUses(f, audit)
	}
	for _, f := range files {
		l.checkPlainAccess(f, audit)
		l.checkAtomicCopies(f, audit)
		l.checkAtomicAlignment(f, audit)
	}
}

// collectAtomicUses records every struct field whose address is passed to
// a sync/atomic function.
func (l *linter) collectAtomicUses(f *ast.File, audit *atomicAudit) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || l.pkgNameOf(sel.X) != "sync/atomic" {
			return true
		}
		is64, known := atomicPkgFuncs[sel.Sel.Name]
		if !known {
			return true
		}
		addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		fieldSel, ok := unparen(addr.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := l.fieldOf(fieldSel)
		if v == nil {
			return true
		}
		audit.sanctioned[fieldSel] = true
		use := audit.fields[v]
		if use == nil {
			use = &atomicUse{fn: sel.Sel.Name}
			audit.fields[v] = use
		}
		use.sixtyFour = use.sixtyFour || is64
		return true
	})
}

// fieldOf resolves a selector to the struct field it denotes, nil for
// methods, package members, and locals.
func (l *linter) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := l.info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := l.info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// checkPlainAccess flags selector uses of atomically-accessed fields
// outside sync/atomic call arguments.
func (l *linter) checkPlainAccess(f *ast.File, audit *atomicAudit) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || audit.sanctioned[sel] {
			return true
		}
		v := l.fieldOf(sel)
		if v == nil {
			return true
		}
		use, ok := audit.fields[v]
		if !ok {
			return true
		}
		l.report(sel.Sel.Pos(), RuleAtomics,
			"plain access to field %s, which is accessed with sync/atomic.%s elsewhere in this package: mixed atomic/plain access races",
			v.Name(), use.fn)
		return true
	})
}

// typeContainsAtomic reports whether copying a value of type t duplicates
// atomic state: a field registered in the audit, a sync/atomic wrapper
// field, or either nested in an inner struct or array.
func typeContainsAtomic(t types.Type, audit *atomicAudit, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if isAtomicWrapper(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if audit.fields[fld] != nil || typeContainsAtomic(fld.Type(), audit, depth+1) {
				return true
			}
		}
	case *types.Array:
		return typeContainsAtomic(u.Elem(), audit, depth+1)
	}
	return false
}

// copyExempt reports whether an expression produces a fresh value rather
// than copying live state: composite literals and conversions of them.
func copyExempt(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// Function results are fresh from the caller's perspective; the
		// copying return inside the callee is flagged at its signature.
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND
	}
	return false
}

// checkAtomicCopies flags by-value movement of structs containing atomic
// state: assignments, range value variables, call arguments, and
// by-value receivers/params/results in function signatures.
func (l *linter) checkAtomicCopies(f *ast.File, audit *atomicAudit) {
	copies := func(e ast.Expr) bool {
		return !copyExempt(e) && typeContainsAtomic(typeOf(l.info, unparen(e)), audit, 0)
	}
	flag := func(pos token.Pos, t types.Type, what string) {
		l.report(pos, RuleAtomics,
			"%s copies %s, which contains atomic fields; copies fork state that must stay unique — use a pointer",
			what, types.TypeString(t, nil))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copies(rhs) {
					flag(rhs.Pos(), typeOf(l.info, unparen(rhs)), "assignment")
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if copies(v) {
					flag(v.Pos(), typeOf(l.info, unparen(v)), "assignment")
				}
			}
		case *ast.RangeStmt:
			// The value variable of a := range is a Def, not a typed
			// expression, so resolve its object directly.
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				obj := l.info.Defs[id]
				if obj == nil {
					obj = l.info.Uses[id]
				}
				if obj != nil && typeContainsAtomic(obj.Type(), audit, 0) {
					flag(id.Pos(), obj.Type(), "range value")
				}
			}
		case *ast.CallExpr:
			if tv, ok := l.info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range n.Args {
				if copies(arg) {
					flag(arg.Pos(), typeOf(l.info, unparen(arg)), "argument")
				}
			}
		case *ast.FuncDecl:
			l.checkAtomicSignature(n, audit, flag)
		}
		return true
	})
}

// checkAtomicSignature flags by-value atomic-bearing types in a function
// signature.
func (l *linter) checkAtomicSignature(fn *ast.FuncDecl, audit *atomicAudit, flag func(token.Pos, types.Type, string)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := typeOf(l.info, field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if typeContainsAtomic(t, audit, 0) {
				flag(field.Type.Pos(), t, what)
			}
		}
	}
	check(fn.Recv, "by-value receiver")
	check(fn.Type.Params, "by-value parameter")
	check(fn.Type.Results, "by-value result")
}

// checkAtomicAlignment flags 64-bit function-style atomic fields whose
// offset under 32-bit layout is not a multiple of 8.
func (l *linter) checkAtomicAlignment(f *ast.File, audit *atomicAudit) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			obj, ok := l.info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			fields := make([]*types.Var, st.NumFields())
			for i := range fields {
				fields[i] = st.Field(i)
			}
			offsets := sizes.Offsetsof(fields)
			for i, fld := range fields {
				use := audit.fields[fld]
				if use == nil || !use.sixtyFour {
					continue
				}
				if offsets[i]%8 != 0 {
					l.report(fld.Pos(), RuleAtomics,
						"64-bit atomic field %s sits at offset %d under 32-bit layout; sync/atomic.%s would fault there — move it to the front or use the atomic.Int64/Uint64 wrapper types",
						fld.Name(), offsets[i], use.fn)
				}
			}
		}
	}
}
