package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one floclint finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// Rule names, as reported and as accepted by //floclint:allow.
const (
	RuleSimTime    = "sim-time"
	RuleFloatEq    = "float-eq"
	RuleMapOrder   = "map-order"
	RuleEqGuard    = "eq-guard"
	RuleUnits      = "units"
	RuleAtomics    = "atomics"
	RuleHotpath    = "hotpath"
	RuleTaint      = "taint"
	RuleExhaustive = "exhaustive"
)

// bannedTimeFuncs are the time-package functions that read the wall clock
// or schedule on it. Simulation code must take the sim clock (a float64
// "now") as input instead, or every run would observe different times.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true, "Sleep": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedImports are import paths whose presence alone breaks determinism:
// all randomness must flow through internal/rng's seeded sources.
var bannedImports = map[string]string{
	"math/rand":    "use internal/rng (seeded, splittable) instead",
	"math/rand/v2": "use internal/rng (seeded, splittable) instead",
}

// allowDirective introduces a suppression comment:
// //floclint:allow <rule>[,<rule>...] [justification].
const allowDirective = "floclint:allow"

// linter lints the files of one type-checked package.
type linter struct {
	fset    *token.FileSet
	info    *types.Info
	pkgPath string
	tbl     *unitTable                  // module-wide //floc:unit annotations
	hot     *hotTable                   // module-wide //floc:hotpath///floc:coldpath annotations
	taint   *taintTable                 // module-wide //floc:untrusted/sanitizes/sink annotations
	enums   *enumTable                  // module-wide //floc:enum declarations
	allows  map[string]map[int][]string // filename -> line -> rules suppressed there
	diags   []Diagnostic
}

// lintPackage runs every rule over one package's files. The tables carry
// the //floc:unit, //floc:hotpath, taint, and enum annotations of every
// package in the module (the cross-package rules need the directives of
// dependencies, which export data does not carry).
func lintPackage(fset *token.FileSet, files []*ast.File, info *types.Info, pkgPath string, tbl *unitTable, hot *hotTable, taint *taintTable, enums *enumTable) []Diagnostic {
	if tbl == nil {
		tbl = newUnitTable()
	}
	if hot == nil {
		hot = newHotTable()
	}
	if taint == nil {
		taint = newTaintTable()
	}
	if enums == nil {
		enums = newEnumTable()
	}
	l := &linter{fset: fset, info: info, pkgPath: pkgPath, tbl: tbl, hot: hot,
		taint: taint, enums: enums,
		allows: map[string]map[int][]string{}}
	// Allow maps are collected for every file up front: the atomics rule
	// reports across file boundaries (a plain access in one file of a
	// field used atomically in another).
	for _, f := range files {
		l.allows[fset.Position(f.Pos()).Filename] = collectAllows(fset, f)
	}
	for _, f := range files {
		l.checkImports(f)
		l.checkUnits(f)
		l.checkTaint(f)
		l.checkExhaustive(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				l.checkTimeCall(n)
			case *ast.BinaryExpr:
				l.checkFloatEq(n)
			}
			return true
		})
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			l.checkHotpath(fn)
			if fn.Body == nil {
				continue
			}
			l.checkMapOrder(fn)
			l.checkEqGuard(fn)
		}
	}
	l.checkAtomics(files)
	return l.diags
}

// collectAllows maps source lines to the rules suppressed there via
// //floclint:allow comments.
func collectAllows(fset *token.FileSet, f *ast.File) map[int][]string {
	allow := map[int][]string{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			idx := strings.Index(c.Text, allowDirective)
			if idx < 0 {
				continue
			}
			rest := c.Text[idx+len(allowDirective):]
			line := fset.Position(c.Pos()).Line
			for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ' ' || r == ',' || r == '\t'
			}) {
				switch field {
				case RuleSimTime, RuleFloatEq, RuleMapOrder, RuleEqGuard, RuleUnits,
					RuleAtomics, RuleHotpath, RuleTaint, RuleExhaustive:
					allow[line] = append(allow[line], field)
				default:
					// First non-rule token starts the justification text.
				}
			}
		}
	}
	return allow
}

// report records a finding unless an allow comment on the same or the
// preceding line suppresses the rule.
func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	p := l.fset.Position(pos)
	allow := l.allows[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, r := range allow[line] {
			if r == rule {
				return
			}
		}
	}
	l.diags = append(l.diags, Diagnostic{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// checkImports flags banned imports (rule sim-time).
func (l *linter) checkImports(f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if why, ok := bannedImports[path]; ok {
			l.report(imp.Pos(), RuleSimTime, "import of %s breaks run reproducibility; %s", path, why)
		}
	}
}

// pkgNameOf returns the imported package path if expr is a package
// qualifier identifier (e.g. the "time" in time.Now), or "".
func (l *linter) pkgNameOf(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := l.info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// checkTimeCall flags wall-clock time functions (rule sim-time).
func (l *linter) checkTimeCall(sel *ast.SelectorExpr) {
	if l.pkgNameOf(sel.X) != "time" || !bannedTimeFuncs[sel.Sel.Name] {
		return
	}
	l.report(sel.Pos(), RuleSimTime,
		"time.%s reads or schedules on the wall clock; simulation code must derive time from the sim clock",
		sel.Sel.Name)
}

// checkFloatEq flags ==/!= between two non-constant floating-point
// expressions (rule float-eq). Comparisons where either side is a
// compile-time constant (sentinels such as 0) are allowed: they compare
// against an exactly-representable value the code deliberately stored.
func (l *linter) checkFloatEq(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt, yt := l.info.Types[be.X], l.info.Types[be.Y]
	if xt.Value != nil || yt.Value != nil {
		return
	}
	if !isFloat(xt.Type) || !isFloat(yt.Type) {
		return
	}
	l.report(be.OpPos, RuleFloatEq,
		"%s between two non-constant floats is not a reliable comparison; use an epsilon, restructure, or //floclint:allow float-eq with justification",
		be.Op)
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkMapOrder flags map iterations whose bodies leak the (randomized)
// iteration order: appending to a slice declared outside the loop with no
// subsequent sort call in the same function, or writing output directly
// from the loop body (rule map-order).
func (l *linter) checkMapOrder(fn *ast.FuncDecl) {
	// Positions of sort-package calls within the function; an append-leak
	// is cleared by any sort call after the loop (the idiom the repo uses:
	// collect from the map, then sort).
	var sortCalls []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && l.pkgNameOf(sel.X) == "sort" {
			sortCalls = append(sortCalls, call.Pos())
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := l.info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		l.checkMapRangeBody(rs, sortCalls)
		return true
	})
}

// checkMapRangeBody examines one map-range statement for order leaks.
func (l *linter) checkMapRangeBody(rs *ast.RangeStmt, sortCalls []token.Pos) {
	sortedAfter := func() bool {
		for _, p := range sortCalls {
			if p > rs.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "append" {
					return true
				}
				if _, ok := l.info.Uses[fun].(*types.Builtin); !ok {
					return true
				}
				if target := outerAppendTarget(l.info, n, rs); target != "" && !sortedAfter() {
					l.report(n.Pos(), RuleMapOrder,
						"append to %q inside map iteration leaks the randomized map order; sort it afterwards or iterate sorted keys", target)
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if l.pkgNameOf(fun.X) == "fmt" &&
					(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					l.report(n.Pos(), RuleMapOrder,
						"fmt.%s inside map iteration emits output in randomized map order; iterate sorted keys", name)
				} else if strings.HasPrefix(name, "Write") && l.pkgNameOf(fun.X) == "" {
					// A Write* method call (strings.Builder, bytes.Buffer,
					// io.Writer) accumulates in map order.
					l.report(n.Pos(), RuleMapOrder,
						"%s inside map iteration accumulates output in randomized map order; iterate sorted keys", name)
				}
			}
		}
		return true
	})
}

// outerAppendTarget returns the name of the variable receiving an append
// when that variable is declared outside the range statement (so the
// map order accumulates across iterations), or "".
func outerAppendTarget(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) string {
	if len(call.Args) == 0 {
		return ""
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return ""
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
		return "" // loop-local accumulator: per-iteration, no cross-iteration order
	}
	return v.Name()
}

// checkEqGuard enforces that functions annotated with a "floc:eq" comment
// (implementations of a paper equation) guard their numeric inputs: an if
// comparing against a constant, a math.IsNaN/IsInf call, or an
// internal/invariant assertion (rule eq-guard).
func (l *linter) checkEqGuard(fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	annotated := false
	for _, c := range fn.Doc.List {
		// The directive must start a comment line ("// floc:eq IV.6");
		// prose that merely mentions floc:eq does not annotate.
		text := strings.TrimSpace(strings.TrimLeft(c.Text, "/"))
		if strings.HasPrefix(text, "floc:eq") {
			annotated = true
			break
		}
	}
	if !annotated {
		return
	}
	guarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				pkg := l.pkgNameOf(sel.X)
				if pkg == "math" && (sel.Sel.Name == "IsNaN" || sel.Sel.Name == "IsInf") {
					guarded = true
				}
				if strings.HasSuffix(pkg, "internal/invariant") {
					guarded = true
				}
			}
		case *ast.IfStmt:
			if l.hasConstComparison(n.Cond) {
				guarded = true
			}
		}
		return !guarded
	})
	if !guarded {
		l.report(fn.Name.Pos(), RuleEqGuard,
			"%s implements a paper equation (floc:eq) but never guards its inputs; compare against a constant, call math.IsNaN/IsInf, or assert via internal/invariant",
			fn.Name.Name)
	}
}

// hasConstComparison reports whether the expression contains an ordered or
// equality comparison with a compile-time constant on either side.
func (l *linter) hasConstComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if l.info.Types[be.X].Value != nil || l.info.Types[be.Y].Value != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
