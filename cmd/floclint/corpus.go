package main

// Fixture-corpus verification: each package under testdata/src seeds
// violations marked with "// WANT <rule>" comments; verifyCorpus lints
// every fixture through the real go-list driver and reports markers the
// linter missed and findings no marker expects. lint_test.go runs this
// in-process; `floclint -fixtures testdata/src` runs it from check.sh so
// the corpus cannot drift from the rule implementations.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// finding keys diagnostics by (file, line, rule) for comparison against
// the fixtures' WANT markers.
type finding struct {
	file string
	line int
	rule string
}

func (f finding) String() string { return fmt.Sprintf("%s:%d: %s", f.file, f.line, f.rule) }

// scanWantMarkers scans a fixture directory's Go files for
// "// WANT <rule>..." markers and returns the expected findings.
func scanWantMarkers(dir string) (map[finding]int, error) {
	want := map[finding]int{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// WANT ")
			if idx < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[idx+len("// WANT "):]) {
				want[finding{file: e.Name(), line: line, rule: rule}]++
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return want, nil
}

// diffFindings returns the findings present in a but missing (or
// under-counted) in b, sorted for stable output.
func diffFindings(a, b map[finding]int) []finding {
	var out []finding
	for f, n := range a {
		if b[f] < n {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].rule < out[j].rule
	})
	return out
}

// verifyCorpus lints every fixture package directory under root and
// compares the findings against the WANT markers, returning one line per
// mismatch (empty when the corpus and the rules agree) plus the per-rule
// finding counts, which check.sh folds into its stage timing summary.
func verifyCorpus(root string) ([]string, map[string]int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, nil, err
	}
	var mismatches []string
	counts := map[string]int{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		want, err := scanWantMarkers(dir)
		if err != nil {
			return nil, nil, err
		}
		diags, err := runLint([]string{"./" + filepath.ToSlash(dir)})
		if err != nil {
			return nil, nil, fmt.Errorf("fixture %s: %v", e.Name(), err)
		}
		got := map[finding]int{}
		for _, d := range diags {
			got[finding{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, rule: d.Rule}]++
			counts[d.Rule]++
		}
		for _, miss := range diffFindings(want, got) {
			mismatches = append(mismatches, fmt.Sprintf("%s: marker not reported: %s", e.Name(), miss))
		}
		for _, extra := range diffFindings(got, want) {
			mismatches = append(mismatches, fmt.Sprintf("%s: finding without marker: %s", e.Name(), extra))
		}
	}
	return mismatches, counts, nil
}

// formatRuleCounts renders per-rule finding counts on one stable line.
func formatRuleCounts(counts map[string]int) string {
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	var b strings.Builder
	b.WriteString("per-rule fixture findings:")
	for _, r := range rules {
		fmt.Fprintf(&b, " %s=%d", r, counts[r])
	}
	return b.String()
}
