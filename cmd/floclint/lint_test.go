package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// finding keys diagnostics by (file, line, rule) for comparison against
// the fixtures' WANT markers.
type finding struct {
	file string
	line int
	rule string
}

func (f finding) String() string { return fmt.Sprintf("%s:%d: %s", f.file, f.line, f.rule) }

// wantMarkers scans a fixture directory's Go files for "// WANT <rule>..."
// markers and returns the expected findings.
func wantMarkers(t *testing.T, dir string) map[finding]int {
	t.Helper()
	want := map[finding]int{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// WANT ")
			if idx < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[idx+len("// WANT "):]) {
				want[finding{file: e.Name(), line: line, rule: rule}]++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// lintFixture runs the real loader+linter pipeline over one fixture
// package directory.
func lintFixture(t *testing.T, dir string) map[finding]int {
	t.Helper()
	diags, err := runLint([]string{"./" + dir})
	if err != nil {
		t.Fatalf("runLint(%s): %v", dir, err)
	}
	got := map[finding]int{}
	for _, d := range diags {
		got[finding{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, rule: d.Rule}]++
	}
	return got
}

// TestSeededViolations checks that every seeded violation is reported at
// its exact position, and nothing else is.
func TestSeededViolations(t *testing.T) {
	for _, fixture := range []string{"timeviol", "floateq", "maporder", "eqguard"} {
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fixture)
			want := wantMarkers(t, dir)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no WANT markers", fixture)
			}
			got := lintFixture(t, dir)
			for _, miss := range diffFindings(want, got) {
				t.Errorf("expected finding not reported: %s", miss)
			}
			for _, extra := range diffFindings(got, want) {
				t.Errorf("unexpected finding: %s", extra)
			}
		})
	}
}

// TestCleanFixture checks the negative case: a file exercising near-miss
// patterns of every rule yields zero findings.
func TestCleanFixture(t *testing.T) {
	got := lintFixture(t, filepath.Join("testdata", "src", "clean"))
	if len(got) != 0 {
		t.Fatalf("clean fixture produced findings: %v", keysOf(got))
	}
}

// TestSelfClean lints floclint with itself.
func TestSelfClean(t *testing.T) {
	diags, err := runLint([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("floclint is not self-clean: %s: %s: %s", d.Pos, d.Rule, d.Msg)
	}
}

// TestDiagnosticsSorted checks the output ordering contract: findings are
// sorted by file, then line, then column.
func TestDiagnosticsSorted(t *testing.T) {
	diags, err := runLint([]string{"./" + filepath.Join("testdata", "src", "maporder")})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	}) {
		t.Fatalf("diagnostics not sorted: %v", diags)
	}
}

// diffFindings returns the findings present in a but missing (or
// under-counted) in b, sorted for stable failure output.
func diffFindings(a, b map[finding]int) []finding {
	var out []finding
	for f, n := range a {
		if b[f] < n {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].rule < out[j].rule
	})
	return out
}

func keysOf(m map[finding]int) []finding {
	var out []finding
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
