package main

import (
	"path/filepath"
	"sort"
	"testing"
)

// wantMarkers scans a fixture directory's Go files for "// WANT <rule>..."
// markers and returns the expected findings.
func wantMarkers(t *testing.T, dir string) map[finding]int {
	t.Helper()
	want, err := scanWantMarkers(dir)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// lintFixture runs the real loader+linter pipeline over one fixture
// package directory.
func lintFixture(t *testing.T, dir string) map[finding]int {
	t.Helper()
	diags, err := runLint([]string{"./" + dir})
	if err != nil {
		t.Fatalf("runLint(%s): %v", dir, err)
	}
	got := map[finding]int{}
	for _, d := range diags {
		got[finding{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, rule: d.Rule}]++
	}
	return got
}

// TestSeededViolations checks that every seeded violation is reported at
// its exact position, and nothing else is.
func TestSeededViolations(t *testing.T) {
	for _, fixture := range []string{"timeviol", "floateq", "maporder", "eqguard", "units", "atomics", "hotpath", "taint", "exhaustive"} {
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fixture)
			want := wantMarkers(t, dir)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no WANT markers", fixture)
			}
			got := lintFixture(t, dir)
			for _, miss := range diffFindings(want, got) {
				t.Errorf("expected finding not reported: %s", miss)
			}
			for _, extra := range diffFindings(got, want) {
				t.Errorf("unexpected finding: %s", extra)
			}
		})
	}
}

// TestCleanFixture checks the negative case: files exercising near-miss
// patterns of every rule yield zero findings.
func TestCleanFixture(t *testing.T) {
	for _, fixture := range []string{"clean", "unitsclean", "atomicsclean", "hotpathclean", "taintclean", "exhaustiveclean"} {
		t.Run(fixture, func(t *testing.T) {
			got := lintFixture(t, filepath.Join("testdata", "src", fixture))
			if len(got) != 0 {
				t.Fatalf("%s fixture produced findings: %v", fixture, keysOf(got))
			}
		})
	}
}

// TestVerifyCorpus runs the -fixtures driver path over the whole corpus:
// the same comparison the per-fixture tests make, through the entry point
// check.sh invokes.
func TestVerifyCorpus(t *testing.T) {
	mismatches, counts, err := verifyCorpus(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("corpus mismatch: %s", m)
	}
	for _, rule := range []string{RuleSimTime, RuleFloatEq, RuleMapOrder, RuleEqGuard, RuleUnits, RuleAtomics, RuleHotpath, RuleTaint, RuleExhaustive} {
		if counts[rule] == 0 {
			t.Errorf("corpus exercises no %s findings", rule)
		}
	}
}

// TestSelfClean lints floclint with itself.
func TestSelfClean(t *testing.T) {
	diags, err := runLint([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("floclint is not self-clean: %s: %s: %s", d.Pos, d.Rule, d.Msg)
	}
}

// TestRepoSelfClean runs every rule over every package in the module and
// asserts zero findings: the repo's own code is the ultimate clean
// fixture, and this is what keeps the lint gate from drifting away from
// the tree (a rule change that suddenly flags shipped code fails here,
// not in CI's scripted stage).
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped with -short")
	}
	diags, err := runLint([]string{"floc/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo is not floclint-clean: %s: %s: %s", d.Pos, d.Rule, d.Msg)
	}
}

// TestDiagnosticsSorted checks the output ordering contract: findings are
// sorted by file, then line, then column.
func TestDiagnosticsSorted(t *testing.T) {
	diags, err := runLint([]string{"./" + filepath.Join("testdata", "src", "maporder")})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	}) {
		t.Fatalf("diagnostics not sorted: %v", diags)
	}
}

func keysOf(m map[finding]int) []finding {
	var out []finding
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
