// Command topogen generates and summarizes the evaluation topologies:
// the functional tree of Fig. 5, the synthetic Internet-scale AS
// topologies rendered in Figs. 11 and 12, and the 3-node flocd cluster
// plan the cluster gate (scripts/check.sh) brings up on loopback.
//
// Usage:
//
//	topogen -kind tree
//	topogen -kind inet [-attack-ases 300] [-separated]
//	topogen -kind cluster [-base-port 19100]
//	topogen -probe http://127.0.0.1:19301/healthz
//
// -probe fetches one HTTP URL and prints the body, exiting nonzero on
// connection failure or a non-2xx status: a dependency-free curl stand-in
// so the shell harness can scrape /metrics and /healthz portably.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"floc"
)

func main() {
	kind := flag.String("kind", "inet", "topology kind: tree, inet, or cluster")
	attackASes := flag.Int("attack-ases", 100, "attacker dispersion (inet)")
	separated := flag.Bool("separated", false, "separate legitimate from attack ASes (inet)")
	seed := flag.Uint64("seed", 42, "random seed")
	basePort := flag.Int("base-port", 19100, "first port of the cluster plan's port block")
	probe := flag.String("probe", "", "fetch this HTTP URL, print the body, and exit (harness helper)")
	flag.Parse()

	if *probe != "" {
		if err := probeURL(*probe); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		return
	}

	switch *kind {
	case "tree":
		printTree(*seed)
	case "inet":
		table, err := floc.FigTopology(*attackASes, *separated, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		fmt.Print(table.String())
	case "cluster":
		printClusterPlan(*basePort)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func printTree(seed uint64) {
	net := floc.NewNetwork(seed)
	cfg := floc.DefaultTreeTopologyConfig()
	tree, err := floc.NewTreeTopology(net, cfg, floc.NewFIFO(100))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Printf("# Fig.5 functional tree: height=%d degree=%d leaves=%d target=%.0f Mb/s\n",
		cfg.Height, cfg.Degree, tree.NumLeaves(), cfg.TargetRateBits/1e6)
	for i, p := range tree.LeafPaths {
		fmt.Printf("leaf %02d\tpath %s\n", i, p)
	}
}

// printClusterPlan emits the 3-tier flocd chain as ready-to-run commands:
// traffic enters at the leaf, is forwarded hop by hop to the root whose
// link is the bottleneck, and pushback feedback flows the opposite way
// (root originates to mid, mid applies and relays to leaf). Ports are
// laid out as base+1..3 data, base+101..103 control, base+201..203
// metrics, matching the cluster gate in scripts/check.sh.
func printClusterPlan(base int) {
	d1, d2, d3 := base+1, base+2, base+3
	c1, c2 := base+101, base+102
	m1, m2, m3 := base+201, base+202, base+203
	fmt.Printf(`# 3-node flocd cluster plan (loopback); start root-first so control
# listeners exist before feedback flows. Data: leaf -> mid -> root;
# feedback: root -> mid -> leaf.
flocd -listen 127.0.0.1:%d -router-id 3 -peers 127.0.0.1:%d -link 20e6 -metrics 127.0.0.1:%d &
flocd -listen 127.0.0.1:%d -router-id 2 -control 127.0.0.1:%d -peers 127.0.0.1:%d -forward 127.0.0.1:%d -link 100e6 -metrics 127.0.0.1:%d &
flocd -listen 127.0.0.1:%d -router-id 1 -control 127.0.0.1:%d -forward 127.0.0.1:%d -link 100e6 -metrics 127.0.0.1:%d &
flocd -gen 64000 -out capture.ndjson
flocd -replay capture.ndjson -sendto 127.0.0.1:%d -pace 0.3
topogen -probe http://127.0.0.1:%d/healthz
`,
		d3, c2, m3,
		d2, c2, c1, d3, m2,
		d1, c1, d2, m1,
		d1,
		m1)
}

// probeURL fetches url and streams the body to stdout; a non-2xx status
// is an error so shell harnesses can branch on the exit code.
func probeURL(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return nil
}
