// Command topogen generates and summarizes the evaluation topologies:
// the functional tree of Fig. 5 and the synthetic Internet-scale AS
// topologies rendered in Figs. 11 and 12.
//
// Usage:
//
//	topogen -kind tree
//	topogen -kind inet [-attack-ases 300] [-separated]
package main

import (
	"flag"
	"fmt"
	"os"

	"floc"
)

func main() {
	kind := flag.String("kind", "inet", "topology kind: tree or inet")
	attackASes := flag.Int("attack-ases", 100, "attacker dispersion (inet)")
	separated := flag.Bool("separated", false, "separate legitimate from attack ASes (inet)")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	switch *kind {
	case "tree":
		printTree(*seed)
	case "inet":
		table, err := floc.FigTopology(*attackASes, *separated, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		fmt.Print(table.String())
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func printTree(seed uint64) {
	net := floc.NewNetwork(seed)
	cfg := floc.DefaultTreeTopologyConfig()
	tree, err := floc.NewTreeTopology(net, cfg, floc.NewFIFO(100))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Printf("# Fig.5 functional tree: height=%d degree=%d leaves=%d target=%.0f Mb/s\n",
		cfg.Height, cfg.Degree, tree.NumLeaves(), cfg.TargetRateBits/1e6)
	for i, p := range tree.LeafPaths {
		fmt.Printf("leaf %02d\tpath %s\n", i, p)
	}
}
