// Command flocsim runs the paper's functional evaluation (Section VI):
// one subcommand per figure, printing the figure's data series as TSV.
//
// Usage:
//
//	flocsim -fig 6b [-scale 0.1] [-seed 7]
//	flocsim -fig 8 -rates 0.2,0.4,0.8,1.6,2.4,3.2,4.0
//	flocsim -fig 10 -fanouts 1,2,4,8,12,16,20
//
// Scale 1.0 reproduces the paper's full size (500 Mb/s target link, 810
// legitimate sources, 360 bots, 80 simulated seconds) and takes several
// minutes per run; the default 0.1 preserves all rate ratios and runs in
// seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"floc"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 2, 3, 4, 6a, 6b, 6c, 7, 8, 9, 10; extensions: timed, deploy, rep")
	scale := flag.Float64("scale", 0.1, "topology scale in (0,1]; 1.0 = paper scale")
	seed := flag.Uint64("seed", 7, "random seed")
	rates := flag.String("rates", "0.4,0.8,2.0,4.0", "per-bot attack rates in Mb/s (figs 7, 8)")
	fanouts := flag.String("fanouts", "1,4,8,12,20", "covert per-source fanouts (fig 10)")
	format := flag.String("format", "tsv", "output format: tsv or json")
	seeds := flag.String("seeds", "1,2,3", "comma-separated seeds for -fig rep")
	flag.Parse()

	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	table, err := run(*fig, *scale, *seed, *rates, *fanouts, *seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flocsim:", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		out, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "flocsim:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(table.String())
	}
}

func run(fig string, scale float64, seed uint64, rates, fanouts, seeds string) (*floc.Table, error) {
	switch fig {
	case "2":
		return floc.Fig2(scale, seed)
	case "3":
		return floc.Fig3(scale, seed)
	case "4":
		return floc.Fig4(10, 8), nil
	case "6a":
		t, _, err := floc.Fig6(floc.AttackTCPPop, scale, seed)
		return t, err
	case "6b":
		t, _, err := floc.Fig6(floc.AttackCBR, scale, seed)
		return t, err
	case "6c":
		t, _, err := floc.Fig6(floc.AttackShrew, scale, seed)
		return t, err
	case "7":
		r, err := parseRates(rates)
		if err != nil {
			return nil, err
		}
		return floc.Fig7(scale, r, seed)
	case "8":
		r, err := parseRates(rates)
		if err != nil {
			return nil, err
		}
		return floc.Fig8(scale, r, seed)
	case "9":
		return floc.Fig9(scale, seed)
	case "10":
		f, err := parseInts(fanouts)
		if err != nil {
			return nil, err
		}
		return floc.Fig10(scale, f, seed)
	case "timed":
		return floc.FigTimed(scale, seed)
	case "deploy":
		return floc.FigDeployment(scale, []float64{0.25, 0.5, 0.75, 1.0}, seed)
	case "rep":
		// Multi-seed replication of the headline CBR comparison: mean
		// and standard deviation of each class share per defense.
		seedList, err := parseSeeds(seeds)
		if err != nil {
			return nil, err
		}
		t := &floc.Table{
			Title:   "Replication: CBR attack class shares, mean±std across seeds",
			Columns: floc.ReplicationColumns,
		}
		for _, def := range []floc.DefenseKind{floc.DefFLoc, floc.DefPushback, floc.DefREDPD, floc.DefDropTail} {
			sc := floc.DefaultScenario(def, floc.AttackCBR, scale)
			rep, err := floc.Replicate(sc, seedList)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, rep.Row(string(def)))
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", part, err)
		}
		out = append(out, v*1e6)
	}
	return out, nil
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
