// Command flocsim runs the paper's functional evaluation (Section VI):
// one subcommand per figure, printing the figure's data series as TSV.
//
// Usage:
//
//	flocsim -fig 6b [-scale 0.1] [-seed 7]
//	flocsim -fig 8 -rates 0.2,0.4,0.8,1.6,2.4,3.2,4.0
//	flocsim -fig 10 -fanouts 1,2,4,8,12,16,20
//
// Besides the figures, -scenario runs one attack scenario and prints the
// router's snapshot, optionally with full observability output:
//
//	flocsim -scenario floc:cbr -metrics -trace out.ndjson
//
// -metrics appends the run's metric registry in Prometheus text format;
// -trace writes the typed event trace (one JSON event per line), from
// which the run's admission decisions replay exactly.
//
// Scale 1.0 reproduces the paper's full size (500 Mb/s target link, 810
// legitimate sources, 360 bots, 80 simulated seconds) and takes several
// minutes per run; the default 0.1 preserves all rate ratios and runs in
// seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"floc"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 2, 3, 4, 6a, 6b, 6c, 7, 8, 9, 10; extensions: timed, deploy, rep")
	scale := flag.Float64("scale", 0.1, "topology scale in (0,1]; 1.0 = paper scale")
	seed := flag.Uint64("seed", 7, "random seed")
	rates := flag.String("rates", "0.4,0.8,2.0,4.0", "per-bot attack rates in Mb/s (figs 7, 8)")
	fanouts := flag.String("fanouts", "1,4,8,12,20", "covert per-source fanouts (fig 10)")
	format := flag.String("format", "tsv", "output format: tsv or json")
	seeds := flag.String("seeds", "1,2,3", "comma-separated seeds for -fig rep")
	scenario := flag.String("scenario", "", "run one scenario instead of a figure: defense:attack (e.g. floc:cbr)")
	duration := flag.Float64("duration", 30, "scenario duration in simulated seconds (-scenario only)")
	metrics := flag.Bool("metrics", false, "print the metric registry in Prometheus text format after the run (-scenario only)")
	trace := flag.String("trace", "", "write the NDJSON event trace to this file (-scenario only)")
	traceCap := flag.Int("tracecap", 1<<20, "event trace ring capacity (-trace only)")
	flag.Parse()

	if *scenario != "" {
		if err := runScenario(*scenario, *scale, *seed, *duration, *metrics, *trace, *traceCap); err != nil {
			fmt.Fprintln(os.Stderr, "flocsim:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	table, err := run(*fig, *scale, *seed, *rates, *fanouts, *seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flocsim:", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		out, err := json.MarshalIndent(table, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "flocsim:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(table.String())
	}
}

// parseScenario splits a "defense:attack" spec into its kinds.
func parseScenario(spec string) (floc.DefenseKind, floc.AttackKind, error) {
	def, atk, ok := strings.Cut(spec, ":")
	if !ok || def == "" || atk == "" {
		return "", "", fmt.Errorf("scenario %q not of the form defense:attack", spec)
	}
	return floc.DefenseKind(def), floc.AttackKind(atk), nil
}

// runScenario executes one scenario with the paper's FLoc defaults
// (SMax 25, NMax 2) and prints the class shares plus, for FLoc, the
// router snapshot; -metrics and -trace add the observability dumps.
func runScenario(spec string, scale float64, seed uint64, duration float64, metrics bool, tracePath string, traceCap int) error {
	def, atk, err := parseScenario(spec)
	if err != nil {
		return err
	}
	sc := floc.DefaultScenario(def, atk, scale)
	sc.Seed = seed
	sc.Duration = duration
	sc.MeasureFrom = duration / 4
	sc.SMax = 25
	sc.NMax = 2
	if tracePath != "" {
		sc.TraceCapacity = traceCap
	}
	m, err := floc.RunScenario(sc)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s scale=%v seed=%d duration=%vs\n", spec, scale, seed, duration)
	fmt.Printf("utilization=%.3f legit/legit-path=%.3f legit/attack-path=%.3f attack=%.3f\n",
		m.Utilization,
		m.ClassShare(floc.ClassLegitLegit),
		m.ClassShare(floc.ClassLegitAttackPath),
		m.ClassShare(floc.ClassAttack))
	if def == floc.DefFLoc {
		fmt.Print(m.FLocSnapshot.String())
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := m.Tel.Trace.WriteNDJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s (%d overwritten)\n",
			m.Tel.Trace.Len(), tracePath, m.Tel.Trace.Overwritten())
	}
	if metrics {
		fmt.Println()
		return m.Tel.Registry.WriteText(os.Stdout)
	}
	return nil
}

func run(fig string, scale float64, seed uint64, rates, fanouts, seeds string) (*floc.Table, error) {
	switch fig {
	case "2":
		return floc.Fig2(scale, seed)
	case "3":
		return floc.Fig3(scale, seed)
	case "4":
		return floc.Fig4(10, 8), nil
	case "6a":
		t, _, err := floc.Fig6(floc.AttackTCPPop, scale, seed)
		return t, err
	case "6b":
		t, _, err := floc.Fig6(floc.AttackCBR, scale, seed)
		return t, err
	case "6c":
		t, _, err := floc.Fig6(floc.AttackShrew, scale, seed)
		return t, err
	case "7":
		r, err := parseRates(rates)
		if err != nil {
			return nil, err
		}
		return floc.Fig7(scale, r, seed)
	case "8":
		r, err := parseRates(rates)
		if err != nil {
			return nil, err
		}
		return floc.Fig8(scale, r, seed)
	case "9":
		return floc.Fig9(scale, seed)
	case "10":
		f, err := parseInts(fanouts)
		if err != nil {
			return nil, err
		}
		return floc.Fig10(scale, f, seed)
	case "timed":
		return floc.FigTimed(scale, seed)
	case "deploy":
		return floc.FigDeployment(scale, []float64{0.25, 0.5, 0.75, 1.0}, seed)
	case "rep":
		// Multi-seed replication of the headline CBR comparison: mean
		// and standard deviation of each class share per defense.
		seedList, err := parseSeeds(seeds)
		if err != nil {
			return nil, err
		}
		t := &floc.Table{
			Title:   "Replication: CBR attack class shares, mean±std across seeds",
			Columns: floc.ReplicationColumns,
		}
		for _, def := range []floc.DefenseKind{floc.DefFLoc, floc.DefPushback, floc.DefREDPD, floc.DefDropTail} {
			sc := floc.DefaultScenario(def, floc.AttackCBR, scale)
			rep, err := floc.Replicate(sc, seedList)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, rep.Row(string(def)))
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", part, err)
		}
		out = append(out, v*1e6)
	}
	return out, nil
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
